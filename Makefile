# Development workflow for the Fides reproduction.
#
# The profile target reproduces the workflow that found the serialization
# bottleneck this repo's binary codec removed: run a figure benchmark
# under the CPU profiler, then inspect the top hot functions.

GO ?= go
BENCH ?= BenchmarkFig13
PROFILE_DIR ?= .profiles

.PHONY: all build vet lint metriclint cryptolint test test-short test-race sim sim-sweep sim-determinism bench bench-fig12 bench-wal bench-pipeline bench-reads bench-gate fuzz metrics-smoke profile docs-check clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Mirrors the CI lint job. Staticcheck is pinned there; locally it is
# used when installed and skipped (with a note) when not.
lint: vet metriclint cryptolint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; CI runs honnef.co/go/tools/cmd/staticcheck@2025.1.1"; \
	fi

# Metric catalog drift gate: every registered fides_* instrument must be
# documented in docs/observability.md with the right kind, and vice versa.
metriclint:
	$(GO) run ./tools/metriclint

# The verification-plane boundary: no direct ed25519/cosi verify calls on
# the commit hot path outside internal/crypto's backends.
cryptolint:
	$(GO) run ./tools/cryptolint

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detect the fast packages (mirrors the CI race job; the bench
# harness runs full workloads and is too slow under the race detector).
test-race:
	$(GO) test -race $$($(GO) list ./internal/... | grep -v /bench)

# Deterministic cluster simulation (docs/testing.md). `sim` is the CI
# smoke: every scenario × 10 seeds with the trace-determinism proof;
# `sim-sweep` is the nightly-scale sweep. Reproduce a failing seed with
#   go run ./cmd/fidessim -scenario <name> -seed <seed>
sim:
	$(GO) run ./cmd/fidessim -scenario all -seeds 10 -determinism

sim-sweep:
	$(GO) run ./cmd/fidessim -scenario all -seeds 300 -determinism \
		-json sim-report.json -failing sim-failing-seeds.txt

sim-determinism:
	$(GO) run ./cmd/fidessim -scenario all -seeds 5 -determinism -v

# The CI bench gate, runnable locally: re-measure the baseline
# configuration and compare against the committed report.
bench-gate:
	$(GO) run ./cmd/fidesbench -exp fig12,watch,crypto -requests 120 -latency 100us \
		-runs 1 -json /tmp/fides-bench-gate.json
	$(GO) run ./tools/benchgate -baseline BENCH_PR10.json \
		-current /tmp/fides-bench-gate.json

# Figure benchmarks (see bench_test.go; cmd/fidesbench runs the
# paper-scale sweeps as tables).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFig1[2-5]' -benchtime 3x .

bench-fig12:
	$(GO) test -run xxx -bench 'BenchmarkFig12' -benchtime 3x .

# WAL append cost per ~100-txn block across fsync disciplines.
bench-wal:
	$(GO) test -run xxx -bench 'BenchmarkWALAppend' -benchtime 500x ./internal/durable

# Pipelined vs serial TFCommit under sustained closed-loop load
# (regenerates the BENCH_PR3.json sweep at reduced scale).
bench-pipeline:
	$(GO) run ./cmd/fidesbench -exp pipeline -requests 300 -runs 1

# Proof-carrying vs plain reads, read fraction × verified × batch
# (regenerates the BENCH_PR4.json sweep at reduced scale).
bench-reads:
	$(GO) run ./cmd/fidesbench -exp reads -requests 300 -runs 1

# Documentation health: every relative markdown link + #fragment resolves
# (offline; tools/linkcheck), and `go doc` renders every package (catches
# malformed doc comments the same way the CI docs job does).
docs-check:
	$(GO) run ./tools/linkcheck
	@for p in $$($(GO) list ./...); do $(GO) doc $$p >/dev/null || exit 1; done
	@echo "go doc: all packages render"

# Wire-codec and frame robustness: decoding must never panic on
# arbitrary bytes, and any accepted frame must round-trip (the frame
# carries the authenticated trace context — see docs/observability.md).
fuzz:
	$(GO) test -run xxx -fuzz FuzzWireDecode -fuzztime 30s ./internal/wire
	$(GO) test -run xxx -fuzz FuzzParseFrame -fuzztime 30s ./internal/transport

# Multi-process observability smoke: 3 fides-server processes with
# -metrics-addr, a client workload, then scrape and assert the
# commit-path instruments moved (tools/metrics-smoke.sh).
metrics-smoke:
	sh tools/metrics-smoke.sh

profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run xxx -bench '$(BENCH)' -benchtime 3x -cpuprofile $(PROFILE_DIR)/cpu.prof -memprofile $(PROFILE_DIR)/mem.prof .
	$(GO) tool pprof -top -nodecount=25 $(PROFILE_DIR)/cpu.prof

clean:
	rm -rf $(PROFILE_DIR)
	$(GO) clean -testcache
