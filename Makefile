# Development workflow for the Fides reproduction.
#
# The profile target reproduces the workflow that found the serialization
# bottleneck this repo's binary codec removed: run a figure benchmark
# under the CPU profiler, then inspect the top hot functions.

GO ?= go
BENCH ?= BenchmarkFig13
PROFILE_DIR ?= .profiles

.PHONY: all build vet test test-short test-race bench bench-fig12 bench-wal fuzz profile clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detect the fast packages (mirrors the CI race job; the bench
# harness runs full workloads and is too slow under the race detector).
test-race:
	$(GO) test -race $$($(GO) list ./internal/... | grep -v /bench)

# Figure benchmarks (see bench_test.go; cmd/fidesbench runs the
# paper-scale sweeps as tables).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFig1[2-5]' -benchtime 3x .

bench-fig12:
	$(GO) test -run xxx -bench 'BenchmarkFig12' -benchtime 3x .

# WAL append cost per ~100-txn block across fsync disciplines.
bench-wal:
	$(GO) test -run xxx -bench 'BenchmarkWALAppend' -benchtime 500x ./internal/durable

# Wire-codec robustness: decode must never panic on arbitrary bytes.
fuzz:
	$(GO) test -run xxx -fuzz FuzzWireDecode -fuzztime 30s ./internal/wire

profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run xxx -bench '$(BENCH)' -benchtime 3x -cpuprofile $(PROFILE_DIR)/cpu.prof -memprofile $(PROFILE_DIR)/mem.prof .
	$(GO) tool pprof -top -nodecount=25 $(PROFILE_DIR)/cpu.prof

clean:
	rm -rf $(PROFILE_DIR)
	$(GO) clean -testcache
