// Benchmarks regenerating the paper's evaluation (§6) as testing.B
// targets — one per figure — plus micro-benchmarks of every substrate the
// protocol's costs decompose into (Merkle updates, CoSi rounds, block
// encoding, signed transport).
//
// The figure benchmarks report the paper's series as custom metrics
// (tps, ms/txn, mht_ms) so `go test -bench` output can be compared against
// the figures directly; cmd/fidesbench prints the same sweeps as tables.
package fides

import (
	"context"
	"crypto/rand"
	"fmt"
	"math/big"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/merkle"
	"repro/internal/schnorr"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
)

// benchRequests keeps figure benchmarks affordable under `go test -bench`;
// cmd/fidesbench runs the paper-scale 1000-request sweeps.
const benchRequests = 120

func reportPoint(b *testing.B, m *bench.Metrics) {
	b.ReportMetric(m.ThroughputTPS, "tps")
	b.ReportMetric(m.LatencyMS, "ms/txn")
	if m.MHTUpdateMS > 0 {
		b.ReportMetric(m.MHTUpdateMS, "mht_ms")
	}
}

func runPoint(b *testing.B, cfg bench.RunConfig) {
	b.Helper()
	cfg.Requests = benchRequests
	cfg.NetworkLatency = 100 * time.Microsecond
	b.ResetTimer()
	var last *bench.Metrics
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		m, err := bench.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	reportPoint(b, last)
}

// BenchmarkFig12 regenerates Figure 12: 2PC vs TFCommit, one transaction
// per block, varying the server count.
func BenchmarkFig12(b *testing.B) {
	for _, servers := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("2pc/servers=%d", servers), func(b *testing.B) {
			runPoint(b, bench.RunConfig{Servers: servers, Batch: 1, ItemsPerShard: 10000, Protocol: core.ProtocolTwoPC})
		})
		b.Run(fmt.Sprintf("tfcommit/servers=%d", servers), func(b *testing.B) {
			runPoint(b, bench.RunConfig{Servers: servers, Batch: 1, ItemsPerShard: 10000, Protocol: core.ProtocolTFCommit})
		})
	}
}

// BenchmarkFig13 regenerates Figure 13: transactions per block from 2 to
// 120 at 5 servers.
func BenchmarkFig13(b *testing.B) {
	for _, batch := range []int{2, 40, 80, 120} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			runPoint(b, bench.RunConfig{Servers: 5, Batch: batch, ItemsPerShard: 10000})
		})
	}
}

// BenchmarkFig14 regenerates Figure 14: server count from 3 to 9 at 100
// transactions per block, including the MHT update time series.
func BenchmarkFig14(b *testing.B) {
	for _, servers := range []int{3, 5, 7, 9} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			runPoint(b, bench.RunConfig{Servers: servers, Batch: 100, ItemsPerShard: 10000})
		})
	}
}

// BenchmarkFig15 regenerates Figure 15: items per shard from 1000 to 10000
// at 5 servers and 100 transactions per block.
func BenchmarkFig15(b *testing.B) {
	for _, items := range []int{1000, 4000, 7000, 10000} {
		b.Run(fmt.Sprintf("items=%d", items), func(b *testing.B) {
			runPoint(b, bench.RunConfig{Servers: 5, Batch: 100, ItemsPerShard: items})
		})
	}
}

// --- Substrate micro-benchmarks (ablations; docs/protocol.md) ---

// BenchmarkMerkleIncrementalUpdate measures the O(log n) leaf update that
// dominates Figure 14's MHT series, across the shard sizes of Figure 15.
func BenchmarkMerkleIncrementalUpdate(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			contents := make([][]byte, n)
			for i := range contents {
				contents[i] = []byte(fmt.Sprintf("item-%06d", i))
			}
			tree := merkle.NewFromContents(contents)
			leaf := merkle.LeafHash([]byte("updated"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.Update(i%n, leaf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMerkleFullRebuild is the ablation against incremental updates:
// rebuilding the tree from scratch per block, as a naive implementation
// would.
func BenchmarkMerkleFullRebuild(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			contents := make([][]byte, n)
			for i := range contents {
				contents[i] = []byte(fmt.Sprintf("item-%06d", i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				merkle.NewFromContents(contents)
			}
		})
	}
}

// BenchmarkOverlayRoot measures the cohort-side Vote-phase work: computing
// the in-memory root for a 100-txn block's worth of accesses and reverting.
func BenchmarkOverlayRoot(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			ids := make([]txn.ItemID, n)
			for i := range ids {
				ids[i] = txn.ItemID(fmt.Sprintf("k%06d", i))
			}
			shard := store.NewShard(ids, nil, store.Config{})
			accesses := make([]store.Access, 100)
			for i := range accesses {
				accesses[i] = store.Access{
					ReadIDs: []txn.ItemID{ids[(i*97)%n]},
					Writes: []txn.WriteEntry{
						{ID: ids[(i*193+1)%n], NewVal: []byte("v")},
					},
					TS: txn.Timestamp{Time: uint64(i + 1), ClientID: 1},
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := shard.OverlayRoot(accesses); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoSiRound measures one full collective-signing round (commit,
// aggregate, challenge, respond, finalize, verify) for the server counts of
// Figure 12.
func BenchmarkCoSiRound(b *testing.B) {
	record := []byte("block signing bytes")
	for _, n := range []int{3, 5, 7, 9} {
		b.Run(fmt.Sprintf("signers=%d", n), func(b *testing.B) {
			privs := make([]*schnorr.PrivateKey, n)
			pubs := make([]schnorr.PublicKey, n)
			for i := range privs {
				priv, err := schnorr.GenerateKey(nil)
				if err != nil {
					b.Fatal(err)
				}
				privs[i] = priv
				pubs[i] = priv.Public
			}
			aggPub, err := cosi.AggregatePublicKeys(pubs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				commitments := make([]cosi.Commitment, n)
				secrets := make([]cosi.Secret, n)
				for j := 0; j < n; j++ {
					commitments[j], secrets[j], err = cosi.Commit(nil)
					if err != nil {
						b.Fatal(err)
					}
				}
				aggV, err := cosi.AggregateCommitments(commitments)
				if err != nil {
					b.Fatal(err)
				}
				ch := cosi.Challenge(aggV, aggPub, record)
				responses := make([]*big.Int, n)
				for j := 0; j < n; j++ {
					responses[j], err = cosi.Respond(privs[j], &secrets[j], ch)
					if err != nil {
						b.Fatal(err)
					}
				}
				aggR, err := cosi.AggregateResponses(responses)
				if err != nil {
					b.Fatal(err)
				}
				if !cosi.Verify(aggPub, record, cosi.Finalize(ch, aggR)) {
					b.Fatal("invalid signature")
				}
			}
		})
	}
}

// BenchmarkCoSiVerify measures verification alone — the cost a client or
// auditor pays per block, which CoSi keeps equal to one Schnorr signature
// regardless of the signer count (paper §2.2).
func BenchmarkCoSiVerify(b *testing.B) {
	record := []byte("block signing bytes")
	for _, n := range []int{3, 9} {
		b.Run(fmt.Sprintf("signers=%d", n), func(b *testing.B) {
			privs := make([]*schnorr.PrivateKey, n)
			pubs := make([]schnorr.PublicKey, n)
			commitments := make([]cosi.Commitment, n)
			secrets := make([]cosi.Secret, n)
			for i := range privs {
				priv, _ := schnorr.GenerateKey(nil)
				privs[i] = priv
				pubs[i] = priv.Public
				commitments[i], secrets[i], _ = cosi.Commit(nil)
			}
			aggPub, _ := cosi.AggregatePublicKeys(pubs)
			aggV, _ := cosi.AggregateCommitments(commitments)
			ch := cosi.Challenge(aggV, aggPub, record)
			responses := make([]*big.Int, n)
			for i := range privs {
				responses[i], _ = cosi.Respond(privs[i], &secrets[i], ch)
			}
			aggR, _ := cosi.AggregateResponses(responses)
			sig := cosi.Finalize(ch, aggR)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !cosi.Verify(aggPub, record, sig) {
					b.Fatal("invalid")
				}
			}
		})
	}
}

// BenchmarkBlockEncode measures the canonical encoding of a 100-transaction
// block — the bytes every challenge, signature and hash pointer covers.
func BenchmarkBlockEncode(b *testing.B) {
	block := &ledger.Block{Height: 42, PrevHash: make([]byte, 32)}
	for i := 0; i < 100; i++ {
		rec := ledger.TxnRecord{
			TxnID: fmt.Sprintf("c0001-t%d", i),
			TS:    txn.Timestamp{Time: uint64(i + 1), ClientID: 1},
		}
		for j := 0; j < 3; j++ {
			rec.Reads = append(rec.Reads, txn.ReadEntry{
				ID: txn.ItemID(fmt.Sprintf("k%06d", i*5+j)), Value: []byte("0123456789abcdef"),
			})
		}
		for j := 0; j < 2; j++ {
			rec.Writes = append(rec.Writes, txn.WriteEntry{
				ID: txn.ItemID(fmt.Sprintf("k%06d", i*5+3+j)), NewVal: []byte("0123456789abcdef"),
			})
		}
		block.Txns = append(block.Txns, rec)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = block.SigningBytes()
	}
}

// BenchmarkBlockHash measures the chaining hash over a 100-txn block.
func BenchmarkBlockHash(b *testing.B) {
	block := &ledger.Block{Height: 7, PrevHash: make([]byte, 32)}
	for i := 0; i < 100; i++ {
		block.Txns = append(block.Txns, ledger.TxnRecord{
			TxnID: fmt.Sprintf("t%d", i), TS: txn.Timestamp{Time: uint64(i + 1), ClientID: 1},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = block.Hash()
	}
}

// BenchmarkEnvelopeSealOpen measures the per-message authentication cost
// every Fides message pays (paper §3.1).
func BenchmarkEnvelopeSealOpen(b *testing.B) {
	reg := identity.NewRegistry()
	ident, err := identity.New("s00", identity.RoleServer, nil)
	if err != nil {
		b.Fatal(err)
	}
	reg.Register(ident.Public())
	payload := make([]byte, 512)
	if _, err := rand.Read(payload); err != nil {
		b.Fatal(err)
	}
	b.Run("seal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = identity.Seal(ident, payload)
		}
	})
	env := identity.Seal(ident, payload)
	b.Run("open", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reg.Open(env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLocalTransportCall measures one signed request/response over the
// in-process network with no simulated latency — the framing floor under
// every protocol phase.
func BenchmarkLocalTransportCall(b *testing.B) {
	net := transport.NewLocalNetwork(0)
	reg := identity.NewRegistry()
	identA, _ := identity.New("a", identity.RoleClient, nil)
	identB, _ := identity.New("b", identity.RoleServer, nil)
	reg.Register(identA.Public())
	reg.Register(identB.Public())
	net.Endpoint(identB, reg, transport.HandlerFunc(
		func(_ context.Context, _ identity.NodeID, msg transport.Message) (transport.Message, error) {
			return msg, nil
		}))
	a := net.Endpoint(identA, reg, nil)
	msg, _ := transport.NewMessage("echo", "payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Call(context.Background(), "b", msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditReplay measures the auditor's log replay cost as the log
// grows — the offline audit of §3.3 over committed history.
func BenchmarkAuditReplay(b *testing.B) {
	for _, blocks := range []int{10, 50} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			cluster, err := core.NewCluster(core.Config{
				NumServers: 3, ItemsPerShard: 256, BatchSize: 4,
				BatchWait: 500 * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			ctx := context.Background()
			cl, err := cluster.NewClient()
			if err != nil {
				b.Fatal(err)
			}
			for cluster.ServerAt(0).Log().Len() < blocks {
				s := cl.Begin()
				item := core.ItemName(cluster.ServerAt(0).Log().Len()%3, cluster.ServerAt(0).Log().Len()%11)
				if _, err := s.Read(ctx, item); err != nil {
					b.Fatal(err)
				}
				if err := s.Write(ctx, item, []byte("v")); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Commit(ctx); err != nil {
					b.Fatal(err)
				}
			}
			auditor, err := cluster.NewAuditor()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := auditor.Run(ctx, AuditOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if !report.Clean() {
					b.Fatalf("dirty audit: %v", report.Findings)
				}
			}
		})
	}
}
