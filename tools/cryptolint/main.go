// Command cryptolint enforces the verification-plane boundary: on the
// commit hot path, every signature check must go through the injected
// crypto.Verifier, never call ed25519.Verify or the cosi verify functions
// directly. The pluggable backend (and its batching, caching and
// worker-pool parallelism) only holds if no call site bypasses it — one
// stray cosi.Verify re-serializes that phase and silently exempts itself
// from the fides_crypto_* metrics.
//
// It scans the hot-path packages' non-test Go sources textually for
// `ed25519.Verify` and `cosi.Verify*` call sites. The crypto package
// itself (where the backends live), the ledger and identity primitives
// the backends are built from, and the cold paths (durable recovery,
// offline bundle verification) are exempt by not being scanned.
//
//	cryptolint            # lint the default hot-path package list
//	cryptolint -src internal/server,internal/tfcommit
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// directVerifyRe matches a direct signature-verification call. cosi.Verify
// covers Verify, VerifyParticipants and VerifyPartial*; ed25519.Verify
// covers the stdlib form.
var directVerifyRe = regexp.MustCompile(`\b(ed25519\.Verify|cosi\.Verify)`)

// hotPathDirs is the commit hot path: the server's validate/apply,
// the termination service, the batcher and cluster plumbing, the client's
// decision check, and the read-side peers. internal/crypto is the one
// place direct verification belongs.
const hotPathDirs = "internal/server,internal/tfcommit,internal/client,internal/core,internal/lightclient,internal/watch,internal/audit"

func main() {
	src := flag.String("src", hotPathDirs, "comma-separated directories that must route verification through crypto.Verifier")
	flag.Parse()

	var problems []string
	for _, dir := range strings.Split(*src, ",") {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for i, line := range strings.Split(string(raw), "\n") {
				trimmed := strings.TrimSpace(line)
				if strings.HasPrefix(trimmed, "//") {
					continue
				}
				if m := directVerifyRe.FindString(line); m != "" {
					problems = append(problems, fmt.Sprintf("%s:%d: direct %s call bypasses the crypto.Verifier plane", path, i+1, m))
				}
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cryptolint: %v\n", err)
			os.Exit(1)
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "cryptolint: "+p)
		}
		fmt.Fprintf(os.Stderr, "cryptolint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("cryptolint: ok")
}
