#!/bin/sh
# Multi-process observability smoke: boot a real 3-server deployment with
# -metrics-addr, push a client workload through it, then scrape every
# server's /metrics and assert the commit-path instruments actually moved.
# This is the check that the serving surface works end to end — unit tests
# cover the registry, this covers the wiring (fides-server flags, the HTTP
# mux, per-process registries, WAL instruments under a real data dir).
#
# It then launches the fides-watch watchtower against the same deployment
# and asserts its /integrity document converges: verified height catches
# the tip, lag reaches 0, and an honest cluster produces zero findings.
#
# Usage: sh tools/metrics-smoke.sh   (from the repo root; needs free ports)
set -eu

BASE_PORT=${BASE_PORT:-7180}
METRICS_PORT=${METRICS_PORT:-9180}
WATCH_PORT=${WATCH_PORT:-9190}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/fides-metrics-smoke.XXXXXX")
PIDS=""

cleanup() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fetch() { # fetch URL → stdout; curl or wget, whichever exists
    url=$1
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$url"
    else
        wget -qO- "$url"
    fi
}

fail() {
    echo "metrics-smoke: FAIL: $*" >&2
    exit 1
}

echo "metrics-smoke: building..."
go build -o "$WORK/fides-keygen" ./cmd/fides-keygen
go build -o "$WORK/fides-server" ./cmd/fides-server
go build -o "$WORK/fides-client" ./cmd/fides-client
go build -o "$WORK/fides-watch" ./cmd/fides-watch

"$WORK/fides-keygen" -n 3 -base-port "$BASE_PORT" -batch 4 \
    -out "$WORK/deployment.json" -data-dir "$WORK/data" -fsync group

for i in 0 1 2; do
    "$WORK/fides-server" -deployment "$WORK/deployment.json" -index "$i" \
        -metrics-addr "127.0.0.1:$((METRICS_PORT + i))" -log-level warn \
        2>"$WORK/server-$i.log" &
    PIDS="$PIDS $!"
done

# Wait for every metrics endpoint to come up.
for i in 0 1 2; do
    ok=0
    for _ in $(seq 1 50); do
        if fetch "http://127.0.0.1:$((METRICS_PORT + i))/healthz" >/dev/null 2>&1; then
            ok=1
            break
        fi
        sleep 0.2
    done
    [ "$ok" = 1 ] || { cat "$WORK/server-$i.log" >&2; fail "server $i /healthz never came up"; }
done

echo "metrics-smoke: committing workload..."
"$WORK/fides-client" -deployment "$WORK/deployment.json" -txns 12 >/dev/null

# metric <scrape> <series-prefix>: print the value of the first matching
# series, 0 when absent.
metric() {
    printf '%s\n' "$1" | awk -v pre="$2" \
        'index($0, pre) == 1 { print $NF; found = 1; exit } END { if (!found) print 0 }'
}

assert_nonzero() { # scrape series-prefix where
    val=$(metric "$1" "$2")
    case "$val" in
    0 | 0.0 | "") fail "$3: $2 is zero or missing" ;;
    esac
    echo "metrics-smoke: $3 $2 = $val"
}

coord=$(fetch "http://127.0.0.1:$METRICS_PORT/metrics")
assert_nonzero "$coord" 'fides_tfcommit_rounds_total{decision="commit"' "coordinator"
assert_nonzero "$coord" 'fides_tfcommit_phase_seconds_count{phase="cosign"' "coordinator"
assert_nonzero "$coord" 'fides_batcher_block_txns_count' "coordinator"
assert_nonzero "$coord" 'fides_wal_fsync_seconds_count' "coordinator"

for i in 0 1 2; do
    scrape=$(fetch "http://127.0.0.1:$((METRICS_PORT + i))/metrics")
    assert_nonzero "$scrape" 'fides_server_log_height' "server $i"
    assert_nonzero "$scrape" 'fides_wal_append_seconds_count' "server $i"
done

# pprof must serve from the same mux.
fetch "http://127.0.0.1:$METRICS_PORT/debug/pprof/cmdline" >/dev/null ||
    fail "coordinator /debug/pprof/cmdline unreachable"

# Watchtower: tail the 12-txn chain, re-verify it, and serve the
# integrity SLO document. Lag must converge to 0 with a nonzero verified
# height, and an honest deployment must produce zero findings.
echo "metrics-smoke: starting watchtower..."
"$WORK/fides-watch" -deployment "$WORK/deployment.json" \
    -metrics-addr "127.0.0.1:$WATCH_PORT" -interval 200ms -sample-rate 1 \
    -log-level warn 2>"$WORK/watch.log" &
PIDS="$PIDS $!"

# json_field <doc> <name>: extract a bare numeric/boolean field value.
json_field() {
    printf '%s\n' "$1" | sed -n "s/^.*\"$2\": *\([0-9a-z]*\).*$/\1/p" | head -n 1
}

converged=0
for _ in $(seq 1 50); do
    if integrity=$(fetch "http://127.0.0.1:$WATCH_PORT/integrity" 2>/dev/null); then
        lag=$(json_field "$integrity" lag)
        verified=$(json_field "$integrity" verified)
        if [ "${lag:-1}" = 0 ] && [ "${verified:-0}" -gt 0 ]; then
            converged=1
            break
        fi
    fi
    sleep 0.2
done
[ "$converged" = 1 ] || { cat "$WORK/watch.log" >&2; fail "watchtower lag never converged to 0: ${integrity:-no response}"; }
echo "metrics-smoke: watchtower verified=$verified lag=$lag"

findings=$(json_field "$integrity" findings)
[ "${findings:-1}" = 0 ] || fail "watchtower reported $findings findings on an honest deployment"
healthy=$(json_field "$integrity" healthy)
[ "$healthy" = true ] || fail "watchtower /integrity not healthy: $integrity"

wscrape=$(fetch "http://127.0.0.1:$WATCH_PORT/metrics")
assert_nonzero "$wscrape" 'fides_watch_blocks_verified_total' "watchtower"
assert_nonzero "$wscrape" 'fides_watch_verified_height' "watchtower"
assert_nonzero "$wscrape" 'fides_watch_sampled_reads_total{outcome="ok"' "watchtower"

echo "metrics-smoke: PASS"
