// Command linkcheck verifies the repository's markdown cross-references
// offline: every relative link target must exist, and every in-page or
// cross-page #fragment must match a heading's GitHub-style anchor.
// External http(s) links are not fetched (CI must not depend on the
// network); mailto: links are ignored.
//
//	go run ./tools/linkcheck README.md docs/*.md
//
// With no arguments it checks the repository's documentation set (the
// same set `make docs-check` passes). Exits non-zero listing every
// broken link.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// defaultDocs is the documentation set checked when no files are given.
var defaultDocs = []string{
	"README.md",
	"DESIGN.md",
	"CHANGES.md",
	"ROADMAP.md",
	"docs/architecture.md",
	"docs/protocol.md",
	"docs/operations.md",
	"examples/README.md",
}

// linkRe matches inline markdown links [text](target). Images use the
// same syntax with a leading bang and are matched too.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingRe matches ATX headings, whose text anchors #fragment links.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// anchorStrip removes the characters GitHub drops when slugging headings.
var anchorStrip = regexp.MustCompile(`[^\w\- ]`)

// slug converts a heading to its GitHub-style anchor.
func slug(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	// Inline code/emphasis markers disappear before slugging.
	s = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(s)
	s = anchorStrip.ReplaceAllString(s, "")
	return strings.ReplaceAll(s, " ", "-")
}

// anchorsOf returns the set of heading anchors a markdown file defines.
func anchorsOf(path string) (map[string]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := make(map[string]bool)
	for _, m := range headingRe.FindAllStringSubmatch(string(raw), -1) {
		anchors[slug(m[1])] = true
	}
	return anchors, nil
}

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		files = defaultDocs
	}
	broken := 0
	complain := func(file, link, why string) {
		fmt.Fprintf(os.Stderr, "linkcheck: %s: %s: %s\n", file, link, why)
		broken++
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			complain(file, "-", err.Error())
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(raw), -1) {
			link := m[1]
			switch {
			case strings.HasPrefix(link, "http://"), strings.HasPrefix(link, "https://"),
				strings.HasPrefix(link, "mailto:"):
				continue
			}
			target, frag, _ := strings.Cut(link, "#")
			targetPath := file // pure-fragment links point into this file
			if target != "" {
				targetPath = filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(targetPath); err != nil {
					complain(file, link, "target does not exist")
					continue
				}
			}
			if frag != "" && strings.HasSuffix(targetPath, ".md") {
				anchors, err := anchorsOf(targetPath)
				if err != nil {
					complain(file, link, err.Error())
					continue
				}
				if !anchors[frag] {
					complain(file, link, fmt.Sprintf("no heading anchors to #%s in %s", frag, targetPath))
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) clean\n", len(files))
}
