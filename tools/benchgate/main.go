// Command benchgate compares a fresh `fidesbench -json` report against a
// committed baseline (BENCH_PR*.json) and gates CI on throughput
// collapses: rows whose TPS fell below the fail threshold fail the build,
// rows below the warn threshold are reported as warnings only (CI uploads
// them as an artifact). Thresholds are deliberately generous — CI runners
// are noisy and differently sized than the machines the baselines were
// measured on — so only a real collapse (default: losing more than half
// the baseline throughput) blocks a merge.
//
//	benchgate -baseline BENCH_PR2.json -current ci-bench.json
//	benchgate -baseline BENCH_PR2.json -current ci-bench.json -fail-below 0.5 -warn-below 0.85
//
// Rows are matched on their full configuration key (experiment, protocol,
// servers, batch, items, requests, latency, fsync, pipeline,
// coordinators, read path); rows present in only one report are skipped
// and reported, never failed on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// row mirrors the fields of internal/bench.Row that identify and score a
// data point (decoded structurally so the tool has no dependency on the
// bench package's evolution).
type row struct {
	Experiment    string  `json:"experiment"`
	Protocol      string  `json:"protocol"`
	Servers       int     `json:"servers"`
	Batch         int     `json:"batch"`
	ItemsPerShard int     `json:"items_per_shard"`
	Requests      int     `json:"requests"`
	LatencyUS     int64   `json:"net_latency_us"`
	Fsync         string  `json:"fsync"`
	Pipeline      int     `json:"pipeline"`
	Coordinators  int     `json:"coordinators"`
	Crypto        string  `json:"crypto"`
	MaxProcs      int     `json:"max_procs"`
	ReadFraction  float64 `json:"read_fraction"`
	ReadPath      string  `json:"read_path"`
	TPS           float64 `json:"tps"`

	// Latency tail fields (fidesbench ≥ PR 7). Carried for reporting only:
	// tails are too noisy on shared CI runners to gate on, and baselines
	// written before the fields existed decode them as zero, which the
	// report line treats as "not recorded".
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

func (r row) key() string {
	return fmt.Sprintf("%s|%s|s%d|b%d|i%d|r%d|l%d|f%s|p%d|c%d|y%s|m%d|rf%.2f|%s",
		r.Experiment, r.Protocol, r.Servers, r.Batch, r.ItemsPerShard,
		r.Requests, r.LatencyUS, r.Fsync, r.Pipeline, r.Coordinators,
		r.Crypto, r.MaxProcs, r.ReadFraction, r.ReadPath)
}

type reportFile struct {
	Schema string `json:"schema"`
	Rows   []row  `json:"rows"`
}

func load(path string) (map[string]row, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep reportFile
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(rep.Schema, "fidesbench/") {
		return nil, fmt.Errorf("%s: not a fidesbench report (schema %q)", path, rep.Schema)
	}
	out := make(map[string]row, len(rep.Rows))
	for _, r := range rep.Rows {
		out[r.key()] = r
	}
	return out, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline report (BENCH_PR*.json)")
		currentPath  = flag.String("current", "", "freshly measured report to gate")
		failBelow    = flag.Float64("fail-below", 0.5, "fail if current TPS < this fraction of baseline")
		warnBelow    = flag.Float64("warn-below", 0.85, "warn if current TPS < this fraction of baseline")
		warnFile     = flag.String("warn-file", "", "also write warnings to this file (for CI artifacts)")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	var fails, warns []string
	compared, skipped := 0, 0
	for key, base := range baseline {
		cur, ok := current[key]
		if !ok {
			skipped++
			continue
		}
		compared++
		if base.TPS <= 0 {
			continue
		}
		ratio := cur.TPS / base.TPS
		line := fmt.Sprintf("%s: %.1f → %.1f tps (%.0f%% of baseline)", key, base.TPS, cur.TPS, ratio*100)
		if cur.P99MS > 0 {
			line += fmt.Sprintf(" [p50/p95/p99 %.2f/%.2f/%.2f ms]", cur.P50MS, cur.P95MS, cur.P99MS)
		}
		switch {
		case ratio < *failBelow:
			fails = append(fails, line)
		case ratio < *warnBelow:
			warns = append(warns, line)
		}
	}

	fmt.Printf("benchgate: %d rows compared, %d baseline rows without a current match\n", compared, skipped)
	if compared == 0 {
		// A gate that compared nothing protects nothing — make that loud.
		fmt.Fprintln(os.Stderr, "benchgate: no comparable rows; run fidesbench with the baseline's configuration")
		os.Exit(2)
	}
	for _, w := range warns {
		fmt.Println("WARN", w)
	}
	for _, f := range fails {
		fmt.Println("FAIL", f)
	}
	if *warnFile != "" && (len(warns) > 0 || len(fails) > 0) {
		var b strings.Builder
		for _, w := range warns {
			fmt.Fprintln(&b, "WARN", w)
		}
		for _, f := range fails {
			fmt.Fprintln(&b, "FAIL", f)
		}
		if err := os.WriteFile(*warnFile, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if len(fails) > 0 {
		fmt.Printf("benchgate: %d rows collapsed below %.0f%% of baseline\n", len(fails), *failBelow*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: pass")
}
