// Command metriclint cross-checks the metric catalog: every instrument
// registered in the source tree must be documented in
// docs/observability.md with the right kind, every documented metric must
// still exist in code, and all names must follow the conventions
//
//   - snake_case: [a-z][a-z0-9_]*, no trailing underscore
//   - counters end in _total
//   - histograms end in a unit suffix (_seconds, _bytes, _txns)
//   - gauges carry no counter/unit suffix
//
// It scans Go source textually for Counter("...")/Gauge("...")/
// Histogram("...") registration calls (test files excluded, so test-only
// fixtures don't need documenting), which keeps the tool free of build
// constraints — a metric name is a string literal at its registration
// site by construction, since internal/obs validates names at runtime.
//
// -require lists name prefixes (comma-separated) at least one registered
// metric must carry — a tripwire against silently deleting a whole
// instrument family (e.g. the watchtower's fides_watch_*) while its docs
// and dashboards still reference it.
//
//	metriclint            # lint ./internal ./cmd against docs/observability.md
//	metriclint -docs docs/observability.md -src internal,cmd
//	metriclint -require fides_watch_,fides_commit_
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var registerRe = regexp.MustCompile(`\.(Counter|Gauge|Histogram)\("(fides_[^"]*)"`)

// docRowRe matches catalog table rows: | `fides_x` | kind | ...
var docRowRe = regexp.MustCompile("^\\|\\s*`(fides_[a-z0-9_]*)`\\s*\\|\\s*(counter|gauge|histogram)\\s*\\|")

func validName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return name[len(name)-1] != '_'
}

var histSuffixes = []string{"_seconds", "_bytes", "_txns"}

func kindConvention(name, kind string) string {
	switch kind {
	case "Counter", "counter":
		if !strings.HasSuffix(name, "_total") {
			return "counter must end in _total"
		}
	case "Histogram", "histogram":
		for _, s := range histSuffixes {
			if strings.HasSuffix(name, s) {
				return ""
			}
		}
		return fmt.Sprintf("histogram must end in a unit suffix (%s)", strings.Join(histSuffixes, ", "))
	case "Gauge", "gauge":
		if strings.HasSuffix(name, "_total") {
			return "gauge must not end in _total"
		}
	}
	return ""
}

func scanSource(dirs []string) (map[string]string, []string, error) {
	kinds := make(map[string]string) // name → Counter|Gauge|Histogram
	var problems []string
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range registerRe.FindAllStringSubmatch(string(raw), -1) {
				kind, name := m[1], m[2]
				if !validName(name) {
					problems = append(problems, fmt.Sprintf("%s: invalid metric name %q (want snake_case, no trailing _)", path, name))
					continue
				}
				if msg := kindConvention(name, kind); msg != "" {
					problems = append(problems, fmt.Sprintf("%s: %s: %s", path, name, msg))
				}
				if prev, ok := kinds[name]; ok && prev != kind {
					problems = append(problems, fmt.Sprintf("%s: %s registered as both %s and %s", path, name, prev, kind))
				}
				kinds[name] = kind
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return kinds, problems, nil
}

func scanDocs(path string) (map[string]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, line := range strings.Split(string(raw), "\n") {
		if m := docRowRe.FindStringSubmatch(line); m != nil {
			out[m[1]] = m[2]
		}
	}
	return out, nil
}

func main() {
	var (
		docsPath = flag.String("docs", "docs/observability.md", "metric catalog to check against")
		src      = flag.String("src", "internal,cmd", "comma-separated source roots to scan")
		require  = flag.String("require", "fides_watch_,fides_crypto_", "comma-separated name prefixes at least one registered metric must carry (empty disables)")
	)
	flag.Parse()

	srcKinds, problems, err := scanSource(strings.Split(*src, ","))
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(2)
	}
	if len(srcKinds) == 0 {
		fmt.Fprintln(os.Stderr, "metriclint: no registrations found — wrong -src?")
		os.Exit(2)
	}
	docKinds, err := scanDocs(*docsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(2)
	}
	if len(docKinds) == 0 {
		fmt.Fprintf(os.Stderr, "metriclint: no catalog rows in %s — format drift?\n", *docsPath)
		os.Exit(2)
	}

	for name, kind := range srcKinds {
		dk, ok := docKinds[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: registered in code but missing from %s", name, *docsPath))
			continue
		}
		if !strings.EqualFold(dk, kind) {
			problems = append(problems, fmt.Sprintf("%s: code registers a %s, %s documents a %s", name, strings.ToLower(kind), *docsPath, dk))
		}
	}
	for name := range docKinds {
		if _, ok := srcKinds[name]; !ok {
			problems = append(problems, fmt.Sprintf("%s: documented in %s but no longer registered anywhere", name, *docsPath))
		}
	}
	if *require != "" {
		for _, prefix := range strings.Split(*require, ",") {
			found := false
			for name := range srcKinds {
				if strings.HasPrefix(name, prefix) {
					found = true
					break
				}
			}
			if !found {
				problems = append(problems, fmt.Sprintf("no registered metric carries the required prefix %q", prefix))
			}
		}
	}

	sort.Strings(problems)
	for _, p := range problems {
		fmt.Println("FAIL", p)
	}
	if len(problems) > 0 {
		fmt.Printf("metriclint: %d problems (%d metrics in code, %d documented)\n", len(problems), len(srcKinds), len(docKinds))
		os.Exit(1)
	}
	fmt.Printf("metriclint: ok — %d metric families, catalog and code agree\n", len(srcKinds))
}
