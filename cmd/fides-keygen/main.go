// Command fides-keygen generates a multi-process Fides deployment
// descriptor: server identities with listen addresses, client identities,
// and the shard layout.
//
//	fides-keygen -n 3 -base-port 7100 -items 1000 -out deployment.json
//
// Then start each server in its own process:
//
//	fides-server -deployment deployment.json -index 0   # coordinator
//	fides-server -deployment deployment.json -index 1
//	fides-server -deployment deployment.json -index 2
//
// and drive traffic plus an audit:
//
//	fides-client -deployment deployment.json -txns 20 -audit
//
// The descriptor holds every node's private keys in one file purely for
// demonstration; a production deployment hands each server only its own
// keys and publishes the public halves.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/deploy"
)

func main() {
	var (
		n            = flag.Int("n", 3, "number of servers")
		basePort     = flag.Int("base-port", 7100, "first listen port; server i listens on base-port+i")
		items        = flag.Int("items", 1000, "items per shard")
		batch        = flag.Int("batch", 16, "transactions per block")
		clients      = flag.Int("clients", 2, "client identities to generate")
		multiVersion = flag.Bool("multi-version", false, "retain historical versions")
		out          = flag.String("out", "deployment.json", "output path")
		dataDir      = flag.String("data-dir", "", "deployment-wide data directory for WAL+snapshot durability (empty = in-memory servers)")
		fsync        = flag.String("fsync", "", "WAL flush discipline: always|group|off")
		snapEvery    = flag.Int("snapshot-every", 0, "snapshot each shard every N blocks (0 = no snapshots)")
		pipeline     = flag.Int("pipeline", 1, "TFCommit blocks in flight at once (1 = serial rounds)")
		crypto       = flag.String("crypto", "", "verification backend: serial|batched (empty = serial)")
		cryptoW      = flag.Int("crypto-workers", 0, "batched-backend worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	d, err := deploy.Generate(*n, *basePort, *items, *batch, *clients, *multiVersion)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fides-keygen: %v\n", err)
		os.Exit(1)
	}
	d.DataDir = *dataDir
	d.Fsync = *fsync
	d.SnapshotEvery = *snapEvery
	d.Pipeline = *pipeline
	d.Crypto = *crypto
	d.CryptoWorkers = *cryptoW
	if err := d.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "fides-keygen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d servers (ports %d..%d), %d clients, %d items/shard\n",
		*out, *n, *basePort, *basePort+*n-1, *clients, *items)
}
