// Command fides-watch runs the continuous integrity watchtower against a
// multi-process Fides deployment: it tails the co-signed chain, re-verifies
// every new block through the streaming audit replay, probes every server's
// served headers, and samples proof-carrying verified reads — detecting
// Byzantine tampering online instead of at the next offline audit.
//
//	fides-watch -deployment deployment.json -metrics-addr 127.0.0.1:9200
//
// Progress is exported as the fides_watch_* metric families on /metrics,
// and the integrity SLO document (verified height vs tip lag, findings,
// firing alert rules) is served as JSON on /integrity. Every finding's
// portable evidence bundle is written under -bundle-dir; a third party
// re-verifies it offline with `fides-client -verify-bundle <file>`.
//
// With -checkpoint the streaming replay's verified checkpoint is persisted
// after every poll and resumed from at startup, so a restarted watchtower
// (or a later full `fides-client -audit`) need not replay from genesis.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/deploy"
	"repro/internal/identity"
	"repro/internal/obs"
	"repro/internal/peer"
	"repro/internal/transport"
	"repro/internal/watch"
)

func main() {
	var (
		deploymentPath = flag.String("deployment", "deployment.json", "deployment descriptor")
		clientIndex    = flag.Int("client-index", 1, "deployment client identity to run as (default: the auditor identity)")
		metricsAddr    = flag.String("metrics-addr", "", "serve /metrics, /integrity, /healthz and /debug/pprof/* on this address (empty disables)")
		interval       = flag.Duration("interval", time.Second, "poll interval")
		sampleRate     = flag.Float64("sample-rate", 0.25, "per-server, per-poll probability of a sampled verified read (0 disables, 1 samples every server every poll)")
		sampleSeed     = flag.Int64("sample-seed", 1, "sampling RNG seed")
		maxLag         = flag.Uint64("max-lag", 16, "verified-height lag above which the verified_lag alert fires")
		checkpointPath = flag.String("checkpoint", "", "persist the streaming replay checkpoint to this JSON file after every poll and resume from it at startup")
		bundleDir      = flag.String("bundle-dir", "", "write each finding's evidence bundle under this directory (for fides-client -verify-bundle)")
		polls          = flag.Int("polls", 0, "exit after this many polls (0 = run until signalled)")
		logLevel       = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		logJSON        = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	if err := run(*deploymentPath, *clientIndex, *metricsAddr, *interval, *sampleRate, *sampleSeed,
		*maxLag, *checkpointPath, *bundleDir, *polls, *logLevel, *logJSON); err != nil {
		fmt.Fprintf(os.Stderr, "fides-watch: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, clientIndex int, metricsAddr string, interval time.Duration, sampleRate float64,
	sampleSeed int64, maxLag uint64, checkpointPath, bundleDir string, polls int, logLevel string, logJSON bool) error {
	d, err := deploy.Load(path)
	if err != nil {
		return err
	}
	if clientIndex < 0 || clientIndex >= len(d.Clients) {
		return fmt.Errorf("client index %d out of range (%d client identities)", clientIndex, len(d.Clients))
	}
	reg, err := d.Registry()
	if err != nil {
		return err
	}
	dir := d.Directory()

	ident, err := identity.Import(d.Clients[clientIndex])
	if err != nil {
		return err
	}
	node, err := transport.NewTCPNode(ident, reg, "127.0.0.1:0", nil)
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()
	for _, s := range d.Servers {
		node.SetAddress(s.Keys.ID, s.Addr)
	}

	o := &obs.Obs{
		Metrics: obs.NewRegistry(),
		Logger:  obs.NewLogger(os.Stderr, logLevel, logJSON).With("component", "fides-watch"),
	}
	o = o.With(obs.L("watcher", string(ident.ID)))
	logger := o.Log()

	var resume *audit.Checkpoint
	if checkpointPath != "" {
		if raw, rerr := os.ReadFile(checkpointPath); rerr == nil {
			cp := new(audit.Checkpoint)
			if uerr := json.Unmarshal(raw, cp); uerr != nil {
				return fmt.Errorf("checkpoint %s: %w", checkpointPath, uerr)
			}
			resume = cp
			logger.Info("resuming from checkpoint", "path", checkpointPath, "height", cp.Height)
		}
	}

	wt, err := watch.New(watch.Config{
		PeerConfig: peer.PeerConfig{
			Registry:    reg,
			Transport:   node,
			Servers:     d.ServerIDs(),
			Coordinator: d.CoordinatorID(),
			Obs:         o,
		},
		Layout:     dir,
		SampleRate: sampleRate,
		SampleSeed: sampleSeed,
		MaxLag:     maxLag,
		Resume:     resume,
	})
	if err != nil {
		return err
	}

	if metricsAddr != "" {
		ln, lerr := net.Listen("tcp", metricsAddr)
		if lerr != nil {
			return fmt.Errorf("metrics listener: %w", lerr)
		}
		mux := obs.NewServeMux(o.Metrics, func() bool { return wt.Status().Healthy })
		mux.Handle("/integrity", wt.Handler())
		msrv := &http.Server{Handler: mux}
		go func() {
			if serr := msrv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
				logger.Error("metrics server failed", "err", serr)
			}
		}()
		defer func() { _ = msrv.Close() }()
		logger.Info("observability endpoint up", "addr", ln.Addr().String(),
			"paths", "/metrics /integrity /healthz /debug/pprof/")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	t := time.NewTicker(interval)
	defer t.Stop()
	ctx := context.Background()
	bundled := 0
	for n := 0; ; {
		if err := wt.Poll(ctx); err != nil {
			logger.Warn("poll failed", "err", err)
		}
		st := wt.Status()
		logger.Debug("poll complete", "tip", st.Tip, "verified", st.Verified,
			"lag", st.Lag, "findings", st.Findings, "healthy", st.Healthy)
		if checkpointPath != "" {
			if err := persistCheckpoint(checkpointPath, wt.Checkpoint()); err != nil {
				logger.Warn("checkpoint persist failed", "err", err)
			}
		}
		if bundleDir != "" {
			bundled = dumpBundles(logger, bundleDir, wt, bundled)
		}
		n++
		if polls > 0 && n >= polls {
			if st.Findings > 0 {
				return fmt.Errorf("%d integrity finding(s) after %d polls", st.Findings, n)
			}
			logger.Info("done", "polls", n, "verified", st.Verified, "lag", st.Lag)
			return nil
		}
		select {
		case <-sig:
			logger.Info("shutting down", "verified", st.Verified, "findings", st.Findings)
			return nil
		case <-t.C:
		}
	}
}

// persistCheckpoint atomically replaces the checkpoint file.
func persistCheckpoint(path string, cp *audit.Checkpoint) error {
	raw, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// dumpBundles writes the evidence bundles of findings [from:] to disk in
// the portable wire encoding and returns the new high-water mark.
func dumpBundles(logger interface {
	Info(string, ...any)
	Warn(string, ...any)
}, dirPath string, wt *watch.Watchtower, from int) int {
	findings := wt.Findings()
	if err := os.MkdirAll(dirPath, 0o755); err != nil {
		logger.Warn("bundle dir", "err", err)
		return from
	}
	for i := from; i < len(findings); i++ {
		f := findings[i]
		if f.Bundle == nil {
			continue
		}
		name := filepath.Join(dirPath, fmt.Sprintf("bundle-%03d-%s.bin", i, f.Type))
		if err := os.WriteFile(name, f.Bundle.AppendBinary(nil), 0o644); err != nil {
			logger.Warn("bundle write failed", "path", name, "err", err)
			continue
		}
		logger.Info("evidence bundle written", "path", name, "kind", string(f.Type),
			"height", f.Height, "accused", fmt.Sprintf("%v", f.Servers))
	}
	return len(findings)
}
