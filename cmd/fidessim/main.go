// Command fidessim runs the deterministic cluster simulator (internal/sim)
// over seed sweeps: every scenario in the catalog (or one named scenario)
// is executed under each seed, its invariant contract checked, and every
// violation printed with the one-line repro that re-runs it
// byte-identically.
//
//	fidessim -list                             # catalog with descriptions
//	fidessim -scenario all -seeds 20           # sweep seeds 1..20 (CI smoke)
//	fidessim -scenario stale-reads -seed 42    # one exact case (a repro line)
//	fidessim -scenario all -seeds 200 -json report.json   # nightly sweep
//	fidessim -determinism                      # trace-hash equality proof
//
// Exit status is non-zero if any run violated its invariants.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
)

func main() {
	var (
		scenario    = flag.String("scenario", "all", "scenario name from -list, or all")
		seed        = flag.Uint64("seed", 0, "run exactly this one seed (0 = sweep -seeds)")
		seeds       = flag.Int("seeds", 5, "sweep seeds 1..N per scenario")
		jsonOut     = flag.String("json", "", "write all results to this JSON report file")
		failOut     = flag.String("failing", "", "write failing repro lines to this file (one per line)")
		list        = flag.Bool("list", false, "list scenarios and exit")
		determinism = flag.Bool("determinism", false, "also run each deterministic scenario twice per seed and require byte-identical traces")
		verbose     = flag.Bool("v", false, "print every run, not just failures")
	)
	flag.Parse()

	if *list {
		for _, sc := range sim.Catalog() {
			det := " "
			if sc.Deterministic {
				det = "*"
			}
			fmt.Printf("%s %-22s %s\n", det, sc.Name, sc.Description)
		}
		fmt.Println("\n(* = deterministic: byte-identical trace per seed)")
		return
	}

	var scenarios []sim.Scenario
	if *scenario == "all" {
		scenarios = sim.Catalog()
	} else {
		sc, err := sim.ByName(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		scenarios = []sim.Scenario{sc}
	}
	seedList := make([]uint64, 0, *seeds)
	if *seed != 0 {
		seedList = append(seedList, *seed)
	} else {
		for s := 1; s <= *seeds; s++ {
			seedList = append(seedList, uint64(s))
		}
	}

	start := time.Now()
	var results []*sim.Result
	var failures []*sim.Result
	runs := 0
	for _, sc := range scenarios {
		for _, s := range seedList {
			r := sim.Run(sc, s)
			runs++
			results = append(results, r)
			if !r.OK() {
				failures = append(failures, r)
				fmt.Printf("FAIL %-22s seed=%-6d %v\n", r.Scenario, r.Seed, r.Violations)
				fmt.Printf("     repro: %s\n", r.Repro)
			} else if *verbose {
				fmt.Printf("ok   %-22s seed=%-6d committed=%d events=%d trace=%s%s\n",
					r.Scenario, r.Seed, r.Committed, r.Net.Events, r.TraceHash[:12], livenessCounters(r))
			}
			if *determinism && sc.Deterministic && r.OK() {
				runs++
				again := sim.Run(sc, s)
				results = append(results, again)
				if again.TraceHash != r.TraceHash {
					again.Violations = append(again.Violations,
						fmt.Sprintf("determinism broken: trace %s then %s", r.TraceHash, again.TraceHash))
				}
				if !again.OK() {
					failures = append(failures, again)
					fmt.Printf("FAIL %-22s seed=%-6d (determinism re-run) %v\n", again.Scenario, again.Seed, again.Violations)
					fmt.Printf("     repro: %s\n", again.Repro)
				}
			}
		}
	}

	fmt.Printf("%d runs, %d failures, %s\n", runs, len(failures), time.Since(start).Round(time.Millisecond))

	if *jsonOut != "" {
		if err := writeReport(*jsonOut, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *failOut != "" && len(failures) > 0 {
		f, err := os.Create(*failOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, r := range failures {
			fmt.Fprintln(f, r.Repro)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// livenessCounters renders the decision-delivery/catch-up counters when
// any are nonzero, so wedge-then-recover runs are visible at a glance.
func livenessCounters(r *sim.Result) string {
	if r.CatchupBlocks == 0 && r.WedgeRecoveries == 0 && r.DupDecisions == 0 &&
		r.DecisionRetries == 0 && r.DecisionUnacked == 0 {
		return ""
	}
	return fmt.Sprintf(" catchup=%d wedges=%d dup-decisions=%d retries=%d unacked=%d",
		r.CatchupBlocks, r.WedgeRecoveries, r.DupDecisions, r.DecisionRetries, r.DecisionUnacked)
}

// report is the JSON envelope of a sweep.
type report struct {
	Schema      string        `json:"schema"`
	GeneratedAt time.Time     `json:"generated_at"`
	Runs        int           `json:"runs"`
	Failures    int           `json:"failures"`
	Results     []*sim.Result `json:"results"`
}

func writeReport(path string, results []*sim.Result) error {
	failures := 0
	for _, r := range results {
		if !r.OK() {
			failures++
		}
	}
	raw, err := json.MarshalIndent(report{
		Schema:      "fidessim/v1",
		GeneratedAt: time.Now().UTC().Truncate(time.Second),
		Runs:        len(results),
		Failures:    failures,
		Results:     results,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
