// Command fidesbench regenerates the paper's evaluation (§6): one table
// per figure, printed with the same series the paper plots.
//
//	fidesbench -exp fig12      # 2PC vs TFCommit, servers 3..7, 1 txn/block
//	fidesbench -exp fig13      # txns per block 2..120, 5 servers
//	fidesbench -exp fig14      # servers 3..9, 100 txn/block, MHT time
//	fidesbench -exp fig15      # items per shard 1k..10k
//	fidesbench -exp durability # fsync=off|group|always TFCommit cost
//	fidesbench -exp pipeline   # pipelined vs serial TFCommit, 5 servers
//	fidesbench -exp reads      # proof-carrying vs plain reads, batched
//	fidesbench -exp watch      # watchtower overhead: off vs tail vs tail+sampling
//	fidesbench -exp crypto     # serial vs batched verification, 1 vs 4 cores
//	fidesbench -exp all        # everything
//
// -exp also accepts a comma-separated list (e.g. -exp fig12,watch).
//
// The paper runs 1000 client requests per data point, averaged over 3
// runs; -requests and -runs scale that down for quick passes. -latency
// sets the simulated one-way network latency standing in for the paper's
// intra-datacenter EC2 network.
//
// -json writes every measured data point to a machine-readable report
// (e.g. BENCH_PR2.json) so the performance trajectory is tracked across
// PRs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment (comma-separable): fig12, fig13, fig14, fig15, durability, pipeline, reads, watch, crypto, or all")
		requests = flag.Int("requests", 1000, "client transactions per data point (paper: 1000)")
		runs     = flag.Int("runs", 3, "runs averaged per data point (paper: 3)")
		latency  = flag.Duration("latency", 250*time.Microsecond, "simulated one-way network latency")
		seed     = flag.Int64("seed", 1, "workload seed")
		jsonOut  = flag.String("json", "", "also write all data points to this JSON report file")
	)
	flag.Parse()

	opts := bench.Options{
		Requests:       *requests,
		Runs:           *runs,
		NetworkLatency: *latency,
		Seed:           *seed,
	}

	var rows []bench.Row
	run := func(name string) error {
		switch name {
		case "fig12":
			out, err := bench.Fig12(os.Stdout, opts)
			for _, r := range out {
				rows = append(rows, bench.RowFromMetrics("fig12", r.TwoPC), bench.RowFromMetrics("fig12", r.TFC))
			}
			return err
		case "fig13":
			out, err := bench.Fig13(os.Stdout, opts)
			for _, m := range out {
				rows = append(rows, bench.RowFromMetrics("fig13", m))
			}
			return err
		case "fig14":
			out, err := bench.Fig14(os.Stdout, opts)
			for _, m := range out {
				rows = append(rows, bench.RowFromMetrics("fig14", m))
			}
			return err
		case "fig15":
			out, err := bench.Fig15(os.Stdout, opts)
			for _, m := range out {
				rows = append(rows, bench.RowFromMetrics("fig15", m))
			}
			return err
		case "durability":
			out, err := bench.Durability(os.Stdout, opts)
			for _, m := range out {
				rows = append(rows, bench.RowFromMetrics("durability", m))
			}
			return err
		case "pipeline":
			out, err := bench.Pipeline(os.Stdout, opts)
			for _, m := range out {
				rows = append(rows, bench.RowFromMetrics("pipeline", m))
			}
			return err
		case "reads":
			out, err := bench.Reads(os.Stdout, opts)
			for _, r := range out {
				rows = append(rows, bench.RowFromReads(r, opts))
			}
			return err
		case "crypto":
			out, err := bench.Crypto(os.Stdout, opts)
			for _, m := range out {
				rows = append(rows, bench.RowFromMetrics("crypto", m))
			}
			return err
		case "watch":
			out, err := bench.Watch(os.Stdout, opts)
			for _, r := range out {
				rows = append(rows, bench.RowFromWatch(r))
			}
			return err
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	var names []string
	if *exp == "all" {
		names = []string{"fig12", "fig13", "fig14", "fig15", "durability", "pipeline", "reads", "watch", "crypto"}
	} else {
		names = strings.Split(*exp, ",")
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "fidesbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := bench.WriteReport(*jsonOut, opts, rows); err != nil {
			fmt.Fprintf(os.Stderr, "fidesbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d data points to %s\n", len(rows), *jsonOut)
	}
}
