// Command fidesbench regenerates the paper's evaluation (§6): one table
// per figure, printed with the same series the paper plots.
//
//	fidesbench -exp fig12      # 2PC vs TFCommit, servers 3..7, 1 txn/block
//	fidesbench -exp fig13      # txns per block 2..120, 5 servers
//	fidesbench -exp fig14      # servers 3..9, 100 txn/block, MHT time
//	fidesbench -exp fig15      # items per shard 1k..10k
//	fidesbench -exp all        # everything
//
// The paper runs 1000 client requests per data point, averaged over 3
// runs; -requests and -runs scale that down for quick passes. -latency
// sets the simulated one-way network latency standing in for the paper's
// intra-datacenter EC2 network.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig12, fig13, fig14, fig15, or all")
		requests = flag.Int("requests", 1000, "client transactions per data point (paper: 1000)")
		runs     = flag.Int("runs", 3, "runs averaged per data point (paper: 3)")
		latency  = flag.Duration("latency", 250*time.Microsecond, "simulated one-way network latency")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	opts := bench.Options{
		Requests:       *requests,
		Runs:           *runs,
		NetworkLatency: *latency,
		Seed:           *seed,
	}

	run := func(name string) error {
		switch name {
		case "fig12":
			_, err := bench.Fig12(os.Stdout, opts)
			return err
		case "fig13":
			_, err := bench.Fig13(os.Stdout, opts)
			return err
		case "fig14":
			_, err := bench.Fig14(os.Stdout, opts)
			return err
		case "fig15":
			_, err := bench.Fig15(os.Stdout, opts)
			return err
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	var names []string
	if *exp == "all" {
		names = []string{"fig12", "fig13", "fig14", "fig15"}
	} else {
		names = []string{*exp}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "fidesbench: %v\n", err)
			os.Exit(1)
		}
	}
}
