// Command fides-client drives a multi-process Fides deployment: it runs
// read-modify-write transactions against the TCP servers started with
// cmd/fides-server and optionally finishes with a full audit.
//
//	fides-client -deployment deployment.json -txns 20 -audit
//
// With -verify, the client first cold-syncs the co-signed block header
// chain and then performs every read through the proof-carrying verified
// path (Session.ReadVerified): a stale or forged value is rejected at
// read time instead of at the next audit.
//
//	fides-client -deployment deployment.json -txns 20 -verify -audit
//
// With -verify-bundle, the client instead re-verifies a portable evidence
// bundle produced by the watchtower (cmd/fides-watch) fully offline: no
// server is contacted; only the deployment's registered public keys and
// static shard layout are trusted. Exit status 0 means the bundle
// substantiates its finding.
//
//	fides-client -deployment deployment.json -verify-bundle bundle.bin
//
// Progress and diagnostics are structured log lines on stderr
// (-log-level, -log-json; per-transaction commits log at debug). The
// audit report — the command's product — prints to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/audit"
	"repro/internal/client"
	"repro/internal/deploy"
	"repro/internal/identity"
	"repro/internal/lightclient"
	"repro/internal/obs"
	"repro/internal/peer"
	"repro/internal/transport"
	"repro/internal/watch"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	var (
		deploymentPath = flag.String("deployment", "deployment.json", "deployment descriptor")
		txns           = flag.Int("txns", 10, "transactions to commit")
		opsPerTxn      = flag.Int("ops", 5, "operations per transaction")
		runAudit       = flag.Bool("audit", false, "run a full audit afterwards")
		verify         = flag.Bool("verify", false, "sync the header chain and perform proof-carrying verified reads")
		verifyBundle   = flag.String("verify-bundle", "", "re-verify a watchtower evidence bundle offline and exit (no servers are contacted)")
		seed           = flag.Int64("seed", 1, "workload seed")
		logLevel       = flag.String("log-level", "info", "log verbosity: debug|info|warn|error (per-txn commits log at debug)")
		logJSON        = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, *logLevel, *logJSON).With("component", "fides-client")
	if *verifyBundle != "" {
		if err := runVerifyBundle(*deploymentPath, *verifyBundle); err != nil {
			logger.Error("bundle verification failed", "err", err)
			os.Exit(1)
		}
		return
	}
	if err := run(logger, *deploymentPath, *txns, *opsPerTxn, *runAudit, *verify, *seed); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

// runVerifyBundle re-verifies one evidence bundle fully offline: the
// deployment descriptor supplies the registered public keys and shard
// layout, and the bundle must carry everything else — the whole point of
// the portable format is that a third party needs zero trust in the
// watchtower that produced it.
func runVerifyBundle(path, bundlePath string) error {
	d, err := deploy.Load(path)
	if err != nil {
		return err
	}
	reg, err := d.Registry()
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(bundlePath)
	if err != nil {
		return err
	}
	msg, err := wire.Decode(raw)
	if err != nil {
		return fmt.Errorf("decode %s: %w", bundlePath, err)
	}
	b, ok := msg.(*wire.EvidenceBundle)
	if !ok {
		return fmt.Errorf("%s does not contain an evidence bundle (got %T)", bundlePath, msg)
	}
	fmt.Printf("bundle: kind=%s accused=%v height=%d item=%q\n  detail: %s\n",
		b.Kind, b.Accused, b.Height, b.Item, b.Detail)
	if err := watch.VerifyBundle(b, reg, d.ServerIDs(), d.Directory(), d.CoordinatorID()); err != nil {
		return err
	}
	fmt.Println("verified: the evidence substantiates the finding")
	return nil
}

func run(logger *slog.Logger, path string, txns, opsPerTxn int, runAudit, verify bool, seed int64) error {
	d, err := deploy.Load(path)
	if err != nil {
		return err
	}
	if len(d.Clients) < 2 {
		return fmt.Errorf("deployment needs at least 2 client identities (workload + auditor)")
	}
	reg, err := d.Registry()
	if err != nil {
		return err
	}
	dir := d.Directory()

	newNode := func(kf identity.KeyFile) (*identity.Identity, *transport.TCPNode, error) {
		ident, err := identity.Import(kf)
		if err != nil {
			return nil, nil, err
		}
		node, err := transport.NewTCPNode(ident, reg, "127.0.0.1:0", nil)
		if err != nil {
			return nil, nil, err
		}
		for _, s := range d.Servers {
			node.SetAddress(s.Keys.ID, s.Addr)
		}
		return ident, node, nil
	}

	ident, node, err := newNode(d.Clients[0])
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()

	// With -verify, a light client cold-syncs the header chain before any
	// transaction runs and authenticates every read against it.
	var lc *lightclient.Client
	if verify {
		if lc, err = lightclient.New(lightclient.Config{
			PeerConfig: peer.PeerConfig{
				Registry:  reg,
				Transport: node,
				Servers:   d.ServerIDs(),
			},
			Layout: dir,
		}); err != nil {
			return err
		}
		syncStart := time.Now()
		tip, err := lc.Sync(context.Background())
		if err != nil {
			return fmt.Errorf("header sync: %w", err)
		}
		st := lc.Stats()
		logger.Info("header sync complete", "headers_verified", st.HeadersVerified,
			"tip", tip, "elapsed", time.Since(syncStart).Round(time.Millisecond),
			"pages", st.SyncPages)
	}

	cl, err := client.New(client.Config{
		Identity:    ident,
		Registry:    reg,
		Transport:   node,
		Directory:   dir,
		Coordinator: d.CoordinatorID(),
		ClientID:    1,
		Verifier:    lc,
	})
	if err != nil {
		return err
	}

	gen, err := workload.New(workload.Config{Items: dir.Items(), OpsPerTxn: opsPerTxn, Seed: seed})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// A shard is only verifiable once a co-signed block carries its root;
	// on a fresh deployment nothing does. Bootstrap each shard with one
	// committed write so every later read has a root to authenticate
	// against.
	if verify {
		for _, srv := range d.ServerIDs() {
			items := dir.ShardItems(srv)
			if len(items) == 0 {
				continue
			}
			for attempt := 0; ; attempt++ {
				s := cl.Begin()
				if _, err := s.Read(ctx, items[0]); err != nil {
					return fmt.Errorf("bootstrap %s: %w", srv, err)
				}
				if err := s.Write(ctx, items[0], []byte("bootstrap")); err != nil {
					return fmt.Errorf("bootstrap %s: %w", srv, err)
				}
				res, err := s.Commit(ctx)
				if err != nil {
					return fmt.Errorf("bootstrap %s: %w", srv, err)
				}
				if res.Committed {
					break
				}
				if attempt > 10 {
					return fmt.Errorf("bootstrap %s: could not commit", srv)
				}
			}
		}
		logger.Info("bootstrapped shard roots", "shards", len(d.ServerIDs()))
	}
	committed := 0
	start := time.Now()
	for committed < txns {
		plan := gen.Next()
		s := cl.Begin()
		for _, op := range plan.Ops {
			switch op.Kind {
			case workload.OpRead:
				if verify {
					if _, err := s.Read(ctx, op.Item, client.Verified()); err != nil {
						return err
					}
				} else if _, err := s.Read(ctx, op.Item); err != nil {
					return err
				}
			case workload.OpWrite:
				if err := s.Write(ctx, op.Item, op.Value); err != nil {
					return err
				}
			}
		}
		res, err := s.Commit(ctx)
		if err != nil {
			return err
		}
		if res.Committed {
			committed++
			logger.Debug("txn committed", "txn", s.ID(), "ts", res.TS.String(), "height", res.Block.Height)
		}
	}
	elapsed := time.Since(start)
	logger.Info("workload complete", "committed", committed,
		"elapsed", elapsed.Round(time.Millisecond),
		"tps", fmt.Sprintf("%.0f", float64(committed)/elapsed.Seconds()))
	if lc != nil {
		st := lc.Stats()
		logger.Info("verified-read stats", "reads_verified", st.ReadsVerified,
			"headers_verified", st.HeadersVerified, "stale_retries", st.StaleRetries)
	}

	if !runAudit {
		return nil
	}
	auditIdent, auditNode, err := newNode(d.Clients[1])
	if err != nil {
		return err
	}
	defer func() { _ = auditNode.Close() }()
	auditor, err := audit.New(audit.Config{
		PeerConfig: peer.PeerConfig{
			Registry:    reg,
			Transport:   auditNode,
			Servers:     d.ServerIDs(),
			Coordinator: d.CoordinatorID(),
		},
		Identity:  auditIdent,
		Directory: dir,
	})
	if err != nil {
		return err
	}
	report, err := auditor.Run(ctx, audit.Options{
		CheckDatastore: true,
		Exhaustive:     d.MultiVersion,
		MultiVersion:   d.MultiVersion,
	})
	if err != nil {
		return err
	}
	fmt.Printf("audit: clean=%v over %d blocks (authoritative log from %s)\n",
		report.Clean(), len(report.Authoritative), report.AuthoritativeFrom)
	for _, f := range report.Findings {
		fmt.Printf("  %s\n", f)
	}
	return nil
}
