// Command fides-server runs one Fides database server as its own process,
// speaking the signed TCP wire protocol. Server 0 of the deployment is the
// designated coordinator (paper §4.1) and additionally runs the TFCommit
// termination service.
//
//	fides-server -deployment deployment.json -index 0
//
// With -data-dir (or a data_dir in the descriptor) the server persists its
// tamper-proof log in a write-ahead log plus periodic shard snapshots, and
// starts by verified crash recovery: the on-disk chain is re-verified
// (hash pointers, collective signatures, Merkle roots) because the disk is
// part of the untrusted infrastructure. A tampered log is refused; a torn
// tail from a crash is truncated.
//
//	fides-server -deployment deployment.json -index 0 -data-dir ./data -fsync group
//
// With -metrics-addr the server exposes an observability endpoint:
// GET /metrics (Prometheus text format — the TFCommit per-phase latency
// histograms, WAL fsync timings, OCC abort causes and decision-liveness
// counters of docs/observability.md), GET /healthz, and the standard
// /debug/pprof/* profiling handlers.
//
//	fides-server -deployment deployment.json -index 0 -metrics-addr 127.0.0.1:9100
//
// See cmd/fides-keygen for generating a deployment and cmd/fides-client
// for driving it.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/deploy"
	"repro/internal/durable"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tfcommit"
	"repro/internal/transport"
	"repro/internal/txn"
)

func main() {
	var (
		deploymentPath = flag.String("deployment", "deployment.json", "deployment descriptor")
		index          = flag.Int("index", 0, "this server's index in the deployment")
		dataDir        = flag.String("data-dir", "", "persist WAL+snapshots under this directory (overrides the descriptor; empty = descriptor's data_dir, or in-memory)")
		fsync          = flag.String("fsync", "", "WAL flush discipline: always|group|off (overrides the descriptor)")
		snapEvery      = flag.Int("snapshot-every", 0, "snapshot the shard every N blocks (overrides the descriptor; 0 = descriptor's value)")
		pipeline       = flag.Int("pipeline", 0, "TFCommit blocks in flight at once (overrides the descriptor; 0 = descriptor's value, 1 = serial)")
		cryptoBackend  = flag.String("crypto", "", "verification backend: serial|batched (overrides the descriptor; empty = descriptor's value)")
		cryptoWorkers  = flag.Int("crypto-workers", 0, "batched-backend worker pool size (overrides the descriptor; 0 = descriptor's value, then GOMAXPROCS)")
		resolveEvery   = flag.Duration("resolve-interval", 2*time.Second, "background decision-resolver period: a server behind the cluster tip pulls the missing verified suffix from peers (0 disables)")
		metricsAddr    = flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /healthz and /debug/pprof/* on this address (empty disables)")
		logLevel       = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		logJSON        = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	if err := run(*deploymentPath, *index, *dataDir, *fsync, *snapEvery, *pipeline, *cryptoBackend, *cryptoWorkers, *resolveEvery, *metricsAddr, *logLevel, *logJSON); err != nil {
		fmt.Fprintf(os.Stderr, "fides-server: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, index int, dataDir, fsync string, snapEvery, pipeline int, cryptoBackend string, cryptoWorkers int, resolveEvery time.Duration, metricsAddr, logLevel string, logJSON bool) error {
	d, err := deploy.Load(path)
	if err != nil {
		return err
	}
	if pipeline == 0 {
		pipeline = d.Pipeline
	}
	if pipeline < 1 {
		pipeline = 1
	}
	if cryptoBackend == "" {
		cryptoBackend = d.Crypto
	}
	if cryptoWorkers == 0 {
		cryptoWorkers = d.CryptoWorkers
	}
	if d.Coordinators > 1 {
		// Rotation dispatches each block to a coordinator instance in the
		// terminating process; separate fides-server processes cannot take
		// turns without a block-handoff protocol (see docs/operations.md).
		return fmt.Errorf("deployment requests %d rotating coordinators; multi-process deployments support 1", d.Coordinators)
	}
	if index < 0 || index >= len(d.Servers) {
		return fmt.Errorf("index %d out of range (%d servers)", index, len(d.Servers))
	}
	spec := d.Servers[index]
	ident, err := identity.Import(spec.Keys)
	if err != nil {
		return err
	}
	reg, err := d.Registry()
	if err != nil {
		return err
	}
	dir := d.Directory()

	// One process-wide observability bundle: every component reports into
	// the same registry (served on -metrics-addr) and logs through the same
	// leveled structured logger, tagged with this server's id.
	o := &obs.Obs{
		Metrics: obs.NewRegistry(),
		Logger:  obs.NewLogger(os.Stderr, logLevel, logJSON).With("component", "fides-server"),
	}
	o = o.With(obs.L("server", string(ident.ID)))
	logger := o.Log()

	// One verification plane per process: the server's commit path, the
	// termination service (index 0) and the block batcher all verify
	// through the same instance, so a co-sign or envelope verdict reached
	// in one phase is a cache hit in the next.
	var verifier crypto.Verifier
	switch cryptoBackend {
	case core.CryptoSerial:
		verifier = crypto.NewSerial(reg)
	case core.CryptoBatched:
		verifier = crypto.NewBatched(crypto.Options{Registry: reg, Workers: cryptoWorkers, Obs: o})
		defer verifier.Close()
	default:
		return fmt.Errorf("unknown crypto backend %q (want %s or %s)", cryptoBackend, core.CryptoSerial, core.CryptoBatched)
	}

	if dataDir == "" {
		dataDir = d.DataDir
	}
	if fsync == "" {
		fsync = d.Fsync
	}
	if snapEvery == 0 {
		snapEvery = d.SnapshotEvery
	}

	items := make([]txn.ItemID, d.ItemsPerShard)
	for j := 0; j < d.ItemsPerShard; j++ {
		items[j] = core.ItemName(index, j)
	}
	initial := func(txn.ItemID) []byte { return []byte("0") }

	scfg := server.Config{
		Identity:  ident,
		Registry:  reg,
		Directory: dir,
		Obs:       o,
		// Always armed in multi-process deployments, not only when this
		// process believes pipelining is on: -pipeline is a per-process
		// override, so the coordinator may pipeline while a cohort's
		// descriptor says serial — a cohort that then rejected overtaking
		// announcements outright would fail rounds intermittently. Parking
		// them briefly is harmless when the coordinator really is serial
		// (the wait only engages for heights above the log tip).
		VoteLookahead: core.VoteLookahead,
		Verifier:      verifier,
	}
	if dataDir == "" {
		scfg.Shard = store.NewShard(items, initial, store.Config{MultiVersion: d.MultiVersion})
	} else {
		mode, err := durable.ParseFsyncMode(fsync)
		if err != nil {
			return err
		}
		dstore, err := durable.Open(durable.Options{
			Dir:           filepath.Join(dataDir, string(ident.ID)),
			Fsync:         mode,
			SnapshotEvery: snapEvery,
			Obs:           o,
		})
		if err != nil {
			return err
		}
		defer func() { _ = dstore.Close() }()
		rec, err := dstore.Recover(durable.RecoveryConfig{
			Registry:     reg,
			Self:         ident.ID,
			ShardIDs:     items,
			InitialValue: initial,
			MultiVersion: d.MultiVersion,
		})
		if err != nil {
			return fmt.Errorf("recovery: %w", err)
		}
		log, err := ledger.NewLogFromBlocks(rec.Blocks)
		if err != nil {
			return fmt.Errorf("recovered log: %w", err)
		}
		if pipeline > 1 {
			log.SetPersister(durable.NewOrderedPersister(dstore, uint64(len(rec.Blocks))))
		} else {
			log.SetPersister(dstore)
		}
		scfg.Shard = rec.Shard
		scfg.Log = log
		scfg.Snapshot = dstore
		logger.Info("recovered", "blocks", len(rec.Blocks), "fsync", mode.String(),
			"snapshot_used", rec.SnapshotUsed, "snapshot_height", rec.SnapshotHeight,
			"torn_tail", rec.Scan.TornTail, "torn_bytes", rec.Scan.TornBytes)
		for _, w := range rec.Warnings {
			logger.Warn("recovery warning", "warning", w)
		}
	}

	srv, err := server.New(scfg)
	if err != nil {
		return err
	}

	node, err := transport.NewTCPNode(ident, reg, spec.Addr, srv)
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()
	for _, s := range d.Servers {
		node.SetAddress(s.Keys.ID, s.Addr)
	}

	// Decision retry, ask-a-peer, and state transfer: every server (not
	// just cohorts that happen to time out a vote) can answer peers'
	// ask_decision/fetch_blocks and pull any verified suffix it is
	// missing, so a restarted process rejoins without operator action.
	if err := srv.EnableCatchup(server.CatchupConfig{
		Transport: node,
		Servers:   d.ServerIDs(),
	}); err != nil {
		return err
	}
	if resolveEvery > 0 {
		stopResolver := srv.StartResolver(resolveEvery)
		defer stopResolver()
	}

	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := obs.NewServeMux(o.Metrics, func() bool { return true })
		msrv := &http.Server{Handler: mux}
		go func() {
			if serr := msrv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
				logger.Error("metrics server failed", "err", serr)
			}
		}()
		defer func() { _ = msrv.Close() }()
		logger.Info("observability endpoint up", "addr", ln.Addr().String(),
			"paths", "/metrics /healthz /debug/pprof/")
	}

	if index == 0 {
		coord, err := tfcommit.New(tfcommit.Config{
			Identity:  ident,
			Registry:  reg,
			Transport: node,
			Servers:   d.ServerIDs(),
			Local:     srv,
			Obs:       o,
			Verifier:  verifier,
		})
		if err != nil {
			return err
		}
		committer := core.NewCoordinatorCommitter(coord)
		if pipeline > 1 {
			pipe, err := tfcommit.NewPipeline(tfcommit.PipelineConfig{
				Coordinators: []*tfcommit.Coordinator{coord},
				Depth:        pipeline,
				Height:       uint64(srv.Log().Len()),
				PrevHash:     srv.Log().TipHash(),
			})
			if err != nil {
				return err
			}
			committer = core.NewPipelineCommitter(pipe)
		}
		batcher := core.NewPipelinedBatcherObs(committer, reg, d.BatchSize, 5*time.Millisecond, pipeline, o)
		batcher.SetVerifier(verifier)
		batcher.Observe(srv.LastCommitted())
		defer batcher.Close()
		srv.SetTerminator(batcher)
		logger.Info("listening", "addr", node.Addr(), "role", "coordinator", "pipeline", pipeline, "crypto", cryptoBackend)
	} else {
		logger.Info("listening", "addr", node.Addr(), "role", "cohort")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down", "blocks_logged", srv.Log().Len())
	return nil
}
