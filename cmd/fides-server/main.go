// Command fides-server runs one Fides database server as its own process,
// speaking the signed TCP wire protocol. Server 0 of the deployment is the
// designated coordinator (paper §4.1) and additionally runs the TFCommit
// termination service.
//
//	fides-server -deployment deployment.json -index 0
//
// See cmd/fides-keygen for generating a deployment and cmd/fides-client
// for driving it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tfcommit"
	"repro/internal/transport"
	"repro/internal/txn"
)

func main() {
	var (
		deploymentPath = flag.String("deployment", "deployment.json", "deployment descriptor")
		index          = flag.Int("index", 0, "this server's index in the deployment")
	)
	flag.Parse()
	if err := run(*deploymentPath, *index); err != nil {
		fmt.Fprintf(os.Stderr, "fides-server: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, index int) error {
	d, err := deploy.Load(path)
	if err != nil {
		return err
	}
	if index < 0 || index >= len(d.Servers) {
		return fmt.Errorf("index %d out of range (%d servers)", index, len(d.Servers))
	}
	spec := d.Servers[index]
	ident, err := identity.Import(spec.Keys)
	if err != nil {
		return err
	}
	reg, err := d.Registry()
	if err != nil {
		return err
	}
	dir := d.Directory()

	items := make([]txn.ItemID, d.ItemsPerShard)
	for j := 0; j < d.ItemsPerShard; j++ {
		items[j] = core.ItemName(index, j)
	}
	shard := store.NewShard(items, func(txn.ItemID) []byte { return []byte("0") },
		store.Config{MultiVersion: d.MultiVersion})

	srv, err := server.New(server.Config{
		Identity:  ident,
		Registry:  reg,
		Directory: dir,
		Shard:     shard,
	})
	if err != nil {
		return err
	}

	node, err := transport.NewTCPNode(ident, reg, spec.Addr, srv)
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()
	for _, s := range d.Servers {
		node.SetAddress(s.Keys.ID, s.Addr)
	}

	if index == 0 {
		coord, err := tfcommit.New(tfcommit.Config{
			Identity:  ident,
			Registry:  reg,
			Transport: node,
			Servers:   d.ServerIDs(),
			Local:     srv,
		})
		if err != nil {
			return err
		}
		batcher := core.NewBatcher(coreCommitter{coord}, reg, d.BatchSize, 5*time.Millisecond)
		defer batcher.Close()
		srv.SetTerminator(batcher)
		fmt.Printf("server %s (coordinator) listening on %s\n", ident.ID, node.Addr())
	} else {
		fmt.Printf("server %s listening on %s\n", ident.ID, node.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("server %s shutting down (%d blocks logged)\n", ident.ID, srv.Log().Len())
	return nil
}

// coreCommitter adapts the TFCommit coordinator to the batcher interface.
type coreCommitter struct{ c *tfcommit.Coordinator }

func (a coreCommitter) CommitBlock(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope) (*ledger.Block, bool, []int, error) {
	res, err := a.c.CommitBlock(ctx, txns, envs)
	if err != nil {
		return nil, false, nil, err
	}
	return res.Block, res.Committed, res.FailedTxns, nil
}
