// Package fides is a from-scratch Go implementation of Fides, the
// auditable data management system for untrusted infrastructure of
//
//	Maiyya, Cho, Agrawal, El Abbadi.
//	"Fides: Managing Data on Untrusted Infrastructure." ICDCS 2020.
//
// Fides stores sharded data on mutually untrusted database servers and
// terminates distributed transactions with TFCommit, a trust-free atomic
// commitment protocol that fuses Two-Phase Commit with CoSi collective
// signing. Every commit decision is bound into a hash-chained,
// collectively signed, globally replicated log; an external auditor can
// later verify the full ACID behavior of every server (v-ACID) and
// irrefutably identify misbehaving servers — without Byzantine
// replication, tolerating up to n−1 faulty servers.
//
// This package is the public facade over the implementation packages in
// internal/: it exposes cluster assembly, clients, the auditor, fault
// injection, and the experiment harness used to regenerate the paper's
// evaluation. The quickest start:
//
//	cluster, err := fides.NewCluster(fides.Config{NumServers: 5})
//	defer cluster.Close()
//	client, err := cluster.NewClient()
//	s := client.Begin()
//	v, err := s.Read(ctx, fides.ItemName(0, 7))
//	err = s.Write(ctx, fides.ItemName(1, 3), []byte("42"))
//	res, err := s.Commit(ctx) // res.Block is collectively signed
//	report, err := cluster.Audit(ctx, fides.AuditOptions{CheckDatastore: true})
//
// See README.md for the project overview, docs/architecture.md for the
// layer map, docs/protocol.md for TFCommit and the wire formats, and
// docs/operations.md for deployment and recovery; BENCH_PR*.json record
// the measured performance trajectory.
package fides

import (
	"repro/internal/audit"
	"repro/internal/bench"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/durable"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/lightclient"
	"repro/internal/peer"
	"repro/internal/server"
	"repro/internal/tfcommit"
	"repro/internal/txn"
)

// Core deployment types.
type (
	// Cluster is a running Fides deployment: n untrusted servers, a
	// designated coordinator, and the shared key registry.
	Cluster = core.Cluster
	// Config describes a cluster (servers, shard sizes, batch size,
	// protocol, simulated network latency, durability, fault injection).
	Config = core.Config
	// Protocol selects the commitment protocol.
	Protocol = core.Protocol
	// Directory maps items to the servers storing them.
	Directory = core.Directory
	// FsyncMode selects the WAL flush discipline of a durable cluster
	// (Config.DataDir): FsyncAlways, FsyncGroup (default), or FsyncOff.
	FsyncMode = durable.FsyncMode
	// Verifier is the pluggable verification plane every commit-path
	// signature check routes through (Config.Crypto selects the backend).
	Verifier = crypto.Verifier
	// PeerConfig is the wiring shared by every read-side peer (light
	// clients, watchtowers, auditors).
	PeerConfig = peer.PeerConfig
)

// Verification backends (Config.Crypto).
const (
	// CryptoSerial verifies every signature inline, one at a time — the
	// reference behavior and the default.
	CryptoSerial = core.CryptoSerial
	// CryptoBatched fans verification across a worker pool with batch
	// co-sign share checks and verdict caches (see docs/architecture.md,
	// "The verification plane").
	CryptoBatched = core.CryptoBatched
)

// WAL fsync disciplines for durable clusters.
const (
	FsyncAlways = durable.FsyncAlways
	FsyncGroup  = durable.FsyncGroup
	FsyncOff    = durable.FsyncOff
)

// Client-side types.
type (
	// Client executes transactions (paper §4.1, Figure 5).
	Client = client.Client
	// Session is one in-flight transaction.
	Session = client.Session
	// CommitResult is a termination outcome with its signed block.
	CommitResult = client.CommitResult
	// ReadOption tunes one Session.Read call: Verified() routes it
	// through the proof-carrying verified path, AtHeight(h) pins it to a
	// committed block height.
	ReadOption = client.ReadOption
	// LightClient syncs the co-signed block header chain and verifies
	// proof-carrying reads against it (Session.Read with Verified(),
	// LightClient.ReadVerified) — read integrity at read time instead of
	// at the next audit. Build one with Cluster.NewLightClient.
	LightClient = lightclient.Client
	// VerifiedValue is one verified read result: the item state plus the
	// block height whose committed shard root authenticated it.
	VerifiedValue = lightclient.Value
)

// Verified-read rejection errors (see internal/lightclient).
var (
	// ErrBadHeader: a synced header failed chain/signer/co-sign checks.
	ErrBadHeader = lightclient.ErrBadHeader
	// ErrStaleRead: a read was served against a superseded shard root.
	ErrStaleRead = lightclient.ErrStaleRead
	// ErrBadProof: a read's proof does not match the shard layout.
	ErrBadProof = lightclient.ErrBadProof
	// ErrIncorrectRead: value+proof fail to reproduce the committed root —
	// the online form of FindingIncorrectRead.
	ErrIncorrectRead = lightclient.ErrIncorrectRead
	// ErrUnverifiable: no co-signed block covers the shard yet (fresh
	// deployment or checkpoint above the shard's last root) — the one
	// rejection class that is not an attack; commit a write to the shard
	// or sync from a lower checkpoint.
	ErrUnverifiable = lightclient.ErrUnverifiable
)

// Audit types (paper §3.3, §4.5, Theorem 1).
type (
	// Auditor verifies a deployment from its logs, VOs and datastores.
	Auditor = audit.Auditor
	// Report is the outcome of an audit run.
	Report = audit.Report
	// Finding is one detected anomaly with the implicated server(s).
	Finding = audit.Finding
	// FindingType classifies findings.
	FindingType = audit.FindingType
	// AuditOptions tunes an audit run.
	AuditOptions = audit.Options
)

// Fault-injection types (paper §3.2, §5).
type (
	// ServerFaults configures one server's malicious behavior.
	ServerFaults = server.Faults
	// CoordinatorFaults configures coordinator misbehavior.
	CoordinatorFaults = tfcommit.Faults
	// TamperSpec describes a post-hoc log mutation.
	TamperSpec = server.TamperSpec
)

// Data model types.
type (
	// NodeID names a server or client.
	NodeID = identity.NodeID
	// ItemID names a data item.
	ItemID = txn.ItemID
	// Timestamp is a Lamport-style commit timestamp.
	Timestamp = txn.Timestamp
	// Transaction is a terminated unit of work.
	Transaction = txn.Transaction
	// Block is one entry of the tamper-proof log (paper Table 1).
	Block = ledger.Block
)

// Benchmark harness types (paper §6).
type (
	// BenchConfig describes one experimental data point.
	BenchConfig = bench.RunConfig
	// BenchMetrics is the outcome of one experimental run.
	BenchMetrics = bench.Metrics
	// BenchOptions scales a figure sweep.
	BenchOptions = bench.Options
)

// Protocols.
const (
	// ProtocolTFCommit is the paper's trust-free commitment protocol.
	ProtocolTFCommit = core.ProtocolTFCommit
	// ProtocolTwoPC is the trusted 2PC baseline of §6.1.
	ProtocolTwoPC = core.ProtocolTwoPC
)

// Finding types an audit can report.
const (
	FindingTamperedLog         = audit.FindingTamperedLog
	FindingReorderedLog        = audit.FindingReorderedLog
	FindingIncompleteLog       = audit.FindingIncompleteLog
	FindingForkedLog           = audit.FindingForkedLog
	FindingIncorrectRead       = audit.FindingIncorrectRead
	FindingStaleTimestamp      = audit.FindingStaleTimestamp
	FindingSerializability     = audit.FindingSerializability
	FindingDatastoreCorruption = audit.FindingDatastoreCorruption
	FindingUnauditable         = audit.FindingUnauditable
)

// NewCluster builds and starts a Fides deployment.
func NewCluster(cfg Config) (*Cluster, error) {
	return core.NewCluster(cfg)
}

// ItemName returns the canonical id of item i in shard s, matching the
// naming NewCluster uses to populate shards.
func ItemName(shard, i int) ItemID {
	return core.ItemName(shard, i)
}

// ServerName returns the canonical id of the i-th server of a cluster.
func ServerName(i int) NodeID {
	return core.ServerName(i)
}

// Verified marks a Session.Read as proof-carrying: the value must verify
// against a co-signed committed shard root or the read fails with one of
// the verified-read rejection errors.
func Verified() ReadOption { return client.Verified() }

// AtHeight pins a Session.Read to the committed state at block height h
// (implies Verified; the read does not join the session's OCC read set).
func AtHeight(h uint64) ReadOption { return client.AtHeight(h) }

// RunBench executes one benchmark data point (workload of paper §6).
func RunBench(cfg BenchConfig) (*BenchMetrics, error) {
	return bench.Run(cfg)
}
