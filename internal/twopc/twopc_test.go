package twopc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/twopc"
	"repro/internal/txn"
)

type mapDirectory map[txn.ItemID]identity.NodeID

func (d mapDirectory) Owner(id txn.ItemID) (identity.NodeID, bool) {
	o, ok := d[id]
	return o, ok
}

func item(s, i int) txn.ItemID { return txn.ItemID(fmt.Sprintf("s%d/i%d", s, i)) }

type stack struct {
	reg     *identity.Registry
	servers []*server.Server
	coord   *twopc.Coordinator
	client  *identity.Identity
}

func newStack(t *testing.T, n int) *stack {
	t.Helper()
	st := &stack{reg: identity.NewRegistry()}
	net := transport.NewLocalNetwork(0)
	dir := mapDirectory{}
	var ids []identity.NodeID
	for s := 0; s < n; s++ {
		id := identity.NodeID(fmt.Sprintf("srv%d", s))
		ids = append(ids, id)
		for i := 0; i < 4; i++ {
			dir[item(s, i)] = id
		}
	}
	var idents []*identity.Identity
	var endpoints []transport.Transport
	for s := 0; s < n; s++ {
		ident, err := identity.New(ids[s], identity.RoleServer, nil)
		if err != nil {
			t.Fatal(err)
		}
		st.reg.Register(ident.Public())
		idents = append(idents, ident)
		items := make([]txn.ItemID, 4)
		for i := range items {
			items[i] = item(s, i)
		}
		shard := store.NewShard(items, func(txn.ItemID) []byte { return []byte("0") }, store.Config{})
		srv, err := server.New(server.Config{Identity: ident, Registry: st.reg, Directory: dir, Shard: shard})
		if err != nil {
			t.Fatal(err)
		}
		st.servers = append(st.servers, srv)
		endpoints = append(endpoints, net.Endpoint(ident, st.reg, srv))
	}
	coord, err := twopc.New(twopc.Config{
		Identity: idents[0], Transport: endpoints[0], Servers: ids, Local: st.servers[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	st.coord = coord
	cl, err := identity.New("client", identity.RoleClient, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.reg.Register(cl.Public())
	st.client = cl
	return st
}

func (st *stack) freshTxn(t *testing.T, id string, at uint64, s, i int) (*txn.Transaction, identity.Envelope) {
	t.Helper()
	it, err := st.servers[s].Shard().Get(item(s, i))
	if err != nil {
		t.Fatal(err)
	}
	tr := &txn.Transaction{
		ID: id, TS: txn.Timestamp{Time: at, ClientID: 4},
		Writes: []txn.WriteEntry{{
			ID: it.ID, NewVal: []byte("v-" + id), OldVal: it.Value,
			Blind: true, RTS: it.RTS, WTS: it.WTS,
		}},
	}
	payload, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return tr, identity.Seal(st.client, payload)
}

func TestTwoPCCommit(t *testing.T) {
	st := newStack(t, 3)
	ctx := context.Background()
	tr, env := st.freshTxn(t, "t1", 5, 2, 0)
	res, err := st.coord.CommitBlock(ctx, []*txn.Transaction{tr}, []identity.Envelope{env})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.Block.Decision != ledger.DecisionCommit {
		t.Fatalf("result = %+v", res)
	}
	// 2PC blocks are unsigned (trusted baseline).
	if !res.Block.CoSig().IsZero() {
		t.Fatal("2PC block carries a co-sign")
	}
	for s, srv := range st.servers {
		if srv.Log().Len() != 1 {
			t.Errorf("server %d log length %d", s, srv.Log().Len())
		}
	}
	got, err := st.servers[2].Shard().Get(item(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Value, []byte("v-t1")) {
		t.Errorf("value = %q", got.Value)
	}

	// Sequential second block extends the chain.
	t2, e2 := st.freshTxn(t, "t2", 6, 0, 1)
	res2, err := st.coord.CommitBlock(ctx, []*txn.Transaction{t2}, []identity.Envelope{e2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Block.Height != 1 || !bytes.Equal(res2.Block.PrevHash, res.Block.Hash()) {
		t.Fatal("second block does not chain")
	}
}

func TestTwoPCAbortOnConflict(t *testing.T) {
	st := newStack(t, 2)
	ctx := context.Background()
	tr, env := st.freshTxn(t, "t1", 5, 1, 0)
	if err := st.servers[1].Shard().Apply([]store.Access{{
		Writes: []txn.WriteEntry{{ID: item(1, 0), NewVal: []byte("race")}},
		TS:     txn.Timestamp{Time: 2, ClientID: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := st.coord.CommitBlock(ctx, []*txn.Transaction{tr}, []identity.Envelope{env})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("conflicting txn committed")
	}
	for s, srv := range st.servers {
		if srv.Log().Len() != 0 {
			t.Errorf("server %d logged an aborted block", s)
		}
	}
}

func TestTwoPCRefusalSurfacesErrors(t *testing.T) {
	st := newStack(t, 2)
	ctx := context.Background()
	tr, env := st.freshTxn(t, "t1", 5, 0, 0)
	// Corrupt the envelope: every cohort refuses at prepare.
	env.Sig = []byte("garbage")
	_, err := st.coord.CommitBlock(ctx, []*txn.Transaction{tr}, []identity.Envelope{env})
	var re *twopc.RefusalError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RefusalError", err)
	}
	if re.Phase != "prepare" {
		t.Errorf("phase = %s", re.Phase)
	}
}

func TestTwoPCValidation(t *testing.T) {
	st := newStack(t, 2)
	ctx := context.Background()
	if _, err := st.coord.CommitBlock(ctx, nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	tr, _ := st.freshTxn(t, "t1", 5, 0, 0)
	if _, err := st.coord.CommitBlock(ctx, []*txn.Transaction{tr}, nil); err == nil {
		t.Error("missing envelopes accepted")
	}
	if _, err := twopc.New(twopc.Config{}); err == nil {
		t.Error("empty config accepted")
	}
}
