// Package twopc implements the coordinator side of classic Two-Phase
// Commit (Gray [17]; paper §4.3.1), the trusted baseline TFCommit is
// measured against in Figure 12.
//
// The implementation deliberately mirrors TFCommit's structure — the same
// block formation, the same sequential block production, the same signed
// transport — but omits everything trust-free: no Merkle roots, no Schnorr
// commitments, no collective signature, and one fewer round. The measured
// gap between the two protocols is therefore exactly the paper's "overhead
// incurred by TFCommit to operate in an untrusted setting" (§6.1).
package twopc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// Participant is the coordinator's interface to its own local server.
// *server.Server satisfies it.
type Participant interface {
	Prepare(ctx context.Context, from identity.NodeID, req *wire.PrepareReq) (*wire.PrepareResp, error)
	Decide2PC(ctx context.Context, from identity.NodeID, req *wire.TwoPCDecisionReq) (*wire.TwoPCDecisionResp, error)
	Log() *ledger.Log
}

// Config assembles a Coordinator.
type Config struct {
	Identity  *identity.Identity
	Transport transport.Transport
	Servers   []identity.NodeID
	Local     Participant
}

// Coordinator terminates transactions with plain 2PC.
type Coordinator struct {
	ident   *identity.Identity
	tr      transport.Transport
	servers []identity.NodeID
	local   Participant
}

// New creates a 2PC coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Identity == nil || cfg.Local == nil {
		return nil, errors.New("twopc: config requires identity and local participant")
	}
	if len(cfg.Servers) == 0 {
		return nil, errors.New("twopc: config requires at least one server")
	}
	servers := append([]identity.NodeID(nil), cfg.Servers...)
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	return &Coordinator{ident: cfg.Identity, tr: cfg.Transport, servers: servers, local: cfg.Local}, nil
}

// Result is the outcome of one 2PC round.
type Result struct {
	Block     *ledger.Block
	Committed bool
}

// RefusalError reports cohorts that failed a phase.
type RefusalError struct {
	Phase   string
	Refused map[identity.NodeID]error
}

// Error lists the refusing cohorts and their reasons.
func (e *RefusalError) Error() string {
	ids := make([]string, 0, len(e.Refused))
	for id, err := range e.Refused {
		ids = append(ids, fmt.Sprintf("%s (%v)", id, err))
	}
	sort.Strings(ids)
	return fmt.Sprintf("twopc: %s phase refused by: %s", e.Phase, strings.Join(ids, "; "))
}

// CommitBlock runs one 2PC round over a batch of transactions: collect
// votes from all cohorts, decide commit only if every involved cohort voted
// commit, then broadcast the decision.
func (c *Coordinator) CommitBlock(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope) (*Result, error) {
	if len(txns) == 0 {
		return nil, errors.New("twopc: empty batch")
	}
	if len(envs) != len(txns) {
		return nil, fmt.Errorf("twopc: %d envelopes for %d transactions", len(envs), len(txns))
	}

	log := c.local.Log()
	block := &ledger.Block{
		Height:   uint64(log.Len()),
		Txns:     make([]ledger.TxnRecord, len(txns)),
		PrevHash: log.TipHash(),
	}
	for i, t := range txns {
		block.Txns[i] = ledger.RecordFromTransaction(t)
	}

	// Round 1: prepare / vote.
	req := &wire.PrepareReq{Block: block, ClientReqs: envs}
	votes := make(map[identity.NodeID]*wire.PrepareResp, len(c.servers))
	refused := make(map[identity.NodeID]error)

	msg, err := transport.NewMessage(wire.MsgPrepare, req)
	if err != nil {
		return nil, err
	}
	remote := c.remoteServers()
	resps, errs := transport.CallAll(ctx, c.tr, remote, msg)
	for id, e := range errs {
		refused[id] = e
	}
	for id, resp := range resps {
		var v wire.PrepareResp
		if err := resp.Decode(&v); err != nil {
			refused[id] = err
			continue
		}
		votes[id] = &v
	}
	if self, err := c.local.Prepare(ctx, c.ident.ID, req); err != nil {
		refused[c.ident.ID] = err
	} else {
		votes[c.ident.ID] = self
	}
	if len(refused) > 0 {
		return nil, &RefusalError{Phase: "prepare", Refused: refused}
	}

	decision := ledger.DecisionCommit
	for _, v := range votes {
		if v.Vote != ledger.DecisionCommit {
			decision = ledger.DecisionAbort
			break
		}
	}
	block.Decision = decision

	// Round 2: decision / ack.
	decMsg, err := transport.NewMessage(wire.Msg2PCDecision, &wire.TwoPCDecisionReq{Block: block})
	if err != nil {
		return nil, err
	}
	_, errs = transport.CallAll(ctx, c.tr, remote, decMsg)
	for id, e := range errs {
		refused[id] = e
	}
	if _, err := c.local.Decide2PC(ctx, c.ident.ID, &wire.TwoPCDecisionReq{Block: block}); err != nil {
		refused[c.ident.ID] = err
	}
	if len(refused) > 0 {
		return nil, &RefusalError{Phase: "decision", Refused: refused}
	}
	return &Result{Block: block, Committed: decision == ledger.DecisionCommit}, nil
}

func (c *Coordinator) remoteServers() []identity.NodeID {
	remote := make([]identity.NodeID, 0, len(c.servers)-1)
	for _, id := range c.servers {
		if id != c.ident.ID {
			remote = append(remote, id)
		}
	}
	return remote
}
