package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Outcome classifies what the simulated network did with one message.
type Outcome string

// Delivery outcomes recorded in the event trace.
const (
	// OutcomeOK: delivered after the drawn virtual delay.
	OutcomeOK Outcome = "ok"
	// OutcomeDrop: lost to the per-link drop rate; the Call fails.
	OutcomeDrop Outcome = "drop"
	// OutcomeCut: lost to an active partition; the Call fails.
	OutcomeCut Outcome = "cut"
	// OutcomeDup: delivered, plus a duplicated copy presented to the
	// receiver (whose anti-replay check must reject it).
	OutcomeDup Outcome = "dup"
	// OutcomeDupRejected: the duplicated copy was rejected by the
	// receiver, as required.
	OutcomeDupRejected Outcome = "dup-rejected"
	// OutcomeDupAccepted: the duplicated copy was accepted — a transport
	// invariant violation the harness fails the scenario over.
	OutcomeDupAccepted Outcome = "dup-accepted"
)

// Event is one simulated network delivery. Events are recorded per link in
// send order; LinkSeq numbers them within their link, so sorting by
// (Link, LinkSeq, Outcome) yields a canonical order that does not depend
// on how goroutines on *different* links interleaved in real time.
type Event struct {
	Link     string  `json:"link"` // "from→to"
	LinkSeq  uint64  `json:"link_seq"`
	Msg      string  `json:"msg"`
	Response bool    `json:"response,omitempty"`
	Outcome  Outcome `json:"outcome"`
	// DelayUS is the virtual one-way delay drawn for this delivery and
	// VTimeUS the link's cumulative virtual clock after it (µs).
	DelayUS int64 `json:"delay_us"`
	VTimeUS int64 `json:"vtime_us"`
}

func (e Event) canonical() string {
	r := ""
	if e.Response {
		r = " resp"
	}
	return fmt.Sprintf("%s #%d %s%s %s %d %d", e.Link, e.LinkSeq, e.Msg, r, e.Outcome, e.DelayUS, e.VTimeUS)
}

// Trace accumulates the events of one scenario run.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

func (t *Trace) add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events in canonical order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sortEvents(out)
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Link != evs[j].Link {
			return evs[i].Link < evs[j].Link
		}
		if evs[i].LinkSeq != evs[j].LinkSeq {
			return evs[i].LinkSeq < evs[j].LinkSeq
		}
		return evs[i].Outcome < evs[j].Outcome
	})
}

// Hash returns the SHA-256 over the canonical event encoding. Two runs of
// the same deterministic scenario with the same seed produce byte-equal
// canonical traces and therefore equal hashes — the property the CI
// determinism test enforces.
func (t *Trace) Hash() string {
	evs := t.Events()
	h := sha256.New()
	for _, e := range evs {
		h.Write([]byte(e.canonical()))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Dump renders the canonical trace as text (one event per line), for
// debugging a failing seed.
func (t *Trace) Dump() string {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString(e.canonical())
		b.WriteByte('\n')
	}
	return b.String()
}
