package sim

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/lightclient"
	"repro/internal/server"
	"repro/internal/watch"
)

// Catalog returns the built-in scenario set, in a stable order. Every
// scenario is self-describing: its Expect block is the contract CI
// enforces for every seed. The four tamper scenarios additionally appear
// pinned to the batched verification backend (suffix "-batched-crypto"):
// same faults, same expected findings and attribution — the batched plane
// must be exactly as falsifiable as the serial one.
func Catalog() []Scenario {
	base := catalogBase()
	tampered := map[string]bool{
		"stale-reads":    true,
		"corrupt-apply":  true,
		"tamper-headers": true,
		"tamper-proof":   true,
	}
	out := append([]Scenario(nil), base...)
	for _, sc := range base {
		if !tampered[sc.Name] {
			continue
		}
		b := sc
		b.Name = sc.Name + "-batched-crypto"
		b.Description = sc.Description + " (batched verification backend)"
		b.Crypto = core.CryptoBatched
		// The batched backend's worker pool makes verification completion
		// order scheduling-dependent, so the trace is not byte-reproducible.
		b.Deterministic = false
		out = append(out, b)
	}
	return out
}

func catalogBase() []Scenario {
	return []Scenario{
		{
			Name:          "honest-baseline",
			Description:   "honest cluster, jittered links: audit clean, logs converge, light client syncs, watchtower silent",
			Net:           NetConfig{BaseLatency: 100 * time.Microsecond, Jitter: 200 * time.Microsecond},
			Txns:          16,
			FinalTxns:     4,
			Watchtower:    true,
			Deterministic: true,
			Expect:        Expect{AuditClean: true, FaultyServer: -1},
		},
		{
			Name:          "honest-multiversion",
			Description:   "multi-versioned shards under jitter: exhaustive audit clean",
			MultiVersion:  true,
			Net:           NetConfig{BaseLatency: 100 * time.Microsecond, Jitter: 150 * time.Microsecond},
			Txns:          12,
			Deterministic: true,
			Expect:        Expect{AuditClean: true, FaultyServer: -1},
		},
		{
			Name:          "drop-retry",
			Description:   "lossy links (5% drop): commits retry through losses, audit stays clean",
			Net:           NetConfig{BaseLatency: 100 * time.Microsecond, Jitter: 100 * time.Microsecond, DropRate: 0.05},
			Txns:          12,
			FinalTxns:     4,
			Deterministic: true,
			Expect:        Expect{AuditClean: true, FaultyServer: -1},
		},
		{
			Name:          "dup-flood",
			Description:   "20% frame duplication: every duplicate dies at the anti-replay window, state unharmed",
			Net:           NetConfig{BaseLatency: 100 * time.Microsecond, DupRate: 0.2},
			Txns:          16,
			FinalTxns:     4,
			Deterministic: true,
			Expect:        Expect{AuditClean: true, FaultyServer: -1},
		},
		{
			Name:         "pipelined-chaos",
			Description:  "pipelined rounds + rotating coordinators under jitter and duplication: height order holds, logs converge",
			Servers:      3,
			BatchSize:    4,
			Pipeline:     4,
			Coordinators: 2,
			Clients:      4,
			Txns:         24,
			Net:          NetConfig{BaseLatency: 100 * time.Microsecond, Jitter: 300 * time.Microsecond, DupRate: 0.1},
			Expect:       Expect{AuditClean: true, FaultyServer: -1},
		},
		{
			Name:          "partition-minority",
			Description:   "one server cut off mid-run: no commit can cross the cut, liveness returns on heal",
			Net:           NetConfig{BaseLatency: 100 * time.Microsecond},
			Txns:          12,
			FinalTxns:     4,
			Partition:     &PartitionStep{Minority: []int{2}, FromTxn: 4, ToTxn: 8},
			Deterministic: true,
			Expect: Expect{
				AuditClean:               true,
				FaultyServer:             -1,
				NoCommitsDuringPartition: true,
			},
		},
		{
			Name:          "stale-reads",
			Description:   "Scenario 1 (§5): stale read values — audit pins incorrect-read, verified reads reject online, watchtower detects mid-run",
			Faults:        map[int]server.Faults{1: {StaleReads: true}},
			Txns:          20,
			Watchtower:    true,
			Deterministic: true,
			Expect: Expect{
				Finding:                audit.FindingIncorrectRead,
				FaultyServer:           1,
				VerifiedReadErr:        lightclient.ErrIncorrectRead,
				WatchFinding:           watch.FindingIncorrectRead,
				RequireDetectionWithin: 1,
			},
		},
		{
			Name:          "corrupt-apply",
			Description:   "Scenario 3 (§5): corrupted datastore applies — audit pins datastore-corruption to the server, watchtower classifies it from a sampled read's VO",
			Faults:        map[int]server.Faults{2: {CorruptApplyValue: []byte("evil")}},
			Txns:          20,
			Watchtower:    true,
			Deterministic: true,
			Expect: Expect{
				Finding:      audit.FindingDatastoreCorruption,
				FaultyServer: 2,
				// Reads served from the corrupted shard also surface as
				// incorrect reads — a consequence, not the signature.
				AllowFindings:          []audit.FindingType{audit.FindingIncorrectRead},
				WatchFinding:           watch.FindingDatastoreCorruption,
				RequireDetectionWithin: 1,
			},
		},
		{
			Name:          "tamper-headers",
			Description:   "forged light-client headers: sync from the forger fails with ErrBadHeader, honest source completes, watchtower's header probe attributes the forger",
			Faults:        map[int]server.Faults{0: {TamperHeaders: true}},
			Txns:          12,
			Watchtower:    true,
			Deterministic: true,
			Expect: Expect{
				AuditClean:             true, // header forgery is an online-path fault; logs are served honestly
				FaultyServer:           0,
				SyncErr:                lightclient.ErrBadHeader,
				WatchFinding:           watch.FindingTamperedHeader,
				RequireDetectionWithin: 1,
			},
		},
		{
			Name:          "tamper-proof",
			Description:   "forged Merkle multiproofs on verified reads: rejected client-side with ErrBadProof, watchtower's sampled reads catch it online",
			Faults:        map[int]server.Faults{1: {TamperVerifiedProof: true}},
			Txns:          12,
			Watchtower:    true,
			Deterministic: true,
			Expect: Expect{
				AuditClean:             true, // the forgery never reaches committed state
				FaultyServer:           1,
				VerifiedReadErr:        lightclient.ErrBadProof,
				WatchFinding:           watch.FindingBadProof,
				RequireDetectionWithin: 1,
			},
		},
		{
			Name:          "restart-recovery",
			Description:   "durable cluster stopped and restarted: verified recovery, clean audit, commits continue",
			Durable:       true,
			SnapshotEvery: 2,
			Txns:          12,
			FinalTxns:     4,
			Crash:         &CrashStep{Server: -1},
			Deterministic: true,
			Expect:        Expect{AuditClean: true, FaultyServer: -1},
		},
		{
			Name:          "power-loss-torn-tail",
			Description:   "whole-cluster power loss with a torn WAL tail on every server: truncation recovers the intact prefix",
			Durable:       true,
			Fsync:         durable.FsyncOff,
			Txns:          10,
			FinalTxns:     4,
			Crash:         &CrashStep{Server: -1, Surgery: SurgeryTearTail},
			Deterministic: true,
			Expect:        Expect{AuditClean: true, FaultyServer: -1},
		},
		{
			Name:        "crash-pre-fsync",
			Description: "server dies before the fsync of its last block (record lost in the page cache): recovery comes back short, catch-up closes the gap",
			Durable:     true,
			Fsync:       durable.FsyncAlways,
			Txns:        10,
			FinalTxns:   4,
			Crash:       &CrashStep{Server: 1, Point: "pre-fsync", AfterTxn: 4, Surgery: SurgeryDropLastRecord},
			// The crashed server honestly lags the authoritative log after
			// recovery; the catch-up protocol then pulls and re-verifies
			// the missing suffix from its peers, so the audit must come
			// back clean and liveness must return.
			Expect: Expect{AuditClean: true, FaultyServer: -1},
		},
		{
			Name:        "crash-mid-apply",
			Description: "server dies between datastore apply and log append: replay recovery plus catch-up heal the divergence",
			Durable:     true,
			Txns:        10,
			FinalTxns:   4,
			Crash:       &CrashStep{Server: 2, Point: "mid-apply", AfterTxn: 4},
			Expect:      Expect{AuditClean: true, FaultyServer: -1},
		},
		{
			Name:        "crash-post-cosign",
			Description: "server dies after verifying the decision co-sign, before applying anything: catch-up delivers the block it missed",
			Durable:     true,
			Txns:        10,
			FinalTxns:   4,
			Crash:       &CrashStep{Server: 1, Point: "post-cosign", AfterTxn: 4},
			Expect:      Expect{AuditClean: true, FaultyServer: -1},
		},
		{
			Name:        "decision-drop-storm",
			Description: "half of all phase-5 decision broadcasts dropped: coordinator retries and ask-a-peer keep every cohort current",
			Net:         NetConfig{BaseLatency: 100 * time.Microsecond, Jitter: 100 * time.Microsecond, DropRate: 0.05, DecisionDropRate: 0.5},
			Txns:        12,
			FinalTxns:   4,
			// Not trace-deterministic: whether a stalled cohort's ask-a-peer
			// grace fires races the coordinator's real-time retry backoff.
			Expect: Expect{
				AuditClean:             true,
				FaultyServer:           -1,
				RequireDecisionRetries: true,
			},
		},
		{
			Name:         "coordinator-crash-midround",
			Description:  "rotating coordinator dies between co-sign and decision broadcast: the one delivered copy resolves the round for everyone",
			Durable:      true,
			Coordinators: 2,
			Txns:         10,
			FinalTxns:    4,
			Crash:        &CrashStep{Server: 1, Point: "mid-broadcast", AfterTxn: 4},
			Expect: Expect{
				AuditClean:     true,
				FaultyServer:   -1,
				RequireCatchup: true,
			},
		},
		{
			Name:        "rejoin-live-traffic",
			Description: "crashed-short server rejoins while commits keep flowing: its stalled votes trigger on-demand catch-up under live load",
			Durable:     true,
			Txns:        10,
			RejoinTxns:  6,
			FinalTxns:   4,
			Crash:       &CrashStep{Server: 2, Point: "post-cosign", AfterTxn: 4},
			Expect: Expect{
				AuditClean:     true,
				FaultyServer:   -1,
				RequireCatchup: true,
			},
		},
		{
			Name:          "tamper-wal-crc",
			Description:   "disk attacker rewrites a WAL record and fixes its CRC: restart must refuse with ErrTampered",
			Durable:       true,
			Txns:          8,
			Crash:         &CrashStep{Server: 1, Surgery: SurgeryTamperCRC, RestartErr: durable.ErrTampered},
			Deterministic: true,
			Expect:        Expect{FaultyServer: -1},
		},
		{
			Name:          "corrupt-wal-interior",
			Description:   "interior WAL record damaged with intact records behind it: restart must refuse with ErrWALCorrupt",
			Durable:       true,
			Txns:          8,
			Crash:         &CrashStep{Server: 0, Surgery: SurgeryTamperRaw, RestartErr: durable.ErrWALCorrupt},
			Deterministic: true,
			Expect:        Expect{FaultyServer: -1},
		},
	}
}

// ByName resolves a scenario from the catalog.
func ByName(name string) (Scenario, error) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("sim: unknown scenario %q", name)
}

// Names lists the catalog's scenario names in order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, sc := range cat {
		out[i] = sc.Name
	}
	return out
}
