package sim

import (
	"time"

	"repro/internal/audit"
	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/watch"
)

// Surgery is a disk mutation applied to a crashed server's WAL between
// shutdown and restart, simulating what a real crash (or a real attacker
// with disk access) leaves behind. Recovery must react to each kind
// differently — that difference is exactly what crash scenarios verify.
type Surgery string

// Disk surgeries.
const (
	// SurgeryNone restarts on the files exactly as the crash left them.
	SurgeryNone Surgery = ""
	// SurgeryDropLastRecord removes the final WAL record: a block that was
	// written but never fsynced and died in the page cache. Recovery comes
	// back one block short — honest crash behavior.
	SurgeryDropLastRecord Surgery = "drop-last-record"
	// SurgeryTearTail truncates mid-record, leaving a torn partial tail.
	// Recovery must truncate the torn bytes and keep the intact prefix.
	SurgeryTearTail Surgery = "tear-tail"
	// SurgeryTamperCRC flips a payload byte and recomputes the record CRC:
	// structurally valid, cryptographically false. Restart must refuse
	// with durable.ErrTampered.
	SurgeryTamperCRC Surgery = "tamper-crc"
	// SurgeryTamperRaw flips a payload byte of an interior record without
	// fixing the CRC: structural damage that cannot be a torn tail
	// (intact records follow). Restart must refuse with
	// durable.ErrWALCorrupt.
	SurgeryTamperRaw Surgery = "tamper-raw"
)

// CrashStep crashes one server (or the whole cluster) mid-scenario and
// restarts on the same data directories through verified recovery.
type CrashStep struct {
	// Server is the crashing server's index; -1 crashes the whole cluster
	// at once (a graceful stop of the workload followed by Close —
	// modeling datacenter power loss, with Surgery supplying the disk
	// damage the power loss caused on every server).
	Server int
	// Point names the crash point — "pre-fsync", "mid-apply",
	// "post-cosign" or "mid-broadcast" (the coordinator dies between
	// collecting the co-sign and finishing the decision broadcast, with
	// exactly one remote cohort holding the finalized block) — at which
	// the server's disk freezes and the server drops off the network.
	// Empty means no in-protocol crash: the workload finishes, then the
	// cluster is closed and Surgery applied.
	Point string
	// AfterTxn arms the crash point only after this many main-phase
	// transactions have been driven (so there is history to recover).
	AfterTxn int
	// Surgery is the disk mutation applied before restart (to the crashed
	// server, or to every server when Server is -1).
	Surgery Surgery
	// RestartErr, when non-nil, is the error restarting the cluster must
	// fail with (durable.ErrTampered / durable.ErrWALCorrupt); the
	// scenario ends there. Nil means restart must succeed and the
	// post-restart invariants run.
	RestartErr error
}

// PartitionStep cuts a set of servers off the network for a window of the
// main phase. TFCommit needs every server's co-signature, so commits must
// fail during the window and resume after the heal — which is exactly
// what the harness asserts.
type PartitionStep struct {
	// Minority lists the server indexes on the cut-off side.
	Minority []int
	// FromTxn / ToTxn bound the window in main-phase transaction indexes:
	// the partition is active while FromTxn <= i < ToTxn.
	FromTxn, ToTxn int
}

// Expect declares the verdict a scenario must produce. The zero value
// expects nothing; honest scenarios set AuditClean, adversarial ones name
// the one specific finding or error their fault must surface as.
type Expect struct {
	// AuditClean requires the final audit to report zero findings.
	AuditClean bool
	// Finding, when non-empty, is the audit finding type the final audit
	// must contain, implicating FaultyServer.
	Finding audit.FindingType
	// FaultyServer is the server index the Finding must implicate
	// (-1 = don't check attribution).
	FaultyServer int
	// AllowFindings lists finding types tolerated besides Finding — e.g.
	// the incomplete-log finding a crashed server's honestly shorter log
	// produces. Any finding not expected or allowed is a violation.
	AllowFindings []audit.FindingType
	// VerifiedReadErr, when non-nil, is the error a proof-carrying read
	// of an item on the faulty server must fail with (online detection).
	VerifiedReadErr error
	// SyncErr, when non-nil, is the error a fresh light client must hit
	// syncing from the faulty server; syncing from an honest server must
	// still succeed.
	SyncErr error
	// NoCommitsDuringPartition asserts the log did not grow while the
	// partition window was active (safety under partial connectivity).
	NoCommitsDuringPartition bool
	// RequireCatchup asserts the catch-up subsystem actually engaged:
	// the run must record at least one caught-up block or wedge
	// recovery. Guards the recovery scenarios against silently passing
	// because nothing ever fell behind.
	RequireCatchup bool
	// RequireDecisionRetries asserts the coordinator's decision-retry
	// path engaged at least once (lossy-decision scenarios).
	RequireDecisionRetries bool
	// WatchFinding, when non-empty, is the online finding type the
	// scenario's watchtower must produce while the workload is still
	// running, implicating FaultyServer — and its evidence bundle must
	// re-verify offline. Requires Scenario.Watchtower. Empty with
	// Watchtower set means the watchtower must stay silent and healthy.
	WatchFinding watch.FindingType
	// RequireDetectionWithin bounds the watchtower's time-to-detection:
	// the expected WatchFinding may be detected at most this many polls
	// after the poll that verified the offending evidence.
	RequireDetectionWithin int
}

// Scenario is one declarative simulation case: a cluster shape, a
// workload, a fault schedule, and the invariants the run must satisfy.
type Scenario struct {
	Name        string
	Description string

	// Cluster shape (defaults: 3 servers, 64 items/shard, batch 1).
	Servers       int
	ItemsPerShard int
	BatchSize     int
	MultiVersion  bool
	Pipeline      int
	Coordinators  int
	// Crypto selects the cluster's verification backend
	// (core.CryptoSerial/CryptoBatched; empty = serial). The batched
	// variants of the tamper scenarios pin it to prove the faster plane
	// detects every fault the serial plane detects, with the same
	// attribution.
	Crypto string

	// Durability. Durable scenarios run on a temp data dir through the
	// real internal/durable path; SnapshotEvery > 0 exercises snapshots.
	Durable       bool
	Fsync         durable.FsyncMode
	SnapshotEvery int

	// Net shapes the simulated network.
	Net NetConfig

	// Workload: WarmupTxns commits before any fault engages, Txns is the
	// main phase (faults active), FinalTxns commits after faults are
	// lifted/healed (liveness restoration). Clients > 1 drives the main
	// phase concurrently (engages the pipeline; forfeits trace
	// determinism).
	WarmupTxns int
	Txns       int
	FinalTxns  int
	Clients    int
	// RejoinTxns commits transactions immediately after a crash restart,
	// before the fault schedule quiesces: a crashed-short server must
	// catch up on the missing log suffix while live traffic is already
	// flowing (the vote path's on-demand catch-up, not the explicit
	// resolver the invariant phase drives).
	RejoinTxns int

	// Faults are the Byzantine server faults switched on after warmup,
	// keyed by server index.
	Faults map[int]server.Faults

	Partition *PartitionStep
	Crash     *CrashStep

	// Watchtower attaches a continuous integrity watchtower to the run:
	// it polls after every committed main-phase transaction (tailing the
	// chain through the streaming replay, probing served headers, and
	// sampling verified reads on every server), and the invariant phase
	// enforces the Expect.WatchFinding contract against its findings.
	Watchtower bool

	// Deterministic marks the scenario's event trace as byte-reproducible
	// per seed (sequential driver, no real-time races): the determinism
	// test runs these twice and requires equal trace hashes.
	Deterministic bool

	Expect Expect
}

func (sc *Scenario) withDefaults() Scenario {
	out := *sc
	if out.Servers <= 0 {
		out.Servers = 3
	}
	if out.ItemsPerShard <= 0 {
		out.ItemsPerShard = 64
	}
	if out.BatchSize <= 0 {
		out.BatchSize = 1
	}
	if out.WarmupTxns <= 0 {
		out.WarmupTxns = 6
	}
	if out.Txns <= 0 {
		out.Txns = 16
	}
	if out.Clients <= 0 {
		out.Clients = 1
	}
	if out.Net.BaseLatency <= 0 {
		out.Net.BaseLatency = 100 * time.Microsecond
	}
	if out.Net.Jitter <= 0 {
		// Always jitter the virtual delays: jitter is free (virtual time
		// is accounted, never slept) and it is what lets the seed leave a
		// fingerprint on every trace — without it, schedules that inject
		// no faults would be identical across seeds and the determinism
		// test could not tell seeds apart.
		out.Net.Jitter = 50 * time.Microsecond
	}
	return out
}
