package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/obs"
	"repro/internal/txn"
	"repro/internal/watch"
)

// errSimCrash is the sentinel a triggered crash hook fails its server
// with: the step dies at the crash point, and every later disk operation
// on that server reports it.
var errSimCrash = errors.New("sim: simulated crash")

// Result is the verdict of one scenario run under one seed.
type Result struct {
	Scenario  string   `json:"scenario"`
	Seed      uint64   `json:"seed"`
	TraceHash string   `json:"trace_hash"`
	Net       NetStats `json:"net"`
	Committed int      `json:"committed"`
	FailedOps int      `json:"failed_ops"`
	VirtualUS int64    `json:"virtual_us"`
	// Liveness-subsystem counters: blocks applied through peer catch-up,
	// vote waits that wedged and then recovered via catch-up, duplicate
	// decisions re-acked idempotently, and the coordinator's decision
	// delivery retries / tolerated unacked cohorts. Nonzero values show
	// the run exercised the recovery machinery, not just the happy path.
	CatchupBlocks   int    `json:"catchup_blocks,omitempty"`
	WedgeRecoveries int    `json:"wedge_recoveries,omitempty"`
	DupDecisions    int    `json:"dup_decisions,omitempty"`
	DecisionRetries uint64 `json:"decision_retries,omitempty"`
	DecisionUnacked uint64 `json:"decision_unacked,omitempty"`
	// Violations is empty on success; every entry is one broken
	// invariant. Repro re-runs this exact case.
	Violations []string `json:"violations,omitempty"`
	Notes      []string `json:"notes,omitempty"`
	Repro      string   `json:"repro"`
}

// OK reports whether the run satisfied every invariant.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// runEnv carries one run's live state across the harness phases.
type runEnv struct {
	sc    Scenario
	seed  uint64
	sched *Scheduler
	clock *txn.SharedClock
	res   *Result
	obs   *obs.Obs
	spans *obs.Collector

	mu      sync.Mutex
	cluster *core.Cluster
	wt      *watch.Watchtower
	written map[int][]txn.ItemID // server index → committed written items

	dataDir     string
	lastTxnErr  error
	crashID     identity.NodeID
	crashArm    atomic.Bool
	crashHit    atomic.Bool   // the crash point fired at some time in the run
	crashDown   atomic.Bool   // the crashed server is currently dead (cleared on restart)
	crashHeight atomic.Uint64 // block height the crash point fired at
	valSeq      atomic.Uint64 // unique value counter (stale ≠ current, always)
	txnSeq      atomic.Uint64 // round-robin shard cursor
	partCommits int
}

// Run executes one scenario under one seed and returns its Result. The
// run is self-contained: it builds its own cluster (on a temporary data
// directory when durable), drives the workload and fault schedule, and
// verifies every declared invariant.
func Run(sc Scenario, seed uint64) *Result {
	res, _ := RunTraced(sc, seed)
	return res
}

// RunTraced is Run with the run's commit-path trace exposed: every run
// carries a tracer whose clock is the scheduler's virtual time and whose
// span ids derive from the seed, so the spans — like everything else in a
// simulation — are reproducible. The determinism proof (TraceHash) covers
// only the network schedule, so tracing cannot perturb it; tests assert
// span-tree completeness on the returned records.
func RunTraced(sc Scenario, seed uint64) (*Result, []obs.SpanRecord) {
	sc = sc.withDefaults()
	res := &Result{
		Scenario: sc.Name,
		Seed:     seed,
		Repro:    fmt.Sprintf("go run ./cmd/fidessim -scenario %s -seed %d", sc.Name, seed),
	}
	env := &runEnv{
		sc:      sc,
		seed:    seed,
		sched:   NewScheduler(seed, sc.Net),
		clock:   txn.NewSharedClock(1),
		res:     res,
		spans:   &obs.Collector{},
		written: make(map[int][]txn.ItemID),
	}
	env.obs = &obs.Obs{
		Metrics: obs.NewRegistry(),
		Tracer: obs.NewTracer(obs.TracerConfig{
			Sink: env.spans,
			Seed: int64(seed),
			Now:  func() time.Time { return time.Unix(0, env.sched.VirtualNow()*1000) },
		}),
	}
	if sc.Crash != nil && sc.Crash.Server >= 0 {
		env.crashID = core.ServerName(sc.Crash.Server)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if sc.Durable {
		dir, err := os.MkdirTemp("", "fidessim-"+sc.Name+"-")
		if err != nil {
			env.violate("temp data dir: %v", err)
			return res, nil
		}
		env.dataDir = dir
		defer os.RemoveAll(dir)
	}

	env.run(ctx)

	res.TraceHash = env.sched.Trace().Hash()
	res.Net = env.sched.Stats()
	res.VirtualUS = env.sched.VirtualNow()
	if c := env.clusterRef(); c != nil {
		c.Close()
	}
	return res, env.spans.Spans()
}

func (env *runEnv) violate(format string, args ...any) {
	env.mu.Lock()
	env.res.Violations = append(env.res.Violations, fmt.Sprintf(format, args...))
	env.mu.Unlock()
}

func (env *runEnv) note(format string, args ...any) {
	env.mu.Lock()
	env.res.Notes = append(env.res.Notes, fmt.Sprintf(format, args...))
	env.mu.Unlock()
}

func (env *runEnv) clusterRef() *core.Cluster {
	env.mu.Lock()
	defer env.mu.Unlock()
	return env.cluster
}

func (env *runEnv) setCluster(c *core.Cluster) {
	env.mu.Lock()
	env.cluster = c
	env.mu.Unlock()
}

// clusterConfig builds the core.Config for this scenario; withHook arms
// the crash hook (only the pre-crash cluster gets it).
func (env *runEnv) clusterConfig(withHook bool) core.Config {
	sc := env.sc
	cfg := core.Config{
		NumServers:    sc.Servers,
		ItemsPerShard: sc.ItemsPerShard,
		BatchSize:     sc.BatchSize,
		BatchWait:     500 * time.Microsecond,
		MultiVersion:  sc.MultiVersion,
		Pipeline:      sc.Pipeline,
		Coordinators:  sc.Coordinators,
		Crypto:        sc.Crypto,
		NetScheduler:  env.sched,
		Obs:           env.obs,
		ServerFaults:  nil, // faults engage after warmup via SetFaults
	}
	if sc.Durable {
		cfg.DataDir = env.dataDir
		cfg.Fsync = sc.Fsync
		cfg.SnapshotEvery = sc.SnapshotEvery
	}
	if withHook && sc.Crash != nil && sc.Crash.Point != "" {
		cfg.CrashHook = env.onCrashPoint
	}
	return cfg
}

// onCrashPoint is the core.Config.CrashHook: when the armed crash point
// fires on the target server, freeze its disk, drop it off the network,
// and fail the in-flight step — the in-process rendition of the process
// dying at exactly that instruction.
func (env *runEnv) onCrashPoint(id identity.NodeID, point string, height uint64) error {
	cs := env.sc.Crash
	if cs == nil || !env.crashArm.Load() || id != env.crashID || point != cs.Point {
		return nil
	}
	if env.crashHit.CompareAndSwap(false, true) {
		env.crashDown.Store(true)
		env.crashHeight.Store(height)
		env.note("crash point %s fired on %s at height %d", point, id, height)
		if c := env.clusterRef(); c != nil {
			// The pre-fsync hook runs with the WAL lock held: the error we
			// return below already fails the WAL sticky, and calling back
			// into the store from under its lock would self-deadlock. The
			// server-layer points hold no durable locks, so freeze the
			// whole store explicitly.
			if point != "pre-fsync" {
				if st := c.DurableStore(id); st != nil {
					st.Fail(errSimCrash)
				}
			}
			if net := c.Network(); net != nil {
				net.Remove(id)
			}
		}
	}
	return errSimCrash
}

// run executes the scenario phases; violations accumulate in env.res.
func (env *runEnv) run(ctx context.Context) {
	sc := env.sc
	if sc.Clients > 1 && (sc.Partition != nil || sc.Crash != nil) {
		env.violate("scenario misconfigured: concurrent clients cannot combine with partition/crash steps")
		return
	}

	cluster, err := core.NewCluster(env.clusterConfig(true))
	if err != nil {
		env.violate("cluster: %v", err)
		return
	}
	env.setCluster(cluster)

	// The watchtower rides along from genesis: its first poll tails the
	// warmup prefix, and every main-phase commit is followed by a poll so
	// detection latency is measured in polls against a moving chain.
	if sc.Watchtower {
		wt, werr := cluster.NewWatchtower()
		if werr != nil {
			env.violate("watchtower: %v", werr)
			return
		}
		env.wt = wt
	}

	// Warmup: an honest prefix every scenario shares, so adversarial
	// phases always have committed history to corrupt and recovery always
	// has blocks to replay.
	if !env.drivePhase(ctx, "warmup", sc.WarmupTxns, true) {
		return
	}

	// Engage the Byzantine faults.
	for idx, f := range sc.Faults {
		if idx < 0 || idx >= sc.Servers {
			env.violate("scenario misconfigured: fault for server %d of %d", idx, sc.Servers)
			return
		}
		cluster.ServerAt(idx).SetFaults(f)
	}

	// Main phase: workload under the fault schedule.
	if sc.Clients > 1 {
		env.driveConcurrent(ctx)
	} else {
		env.driveMain(ctx)
	}

	// Crash step: stop, mutate the disk as the crash would have, restart
	// through the real recovery path.
	if sc.Crash != nil {
		if !env.runCrashRestart(ctx) {
			return
		}
		// Rejoin traffic: commits driven before the schedule quiesces, so
		// a crashed-short server must catch up under live load — its
		// votes stall on the missing suffix and the vote path pulls it
		// from peers mid-workload.
		if sc.RejoinTxns > 0 {
			env.drivePhase(ctx, "rejoin", sc.RejoinTxns, false)
		}
	}

	// Invariant phase: no more injected faults; the checkers must observe
	// the cluster, not the schedule.
	env.sched.Quiesce()
	env.checkInvariants(ctx)
}

// drivePhase commits n transactions that must all succeed (warmup and
// final phases). Returns false when the phase failed hard.
func (env *runEnv) drivePhase(ctx context.Context, phase string, n int, fatal bool) bool {
	cluster := env.clusterRef()
	cl, err := cluster.NewClientWithTS(env.clock)
	if err != nil {
		env.violate("%s client: %v", phase, err)
		return false
	}
	r := newRNG(env.seed, "wk-"+phase)
	for i := 0; i < n; i++ {
		if !env.commitWithRetries(ctx, cl, r, 200) {
			env.violate("%s txn %d failed to commit (last error: %v)", phase, i, env.lastErr())
			if fatal {
				return false
			}
		}
	}
	return true
}

// lastErr returns the most recent transaction-drive error, for violation
// messages (a bare "failed to commit" hides the actual refusal).
func (env *runEnv) lastErr() error {
	env.mu.Lock()
	defer env.mu.Unlock()
	return env.lastTxnErr
}

// driveMain runs the sequential main phase, applying partition windows
// and crash arming at transaction boundaries.
func (env *runEnv) driveMain(ctx context.Context) {
	sc := env.sc
	cluster := env.clusterRef()
	cl, err := cluster.NewClientWithTS(env.clock)
	if err != nil {
		env.violate("main client: %v", err)
		return
	}
	r := newRNG(env.seed, "wk-main")
	var preHeights []int
	inPartition := false

	for i := 0; i < sc.Txns; i++ {
		if p := sc.Partition; p != nil {
			if i == p.FromTxn && !inPartition {
				preHeights = env.logHeights()
				ids := make([]identity.NodeID, len(p.Minority))
				for j, s := range p.Minority {
					ids[j] = core.ServerName(s)
				}
				env.sched.Partition(ids)
				inPartition = true
			}
			if i == p.ToTxn && inPartition {
				env.healPartition(preHeights)
				inPartition = false
			}
		}
		if c := sc.Crash; c != nil && c.Point != "" && i >= c.AfterTxn {
			env.crashArm.Store(true)
		}

		if inPartition {
			// One attempt, failure expected: TFCommit cannot assemble a
			// full co-sign across the cut.
			if ok, _ := env.driveTxn(ctx, cl, r); ok {
				env.partCommits++
			} else {
				env.res.FailedOps++
			}
			continue
		}
		if !env.commitWithRetries(ctx, cl, r, 100) {
			if env.crashHit.Load() {
				break // expected: the cluster cannot commit past the crash
			}
			env.violate("main txn %d failed to commit", i)
			return
		}
		env.pollWatchtower(ctx)
		if env.crashHit.Load() {
			break
		}
	}
	if inPartition {
		env.healPartition(preHeights)
	}
}

// pollWatchtower runs one watchtower poll after a committed transaction.
// The scenarios that attach a watchtower leave the block-fetch path and
// the network intact, so a poll-level transport failure is itself a
// violation.
func (env *runEnv) pollWatchtower(ctx context.Context) {
	if env.wt == nil {
		return
	}
	if err := env.wt.Poll(ctx); err != nil {
		env.violate("watchtower poll: %v", err)
	}
}

// driveConcurrent runs the main phase with several clients at once —
// engaging the pipelined commit path — splitting Txns across them.
func (env *runEnv) driveConcurrent(ctx context.Context) {
	sc := env.sc
	cluster := env.clusterRef()
	per := sc.Txns / sc.Clients
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	for c := 0; c < sc.Clients; c++ {
		cl, err := cluster.NewClientWithTS(env.clock)
		if err != nil {
			env.violate("concurrent client %d: %v", c, err)
			return
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := newRNG(env.seed, fmt.Sprintf("wk-client-%d", c))
			for i := 0; i < per; i++ {
				if !env.commitWithRetries(ctx, cl, r, 100) {
					env.violate("client %d txn %d failed to commit", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// healPartition lifts the partition and asserts the safety expectation:
// no block can have committed across the cut.
func (env *runEnv) healPartition(preHeights []int) {
	env.sched.Heal()
	if !env.sc.Expect.NoCommitsDuringPartition {
		return
	}
	if env.partCommits > 0 {
		env.violate("%d transactions reported committed during the partition", env.partCommits)
	}
	for i, h := range env.logHeights() {
		if preHeights != nil && h != preHeights[i] {
			env.violate("server %d log grew from %d to %d during the partition", i, preHeights[i], h)
		}
	}
}

func (env *runEnv) logHeights() []int {
	cluster := env.clusterRef()
	hs := make([]int, env.sc.Servers)
	for i := range hs {
		hs[i] = cluster.ServerAt(i).Log().Len()
	}
	return hs
}

// commitWithRetries drives one read-modify-write transaction until it
// commits, retrying through rejections, OCC aborts and injected message
// losses. Returns false if it cannot commit within the attempt budget.
func (env *runEnv) commitWithRetries(ctx context.Context, cl *client.Client, r *rng, attempts int) bool {
	for a := 0; a < attempts; a++ {
		if ctx.Err() != nil || env.crashDown.Load() {
			// No point retrying while the crashed server is down: TFCommit
			// needs every server's co-signature. Restart clears the flag.
			return false
		}
		ok, err := env.driveTxn(ctx, cl, r)
		if ok {
			return true
		}
		if err != nil {
			env.mu.Lock()
			env.res.FailedOps++
			env.lastTxnErr = err
			env.mu.Unlock()
		}
	}
	return false
}

// driveTxn runs one read-modify-write transaction against a deterministic
// (seed-derived) item: read it, write a fresh value, commit.
func (env *runEnv) driveTxn(ctx context.Context, cl *client.Client, r *rng) (bool, error) {
	sc := env.sc
	// Shards round-robin (not a random draw): every server is guaranteed
	// writes, so the per-server invariant checks (verified reads against
	// the faulty shard, stale-read repeats) never depend on seed luck.
	// The item within the shard comes from a small seeded pool — small
	// enough that re-reading previously written items is certain, which
	// is what gives the StaleReads fault something to lie about.
	sIdx := int((env.txnSeq.Add(1) - 1) % uint64(sc.Servers))
	pool := sc.ItemsPerShard
	if pool > 4 {
		pool = 4
	}
	item := core.ItemName(sIdx, r.intn(pool))
	// Values carry a process-unique counter: a write must never repeat the
	// item's current value, or a stale read would be indistinguishable
	// from a correct one and the fault scenarios would flake by seed.
	val := []byte(fmt.Sprintf("v%d-%x", env.valSeq.Add(1), r.next()&0xffff))

	s := cl.Begin()
	if _, err := s.Read(ctx, item); err != nil {
		return false, err
	}
	if err := s.Write(ctx, item, val); err != nil {
		return false, err
	}
	res, err := s.Commit(ctx)
	if err != nil {
		return false, err
	}
	if !res.Committed {
		return false, nil
	}
	env.mu.Lock()
	env.written[sIdx] = append(env.written[sIdx], item)
	env.res.Committed++
	env.mu.Unlock()
	return true, nil
}

// runCrashRestart closes the cluster at the crash cut, applies the disk
// surgery, and restarts through verified recovery. Returns false when the
// scenario ends here (expected refusal or hard failure).
func (env *runEnv) runCrashRestart(ctx context.Context) bool {
	sc := env.sc
	cs := sc.Crash
	if cs.Point != "" && !env.crashHit.Load() {
		env.violate("crash point %q on server %d never fired", cs.Point, cs.Server)
		return false
	}
	cluster := env.clusterRef()
	cluster.Close()
	env.setCluster(nil)

	// Disk surgery: the damage the crash left behind.
	targets := []int{cs.Server}
	if cs.Server < 0 {
		targets = targets[:0]
		for i := 0; i < sc.Servers; i++ {
			targets = append(targets, i)
		}
	}
	if cs.Surgery != SurgeryNone {
		for _, idx := range targets {
			dir := filepath.Join(env.dataDir, string(core.ServerName(idx)))
			if err := applySurgery(dir, cs.Surgery); err != nil {
				env.violate("surgery %s on server %d: %v", cs.Surgery, idx, err)
				return false
			}
		}
	}

	// Restart on the same data directories — the real recovery path.
	restarted, err := core.NewCluster(env.clusterConfig(false))
	if cs.RestartErr != nil {
		if err == nil {
			restarted.Close()
			env.violate("restart succeeded; want refusal with %v", cs.RestartErr)
			return false
		}
		if !errors.Is(err, cs.RestartErr) {
			env.violate("restart failed with %v; want %v", err, cs.RestartErr)
			return false
		}
		env.note("restart refused as expected: %v", err)
		return false // scenario complete: the refusal was the invariant
	}
	if err != nil {
		env.violate("restart: %v", err)
		return false
	}
	env.setCluster(restarted)
	// The crashed server is back: rejoin/final phases may commit again.
	env.crashDown.Store(false)

	// Recovery sanity: every server recovered without warnings beyond the
	// snapshot fallbacks, and its shard root matches its recovered log.
	for i := 0; i < sc.Servers; i++ {
		id := core.ServerName(i)
		rec := restarted.Recovery(id)
		if rec == nil {
			env.violate("server %s restarted without recovery info", id)
			continue
		}
		if cs.Surgery == SurgeryTearTail && env.isSurgeryTarget(i) && !rec.Scan.TornTail {
			env.violate("server %s: torn tail surgery left no torn-tail truncation", id)
		}
	}
	return true
}

func (env *runEnv) isSurgeryTarget(idx int) bool {
	return env.sc.Crash != nil && (env.sc.Crash.Server < 0 || env.sc.Crash.Server == idx)
}
