package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/identity"
	"repro/internal/transport"
	"repro/internal/wire"
)

// NetConfig shapes the simulated network. The zero value is an ideal
// network: fixed BaseLatency of zero, no jitter, no loss, no duplication.
type NetConfig struct {
	// BaseLatency is the fixed virtual one-way delay per message.
	BaseLatency time.Duration
	// Jitter adds a uniform draw from [0, Jitter) per message.
	Jitter time.Duration
	// DropRate is the per-message loss probability (the Call fails with
	// ErrDropped, as if the link timed out).
	DropRate float64
	// DupRate is the per-message duplication probability: the frame is
	// delivered normally and a copy is presented to the receiver again,
	// which its anti-replay window must reject.
	DupRate float64
	// DecisionDropRate, when positive, replaces DropRate for phase-5
	// decision broadcasts (tfc_decision / 2pc_decision) so scenarios can
	// target the one message class whose loss historically wedged a
	// cohort. Early revisions exempted decisions from loss entirely
	// because no retry or catch-up protocol existed — a single dropped
	// decision made every lossy schedule a guaranteed wedge. Now the
	// coordinator retries unacked decisions and stalled cohorts ask their
	// peers for the self-authenticating co-signed block, so decisions take
	// loss like any other message, and this knob lets a scenario storm
	// them specifically.
	DecisionDropRate float64
}

// ErrDropped is the failure a lost message surfaces as.
var ErrDropped = fmt.Errorf("%w: dropped by fault schedule", transport.ErrDelivery)

// isDecision reports whether a message type is a phase-5 decision
// broadcast, the class DecisionDropRate targets.
func isDecision(msgType string) bool {
	return msgType == wire.MsgDecision || msgType == wire.Msg2PCDecision
}

// ErrPartitioned is the failure a partition-crossing message surfaces as.
var ErrPartitioned = fmt.Errorf("%w: link cut by partition", transport.ErrDelivery)

// link is the per-directed-link simulation state. All randomness is drawn
// from a stream seeded by (scenario seed, link name), so a link's fate
// sequence depends only on its own message order — never on how traffic
// on other links interleaved in real time. That is what makes traces of
// sequentially driven scenarios byte-reproducible.
type link struct {
	rng   *rng
	seq   uint64 // messages sent on this link
	vtime int64  // cumulative virtual clock, µs
}

// Scheduler is the seeded virtual-time delivery scheduler. It implements
// transport.Scheduler: installed on a LocalNetwork it decides, per
// message, the virtual delay (recorded, never slept — scenarios run at
// CPU speed), loss, duplication, and partition cuts.
type Scheduler struct {
	seed uint64
	cfg  NetConfig

	mu        sync.Mutex
	links     map[string]*link
	groups    map[identity.NodeID]int // partition group per node (default 0)
	cut       bool                    // partition active
	quiesced  bool                    // invariant phase: no more injected faults
	dropped   int
	cutCount  int
	dupsSent  int
	dupsRejct int
	dupsAccpt int

	trace *Trace
}

// NewScheduler builds a virtual-time scheduler for one scenario run.
func NewScheduler(seed uint64, cfg NetConfig) *Scheduler {
	return &Scheduler{
		seed:   seed,
		cfg:    cfg,
		links:  make(map[string]*link),
		groups: make(map[identity.NodeID]int),
		trace:  &Trace{},
	}
}

// Trace returns the run's event trace.
func (s *Scheduler) Trace() *Trace { return s.trace }

var _ transport.Scheduler = (*Scheduler)(nil)
var _ transport.DupObserver = (*Scheduler)(nil)

// Deliver implements transport.Scheduler: it accounts the virtual delay
// for one one-way delivery and decides its fate from the link's seeded
// stream. It never sleeps.
func (s *Scheduler) Deliver(ctx context.Context, from, to identity.NodeID, msgType string, response bool) (transport.Verdict, error) {
	if err := ctx.Err(); err != nil {
		return transport.Verdict{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	key := string(from) + "→" + string(to)
	l := s.links[key]
	if l == nil {
		l = &link{rng: newRNG(s.seed, key)}
		s.links[key] = l
	}
	l.seq++

	// Draw delay and fate unconditionally so the stream position — and
	// with it every later draw — does not depend on when partitions were
	// active or faults were quiesced.
	delay := s.cfg.BaseLatency.Microseconds()
	if j := s.cfg.Jitter.Microseconds(); j > 0 {
		delay += int64(l.rng.next() % uint64(j))
	}
	dropDraw := l.rng.float64()
	dupDraw := l.rng.float64()
	l.vtime += delay

	ev := Event{
		Link: key, LinkSeq: l.seq, Msg: msgType, Response: response,
		DelayUS: delay, VTimeUS: l.vtime, Outcome: OutcomeOK,
	}

	if s.cut && s.groups[from] != s.groups[to] {
		ev.Outcome = OutcomeCut
		s.cutCount++
		s.trace.add(ev)
		return transport.Verdict{}, fmt.Errorf("%w (%s)", ErrPartitioned, key)
	}
	// One unconditional draw per message, compared against a per-class
	// rate: the stream position never depends on message type, so
	// retried decisions redraw deterministically along the link's stream.
	dropRate := s.cfg.DropRate
	if s.cfg.DecisionDropRate > 0 && isDecision(msgType) {
		dropRate = s.cfg.DecisionDropRate
	}
	if !s.quiesced && dropDraw < dropRate {
		ev.Outcome = OutcomeDrop
		s.dropped++
		s.trace.add(ev)
		return transport.Verdict{}, fmt.Errorf("%w (%s %s)", ErrDropped, key, msgType)
	}
	var verdict transport.Verdict
	if !s.quiesced && dupDraw < s.cfg.DupRate {
		ev.Outcome = OutcomeDup
		verdict.Duplicate = true
		s.dupsSent++
	}
	s.trace.add(ev)
	return verdict, nil
}

// DupOutcome implements transport.DupObserver: it records whether the
// receiver's anti-replay window rejected an injected duplicate.
func (s *Scheduler) DupOutcome(from, to identity.NodeID, msgType string, response, rejected bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := string(from) + "→" + string(to)
	out := OutcomeDupRejected
	if rejected {
		s.dupsRejct++
	} else {
		s.dupsAccpt++
		out = OutcomeDupAccepted
	}
	var seq uint64
	if l := s.links[key]; l != nil {
		seq = l.seq
	}
	s.trace.add(Event{Link: key, LinkSeq: seq, Msg: msgType, Response: response, Outcome: out})
}

// Partition splits the cluster: nodes in minority form one side, every
// other node (including nodes first seen later, e.g. fresh clients) stays
// on the majority side. Messages crossing the cut fail until Heal.
func (s *Scheduler) Partition(minority []identity.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groups = make(map[identity.NodeID]int)
	for _, id := range minority {
		s.groups[id] = 1
	}
	s.cut = true
}

// Heal removes any active partition.
func (s *Scheduler) Heal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cut = false
}

// Quiesce stops injecting drops and duplicates (and is implied before the
// harness runs its invariant phase, whose audits and light-client syncs
// must observe the cluster, not the fault schedule). Draw streams keep
// advancing so determinism is unaffected.
func (s *Scheduler) Quiesce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quiesced = true
	s.cut = false
}

// NetStats summarizes what the schedule injected.
type NetStats struct {
	Events       int `json:"events"`
	Dropped      int `json:"dropped"`
	Cut          int `json:"cut"`
	DupsInjected int `json:"dups_injected"`
	DupsRejected int `json:"dups_rejected"`
	DupsAccepted int `json:"dups_accepted"`
}

// Stats returns the scheduler's injection counters.
func (s *Scheduler) Stats() NetStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return NetStats{
		Events:       s.trace.Len(),
		Dropped:      s.dropped,
		Cut:          s.cutCount,
		DupsInjected: s.dupsSent,
		DupsRejected: s.dupsRejct,
		DupsAccepted: s.dupsAccpt,
	}
}

// VirtualNow returns the maximum link-local virtual clock (µs) — a
// causal, not global, notion of elapsed simulated time.
func (s *Scheduler) VirtualNow() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var now int64
	for _, l := range s.links {
		if l.vtime > now {
			now = l.vtime
		}
	}
	return now
}
