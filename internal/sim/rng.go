// Package sim is the deterministic cluster simulator and fault-schedule
// harness of the Fides reproduction. It replaces the in-process network's
// real-time sleeps with a seeded virtual-time scheduler (per-link latency,
// jitter, drops, duplicates, partitions — all drawn from a deterministic
// RNG), composes crash-and-recover schedules that exercise the real
// internal/durable recovery path (including torn-tail WAL truncation) and
// the existing Byzantine tamper faults into declarative scenarios, and
// after every scenario runs the full invariant suite: audits must come
// back clean on honest runs and report the *specific* expected finding on
// adversarial ones, light clients must sync from genesis, logs must
// converge. Every violation prints a one-line repro (scenario name +
// seed) that re-runs byte-identically.
//
// See docs/testing.md for the scenario format, the crash points, and how
// to reproduce a failing CI seed locally.
package sim

// rng is a splitmix64 pseudo-random generator: tiny, fast, and — unlike
// math/rand's default source — trivially seedable per stream, which is
// what keeps every network link's draw sequence independent of how the
// goroutines that use the links interleave in real time.
type rng struct {
	state uint64
}

// newRNG derives an independent stream from a seed and a label: the same
// (seed, label) pair always yields the same stream, and distinct labels
// yield uncorrelated ones.
func newRNG(seed uint64, label string) *rng {
	s := seed
	for _, b := range []byte(label) {
		// FNV-1a-style mixing of the label into the seed.
		s ^= uint64(b)
		s *= 1099511628211
	}
	r := &rng{state: s}
	// Warm the state so adjacent seeds diverge immediately.
	r.next()
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform draw in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
