package sim

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/lightclient"
	"repro/internal/obs"
)

// TestCatalogAllScenarios runs every built-in scenario under a few seeds:
// each run must satisfy its declared invariant contract (clean audit or
// the specific expected finding/error), and any violation prints the
// one-line repro.
func TestCatalogAllScenarios(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, sc := range Catalog() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				r := Run(sc, seed)
				if !r.OK() {
					t.Errorf("seed %d: %v\nrepro: %s", seed, r.Violations, r.Repro)
				}
				if r.Committed == 0 {
					t.Errorf("seed %d committed nothing", seed)
				}
				if r.Net.Events == 0 {
					t.Errorf("seed %d recorded no network events", seed)
				}
			}
		})
	}
}

// TestTraceDeterminism is the acceptance criterion: the same scenario +
// seed run twice produces byte-identical event traces (equal trace
// hashes), and a different seed produces a different trace.
func TestTraceDeterminism(t *testing.T) {
	for _, sc := range Catalog() {
		if !sc.Deterministic {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			a := Run(sc, 7)
			b := Run(sc, 7)
			if !a.OK() || !b.OK() {
				t.Fatalf("runs not clean: %v / %v", a.Violations, b.Violations)
			}
			if a.TraceHash != b.TraceHash {
				t.Fatalf("same seed, different traces:\n%s\n%s", a.TraceHash, b.TraceHash)
			}
			if a.Net != b.Net {
				t.Fatalf("same seed, different net stats: %+v vs %+v", a.Net, b.Net)
			}
			c := Run(sc, 8)
			if c.TraceHash == a.TraceHash {
				t.Fatalf("different seeds produced identical traces")
			}
		})
	}
}

// TestTamperFaultsDistinctErrors is the documented adversarial seed of
// the acceptance criteria: under seed 42 each of the four tamper faults
// reproduces with its own distinct signal —
//
//	StaleReads          → lightclient.ErrIncorrectRead (online) + incorrect-read finding
//	TamperHeaders       → lightclient.ErrBadHeader (header sync)
//	TamperVerifiedProof → lightclient.ErrBadProof (proof shape)
//	CorruptApplyValue   → audit datastore-corruption finding
//
// The scenario contracts carry the expectations; this test additionally
// pins that the four signals really are pairwise distinct, so a
// regression collapsing two detection paths into one cannot pass.
func TestTamperFaultsDistinctErrors(t *testing.T) {
	const seed = 42
	cases := []string{"stale-reads", "tamper-headers", "tamper-proof", "corrupt-apply"}
	signals := make(map[string]string, len(cases))
	for _, name := range cases {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r := Run(sc, seed)
		if !r.OK() {
			t.Fatalf("%s seed %d: %v\nrepro: %s", name, seed, r.Violations, r.Repro)
		}
		sig := ""
		switch {
		case sc.Expect.VerifiedReadErr != nil && sc.Expect.Finding != "":
			sig = sc.Expect.VerifiedReadErr.Error() + "+" + string(sc.Expect.Finding)
		case sc.Expect.VerifiedReadErr != nil:
			sig = sc.Expect.VerifiedReadErr.Error()
		case sc.Expect.SyncErr != nil:
			sig = sc.Expect.SyncErr.Error()
		case sc.Expect.Finding != "":
			sig = string(sc.Expect.Finding)
		default:
			t.Fatalf("%s declares no detection signal", name)
		}
		signals[name] = sig
	}
	seen := make(map[string]string, len(signals))
	for name, sig := range signals {
		if prev, dup := seen[sig]; dup {
			t.Errorf("scenarios %s and %s share the detection signal %q", prev, name, sig)
		}
		seen[sig] = name
	}
	// Belt and braces: the four signals the catalog must declare.
	if signals["stale-reads"] != lightclient.ErrIncorrectRead.Error()+"+"+string(audit.FindingIncorrectRead) {
		t.Errorf("stale-reads signal changed: %q", signals["stale-reads"])
	}
	if signals["tamper-headers"] != lightclient.ErrBadHeader.Error() {
		t.Errorf("tamper-headers signal changed: %q", signals["tamper-headers"])
	}
	if signals["tamper-proof"] != lightclient.ErrBadProof.Error() {
		t.Errorf("tamper-proof signal changed: %q", signals["tamper-proof"])
	}
	if signals["corrupt-apply"] != string(audit.FindingDatastoreCorruption) {
		t.Errorf("corrupt-apply signal changed: %q", signals["corrupt-apply"])
	}
}

// TestDuplicationAgainstLiveCluster (satellite: transport-level
// duplication/reordering) drives a live cluster through a schedule that
// duplicates 20% of frames: the frame-auth anti-replay window must reject
// every copy, no duplicate may ever be accepted, and the cluster's state
// must be exactly what the workload committed (clean audit, converged
// logs — asserted by the scenario contract).
func TestDuplicationAgainstLiveCluster(t *testing.T) {
	sc, err := ByName("dup-flood")
	if err != nil {
		t.Fatal(err)
	}
	r := Run(sc, 3)
	if !r.OK() {
		t.Fatalf("%v\nrepro: %s", r.Violations, r.Repro)
	}
	if r.Net.DupsInjected == 0 {
		t.Fatal("schedule injected no duplicates — the test exercised nothing")
	}
	if r.Net.DupsRejected != r.Net.DupsInjected || r.Net.DupsAccepted != 0 {
		t.Fatalf("dup accounting: injected %d, rejected %d, accepted %d",
			r.Net.DupsInjected, r.Net.DupsRejected, r.Net.DupsAccepted)
	}
}

// TestPipelinedReorderingConverges (satellite, reordering half): under
// pipelined rounds with rotating coordinators, jitter and duplication,
// concurrent block announcements overtake decisions on the wire; the
// cohort height-ordering guarantees must still produce one converged,
// clean-auditing log (the scenario contract asserts both).
func TestPipelinedReorderingConverges(t *testing.T) {
	sc, err := ByName("pipelined-chaos")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		r := Run(sc, seed)
		if !r.OK() {
			t.Fatalf("seed %d: %v\nrepro: %s", seed, r.Violations, r.Repro)
		}
	}
}

// TestCrashRecoverySuite exercises the named crash points end to end
// through the real durable recovery path (the scenario contracts assert
// recovery success, torn-tail truncation, and the tamper refusals).
func TestCrashRecoverySuite(t *testing.T) {
	names := []string{
		"restart-recovery", "power-loss-torn-tail",
		"crash-pre-fsync", "crash-mid-apply", "crash-post-cosign",
		"tamper-wal-crc", "corrupt-wal-interior",
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			r := Run(sc, 5)
			if !r.OK() {
				t.Fatalf("%v\nrepro: %s", r.Violations, r.Repro)
			}
		})
	}
}

// TestVirtualTimeAdvances: the virtual clock accounts the drawn latencies
// without any real sleeping — a scenario with 100µs links must report
// milliseconds of virtual time while finishing in real milliseconds.
func TestVirtualTimeAdvances(t *testing.T) {
	sc, err := ByName("honest-baseline")
	if err != nil {
		t.Fatal(err)
	}
	r := Run(sc, 1)
	if !r.OK() {
		t.Fatal(r.Violations)
	}
	if r.VirtualUS <= 0 {
		t.Fatalf("virtual clock did not advance: %d", r.VirtualUS)
	}
}

// TestScenarioNamesResolve keeps the catalog and the CLI in sync.
func TestScenarioNamesResolve(t *testing.T) {
	for _, name := range Names() {
		if _, err := ByName(name); err != nil {
			t.Errorf("catalog name %q does not resolve: %v", name, err)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Error("unknown scenario resolved")
	}
}

// spanFingerprints canonicalizes a span export for cross-run comparison:
// one line per span carrying its name, its parent's *name* and its
// attributes, the whole set sorted. Span IDs and timestamps are left out
// on purpose: IDs are assignment-order dependent, and while timestamps
// come from the virtual clock (no wall-clock entropy), a cohort handler
// runs concurrently with the scheduler advancing virtual time, so the
// exact instant it samples depends on goroutine interleaving. What two
// runs of the same schedule MUST agree on is the span structure — which
// spans exist, on which server, parented to what.
func spanFingerprints(spans []obs.SpanRecord) []string {
	byID := make(map[string]obs.SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.Span] = s
	}
	out := make([]string, 0, len(spans))
	for _, s := range spans {
		parent := "-"
		if p, ok := byID[s.Parent]; ok {
			parent = p.Name
		}
		attrs := make([]string, 0, len(s.Attrs))
		for k, v := range s.Attrs {
			attrs = append(attrs, k+"="+v)
		}
		sort.Strings(attrs)
		out = append(out, fmt.Sprintf("%s parent=%s %s",
			s.Name, parent, strings.Join(attrs, ",")))
	}
	sort.Strings(out)
	return out
}

// TestTracedRunSpansDeterministic pins the observability contract under
// the simulator: the span *structure* — which spans exist, their names,
// parentage and server attributes — is a pure function of the delivery
// schedule, so the same scenario + seed must export the same span set,
// and tracing must not perturb the schedule itself (proven by the
// event-trace hash, which never covers span payloads). Span IDs, export
// order and exact virtual timestamps are deliberately NOT compared: see
// spanFingerprints. It also asserts the span trees are complete (every
// commit's trace reaches back to its client.commit root with no
// orphans).
func TestTracedRunSpansDeterministic(t *testing.T) {
	sc, err := ByName("honest-baseline")
	if err != nil {
		t.Fatal(err)
	}
	resA, spansA := RunTraced(sc, 11)
	resB, spansB := RunTraced(sc, 11)
	if !resA.OK() || !resB.OK() {
		t.Fatalf("runs not clean: %v / %v", resA.Violations, resB.Violations)
	}
	if resA.TraceHash != resB.TraceHash {
		t.Fatalf("tracing perturbed the event trace:\n%s\n%s", resA.TraceHash, resB.TraceHash)
	}
	if len(spansA) == 0 {
		t.Fatal("traced run exported no spans")
	}
	fpA, fpB := spanFingerprints(spansA), spanFingerprints(spansB)
	if len(fpA) != len(fpB) {
		t.Fatalf("span counts differ: %d vs %d", len(fpA), len(fpB))
	}
	for i := range fpA {
		if fpA[i] != fpB[i] {
			t.Fatalf("span set differs between identical runs:\n%s\n%s", fpA[i], fpB[i])
		}
	}
	roots, orphans := obs.BuildSpanTree(spansA)
	if len(orphans) != 0 {
		t.Fatalf("%d orphaned spans (first: %+v)", len(orphans), orphans[0])
	}
	for _, r := range roots {
		if r.Rec.Name != "client.commit" {
			t.Errorf("unexpected root span %q", r.Rec.Name)
		}
	}
	if len(roots) == 0 {
		t.Fatal("no root spans")
	}
}
