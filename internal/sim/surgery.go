package sim

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// WAL format geometry (documented in docs/protocol.md and frozen since
// PR 2): segment header = magic(8) + version(1) + first_height(8);
// record = len(4 BE) + crc32c(4 BE) + payload.
const (
	walSegHeaderLen = 17
	walRecHeaderLen = 8
)

var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// lastSegment returns the path of a server data dir's newest WAL segment.
func lastSegment(dir string) (string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return "", err
	}
	if len(names) == 0 {
		return "", fmt.Errorf("sim: no WAL segments in %s", dir)
	}
	sort.Strings(names)
	return names[len(names)-1], nil
}

// recordOffsets walks a segment's records and returns each record's start
// offset. It assumes a structurally intact segment (the surgery runs on
// files the process just wrote).
func recordOffsets(data []byte) ([]int, error) {
	if len(data) < walSegHeaderLen {
		return nil, fmt.Errorf("sim: segment shorter than its header")
	}
	var offs []int
	off := walSegHeaderLen
	for off < len(data) {
		if len(data)-off < walRecHeaderLen {
			return nil, fmt.Errorf("sim: truncated record header at %d", off)
		}
		l := int(binary.BigEndian.Uint32(data[off:]))
		if l <= 0 || off+walRecHeaderLen+l > len(data) {
			return nil, fmt.Errorf("sim: implausible record at %d", off)
		}
		offs = append(offs, off)
		off += walRecHeaderLen + l
	}
	return offs, nil
}

// applySurgery mutates one server's WAL per the surgery kind. dir is the
// server's data directory.
func applySurgery(dir string, s Surgery) error {
	if s == SurgeryNone {
		return nil
	}
	seg, err := lastSegment(dir)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		return err
	}
	offs, err := recordOffsets(data)
	if err != nil {
		return fmt.Errorf("sim: surgery on %s: %w", seg, err)
	}
	if len(offs) == 0 {
		return fmt.Errorf("sim: surgery on %s: no records to mutate", seg)
	}

	switch s {
	case SurgeryDropLastRecord:
		// The block died in the page cache: its record never reached the
		// platter. Recovery restarts one block short — honestly.
		return os.Truncate(seg, int64(offs[len(offs)-1]))

	case SurgeryTearTail:
		// The write was torn mid-record: a partial tail survives. Recovery
		// must truncate the torn bytes and keep the intact prefix.
		last := offs[len(offs)-1]
		l := int(binary.BigEndian.Uint32(data[last:]))
		cut := last + walRecHeaderLen + l/2
		return os.Truncate(seg, int64(cut))

	case SurgeryTamperCRC:
		// Flip a payload byte and recompute the CRC: the record stays
		// structurally pristine, so this cannot be a crash artifact — the
		// chain/co-sign verification must refuse it (durable.ErrTampered).
		tgt := offs[0]
		l := int(binary.BigEndian.Uint32(data[tgt:]))
		payload := data[tgt+walRecHeaderLen : tgt+walRecHeaderLen+l]
		payload[l/2] ^= 0x01
		binary.BigEndian.PutUint32(data[tgt+4:], crc32.Checksum(payload, walCRCTable))
		return os.WriteFile(seg, data, 0o644)

	case SurgeryTamperRaw:
		// Flip a payload byte of an interior record, CRC left stale: a
		// structural failure with intact records behind it — interior
		// corruption, never a torn tail (durable.ErrWALCorrupt).
		if len(offs) < 2 {
			return fmt.Errorf("sim: tamper-raw needs >=2 records in %s", seg)
		}
		tgt := offs[0]
		l := int(binary.BigEndian.Uint32(data[tgt:]))
		data[tgt+walRecHeaderLen+l/2] ^= 0x01
		return os.WriteFile(seg, data, 0o644)

	default:
		return fmt.Errorf("sim: unknown surgery %q", s)
	}
}
