package sim

import (
	"bytes"
	"context"
	"errors"

	"repro/internal/audit"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/server"
	"repro/internal/txn"
	"repro/internal/watch"
)

// checkInvariants runs the post-scenario invariant suite: the full audit
// with the scenario's expected-findings contract, log convergence, light
// client sync from genesis, online verified-read detection, the
// duplicate-rejection accounting, and liveness restoration.
func (env *runEnv) checkInvariants(ctx context.Context) {
	cluster := env.clusterRef()
	if cluster == nil {
		return
	}
	env.resolveConvergence(ctx)
	report := env.checkAudit(ctx)
	env.checkConvergence()
	env.checkLightClient(ctx, report)
	env.checkVerifiedRead(ctx)
	env.checkWatchtower(ctx)
	env.checkDups()
	env.checkLiveness(ctx)
	env.collectCounters()
}

// resolveConvergence drives the decision resolver on every lagging server
// until the logs meet the tallest one (bounded). It stands in for the
// free-running background resolver a real deployment runs
// (server.StartResolver) — the simulator drives resolution explicitly so
// the event trace stays deterministic. After it, log convergence is a hard
// invariant even for crash scenarios: a crashed-short server must have
// pulled and re-verified its missing suffix from its peers.
func (env *runEnv) resolveConvergence(ctx context.Context) {
	cluster := env.clusterRef()
	for pass := 0; pass < 8; pass++ {
		hs := env.logHeights()
		tallest := 0
		for _, h := range hs {
			if h > tallest {
				tallest = h
			}
		}
		lagging := false
		for i, h := range hs {
			if h >= tallest {
				continue
			}
			lagging = true
			if _, err := cluster.ServerAt(i).ResolvePending(ctx); err != nil {
				env.note("resolve pass %d server %d: %v", pass, i, err)
			}
		}
		if !lagging {
			break
		}
	}

	// A mid-broadcast coordinator crash leaves exactly one remote cohort
	// holding the co-signed block; that single copy must be enough for
	// every server — crashed coordinator included — to end up with the
	// in-flight block (the co-sign IS the decision).
	if cs := env.sc.Crash; cs != nil && cs.Point == "mid-broadcast" && env.crashHit.Load() {
		h := env.crashHeight.Load()
		for i := 0; i < env.sc.Servers; i++ {
			if got := uint64(cluster.ServerAt(i).Log().Len()); got <= h {
				env.violate("server %d log height %d is missing the in-flight block %d from the mid-broadcast crash", i, got, h)
			}
		}
	}
}

// collectCounters snapshots the liveness-subsystem counters into the
// result and enforces the scenario's engagement expectations.
func (env *runEnv) collectCounters() {
	cluster := env.clusterRef()
	for i := 0; i < env.sc.Servers; i++ {
		st := cluster.ServerAt(i).Stats()
		env.res.CatchupBlocks += st.CatchupBlocks
		env.res.WedgeRecoveries += st.WedgeRecoveries
		env.res.DupDecisions += st.DupDecisions
	}
	cst := cluster.CoordinatorStats()
	env.res.DecisionRetries += cst.DecisionRetries
	env.res.DecisionUnacked += cst.DecisionUnacked
	if env.sc.Expect.RequireCatchup && env.res.CatchupBlocks == 0 && env.res.WedgeRecoveries == 0 {
		env.violate("scenario expects the catch-up path to engage; its counters stayed zero")
	}
	if env.sc.Expect.RequireDecisionRetries && env.res.DecisionRetries == 0 {
		env.violate("scenario expects decision retries; the counter stayed zero")
	}
}

// checkAudit runs the full audit and matches its findings against the
// scenario's contract: the expected finding (with attribution) must be
// present, allowed findings are tolerated, anything else is a violation —
// and an honest scenario tolerates nothing.
func (env *runEnv) checkAudit(ctx context.Context) *audit.Report {
	sc := env.sc
	opts := audit.Options{CheckDatastore: true}
	if sc.MultiVersion {
		opts.MultiVersion = true
		opts.Exhaustive = true
	}
	report, err := env.clusterRef().Audit(ctx, opts)
	if err != nil {
		env.violate("audit failed to run: %v", err)
		return nil
	}

	allowed := make(map[audit.FindingType]bool, len(sc.Expect.AllowFindings))
	for _, t := range sc.Expect.AllowFindings {
		allowed[t] = true
	}
	foundExpected := false
	for _, f := range report.Findings {
		if sc.Expect.Finding != "" && f.Type == sc.Expect.Finding {
			if sc.Expect.FaultyServer >= 0 && !implicates(f, core.ServerName(sc.Expect.FaultyServer)) {
				env.violate("finding %s implicates %v, want server %d: %s", f.Type, f.Servers, sc.Expect.FaultyServer, f)
				continue
			}
			foundExpected = true
			continue
		}
		if allowed[f.Type] {
			continue
		}
		env.violate("unexpected audit finding: %s", f)
	}
	if sc.Expect.Finding != "" && !foundExpected {
		env.violate("audit did not produce the expected %s finding", sc.Expect.Finding)
	}
	if sc.Expect.AuditClean && len(report.Findings) > 0 {
		env.violate("audit not clean: %d findings", len(report.Findings))
	}
	return report
}

func implicates(f audit.Finding, id identity.NodeID) bool {
	for _, s := range f.Servers {
		if s == id {
			return true
		}
	}
	return false
}

// checkConvergence asserts every server converged on one log. This is
// unconditional: a crash is no excuse, because resolveConvergence has
// already given a crashed-short server the chance to pull its missing
// suffix from its peers — failing here means catch-up itself is broken.
func (env *runEnv) checkConvergence() {
	cluster := env.clusterRef()
	ref := cluster.ServerAt(0).Log()
	for i := 1; i < env.sc.Servers; i++ {
		l := cluster.ServerAt(i).Log()
		if l.Len() != ref.Len() {
			env.violate("server %d log length %d != server 0's %d", i, l.Len(), ref.Len())
			continue
		}
		if !bytes.Equal(l.TipHash(), ref.TipHash()) {
			env.violate("server %d tip hash diverges from server 0", i)
		}
	}
}

// honestServer picks a server no fault or crash touched, for the checks
// that need a correct counterpart.
func (env *runEnv) honestServer() (identity.NodeID, bool) {
	for i := 0; i < env.sc.Servers; i++ {
		if _, faulty := env.sc.Faults[i]; faulty {
			continue
		}
		id := core.ServerName(i)
		if id == env.crashID {
			continue
		}
		return id, true
	}
	return "", false
}

// checkLightClient syncs a fresh light client from genesis against an
// honest server — the header chain must verify to the authoritative tip —
// and, when the scenario expects it, proves the faulty server's forged
// headers are rejected with the specific sync error while an honest
// source still completes the sync from the verified prefix.
func (env *runEnv) checkLightClient(ctx context.Context, report *audit.Report) {
	cluster := env.clusterRef()
	honest, ok := env.honestServer()
	if !ok {
		env.violate("scenario has no honest server for light-client sync")
		return
	}
	lc, err := cluster.NewLightClient()
	if err != nil {
		env.violate("light client: %v", err)
		return
	}

	if sErr := env.sc.Expect.SyncErr; sErr != nil {
		faulty := core.ServerName(env.sc.Expect.FaultyServer)
		if _, err := lc.SyncFrom(ctx, faulty); !errors.Is(err, sErr) {
			env.violate("light-client sync from faulty %s: got %v, want %v", faulty, err, sErr)
		}
	}

	synced, err := lc.SyncFrom(ctx, honest)
	if err != nil {
		env.violate("light-client sync from honest %s: %v", honest, err)
		return
	}
	if report != nil {
		if want := uint64(len(report.Authoritative)); synced != want {
			env.violate("light client synced to %d, authoritative tip is %d", synced, want)
		}
	}
}

// checkVerifiedRead proves the online (per-request) detection path: a
// proof-carrying read of an item the faulty server stores must fail with
// the scenario's specific error, while the same read against an honest
// server verifies.
func (env *runEnv) checkVerifiedRead(ctx context.Context) {
	wantErr := env.sc.Expect.VerifiedReadErr
	if wantErr == nil {
		return
	}
	cluster := env.clusterRef()
	faultyIdx := env.sc.Expect.FaultyServer
	env.mu.Lock()
	items := env.written[faultyIdx]
	env.mu.Unlock()
	if len(items) == 0 {
		env.violate("no committed writes on faulty server %d to read back", faultyIdx)
		return
	}
	victim := items[len(items)-1]

	cl, lc, err := cluster.NewVerifyingClient(nil)
	if err != nil {
		env.violate("verifying client: %v", err)
		return
	}
	honest, ok := env.honestServer()
	if !ok {
		env.violate("scenario has no honest server for verified reads")
		return
	}
	if _, err := lc.SyncFrom(ctx, honest); err != nil {
		env.violate("verified-read sync: %v", err)
		return
	}
	if _, err := cl.Begin().Read(ctx, victim, client.Verified()); !errors.Is(err, wantErr) {
		env.violate("verified read of %s: got %v, want %v", victim, err, wantErr)
	}
	// The same path against an honest server's shard must verify clean.
	env.mu.Lock()
	var honestItems []txn.ItemID
	for i := 0; i < env.sc.Servers; i++ {
		if _, faulty := env.sc.Faults[i]; !faulty && len(env.written[i]) > 0 {
			honestItems = env.written[i]
			break
		}
	}
	env.mu.Unlock()
	if len(honestItems) > 0 {
		if _, err := cl.Begin().Read(ctx, honestItems[0], client.Verified()); err != nil {
			env.violate("verified read against honest shard failed: %v", err)
		}
	}
}

// checkWatchtower enforces the online-detection contract on the run's
// watchtower: the verified height must converge to the tip once the
// workload settles; an honest run must leave it silent and healthy; a
// faulty run must have produced the expected finding type online — with
// correct server attribution, within the declared detection-latency
// bound, and with an evidence bundle a third party re-verifies offline.
func (env *runEnv) checkWatchtower(ctx context.Context) {
	if env.wt == nil {
		return
	}
	sc := env.sc
	// Drain polls: the chain is quiet now, so the streaming replay must
	// catch up on anything the last commit left unverified.
	for i := 0; i < 2; i++ {
		if err := env.wt.Poll(ctx); err != nil {
			env.violate("watchtower drain poll: %v", err)
			return
		}
	}
	st := env.wt.Status()
	if st.Lag != 0 {
		env.violate("watchtower lag %d after drain (verified %d, tip %d)", st.Lag, st.Verified, st.Tip)
	}
	findings := env.wt.Findings()

	if sc.Expect.WatchFinding == "" {
		if len(findings) > 0 {
			env.violate("watchtower produced %d findings on an honest run; first: %s", len(findings), findings[0].String())
		} else if !st.Healthy {
			env.violate("watchtower unhealthy on an honest run: %+v", st.Alerts)
		}
		return
	}

	faulty := core.ServerName(sc.Expect.FaultyServer)
	cluster := env.clusterRef()
	found := false
	for _, f := range findings {
		if !watchImplicates(f, faulty) {
			env.violate("watchtower finding implicates %v, want %s: %s", f.Servers, faulty, f.String())
			continue
		}
		if f.Type != sc.Expect.WatchFinding || found {
			continue
		}
		found = true
		if bound := uint64(sc.Expect.RequireDetectionWithin); f.DetectPolls > bound {
			env.violate("watchtower detected %s %d polls after its evidence; bound is %d", f.Type, f.DetectPolls, bound)
		}
		if f.Bundle == nil {
			env.violate("watchtower %s finding carries no evidence bundle", f.Type)
			continue
		}
		if err := watch.VerifyBundle(f.Bundle, cluster.Registry(), cluster.Servers(), cluster.Directory(), cluster.Coordinator()); err != nil {
			env.violate("evidence bundle failed offline re-verification: %v", err)
		}
	}
	if !found {
		env.violate("watchtower never produced the expected %s finding online", sc.Expect.WatchFinding)
	}
	if st.Healthy {
		env.violate("watchtower reports healthy despite integrity findings")
	}
}

func watchImplicates(f watch.Finding, id identity.NodeID) bool {
	for _, s := range f.Servers {
		if s == id {
			return true
		}
	}
	return false
}

// checkDups verifies the duplicate-injection accounting: no duplicated
// frame may ever be accepted, and (in schedules without crash/partition
// interference) every injected duplicate must have been presented and
// rejected by the receiver's anti-replay window.
func (env *runEnv) checkDups() {
	st := env.sched.Stats()
	if st.DupsAccepted > 0 {
		env.violate("%d duplicated frames were accepted by receivers", st.DupsAccepted)
	}
	if env.sc.Crash == nil && env.sc.Partition == nil && st.DupsInjected != st.DupsRejected {
		env.violate("injected %d duplicates but receivers rejected %d", st.DupsInjected, st.DupsRejected)
	}
}

// checkLiveness drives the scenario's final transactions — the cluster
// must keep committing after faults are lifted, partitions healed, or a
// crash recovered. There is no diverged-heights escape hatch anymore: a
// crashed-short server catches up (resolveConvergence, or on demand from
// the vote path), so liveness must always return.
func (env *runEnv) checkLiveness(ctx context.Context) {
	if env.sc.FinalTxns <= 0 {
		return
	}
	// Byzantine faults stay on unless the scenario's contract is about
	// recovery of liveness; lift them so the final phase measures the
	// healed cluster.
	cluster := env.clusterRef()
	for idx := range env.sc.Faults {
		cluster.ServerAt(idx).SetFaults(server.Faults{})
	}
	env.drivePhase(ctx, "final", env.sc.FinalTxns, false)
}
