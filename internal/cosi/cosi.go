// Package cosi implements Collective Signing (CoSi, paper §2.2, [40]): a
// two-round protocol in which a leader produces a record that a group of
// witnesses validates and collectively signs, yielding a single Schnorr
// signature whose size and verification cost equal a single signer's.
//
// The four phases map onto TFCommit's phases (paper §4.3.1, Figure 7):
//
//	Announcement — the leader sends the record to be signed (GetVote).
//	Commitment   — each witness picks a random secret v_i and returns the
//	               Schnorr commitment V_i = v_i·G (Vote).
//	Challenge    — the leader aggregates X = ΣV_i and broadcasts the
//	               challenge c = H(X ‖ R) for record R (Challenge).
//	Response     — each witness validates R and returns r_i = v_i + c·x_i;
//	               the leader aggregates R_s = Σr_i (Response).
//
// The collective signature is (c, R_s) and verifies against the aggregate
// public key ΣX_i exactly like a single Schnorr signature. If any
// participant lied in any phase the signature is invalid, and the leader can
// identify the precise culprit by checking each partial response
// r_i·G == V_i + c·X_i (paper Lemma 4).
//
// Fides uses the flat leader↔witness star topology of Figure 1, not the
// tree aggregation of the original CoSi deployment.
package cosi

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/schnorr"
)

// Commitment is a witness's Schnorr commitment V = v·G from the Commitment
// phase.
type Commitment struct {
	V schnorr.Point
}

// Secret is the witness-side state matching a Commitment: the random nonce
// v. It must be used for exactly one response and then discarded.
type Secret struct {
	v *big.Int
}

// Commit generates the (Commitment, Secret) pair for one round. rnd may be
// nil to use crypto/rand.
func Commit(rnd io.Reader) (Commitment, Secret, error) {
	v, err := schnorr.RandomScalar(rnd)
	if err != nil {
		return Commitment{}, Secret{}, fmt.Errorf("cosi: commit: %w", err)
	}
	return Commitment{V: schnorr.BaseMult(v)}, Secret{v: v}, nil
}

// AggregateCommitments sums the witnesses' commitments into the aggregate
// X_sch = ΣV_i of the Challenge phase. It rejects commitments that are not
// valid group elements (a malicious witness cannot smuggle in a bad point).
func AggregateCommitments(commitments []Commitment) (schnorr.Point, error) {
	agg := schnorr.Infinity()
	for i, c := range commitments {
		if !c.V.OnCurve() {
			return schnorr.Point{}, fmt.Errorf("cosi: commitment %d is not a valid group element", i)
		}
		agg = agg.Add(c.V)
	}
	return agg, nil
}

// AggregatePublicKeys sums the participants' public keys. The collective
// signature verifies against this aggregate exactly like a single-signer
// Schnorr signature.
func AggregatePublicKeys(pubs []schnorr.PublicKey) (schnorr.PublicKey, error) {
	agg := schnorr.Infinity()
	for i, p := range pubs {
		if !p.OnCurve() || p.IsInfinity() {
			return schnorr.PublicKey{}, fmt.Errorf("cosi: public key %d is not a valid group element", i)
		}
		agg = agg.Add(p.Point)
	}
	return schnorr.PublicKey{Point: agg}, nil
}

// Challenge computes the Schnorr challenge ch = hash(X_sch ‖ R) binding the
// aggregate commitment, the aggregate public key and the record (paper §2.2;
// in TFCommit the record is the canonical encoding of the block, §4.3.1
// phase 3).
func Challenge(aggCommitment schnorr.Point, aggPub schnorr.PublicKey, record []byte) *big.Int {
	return schnorr.Challenge(aggCommitment, aggPub.Point, record)
}

// Respond computes a witness's response r_i = v_i + c·x_i mod N. The secret
// is consumed: a second call with the same secret returns an error, because
// nonce reuse across different challenges leaks the private key.
func Respond(priv *schnorr.PrivateKey, secret *Secret, challenge *big.Int) (*big.Int, error) {
	if secret == nil || secret.v == nil {
		return nil, errors.New("cosi: respond: secret already consumed or unset")
	}
	r := schnorr.Respond(priv, secret.v, challenge)
	secret.v = nil
	return r, nil
}

// AggregateResponses sums the witnesses' responses into R_sch = Σr_i.
func AggregateResponses(responses []*big.Int) (*big.Int, error) {
	sum := new(big.Int)
	for i, r := range responses {
		if r == nil {
			return nil, fmt.Errorf("cosi: response %d is nil", i)
		}
		sum.Add(sum, r)
	}
	return sum.Mod(sum, schnorr.N()), nil
}

// Signature is a collective signature ⟨ch, R_sch⟩ (paper §4.3.1 phase 5).
// Its size and verification cost are those of a single Schnorr signature.
type Signature = schnorr.Signature

// Finalize assembles the collective signature from the challenge and the
// aggregate response.
func Finalize(challenge, aggResponse *big.Int) Signature {
	return Signature{C: new(big.Int).Set(challenge), S: new(big.Int).Set(aggResponse)}
}

// Verify checks a collective signature over record against the aggregate
// public key of all participants. Anyone holding the participants' public
// keys can run this; the cost equals verifying one Schnorr signature
// (paper §2.2).
func Verify(aggPub schnorr.PublicKey, record []byte, sig Signature) bool {
	return schnorr.Verify(aggPub, record, sig)
}

// VerifyParticipants aggregates the given public keys and verifies sig
// against the aggregate — a convenience for auditors that hold the
// individual server keys.
func VerifyParticipants(pubs []schnorr.PublicKey, record []byte, sig Signature) bool {
	agg, err := AggregatePublicKeys(pubs)
	if err != nil {
		return false
	}
	return Verify(agg, record, sig)
}

// VerifyPartial checks one participant's response against their commitment
// and public key: r_i·G == V_i + c·X_i. The leader runs this per witness
// when the aggregate signature fails, to identify the precise server that
// sent incorrect cryptographic values (paper Lemma 4).
func VerifyPartial(pub schnorr.PublicKey, commitment Commitment, challenge, response *big.Int) bool {
	if response == nil || challenge == nil || !pub.OnCurve() || !commitment.V.OnCurve() {
		return false
	}
	left := schnorr.BaseMult(response)
	right := commitment.V.Add(pub.Point.ScalarMult(challenge))
	return left.Equal(right)
}

// IdentifyFaulty returns the indices of participants whose partial responses
// fail VerifyPartial — the rigorous per-server check the coordinator is
// incentivised to perform when the collective signature is invalid
// (paper Lemma 4). The three slices must be parallel.
func IdentifyFaulty(pubs []schnorr.PublicKey, commitments []Commitment, challenge *big.Int, responses []*big.Int) ([]int, error) {
	if len(pubs) != len(commitments) || len(pubs) != len(responses) {
		return nil, fmt.Errorf("cosi: identify: mismatched lengths (%d pubs, %d commitments, %d responses)",
			len(pubs), len(commitments), len(responses))
	}
	var faulty []int
	for i := range pubs {
		if !VerifyPartial(pubs[i], commitments[i], challenge, responses[i]) {
			faulty = append(faulty, i)
		}
	}
	return faulty, nil
}
