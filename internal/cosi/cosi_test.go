package cosi

import (
	"math/big"
	"testing"

	"repro/internal/schnorr"
)

// runRound executes a full CoSi round for n participants over record and
// returns everything an inspector needs.
func runRound(t *testing.T, n int, record []byte) (pubs []schnorr.PublicKey, commitments []Commitment, challenge *big.Int, responses []*big.Int, sig Signature) {
	t.Helper()
	privs := make([]*schnorr.PrivateKey, n)
	pubs = make([]schnorr.PublicKey, n)
	commitments = make([]Commitment, n)
	secrets := make([]Secret, n)
	for i := 0; i < n; i++ {
		priv, err := schnorr.GenerateKey(nil)
		if err != nil {
			t.Fatal(err)
		}
		privs[i] = priv
		pubs[i] = priv.Public
		c, s, err := Commit(nil)
		if err != nil {
			t.Fatal(err)
		}
		commitments[i] = c
		secrets[i] = s
	}
	aggV, err := AggregateCommitments(commitments)
	if err != nil {
		t.Fatal(err)
	}
	aggPub, err := AggregatePublicKeys(pubs)
	if err != nil {
		t.Fatal(err)
	}
	challenge = Challenge(aggV, aggPub, record)
	responses = make([]*big.Int, n)
	for i := 0; i < n; i++ {
		r, err := Respond(privs[i], &secrets[i], challenge)
		if err != nil {
			t.Fatal(err)
		}
		responses[i] = r
	}
	aggR, err := AggregateResponses(responses)
	if err != nil {
		t.Fatal(err)
	}
	sig = Finalize(challenge, aggR)
	return pubs, commitments, challenge, responses, sig
}

func TestCollectiveSignRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 9} {
		record := []byte("block-bytes")
		pubs, _, _, _, sig := runRound(t, n, record)
		if !VerifyParticipants(pubs, record, sig) {
			t.Errorf("n=%d: valid collective signature rejected", n)
		}
		if VerifyParticipants(pubs, []byte("different"), sig) {
			t.Errorf("n=%d: signature verified for wrong record", n)
		}
	}
}

func TestVerifyRejectsSubsetOfSigners(t *testing.T) {
	record := []byte("rec")
	pubs, _, _, _, sig := runRound(t, 4, record)
	if VerifyParticipants(pubs[:3], record, sig) {
		t.Error("signature verified with a signer missing")
	}
	extra, _ := schnorr.GenerateKey(nil)
	if VerifyParticipants(append(append([]schnorr.PublicKey{}, pubs...), extra.Public), record, sig) {
		t.Error("signature verified with an extra signer")
	}
}

func TestPartialVerification(t *testing.T) {
	record := []byte("rec")
	pubs, commitments, challenge, responses, _ := runRound(t, 5, record)
	for i := range pubs {
		if !VerifyPartial(pubs[i], commitments[i], challenge, responses[i]) {
			t.Errorf("honest partial %d rejected", i)
		}
	}
	faulty, err := IdentifyFaulty(pubs, commitments, challenge, responses)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty) != 0 {
		t.Errorf("honest round identified faulty %v", faulty)
	}
}

func TestIdentifyFaultyResponse(t *testing.T) {
	record := []byte("rec")
	pubs, commitments, challenge, responses, _ := runRound(t, 5, record)
	// Participant 2 corrupts its response.
	responses[2] = new(big.Int).Add(responses[2], big.NewInt(1))
	aggR, err := AggregateResponses(responses)
	if err != nil {
		t.Fatal(err)
	}
	sig := Finalize(challenge, aggR)
	if VerifyParticipants(pubs, record, sig) {
		t.Fatal("corrupted aggregate verified")
	}
	faulty, err := IdentifyFaulty(pubs, commitments, challenge, responses)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty) != 1 || faulty[0] != 2 {
		t.Errorf("identified %v, want [2]", faulty)
	}
}

func TestIdentifyFaultyCommitment(t *testing.T) {
	record := []byte("rec")
	n := 4
	privs := make([]*schnorr.PrivateKey, n)
	pubs := make([]schnorr.PublicKey, n)
	commitments := make([]Commitment, n)
	secrets := make([]Secret, n)
	for i := 0; i < n; i++ {
		priv, _ := schnorr.GenerateKey(nil)
		privs[i] = priv
		pubs[i] = priv.Public
		c, s, err := Commit(nil)
		if err != nil {
			t.Fatal(err)
		}
		commitments[i] = c
		secrets[i] = s
	}
	// Participant 1 publishes a commitment unrelated to its secret.
	k, _ := schnorr.RandomScalar(nil)
	commitments[1] = Commitment{V: schnorr.BaseMult(k)}

	aggV, _ := AggregateCommitments(commitments)
	aggPub, _ := AggregatePublicKeys(pubs)
	challenge := Challenge(aggV, aggPub, record)
	responses := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		r, err := Respond(privs[i], &secrets[i], challenge)
		if err != nil {
			t.Fatal(err)
		}
		responses[i] = r
	}
	aggR, _ := AggregateResponses(responses)
	if Verify(aggPub, record, Finalize(challenge, aggR)) {
		t.Fatal("aggregate with fake commitment verified")
	}
	faulty, err := IdentifyFaulty(pubs, commitments, challenge, responses)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty) != 1 || faulty[0] != 1 {
		t.Errorf("identified %v, want [1]", faulty)
	}
}

func TestSecretSingleUse(t *testing.T) {
	priv, _ := schnorr.GenerateKey(nil)
	_, secret, err := Commit(nil)
	if err != nil {
		t.Fatal(err)
	}
	ch := big.NewInt(12345)
	if _, err := Respond(priv, &secret, ch); err != nil {
		t.Fatal(err)
	}
	if _, err := Respond(priv, &secret, ch); err == nil {
		t.Fatal("nonce reuse permitted")
	}
}

func TestAggregateRejectsInvalidInputs(t *testing.T) {
	if _, err := AggregateCommitments([]Commitment{{V: schnorr.Point{X: big.NewInt(1), Y: big.NewInt(1)}}}); err == nil {
		t.Error("off-curve commitment accepted")
	}
	if _, err := AggregatePublicKeys([]schnorr.PublicKey{{Point: schnorr.Infinity()}}); err == nil {
		t.Error("identity public key accepted")
	}
	if _, err := AggregateResponses([]*big.Int{nil}); err == nil {
		t.Error("nil response accepted")
	}
	if _, err := IdentifyFaulty(nil, []Commitment{{}}, big.NewInt(1), nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestChallengeBindsAllInputs(t *testing.T) {
	priv, _ := schnorr.GenerateKey(nil)
	c1, _, _ := Commit(nil)
	c2, _, _ := Commit(nil)
	rec := []byte("r1")
	base := Challenge(c1.V, priv.Public, rec)
	if Challenge(c2.V, priv.Public, rec).Cmp(base) == 0 {
		t.Error("challenge ignores commitment")
	}
	other, _ := schnorr.GenerateKey(nil)
	if Challenge(c1.V, other.Public, rec).Cmp(base) == 0 {
		t.Error("challenge ignores aggregate key")
	}
	if Challenge(c1.V, priv.Public, []byte("r2")).Cmp(base) == 0 {
		t.Error("challenge ignores record")
	}
}
