package tfcommit

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/txn"
)

// Pipeline keeps up to Depth TFCommit rounds in flight at once and rotates
// the coordinator role across a set of servers.
//
// The hash chain makes full phase-level parallelism impossible: block h+1's
// PrevHash is the hash of block h, which covers block h's collective
// signature, so the prepare phases of h+1 cannot start before h's co-sign
// is finalized (end of phase 4). What CAN overlap — and what this type
// overlaps — is everything after that point: while block h's decision
// broadcast, datastore applies, WAL appends and fsyncs are still in flight
// (phase 5), the round for block h+1 is already announcing, collecting
// votes and co-signing. Cohorts keep their side strictly height-ordered: a
// block announcement that overtakes its predecessor's decision parks in
// ledger.Log.WaitLen until the log catches up, so OCC validation, Merkle
// roots and chain extension are byte-for-byte the same as a serial run.
//
// Coordinator rotation implements §3's observation that any database
// server can act as the TFCommit coordinator: round r is driven by
// Coordinators[r mod len(Coordinators)]. Rotation needs no extra trust —
// the coordinator is untrusted either way, and every cohort still verifies
// every block it co-signs.
//
// Sequencing rules, chosen so a failed or aborted round can never wedge or
// equivocate the chain:
//
//   - A committed block releases its successor (height+1, Hash) as soon as
//     its co-sign is finalized, before phase 5 — that is the pipelining.
//   - An aborted block is not appended (paper §4.1 step 6), so its height
//     is reused; the successor is released only after the abort's phase 5
//     completes, otherwise the next announcement at the same height could
//     overtake the abort decision at a cohort and clobber its round state.
//   - A round that fails mid-protocol releases the position unchanged; the
//     next round at that height simply replaces the dead round's state at
//     the cohorts.
type Pipeline struct {
	coords []*Coordinator
	depth  int
	sem    chan struct{}

	mu    sync.Mutex
	tail  chan position // the channel the next round must wait on
	round uint64
}

// position is the chain slot handed from each round to its successor.
type position struct {
	height   uint64
	prevHash []byte
}

// PipelineConfig assembles a Pipeline.
type PipelineConfig struct {
	// Coordinators are the rotating coordinator instances, typically one
	// per coordinating server. At least one is required; round r is driven
	// by Coordinators[r mod len(Coordinators)].
	Coordinators []*Coordinator
	// Depth is the maximum number of blocks in flight (1 = serial).
	Depth int
	// Height and PrevHash seed the chain position: the next block's height
	// and the hash it extends (from the, possibly recovered, log tip).
	Height uint64
	// PrevHash is the log tip hash at Height (nil for an empty log).
	PrevHash []byte
}

// NewPipeline creates a commit pipeline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if len(cfg.Coordinators) == 0 {
		return nil, errors.New("tfcommit: pipeline requires at least one coordinator")
	}
	for i, c := range cfg.Coordinators {
		if c == nil {
			return nil, fmt.Errorf("tfcommit: pipeline coordinator %d is nil", i)
		}
	}
	depth := cfg.Depth
	if depth < 1 {
		depth = 1
	}
	head := make(chan position, 1)
	head <- position{height: cfg.Height, prevHash: cfg.PrevHash}
	return &Pipeline{
		coords: append([]*Coordinator(nil), cfg.Coordinators...),
		depth:  depth,
		sem:    make(chan struct{}, depth),
		tail:   head,
	}, nil
}

// Depth returns the pipeline's maximum number of in-flight blocks.
func (p *Pipeline) Depth() int { return p.depth }

// Coordinators returns how many servers take turns driving commits.
func (p *Pipeline) Coordinators() int { return len(p.coords) }

// SetFaults replaces the fault configuration on every rotating coordinator.
func (p *Pipeline) SetFaults(f Faults) {
	for _, c := range p.coords {
		c.SetFaults(f)
	}
}

// CommitBlock terminates one batch through the pipeline, blocking until the
// round completes. Concurrent callers are sequenced FIFO by enqueue order;
// at most Depth rounds run at once.
func (p *Pipeline) CommitBlock(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope) (*Result, error) {
	wait, err := p.Enqueue(ctx, txns, envs, 0, nil)
	if err != nil {
		return nil, err
	}
	return wait()
}

// Enqueue claims the next pipeline slot (blocking while Depth rounds are
// already in flight), starts the round in the background, and returns a
// function that waits for its outcome. Enqueue order is commit order:
// callers that need deterministic block sequencing enqueue sequentially and
// wait concurrently — core.Batcher enqueues from its dispatch loop for
// exactly this reason.
//
// maxPrunes and dropped configure the §4.6 prune-and-retry policy, run at
// the block's HELD chain position: when cohorts itemize individual failing
// transactions on an abort, the block is retried with them pruned at the
// same height, before the position is released to any successor. Retrying
// in place matters under pipelining: a retry re-enqueued behind later
// blocks would find the stale-timestamp watermark advanced past its
// transactions' timestamps and be doomed to abort again. dropped is
// invoked (from the round goroutine, strictly before the wait function
// returns) for each pruned transaction index with the abort result that
// vetoed it; 0/nil disables retrying.
func (p *Pipeline) Enqueue(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope, maxPrunes int, dropped func(int, *Result)) (func() (*Result, error), error) {
	if len(txns) == 0 {
		return nil, errors.New("tfcommit: empty batch")
	}
	if len(envs) != len(txns) {
		return nil, fmt.Errorf("tfcommit: %d envelopes for %d transactions", len(envs), len(txns))
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	p.mu.Lock()
	prev := p.tail
	next := make(chan position, 1)
	p.tail = next
	coord := p.coords[p.round%uint64(len(p.coords))]
	p.round++
	p.mu.Unlock()

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() { <-p.sem }()

		var pos position
		select {
		case pos = <-prev:
		case <-ctx.Done():
			// The position must keep flowing or every successor wedges.
			// Unblock the caller now, then keep this goroutine (and its
			// depth slot) until the predecessor releases the position and
			// it has been handed through untouched — the predecessor
			// always releases, so this terminates.
			done <- outcome{err: ctx.Err()}
			next <- <-prev
			return
		}

		released := false
		release := func(np position) {
			if !released {
				released = true
				next <- np
			}
		}

		curTxns, curEnvs := txns, envs
		orig := make([]int, len(txns)) // current batch index → caller's index
		for i := range orig {
			orig[i] = i
		}
		var res *Result
		var err error
		for round := 0; ; round++ {
			res, err = coord.commitAt(ctx, pos.height, pos.prevHash, curTxns, curEnvs, func(b *ledger.Block, committed bool) {
				if committed {
					// The co-sign is finalized: the successor's PrevHash
					// is fixed, so the next round starts while this
					// block's decision broadcast and applies are still in
					// flight.
					release(position{height: pos.height + 1, prevHash: b.Hash()})
				}
			})
			if err != nil || res.Committed {
				break
			}
			// In-position prune and retry (§4.6): each abort round fully
			// completed phase 5 before the retry announces at the same
			// height, so cohorts see a clean serial sequence of rounds.
			failed := res.FailedTxns
			if maxPrunes <= 0 || len(failed) == 0 || len(failed) >= len(curTxns) || round >= maxPrunes {
				break
			}
			failedSet := make(map[int]struct{}, len(failed))
			for _, idx := range failed {
				failedSet[idx] = struct{}{}
			}
			nextTxns := curTxns[:0:0]
			nextEnvs := curEnvs[:0:0]
			nextOrig := orig[:0:0]
			for i := range curTxns {
				if _, bad := failedSet[i]; bad {
					if dropped != nil {
						dropped(orig[i], res)
					}
					continue
				}
				nextTxns = append(nextTxns, curTxns[i])
				nextEnvs = append(nextEnvs, curEnvs[i])
				nextOrig = append(nextOrig, orig[i])
			}
			curTxns, curEnvs, orig = nextTxns, nextEnvs, nextOrig
		}
		// Aborted blocks are not appended, so the height is reused — but
		// only after phase 5, so the abort decision cannot be overtaken by
		// the successor's same-height announcement. Failed rounds likewise
		// pass the position on unchanged.
		release(pos)
		done <- outcome{res: res, err: err}
	}()

	return func() (*Result, error) {
		o := <-done
		return o.res, o.err
	}, nil
}
