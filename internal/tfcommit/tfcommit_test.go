package tfcommit_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tfcommit"
	"repro/internal/transport"
	"repro/internal/txn"
)

// stack is a minimal TFCommit deployment: n servers on a local network and
// a coordinator driving them directly.
type stack struct {
	reg     *identity.Registry
	net     *transport.LocalNetwork
	servers []*server.Server
	idents  []*identity.Identity
	coord   *tfcommit.Coordinator
	client  *identity.Identity
	dir     mapDirectory
}

type mapDirectory map[txn.ItemID]identity.NodeID

func (d mapDirectory) Owner(id txn.ItemID) (identity.NodeID, bool) {
	o, ok := d[id]
	return o, ok
}

func item(s, i int) txn.ItemID { return txn.ItemID(fmt.Sprintf("s%d/i%d", s, i)) }

func newStack(t *testing.T, n int, faults tfcommit.Faults) *stack {
	t.Helper()
	st := &stack{reg: identity.NewRegistry(), net: transport.NewLocalNetwork(0), dir: mapDirectory{}}
	var ids []identity.NodeID
	for s := 0; s < n; s++ {
		id := identity.NodeID(fmt.Sprintf("srv%d", s))
		ids = append(ids, id)
		for i := 0; i < 4; i++ {
			st.dir[item(s, i)] = id
		}
	}
	var endpoints []transport.Transport
	for s := 0; s < n; s++ {
		ident, err := identity.New(ids[s], identity.RoleServer, nil)
		if err != nil {
			t.Fatal(err)
		}
		st.reg.Register(ident.Public())
		st.idents = append(st.idents, ident)
		items := make([]txn.ItemID, 4)
		for i := range items {
			items[i] = item(s, i)
		}
		shard := store.NewShard(items, func(txn.ItemID) []byte { return []byte("0") }, store.Config{})
		srv, err := server.New(server.Config{
			Identity: ident, Registry: st.reg, Directory: st.dir, Shard: shard,
		})
		if err != nil {
			t.Fatal(err)
		}
		st.servers = append(st.servers, srv)
		endpoints = append(endpoints, st.net.Endpoint(ident, st.reg, srv))
	}
	coord, err := tfcommit.New(tfcommit.Config{
		Identity:  st.idents[0],
		Registry:  st.reg,
		Transport: endpoints[0],
		Servers:   ids,
		Local:     st.servers[0],
		Faults:    faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.coord = coord

	cl, err := identity.New("client", identity.RoleClient, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.reg.Register(cl.Public())
	st.client = cl
	return st
}

func (st *stack) freshTxn(t *testing.T, id string, ts uint64, s, i int) (*txn.Transaction, identity.Envelope) {
	t.Helper()
	it, err := st.servers[s].Shard().Get(item(s, i))
	if err != nil {
		t.Fatal(err)
	}
	tr := &txn.Transaction{
		ID: id, TS: txn.Timestamp{Time: ts, ClientID: 3},
		Writes: []txn.WriteEntry{{
			ID: it.ID, NewVal: []byte("v-" + id), OldVal: it.Value,
			Blind: true, RTS: it.RTS, WTS: it.WTS,
		}},
	}
	payload, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return tr, identity.Seal(st.client, payload)
}

func TestCommitBlockHappyPath(t *testing.T) {
	st := newStack(t, 3, tfcommit.Faults{})
	ctx := context.Background()

	tr, env := st.freshTxn(t, "t1", 5, 1, 0)
	res, err := st.coord.CommitBlock(ctx, []*txn.Transaction{tr}, []identity.Envelope{env})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.Block.Decision != ledger.DecisionCommit {
		t.Fatalf("result = %+v", res)
	}
	if res.Block.CoSig().IsZero() {
		t.Fatal("committed block lacks co-sign")
	}
	if err := ledger.VerifyBlockSig(res.Block, st.reg); err != nil {
		t.Fatalf("block signature: %v", err)
	}
	for s, srv := range st.servers {
		if srv.Log().Len() != 1 {
			t.Errorf("server %d log length %d", s, srv.Log().Len())
		}
	}

	// Multiple transactions per block (paper §4.6).
	t2, e2 := st.freshTxn(t, "t2", 6, 0, 1)
	t3, e3 := st.freshTxn(t, "t3", 7, 2, 1)
	res, err = st.coord.CommitBlock(ctx, []*txn.Transaction{t2, t3}, []identity.Envelope{e2, e3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || len(res.Block.Txns) != 2 {
		t.Fatalf("batched block = %+v", res.Block)
	}
	if len(res.Block.Roots) != 2 {
		t.Fatalf("expected roots from 2 involved servers, got %d", len(res.Block.Roots))
	}
}

func TestCommitBlockAbortsOnConflict(t *testing.T) {
	st := newStack(t, 2, tfcommit.Faults{})
	ctx := context.Background()

	tr, env := st.freshTxn(t, "t1", 5, 1, 0)
	// The item changes after the client captured its timestamps.
	if err := st.servers[1].Shard().Apply([]store.Access{{
		Writes: []txn.WriteEntry{{ID: item(1, 0), NewVal: []byte("race")}},
		TS:     txn.Timestamp{Time: 2, ClientID: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := st.coord.CommitBlock(ctx, []*txn.Transaction{tr}, []identity.Envelope{env})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("conflicting txn committed")
	}
	if res.Block.Decision != ledger.DecisionAbort {
		t.Fatalf("decision = %v", res.Block.Decision)
	}
	// Even the aborted block is collectively signed (paper §4.3.1 phase 5).
	if err := ledger.VerifyBlockSig(res.Block, st.reg); err != nil {
		t.Fatalf("aborted block signature: %v", err)
	}
	// Aborted blocks are not logged.
	for s, srv := range st.servers {
		if srv.Log().Len() != 0 {
			t.Errorf("server %d logged an aborted block", s)
		}
	}
}

func TestCommitBlockIdentifiesFaultySigner(t *testing.T) {
	st := newStack(t, 3, tfcommit.Faults{})
	st.servers[2].SetFaults(server.Faults{BadResponse: true})
	tr, env := st.freshTxn(t, "t1", 5, 0, 0)
	_, err := st.coord.CommitBlock(context.Background(), []*txn.Transaction{tr}, []identity.Envelope{env})
	var fse *tfcommit.FaultySignersError
	if !errors.As(err, &fse) {
		t.Fatalf("err = %v, want FaultySignersError", err)
	}
	if len(fse.Faulty) != 1 || fse.Faulty[0] != "srv2" {
		t.Fatalf("faulty = %v, want [srv2]", fse.Faulty)
	}
}

func TestCommitBlockFakeRootRefused(t *testing.T) {
	st := newStack(t, 3, tfcommit.Faults{FakeRootFor: "srv1"})
	tr, env := st.freshTxn(t, "t1", 5, 1, 0)
	_, err := st.coord.CommitBlock(context.Background(), []*txn.Transaction{tr}, []identity.Envelope{env})
	var re *tfcommit.RefusalError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RefusalError", err)
	}
	if re.Phase != "challenge" {
		t.Errorf("refusal phase = %s, want challenge", re.Phase)
	}
	if _, ok := re.Refused["srv1"]; !ok {
		t.Errorf("srv1 did not refuse: %v", re.Refused)
	}
}

func TestCommitBlockChallengeEquivocationExposed(t *testing.T) {
	st := newStack(t, 4, tfcommit.Faults{EquivocateChallenge: true})
	tr, env := st.freshTxn(t, "t1", 5, 0, 0)
	_, err := st.coord.CommitBlock(context.Background(), []*txn.Transaction{tr}, []identity.Envelope{env})
	var re *tfcommit.RefusalError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RefusalError", err)
	}
	if len(re.Refused) == 0 {
		t.Fatal("no cohort exposed the equivocation")
	}
}

func TestCommitBlockValidation(t *testing.T) {
	st := newStack(t, 2, tfcommit.Faults{})
	ctx := context.Background()
	if _, err := st.coord.CommitBlock(ctx, nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	tr, _ := st.freshTxn(t, "t1", 5, 0, 0)
	if _, err := st.coord.CommitBlock(ctx, []*txn.Transaction{tr}, nil); err == nil {
		t.Error("missing envelopes accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := tfcommit.New(tfcommit.Config{}); err == nil {
		t.Error("empty config accepted")
	}
	ident, _ := identity.New("x", identity.RoleServer, nil)
	if _, err := tfcommit.New(tfcommit.Config{
		Identity: ident, Registry: identity.NewRegistry(),
	}); err == nil {
		t.Error("config without local participant accepted")
	}
}
