// Package tfcommit implements the coordinator side of TFCommit (paper
// §4.3), the paper's primary contribution: a trust-free atomic commitment
// protocol that merges Two-Phase Commit with Collective Signing (CoSi) so
// that every termination decision is bound to a block of the tamper-proof
// log by a collective signature of all servers.
//
// TFCommit is a 3-round protocol with 5 phases (Figure 7), each labelled by
// its ⟨2PC phase, CoSi phase⟩ mapping:
//
//  1. ⟨GetVote,  SchAnnouncement⟩  coordinator → cohorts: partial block
//  2. ⟨Vote,     SchCommitment⟩    cohorts → coordinator: vote, root, V_i
//  3. ⟨null,     SchChallenge⟩     coordinator → cohorts: ch, ΣV_i, block
//  4. ⟨null,     SchResponse⟩      cohorts → coordinator: r_i
//  5. ⟨Decision, null⟩             coordinator → cohorts: co-signed block
//
// The coordinator is itself an untrusted database server with extra duties
// only during termination (paper §4.1); its own cohort participates through
// the Local participant rather than the network.
//
// Like 2PC, TFCommit blocks while all servers must contribute to phases
// 1–4: the collective signature requires every signer. After phase 4,
// though, the co-signed block *is* the decision — its collective signature
// fixes the outcome and authenticates it to anyone — so phase 5 is pure
// dissemination and this implementation makes it non-blocking in the 3PC
// spirit: the coordinator retries unacknowledged Decision broadcasts with
// backoff, tolerates cohorts it ultimately cannot reach (they pull the
// block from any peer via the catch-up path in internal/server), and a
// coordinator that dies mid-broadcast leaves behind a self-authenticating
// block that any single surviving copy suffices to finish distributing.
package tfcommit

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cosi"
	"repro/internal/crypto"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/schnorr"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// Participant is the coordinator's interface to its own local server: the
// coordinator votes, responds and applies like any cohort, without a
// network hop. *server.Server satisfies it.
type Participant interface {
	GetVote(ctx context.Context, from identity.NodeID, req *wire.GetVoteReq) (*wire.VoteResp, error)
	Challenge(ctx context.Context, from identity.NodeID, req *wire.ChallengeReq) (*wire.ChallengeResp, error)
	Decide(ctx context.Context, from identity.NodeID, req *wire.DecisionReq) (*wire.DecisionResp, error)
	Log() *ledger.Log
}

// Faults configures coordinator misbehavior (paper §4.3.2, §5 Scenario 2,
// Lemma 5). The zero value is a correct coordinator.
type Faults struct {
	// EquivocateChallenge implements Lemma 5 case 1: the coordinator
	// computes one challenge (over the commit block) but delivers an abort
	// variant of the block to half the cohorts. A correct cohort recomputes
	// the challenge against the block it received and immediately exposes
	// the mismatch.
	EquivocateChallenge bool
	// EquivocateDecision sends the finalized block to half the cohorts and
	// a content-mutated variant (carrying the same, now-mismatched co-sign)
	// to the other half — the Figure 8 attack surfacing at the Decision
	// phase. Cohorts that verify the co-sign reject the invalid branch;
	// colluding cohorts that skip the check append a block whose signature
	// an auditor later finds invalid (Lemma 5).
	EquivocateDecision bool
	// FakeRootFor replaces the named cohort's Merkle root with garbage
	// before the challenge phase (Scenario 2). The benign cohort detects
	// the substitution in SchResponse and refuses to co-sign.
	FakeRootFor identity.NodeID
}

// Config assembles a Coordinator.
type Config struct {
	// Identity is the coordinator server's identity.
	Identity *identity.Identity
	// Registry resolves all node public keys.
	Registry *identity.Registry
	// Transport reaches the remote cohorts.
	Transport transport.Transport
	// Servers is the full server set (including the coordinator); all of
	// them participate in every termination so the log is identically
	// ordered everywhere (paper §4.3.1).
	Servers []identity.NodeID
	// Local is the coordinator's own server.
	Local Participant
	// Faults injects coordinator misbehavior.
	Faults Faults
	// CrashHook, when non-nil, is consulted at coordinator crash points.
	// The only point today is "mid-broadcast": fired after the finalized
	// block has been delivered to the first remote cohort, i.e. between
	// co-sign and the rest of the Decision broadcast. A non-nil return
	// abandons the round with that error, simulating the coordinator dying
	// at the worst possible instant. Test and simulation instrumentation.
	CrashHook func(point string, height uint64) error
	// Obs supplies metrics, tracing and logging; nil runs dark (detached
	// instruments, no spans, discard logger).
	Obs *obs.Obs
	// Verifier is the coordinator's verification plane: the pre-publication
	// co-sign check and the Lemma 4 faulty-signer identification route
	// through it. Nil defaults to the serial backend over Registry. A
	// coordinator normally shares its server's verifier, so the co-sign
	// verdict it establishes here is already cached when its own cohort
	// re-checks the same bytes at Decide.
	Verifier crypto.Verifier
}

// Coordinator terminates transactions by running TFCommit rounds.
type Coordinator struct {
	ident    *identity.Identity
	reg      *identity.Registry
	tr       transport.Transport
	servers  []identity.NodeID
	local    Participant
	faults   Faults
	crash    func(point string, height uint64) error
	o        *obs.Obs
	verifier crypto.Verifier

	// Per-phase commit-path instruments (registry-backed; detached when no
	// registry is configured). The phase histograms time the coordinator's
	// view of each protocol leg of Figure 7; the counters are the PR 6
	// decision-liveness statistics, now shared with /metrics.
	phaseVote       *obs.Histogram
	phaseChallenge  *obs.Histogram
	phaseCosign     *obs.Histogram
	phaseDecision   *obs.Histogram
	roundHist       *obs.Histogram
	roundsCommit    *obs.Counter
	roundsAbort     *obs.Counter
	roundsFailed    *obs.Counter
	decisionRetries *obs.Counter
	decisionUnacked *obs.Counter
}

// New creates a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Identity == nil || cfg.Registry == nil || cfg.Local == nil {
		return nil, errors.New("tfcommit: config requires identity, registry and local participant")
	}
	if len(cfg.Servers) == 0 {
		return nil, errors.New("tfcommit: config requires at least one server")
	}
	servers := append([]identity.NodeID(nil), cfg.Servers...)
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	verifier := cfg.Verifier
	if verifier == nil {
		verifier = crypto.NewSerial(cfg.Registry)
	}
	o := cfg.Obs
	const phaseHelp = "TFCommit per-phase latency at the coordinator, by protocol phase."
	return &Coordinator{
		ident:           cfg.Identity,
		reg:             cfg.Registry,
		tr:              cfg.Transport,
		servers:         servers,
		local:           cfg.Local,
		faults:          cfg.Faults,
		crash:           cfg.CrashHook,
		o:               o,
		verifier:        verifier,
		phaseVote:       o.Histogram("fides_tfcommit_phase_seconds", phaseHelp, nil, obs.L("phase", "vote")),
		phaseChallenge:  o.Histogram("fides_tfcommit_phase_seconds", phaseHelp, nil, obs.L("phase", "challenge")),
		phaseCosign:     o.Histogram("fides_tfcommit_phase_seconds", phaseHelp, nil, obs.L("phase", "cosign")),
		phaseDecision:   o.Histogram("fides_tfcommit_phase_seconds", phaseHelp, nil, obs.L("phase", "decision")),
		roundHist:       o.Histogram("fides_tfcommit_round_seconds", "Full TFCommit round latency (phase 1 announcement through phase 5 broadcast).", nil),
		roundsCommit:    o.Counter("fides_tfcommit_rounds_total", "Completed TFCommit rounds by decision.", obs.L("decision", "commit")),
		roundsAbort:     o.Counter("fides_tfcommit_rounds_total", "Completed TFCommit rounds by decision.", obs.L("decision", "abort")),
		roundsFailed:    o.Counter("fides_tfcommit_round_failures_total", "TFCommit rounds that failed mid-protocol (refusals, faulty signers, delivery errors)."),
		decisionRetries: o.Counter("fides_tfcommit_decision_retries_total", "DecisionReq re-sends after delivery failures."),
		decisionUnacked: o.Counter("fides_tfcommit_decision_unacked_total", "Cohorts given up on after the decision retry budget (healed later by catch-up)."),
	}, nil
}

// SetFaults replaces the coordinator's fault configuration.
func (c *Coordinator) SetFaults(f Faults) { c.faults = f }

// Stats counts decision-phase delivery work over the coordinator's
// lifetime (see docs/operations.md "Catch-up and decision-retry triage").
type Stats struct {
	// DecisionRetries counts DecisionReq re-sends after delivery failures.
	DecisionRetries uint64
	// DecisionUnacked counts cohorts given up on after the retry budget;
	// each one heals itself later through the server catch-up path.
	DecisionUnacked uint64
}

// Stats returns a snapshot of the coordinator's delivery counters. It is
// a thin view over the registry-backed instruments that also feed
// /metrics (fides_tfcommit_decision_retries_total / _unacked_total).
func (c *Coordinator) Stats() Stats {
	return Stats{
		DecisionRetries: c.decisionRetries.Value(),
		DecisionUnacked: c.decisionUnacked.Value(),
	}
}

// Result is the outcome of one TFCommit round.
type Result struct {
	// Block is the finalized, collectively signed block.
	Block *ledger.Block
	// Committed reports whether the block's decision was commit.
	Committed bool
	// FailedTxns, on an aborted block, indexes the transactions that some
	// involved cohort itemized as failing validation. The caller can retry
	// the block with those transactions pruned (§4.6's non-conflicting
	// batching in practice); an empty list on an abort means a cohort
	// refused the batch wholesale.
	FailedTxns []int
}

// RefusalError reports cohorts that refused to participate in a phase —
// how a correct server exposes a malicious coordinator mid-protocol
// (paper §4.3.2). TFCommit, like 2PC, then blocks.
type RefusalError struct {
	Phase   string
	Refused map[identity.NodeID]error
}

// Error lists the refusing cohorts and their reasons.
func (e *RefusalError) Error() string {
	ids := make([]string, 0, len(e.Refused))
	for id, err := range e.Refused {
		ids = append(ids, fmt.Sprintf("%s (%v)", id, err))
	}
	sort.Strings(ids)
	return fmt.Sprintf("tfcommit: %s phase refused by: %s", e.Phase, strings.Join(ids, "; "))
}

// FaultySignersError reports the precise servers whose cryptographic
// contributions invalidate the collective signature, identified by
// partial-signature exclusion (paper Lemma 4).
type FaultySignersError struct {
	Faulty []identity.NodeID
}

// Error lists the servers identified as faulty signers.
func (e *FaultySignersError) Error() string {
	ids := make([]string, len(e.Faulty))
	for i, id := range e.Faulty {
		ids[i] = string(id)
	}
	return "tfcommit: invalid collective signature; faulty signers: " + strings.Join(ids, ", ")
}

// CommitBlock runs one full TFCommit round terminating the given batch of
// transactions (paper §4.6 allows multiple transactions per block; the
// evaluation uses ~100). envs carries the client-signed end_transaction
// requests, one per transaction, which the coordinator encapsulates in the
// GetVote announcement. The block extends the coordinator's local log; for
// rounds whose position is assigned externally (the pipelined path), see
// Pipeline.
func (c *Coordinator) CommitBlock(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope) (*Result, error) {
	log := c.local.Log()
	return c.commitAt(ctx, uint64(log.Len()), log.TipHash(), txns, envs, nil)
}

// commitAt runs one TFCommit round for a block at an explicitly assigned
// chain position. onFinalized, when non-nil, is invoked exactly once, right
// after the collective signature is finalized and before the Decision
// broadcast (phase 5): at that instant the block's hash — and therefore the
// successor's PrevHash — is fixed, so a pipeline can release the next
// height while this round's decision distribution and datastore applies are
// still in flight.
func (c *Coordinator) commitAt(ctx context.Context, height uint64, prevHash []byte, txns []*txn.Transaction, envs []identity.Envelope, onFinalized func(*ledger.Block, bool)) (*Result, error) {
	start := time.Now()
	ctx, span := c.o.Start(ctx, "tfcommit.round", "height", strconv.FormatUint(height, 10))
	res, err := c.runRound(ctx, height, prevHash, txns, envs, onFinalized)
	c.roundHist.ObserveSince(start)
	switch {
	case err != nil:
		c.roundsFailed.Inc()
		c.o.Log().Debug("tfcommit round failed", "height", height, "err", err)
		span.EndErr(err)
	case res.Committed:
		c.roundsCommit.Inc()
		span.SetAttr("decision", "commit")
		span.End()
	default:
		c.roundsAbort.Inc()
		span.SetAttr("decision", "abort")
		span.End()
	}
	return res, err
}

// runRound is the body of commitAt: the five protocol phases, bracketed by
// the per-phase instruments and spans so one transaction's frame-propagated
// trace reconstructs phases 1-5 at the coordinator.
func (c *Coordinator) runRound(ctx context.Context, height uint64, prevHash []byte, txns []*txn.Transaction, envs []identity.Envelope, onFinalized func(*ledger.Block, bool)) (*Result, error) {
	if len(txns) == 0 {
		return nil, errors.New("tfcommit: empty batch")
	}
	if len(envs) != len(txns) {
		return nil, fmt.Errorf("tfcommit: %d envelopes for %d transactions", len(envs), len(txns))
	}

	// Phase 1 ⟨GetVote, SchAnnouncement⟩: assemble the partially filled
	// block b_i = [ts, Rset-Wset, h_{i-1}] and announce it.
	block := &ledger.Block{
		Height:   height,
		Txns:     make([]ledger.TxnRecord, len(txns)),
		PrevHash: prevHash,
		Signers:  append([]identity.NodeID(nil), c.servers...),
	}
	for i, t := range txns {
		block.Txns[i] = ledger.RecordFromTransaction(t)
	}
	voteReq := &wire.GetVoteReq{Block: block, ClientReqs: envs}

	// Phase 2 ⟨Vote, SchCommitment⟩: collect votes, roots and commitments.
	voteStart := time.Now()
	voteCtx, voteSpan := c.o.Start(ctx, "tfcommit.vote")
	votes, refused := c.broadcastVotes(voteCtx, voteReq)
	voteSpan.End()
	c.phaseVote.ObserveSince(voteStart)
	if len(refused) > 0 {
		return nil, &RefusalError{Phase: "vote", Refused: refused}
	}

	// Phase 3 ⟨null, SchChallenge⟩: form the decision, aggregate roots and
	// commitments, compute ch = h(X_sch ‖ b_i).
	chStart := time.Now()
	chCtx, chSpan := c.o.Start(ctx, "tfcommit.challenge")
	decision := ledger.DecisionCommit
	roots := make(map[identity.NodeID][]byte)
	commitments := make([]cosi.Commitment, len(c.servers))
	failedSet := make(map[int]struct{})
	for i, id := range c.servers {
		v := votes[id]
		point, err := schnorr.UnmarshalPoint(v.Commitment)
		if err != nil {
			return nil, fmt.Errorf("tfcommit: commitment from %s: %w", id, err)
		}
		commitments[i] = cosi.Commitment{V: point}
		if v.Involved {
			if v.Vote != ledger.DecisionCommit {
				decision = ledger.DecisionAbort
				for _, idx := range v.TxnAborts {
					if idx >= 0 && idx < len(txns) {
						failedSet[idx] = struct{}{}
					}
				}
				continue
			}
			roots[id] = v.Root
		}
	}
	block.Decision = decision
	block.Roots = roots
	if c.faults.FakeRootFor != "" {
		block.Roots[c.faults.FakeRootFor] = randomBytes(32)
	}

	aggV, err := cosi.AggregateCommitments(commitments)
	if err != nil {
		return nil, fmt.Errorf("tfcommit: %w", err)
	}
	pubs, err := c.reg.SchnorrKeys(c.servers)
	if err != nil {
		return nil, fmt.Errorf("tfcommit: %w", err)
	}
	aggPub, err := cosi.AggregatePublicKeys(pubs)
	if err != nil {
		return nil, fmt.Errorf("tfcommit: %w", err)
	}
	signingBytes := block.SigningBytes()
	challenge := cosi.Challenge(aggV, aggPub, signingBytes)
	chReq := &wire.ChallengeReq{
		Challenge:     challenge.Bytes(),
		AggCommitment: aggV.Marshal(),
		Block:         block,
	}

	// Phase 4 ⟨null, SchResponse⟩: collect and aggregate responses.
	responses, refused := c.broadcastChallenge(chCtx, chReq)
	chSpan.End()
	c.phaseChallenge.ObserveSince(chStart)
	if len(refused) > 0 {
		return nil, &RefusalError{Phase: "challenge", Refused: refused}
	}
	cosignStart := time.Now()
	_, cosignSpan := c.o.Start(ctx, "tfcommit.cosign")
	ordered := make([]*big.Int, len(c.servers))
	for i, id := range c.servers {
		ordered[i] = new(big.Int).SetBytes(responses[id].Response)
	}
	aggR, err := cosi.AggregateResponses(ordered)
	if err != nil {
		cosignSpan.EndErr(err)
		return nil, fmt.Errorf("tfcommit: %w", err)
	}
	sig := cosi.Finalize(challenge, aggR)

	// The coordinator is incentivised to check the signature before
	// publishing: if it is invalid, identify the faulty signer(s) by
	// partial-signature exclusion (Lemma 4). Both checks route through the
	// verification plane — the batched backend verifies the partial
	// signatures as one random-linear-combination batch and falls back to
	// the serial per-share exclusion only on a mismatch.
	if err := c.verifier.VerifyCoSig(c.servers, signingBytes, sig); err != nil {
		cosignSpan.EndErr(errors.New("invalid collective signature"))
		faultyIdx, idErr := c.verifier.VerifyPartials(pubs, commitments, challenge, ordered)
		if idErr != nil {
			return nil, fmt.Errorf("tfcommit: invalid co-sign and identification failed: %w", idErr)
		}
		faulty := make([]identity.NodeID, len(faultyIdx))
		for i, idx := range faultyIdx {
			faulty[i] = c.servers[idx]
		}
		return nil, &FaultySignersError{Faulty: faulty}
	}
	cosignSpan.End()
	c.phaseCosign.ObserveSince(cosignStart)
	block.SetCoSig(sig)
	if onFinalized != nil {
		onFinalized(block, decision == ledger.DecisionCommit)
	}

	// Phase 5 ⟨Decision, null⟩: publish the finalized block; cohorts verify
	// the co-sign, then append to the log and update their datastores.
	// Unacknowledged cohorts are tolerated — the co-sign already fixed the
	// outcome, and a lagging cohort pulls the block from any peer via the
	// catch-up path (internal/server) — but an explicit refusal or a local
	// apply failure still fails the round.
	decStart := time.Now()
	decCtx, decSpan := c.o.Start(ctx, "tfcommit.decision")
	refused = c.broadcastDecision(decCtx, block)
	decSpan.End()
	c.phaseDecision.ObserveSince(decStart)
	if len(refused) > 0 {
		return nil, &RefusalError{Phase: "decision", Refused: refused}
	}
	res := &Result{Block: block, Committed: decision == ledger.DecisionCommit}
	if !res.Committed {
		res.FailedTxns = make([]int, 0, len(failedSet))
		for idx := range failedSet {
			res.FailedTxns = append(res.FailedTxns, idx)
		}
		sort.Ints(res.FailedTxns)
	}
	return res, nil
}

// broadcastVotes runs phase 1→2 against every server (self locally).
func (c *Coordinator) broadcastVotes(ctx context.Context, req *wire.GetVoteReq) (map[identity.NodeID]*wire.VoteResp, map[identity.NodeID]error) {
	out := make(map[identity.NodeID]*wire.VoteResp, len(c.servers))
	refused := make(map[identity.NodeID]error)

	remote := c.remoteServers()
	msg, err := transport.NewMessage(wire.MsgGetVote, req)
	if err != nil {
		refused[c.ident.ID] = err
		return out, refused
	}
	resps, errs := transport.CallAll(ctx, c.tr, remote, msg)
	for id, e := range errs {
		refused[id] = e
	}
	for id, resp := range resps {
		var v wire.VoteResp
		if err := resp.Decode(&v); err != nil {
			refused[id] = err
			continue
		}
		out[id] = &v
	}

	if self, err := c.local.GetVote(ctx, c.ident.ID, req); err != nil {
		refused[c.ident.ID] = err
	} else {
		out[c.ident.ID] = self
	}
	if len(refused) == 0 {
		refused = nil
	}
	return out, refused
}

// broadcastChallenge runs phase 3→4. With the EquivocateChallenge fault the
// coordinator delivers an abort variant of the block to the second half of
// the cohorts while keeping the challenge computed over the true block —
// Lemma 5 case 1.
func (c *Coordinator) broadcastChallenge(ctx context.Context, req *wire.ChallengeReq) (map[identity.NodeID]*wire.ChallengeResp, map[identity.NodeID]error) {
	out := make(map[identity.NodeID]*wire.ChallengeResp, len(c.servers))
	refused := make(map[identity.NodeID]error)

	remote := c.remoteServers()
	if !c.faults.EquivocateChallenge {
		msg, err := transport.NewMessage(wire.MsgChallenge, req)
		if err != nil {
			refused[c.ident.ID] = err
			return out, refused
		}
		resps, errs := transport.CallAll(ctx, c.tr, remote, msg)
		for id, e := range errs {
			refused[id] = e
		}
		for id, resp := range resps {
			var cr wire.ChallengeResp
			if err := resp.Decode(&cr); err != nil {
				refused[id] = err
				continue
			}
			out[id] = &cr
		}
	} else {
		altReq := &wire.ChallengeReq{
			Challenge:     req.Challenge,
			AggCommitment: req.AggCommitment,
			Block:         abortVariant(req.Block),
		}
		for i, id := range remote {
			r := req
			if i >= len(remote)/2 {
				r = altReq
			}
			msg, err := transport.NewMessage(wire.MsgChallenge, r)
			if err != nil {
				refused[id] = err
				continue
			}
			resp, err := c.tr.Call(ctx, id, msg)
			if err != nil {
				refused[id] = err
				continue
			}
			var cr wire.ChallengeResp
			if err := resp.Decode(&cr); err != nil {
				refused[id] = err
				continue
			}
			out[id] = &cr
		}
	}

	if self, err := c.local.Challenge(ctx, c.ident.ID, req); err != nil {
		refused[c.ident.ID] = err
	} else {
		out[c.ident.ID] = self
	}
	if len(refused) == 0 {
		refused = nil
	}
	return out, refused
}

// Decision delivery retry policy. Losing a DecisionReq must not wedge a
// cohort, so delivery failures are retried with exponential backoff; a
// cohort still unreachable after the budget is recorded as unacked and
// left to the catch-up path rather than failing the round.
const (
	decisionAttempts   = 12
	decisionBackoffMin = 2 * time.Millisecond
	decisionBackoffMax = 100 * time.Millisecond
)

// deliverDecision sends one DecisionReq to one cohort, retrying delivery
// failures. It returns nil once acknowledged, a nil error with ok=false
// when the cohort stayed unreachable (tolerated), and a non-nil error on a
// refusal — an application-level rejection that retrying cannot fix.
func (c *Coordinator) deliverDecision(ctx context.Context, id identity.NodeID, msg transport.Message) (ok bool, err error) {
	backoff := decisionBackoffMin
	var last error
	for attempt := 0; attempt < decisionAttempts; attempt++ {
		if attempt > 0 {
			c.decisionRetries.Add(1)
			select {
			case <-ctx.Done():
				return false, ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > decisionBackoffMax {
				backoff = decisionBackoffMax
			}
		}
		_, err := c.tr.Call(ctx, id, msg)
		switch {
		case err == nil:
			return true, nil
		case errors.Is(err, transport.ErrDelivery):
			last = err // lost in transit: retry
		case errors.Is(err, transport.ErrUnknownPeer), errors.Is(err, transport.ErrClosed):
			// The cohort is gone (crashed or detached). It cannot ack until
			// it returns, at which point catch-up hands it the block.
			c.decisionUnacked.Add(1)
			return false, nil
		default:
			return false, err
		}
	}
	_ = last
	c.decisionUnacked.Add(1)
	return false, nil
}

// broadcastDecision runs phase 5. Delivery failures are retried and, past
// the retry budget, tolerated (the cohort will pull the block from a peer);
// only refusals are reported. With the EquivocateDecision fault, half the
// cohorts receive an abort variant carrying the (mismatched) co-sign — the
// Figure 8 attack.
func (c *Coordinator) broadcastDecision(ctx context.Context, block *ledger.Block) map[identity.NodeID]error {
	refused := make(map[identity.NodeID]error)

	remote := c.remoteServers()
	switch {
	case c.faults.EquivocateDecision:
		// Fault path below.
	case c.crash != nil:
		// Sequential delivery gives the "mid-broadcast" crash point a
		// well-defined meaning: the hook fires after exactly one remote
		// cohort holds the finalized block, i.e. between co-sign and the
		// rest of the broadcast.
		msg, err := transport.NewMessage(wire.MsgDecision, &wire.DecisionReq{Block: block})
		if err != nil {
			refused[c.ident.ID] = err
			return refused
		}
		delivered := false
		for _, id := range remote {
			ok, err := c.deliverDecision(ctx, id, msg)
			if err != nil {
				refused[id] = err
				continue
			}
			if ok && !delivered {
				delivered = true
				if herr := c.crash("mid-broadcast", block.Height); herr != nil {
					// The coordinator "dies" here: no further deliveries, no
					// local apply. The one distributed copy is enough — any
					// cohort can finish the broadcast from it.
					refused[c.ident.ID] = herr
					return refused
				}
			}
		}
	default:
		msg, err := transport.NewMessage(wire.MsgDecision, &wire.DecisionReq{Block: block})
		if err != nil {
			refused[c.ident.ID] = err
			return refused
		}
		var (
			mu sync.Mutex
			wg sync.WaitGroup
		)
		for _, id := range remote {
			wg.Add(1)
			go func(id identity.NodeID) {
				defer wg.Done()
				if _, err := c.deliverDecision(ctx, id, msg); err != nil {
					mu.Lock()
					refused[id] = err
					mu.Unlock()
				}
			}(id)
		}
		wg.Wait()
	}
	if c.faults.EquivocateDecision {
		alt := mutatedVariant(block)
		for i, id := range remote {
			b := block
			if i >= len(remote)/2 {
				b = alt
			}
			msg, err := transport.NewMessage(wire.MsgDecision, &wire.DecisionReq{Block: b})
			if err != nil {
				refused[id] = err
				continue
			}
			if _, err := c.tr.Call(ctx, id, msg); err != nil {
				refused[id] = err
			}
		}
	}

	if _, err := c.local.Decide(ctx, c.ident.ID, &wire.DecisionReq{Block: block}); err != nil {
		refused[c.ident.ID] = err
	}
	if len(refused) == 0 {
		return nil
	}
	return refused
}

func (c *Coordinator) remoteServers() []identity.NodeID {
	remote := make([]identity.NodeID, 0, len(c.servers)-1)
	for _, id := range c.servers {
		if id != c.ident.ID {
			remote = append(remote, id)
		}
	}
	return remote
}

// abortVariant clones a block and flips it to an abort with one root
// removed, producing the "different block" a malicious coordinator shows to
// one group in the Lemma 5 case-1 equivocation attack (Figure 8: commit
// block b_c to group G_c, abort block b_a to group G_a).
func abortVariant(b *ledger.Block) *ledger.Block {
	alt := b.Clone()
	alt.Decision = ledger.DecisionAbort
	for id := range alt.Roots {
		delete(alt.Roots, id)
		break
	}
	alt.CoSigC, alt.CoSigS = nil, nil
	return alt
}

// mutatedVariant clones a finalized block, corrupts the first written value
// it finds, and keeps the original co-sign — the "incorrect block" an
// equivocating coordinator publishes to one group at Decision time. The
// retained signature cannot verify against the mutated contents, which is
// exactly what the auditor detects in a colluder's log (Lemma 5).
func mutatedVariant(b *ledger.Block) *ledger.Block {
	alt := b.Clone()
	for i := range alt.Txns {
		if len(alt.Txns[i].Writes) > 0 {
			alt.Txns[i].Writes[0].NewVal = append(alt.Txns[i].Writes[0].NewVal, []byte("-equivocated")...)
			break
		}
	}
	return alt
}

func randomBytes(n int) []byte {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return b
	}
	return b
}
