// Package obs is the repo's dependency-free observability layer: a
// Prometheus-text-format metrics registry (counters, gauges, bucketed
// histograms), commit-path tracing with spans that propagate through the
// authenticated frame header, and structured logging via log/slog.
//
// Everything is nil-safe by design. Components receive a *Obs in their
// Config and call its instrument constructors unconditionally; a nil *Obs
// (or a nil Registry/Tracer/Logger inside one) degrades to detached
// instruments, no-op spans and a discard logger, so tests and benchmarks
// that do not opt in pay one predictable branch per call and produce no
// output. The clock is injectable so the deterministic simulator can stamp
// spans with virtual time.
package obs

import (
	"context"
	"log/slog"
	"time"
)

// Obs bundles the three observability facilities plus the base label set
// that scopes them (e.g. server="s01" inside a multi-server cluster).
// Construct one with the exported fields and derive per-component views
// with With; all methods tolerate a nil receiver.
type Obs struct {
	// Metrics registers instruments; nil mints detached (unregistered but
	// usable) instruments.
	Metrics *Registry
	// Tracer records commit-path spans; nil disables tracing.
	Tracer *Tracer
	// Logger is the structured logger; nil discards.
	Logger *slog.Logger
	// Labels are attached to every instrument created through this Obs and
	// mirrored as attributes on Logger by With.
	Labels []Label
}

// With derives an Obs whose instruments carry the extra labels and whose
// logger carries them as attributes. Nil-safe: nil.With(...) is nil.
func (o *Obs) With(labels ...Label) *Obs {
	if o == nil {
		return nil
	}
	d := &Obs{
		Metrics: o.Metrics,
		Tracer:  o.Tracer,
		Logger:  o.Logger,
		Labels:  append(append([]Label(nil), o.Labels...), labels...),
	}
	if d.Logger != nil {
		args := make([]any, 0, 2*len(labels))
		for _, l := range labels {
			args = append(args, l.Key, l.Value)
		}
		d.Logger = d.Logger.With(args...)
	}
	return d
}

func (o *Obs) registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

func (o *Obs) merged(labels []Label) []Label {
	if o == nil || len(o.Labels) == 0 {
		return labels
	}
	return append(append([]Label(nil), o.Labels...), labels...)
}

// Counter registers (or finds) a counter named name with the Obs' base
// labels plus labels.
func (o *Obs) Counter(name, help string, labels ...Label) *Counter {
	return o.registry().Counter(name, help, o.merged(labels)...)
}

// Gauge registers (or finds) a gauge.
func (o *Obs) Gauge(name, help string, labels ...Label) *Gauge {
	return o.registry().Gauge(name, help, o.merged(labels)...)
}

// Histogram registers (or finds) a histogram with the given bucket upper
// bounds (nil = DefBuckets).
func (o *Obs) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return o.registry().Histogram(name, help, buckets, o.merged(labels)...)
}

// Log returns the structured logger, or a discard logger when unset.
func (o *Obs) Log() *slog.Logger {
	if o == nil || o.Logger == nil {
		return nopLogger
	}
	return o.Logger
}

// Start opens a child span when ctx carries a span context and a tracer is
// configured; otherwise it returns ctx unchanged and a nil (no-op) span.
// kv are alternating attribute key/value strings.
func (o *Obs) Start(ctx context.Context, name string, kv ...string) (context.Context, *Span) {
	if o == nil {
		return ctx, nil
	}
	return o.Tracer.Start(ctx, name, kv...)
}

// StartRoot mints a fresh trace rooted at a new span (the client-submit
// entry point). With no tracer it returns ctx unchanged and a nil span.
func (o *Obs) StartRoot(ctx context.Context, name string, kv ...string) (context.Context, *Span) {
	if o == nil {
		return ctx, nil
	}
	return o.Tracer.StartRoot(ctx, name, kv...)
}

var nopLogger = slog.New(discardHandler{})

// discardHandler is a slog.Handler that drops everything. (slog's own
// DiscardHandler is newer than this module's minimum Go version.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NewLogger builds a leveled text logger for CLI processes. JSON output is
// selected by json; level is one of debug|info|warn|error (default info).
func NewLogger(w interface{ Write([]byte) (int, error) }, level string, json bool) *slog.Logger {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// Since mirrors time.Since for instrument call sites; metrics timings use
// the real clock even under simulation (they do not influence scheduling).
func Since(t time.Time) time.Duration { return time.Since(t) }
