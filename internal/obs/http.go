package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewServeMux builds the operational HTTP surface served at
// -metrics-addr: /metrics (Prometheus text), /healthz, and
// /debug/pprof/*. healthy may be nil (always healthy).
func NewServeMux(r *Registry, healthy func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	// net/http/pprof only self-registers on the default mux; wire its
	// handlers onto this private one explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
