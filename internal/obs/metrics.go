package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension of an instrument.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefBuckets are the default latency histogram bounds in seconds: 10µs to
// 2.5s, covering sub-millisecond in-memory commits through WAN rounds with
// fsync-always WALs.
var DefBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// SizeBuckets are the default size histogram bounds in bytes (64B–1MiB).
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry. All
// methods tolerate a nil receiver by minting detached instruments that
// work but are not exported anywhere.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name, help, kind string
	buckets          []float64

	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	labels []Label
	inst   any
}

// validName enforces the catalog naming rule: snake_case
// [a-z][a-z0-9_]*, no trailing underscore.
func validName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return name[len(name)-1] != '_'
}

func (r *Registry) family(name, help, kind string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want snake_case)", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func labelsKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(0x1f)
		b.WriteString(l.Value)
		b.WriteByte(0x1e)
	}
	return b.String()
}

// canonLabels sorts a copy of labels by key for stable series identity.
func canonLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (f *family) instrument(labels []Label, mk func() any) any {
	labels = canonLabels(labels)
	key := labelsKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels, inst: mk()}
		f.series[key] = s
	}
	return s.inst
}

// Counter returns the counter for name+labels, registering it on first
// use. A nil registry returns a detached counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return new(Counter)
	}
	f := r.family(name, help, kindCounter, nil)
	return f.instrument(labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	f := r.family(name, help, kindGauge, nil)
	return f.instrument(labels, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the histogram for name+labels with the given bucket
// upper bounds (nil = DefBuckets). Bounds are fixed by the first
// registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	if r == nil {
		return newHistogram(buckets)
	}
	f := r.family(name, help, kindHistogram, buckets)
	return f.instrument(labels, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency/size histogram: per-bucket atomic
// counts plus a CAS-maintained float64 sum, so Observe is lock-free.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf bucket is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot reads a consistent-enough view for exposition (buckets may lag
// count by in-flight observations; Prometheus tolerates that).
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	cum = make([]uint64, len(h.bounds)+1)
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cum[i] = acc
	}
	return cum, h.Sum(), h.count.Load()
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func appendLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (sorted by family name, then series labels), the
// payload served at /metrics.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()

		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, s := range sers {
			switch inst := s.inst.(type) {
			case *Counter:
				b.WriteString(f.name)
				appendLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", inst.Value())
			case *Gauge:
				b.WriteString(f.name)
				appendLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", inst.Value())
			case *Histogram:
				cum, sum, count := inst.snapshot()
				for i, bound := range inst.bounds {
					b.WriteString(f.name)
					b.WriteString("_bucket")
					appendLabels(&b, s.labels, L("le", formatFloat(bound)))
					fmt.Fprintf(&b, " %d\n", cum[i])
				}
				b.WriteString(f.name)
				b.WriteString("_bucket")
				appendLabels(&b, s.labels, L("le", "+Inf"))
				fmt.Fprintf(&b, " %d\n", cum[len(cum)-1])
				b.WriteString(f.name)
				b.WriteString("_sum")
				appendLabels(&b, s.labels)
				fmt.Fprintf(&b, " %s\n", formatFloat(sum))
				b.WriteString(f.name)
				b.WriteString("_count")
				appendLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Names returns the registered family names, sorted (for metriclint and
// smoke assertions).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
