package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// fixedClock steps a deterministic tracer clock by 1ms per reading.
func fixedClock() func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestTracerDeterministicWithSeed(t *testing.T) {
	run := func() []SpanRecord {
		col := &Collector{}
		tr := NewTracer(TracerConfig{Sink: col, Seed: 42, Now: fixedClock()})
		ctx, root := tr.StartRoot(context.Background(), "client.commit", "txn", "t1")
		_, child := tr.Start(ctx, "tfcommit.round")
		child.End()
		root.End()
		return col.Spans()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded tracer not reproducible:\n%v\n%v", a, b)
	}
	if len(a) != 2 || a[0].Name != "tfcommit.round" || a[1].Name != "client.commit" {
		t.Fatalf("spans = %v", a)
	}
	if a[0].Trace != a[1].Trace || a[0].Parent != a[1].Span {
		t.Fatalf("child not parented under root: %v", a)
	}
}

func TestStartWithoutParentIsUntraced(t *testing.T) {
	col := &Collector{}
	tr := NewTracer(TracerConfig{Sink: col, Seed: 1})
	ctx, span := tr.Start(context.Background(), "orphan")
	if span != nil {
		t.Fatal("Start without a propagated context minted a span")
	}
	if _, ok := SpanContextFrom(ctx); ok {
		t.Fatal("untraced ctx carries a span context")
	}
	// The nil span is fully usable.
	span.SetAttr("k", "v")
	span.End()
	span.EndErr(nil)
	if got := span.Context(); got.Valid() {
		t.Fatalf("nil span has a context: %v", got)
	}
	if n := len(col.Spans()); n != 0 {
		t.Fatalf("exported %d spans", n)
	}
}

func TestSpanEndExportsOnce(t *testing.T) {
	col := &Collector{}
	tr := NewTracer(TracerConfig{Sink: col, Seed: 1, Now: fixedClock()})
	_, root := tr.StartRoot(context.Background(), "r")
	root.End()
	root.End()
	root.EndErr(nil)
	if n := len(col.Spans()); n != 1 {
		t.Fatalf("span exported %d times", n)
	}
}

func TestBuildSpanTree(t *testing.T) {
	spans := []SpanRecord{
		{Trace: "t", Span: "a", Name: "root"},
		{Trace: "t", Span: "b", Parent: "a", Name: "child"},
		{Trace: "t", Span: "c", Parent: "b", Name: "grandchild"},
		{Trace: "t", Span: "d", Parent: "missing", Name: "orphan"},
	}
	roots, orphans := BuildSpanTree(spans)
	if len(roots) != 1 || roots[0].Rec.Span != "a" {
		t.Fatalf("roots = %v", roots)
	}
	if len(orphans) != 1 || orphans[0].Span != "d" {
		t.Fatalf("orphans = %v", orphans)
	}
	var names []string
	roots[0].Walk(func(n *SpanNode) { names = append(names, n.Rec.Name) })
	if !reflect.DeepEqual(names, []string{"root", "child", "grandchild"}) {
		t.Fatalf("walk order = %v", names)
	}
}

func TestJSONLExporterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewJSONLExporter(&buf)
	in := SpanRecord{Trace: "t", Span: "s", Name: "n", StartUS: 5, DurUS: 7, Attrs: map[string]string{"k": "v"}}
	e.ExportSpan(in)
	var out SpanRecord
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestSpanContextPropagation(t *testing.T) {
	sc := SpanContext{}
	if sc.Valid() {
		t.Fatal("zero context valid")
	}
	if got := ContextWithSpanContext(context.Background(), sc); got != context.Background() {
		t.Fatal("invalid context attached")
	}
	sc.TraceID[0], sc.SpanID[0] = 1, 2
	ctx := ContextWithSpanContext(context.Background(), sc)
	got, ok := SpanContextFrom(ctx)
	if !ok || got != sc {
		t.Fatalf("propagation lost the context: %v %v", got, ok)
	}
}
