package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestServeMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("fides_smoke_total", "Smoke.").Add(3)
	healthy := true
	srv := httptest.NewServer(NewServeMux(r, func() bool { return healthy }))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "fides_smoke_total 3") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	healthy = false
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while unhealthy: %d", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}
