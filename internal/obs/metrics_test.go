package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exposition format byte for byte: the
// payload is scraped by real Prometheus servers and parsed by
// tools/metriclint and the CI metrics smoke, so format drift is a break.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("fides_tfcommit_rounds_total", "Rounds by decision.", L("decision", "commit")).Add(7)
	r.Counter("fides_tfcommit_rounds_total", "Rounds by decision.", L("decision", "abort")).Add(2)
	r.Gauge("fides_server_log_height", "Tamper-proof log height.", L("server", "s00")).Set(9)
	h := r.Histogram("fides_wal_fsync_seconds", "WAL fsync latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(0.5)
	// Label values get escaped; keys are emitted sorted.
	r.Counter("fides_test_escapes_total", "Escaping.", L("b", `quote " slash \`), L("a", "plain")).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition format drifted from %s (re-bless with -update):\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("fides_x_total", "x", L("k", "v"), L("j", "w"))
	// Same family + same label set (any order) is the same instrument, so a
	// restarted component re-attaches rather than shadowing the old series.
	b := r.Counter("fides_x_total", "x", L("j", "w"), L("k", "v"))
	if a != b {
		t.Fatal("same name+labels minted two counters")
	}
	c := r.Counter("fides_x_total", "x", L("k", "other"))
	if a == c {
		t.Fatal("different labels shared an instrument")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared counter out of sync: %d", b.Value())
	}
}

func TestRegistryRejectsBadNamesAndKindClash(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("uppercase", func() { r.Counter("Fides_total", "x") })
	mustPanic("trailing underscore", func() { r.Counter("fides_total_", "x") })
	mustPanic("empty", func() { r.Counter("", "x") })
	r.Counter("fides_total", "x")
	mustPanic("kind clash", func() { r.Gauge("fides_total", "x") })
}

func TestHistogramBucketsAndConcurrency(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5*8000 {
		t.Fatalf("sum = %v", h.Sum())
	}
	cum, _, _ := h.snapshot()
	if cum[0] != 0 || cum[1] != 8000 || cum[2] != 8000 {
		t.Fatalf("cumulative buckets = %v", cum)
	}
}

func TestNilRegistryAndInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	r.Counter("fides_a_total", "x").Inc()
	r.Gauge("fides_b", "x").Set(1)
	r.Histogram("fides_c_seconds", "x", nil).Observe(1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Names() != nil {
		t.Fatal("nil registry has names")
	}
	var c *Counter
	c.Inc()
	var g *Gauge
	g.Add(1)
	var h *Histogram
	h.Observe(1)
}
