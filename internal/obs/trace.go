package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one transaction's end-to-end journey (client submit →
// cohort fsync). The zero value means "untraced".
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated part of a span: what rides in the
// authenticated frame header so a cohort's spans parent under the
// coordinator phase that caused them.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context carries a live trace.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

type spanCtxKey struct{}

// ContextWithSpanContext attaches sc to ctx; transports call this on the
// receive side so handler spans inherit the sender's span as parent.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFrom extracts the propagated span context, if any.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// SpanRecord is the exported form of a finished span. Timestamps are
// microseconds on the tracer's clock — wall time in processes, virtual
// time under the simulator — so JSONL output is stable and comparable.
type SpanRecord struct {
	Trace   string            `json:"trace"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// SpanSink receives finished spans. Implementations must be safe for
// concurrent use.
type SpanSink interface {
	ExportSpan(SpanRecord)
}

// TracerConfig assembles a Tracer.
type TracerConfig struct {
	// Sink receives finished spans; required.
	Sink SpanSink
	// Now supplies span timestamps; nil = time.Now. The simulator injects
	// its virtual clock here so traces are deterministic.
	Now func() time.Time
	// Seed fixes ID generation for reproducible runs; 0 draws a random
	// base from crypto/rand.
	Seed int64
}

// Tracer mints trace/span IDs and exports finished spans to its sink.
// A nil *Tracer is a valid no-op.
type Tracer struct {
	sink SpanSink
	now  func() time.Time
	base uint64
	ctr  atomic.Uint64
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	t := &Tracer{sink: cfg.Sink, now: cfg.Now}
	if t.now == nil {
		t.now = time.Now
	}
	if cfg.Seed != 0 {
		t.base = splitmix64(uint64(cfg.Seed))
	} else {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			t.base = binary.LittleEndian.Uint64(b[:])
		} else {
			t.base = uint64(time.Now().UnixNano())
		}
	}
	return t
}

// splitmix64 spreads sequential counters into well-mixed IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) nextID() uint64 { return splitmix64(t.base + t.ctr.Add(1)) }

// Span is one timed operation in a trace. A nil *Span is a valid no-op,
// which is how untraced requests flow through instrumented code.
type Span struct {
	tracer *Tracer
	sc     SpanContext
	rec    SpanRecord
	start  time.Time

	mu    sync.Mutex
	ended bool
}

// StartRoot mints a fresh trace with a root span. Used exactly once per
// traced transaction, at client submit.
func (t *Tracer) StartRoot(ctx context.Context, name string, kv ...string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var sc SpanContext
	binary.BigEndian.PutUint64(sc.TraceID[0:8], t.nextID())
	binary.BigEndian.PutUint64(sc.TraceID[8:16], t.nextID())
	binary.BigEndian.PutUint64(sc.SpanID[:], t.nextID())
	return t.start(ctx, sc, "", name, kv)
}

// Start opens a child of the span context carried by ctx. Without one the
// request is untraced: Start returns ctx unchanged and a nil span.
func (t *Tracer) Start(ctx context.Context, name string, kv ...string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent, ok := SpanContextFrom(ctx)
	if !ok {
		return ctx, nil
	}
	child := SpanContext{TraceID: parent.TraceID}
	binary.BigEndian.PutUint64(child.SpanID[:], t.nextID())
	return t.start(ctx, child, parent.SpanID.String(), name, kv)
}

func (t *Tracer) start(ctx context.Context, sc SpanContext, parent, name string, kv []string) (context.Context, *Span) {
	s := &Span{
		tracer: t,
		sc:     sc,
		start:  t.now(),
		rec: SpanRecord{
			Trace:  sc.TraceID.String(),
			Span:   sc.SpanID.String(),
			Parent: parent,
			Name:   name,
		},
	}
	s.setAttrs(kv)
	return ContextWithSpanContext(ctx, sc), s
}

func (s *Span) setAttrs(kv []string) {
	for i := 0; i+1 < len(kv); i += 2 {
		if s.rec.Attrs == nil {
			s.rec.Attrs = make(map[string]string, len(kv)/2)
		}
		s.rec.Attrs[kv[i]] = kv[i+1]
	}
}

// Context returns the span's propagated context (zero for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 2)
	}
	s.rec.Attrs[key] = value
}

// End finishes the span and exports it. Safe to call more than once (only
// the first wins) and on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	end := s.tracer.now()
	s.rec.StartUS = s.start.UnixMicro()
	s.rec.DurUS = end.Sub(s.start).Microseconds()
	rec := s.rec
	s.mu.Unlock()
	if s.tracer.sink != nil {
		s.tracer.sink.ExportSpan(rec)
	}
}

// EndErr finishes the span, recording err (when non-nil) as an attribute.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetAttr("error", err.Error())
	}
	s.End()
}

// JSONLExporter writes one JSON span record per line.
type JSONLExporter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLExporter wraps w.
func NewJSONLExporter(w io.Writer) *JSONLExporter {
	return &JSONLExporter{enc: json.NewEncoder(w)}
}

// ExportSpan implements SpanSink.
func (e *JSONLExporter) ExportSpan(r SpanRecord) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_ = e.enc.Encode(r)
}

// Collector buffers spans in memory for tests and sim assertions.
type Collector struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// ExportSpan implements SpanSink.
func (c *Collector) ExportSpan(r SpanRecord) {
	c.mu.Lock()
	c.spans = append(c.spans, r)
	c.mu.Unlock()
}

// Spans returns a copy of the collected spans in export order.
func (c *Collector) Spans() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanRecord(nil), c.spans...)
}

// Reset drops all collected spans.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.spans = nil
	c.mu.Unlock()
}

// SpanNode is one node of a reconstructed span tree.
type SpanNode struct {
	Rec      SpanRecord
	Children []*SpanNode
}

// BuildSpanTree links spans into parent/child trees by span ID. Spans
// whose parent never arrived are returned as orphans — a complete trace
// has none.
func BuildSpanTree(spans []SpanRecord) (roots []*SpanNode, orphans []SpanRecord) {
	nodes := make(map[string]*SpanNode, len(spans))
	for _, r := range spans {
		nodes[r.Span] = &SpanNode{Rec: r}
	}
	for _, r := range spans {
		n := nodes[r.Span]
		if r.Parent == "" {
			roots = append(roots, n)
			continue
		}
		p, ok := nodes[r.Parent]
		if !ok {
			orphans = append(orphans, r)
			continue
		}
		p.Children = append(p.Children, n)
	}
	return roots, orphans
}

// Walk visits the node and every descendant, depth-first.
func (n *SpanNode) Walk(visit func(*SpanNode)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}
