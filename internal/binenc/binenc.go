// Package binenc provides the primitive append-style encoders and the
// bounds-checked reader shared by every binary wire encoding in Fides: the
// canonical ledger block encoding, the transaction payload clients sign,
// the identity.Envelope framing, and the RPC message codec of
// internal/wire.
//
// The conventions match the canonical block encoding that predates this
// package (internal/ledger/encode.go): uvarint length prefixes for
// variable-length data, big-endian fixed-width integers, and no padding.
// Encoders append to a caller-supplied buffer so hot paths can reuse
// sync.Pool-backed buffers and build composite messages without
// intermediate copies.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Append-style primitive encoders.

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendUint64 appends v as 8 big-endian bytes.
func AppendUint64(buf []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(buf, v)
}

// AppendUint32 appends v as 4 big-endian bytes.
func AppendUint32(buf []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(buf, v)
}

// AppendByte appends a single byte.
func AppendByte(buf []byte, b byte) []byte {
	return append(buf, b)
}

// AppendBool appends 1 for true, 0 for false.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendBytes appends a uvarint length prefix followed by b.
func AppendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// AppendString appends a uvarint length prefix followed by s.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Errors returned by Reader.
var (
	ErrShortBuffer = errors.New("binenc: short buffer")
	ErrBadVarint   = errors.New("binenc: invalid uvarint")
	ErrTrailing    = errors.New("binenc: trailing bytes after message")
)

// Reader decodes a byte stream produced by the Append functions. It is
// sticky-error: after the first failure every subsequent read returns a
// zero value and Err reports the failure, so decoders can run straight
// through their field lists and check once at the end.
//
// Length prefixes are validated against the remaining input before any
// allocation, so a hostile length cannot force a huge allocation; decode
// of arbitrary bytes fails cleanly rather than panicking.
type Reader struct {
	buf []byte
	err error
}

// NewReader returns a Reader over data. The reader does not copy data, but
// every Bytes/String read copies out of it, so the decoded values never
// alias the input buffer (inputs are frequently pool-recycled).
func NewReader(data []byte) Reader {
	return Reader{buf: data}
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) }

// Done returns the first decoding error, or ErrTrailing if input remains.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf))
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail(ErrBadVarint)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Uint64 reads 8 big-endian bytes.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

// Uint32 reads 4 big-endian bytes.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 4 {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.fail(ErrShortBuffer)
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

// Bool reads a single byte and reports whether it is non-zero.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// take validates a length prefix against the remaining input and consumes
// n bytes. It returns nil on failure or for n == 0.
func (r *Reader) take() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrShortBuffer, n, len(r.buf)))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

// Bytes reads a length-prefixed byte string into a fresh slice. A zero
// length decodes as nil.
func (r *Reader) Bytes() []byte {
	raw := r.take()
	if raw == nil {
		return nil
	}
	return append([]byte(nil), raw...)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	return string(r.take())
}

// Count reads a uvarint element count and validates it against the
// remaining input assuming each element occupies at least minElemSize
// bytes, so a hostile count cannot force a huge slice allocation before
// the decode fails naturally.
func (r *Reader) Count(minElemSize int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(math.MaxInt32) || (minElemSize > 0 && n > uint64(len(r.buf)/minElemSize)) {
		r.fail(fmt.Errorf("%w: implausible element count %d for %d remaining bytes", ErrShortBuffer, n, len(r.buf)))
		return 0
	}
	return int(n)
}
