package binenc

import (
	"bytes"
	"errors"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, 1<<40)
	buf = AppendUint64(buf, 0xdeadbeefcafef00d)
	buf = AppendUint32(buf, 0x01020304)
	buf = AppendByte(buf, 7)
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)
	buf = AppendBytes(buf, []byte("payload"))
	buf = AppendBytes(buf, nil)
	buf = AppendString(buf, "node-7")
	buf = AppendString(buf, "")

	r := NewReader(buf)
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := r.Uvarint(); v != 1<<40 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := r.Uint64(); v != 0xdeadbeefcafef00d {
		t.Fatalf("uint64 = %x", v)
	}
	if v := r.Uint32(); v != 0x01020304 {
		t.Fatalf("uint32 = %x", v)
	}
	if v := r.Byte(); v != 7 {
		t.Fatalf("byte = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool round trip")
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte("payload")) {
		t.Fatalf("bytes = %q", v)
	}
	if v := r.Bytes(); v != nil {
		t.Fatalf("empty bytes decoded as %v, want nil", v)
	}
	if v := r.String(); v != "node-7" {
		t.Fatalf("string = %q", v)
	}
	if v := r.String(); v != "" {
		t.Fatalf("empty string = %q", v)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderDecodedValuesDoNotAliasInput(t *testing.T) {
	buf := AppendBytes(nil, []byte("abc"))
	r := NewReader(buf)
	got := r.Bytes()
	buf[1] = 'z' // clobber the input in place
	if !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("decoded bytes alias input: %q", got)
	}
}

func TestReaderShortBuffer(t *testing.T) {
	for _, tc := range []struct {
		name string
		read func(r *Reader)
	}{
		{"uint64", func(r *Reader) { r.Uint64() }},
		{"uint32", func(r *Reader) { r.Uint32() }},
		{"byte", func(r *Reader) { r.Byte() }},
		{"bytes", func(r *Reader) { r.Bytes() }},
	} {
		r := NewReader(nil)
		tc.read(&r)
		if r.Err() == nil {
			t.Errorf("%s on empty input: no error", tc.name)
		}
	}
}

func TestReaderHostileLengthPrefix(t *testing.T) {
	// A length prefix far beyond the remaining input must fail before any
	// allocation, not attempt a huge make.
	buf := AppendUvarint(nil, 1<<40)
	r := NewReader(buf)
	if v := r.Bytes(); v != nil {
		t.Fatalf("hostile length decoded as %d bytes", len(v))
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", r.Err())
	}
}

func TestReaderHostileCount(t *testing.T) {
	buf := AppendUvarint(nil, 1<<40)
	r := NewReader(buf)
	if n := r.Count(8); n != 0 {
		t.Fatalf("hostile count accepted: %d", n)
	}
	if r.Err() == nil {
		t.Fatal("hostile count produced no error")
	}
}

func TestReaderTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.Byte()
	if err := r.Done(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader(nil)
	r.Uint64() // fails
	first := r.Err()
	r.Uvarint()
	r.Bytes()
	if r.Err() != first {
		t.Fatalf("error not sticky: %v then %v", first, r.Err())
	}
}
