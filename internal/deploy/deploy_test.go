package deploy

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/identity"
)

func TestGenerateSaveLoadRoundTrip(t *testing.T) {
	d, err := Generate(3, 9100, 128, 8, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Servers) != 3 || len(d.Clients) != 2 {
		t.Fatalf("servers=%d clients=%d", len(d.Servers), len(d.Clients))
	}
	path := filepath.Join(t.TempDir(), "deployment.json")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ItemsPerShard != 128 || loaded.BatchSize != 8 || !loaded.MultiVersion {
		t.Fatalf("loaded = %+v", loaded)
	}
	if loaded.CoordinatorID() != core.ServerName(0) {
		t.Fatalf("coordinator = %s", loaded.CoordinatorID())
	}
	if got := loaded.ServerIDs(); len(got) != 3 || got[1] != core.ServerName(1) {
		t.Fatalf("server ids = %v", got)
	}
}

func TestRegistryAndDirectoryFromDeployment(t *testing.T) {
	d, err := Generate(2, 9200, 16, 4, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := d.Registry()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 3 { // 2 servers + 1 client
		t.Fatalf("registry len = %d", reg.Len())
	}
	if _, err := reg.SchnorrKey(core.ServerName(1)); err != nil {
		t.Fatalf("server schnorr key: %v", err)
	}
	dir := d.Directory()
	if dir.NumItems() != 32 {
		t.Fatalf("items = %d", dir.NumItems())
	}
	owner, ok := dir.Owner(core.ItemName(1, 5))
	if !ok || owner != core.ServerName(1) {
		t.Fatalf("owner = %v %v", owner, ok)
	}
}

func TestKeyFileRoundTrip(t *testing.T) {
	ident, err := identity.New("s00", identity.RoleServer, nil)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := identity.Import(ident.Export())
	if err != nil {
		t.Fatal(err)
	}
	// The restored identity must produce verifiable envelopes and share the
	// schnorr public key.
	reg := identity.NewRegistry()
	reg.Register(ident.Public())
	env := identity.Seal(restored, []byte("payload"))
	if _, err := reg.Open(env); err != nil {
		t.Fatalf("restored identity signature rejected: %v", err)
	}
	if !restored.Schnorr.Public.Equal(ident.Schnorr.Public.Point) {
		t.Fatal("schnorr public key mismatch after round trip")
	}
}

func TestImportValidation(t *testing.T) {
	if _, err := identity.Import(identity.KeyFile{}); err == nil {
		t.Error("empty key file accepted")
	}
	ident, _ := identity.New("c0", identity.RoleClient, nil)
	kf := ident.Export()
	kf.Ed25519Seed = kf.Ed25519Seed[:5]
	if _, err := identity.Import(kf); err == nil {
		t.Error("truncated seed accepted")
	}
	srv, _ := identity.New("s0", identity.RoleServer, nil)
	kf2 := srv.Export()
	kf2.SchnorrD = nil
	if _, err := identity.Import(kf2); err == nil {
		t.Error("server key file without schnorr scalar accepted")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
