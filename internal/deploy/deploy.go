// Package deploy defines the multi-process deployment descriptor shared by
// cmd/fides-keygen, cmd/fides-server and cmd/fides-client: the server set
// with listen addresses and key material, the client identities, and the
// shard layout.
//
// The descriptor carries every node's private keys in one file as a
// demonstration convenience; see identity.KeyFile for the caveat.
package deploy

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/txn"
)

// ServerSpec is one server's deployment entry.
type ServerSpec struct {
	Keys identity.KeyFile `json:"keys"`
	Addr string           `json:"addr"`
}

// Deployment is the full descriptor.
type Deployment struct {
	ItemsPerShard int                `json:"items_per_shard"`
	MultiVersion  bool               `json:"multi_version"`
	BatchSize     int                `json:"batch_size"`
	Servers       []ServerSpec       `json:"servers"`
	Clients       []identity.KeyFile `json:"clients"`

	// DataDir enables durability: server i persists its write-ahead log
	// and snapshots under DataDir/<server-id>/ and recovers from them at
	// startup. Empty keeps servers in memory (cmd/fides-server's
	// -data-dir flag overrides this field).
	DataDir string `json:"data_dir,omitempty"`
	// Fsync is the WAL flush discipline: always, group (default), or off.
	Fsync string `json:"fsync,omitempty"`
	// SnapshotEvery writes a shard snapshot every N committed blocks
	// (0 disables snapshots).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// Pipeline is the number of TFCommit blocks the coordinator keeps in
	// flight at once (0/1 = strictly serial rounds). Cohort servers read
	// it too: it enables their bounded lookahead wait for block
	// announcements that overtake a predecessor's decision.
	Pipeline int `json:"pipeline,omitempty"`
	// Crypto selects the verification backend every process builds its
	// commit-path Verifier from: "serial" (default) or "batched" (worker
	// pool + batch co-sign share verification + verdict caches; see
	// internal/crypto). cmd/fides-server's -crypto flag overrides it.
	Crypto string `json:"crypto,omitempty"`
	// CryptoWorkers sizes the batched backend's worker pool (0 =
	// GOMAXPROCS). Ignored when Crypto is "serial".
	CryptoWorkers int `json:"crypto_workers,omitempty"`
	// Coordinators is the number of servers taking turns driving TFCommit
	// rounds. Rotation requires the coordinators to share a process (the
	// in-process core.Cluster); a multi-process fides-server deployment
	// supports only 1 and refuses larger values at startup.
	Coordinators int `json:"coordinators,omitempty"`
}

// Generate creates a fresh deployment of n servers listening on
// consecutive loopback ports starting at basePort, plus nClients client
// identities (client 0 is the workload client, client 1 the auditor).
func Generate(n, basePort, itemsPerShard, batchSize, nClients int, multiVersion bool) (*Deployment, error) {
	d := &Deployment{
		ItemsPerShard: itemsPerShard,
		MultiVersion:  multiVersion,
		BatchSize:     batchSize,
	}
	for i := 0; i < n; i++ {
		ident, err := identity.New(core.ServerName(i), identity.RoleServer, nil)
		if err != nil {
			return nil, fmt.Errorf("deploy: %w", err)
		}
		d.Servers = append(d.Servers, ServerSpec{
			Keys: ident.Export(),
			Addr: fmt.Sprintf("127.0.0.1:%d", basePort+i),
		})
	}
	for i := 0; i < nClients; i++ {
		ident, err := identity.New(identity.NodeID(fmt.Sprintf("c%04d", i+1)), identity.RoleClient, nil)
		if err != nil {
			return nil, fmt.Errorf("deploy: %w", err)
		}
		d.Clients = append(d.Clients, ident.Export())
	}
	return d, nil
}

// Load reads a deployment descriptor from disk.
func Load(path string) (*Deployment, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	var d Deployment
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("deploy: parse %s: %w", path, err)
	}
	if len(d.Servers) == 0 {
		return nil, fmt.Errorf("deploy: %s lists no servers", path)
	}
	if d.ItemsPerShard <= 0 {
		d.ItemsPerShard = 1000
	}
	if d.BatchSize <= 0 {
		d.BatchSize = 16
	}
	if d.Crypto == "" {
		d.Crypto = core.CryptoSerial
	}
	if d.Crypto != core.CryptoSerial && d.Crypto != core.CryptoBatched {
		return nil, fmt.Errorf("deploy: %s names unknown crypto backend %q", path, d.Crypto)
	}
	return &d, nil
}

// Save writes the descriptor to disk (0600: it contains private keys).
func (d *Deployment) Save(path string) error {
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("deploy: %w", err)
	}
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		return fmt.Errorf("deploy: %w", err)
	}
	return nil
}

// Registry builds the shared public-key registry from the descriptor.
func (d *Deployment) Registry() (*identity.Registry, error) {
	reg := identity.NewRegistry()
	for _, s := range d.Servers {
		ident, err := identity.Import(s.Keys)
		if err != nil {
			return nil, err
		}
		reg.Register(ident.Public())
	}
	for _, c := range d.Clients {
		ident, err := identity.Import(c)
		if err != nil {
			return nil, err
		}
		reg.Register(ident.Public())
	}
	return reg, nil
}

// Directory builds the item directory implied by the shard layout.
func (d *Deployment) Directory() *core.Directory {
	shards := make(map[identity.NodeID][]txn.ItemID, len(d.Servers))
	for i, s := range d.Servers {
		items := make([]txn.ItemID, d.ItemsPerShard)
		for j := 0; j < d.ItemsPerShard; j++ {
			items[j] = core.ItemName(i, j)
		}
		shards[s.Keys.ID] = items
	}
	return core.NewDirectory(shards)
}

// ServerIDs returns the server ids in descriptor order.
func (d *Deployment) ServerIDs() []identity.NodeID {
	ids := make([]identity.NodeID, len(d.Servers))
	for i, s := range d.Servers {
		ids[i] = s.Keys.ID
	}
	return ids
}

// CoordinatorID returns the designated coordinator (the first server).
func (d *Deployment) CoordinatorID() identity.NodeID {
	return d.Servers[0].Keys.ID
}
