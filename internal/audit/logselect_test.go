package audit

import (
	"math/big"
	"testing"

	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/schnorr"
	"repro/internal/txn"
)

// signedEnv holds real server identities so tests can produce genuinely
// co-signed blocks and then corrupt them.
type signedEnv struct {
	reg    *identity.Registry
	ids    []identity.NodeID
	idents []*identity.Identity
}

func newSignedEnv(t *testing.T, n int) *signedEnv {
	t.Helper()
	e := &signedEnv{reg: identity.NewRegistry()}
	for i := 0; i < n; i++ {
		id := identity.NodeID(rune('a' + i))
		ident, err := identity.New(id, identity.RoleServer, nil)
		if err != nil {
			t.Fatal(err)
		}
		e.reg.Register(ident.Public())
		e.ids = append(e.ids, id)
		e.idents = append(e.idents, ident)
	}
	return e
}

// signBlock attaches a genuine collective signature.
func (e *signedEnv) signBlock(t *testing.T, b *ledger.Block) {
	t.Helper()
	b.Signers = e.ids
	n := len(e.idents)
	commitments := make([]cosi.Commitment, n)
	secrets := make([]cosi.Secret, n)
	pubs := make([]schnorr.PublicKey, n)
	for i, ident := range e.idents {
		var err error
		commitments[i], secrets[i], err = cosi.Commit(nil)
		if err != nil {
			t.Fatal(err)
		}
		pubs[i] = ident.Schnorr.Public
	}
	aggV, err := cosi.AggregateCommitments(commitments)
	if err != nil {
		t.Fatal(err)
	}
	aggPub, err := cosi.AggregatePublicKeys(pubs)
	if err != nil {
		t.Fatal(err)
	}
	ch := cosi.Challenge(aggV, aggPub, b.SigningBytes())
	responses := make([]*big.Int, n)
	for i, ident := range e.idents {
		responses[i], err = cosi.Respond(ident.Schnorr, &secrets[i], ch)
		if err != nil {
			t.Fatal(err)
		}
	}
	aggR, err := cosi.AggregateResponses(responses)
	if err != nil {
		t.Fatal(err)
	}
	b.SetCoSig(cosi.Finalize(ch, aggR))
}

// signedChain builds a chain of k signed single-write blocks.
func (e *signedEnv) signedChain(t *testing.T, k int) []*ledger.Block {
	t.Helper()
	var blocks []*ledger.Block
	var prev []byte
	for i := 0; i < k; i++ {
		b := &ledger.Block{
			Height:   uint64(i),
			PrevHash: prev,
			Decision: ledger.DecisionCommit,
			Txns: []ledger.TxnRecord{{
				TxnID: string(rune('A' + i)), TS: txn.Timestamp{Time: uint64(i + 1), ClientID: 1},
				Writes: []txn.WriteEntry{{ID: "x", NewVal: []byte{byte('0' + i)}, Blind: true,
					WTS: txn.Timestamp{Time: uint64(i), ClientID: 1}}},
			}},
		}
		if i == 0 {
			b.Txns[0].Writes[0].WTS = txn.Timestamp{}
			b.Txns[0].Writes[0].OldVal = []byte("init")
		}
		e.signBlock(t, b)
		prev = b.Hash()
		blocks = append(blocks, b)
	}
	return blocks
}

func (e *signedEnv) auditor() *Auditor {
	return &Auditor{
		reg:     e.reg,
		servers: e.ids,
		dir:     mapDir{"x": e.ids[0]},
		coord:   e.ids[0],
	}
}

func cloneChain(blocks []*ledger.Block) []*ledger.Block {
	out := make([]*ledger.Block, len(blocks))
	for i, b := range blocks {
		out[i] = b.Clone()
	}
	return out
}

func TestSelectAuthoritativePicksLongestValid(t *testing.T) {
	e := newSignedEnv(t, 3)
	chain := e.signedChain(t, 4)
	logs := map[identity.NodeID][]*ledger.Block{
		e.ids[0]: cloneChain(chain),
		e.ids[1]: cloneChain(chain[:2]), // behind
		e.ids[2]: cloneChain(chain),
	}
	report := &Report{LogLengths: map[identity.NodeID]int{}}
	a := e.auditor()
	a.selectAuthoritative(logs, report)
	if len(report.Authoritative) != 4 {
		t.Fatalf("authoritative length = %d", len(report.Authoritative))
	}
	incomplete := report.ByType(FindingIncompleteLog)
	if len(incomplete) != 1 || incomplete[0].Servers[0] != e.ids[1] {
		t.Fatalf("findings = %v", report.Findings)
	}
}

func TestSelectAuthoritativeFlagsTamperedTailButKeepsPrefix(t *testing.T) {
	e := newSignedEnv(t, 2)
	chain := e.signedChain(t, 3)
	tampered := cloneChain(chain)
	tampered[2].Txns[0].Writes[0].NewVal = []byte("evil") // breaks co-sign of block 2

	logs := map[identity.NodeID][]*ledger.Block{
		e.ids[0]: cloneChain(chain),
		e.ids[1]: tampered,
	}
	report := &Report{LogLengths: map[identity.NodeID]int{}}
	a := e.auditor()
	a.selectAuthoritative(logs, report)

	bad := report.ByType(FindingTamperedLog)
	if len(bad) != 1 || bad[0].Height != 2 {
		t.Fatalf("findings = %v", report.Findings)
	}
	if !report.Implicates(e.ids[1]) {
		t.Fatal("tamperer not implicated")
	}
	if len(report.Authoritative) != 3 || report.AuthoritativeFrom != e.ids[0] {
		t.Fatalf("authoritative from %s length %d", report.AuthoritativeFrom, len(report.Authoritative))
	}
}

func TestSelectAuthoritativeDetectsFork(t *testing.T) {
	e := newSignedEnv(t, 2)
	chain := e.signedChain(t, 2)

	// A genuinely signed divergent block at height 1 (a successful
	// equivocation with full collusion): different content, valid co-sign.
	forkBlock := chain[1].Clone()
	forkBlock.Txns[0].Writes[0].NewVal = []byte("fork")
	e.signBlock(t, forkBlock)
	fork := []*ledger.Block{chain[0].Clone(), forkBlock}

	logs := map[identity.NodeID][]*ledger.Block{
		e.ids[0]: cloneChain(chain),
		e.ids[1]: fork,
	}
	report := &Report{LogLengths: map[identity.NodeID]int{}}
	a := e.auditor()
	a.selectAuthoritative(logs, report)

	forked := report.ByType(FindingForkedLog)
	if len(forked) != 1 {
		t.Fatalf("findings = %v", report.Findings)
	}
	if forked[0].Height != 1 {
		t.Errorf("fork at height %d, want 1", forked[0].Height)
	}
	// The designated coordinator is implicated alongside the fork holder.
	if !report.Implicates(e.ids[0]) {
		t.Error("coordinator not implicated in fork")
	}
}

func TestSelectAuthoritativeReordered(t *testing.T) {
	e := newSignedEnv(t, 2)
	chain := e.signedChain(t, 3)
	reordered := cloneChain(chain)
	reordered[1], reordered[2] = reordered[2], reordered[1]
	reordered[1].Height, reordered[2].Height = 1, 2

	logs := map[identity.NodeID][]*ledger.Block{
		e.ids[0]: cloneChain(chain),
		e.ids[1]: reordered,
	}
	report := &Report{LogLengths: map[identity.NodeID]int{}}
	a := e.auditor()
	a.selectAuthoritative(logs, report)
	if len(report.ByType(FindingReorderedLog)) == 0 {
		t.Fatalf("findings = %v", report.Findings)
	}
}

func TestSelectAuthoritativeNoValidLogs(t *testing.T) {
	e := newSignedEnv(t, 2)
	chain := e.signedChain(t, 1)
	broken := cloneChain(chain)
	broken[0].Txns[0].TxnID = "mutated"

	logs := map[identity.NodeID][]*ledger.Block{
		e.ids[0]: broken,
		e.ids[1]: cloneChain(broken),
	}
	report := &Report{LogLengths: map[identity.NodeID]int{}}
	a := e.auditor()
	a.selectAuthoritative(logs, report)
	if len(report.Authoritative) != 0 {
		t.Fatal("authoritative log from fully corrupt set")
	}
	if len(report.ByType(FindingUnauditable)) == 0 {
		t.Fatalf("findings = %v", report.Findings)
	}
}

// End-to-end sanity: the replay accepts the signed chain produced here.
func TestReplayAcceptsSignedChain(t *testing.T) {
	e := newSignedEnv(t, 2)
	chain := e.signedChain(t, 4)
	report := &Report{Authoritative: chain}
	a := e.auditor()
	a.replayLog(report, nil)
	if len(report.Findings) != 0 {
		t.Fatalf("findings = %v", report.Findings)
	}
}
