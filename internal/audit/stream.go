package audit

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/store"
	"repro/internal/txn"
)

// CheckpointItem is the serialized form of one item's authoritative shadow
// state at a checkpoint.
type CheckpointItem struct {
	Known   bool          `json:"known"`
	TSKnown bool          `json:"ts_known"`
	Value   []byte        `json:"value,omitempty"`
	RTS     txn.Timestamp `json:"rts"`
	WTS     txn.Timestamp `json:"wts"`
}

// Checkpoint is a portable snapshot of a replay position: everything a
// replayer derived from blocks [0, Height) and needs to continue at Height
// without rescanning. The watchtower persists these between polls (and
// across restarts via fides-watch -checkpoint), and a full audit can resume
// from one instead of replaying from genesis (Options.Resume), because the
// replay checks are Markovian in (Items, PrevMax): every Lemma 1/3 check on
// a block depends on history only through the latest committed state.
type Checkpoint struct {
	// Height is the number of blocks replayed; the next block expected by a
	// resumed replayer has this height.
	Height uint64 `json:"height"`
	// Hash is the hash of the last replayed block (nil before any block).
	// Resuming validates it against the authoritative log so a checkpoint
	// from a forked or tampered history can never silently vouch for it.
	Hash []byte `json:"hash,omitempty"`
	// PrevMax is the maximum committed timestamp seen so far.
	PrevMax txn.Timestamp `json:"prev_max"`
	// Items is the authoritative shadow state derived from the log.
	Items map[txn.ItemID]CheckpointItem `json:"items"`
}

// Replayer is the streaming core of the log replay: it consumes committed,
// already co-sign-verified blocks one at a time in height order and emits
// the Lemma 1 (incorrect reads) and Lemma 3 (conflict rule) findings for
// each, maintaining the authoritative per-item shadow state the checks
// validate against. The offline Auditor drives it over the full
// authoritative log; the continuous watchtower (internal/watch) drives it
// block-by-block as the chain grows, checkpointing between polls.
//
// The global serialization-graph cycle check (graph.go) is not part of the
// stream: it needs the whole history and stays with the full audit.
type Replayer struct {
	dir      Directory
	coord    identity.NodeID
	state    map[txn.ItemID]*itemState
	prevMax  txn.Timestamp
	height   uint64
	lastHash []byte
	out      []Finding // findings of the Step in progress
}

// NewReplayer starts a replayer at genesis.
func NewReplayer(dir Directory, coord identity.NodeID) *Replayer {
	return &Replayer{
		dir:   dir,
		coord: coord,
		state: make(map[txn.ItemID]*itemState),
	}
}

// ResumeReplayer restores a replayer from a checkpoint. The caller is
// responsible for having validated Checkpoint.Hash against the log it is
// about to feed (the Auditor does; see replayLog).
func ResumeReplayer(dir Directory, coord identity.NodeID, cp *Checkpoint) *Replayer {
	rp := NewReplayer(dir, coord)
	rp.height = cp.Height
	rp.lastHash = append([]byte(nil), cp.Hash...)
	rp.prevMax = cp.PrevMax
	for id, it := range cp.Items {
		rp.state[id] = &itemState{
			known:   it.Known,
			tsKnown: it.TSKnown,
			value:   append([]byte(nil), it.Value...),
			rts:     it.RTS,
			wts:     it.WTS,
		}
	}
	return rp
}

// Height is the number of blocks replayed so far.
func (rp *Replayer) Height() uint64 { return rp.height }

// LastHash is the hash of the last replayed block (nil at genesis).
func (rp *Replayer) LastHash() []byte { return rp.lastHash }

// Checkpoint snapshots the replayer's position. The snapshot shares no
// mutable state with the replayer and is JSON- and gob-friendly.
func (rp *Replayer) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Height:  rp.height,
		Hash:    append([]byte(nil), rp.lastHash...),
		PrevMax: rp.prevMax,
		Items:   make(map[txn.ItemID]CheckpointItem, len(rp.state)),
	}
	for id, st := range rp.state {
		cp.Items[id] = CheckpointItem{
			Known:   st.known,
			TSKnown: st.tsKnown,
			Value:   append([]byte(nil), st.value...),
			RTS:     st.rts,
			WTS:     st.wts,
		}
	}
	return cp
}

// Lookup returns the shadow state of one item.
func (rp *Replayer) Lookup(id txn.ItemID) (CheckpointItem, bool) {
	st, ok := rp.state[id]
	if !ok {
		return CheckpointItem{}, false
	}
	return CheckpointItem{Known: st.known, TSKnown: st.tsKnown, Value: st.value, RTS: st.rts, WTS: st.wts}, true
}

// KnownItems lists, sorted, the items whose committed value the replay has
// established — the population the watchtower samples verified reads from.
func (rp *Replayer) KnownItems() []txn.ItemID {
	out := make([]txn.ItemID, 0, len(rp.state))
	for id, st := range rp.state {
		if st.known {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Step replays one committed block against the shadow state and returns the
// findings it produced. Blocks must arrive in height order; Step trusts the
// caller to have verified the chain position and collective signature (the
// Auditor's log selection or the watchtower's header verification).
func (rp *Replayer) Step(b *ledger.Block) []Finding {
	rp.out = nil
	if b.Decision != ledger.DecisionCommit {
		rp.emit(Finding{
			Type:    FindingTamperedLog,
			Servers: rp.implicated(nil, true),
			Height:  int64(b.Height),
			Detail:  fmt.Sprintf("logged block %d has decision %s; only committed blocks are logged", b.Height, b.Decision),
		})
	}
	rp.checkIntraBlockConflicts(b)

	// Validate every transaction against the pre-block state, then apply
	// all updates at once: within a block, cohorts validated against the
	// state before the block (paper §4.6: the batch is non-conflicting).
	pending := make(map[txn.ItemID]*itemState)
	for i := range b.Txns {
		rec := &b.Txns[i]
		rp.checkTimestampOrder(b, rec)
		rp.checkReads(b, rec)
		rp.checkWrites(b, rec)
		rp.applyTxn(pending, rec)
	}
	for id, p := range pending {
		rp.state[id] = p
	}
	rp.prevMax = rp.prevMax.Max(b.MaxTS())
	rp.height = b.Height + 1
	rp.lastHash = b.Hash()
	return rp.out
}

func (rp *Replayer) emit(f Finding) { rp.out = append(rp.out, f) }

// checkTimestampOrder enforces the commit-order/timestamp-order agreement:
// servers ignore end_transaction requests with a timestamp lower than the
// latest committed timestamp (paper §4.3.1), so every logged transaction
// must carry a timestamp above everything before it.
func (rp *Replayer) checkTimestampOrder(b *ledger.Block, rec *ledger.TxnRecord) {
	if !rp.prevMax.Less(rec.TS) {
		rp.emit(Finding{
			Type:    FindingSerializability,
			Servers: rp.implicated(rp.ownersOfRecord(rec), true),
			Height:  int64(b.Height),
			TxnID:   rec.TxnID,
			Detail: fmt.Sprintf("txn %s committed at %s, not after the latest committed timestamp %s",
				rec.TxnID, rec.TS, rp.prevMax),
		})
	}
}

// checkReads performs the Lemma 1 verification: the read value of an item
// must reflect the latest value written in the log, and the recorded
// timestamps must match the authoritative ones.
func (rp *Replayer) checkReads(b *ledger.Block, rec *ledger.TxnRecord) {
	for _, r := range rec.Reads {
		st, ok := rp.state[r.ID]
		if !ok {
			// First appearance in the log: the recorded observation is the
			// baseline (the replayer cannot know pre-history).
			rp.state[r.ID] = &itemState{
				known: true, tsKnown: true,
				value: r.Value, rts: r.RTS, wts: r.WTS,
			}
			continue
		}
		if st.known && !bytes.Equal(st.value, r.Value) {
			rp.emit(Finding{
				Type:    FindingIncorrectRead,
				Servers: rp.ownersOf(r.ID),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    r.ID,
				Detail: fmt.Sprintf("txn %s read %q for item %s; the latest committed value is %q",
					rec.TxnID, r.Value, r.ID, st.value),
			})
		}
		if st.tsKnown && st.wts != r.WTS {
			rp.emit(Finding{
				Type:    FindingStaleTimestamp,
				Servers: rp.ownersOf(r.ID),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    r.ID,
				Detail: fmt.Sprintf("txn %s observed wts %s for item %s; authoritative wts is %s",
					rec.TxnID, r.WTS, r.ID, st.wts),
			})
		}
		// RW conflict (Lemma 3): a transaction with a smaller timestamp
		// read a data item already written at a larger timestamp.
		if st.tsKnown && rec.TS.Less(st.wts) {
			rp.emit(Finding{
				Type:    FindingSerializability,
				Servers: rp.implicated(rp.ownersOf(r.ID), true),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    r.ID,
				Detail: fmt.Sprintf("RW conflict: txn %s (ts %s) read item %s already written at %s",
					rec.TxnID, rec.TS, r.ID, st.wts),
			})
		}
	}
}

// checkWrites performs the Lemma 3 WW and WR conflict checks and validates
// blind-write baselines.
func (rp *Replayer) checkWrites(b *ledger.Block, rec *ledger.TxnRecord) {
	for _, w := range rec.Writes {
		st, ok := rp.state[w.ID]
		if !ok {
			st = &itemState{}
			if w.Blind {
				// Table 1: old_val (with rts/wts) is recorded for blind
				// writes; it baselines the item's pre-state.
				st.known = true
				st.tsKnown = true
				st.value = w.OldVal
				st.rts = w.RTS
				st.wts = w.WTS
			}
			rp.state[w.ID] = st
			continue
		}
		if st.tsKnown && st.wts != w.WTS {
			rp.emit(Finding{
				Type:    FindingStaleTimestamp,
				Servers: rp.ownersOf(w.ID),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    w.ID,
				Detail: fmt.Sprintf("txn %s observed wts %s when writing item %s; authoritative wts is %s",
					rec.TxnID, w.WTS, w.ID, st.wts),
			})
		}
		if st.tsKnown && rec.TS.Less(st.wts) {
			// WW conflict: writing below an existing write timestamp.
			rp.emit(Finding{
				Type:    FindingSerializability,
				Servers: rp.implicated(rp.ownersOf(w.ID), true),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    w.ID,
				Detail: fmt.Sprintf("WW conflict: txn %s (ts %s) wrote item %s already written at %s",
					rec.TxnID, rec.TS, w.ID, st.wts),
			})
		}
		if st.tsKnown && rec.TS.Less(st.rts) {
			// WR conflict: writing below an existing read timestamp.
			rp.emit(Finding{
				Type:    FindingSerializability,
				Servers: rp.implicated(rp.ownersOf(w.ID), true),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    w.ID,
				Detail: fmt.Sprintf("WR conflict: txn %s (ts %s) wrote item %s already read at %s",
					rec.TxnID, rec.TS, w.ID, st.rts),
			})
		}
	}
}

// applyTxn folds a transaction's effects into the pending post-block state:
// reads advance rts, writes install the value and advance wts (paper §4.1
// step 7).
func (rp *Replayer) applyTxn(pending map[txn.ItemID]*itemState, rec *ledger.TxnRecord) {
	load := func(id txn.ItemID) *itemState {
		if p, ok := pending[id]; ok {
			return p
		}
		p := &itemState{}
		if st, ok := rp.state[id]; ok {
			*p = *st
		}
		pending[id] = p
		return p
	}
	for _, r := range rec.Reads {
		p := load(r.ID)
		if p.rts.Less(rec.TS) {
			p.rts = rec.TS
		}
		p.tsKnown = true
	}
	for _, w := range rec.Writes {
		p := load(w.ID)
		p.value = w.NewVal
		p.known = true
		p.tsKnown = true
		if p.wts.Less(rec.TS) {
			p.wts = rec.TS
		}
	}
}

// checkIntraBlockConflicts flags blocks whose transactions conflict with
// each other: the coordinator must pack only non-conflicting transactions
// into a block (paper §4.6), and cohorts validate against pre-block state,
// so a conflicting batch would commit unserializable effects.
func (rp *Replayer) checkIntraBlockConflicts(b *ledger.Block) {
	readers := make(map[txn.ItemID]string)
	writers := make(map[txn.ItemID]string)
	for i := range b.Txns {
		rec := &b.Txns[i]
		for _, r := range rec.Reads {
			if other, ok := writers[r.ID]; ok && other != rec.TxnID {
				rp.reportIntraBlock(b, rec.TxnID, other, r.ID)
			}
		}
		for _, w := range rec.Writes {
			if other, ok := writers[w.ID]; ok && other != rec.TxnID {
				rp.reportIntraBlock(b, rec.TxnID, other, w.ID)
			}
			if other, ok := readers[w.ID]; ok && other != rec.TxnID {
				rp.reportIntraBlock(b, rec.TxnID, other, w.ID)
			}
		}
		for _, r := range rec.Reads {
			readers[r.ID] = rec.TxnID
		}
		for _, w := range rec.Writes {
			writers[w.ID] = rec.TxnID
		}
	}
}

func (rp *Replayer) reportIntraBlock(b *ledger.Block, txnID, other string, item txn.ItemID) {
	rp.emit(Finding{
		Type:    FindingSerializability,
		Servers: rp.implicated(rp.ownersOf(item), true),
		Height:  int64(b.Height),
		TxnID:   txnID,
		Item:    item,
		Detail: fmt.Sprintf("block %d packs conflicting transactions %s and %s on item %s",
			b.Height, txnID, other, item),
	})
}

// datastoreTargets derives, for each server whose root the block records,
// one item whose post-block leaf the replay can reconstruct from the log,
// to be checked against the served VO (Lemma 2). Call after Step(b).
func (rp *Replayer) datastoreTargets(b *ledger.Block) []dsTarget {
	chosen := make(map[identity.NodeID]txn.ItemID, len(b.Roots))
	consider := func(id txn.ItemID, written bool) {
		owner, ok := rp.dir.Owner(id)
		if !ok {
			return
		}
		if _, hasRoot := b.Roots[owner]; !hasRoot {
			return
		}
		if _, already := chosen[owner]; already && !written {
			return // prefer written items: their value is in the block
		}
		chosen[owner] = id
	}
	for i := range b.Txns {
		for _, r := range b.Txns[i].Reads {
			consider(r.ID, false)
		}
		for _, w := range b.Txns[i].Writes {
			consider(w.ID, true)
		}
	}
	targets := make([]dsTarget, 0, len(chosen))
	for server, item := range chosen {
		st := rp.state[item]
		if st == nil || !st.known {
			continue
		}
		targets = append(targets, dsTarget{
			height:    b.Height,
			server:    server,
			item:      item,
			leaf:      store.LeafContent(item, st.value, st.rts, st.wts),
			root:      b.Roots[server],
			versionTS: b.MaxTS(),
		})
	}
	return targets
}

// implicated builds the server list for a finding, appending the designated
// coordinator when block production itself is suspect.
func (rp *Replayer) implicated(ids []identity.NodeID, withCoordinator bool) []identity.NodeID {
	out := append([]identity.NodeID(nil), ids...)
	if withCoordinator && rp.coord != "" {
		seen := false
		for _, id := range out {
			if id == rp.coord {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, rp.coord)
		}
	}
	return out
}

// ownersOf resolves the owner of an item into a finding's server list.
func (rp *Replayer) ownersOf(id txn.ItemID) []identity.NodeID {
	if owner, ok := rp.dir.Owner(id); ok {
		return []identity.NodeID{owner}
	}
	return nil
}

// ownersOfRecord resolves the owners of every item a transaction touched.
func (rp *Replayer) ownersOfRecord(rec *ledger.TxnRecord) []identity.NodeID {
	set := make(map[identity.NodeID]struct{})
	for _, r := range rec.Reads {
		if owner, ok := rp.dir.Owner(r.ID); ok {
			set[owner] = struct{}{}
		}
	}
	for _, w := range rec.Writes {
		if owner, ok := rp.dir.Owner(w.ID); ok {
			set[owner] = struct{}{}
		}
	}
	out := make([]identity.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}
