// Package audit implements the Fides auditor (paper §3.3, §4.2.2–§4.5,
// §5): a powerful external entity that gathers the tamper-proof logs from
// all servers, identifies the correct and complete log, and then verifies
// every layer of every server — producing findings that pinpoint (i) the
// precise point in the transaction history where an anomaly occurred and
// (ii) the exact misbehaving server(s) irrefutably linked to it.
//
// The checks map one-to-one onto the paper's lemmas:
//
//	Lemma 1 — incorrect read values, via log replay (replay.go)
//	Lemma 2 — datastore corruption, via VO + MHT roots (datastore.go)
//	Lemma 3 — serializability violations, via conflict rules and a
//	          serialization-graph cycle check (replay.go, graph.go)
//	Lemma 4 — invalid collective signatures (logselect.go)
//	Lemma 5 — atomicity violations / equivocation, surfacing as invalid
//	          co-signs or forks across server logs (logselect.go)
//	Lemmas 6, 7 — tampered, reordered, or truncated logs (logselect.go)
//
// Together these give the verifiable ACID guarantees of Theorem 1.
package audit

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/crypto"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// FindingType classifies an audit finding.
type FindingType string

// Finding types, named after the failure classes of paper §3.2 and §5.
const (
	// FindingTamperedLog: a served log contains a block whose collective
	// signature does not verify (Lemma 6) — modified content, or an
	// equivocation branch block that was never collectively signed
	// (Lemma 5).
	FindingTamperedLog FindingType = "tampered-log"
	// FindingReorderedLog: a served log's hash pointers do not chain
	// (Lemma 6).
	FindingReorderedLog FindingType = "reordered-log"
	// FindingIncompleteLog: a served log is a strict prefix of the
	// authoritative log (Lemma 7).
	FindingIncompleteLog FindingType = "incomplete-log"
	// FindingForkedLog: a server's valid log diverges from the
	// authoritative log — two different blocks at the same height, the
	// observable footprint of coordinator equivocation (Lemma 5).
	FindingForkedLog FindingType = "forked-log"
	// FindingIncorrectRead: a committed transaction's recorded read does
	// not match the latest committed write of that item (Lemma 1,
	// Scenario 1).
	FindingIncorrectRead FindingType = "incorrect-read"
	// FindingStaleTimestamp: a recorded read carries timestamps that do not
	// match the item's authoritative timestamps at that point in history.
	FindingStaleTimestamp FindingType = "stale-timestamp"
	// FindingSerializability: a committed transaction exhibits an RW, WW,
	// or WR conflict inconsistent with the timestamp order (Lemma 3).
	FindingSerializability FindingType = "serializability-violation"
	// FindingDatastoreCorruption: a server's datastore state does not
	// authenticate against the MHT root recorded in the log (Lemma 2,
	// Scenario 3).
	FindingDatastoreCorruption FindingType = "datastore-corruption"
	// FindingUnauditable: a server could not be audited (unreachable, or
	// refused to serve a proof). Not proof of misbehavior by itself, but
	// reported so the operator can act.
	FindingUnauditable FindingType = "unauditable"
)

// Finding is one detected anomaly.
type Finding struct {
	Type FindingType
	// Servers are the implicated server(s).
	Servers []identity.NodeID
	// Height is the block height at which the anomaly occurs (-1 if not
	// tied to a specific block).
	Height int64
	// TxnID is the offending transaction, when applicable.
	TxnID string
	// Item is the data item involved, when applicable.
	Item txn.ItemID
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the finding with its type, position and implicated servers.
func (f Finding) String() string {
	srv := make([]string, len(f.Servers))
	for i, s := range f.Servers {
		srv[i] = string(s)
	}
	sort.Strings(srv)
	return fmt.Sprintf("[%s] servers=%v height=%d txn=%q item=%q: %s",
		f.Type, srv, f.Height, f.TxnID, f.Item, f.Detail)
}

// Report is the outcome of an audit.
type Report struct {
	// Findings lists every detected anomaly in detection order.
	Findings []Finding
	// Authoritative is the correct and complete log the audit was run
	// against (paper §3.3: derivable because at least one server is
	// correct).
	Authoritative []*ledger.Block
	// AuthoritativeFrom names a server that served the authoritative log.
	AuthoritativeFrom identity.NodeID
	// LogLengths records the length of the log served by each server.
	LogLengths map[identity.NodeID]int

	// dsTargets are the datastore-audit obligations the replay derived.
	dsTargets []dsTarget
}

// Clean reports whether the audit found no anomalies.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// FirstViolation returns the earliest finding by block height (ties broken
// by detection order), matching §4.5: the auditor identifies the first
// occurrence, after which the rest of the history is suspect.
func (r *Report) FirstViolation() *Finding {
	if len(r.Findings) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(r.Findings); i++ {
		if heightKey(r.Findings[i].Height) < heightKey(r.Findings[best].Height) {
			best = i
		}
	}
	return &r.Findings[best]
}

func heightKey(h int64) int64 {
	if h < 0 {
		return 1<<62 - 1
	}
	return h
}

// ByType returns the findings of one type.
func (r *Report) ByType(t FindingType) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Type == t {
			out = append(out, f)
		}
	}
	return out
}

// Implicates reports whether any finding names the given server.
func (r *Report) Implicates(id identity.NodeID) bool {
	for _, f := range r.Findings {
		for _, s := range f.Servers {
			if s == id {
				return true
			}
		}
	}
	return false
}

// Directory resolves item ownership, used to attribute item-level findings
// to servers.
type Directory interface {
	Owner(id txn.ItemID) (identity.NodeID, bool)
}

// Options tune an audit run.
type Options struct {
	// CheckDatastore enables the Lemma 2 VO/MHT verification against the
	// servers' live datastores.
	CheckDatastore bool
	// Exhaustive audits every version of every involved server
	// (multi-versioned shards); otherwise only each server's latest
	// authenticated version is checked (paper §4.2.2 describes both
	// policies).
	Exhaustive bool
	// MultiVersion declares whether the deployment's shards retain
	// versions; it selects which VO form the auditor requests.
	MultiVersion bool
	// Resume, when non-nil, starts the log replay from a previously
	// verified checkpoint (e.g. the watchtower's) instead of genesis. The
	// checkpoint is validated against the authoritative log before use;
	// Run fails if it was taken on a different history. Findings confined
	// to blocks below the checkpoint height were already reported when the
	// checkpoint was built and are not re-derived.
	Resume *Checkpoint
}

// Config assembles an Auditor. The shared peer wiring — registry,
// transport, server set and coordinator — is the embedded
// peer.PeerConfig (the auditor pulls whole logs, so Source and PageSize
// are unused).
type Config struct {
	peer.PeerConfig

	// Identity is the auditor's identity (a client-role key registered with
	// all servers so its requests authenticate).
	Identity *identity.Identity
	// Directory resolves item ownership.
	Directory Directory
}

// Auditor audits a Fides deployment.
type Auditor struct {
	ident    *identity.Identity
	reg      *identity.Registry
	tr       transport.Transport
	servers  []identity.NodeID
	dir      Directory
	coord    identity.NodeID
	verifier ledger.CoSigVerifier
}

// cosigVerifier returns the auditor's verification plane, defaulting to
// the serial backend over the registry when none was injected (an Auditor
// built by hand rather than through New).
func (a *Auditor) cosigVerifier() ledger.CoSigVerifier {
	if a.verifier == nil {
		a.verifier = crypto.NewSerial(a.reg)
	}
	return a.verifier
}

// New creates an Auditor.
func New(cfg Config) (*Auditor, error) {
	if cfg.Identity == nil || cfg.Directory == nil {
		return nil, errors.New("audit: config requires identity, registry, transport and directory")
	}
	if err := cfg.Validate("audit"); err != nil {
		return nil, err
	}
	cfg.ApplyDefaults(0)
	servers := append([]identity.NodeID(nil), cfg.Servers...)
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	return &Auditor{
		ident:    cfg.Identity,
		reg:      cfg.Registry,
		tr:       cfg.Transport,
		servers:  servers,
		dir:      cfg.Directory,
		coord:    cfg.Coordinator,
		verifier: cfg.Verifier,
	}, nil
}

// Run performs a full audit: gather logs, select the authoritative log,
// verify every served log against it, replay the history (Lemmas 1 and 3),
// and optionally authenticate the datastores (Lemma 2).
func (a *Auditor) Run(ctx context.Context, opts Options) (*Report, error) {
	report := &Report{LogLengths: make(map[identity.NodeID]int, len(a.servers))}

	logs := a.collectLogs(ctx, report)
	a.selectAuthoritative(logs, report)
	if err := a.replayLog(report, opts.Resume); err != nil {
		return report, err
	}
	if opts.CheckDatastore {
		a.checkDatastores(ctx, report, opts)
	}
	return report, nil
}

// collectLogs fetches every server's log (paper §3.3 step i).
func (a *Auditor) collectLogs(ctx context.Context, report *Report) map[identity.NodeID][]*ledger.Block {
	logs := make(map[identity.NodeID][]*ledger.Block, len(a.servers))
	msg, err := transport.NewMessage(wire.MsgFetchLog, &wire.FetchLogReq{})
	if err != nil {
		return logs
	}
	resps, errs := transport.CallAll(ctx, a.tr, a.servers, msg)
	for id, e := range errs {
		report.Findings = append(report.Findings, Finding{
			Type:    FindingUnauditable,
			Servers: []identity.NodeID{id},
			Height:  -1,
			Detail:  fmt.Sprintf("log fetch failed: %v", e),
		})
	}
	for id, resp := range resps {
		var fl wire.FetchLogResp
		if err := resp.Decode(&fl); err != nil {
			report.Findings = append(report.Findings, Finding{
				Type:    FindingUnauditable,
				Servers: []identity.NodeID{id},
				Height:  -1,
				Detail:  fmt.Sprintf("log decode failed: %v", err),
			})
			continue
		}
		logs[id] = fl.Blocks
		report.LogLengths[id] = len(fl.Blocks)
	}
	return logs
}

// fetchProof asks one server for a Verification Object.
func (a *Auditor) fetchProof(ctx context.Context, server identity.NodeID, req *wire.FetchProofReq) (*wire.FetchProofResp, error) {
	msg, err := transport.NewMessage(wire.MsgFetchProof, req)
	if err != nil {
		return nil, err
	}
	resp, err := a.tr.Call(ctx, server, msg)
	if err != nil {
		return nil, err
	}
	var pr wire.FetchProofResp
	if err := resp.Decode(&pr); err != nil {
		return nil, err
	}
	return &pr, nil
}

// ownersOf resolves the owner of an item into a finding's server list.
func (a *Auditor) ownersOf(id txn.ItemID) []identity.NodeID {
	if owner, ok := a.dir.Owner(id); ok {
		return []identity.NodeID{owner}
	}
	return nil
}

// implicated builds the server list for a finding, appending the designated
// coordinator when block production itself is suspect.
func (a *Auditor) implicated(ids []identity.NodeID, withCoordinator bool) []identity.NodeID {
	out := append([]identity.NodeID(nil), ids...)
	if withCoordinator && a.coord != "" {
		seen := false
		for _, id := range out {
			if id == a.coord {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, a.coord)
		}
	}
	return out
}
