package audit

import (
	"testing"

	"repro/internal/ledger"
	"repro/internal/txn"
)

func graphBlock(height uint64, recs ...ledger.TxnRecord) *ledger.Block {
	return &ledger.Block{Height: height, Decision: ledger.DecisionCommit, Txns: recs}
}

func readRec(id string, at uint64, items ...txn.ItemID) ledger.TxnRecord {
	rec := ledger.TxnRecord{TxnID: id, TS: ts(at)}
	for _, it := range items {
		rec.Reads = append(rec.Reads, txn.ReadEntry{ID: it})
	}
	return rec
}

func writeRec(id string, at uint64, items ...txn.ItemID) ledger.TxnRecord {
	rec := ledger.TxnRecord{TxnID: id, TS: ts(at)}
	for _, it := range items {
		rec.Writes = append(rec.Writes, txn.WriteEntry{ID: it, NewVal: []byte("v")})
	}
	return rec
}

func TestGraphNoEdgesForReadRead(t *testing.T) {
	g := buildSerializationGraph([]*ledger.Block{
		graphBlock(0, readRec("t1", 1, "x")),
		graphBlock(1, readRec("t2", 2, "x")),
	})
	if len(g.edges) != 0 {
		t.Fatalf("read-read produced %d edges", len(g.edges))
	}
}

func TestGraphEdgesFollowTimestampOrder(t *testing.T) {
	g := buildSerializationGraph([]*ledger.Block{
		graphBlock(0, writeRec("t1", 5, "x")),
		graphBlock(1, writeRec("t2", 3, "x")), // committed later, smaller ts
	})
	if len(g.edges) != 1 {
		t.Fatalf("edges = %d, want 1", len(g.edges))
	}
	e := g.edges[0]
	// Edge direction: smaller ts (t2) → larger ts (t1).
	if g.nodes[e.from].id != "t2" || g.nodes[e.to].id != "t1" {
		t.Errorf("edge %s→%s, want t2→t1", g.nodes[e.from].id, g.nodes[e.to].id)
	}
}

func TestGraphDetectsDuplicateTimestamps(t *testing.T) {
	g := buildSerializationGraph([]*ledger.Block{
		graphBlock(0, writeRec("t1", 5, "x")),
		graphBlock(1, writeRec("t2", 5, "x")),
	})
	if len(g.duplicateTS) != 1 {
		t.Fatalf("duplicateTS = %d, want 1", len(g.duplicateTS))
	}
}

func TestCheckSerializationGraphFlagsBackEdge(t *testing.T) {
	a := testAuditor()
	report := &Report{Authoritative: []*ledger.Block{
		graphBlock(0, writeRec("t1", 5, "x")),
		graphBlock(1, writeRec("t2", 3, "x")),
	}}
	a.checkSerializationGraph(report)
	found := report.ByType(FindingSerializability)
	if len(found) == 0 {
		t.Fatal("back edge not flagged")
	}
	if found[0].Item != "x" {
		t.Errorf("finding item = %s", found[0].Item)
	}
}

func TestCheckSerializationGraphCleanOrder(t *testing.T) {
	a := testAuditor()
	report := &Report{Authoritative: []*ledger.Block{
		graphBlock(0, writeRec("t1", 1, "x"), readRec("t1b", 2, "y")),
		graphBlock(1, readRec("t2", 3, "x")),
		graphBlock(2, writeRec("t3", 4, "x", "y")),
	}}
	a.checkSerializationGraph(report)
	if len(report.Findings) != 0 {
		t.Fatalf("clean order flagged: %v", report.Findings)
	}
}

func TestGraphMixedConflicts(t *testing.T) {
	// WR and RW conflicts both create edges.
	g := buildSerializationGraph([]*ledger.Block{
		graphBlock(0, readRec("r", 2, "x")),
		graphBlock(1, writeRec("w", 4, "x")),
	})
	if len(g.edges) != 1 {
		t.Fatalf("edges = %d, want 1 (read→write)", len(g.edges))
	}
	if g.nodes[g.edges[0].from].id != "r" {
		t.Errorf("edge should start at the earlier-ts reader")
	}
}
