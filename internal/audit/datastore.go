package audit

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/identity"
	"repro/internal/merkle"
	"repro/internal/wire"
)

// checkDatastores performs the Lemma 2 / Scenario 3 verification: for each
// datastore-audit target derived during replay, ask the owning server for a
// Verification Object, recompute the expected Merkle root from the leaf the
// *log* implies (not the leaf the server claims), and compare it against
// the root recorded in the collectively signed block.
//
// For multi-versioned shards with Options.Exhaustive, every version of
// every involved server is audited, identifying "the precise version at
// which the datastore became inconsistent"; otherwise only each server's
// latest authenticated version is checked against its current state
// (paper §4.2.2, single-versioned policy).
func (a *Auditor) checkDatastores(ctx context.Context, report *Report, opts Options) {
	targets := report.dsTargets
	if !(opts.Exhaustive && opts.MultiVersion) {
		targets = latestTargetPerServer(targets)
	}
	for _, t := range targets {
		req := &wire.FetchProofReq{ID: t.item}
		if opts.Exhaustive && opts.MultiVersion {
			req.AtVersion = true
			req.TS = t.versionTS
		}
		resp, err := a.fetchProof(ctx, t.server, req)
		if err != nil {
			report.Findings = append(report.Findings, Finding{
				Type:    FindingUnauditable,
				Servers: []identity.NodeID{t.server},
				Height:  int64(t.height),
				Item:    t.item,
				Detail:  fmt.Sprintf("verification object for item %s unavailable: %v", t.item, err),
			})
			continue
		}
		// Two checks together realize Lemma 2. (i) The server's *claimed*
		// item state must fold through the VO into the root recorded in the
		// collectively signed block — with a collision-free hash the server
		// cannot fabricate a VO for state it does not hold. (ii) The claimed
		// state must equal the state the log replay implies. Check (i) alone
		// is insufficient when the corruption is confined to the audited
		// leaf itself (the siblings then still fold the *expected* leaf into
		// the signed root); check (ii) alone would trust the server's claim.
		// A server that corrupted its datastore fails both; a server that
		// lies about its state to pass (ii) cannot satisfy (i).
		computed := merkle.RootFromProof(merkle.LeafHash(resp.LeafContent), resp.Proof)
		switch {
		case !bytes.Equal(computed, t.root):
			report.Findings = append(report.Findings, Finding{
				Type:    FindingDatastoreCorruption,
				Servers: []identity.NodeID{t.server},
				Height:  int64(t.height),
				Item:    t.item,
				Detail: fmt.Sprintf("datastore of %s does not authenticate item %s at version %s: computed root %x, block %d recorded %x",
					t.server, t.item, t.versionTS, computed, t.height, t.root),
			})
		case !bytes.Equal(resp.LeafContent, t.leaf):
			report.Findings = append(report.Findings, Finding{
				Type:    FindingDatastoreCorruption,
				Servers: []identity.NodeID{t.server},
				Height:  int64(t.height),
				Item:    t.item,
				Detail: fmt.Sprintf("datastore of %s stores item %s at version %s with state %x; the log implies %x",
					t.server, t.item, t.versionTS, resp.LeafContent, t.leaf),
			})
		}
	}
}

// latestTargetPerServer keeps only each server's highest-block target — the
// latest authenticated state, which is all that single-versioned audits can
// check.
func latestTargetPerServer(targets []dsTarget) []dsTarget {
	latest := make(map[identity.NodeID]dsTarget)
	for _, t := range targets {
		if cur, ok := latest[t.server]; !ok || t.height > cur.height {
			latest[t.server] = t
		}
	}
	out := make([]dsTarget, 0, len(latest))
	for _, t := range latest {
		out = append(out, t)
	}
	return out
}
