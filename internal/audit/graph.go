package audit

import (
	"fmt"

	"repro/internal/ledger"
	"repro/internal/txn"
)

// checkSerializationGraph performs the global form of the Lemma 3 check:
// "this is equivalent to verifying that no cycle exists in the
// Serialization Graph of the transactions being audited" (paper §4.3.2).
//
// The graph has one node per committed transaction and a directed edge
// u → v for every pair of conflicting accesses with ts(u) < ts(v). The
// commit (log) order must be a topological order of this graph: a conflict
// edge pointing backwards in the log is a cycle between the timestamp
// serialization order and the commit order, i.e. a serializability
// violation. Duplicate commit timestamps on conflicting transactions are
// likewise violations (timestamps must totally order conflicting work).
func (a *Auditor) checkSerializationGraph(report *Report) {
	g := buildSerializationGraph(report.Authoritative)
	for _, e := range g.edges {
		u, v := g.nodes[e.from], g.nodes[e.to]
		if u.logIndex > v.logIndex {
			report.Findings = append(report.Findings, Finding{
				Type:    FindingSerializability,
				Servers: a.implicated(a.ownersOf(e.item), true),
				Height:  v.height,
				TxnID:   v.id,
				Item:    e.item,
				Detail: fmt.Sprintf("serialization-graph cycle: txn %s (ts %s) conflicts with txn %s (ts %s) on item %s but commits after it",
					u.id, u.ts, v.id, v.ts, e.item),
			})
		}
	}
	for _, d := range g.duplicateTS {
		report.Findings = append(report.Findings, Finding{
			Type:    FindingSerializability,
			Servers: a.implicated(a.ownersOf(d.item), true),
			Height:  d.height,
			TxnID:   d.a,
			Item:    d.item,
			Detail: fmt.Sprintf("conflicting transactions %s and %s share commit timestamp %s on item %s",
				d.a, d.b, d.ts, d.item),
		})
	}
}

type graphNode struct {
	id       string
	ts       txn.Timestamp
	logIndex int
	height   int64
}

type graphEdge struct {
	from, to int // node indices, directed from smaller ts to larger ts
	item     txn.ItemID
}

type duplicateTS struct {
	a, b   string
	ts     txn.Timestamp
	item   txn.ItemID
	height int64
}

type serializationGraph struct {
	nodes       []graphNode
	edges       []graphEdge
	duplicateTS []duplicateTS
}

type accessKind uint8

const (
	accessRead accessKind = iota + 1
	accessWrite
)

type itemAccess struct {
	node int
	kind accessKind
}

// buildSerializationGraph scans the log and connects conflicting accesses
// (read-write, write-write, write-read) with edges directed by commit
// timestamp.
func buildSerializationGraph(blocks []*ledger.Block) *serializationGraph {
	g := &serializationGraph{}
	accesses := make(map[txn.ItemID][]itemAccess)

	logIndex := 0
	for _, b := range blocks {
		for i := range b.Txns {
			rec := &b.Txns[i]
			node := len(g.nodes)
			g.nodes = append(g.nodes, graphNode{
				id: rec.TxnID, ts: rec.TS, logIndex: logIndex, height: int64(b.Height),
			})
			logIndex++
			for _, r := range rec.Reads {
				g.connect(accesses, r.ID, itemAccess{node: node, kind: accessRead})
			}
			for _, w := range rec.Writes {
				g.connect(accesses, w.ID, itemAccess{node: node, kind: accessWrite})
			}
		}
	}
	return g
}

// connect adds edges between the new access and every earlier conflicting
// access of the same item, then records the access.
func (g *serializationGraph) connect(accesses map[txn.ItemID][]itemAccess, item txn.ItemID, na itemAccess) {
	for _, prev := range accesses[item] {
		if prev.node == na.node {
			continue
		}
		if prev.kind == accessRead && na.kind == accessRead {
			continue // read-read never conflicts
		}
		u, v := prev.node, na.node
		switch g.nodes[u].ts.Compare(g.nodes[v].ts) {
		case -1:
			g.edges = append(g.edges, graphEdge{from: u, to: v, item: item})
		case 1:
			g.edges = append(g.edges, graphEdge{from: v, to: u, item: item})
		default:
			g.duplicateTS = append(g.duplicateTS, duplicateTS{
				a: g.nodes[u].id, b: g.nodes[v].id, ts: g.nodes[u].ts,
				item: item, height: g.nodes[v].height,
			})
		}
	}
	accesses[item] = append(accesses[item], na)
}
