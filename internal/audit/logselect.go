package audit

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/identity"
	"repro/internal/ledger"
)

// selectAuthoritative verifies every served log and identifies the correct
// and complete log (paper §3.3 step ii, Lemmas 6 and 7): each log's hash
// pointers and collective signatures are checked block by block; among the
// valid logs, the longest is authoritative (at least one server is assumed
// correct and failure-free, so the longest valid log is the complete one);
// valid logs that are strict prefixes are incomplete; valid logs that
// diverge are forks.
func (a *Auditor) selectAuthoritative(logs map[identity.NodeID][]*ledger.Block, report *Report) {
	type valid struct {
		id     identity.NodeID
		blocks []*ledger.Block
	}
	var candidates []valid

	for _, id := range a.servers {
		blocks, ok := logs[id]
		if !ok {
			continue // already reported unauditable
		}
		at, err := ledger.VerifyChainWith(a.cosigVerifier(), blocks)
		if err != nil {
			report.Findings = append(report.Findings, classifyChainError(a, id, at, err))
			// The valid prefix before the break still participates in
			// authoritative selection: a tampered tail must not suppress
			// evidence held in the intact prefix.
			if at > 0 {
				candidates = append(candidates, valid{id: id, blocks: blocks[:at]})
			}
			continue
		}
		candidates = append(candidates, valid{id: id, blocks: blocks})
	}
	if len(candidates) == 0 {
		report.Findings = append(report.Findings, Finding{
			Type:    FindingUnauditable,
			Servers: append([]identity.NodeID(nil), a.servers...),
			Height:  -1,
			Detail:  "no server produced a verifiable log",
		})
		return
	}

	// Longest valid log wins; ties broken by server id for determinism.
	best := candidates[0]
	for _, c := range candidates[1:] {
		if len(c.blocks) > len(best.blocks) || (len(c.blocks) == len(best.blocks) && c.id < best.id) {
			best = c
		}
	}
	report.Authoritative = best.blocks
	report.AuthoritativeFrom = best.id

	// Compare every other valid log against the authoritative one.
	for _, c := range candidates {
		if c.id == best.id {
			continue
		}
		divergeAt := -1
		limit := len(c.blocks)
		if len(best.blocks) < limit {
			limit = len(best.blocks)
		}
		for i := 0; i < limit; i++ {
			if !bytes.Equal(c.blocks[i].Hash(), best.blocks[i].Hash()) {
				divergeAt = i
				break
			}
		}
		switch {
		case divergeAt >= 0:
			// Two collectively signed logs for the same history cannot
			// diverge unless block production itself equivocated (Lemma 5).
			report.Findings = append(report.Findings, Finding{
				Type:    FindingForkedLog,
				Servers: a.implicated([]identity.NodeID{c.id}, true),
				Height:  int64(divergeAt),
				Detail: fmt.Sprintf("log of %s diverges from authoritative log (from %s) at height %d",
					c.id, best.id, divergeAt),
			})
		case len(c.blocks) < len(best.blocks):
			// A strict prefix: omitted tail (Lemma 7).
			report.Findings = append(report.Findings, Finding{
				Type:    FindingIncompleteLog,
				Servers: []identity.NodeID{c.id},
				Height:  int64(len(c.blocks)),
				Detail: fmt.Sprintf("log of %s has %d blocks; authoritative log has %d (missing tail)",
					c.id, len(c.blocks), len(best.blocks)),
			})
		}
	}
}

// classifyChainError turns a chain-verification failure into a finding.
func classifyChainError(a *Auditor, id identity.NodeID, at int, err error) Finding {
	f := Finding{
		Servers: []identity.NodeID{id},
		Height:  int64(at),
		Detail:  fmt.Sprintf("log of %s fails verification at block %d: %v", id, at, err),
	}
	switch {
	case errors.Is(err, ledger.ErrChainPrevHash), errors.Is(err, ledger.ErrChainHeight):
		// Broken hash pointers: blocks were reordered or spliced (Lemma 6).
		f.Type = FindingReorderedLog
	case errors.Is(err, ledger.ErrChainCoSig), errors.Is(err, ledger.ErrChainSigners):
		// An unverifiable collective signature means the block content was
		// manipulated after signing — or was never collectively signed at
		// all, the footprint of an accepted equivocation branch (Lemma 5).
		f.Type = FindingTamperedLog
		f.Servers = a.implicated(f.Servers, true)
	default:
		f.Type = FindingTamperedLog
	}
	return f
}
