package audit

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/txn"
)

// faultyHistory is a 5-block history whose only anomaly (an incorrect read)
// sits in the second half, so a replay resumed from a mid-history
// checkpoint must still surface it.
func faultyHistory() *Report {
	blocks := chainBlocks(
		writeBlock("t1", 10, "x", "0", "one", txn.Timestamp{}),
		readBlock("t2", 20, "x", "one", txn.Timestamp{}, ts(10)),
		writeBlock("t3", 30, "u", "0", "u-one", txn.Timestamp{}),
		readBlock("t4", 40, "x", "stale", txn.Timestamp{}, ts(10)),
		readBlock("t5", 50, "u", "u-one", txn.Timestamp{}, ts(30)),
	)
	return &Report{Authoritative: blocks}
}

// TestResumeEquivalence is the audit-checkpoint-reuse contract: a full
// audit resumed from a checkpoint must report exactly the findings a
// from-genesis replay reports for the blocks above the checkpoint. The
// checkpoint crosses a JSON round-trip on the way, as it does when
// fides-watch persists it to disk for a later offline audit.
func TestResumeEquivalence(t *testing.T) {
	a := testAuditor()

	full := faultyHistory()
	if err := a.replayLog(full, nil); err != nil {
		t.Fatalf("full replay: %v", err)
	}
	if len(full.ByType(FindingIncorrectRead)) != 1 {
		t.Fatalf("full replay findings = %v, want one incorrect-read", full.Findings)
	}

	// Stream the clean prefix and checkpoint, like the watchtower does.
	rp := NewReplayer(a.dir, a.coord)
	prefix := faultyHistory().Authoritative[:3]
	for _, b := range prefix {
		if fs := rp.Step(b); len(fs) != 0 {
			t.Fatalf("clean prefix produced findings: %v", fs)
		}
	}
	raw, err := json.Marshal(rp.Checkpoint())
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		t.Fatalf("unmarshal checkpoint: %v", err)
	}
	if cp.Height != 3 {
		t.Fatalf("checkpoint height = %d, want 3", cp.Height)
	}

	resumed := faultyHistory()
	if err := a.replayLog(resumed, &cp); err != nil {
		t.Fatalf("resumed replay: %v", err)
	}
	if !reflect.DeepEqual(full.Findings, resumed.Findings) {
		t.Errorf("resumed findings diverge:\n full:    %v\n resumed: %v", full.Findings, resumed.Findings)
	}
}

// TestResumeRejectsForeignCheckpoint: a checkpoint taken on one history
// must not vouch for another — replayLog must refuse, not silently skip.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	a := testAuditor()

	rp := NewReplayer(a.dir, a.coord)
	for _, b := range faultyHistory().Authoritative[:3] {
		rp.Step(b)
	}
	cp := rp.Checkpoint()

	other := &Report{Authoritative: chainBlocks(
		writeBlock("q1", 11, "x", "0", "other", txn.Timestamp{}),
		writeBlock("q2", 21, "y", "0", "two", txn.Timestamp{}),
		writeBlock("q3", 31, "u", "0", "three", txn.Timestamp{}),
	)}
	err := a.replayLog(other, cp)
	if err == nil || !strings.Contains(err.Error(), "checkpoint hash mismatch") {
		t.Fatalf("foreign checkpoint accepted: err = %v", err)
	}

	short := &Report{Authoritative: faultyHistory().Authoritative[:2]}
	if err := a.replayLog(short, cp); err == nil {
		t.Fatal("checkpoint beyond log length accepted")
	}
}

// TestStreamingMatchesBatch: driving the Replayer block-by-block (the
// watchtower's mode) yields the same findings as one full replay.
func TestStreamingMatchesBatch(t *testing.T) {
	a := testAuditor()
	batch := faultyHistory()
	if err := a.replayLog(batch, nil); err != nil {
		t.Fatalf("batch replay: %v", err)
	}

	rp := NewReplayer(a.dir, a.coord)
	var streamed []Finding
	for _, b := range faultyHistory().Authoritative {
		streamed = append(streamed, rp.Step(b)...)
	}
	// The batch replay appends the (empty here) graph findings after the
	// per-block ones, so prefix comparison is exact.
	if !reflect.DeepEqual(batch.Findings, streamed) {
		t.Errorf("streamed findings diverge:\n batch:    %v\n streamed: %v", batch.Findings, streamed)
	}
	if rp.Height() != 5 {
		t.Errorf("replayer height = %d, want 5", rp.Height())
	}
	if v, ok := rp.Lookup("u"); !ok || string(v.Value) != "u-one" {
		t.Errorf("shadow state for u = %+v, %v", v, ok)
	}
	items := rp.KnownItems()
	if len(items) != 2 || items[0] != "u" || items[1] != "x" {
		t.Errorf("known items = %v", items)
	}
}
