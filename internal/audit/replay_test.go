package audit

import (
	"testing"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/store"
	"repro/internal/txn"
)

type mapDir map[txn.ItemID]identity.NodeID

func (d mapDir) Owner(id txn.ItemID) (identity.NodeID, bool) {
	o, ok := d[id]
	return o, ok
}

// testAuditor builds an auditor wired only for offline (replay) checks.
func testAuditor() *Auditor {
	return &Auditor{
		dir: mapDir{
			"x": "s0", "y": "s0",
			"u": "s1", "v": "s1",
		},
		coord:   "s0",
		servers: []identity.NodeID{"s0", "s1"},
	}
}

func ts(t uint64) txn.Timestamp { return txn.Timestamp{Time: t, ClientID: 1} }

// chainBlocks links the given blocks with hash pointers and heights.
func chainBlocks(blocks ...*ledger.Block) []*ledger.Block {
	var prev []byte
	for i, b := range blocks {
		b.Height = uint64(i)
		b.PrevHash = prev
		if b.Decision == 0 {
			b.Decision = ledger.DecisionCommit
		}
		prev = b.Hash()
	}
	return blocks
}

func writeBlock(id string, at uint64, item txn.ItemID, oldVal, newVal string, oldTS txn.Timestamp) *ledger.Block {
	return &ledger.Block{
		Txns: []ledger.TxnRecord{{
			TxnID: id, TS: ts(at),
			Writes: []txn.WriteEntry{{
				ID: item, NewVal: []byte(newVal), OldVal: []byte(oldVal),
				Blind: true, RTS: oldTS, WTS: oldTS,
			}},
		}},
	}
}

func readBlock(id string, at uint64, item txn.ItemID, seen string, rts, wts txn.Timestamp) *ledger.Block {
	return &ledger.Block{
		Txns: []ledger.TxnRecord{{
			TxnID: id, TS: ts(at),
			Reads: []txn.ReadEntry{{ID: item, Value: []byte(seen), RTS: rts, WTS: wts}},
		}},
	}
}

func TestReplayCleanHistory(t *testing.T) {
	a := testAuditor()
	report := &Report{Authoritative: chainBlocks(
		writeBlock("t1", 10, "x", "0", "one", txn.Timestamp{}),
		readBlock("t2", 20, "x", "one", txn.Timestamp{}, ts(10)),
		writeBlock("t3", 30, "x", "one", "three", ts(10)),
	)}
	// t3's observed pre-write wts must be ts(10).
	report.Authoritative[2].Txns[0].Writes[0].WTS = ts(10)
	a.replayLog(report, nil)
	if len(report.Findings) != 0 {
		t.Fatalf("clean history produced findings: %v", report.Findings)
	}
}

func TestReplayDetectsIncorrectRead(t *testing.T) {
	a := testAuditor()
	report := &Report{Authoritative: chainBlocks(
		writeBlock("t1", 10, "x", "0", "fresh", txn.Timestamp{}),
		readBlock("t2", 20, "x", "stale", txn.Timestamp{}, ts(10)),
	)}
	a.replayLog(report, nil)
	found := report.ByType(FindingIncorrectRead)
	if len(found) != 1 {
		t.Fatalf("findings = %v", report.Findings)
	}
	f := found[0]
	if f.Item != "x" || f.TxnID != "t2" || f.Height != 1 {
		t.Errorf("finding misattributed: %+v", f)
	}
	if len(f.Servers) != 1 || f.Servers[0] != "s0" {
		t.Errorf("finding implicates %v, want [s0] (owner of x)", f.Servers)
	}
}

func TestReplayDetectsStaleTimestamp(t *testing.T) {
	a := testAuditor()
	report := &Report{Authoritative: chainBlocks(
		writeBlock("t1", 10, "x", "0", "one", txn.Timestamp{}),
		// Correct value but a wts that lies about the writer.
		readBlock("t2", 20, "x", "one", txn.Timestamp{}, ts(4)),
	)}
	a.replayLog(report, nil)
	if len(report.ByType(FindingStaleTimestamp)) == 0 {
		t.Fatalf("findings = %v", report.Findings)
	}
}

func TestReplayDetectsTimestampOrderViolation(t *testing.T) {
	a := testAuditor()
	report := &Report{Authoritative: chainBlocks(
		writeBlock("t1", 50, "x", "0", "one", txn.Timestamp{}),
		// Committed later but with a smaller timestamp.
		writeBlock("t2", 20, "y", "0", "two", txn.Timestamp{}),
	)}
	a.replayLog(report, nil)
	if len(report.ByType(FindingSerializability)) == 0 {
		t.Fatalf("findings = %v", report.Findings)
	}
}

func TestReplayDetectsRWConflict(t *testing.T) {
	a := testAuditor()
	blocks := chainBlocks(
		writeBlock("t1", 50, "x", "0", "one", txn.Timestamp{}),
		readBlock("t2", 60, "x", "one", txn.Timestamp{}, ts(50)),
	)
	// Tamper the second txn's timestamp below the writer's: an RW conflict
	// (read of a future write) plus a commit-order violation.
	blocks[1].Txns[0].TS = ts(40)
	report := &Report{Authoritative: blocks}
	a.replayLog(report, nil)
	if len(report.ByType(FindingSerializability)) == 0 {
		t.Fatalf("findings = %v", report.Findings)
	}
}

func TestReplayDetectsIntraBlockConflict(t *testing.T) {
	a := testAuditor()
	b := &ledger.Block{
		Txns: []ledger.TxnRecord{
			{TxnID: "t1", TS: ts(10), Writes: []txn.WriteEntry{{ID: "x", NewVal: []byte("a"), Blind: true}}},
			{TxnID: "t2", TS: ts(11), Writes: []txn.WriteEntry{{ID: "x", NewVal: []byte("b"), Blind: true}}},
		},
	}
	report := &Report{Authoritative: chainBlocks(b)}
	a.replayLog(report, nil)
	if len(report.ByType(FindingSerializability)) == 0 {
		t.Fatalf("findings = %v", report.Findings)
	}
}

func TestReplayFlagsLoggedAbort(t *testing.T) {
	a := testAuditor()
	b := writeBlock("t1", 10, "x", "0", "one", txn.Timestamp{})
	b.Decision = ledger.DecisionAbort
	report := &Report{Authoritative: chainBlocks(b)}
	// chainBlocks only defaults unset decisions; force abort again.
	report.Authoritative[0].Decision = ledger.DecisionAbort
	a.replayLog(report, nil)
	if len(report.ByType(FindingTamperedLog)) == 0 {
		t.Fatalf("logged abort block not flagged: %v", report.Findings)
	}
}

func TestReplayDerivesDatastoreTargets(t *testing.T) {
	a := testAuditor()
	b := writeBlock("t1", 10, "x", "0", "one", txn.Timestamp{})
	b.Roots = map[identity.NodeID][]byte{"s0": []byte("root-s0")}
	report := &Report{Authoritative: chainBlocks(b)}
	a.replayLog(report, nil)
	targets := report.dsTargets
	if len(targets) != 1 {
		t.Fatalf("targets = %d, want 1", len(targets))
	}
	tg := targets[0]
	if tg.server != "s0" || tg.item != "x" || tg.height != 0 {
		t.Errorf("target = %+v", tg)
	}
	// The expected leaf is derived purely from the log: value "one",
	// rts unchanged (blind write), wts = commit ts.
	want := store.LeafContent("x", []byte("one"), txn.Timestamp{}, ts(10))
	if string(tg.leaf) != string(want) {
		t.Errorf("leaf = %x, want %x", tg.leaf, want)
	}
}

func TestLatestTargetPerServer(t *testing.T) {
	targets := []dsTarget{
		{server: "s0", height: 1},
		{server: "s0", height: 5},
		{server: "s1", height: 2},
	}
	latest := latestTargetPerServer(targets)
	if len(latest) != 2 {
		t.Fatalf("latest = %d entries", len(latest))
	}
	for _, tg := range latest {
		if tg.server == "s0" && tg.height != 5 {
			t.Errorf("s0 latest height = %d, want 5", tg.height)
		}
	}
}

func TestReportHelpers(t *testing.T) {
	r := &Report{Findings: []Finding{
		{Type: FindingIncorrectRead, Height: 7, Servers: []identity.NodeID{"s1"}},
		{Type: FindingTamperedLog, Height: 2, Servers: []identity.NodeID{"s0"}},
		{Type: FindingUnauditable, Height: -1, Servers: []identity.NodeID{"s2"}},
	}}
	if r.Clean() {
		t.Error("report with findings is clean")
	}
	if fv := r.FirstViolation(); fv == nil || fv.Height != 2 {
		t.Errorf("first violation = %+v, want height 2", fv)
	}
	if !r.Implicates("s1") || r.Implicates("s9") {
		t.Error("Implicates wrong")
	}
	if len(r.ByType(FindingTamperedLog)) != 1 {
		t.Error("ByType wrong")
	}
	if (&Report{}).FirstViolation() != nil {
		t.Error("empty report has a first violation")
	}
}
