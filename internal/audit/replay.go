package audit

import (
	"bytes"
	"fmt"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/store"
	"repro/internal/txn"
)

// itemState is the auditor's authoritative view of one data item while it
// replays the log: the latest committed value and timestamps, derived
// purely from the read/write sets recorded in blocks (Table 1). "By
// traversing the log, at each entry, the auditor knows the most recent
// values of a given data item" (paper §4.2.2).
type itemState struct {
	known   bool // value established by a logged write or baselined read
	tsKnown bool // timestamps established
	value   []byte
	rts     txn.Timestamp
	wts     txn.Timestamp
}

// dsTarget is one datastore-audit obligation derived from the replay: after
// the block at Height, server Server's shard must authenticate item Item
// with leaf content Leaf against the root the block recorded for Server.
type dsTarget struct {
	height    uint64
	server    identity.NodeID
	item      txn.ItemID
	leaf      []byte
	root      []byte
	versionTS txn.Timestamp
}

// replayLog traverses the authoritative log, performing the Lemma 1 read
// checks, the Lemma 3 conflict checks, and the serialization-graph cycle
// check, and collecting the per-block datastore-audit targets for Lemma 2.
func (a *Auditor) replayLog(report *Report) []dsTarget {
	state := make(map[txn.ItemID]*itemState)
	var targets []dsTarget
	var prevMax txn.Timestamp

	for _, b := range report.Authoritative {
		if b.Decision != ledger.DecisionCommit {
			report.Findings = append(report.Findings, Finding{
				Type:    FindingTamperedLog,
				Servers: a.implicated(nil, true),
				Height:  int64(b.Height),
				Detail:  fmt.Sprintf("logged block %d has decision %s; only committed blocks are logged", b.Height, b.Decision),
			})
		}
		a.checkIntraBlockConflicts(report, b)

		// Validate every transaction against the pre-block state, then
		// apply all updates at once: within a block, cohorts validated
		// against the state before the block (paper §4.6: the batch is
		// non-conflicting).
		pending := make(map[txn.ItemID]*itemState)
		for i := range b.Txns {
			rec := &b.Txns[i]
			a.checkTimestampOrder(report, b, rec, prevMax)
			a.checkReads(report, b, rec, state)
			a.checkWrites(report, b, rec, state)
			a.applyTxn(pending, state, rec)
		}
		for id, p := range pending {
			state[id] = p
		}
		prevMax = prevMax.Max(b.MaxTS())

		targets = append(targets, a.datastoreTargets(b, state)...)
	}

	a.checkSerializationGraph(report)
	report.dsTargets = targets
	return targets
}

// checkTimestampOrder enforces the commit-order/timestamp-order agreement:
// servers ignore end_transaction requests with a timestamp lower than the
// latest committed timestamp (paper §4.3.1), so every logged transaction
// must carry a timestamp above everything before it.
func (a *Auditor) checkTimestampOrder(report *Report, b *ledger.Block, rec *ledger.TxnRecord, prevMax txn.Timestamp) {
	if !prevMax.Less(rec.TS) {
		report.Findings = append(report.Findings, Finding{
			Type:    FindingSerializability,
			Servers: a.implicated(a.ownersOfRecord(rec), true),
			Height:  int64(b.Height),
			TxnID:   rec.TxnID,
			Detail: fmt.Sprintf("txn %s committed at %s, not after the latest committed timestamp %s",
				rec.TxnID, rec.TS, prevMax),
		})
	}
}

// checkReads performs the Lemma 1 verification: the read value of an item
// must reflect the latest value written in the log, and the recorded
// timestamps must match the authoritative ones.
func (a *Auditor) checkReads(report *Report, b *ledger.Block, rec *ledger.TxnRecord, state map[txn.ItemID]*itemState) {
	for _, r := range rec.Reads {
		st, ok := state[r.ID]
		if !ok {
			// First appearance in the log: the recorded observation is the
			// baseline (the auditor cannot know pre-history).
			state[r.ID] = &itemState{
				known: true, tsKnown: true,
				value: r.Value, rts: r.RTS, wts: r.WTS,
			}
			continue
		}
		if st.known && !bytes.Equal(st.value, r.Value) {
			report.Findings = append(report.Findings, Finding{
				Type:    FindingIncorrectRead,
				Servers: a.ownersOf(r.ID),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    r.ID,
				Detail: fmt.Sprintf("txn %s read %q for item %s; the latest committed value is %q",
					rec.TxnID, r.Value, r.ID, st.value),
			})
		}
		if st.tsKnown && st.wts != r.WTS {
			report.Findings = append(report.Findings, Finding{
				Type:    FindingStaleTimestamp,
				Servers: a.ownersOf(r.ID),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    r.ID,
				Detail: fmt.Sprintf("txn %s observed wts %s for item %s; authoritative wts is %s",
					rec.TxnID, r.WTS, r.ID, st.wts),
			})
		}
		// RW conflict (Lemma 3): a transaction with a smaller timestamp
		// read a data item already written at a larger timestamp.
		if st.tsKnown && rec.TS.Less(st.wts) {
			report.Findings = append(report.Findings, Finding{
				Type:    FindingSerializability,
				Servers: a.implicated(a.ownersOf(r.ID), true),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    r.ID,
				Detail: fmt.Sprintf("RW conflict: txn %s (ts %s) read item %s already written at %s",
					rec.TxnID, rec.TS, r.ID, st.wts),
			})
		}
	}
}

// checkWrites performs the Lemma 3 WW and WR conflict checks and validates
// blind-write baselines.
func (a *Auditor) checkWrites(report *Report, b *ledger.Block, rec *ledger.TxnRecord, state map[txn.ItemID]*itemState) {
	for _, w := range rec.Writes {
		st, ok := state[w.ID]
		if !ok {
			st = &itemState{}
			if w.Blind {
				// Table 1: old_val (with rts/wts) is recorded for blind
				// writes; it baselines the item's pre-state.
				st.known = true
				st.tsKnown = true
				st.value = w.OldVal
				st.rts = w.RTS
				st.wts = w.WTS
			}
			state[w.ID] = st
			continue
		}
		if st.tsKnown && st.wts != w.WTS {
			report.Findings = append(report.Findings, Finding{
				Type:    FindingStaleTimestamp,
				Servers: a.ownersOf(w.ID),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    w.ID,
				Detail: fmt.Sprintf("txn %s observed wts %s when writing item %s; authoritative wts is %s",
					rec.TxnID, w.WTS, w.ID, st.wts),
			})
		}
		if st.tsKnown && rec.TS.Less(st.wts) {
			// WW conflict: writing below an existing write timestamp.
			report.Findings = append(report.Findings, Finding{
				Type:    FindingSerializability,
				Servers: a.implicated(a.ownersOf(w.ID), true),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    w.ID,
				Detail: fmt.Sprintf("WW conflict: txn %s (ts %s) wrote item %s already written at %s",
					rec.TxnID, rec.TS, w.ID, st.wts),
			})
		}
		if st.tsKnown && rec.TS.Less(st.rts) {
			// WR conflict: writing below an existing read timestamp.
			report.Findings = append(report.Findings, Finding{
				Type:    FindingSerializability,
				Servers: a.implicated(a.ownersOf(w.ID), true),
				Height:  int64(b.Height),
				TxnID:   rec.TxnID,
				Item:    w.ID,
				Detail: fmt.Sprintf("WR conflict: txn %s (ts %s) wrote item %s already read at %s",
					rec.TxnID, rec.TS, w.ID, st.rts),
			})
		}
	}
}

// applyTxn folds a transaction's effects into the pending post-block state:
// reads advance rts, writes install the value and advance wts (paper §4.1
// step 7).
func (a *Auditor) applyTxn(pending map[txn.ItemID]*itemState, state map[txn.ItemID]*itemState, rec *ledger.TxnRecord) {
	load := func(id txn.ItemID) *itemState {
		if p, ok := pending[id]; ok {
			return p
		}
		p := &itemState{}
		if st, ok := state[id]; ok {
			*p = *st
		}
		pending[id] = p
		return p
	}
	for _, r := range rec.Reads {
		p := load(r.ID)
		if p.rts.Less(rec.TS) {
			p.rts = rec.TS
		}
		p.tsKnown = true
	}
	for _, w := range rec.Writes {
		p := load(w.ID)
		p.value = w.NewVal
		p.known = true
		p.tsKnown = true
		if p.wts.Less(rec.TS) {
			p.wts = rec.TS
		}
	}
}

// checkIntraBlockConflicts flags blocks whose transactions conflict with
// each other: the coordinator must pack only non-conflicting transactions
// into a block (paper §4.6), and cohorts validate against pre-block state,
// so a conflicting batch would commit unserializable effects.
func (a *Auditor) checkIntraBlockConflicts(report *Report, b *ledger.Block) {
	readers := make(map[txn.ItemID]string)
	writers := make(map[txn.ItemID]string)
	for i := range b.Txns {
		rec := &b.Txns[i]
		for _, r := range rec.Reads {
			if other, ok := writers[r.ID]; ok && other != rec.TxnID {
				a.reportIntraBlock(report, b, rec.TxnID, other, r.ID)
			}
		}
		for _, w := range rec.Writes {
			if other, ok := writers[w.ID]; ok && other != rec.TxnID {
				a.reportIntraBlock(report, b, rec.TxnID, other, w.ID)
			}
			if other, ok := readers[w.ID]; ok && other != rec.TxnID {
				a.reportIntraBlock(report, b, rec.TxnID, other, w.ID)
			}
		}
		for _, r := range rec.Reads {
			readers[r.ID] = rec.TxnID
		}
		for _, w := range rec.Writes {
			writers[w.ID] = rec.TxnID
		}
	}
}

func (a *Auditor) reportIntraBlock(report *Report, b *ledger.Block, txnID, other string, item txn.ItemID) {
	report.Findings = append(report.Findings, Finding{
		Type:    FindingSerializability,
		Servers: a.implicated(a.ownersOf(item), true),
		Height:  int64(b.Height),
		TxnID:   txnID,
		Item:    item,
		Detail: fmt.Sprintf("block %d packs conflicting transactions %s and %s on item %s",
			b.Height, txnID, other, item),
	})
}

// datastoreTargets derives, for each server whose root the block records,
// one item whose post-block leaf the auditor can reconstruct from the log,
// to be checked against the served VO (Lemma 2).
func (a *Auditor) datastoreTargets(b *ledger.Block, state map[txn.ItemID]*itemState) []dsTarget {
	chosen := make(map[identity.NodeID]txn.ItemID, len(b.Roots))
	consider := func(id txn.ItemID, written bool) {
		owner, ok := a.dir.Owner(id)
		if !ok {
			return
		}
		if _, hasRoot := b.Roots[owner]; !hasRoot {
			return
		}
		if _, already := chosen[owner]; already && !written {
			return // prefer written items: their value is in the block
		}
		chosen[owner] = id
	}
	for i := range b.Txns {
		for _, r := range b.Txns[i].Reads {
			consider(r.ID, false)
		}
		for _, w := range b.Txns[i].Writes {
			consider(w.ID, true)
		}
	}
	targets := make([]dsTarget, 0, len(chosen))
	for server, item := range chosen {
		st := state[item]
		if st == nil || !st.known {
			continue
		}
		targets = append(targets, dsTarget{
			height:    b.Height,
			server:    server,
			item:      item,
			leaf:      store.LeafContent(item, st.value, st.rts, st.wts),
			root:      b.Roots[server],
			versionTS: b.MaxTS(),
		})
	}
	return targets
}

// ownersOf resolves the owner of an item into a finding's server list.
func (a *Auditor) ownersOf(id txn.ItemID) []identity.NodeID {
	if owner, ok := a.dir.Owner(id); ok {
		return []identity.NodeID{owner}
	}
	return nil
}

// ownersOfRecord resolves the owners of every item a transaction touched.
func (a *Auditor) ownersOfRecord(rec *ledger.TxnRecord) []identity.NodeID {
	set := make(map[identity.NodeID]struct{})
	for _, r := range rec.Reads {
		if owner, ok := a.dir.Owner(r.ID); ok {
			set[owner] = struct{}{}
		}
	}
	for _, w := range rec.Writes {
		if owner, ok := a.dir.Owner(w.ID); ok {
			set[owner] = struct{}{}
		}
	}
	out := make([]identity.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}
