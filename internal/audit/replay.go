package audit

import (
	"bytes"
	"fmt"

	"repro/internal/identity"
	"repro/internal/txn"
)

// itemState is the auditor's authoritative view of one data item while it
// replays the log: the latest committed value and timestamps, derived
// purely from the read/write sets recorded in blocks (Table 1). "By
// traversing the log, at each entry, the auditor knows the most recent
// values of a given data item" (paper §4.2.2).
type itemState struct {
	known   bool // value established by a logged write or baselined read
	tsKnown bool // timestamps established
	value   []byte
	rts     txn.Timestamp
	wts     txn.Timestamp
}

// dsTarget is one datastore-audit obligation derived from the replay: after
// the block at Height, server Server's shard must authenticate item Item
// with leaf content Leaf against the root the block recorded for Server.
type dsTarget struct {
	height    uint64
	server    identity.NodeID
	item      txn.ItemID
	leaf      []byte
	root      []byte
	versionTS txn.Timestamp
}

// replayLog traverses the authoritative log through a streaming Replayer,
// performing the Lemma 1 read checks and the Lemma 3 conflict checks,
// collecting the per-block datastore-audit targets for Lemma 2, and then
// running the global serialization-graph cycle check.
//
// When resume is non-nil the replay starts from the checkpoint instead of
// genesis: the checkpoint's hash is validated against the authoritative log
// at its height (a checkpoint taken on a different history must not vouch
// for this one), then only blocks at or above the checkpoint height are
// replayed. The graph check still spans the full log — it is pure local
// CPU over blocks already fetched, and conflict edges may cross the
// checkpoint boundary.
func (a *Auditor) replayLog(report *Report, resume *Checkpoint) error {
	rp := NewReplayer(a.dir, a.coord)
	start := 0
	if resume != nil {
		n := int(resume.Height)
		if n > len(report.Authoritative) {
			return fmt.Errorf("audit: checkpoint height %d exceeds authoritative log length %d",
				resume.Height, len(report.Authoritative))
		}
		if n > 0 && !bytes.Equal(report.Authoritative[n-1].Hash(), resume.Hash) {
			return fmt.Errorf("audit: checkpoint hash mismatch at height %d: the checkpoint was taken on a different history",
				resume.Height-1)
		}
		rp = ResumeReplayer(a.dir, a.coord, resume)
		start = n
	}

	var targets []dsTarget
	for _, b := range report.Authoritative[start:] {
		report.Findings = append(report.Findings, rp.Step(b)...)
		targets = append(targets, rp.datastoreTargets(b)...)
	}

	a.checkSerializationGraph(report)
	report.dsTargets = targets
	return nil
}
