package schnorr

import (
	"math/big"
	"testing"
)

func TestSignVerify(t *testing.T) {
	priv, err := GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the quick brown fox")
	sig, err := Sign(nil, priv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(priv.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	priv, _ := GenerateKey(nil)
	sig, _ := Sign(nil, priv, []byte("msg-a"))
	if Verify(priv.Public, []byte("msg-b"), sig) {
		t.Error("signature verified for a different message")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	priv1, _ := GenerateKey(nil)
	priv2, _ := GenerateKey(nil)
	msg := []byte("msg")
	sig, _ := Sign(nil, priv1, msg)
	if Verify(priv2.Public, msg, sig) {
		t.Error("signature verified under a different key")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	priv, _ := GenerateKey(nil)
	msg := []byte("msg")
	sig, _ := Sign(nil, priv, msg)

	badC := Signature{C: new(big.Int).Add(sig.C, big.NewInt(1)), S: sig.S}
	if Verify(priv.Public, msg, badC) {
		t.Error("tampered challenge verified")
	}
	badS := Signature{C: sig.C, S: new(big.Int).Add(sig.S, big.NewInt(1))}
	if Verify(priv.Public, msg, badS) {
		t.Error("tampered response verified")
	}
	if Verify(priv.Public, msg, Signature{}) {
		t.Error("empty signature verified")
	}
	huge := new(big.Int).Lsh(big.NewInt(1), 512)
	if Verify(priv.Public, msg, Signature{C: sig.C, S: huge}) {
		t.Error("out-of-range scalar accepted")
	}
}

func TestSignatureBytesRoundTrip(t *testing.T) {
	priv, _ := GenerateKey(nil)
	msg := []byte("round trip")
	sig, _ := Sign(nil, priv, msg)
	cb, sb := sig.Bytes()
	restored := SignatureFromBytes(cb, sb)
	if !Verify(priv.Public, msg, restored) {
		t.Error("round-tripped signature rejected")
	}
	var zero Signature
	if !zero.IsZero() {
		t.Error("zero signature not IsZero")
	}
	if cb, sb := zero.Bytes(); cb != nil || sb != nil {
		t.Error("zero signature bytes not nil")
	}
}

func TestPointArithmetic(t *testing.T) {
	inf := Infinity()
	if !inf.IsInfinity() || !inf.OnCurve() {
		t.Fatal("infinity misclassified")
	}
	k1 := big.NewInt(3)
	k2 := big.NewInt(5)
	p1 := BaseMult(k1)
	p2 := BaseMult(k2)
	// 3G + 5G == 8G.
	sum := p1.Add(p2)
	if !sum.Equal(BaseMult(big.NewInt(8))) {
		t.Error("3G + 5G != 8G")
	}
	// P + 0 == P, 0 + P == P.
	if !p1.Add(inf).Equal(p1) || !inf.Add(p1).Equal(p1) {
		t.Error("identity addition broken")
	}
	// P + (−P) == 0.
	if !p1.Add(p1.Neg()).IsInfinity() {
		t.Error("P + (−P) != 0")
	}
	// k·(mG) == (km)·G.
	if !p1.ScalarMult(k2).Equal(BaseMult(big.NewInt(15))) {
		t.Error("scalar mult mismatch")
	}
	// 0·P == infinity.
	if !p1.ScalarMult(new(big.Int)).IsInfinity() {
		t.Error("0·P != infinity")
	}
}

func TestPointMarshalRoundTrip(t *testing.T) {
	p := BaseMult(big.NewInt(42))
	q, err := UnmarshalPoint(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Error("marshal round trip mismatch")
	}
	inf, err := UnmarshalPoint(Infinity().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !inf.IsInfinity() {
		t.Error("infinity round trip mismatch")
	}
	if _, err := UnmarshalPoint([]byte{4, 1, 2, 3}); err == nil {
		t.Error("garbage point accepted")
	}
	// A point not on the curve must be rejected.
	bad := append([]byte(nil), p.Marshal()...)
	bad[len(bad)-1] ^= 1
	if _, err := UnmarshalPoint(bad); err == nil {
		t.Error("off-curve point accepted")
	}
}

func TestHashToScalarInjectivityOfFraming(t *testing.T) {
	// ("ab", "c") and ("a", "bc") must hash differently thanks to length
	// prefixes.
	h1 := HashToScalar([]byte("ab"), []byte("c"))
	h2 := HashToScalar([]byte("a"), []byte("bc"))
	if h1.Cmp(h2) == 0 {
		t.Error("length framing broken")
	}
	h3 := HashToScalar([]byte("ab"), []byte("c"))
	if h1.Cmp(h3) != 0 {
		t.Error("hash not deterministic")
	}
	if h1.Cmp(N()) >= 0 || h1.Sign() < 0 {
		t.Error("hash out of scalar range")
	}
}

func TestRandomScalarRange(t *testing.T) {
	for i := 0; i < 32; i++ {
		k, err := RandomScalar(nil)
		if err != nil {
			t.Fatal(err)
		}
		if k.Sign() <= 0 || k.Cmp(N()) >= 0 {
			t.Fatalf("scalar out of range: %v", k)
		}
	}
}

func TestRespondChallengeRelation(t *testing.T) {
	// s = v + c·x implies sG == V + cX.
	priv, _ := GenerateKey(nil)
	v, _ := RandomScalar(nil)
	commitment := BaseMult(v)
	c := Challenge(commitment, priv.Public.Point, []byte("record"))
	s := Respond(priv, v, c)
	left := BaseMult(s)
	right := commitment.Add(priv.Public.Point.ScalarMult(c))
	if !left.Equal(right) {
		t.Error("response does not satisfy the Schnorr relation")
	}
}
