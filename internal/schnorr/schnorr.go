// Package schnorr implements Schnorr signatures (paper §2.1–2.2, [38]) over
// the NIST P-256 elliptic-curve group, using only the standard library. It
// provides the group arithmetic, key generation, and single-signer
// sign/verify that the collective-signing protocol (package cosi) is built
// from.
//
// A signature is the pair (c, s) where, for secret key x, public key X = xG,
// random nonce v and commitment V = vG:
//
//	c = H(V ‖ X ‖ m)   (the challenge)
//	s = v + c·x mod N  (the response)
//
// Verification recomputes V' = sG − cX and accepts iff H(V' ‖ X ‖ m) = c.
// This is the textbook Schnorr scheme; CoSi aggregates the V and s values of
// many signers so the collective signature keeps this exact form and
// verification cost (paper §2.2).
//
// This implementation targets protocol reproduction, not side-channel
// resistance: scalar arithmetic uses math/big and is not constant-time.
package schnorr

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// curve is the group all keys and signatures live in.
var curve = elliptic.P256()

// N returns the (prime) order of the group.
func N() *big.Int { return new(big.Int).Set(curve.Params().N) }

// Point is an elliptic-curve point in affine coordinates. The identity
// (point at infinity) is represented as (0, 0), matching crypto/elliptic.
type Point struct {
	X, Y *big.Int
}

// Infinity returns the identity element of the group.
func Infinity() Point {
	return Point{X: new(big.Int), Y: new(big.Int)}
}

// IsInfinity reports whether p is the identity element.
func (p Point) IsInfinity() bool {
	return p.X == nil || p.Y == nil || (p.X.Sign() == 0 && p.Y.Sign() == 0)
}

// OnCurve reports whether p is a valid group element (on the curve or the
// identity). Receivers validate every point that arrives from the network.
func (p Point) OnCurve() bool {
	if p.X == nil || p.Y == nil {
		return false
	}
	if p.IsInfinity() {
		return true
	}
	return curve.IsOnCurve(p.X, p.Y)
}

// Equal reports whether p and q are the same point.
func (p Point) Equal(q Point) bool {
	if p.IsInfinity() || q.IsInfinity() {
		return p.IsInfinity() && q.IsInfinity()
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	if p.IsInfinity() {
		return q.clone()
	}
	if q.IsInfinity() {
		return p.clone()
	}
	x, y := curve.Add(p.X, p.Y, q.X, q.Y)
	return Point{X: x, Y: y}
}

// Neg returns −p.
func (p Point) Neg() Point {
	if p.IsInfinity() {
		return Infinity()
	}
	negY := new(big.Int).Sub(curve.Params().P, p.Y)
	negY.Mod(negY, curve.Params().P)
	return Point{X: new(big.Int).Set(p.X), Y: negY}
}

// ScalarMult returns k·p for scalar k.
func (p Point) ScalarMult(k *big.Int) Point {
	if p.IsInfinity() || k.Sign() == 0 {
		return Infinity()
	}
	kk := new(big.Int).Mod(k, curve.Params().N)
	if kk.Sign() == 0 {
		return Infinity()
	}
	x, y := curve.ScalarMult(p.X, p.Y, kk.Bytes())
	return Point{X: x, Y: y}
}

// BaseMult returns k·G for the group generator G.
func BaseMult(k *big.Int) Point {
	kk := new(big.Int).Mod(k, curve.Params().N)
	if kk.Sign() == 0 {
		return Infinity()
	}
	x, y := curve.ScalarBaseMult(kk.Bytes())
	return Point{X: x, Y: y}
}

func (p Point) clone() Point {
	if p.IsInfinity() {
		return Infinity()
	}
	return Point{X: new(big.Int).Set(p.X), Y: new(big.Int).Set(p.Y)}
}

// Marshal encodes the point in uncompressed SEC1 form (the identity encodes
// as a single zero byte).
func (p Point) Marshal() []byte {
	if p.IsInfinity() {
		return []byte{0}
	}
	return elliptic.Marshal(curve, p.X, p.Y)
}

// UnmarshalPoint decodes a point produced by Marshal, validating that it is
// on the curve.
func UnmarshalPoint(data []byte) (Point, error) {
	if len(data) == 1 && data[0] == 0 {
		return Infinity(), nil
	}
	x, y := elliptic.Unmarshal(curve, data)
	if x == nil {
		return Point{}, errors.New("schnorr: invalid point encoding")
	}
	return Point{X: x, Y: y}, nil
}

// PublicKey is a Schnorr verification key X = xG.
type PublicKey struct {
	Point
}

// PrivateKey is a Schnorr signing key.
type PrivateKey struct {
	// D is the secret scalar x.
	D *big.Int
	// Public is the corresponding verification key X = xG.
	Public PublicKey
}

// GenerateKey creates a fresh key pair reading randomness from rnd
// (crypto/rand.Reader if nil).
func GenerateKey(rnd io.Reader) (*PrivateKey, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	d, err := RandomScalar(rnd)
	if err != nil {
		return nil, fmt.Errorf("schnorr: generate key: %w", err)
	}
	return &PrivateKey{D: d, Public: PublicKey{BaseMult(d)}}, nil
}

// RandomScalar returns a uniformly random non-zero scalar in [1, N).
func RandomScalar(rnd io.Reader) (*big.Int, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	for {
		k, err := rand.Int(rnd, curve.Params().N)
		if err != nil {
			return nil, err
		}
		if k.Sign() != 0 {
			return k, nil
		}
	}
}

// HashToScalar hashes the concatenation of the given byte slices into a
// scalar mod N with a fixed domain-separation prefix. It implements the
// paper's ch = hash(X ‖ R) challenge computation (§2.2).
func HashToScalar(parts ...[]byte) *big.Int {
	h := sha256.New()
	h.Write([]byte("fides/schnorr/v1"))
	for _, p := range parts {
		var lenBuf [8]byte
		putUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	digest := h.Sum(nil)
	s := new(big.Int).SetBytes(digest)
	return s.Mod(s, curve.Params().N)
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// Signature is a Schnorr signature (c, s): the challenge and the response.
type Signature struct {
	C *big.Int
	S *big.Int
}

// Challenge computes c = H(V ‖ X ‖ m) binding a commitment, an (aggregate)
// public key, and a message.
func Challenge(commitment Point, pub Point, msg []byte) *big.Int {
	return HashToScalar(commitment.Marshal(), pub.Marshal(), msg)
}

// Respond computes the response s = v + c·x mod N for secret nonce v,
// challenge c and secret key x.
func Respond(priv *PrivateKey, nonce, challenge *big.Int) *big.Int {
	s := new(big.Int).Mul(challenge, priv.D)
	s.Add(s, nonce)
	return s.Mod(s, curve.Params().N)
}

// Sign produces a single-signer Schnorr signature over msg.
func Sign(rnd io.Reader, priv *PrivateKey, msg []byte) (Signature, error) {
	v, err := RandomScalar(rnd)
	if err != nil {
		return Signature{}, fmt.Errorf("schnorr: sign: %w", err)
	}
	commitment := BaseMult(v)
	c := Challenge(commitment, priv.Public.Point, msg)
	s := Respond(priv, v, c)
	return Signature{C: c, S: s}, nil
}

// Verify checks a signature produced by Sign (or an aggregated CoSi
// signature against the aggregate public key): it recomputes
// V' = sG − cX and accepts iff H(V' ‖ X ‖ m) = c.
func Verify(pub PublicKey, msg []byte, sig Signature) bool {
	if sig.C == nil || sig.S == nil || !pub.OnCurve() || pub.IsInfinity() {
		return false
	}
	n := curve.Params().N
	if sig.S.Sign() < 0 || sig.S.Cmp(n) >= 0 || sig.C.Sign() < 0 || sig.C.Cmp(n) >= 0 {
		return false
	}
	sG := BaseMult(sig.S)
	cX := pub.Point.ScalarMult(sig.C)
	vPrime := sG.Add(cX.Neg())
	c := Challenge(vPrime, pub.Point, msg)
	return c.Cmp(sig.C) == 0
}

// SignatureFromBytes reconstructs a Signature from the (c, s) byte encoding
// produced by Signature.Bytes.
func SignatureFromBytes(c, s []byte) Signature {
	return Signature{C: new(big.Int).SetBytes(c), S: new(big.Int).SetBytes(s)}
}

// Bytes returns the big-endian byte encodings of (c, s).
func (s Signature) Bytes() (cb, sb []byte) {
	if s.C == nil || s.S == nil {
		return nil, nil
	}
	return s.C.Bytes(), s.S.Bytes()
}

// IsZero reports whether the signature is unset.
func (s Signature) IsZero() bool { return s.C == nil || s.S == nil }
