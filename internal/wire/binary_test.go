package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/merkle"
	"repro/internal/txn"
)

// sampleBlock builds a fully populated block: several transactions with
// reads, writes and blind writes, roots, a decision, chain hash and
// co-sign material.
func sampleBlock(t *testing.T) *ledger.Block {
	t.Helper()
	big := bytes.Repeat([]byte("0123456789abcdef"), 256) // 4 KiB value
	b := &ledger.Block{
		Height: 42,
		Txns: []ledger.TxnRecord{
			{
				TxnID: "c01-t7",
				TS:    txn.Timestamp{Time: 99, ClientID: 3},
				Reads: []txn.ReadEntry{
					{ID: "s00-i0004", Value: []byte("v1"), RTS: txn.Timestamp{Time: 5, ClientID: 1}, WTS: txn.Timestamp{Time: 6, ClientID: 2}},
					{ID: "s01-i0000", Value: big},
				},
				Writes: []txn.WriteEntry{
					{ID: "s00-i0004", NewVal: []byte("v2"), RTS: txn.Timestamp{Time: 5, ClientID: 1}, WTS: txn.Timestamp{Time: 6, ClientID: 2}},
					{ID: "s02-i0009", NewVal: big, OldVal: []byte("old"), Blind: true, WTS: txn.Timestamp{Time: 1, ClientID: 9}},
				},
			},
			{TxnID: "c02-t1", TS: txn.Timestamp{Time: 100, ClientID: 4}},
		},
		Roots: map[identity.NodeID][]byte{
			"s00": bytes.Repeat([]byte{0xaa}, 32),
			"s01": bytes.Repeat([]byte{0xbb}, 32),
		},
		Decision: ledger.DecisionCommit,
		PrevHash: bytes.Repeat([]byte{0x11}, 32),
		Signers:  []identity.NodeID{"s00", "s01", "s02"},
		CoSigC:   bytes.Repeat([]byte{0x22}, 32),
		CoSigS:   bytes.Repeat([]byte{0x33}, 32),
	}
	return b
}

func sampleEnvelope() identity.Envelope {
	return identity.Envelope{
		From:    "c01",
		Payload: []byte("signed transaction bytes"),
		Sig:     bytes.Repeat([]byte{0x44}, 64),
	}
}

// roundTrip encodes msg, decodes into a zero value of the same type, and
// compares.
func roundTrip(t *testing.T, msg binaryMessage) {
	t.Helper()
	data := msg.AppendBinary(nil)
	out := reflect.New(reflect.TypeOf(msg).Elem()).Interface().(binaryMessage)
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatalf("%T: decode: %v", msg, err)
	}
	if !reflect.DeepEqual(msg, out) {
		t.Fatalf("%T round trip mismatch:\n in: %#v\nout: %#v", msg, msg, out)
	}
	// The self-describing header must route the same bytes to the same
	// concrete type.
	decoded, err := Decode(data)
	if err != nil {
		t.Fatalf("%T: Decode: %v", msg, err)
	}
	if !reflect.DeepEqual(msg, decoded) {
		t.Fatalf("%T: Decode produced %#v", msg, decoded)
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	big := bytes.Repeat([]byte("x"), 8<<10)
	block := sampleBlock(t)
	env := sampleEnvelope()
	msgs := []binaryMessage{
		&BeginTxnReq{TxnID: "c01-t1"},
		&BeginTxnResp{OK: true},
		&ReadReq{TxnID: "c01-t1", ID: "s00-i0001"},
		&ReadResp{Value: big, RTS: txn.Timestamp{Time: 1, ClientID: 2}, WTS: txn.Timestamp{Time: 3, ClientID: 4}},
		&WriteReq{TxnID: "c01-t1", ID: "s00-i0001", Value: []byte("v")},
		&WriteResp{OldVal: []byte("old"), RTS: txn.Timestamp{Time: 1, ClientID: 2}},
		&EndTxnReq{TxnEnvelope: env},
		&EndTxnResp{Committed: true, Block: block},
		&EndTxnResp{Rejected: true, LatestTS: txn.Timestamp{Time: 9, ClientID: 1}},
		&GetVoteReq{Block: block, ClientReqs: []identity.Envelope{env, env}},
		&GetVoteReq{Block: block, ClientReqs: []identity.Envelope{{}}}, // degenerate empty envelope

		&VoteResp{Vote: ledger.DecisionCommit, Involved: true, Root: bytes.Repeat([]byte{1}, 32), Commitment: bytes.Repeat([]byte{2}, 65), TxnAborts: []int{0, 3}},
		&ChallengeReq{Challenge: []byte{9, 9}, AggCommitment: []byte{8}, Block: block},
		&ChallengeResp{Response: []byte{7, 7, 7}},
		&DecisionReq{Block: block},
		&DecisionResp{OK: true},
		&PrepareReq{Block: block, ClientReqs: []identity.Envelope{env}},
		&PrepareResp{Vote: ledger.DecisionAbort},
		&TwoPCDecisionReq{Block: block},
		&TwoPCDecisionResp{OK: true},
		&FetchLogReq{},
		&FetchLogResp{Blocks: []*ledger.Block{block, block}},
		&FetchProofReq{ID: "s00-i0001", AtVersion: true, TS: txn.Timestamp{Time: 4, ClientID: 2}},
		&FetchProofResp{LeafContent: []byte("leaf"), Proof: merkle.Proof{Index: 3, Siblings: [][]byte{bytes.Repeat([]byte{5}, 32), bytes.Repeat([]byte{6}, 32)}}},
		&FetchHeadersReq{From: 7, Max: 512},
		&FetchHeadersResp{Tip: 42, Headers: []*ledger.Header{block.Header(), block.Header()}},
		&VerifiedReadReq{IDs: []txn.ItemID{"s00-i0001", "s00-i0007"}, Pinned: true, AtHeight: 12},
		&VerifiedReadResp{
			Height: 12,
			Items: []VerifiedItem{
				{ID: "s00-i0001", Value: []byte("v"), RTS: txn.Timestamp{Time: 1, ClientID: 2}, WTS: txn.Timestamp{Time: 3, ClientID: 4}},
				{ID: "s00-i0007", Value: big},
			},
			Proof: merkle.MultiProof{Indices: []int{1, 7}, Depth: 4, Siblings: [][]byte{bytes.Repeat([]byte{7}, 32), bytes.Repeat([]byte{8}, 32)}},
		},
		&AskDecisionReq{Height: 17},
		&AskDecisionResp{Block: block, Tip: 43},
		&AskDecisionResp{Tip: 3}, // height beyond the responder's log
		&FetchBlocksReq{From: 9, Max: 64},
		&FetchBlocksResp{Blocks: []*ledger.Block{block, block}, Tip: 44},
		&EvidenceBundle{
			Kind:    "incorrect-read",
			Accused: []identity.NodeID{"s01"},
			Height:  42,
			Item:    "s01-i0003",
			TxnID:   "c01-t7",
			Detail:  "sampled read served a value the proof does not authenticate",
			Blocks:  []*ledger.Block{block, block},
			Anchor:  block.Header(),
			ReadIDs: []txn.ItemID{"s01-i0003"},
			Read: &VerifiedReadResp{
				Height: 42,
				Items:  []VerifiedItem{{ID: "s01-i0003", Value: []byte("lie")}},
				Proof:  merkle.MultiProof{Indices: []int{3}, Depth: 2, Siblings: [][]byte{bytes.Repeat([]byte{9}, 32)}},
			},
			Proof: &FetchProofResp{LeafContent: []byte("leaf"), Proof: merkle.Proof{Index: 3, Siblings: [][]byte{bytes.Repeat([]byte{5}, 32)}}},
		},
		&EvidenceBundle{Kind: "tampered-header", Accused: []identity.NodeID{"s00"}, Height: 7, Detail: "forged header page", Anchor: block.Header(), BadHeader: block.Header()},
		&IntegrityStatus{
			Watcher: "wt0001", Tip: 50, Verified: 48, Lag: 2,
			BlocksVerified: 48, SampledReads: 12, Findings: 1,
			Alerts:  []IntegrityAlert{{Rule: "findings", Severity: "critical", Message: "1 integrity finding"}},
			Healthy: false,
		},
	}
	for _, m := range msgs {
		roundTrip(t, m)
	}
}

func TestRoundTripZeroValues(t *testing.T) {
	msgs := []binaryMessage{
		&BeginTxnReq{}, &BeginTxnResp{}, &ReadReq{}, &ReadResp{},
		&WriteReq{}, &WriteResp{}, &EndTxnReq{}, &EndTxnResp{},
		&GetVoteReq{}, &VoteResp{}, &ChallengeReq{}, &ChallengeResp{},
		&DecisionReq{}, &DecisionResp{}, &PrepareReq{}, &PrepareResp{},
		&TwoPCDecisionReq{}, &TwoPCDecisionResp{}, &FetchLogReq{},
		&FetchLogResp{}, &FetchProofReq{}, &FetchProofResp{},
		&FetchHeadersReq{}, &FetchHeadersResp{}, &VerifiedReadReq{},
		&VerifiedReadResp{}, &AskDecisionReq{}, &AskDecisionResp{},
		&FetchBlocksReq{}, &FetchBlocksResp{},
		&EvidenceBundle{}, &IntegrityStatus{},
	}
	for _, m := range msgs {
		roundTrip(t, m)
	}
}

func TestEmptyByteSliceDecodesAsNil(t *testing.T) {
	// The codec does not distinguish empty from nil byte slices: a
	// zero-length field always decodes as nil (canonical form).
	in := &ReadResp{Value: []byte{}}
	data := in.AppendBinary(nil)
	var out ReadResp
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if out.Value != nil {
		t.Fatalf("empty slice decoded as %#v, want nil", out.Value)
	}
}

func TestDecodeRejectsHeaderMismatch(t *testing.T) {
	data := (&BeginTxnReq{TxnID: "t"}).AppendBinary(nil)

	var wrong ReadReq
	if err := wrong.UnmarshalBinary(data); err == nil {
		t.Fatal("decoded into the wrong message type")
	}

	bad := append([]byte(nil), data...)
	bad[0] = 99 // unsupported version
	var req BeginTxnReq
	if err := req.UnmarshalBinary(bad); err == nil {
		t.Fatal("accepted unsupported codec version")
	}

	if _, err := Decode([]byte{BinaryVersion, 200}); err == nil {
		t.Fatal("accepted unknown message id")
	}
	if _, err := Decode([]byte{BinaryVersion}); err == nil {
		t.Fatal("accepted truncated header")
	}
}

func TestFetchLogRespRejectsNilBlocks(t *testing.T) {
	// A byzantine server must not be able to smuggle a nil block into the
	// auditor's chain verification.
	data := (&FetchLogResp{Blocks: []*ledger.Block{nil}}).AppendBinary(nil)
	var out FetchLogResp
	if err := out.UnmarshalBinary(data); err == nil {
		t.Fatal("accepted a log transfer containing a nil block")
	}
}

func TestFetchBlocksRespRejectsNilBlocks(t *testing.T) {
	// Same property for catch-up suffixes: a byzantine peer must not be
	// able to wedge a recovering server with a hole in the range.
	data := (&FetchBlocksResp{Blocks: []*ledger.Block{nil}, Tip: 1}).AppendBinary(nil)
	var out FetchBlocksResp
	if err := out.UnmarshalBinary(data); err == nil {
		t.Fatal("accepted a block transfer containing a nil block")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	block := sampleBlock(t)
	data := (&GetVoteReq{Block: block, ClientReqs: []identity.Envelope{sampleEnvelope()}}).AppendBinary(nil)
	// Every strict prefix must fail cleanly, never panic.
	for i := 2; i < len(data); i += 7 {
		var out GetVoteReq
		if err := out.UnmarshalBinary(data[:i]); err == nil {
			t.Fatalf("accepted truncation at %d/%d bytes", i, len(data))
		}
	}
	// Trailing garbage is rejected too.
	var out GetVoteReq
	if err := out.UnmarshalBinary(append(append([]byte(nil), data...), 0x01)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestDecodedBlockSigningBytesMatchSender(t *testing.T) {
	// The property TFCommit depends on: a decoded block re-encodes to the
	// identical canonical signing bytes, so challenges computed by the
	// coordinator verify at every cohort.
	block := sampleBlock(t)
	data := (&DecisionReq{Block: block}).AppendBinary(nil)
	var out DecisionReq
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(block.SigningBytes(), out.Block.SigningBytes()) {
		t.Fatal("signing bytes changed across encode/decode")
	}
	if !bytes.Equal(block.StrippedBytes(), out.Block.StrippedBytes()) {
		t.Fatal("stripped bytes changed across encode/decode")
	}
	if !bytes.Equal(block.Hash(), out.Block.Hash()) {
		t.Fatal("block hash changed across encode/decode")
	}
}

func FuzzWireDecode(f *testing.F) {
	block := &ledger.Block{Height: 1, Txns: []ledger.TxnRecord{{TxnID: "t", TS: txn.Timestamp{Time: 1, ClientID: 1}}}}
	f.Add((&BeginTxnReq{TxnID: "c-t1"}).AppendBinary(nil))
	f.Add((&GetVoteReq{Block: block, ClientReqs: []identity.Envelope{{From: "c", Payload: []byte("p"), Sig: []byte("s")}}}).AppendBinary(nil))
	f.Add((&EndTxnResp{Committed: true, Block: block}).AppendBinary(nil))
	f.Add((&VoteResp{Vote: ledger.DecisionAbort, TxnAborts: []int{1}}).AppendBinary(nil))
	f.Add((&FetchLogResp{Blocks: []*ledger.Block{block}}).AppendBinary(nil))
	f.Add((&FetchProofResp{LeafContent: []byte("l"), Proof: merkle.Proof{Index: 1, Siblings: [][]byte{{1}}}}).AppendBinary(nil))
	f.Add((&FetchHeadersReq{From: 3, Max: 128}).AppendBinary(nil))
	f.Add((&FetchHeadersResp{Tip: 9, Headers: []*ledger.Header{block.Header()}}).AppendBinary(nil))
	f.Add((&VerifiedReadReq{IDs: []txn.ItemID{"a", "b"}, Pinned: true, AtHeight: 4}).AppendBinary(nil))
	f.Add((&VerifiedReadResp{Height: 4, Items: []VerifiedItem{{ID: "a", Value: []byte("v")}},
		Proof: merkle.MultiProof{Indices: []int{0}, Depth: 1, Siblings: [][]byte{{2}}}}).AppendBinary(nil))
	f.Add((&AskDecisionReq{Height: 6}).AppendBinary(nil))
	f.Add((&AskDecisionResp{Block: block, Tip: 7}).AppendBinary(nil))
	f.Add((&FetchBlocksReq{From: 2, Max: 16}).AppendBinary(nil))
	f.Add((&FetchBlocksResp{Blocks: []*ledger.Block{block}, Tip: 2}).AppendBinary(nil))
	f.Add((&EvidenceBundle{Kind: "bad-proof", Accused: []identity.NodeID{"s1"}, Height: 3,
		Blocks: []*ledger.Block{block}, Anchor: block.Header(), BadHeader: block.Header(),
		ReadIDs: []txn.ItemID{"a"},
		Read:    &VerifiedReadResp{Height: 3, Items: []VerifiedItem{{ID: "a"}}, Proof: merkle.MultiProof{Indices: []int{0}, Depth: 1, Siblings: [][]byte{{2}}}},
		Proof:   &FetchProofResp{LeafContent: []byte("l"), Proof: merkle.Proof{Index: 1, Siblings: [][]byte{{1}}}}}).AppendBinary(nil))
	f.Add((&IntegrityStatus{Watcher: "wt", Tip: 5, Verified: 5, BlocksVerified: 5, SampledReads: 2,
		Alerts: []IntegrityAlert{{Rule: "verified_lag", Severity: "warning", Message: "m"}}, Healthy: true}).AppendBinary(nil))
	f.Add([]byte{})
	f.Add([]byte{BinaryVersion})
	f.Add([]byte{BinaryVersion, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode must never panic and never allocate absurdly; on success
		// the result must re-encode and decode to the same value.
		msg, err := Decode(data)
		if err != nil {
			return
		}
		re := msg.(binaryMessage).AppendBinary(nil)
		again, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		reAgain := again.(binaryMessage).AppendBinary(nil)
		if !bytes.Equal(re, reAgain) {
			t.Fatalf("re-encoding not stable:\n first: %x\nsecond: %x", re, reAgain)
		}
	})
}
