// Package wire defines the RPC message vocabulary of Fides: the
// client↔server execution messages (paper §4.1–4.2, Figure 6), the five
// TFCommit phases (paper §4.3.1, Figure 7), the Two-Phase-Commit baseline
// (paper §6.1), and the audit RPCs (paper §3.3).
//
// Every message travels inside a signed transport frame; the structs here
// are the JSON bodies.
package wire

import (
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/merkle"
	"repro/internal/txn"
)

// Message type identifiers.
const (
	// Execution layer (client → server).
	MsgBeginTxn = "begin_txn"
	MsgRead     = "read"
	MsgWrite    = "write"

	// Termination (client → coordinator).
	MsgEndTxn = "end_txn"

	// TFCommit phases (coordinator ↔ cohorts). Each name carries the
	// ⟨2PC phase, CoSi phase⟩ mapping of Figure 7.
	MsgGetVote   = "tfc_get_vote"  // ⟨GetVote, SchAnnouncement⟩
	MsgChallenge = "tfc_challenge" // ⟨null, SchChallenge⟩
	MsgDecision  = "tfc_decision"  // ⟨Decision, null⟩

	// Two-Phase Commit baseline.
	MsgPrepare     = "2pc_prepare"
	Msg2PCDecision = "2pc_decision"

	// Audit.
	MsgFetchLog   = "audit_fetch_log"
	MsgFetchProof = "audit_fetch_proof"

	// Light client: header sync and proof-carrying reads
	// (internal/lightclient; see docs/protocol.md "Verified reads").
	MsgFetchHeaders = "lc_fetch_headers"
	MsgVerifiedRead = "lc_verified_read"

	// Decision recovery and cohort catch-up (server ↔ server; see
	// docs/protocol.md "Decision delivery, catch-up, and coordinator
	// failover"). A co-signed block is self-authenticating, so any peer —
	// trusted or not — can answer these.
	MsgAskDecision = "tfc_ask_decision"
	MsgFetchBlocks = "log_fetch_blocks"

	// Watchtower (internal/watch): portable misbehavior evidence and the
	// /integrity status document. Neither is an RPC — bundles are written
	// to disk / shipped to third parties, the status is served over HTTP —
	// but both live in the wire vocabulary so they share the binary codec,
	// the fuzz corpus, and offline decodability guarantees.
	MsgEvidenceBundle  = "watch_evidence"
	MsgIntegrityStatus = "watch_integrity"
)

// BeginTxnReq opens a transaction at a server storing items the transaction
// will access (paper §4.1 step 1).
type BeginTxnReq struct {
	TxnID string `json:"txn_id"`
}

// BeginTxnResp acknowledges a begin request.
type BeginTxnResp struct {
	OK bool `json:"ok"`
}

// ReadReq asks the execution layer for a data item's current value
// (paper §4.1 step 2).
type ReadReq struct {
	TxnID string     `json:"txn_id"`
	ID    txn.ItemID `json:"id"`
}

// ReadResp carries the value and the item's current read/write timestamps
// (paper §4.2.1: "the servers respond with the data values along with the
// associated rts and wts timestamps").
type ReadResp struct {
	Value []byte        `json:"value"`
	RTS   txn.Timestamp `json:"rts"`
	WTS   txn.Timestamp `json:"wts"`
}

// WriteReq buffers a write at the execution layer (paper §4.2.1).
type WriteReq struct {
	TxnID string     `json:"txn_id"`
	ID    txn.ItemID `json:"id"`
	Value []byte     `json:"value"`
}

// WriteResp acknowledges a buffered write. To support blind writes the
// acknowledgement includes the old value and timestamps of the item
// (paper §4.2.1).
type WriteResp struct {
	OldVal []byte        `json:"old_val"`
	RTS    txn.Timestamp `json:"rts"`
	WTS    txn.Timestamp `json:"wts"`
}

// EndTxnReq is the client's signed termination request
// µ = ⟨end_transaction(Tid, ts, Rset-Wset)⟩_σA (paper §4.3.1). TxnEnvelope
// contains the client-signed JSON encoding of the txn.Transaction; the
// coordinator verifies and then encapsulates it in the GetVote message so
// every cohort can check the client authorized exactly this transaction.
type EndTxnReq struct {
	TxnEnvelope identity.Envelope `json:"txn_envelope"`
}

// EndTxnResp returns the termination outcome together with the finalized,
// collectively signed block, which the client verifies before accepting the
// decision — "even an aborted transaction must be signed by all the
// servers" (paper §4.3.1 phase 5).
//
// A request whose commit timestamp is not above the latest committed
// timestamp is ignored rather than run through the protocol (§4.3.1); the
// coordinator reports that with Rejected=true and no block, and LatestTS
// lets the client fast-forward its Lamport clock before retrying.
type EndTxnResp struct {
	Committed bool          `json:"committed"`
	Block     *ledger.Block `json:"block,omitempty"`
	Rejected  bool          `json:"rejected,omitempty"`
	LatestTS  txn.Timestamp `json:"latest_ts,omitempty"`
}

// GetVoteReq is TFCommit phase 1 ⟨GetVote, SchAnnouncement⟩: the partially
// filled block b_i = [ts_i, Rset-Wset, h_{i-1}] plus the encapsulated
// signed client requests, one per transaction in the block.
type GetVoteReq struct {
	Block      *ledger.Block       `json:"block"`
	ClientReqs []identity.Envelope `json:"client_reqs"`
}

// VoteResp is TFCommit phase 2 ⟨Vote, SchCommitment⟩: the cohort's local
// commit/abort decision, its in-memory Merkle root assuming the block
// commits (only if involved and voting commit), and its Schnorr commitment
// x_sch for CoSi.
//
// TxnAborts itemizes which transactions of the block failed this cohort's
// validation. The block's fate stays atomic (any itemized abort aborts the
// whole block, per §4.3), but the coordinator uses the itemization to
// retry the block with the vetoed transactions pruned — how the evaluation
// sustains ~100-transaction blocks (§4.6, §6.2) without one stale
// transaction dooming its 99 batchmates.
type VoteResp struct {
	Vote       ledger.Decision `json:"vote"`
	Involved   bool            `json:"involved"`
	Root       []byte          `json:"root,omitempty"`
	Commitment []byte          `json:"commitment"`
	TxnAborts  []int           `json:"txn_aborts,omitempty"`
}

// ChallengeReq is TFCommit phase 3 ⟨null, SchChallenge⟩: the Schnorr
// challenge ch = h(X_sch ‖ b_i), the aggregate commitment X_sch, and the
// now fully filled block (roots + decision).
type ChallengeReq struct {
	Challenge     []byte        `json:"challenge"`
	AggCommitment []byte        `json:"agg_commitment"`
	Block         *ledger.Block `json:"block"`
}

// ChallengeResp is TFCommit phase 4 ⟨null, SchResponse⟩: the cohort's
// Schnorr response r_i, sent only after the cohort validated the block, its
// own root within it, and the challenge computation.
type ChallengeResp struct {
	Response []byte `json:"response"`
}

// DecisionReq is TFCommit phase 5 ⟨Decision, null⟩: the finalized block
// carrying the collective signature ⟨ch, R_sch⟩.
type DecisionReq struct {
	Block *ledger.Block `json:"block"`
}

// DecisionResp acknowledges the decision.
type DecisionResp struct {
	OK bool `json:"ok"`
}

// PrepareReq is 2PC round 1: the coordinator ships the candidate block and
// collects votes.
type PrepareReq struct {
	Block      *ledger.Block       `json:"block"`
	ClientReqs []identity.Envelope `json:"client_reqs"`
}

// PrepareResp is a 2PC cohort vote.
type PrepareResp struct {
	Vote ledger.Decision `json:"vote"`
}

// TwoPCDecisionReq is 2PC round 2: the coordinator's decision.
type TwoPCDecisionReq struct {
	Block *ledger.Block `json:"block"`
}

// TwoPCDecisionResp acknowledges a 2PC decision.
type TwoPCDecisionResp struct {
	OK bool `json:"ok"`
}

// FetchLogReq asks a server for its full tamper-proof log (paper §3.3: "the
// auditor gathers the tamper-proof logs from all the servers").
type FetchLogReq struct{}

// FetchLogResp carries the server's log.
type FetchLogResp struct {
	Blocks []*ledger.Block `json:"blocks"`
}

// FetchProofReq asks a server for the Verification Object of one item,
// either against the current state (single-versioned audit) or at a given
// version (multi-versioned audit, paper §4.2.2).
type FetchProofReq struct {
	ID txn.ItemID `json:"id"`
	// AtVersion selects a historical version; TS is the version timestamp.
	AtVersion bool          `json:"at_version,omitempty"`
	TS        txn.Timestamp `json:"ts,omitempty"`
}

// FetchProofResp carries the leaf content the server claims for the item
// and the VO authenticating it.
type FetchProofResp struct {
	LeafContent []byte       `json:"leaf_content"`
	Proof       merkle.Proof `json:"proof"`
}

// FetchHeadersReq asks a server for a range of block headers starting at
// height From (at most Max of them). A light client cold-syncs by paging
// from height 0 and resumes from any trusted height by paging from its
// cached tip; the server streams whatever prefix of [From, From+Max) its
// log holds.
type FetchHeadersReq struct {
	From uint64 `json:"from"`
	Max  uint32 `json:"max"`
}

// FetchHeadersResp carries the requested header range plus the server's
// current log length, so the client knows whether another page remains
// without an extra round trip.
type FetchHeadersResp struct {
	Headers []*ledger.Header `json:"headers"`
	Tip     uint64           `json:"tip"`
}

// VerifiedReadReq asks for the current value of one or more items of a
// single shard together with the Merkle proof authenticating them against
// a committed, co-signed shard root — the proof-carrying read path that
// makes read integrity an online property instead of an audit-time one.
//
// With Pinned set, the read is served against the shard state
// authenticated by the newest committed root at height ≤ AtHeight — a
// snapshot read at a pinned height (multi-versioned shards only when the
// pin is older than the newest root).
type VerifiedReadReq struct {
	IDs      []txn.ItemID `json:"ids"`
	Pinned   bool         `json:"pinned,omitempty"`
	AtHeight uint64       `json:"at_height,omitempty"`
}

// VerifiedItem is one item of a verified-read response: the value and
// timestamps whose LeafContent the proof authenticates.
type VerifiedItem struct {
	ID    txn.ItemID    `json:"id"`
	Value []byte        `json:"value"`
	RTS   txn.Timestamp `json:"rts"`
	WTS   txn.Timestamp `json:"wts"`
}

// VerifiedReadResp carries the items (in Merkle leaf order, matching
// Proof.Indices), the one batched proof covering all of them, and the
// block height whose committed shard root the proof folds up to. The light
// client authenticates the response against its header cache: the header
// at Height supplies the expected root, and the client's per-server root
// index exposes a Height older than the newest committed root as a stale
// read.
type VerifiedReadResp struct {
	Height uint64            `json:"height"`
	Items  []VerifiedItem    `json:"items"`
	Proof  merkle.MultiProof `json:"proof"`
}

// AskDecisionReq asks a peer server for the co-signed block at one height.
// A cohort sends it when a round stalls in phase 5: its vote-lookahead wait
// timed out, or an inflight round never received a decision (for example
// because the coordinator died between co-sign and broadcast). Because the
// block carries the collective signature of every server, the cohort can
// verify the answer without trusting the responder — the co-signed block
// *is* the decision.
type AskDecisionReq struct {
	Height uint64 `json:"height"`
}

// AskDecisionResp carries the responder's co-signed block at the requested
// height (nil if its log has not reached it) plus the responder's current
// log length, so the asker learns how far behind it is in one round trip.
type AskDecisionResp struct {
	Block *ledger.Block `json:"block,omitempty"`
	Tip   uint64        `json:"tip"`
}

// FetchBlocksReq asks a peer server for a range of full committed blocks
// starting at height From (at most Max of them). A server that recovers
// behind the cluster tip pages its missing log suffix from any peer,
// re-verifying chain position, txns-hash, and collective signature exactly
// as recovery verifies the disk before applying each block.
type FetchBlocksReq struct {
	From uint64 `json:"from"`
	Max  uint32 `json:"max"`
}

// FetchBlocksResp carries the requested block range plus the responder's
// current log length, so the asker knows whether another page remains.
type FetchBlocksResp struct {
	Blocks []*ledger.Block `json:"blocks"`
	Tip    uint64          `json:"tip"`
}

// EvidenceBundle is a self-contained, portable accusation: everything a
// third party needs to re-verify a watchtower finding offline, trusting
// nothing but the servers' registered public keys. The co-signed material
// (Blocks, Anchor) authenticates itself; the offending material (BadHeader,
// Read, Proof, or the tail of Blocks) demonstrably fails the protocol check
// the bundle's Kind names. internal/watch.VerifyBundle re-runs that check;
// `fides-client -verify-bundle` wraps it for the command line.
//
// Attribution note: the co-signed evidence proves *that* the protocol was
// violated; which server *served* the offending response rests on the
// watchtower's transcript (Accused), exactly as log-fetch attribution does
// in the offline audit.
type EvidenceBundle struct {
	// Kind is the watch finding type the bundle substantiates.
	Kind string `json:"kind"`
	// Accused names the server(s) the watchtower received the offending
	// material from (or that own the offending item, for replay findings).
	Accused []identity.NodeID `json:"accused"`
	// Height is the block height the finding is anchored at.
	Height uint64 `json:"height"`
	// Item and TxnID locate the finding, when applicable.
	Item  txn.ItemID `json:"item,omitempty"`
	TxnID string     `json:"txn_id,omitempty"`
	// Detail is the watchtower's human-readable explanation.
	Detail string `json:"detail"`

	// Blocks is a contiguous co-signed block range for replay findings:
	// replaying it from its first block reproduces the finding (the first
	// block baselines the item state, the last exhibits the violation).
	Blocks []*ledger.Block `json:"blocks,omitempty"`
	// Anchor is the co-signed header serving-path evidence is checked
	// against (the header whose root the offending response claimed).
	Anchor *ledger.Header `json:"anchor,omitempty"`
	// BadHeader is a forged header exactly as served.
	BadHeader *ledger.Header `json:"bad_header,omitempty"`
	// ReadIDs is the item set the watchtower requested when the offending
	// verified read was served.
	ReadIDs []txn.ItemID `json:"read_ids,omitempty"`
	// Read is the offending verified-read response exactly as served.
	Read *VerifiedReadResp `json:"read,omitempty"`
	// Proof is the follow-up single-item VO used to classify a failed read
	// (datastore corruption vs. a lie about the value).
	Proof *FetchProofResp `json:"proof,omitempty"`
}

// IntegrityAlert is one in-process alert rule evaluation result.
type IntegrityAlert struct {
	// Rule names the threshold rule that fired (e.g. "verified_lag",
	// "findings").
	Rule string `json:"rule"`
	// Severity is "warning" or "critical".
	Severity string `json:"severity"`
	// Message explains the firing state.
	Message string `json:"message"`
}

// IntegrityStatus is the watchtower's integrity SLO document, served as
// JSON on /integrity and embeddable in the binary codec for archival.
type IntegrityStatus struct {
	// Watcher identifies the reporting watchtower.
	Watcher identity.NodeID `json:"watcher"`
	// Tip is the highest chain height any server reports.
	Tip uint64 `json:"tip"`
	// Verified is the height up to which the watchtower has re-verified
	// and replayed the chain.
	Verified uint64 `json:"verified"`
	// Lag is Tip - Verified (the freshness SLO).
	Lag uint64 `json:"lag"`
	// BlocksVerified counts blocks re-verified since start.
	BlocksVerified uint64 `json:"blocks_verified"`
	// SampledReads counts sampled proof-carrying reads since start.
	SampledReads uint64 `json:"sampled_reads"`
	// Findings counts integrity findings since start.
	Findings uint64 `json:"findings"`
	// Alerts lists the alert rules currently firing.
	Alerts []IntegrityAlert `json:"alerts,omitempty"`
	// Healthy is true when nothing fires: lag within bounds, no findings.
	Healthy bool `json:"healthy"`
}
