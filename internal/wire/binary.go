package wire

import (
	"fmt"

	"repro/internal/binenc"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/merkle"
	"repro/internal/txn"
)

// Binary wire codec. Every RPC message encodes to a self-describing frame:
// a two-byte header ⟨BinaryVersion, numeric message id⟩ followed by the
// message fields in the binenc conventions (uvarint length prefixes,
// big-endian integers). The header makes any captured byte string
// decodable without out-of-band context (see Decode) and lets a receiver
// reject version or type mismatches before touching the payload.
//
// This codec is the transport default; the JSON struct tags on the message
// types remain functional behind transport.JSONCodec for debugging and
// compatibility.

// BinaryVersion is the wire codec version byte leading every message.
const BinaryVersion = 1

// Numeric message ids, one per concrete message type (requests and
// responses separately — the header must identify the exact struct).
const (
	idInvalid byte = iota
	idBeginTxnReq
	idBeginTxnResp
	idReadReq
	idReadResp
	idWriteReq
	idWriteResp
	idEndTxnReq
	idEndTxnResp
	idGetVoteReq
	idVoteResp
	idChallengeReq
	idChallengeResp
	idDecisionReq
	idDecisionResp
	idPrepareReq
	idPrepareResp
	idTwoPCDecisionReq
	idTwoPCDecisionResp
	idFetchLogReq
	idFetchLogResp
	idFetchProofReq
	idFetchProofResp
	idFetchHeadersReq
	idFetchHeadersResp
	idVerifiedReadReq
	idVerifiedReadResp
	idAskDecisionReq
	idAskDecisionResp
	idFetchBlocksReq
	idFetchBlocksResp
	idEvidenceBundle
	idIntegrityStatus
	idMax // one past the last valid id
)

func appendHeader(buf []byte, id byte) []byte {
	return append(buf, BinaryVersion, id)
}

// openHeader validates the two-byte header and returns a reader positioned
// at the first field.
func openHeader(data []byte, id byte) (binenc.Reader, error) {
	if len(data) < 2 {
		return binenc.Reader{}, fmt.Errorf("wire: message shorter than header (%d bytes)", len(data))
	}
	if data[0] != BinaryVersion {
		return binenc.Reader{}, fmt.Errorf("wire: unsupported codec version %d", data[0])
	}
	if data[1] != id {
		return binenc.Reader{}, fmt.Errorf("wire: message id %d, want %d", data[1], id)
	}
	return binenc.NewReader(data[2:]), nil
}

func finish(r *binenc.Reader, what string) error {
	if err := r.Done(); err != nil {
		return fmt.Errorf("wire: decode %s: %w", what, err)
	}
	return nil
}

// --- shared field helpers ---

func appendBlockPtr(buf []byte, b *ledger.Block) []byte {
	if b == nil {
		return binenc.AppendBool(buf, false)
	}
	buf = binenc.AppendBool(buf, true)
	return b.AppendBinary(buf)
}

func decodeBlockPtr(r *binenc.Reader) (*ledger.Block, error) {
	if !r.Bool() {
		return nil, r.Err()
	}
	b := new(ledger.Block)
	if err := ledger.DecodeBlock(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func appendEnvelopes(buf []byte, envs []identity.Envelope) []byte {
	buf = binenc.AppendUvarint(buf, uint64(len(envs)))
	for i := range envs {
		buf = identity.AppendEnvelope(buf, &envs[i])
	}
	return buf
}

func decodeEnvelopes(r *binenc.Reader) ([]identity.Envelope, error) {
	// Minimum envelope encoding: version byte + three empty length
	// prefixes.
	n := r.Count(4)
	if n == 0 {
		return nil, r.Err()
	}
	envs := make([]identity.Envelope, n)
	for i := range envs {
		if err := identity.DecodeEnvelope(r, &envs[i]); err != nil {
			return nil, err
		}
	}
	return envs, nil
}

// --- execution layer ---

// AppendBinary implements the binary wire codec.
func (m *BeginTxnReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idBeginTxnReq)
	return binenc.AppendString(buf, m.TxnID)
}

// UnmarshalBinary implements the binary wire codec.
func (m *BeginTxnReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idBeginTxnReq)
	if err != nil {
		return err
	}
	m.TxnID = r.String()
	return finish(&r, MsgBeginTxn)
}

// AppendBinary implements the binary wire codec.
func (m *BeginTxnResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idBeginTxnResp)
	return binenc.AppendBool(buf, m.OK)
}

// UnmarshalBinary implements the binary wire codec.
func (m *BeginTxnResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idBeginTxnResp)
	if err != nil {
		return err
	}
	m.OK = r.Bool()
	return finish(&r, MsgBeginTxn+" resp")
}

// AppendBinary implements the binary wire codec.
func (m *ReadReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idReadReq)
	buf = binenc.AppendString(buf, m.TxnID)
	return binenc.AppendString(buf, string(m.ID))
}

// UnmarshalBinary implements the binary wire codec.
func (m *ReadReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idReadReq)
	if err != nil {
		return err
	}
	m.TxnID = r.String()
	m.ID = txn.ItemID(r.String())
	return finish(&r, MsgRead)
}

// AppendBinary implements the binary wire codec.
func (m *ReadResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idReadResp)
	buf = binenc.AppendBytes(buf, m.Value)
	buf = m.RTS.AppendBinary(buf)
	return m.WTS.AppendBinary(buf)
}

// UnmarshalBinary implements the binary wire codec.
func (m *ReadResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idReadResp)
	if err != nil {
		return err
	}
	m.Value = r.Bytes()
	m.RTS = txn.DecodeTimestamp(&r)
	m.WTS = txn.DecodeTimestamp(&r)
	return finish(&r, MsgRead+" resp")
}

// AppendBinary implements the binary wire codec.
func (m *WriteReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idWriteReq)
	buf = binenc.AppendString(buf, m.TxnID)
	buf = binenc.AppendString(buf, string(m.ID))
	return binenc.AppendBytes(buf, m.Value)
}

// UnmarshalBinary implements the binary wire codec.
func (m *WriteReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idWriteReq)
	if err != nil {
		return err
	}
	m.TxnID = r.String()
	m.ID = txn.ItemID(r.String())
	m.Value = r.Bytes()
	return finish(&r, MsgWrite)
}

// AppendBinary implements the binary wire codec.
func (m *WriteResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idWriteResp)
	buf = binenc.AppendBytes(buf, m.OldVal)
	buf = m.RTS.AppendBinary(buf)
	return m.WTS.AppendBinary(buf)
}

// UnmarshalBinary implements the binary wire codec.
func (m *WriteResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idWriteResp)
	if err != nil {
		return err
	}
	m.OldVal = r.Bytes()
	m.RTS = txn.DecodeTimestamp(&r)
	m.WTS = txn.DecodeTimestamp(&r)
	return finish(&r, MsgWrite+" resp")
}

// --- termination ---

// AppendBinary implements the binary wire codec.
func (m *EndTxnReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idEndTxnReq)
	return identity.AppendEnvelope(buf, &m.TxnEnvelope)
}

// UnmarshalBinary implements the binary wire codec.
func (m *EndTxnReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idEndTxnReq)
	if err != nil {
		return err
	}
	if err := identity.DecodeEnvelope(&r, &m.TxnEnvelope); err != nil {
		return err
	}
	return finish(&r, MsgEndTxn)
}

// AppendBinary implements the binary wire codec.
func (m *EndTxnResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idEndTxnResp)
	buf = binenc.AppendBool(buf, m.Committed)
	buf = binenc.AppendBool(buf, m.Rejected)
	buf = m.LatestTS.AppendBinary(buf)
	return appendBlockPtr(buf, m.Block)
}

// UnmarshalBinary implements the binary wire codec.
func (m *EndTxnResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idEndTxnResp)
	if err != nil {
		return err
	}
	m.Committed = r.Bool()
	m.Rejected = r.Bool()
	m.LatestTS = txn.DecodeTimestamp(&r)
	if m.Block, err = decodeBlockPtr(&r); err != nil {
		return err
	}
	return finish(&r, MsgEndTxn+" resp")
}

// --- TFCommit phases ---

// AppendBinary implements the binary wire codec.
func (m *GetVoteReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idGetVoteReq)
	buf = appendBlockPtr(buf, m.Block)
	return appendEnvelopes(buf, m.ClientReqs)
}

// UnmarshalBinary implements the binary wire codec.
func (m *GetVoteReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idGetVoteReq)
	if err != nil {
		return err
	}
	if m.Block, err = decodeBlockPtr(&r); err != nil {
		return err
	}
	if m.ClientReqs, err = decodeEnvelopes(&r); err != nil {
		return err
	}
	return finish(&r, MsgGetVote)
}

// AppendBinary implements the binary wire codec.
func (m *VoteResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idVoteResp)
	buf = binenc.AppendByte(buf, byte(m.Vote))
	buf = binenc.AppendBool(buf, m.Involved)
	buf = binenc.AppendBytes(buf, m.Root)
	buf = binenc.AppendBytes(buf, m.Commitment)
	buf = binenc.AppendUvarint(buf, uint64(len(m.TxnAborts)))
	for _, idx := range m.TxnAborts {
		buf = binenc.AppendUvarint(buf, uint64(idx))
	}
	return buf
}

// UnmarshalBinary implements the binary wire codec.
func (m *VoteResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idVoteResp)
	if err != nil {
		return err
	}
	m.Vote = ledger.Decision(r.Byte())
	m.Involved = r.Bool()
	m.Root = r.Bytes()
	m.Commitment = r.Bytes()
	m.TxnAborts = nil
	if n := r.Count(1); n > 0 {
		m.TxnAborts = make([]int, n)
		for i := range m.TxnAborts {
			m.TxnAborts[i] = int(r.Uvarint())
		}
	}
	return finish(&r, MsgGetVote+" resp")
}

// AppendBinary implements the binary wire codec.
func (m *ChallengeReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idChallengeReq)
	buf = binenc.AppendBytes(buf, m.Challenge)
	buf = binenc.AppendBytes(buf, m.AggCommitment)
	return appendBlockPtr(buf, m.Block)
}

// UnmarshalBinary implements the binary wire codec.
func (m *ChallengeReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idChallengeReq)
	if err != nil {
		return err
	}
	m.Challenge = r.Bytes()
	m.AggCommitment = r.Bytes()
	if m.Block, err = decodeBlockPtr(&r); err != nil {
		return err
	}
	return finish(&r, MsgChallenge)
}

// AppendBinary implements the binary wire codec.
func (m *ChallengeResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idChallengeResp)
	return binenc.AppendBytes(buf, m.Response)
}

// UnmarshalBinary implements the binary wire codec.
func (m *ChallengeResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idChallengeResp)
	if err != nil {
		return err
	}
	m.Response = r.Bytes()
	return finish(&r, MsgChallenge+" resp")
}

// AppendBinary implements the binary wire codec.
func (m *DecisionReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idDecisionReq)
	return appendBlockPtr(buf, m.Block)
}

// UnmarshalBinary implements the binary wire codec.
func (m *DecisionReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idDecisionReq)
	if err != nil {
		return err
	}
	if m.Block, err = decodeBlockPtr(&r); err != nil {
		return err
	}
	return finish(&r, MsgDecision)
}

// AppendBinary implements the binary wire codec.
func (m *DecisionResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idDecisionResp)
	return binenc.AppendBool(buf, m.OK)
}

// UnmarshalBinary implements the binary wire codec.
func (m *DecisionResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idDecisionResp)
	if err != nil {
		return err
	}
	m.OK = r.Bool()
	return finish(&r, MsgDecision+" resp")
}

// --- 2PC baseline ---

// AppendBinary implements the binary wire codec.
func (m *PrepareReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idPrepareReq)
	buf = appendBlockPtr(buf, m.Block)
	return appendEnvelopes(buf, m.ClientReqs)
}

// UnmarshalBinary implements the binary wire codec.
func (m *PrepareReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idPrepareReq)
	if err != nil {
		return err
	}
	if m.Block, err = decodeBlockPtr(&r); err != nil {
		return err
	}
	if m.ClientReqs, err = decodeEnvelopes(&r); err != nil {
		return err
	}
	return finish(&r, MsgPrepare)
}

// AppendBinary implements the binary wire codec.
func (m *PrepareResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idPrepareResp)
	return binenc.AppendByte(buf, byte(m.Vote))
}

// UnmarshalBinary implements the binary wire codec.
func (m *PrepareResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idPrepareResp)
	if err != nil {
		return err
	}
	m.Vote = ledger.Decision(r.Byte())
	return finish(&r, MsgPrepare+" resp")
}

// AppendBinary implements the binary wire codec.
func (m *TwoPCDecisionReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idTwoPCDecisionReq)
	return appendBlockPtr(buf, m.Block)
}

// UnmarshalBinary implements the binary wire codec.
func (m *TwoPCDecisionReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idTwoPCDecisionReq)
	if err != nil {
		return err
	}
	if m.Block, err = decodeBlockPtr(&r); err != nil {
		return err
	}
	return finish(&r, Msg2PCDecision)
}

// AppendBinary implements the binary wire codec.
func (m *TwoPCDecisionResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idTwoPCDecisionResp)
	return binenc.AppendBool(buf, m.OK)
}

// UnmarshalBinary implements the binary wire codec.
func (m *TwoPCDecisionResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idTwoPCDecisionResp)
	if err != nil {
		return err
	}
	m.OK = r.Bool()
	return finish(&r, Msg2PCDecision+" resp")
}

// --- audit ---

// AppendBinary implements the binary wire codec.
func (m *FetchLogReq) AppendBinary(buf []byte) []byte {
	return appendHeader(buf, idFetchLogReq)
}

// UnmarshalBinary implements the binary wire codec.
func (m *FetchLogReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idFetchLogReq)
	if err != nil {
		return err
	}
	return finish(&r, MsgFetchLog)
}

// AppendBinary implements the binary wire codec.
func (m *FetchLogResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idFetchLogResp)
	buf = binenc.AppendUvarint(buf, uint64(len(m.Blocks)))
	for _, b := range m.Blocks {
		buf = appendBlockPtr(buf, b)
	}
	return buf
}

// UnmarshalBinary implements the binary wire codec.
func (m *FetchLogResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idFetchLogResp)
	if err != nil {
		return err
	}
	m.Blocks = nil
	if n := r.Count(1); n > 0 {
		m.Blocks = make([]*ledger.Block, n)
		for i := range m.Blocks {
			if m.Blocks[i], err = decodeBlockPtr(&r); err != nil {
				return err
			}
			// A log never legitimately contains a hole; rejecting nil here
			// keeps a byzantine server from smuggling one into the auditor.
			if m.Blocks[i] == nil {
				return fmt.Errorf("wire: decode %s resp: nil block at index %d", MsgFetchLog, i)
			}
		}
	}
	return finish(&r, MsgFetchLog+" resp")
}

// AppendBinary implements the binary wire codec.
func (m *FetchProofReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idFetchProofReq)
	buf = binenc.AppendString(buf, string(m.ID))
	buf = binenc.AppendBool(buf, m.AtVersion)
	return m.TS.AppendBinary(buf)
}

// UnmarshalBinary implements the binary wire codec.
func (m *FetchProofReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idFetchProofReq)
	if err != nil {
		return err
	}
	m.ID = txn.ItemID(r.String())
	m.AtVersion = r.Bool()
	m.TS = txn.DecodeTimestamp(&r)
	return finish(&r, MsgFetchProof)
}

// AppendBinary implements the binary wire codec.
func (m *FetchProofResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idFetchProofResp)
	buf = binenc.AppendBytes(buf, m.LeafContent)
	return m.Proof.AppendBinary(buf)
}

// UnmarshalBinary implements the binary wire codec.
func (m *FetchProofResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idFetchProofResp)
	if err != nil {
		return err
	}
	m.LeafContent = r.Bytes()
	if err := merkle.DecodeProof(&r, &m.Proof); err != nil {
		return err
	}
	return finish(&r, MsgFetchProof+" resp")
}

// --- light client ---

// AppendBinary implements the binary wire codec.
func (m *FetchHeadersReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idFetchHeadersReq)
	buf = binenc.AppendUint64(buf, m.From)
	return binenc.AppendUint32(buf, m.Max)
}

// UnmarshalBinary implements the binary wire codec.
func (m *FetchHeadersReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idFetchHeadersReq)
	if err != nil {
		return err
	}
	m.From = r.Uint64()
	m.Max = r.Uint32()
	return finish(&r, MsgFetchHeaders)
}

// AppendBinary implements the binary wire codec.
func (m *FetchHeadersResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idFetchHeadersResp)
	buf = binenc.AppendUint64(buf, m.Tip)
	buf = binenc.AppendUvarint(buf, uint64(len(m.Headers)))
	for _, h := range m.Headers {
		buf = h.AppendBinary(buf)
	}
	return buf
}

// UnmarshalBinary implements the binary wire codec.
func (m *FetchHeadersResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idFetchHeadersResp)
	if err != nil {
		return err
	}
	m.Tip = r.Uint64()
	m.Headers = nil
	// Minimum header encoding: version byte + fixed height + six empty
	// length prefixes.
	if n := r.Count(9); n > 0 {
		m.Headers = make([]*ledger.Header, n)
		for i := range m.Headers {
			h := new(ledger.Header)
			if err := ledger.DecodeHeader(&r, h); err != nil {
				return err
			}
			m.Headers[i] = h
		}
	}
	return finish(&r, MsgFetchHeaders+" resp")
}

// AppendBinary implements the binary wire codec.
func (m *VerifiedReadReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idVerifiedReadReq)
	buf = binenc.AppendUvarint(buf, uint64(len(m.IDs)))
	for _, id := range m.IDs {
		buf = binenc.AppendString(buf, string(id))
	}
	buf = binenc.AppendBool(buf, m.Pinned)
	return binenc.AppendUint64(buf, m.AtHeight)
}

// UnmarshalBinary implements the binary wire codec.
func (m *VerifiedReadReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idVerifiedReadReq)
	if err != nil {
		return err
	}
	m.IDs = nil
	if n := r.Count(1); n > 0 {
		m.IDs = make([]txn.ItemID, n)
		for i := range m.IDs {
			m.IDs[i] = txn.ItemID(r.String())
		}
	}
	m.Pinned = r.Bool()
	m.AtHeight = r.Uint64()
	return finish(&r, MsgVerifiedRead)
}

func appendVerifiedItem(buf []byte, it *VerifiedItem) []byte {
	buf = binenc.AppendString(buf, string(it.ID))
	buf = binenc.AppendBytes(buf, it.Value)
	buf = it.RTS.AppendBinary(buf)
	return it.WTS.AppendBinary(buf)
}

func decodeVerifiedItem(r *binenc.Reader, it *VerifiedItem) {
	it.ID = txn.ItemID(r.String())
	it.Value = r.Bytes()
	it.RTS = txn.DecodeTimestamp(r)
	it.WTS = txn.DecodeTimestamp(r)
}

// AppendBinary implements the binary wire codec.
func (m *VerifiedReadResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idVerifiedReadResp)
	buf = binenc.AppendUint64(buf, m.Height)
	buf = binenc.AppendUvarint(buf, uint64(len(m.Items)))
	for i := range m.Items {
		buf = appendVerifiedItem(buf, &m.Items[i])
	}
	return m.Proof.AppendBinary(buf)
}

// UnmarshalBinary implements the binary wire codec.
func (m *VerifiedReadResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idVerifiedReadResp)
	if err != nil {
		return err
	}
	m.Height = r.Uint64()
	m.Items = nil
	// Minimum item encoding: two length prefixes + two timestamps.
	if n := r.Count(2 + 2*txn.TimestampEncSize); n > 0 {
		m.Items = make([]VerifiedItem, n)
		for i := range m.Items {
			decodeVerifiedItem(&r, &m.Items[i])
		}
	}
	if err := merkle.DecodeMultiProof(&r, &m.Proof); err != nil {
		return err
	}
	return finish(&r, MsgVerifiedRead+" resp")
}

// --- decision recovery & catch-up ---

// AppendBinary implements the binary wire codec.
func (m *AskDecisionReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idAskDecisionReq)
	return binenc.AppendUint64(buf, m.Height)
}

// UnmarshalBinary implements the binary wire codec.
func (m *AskDecisionReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idAskDecisionReq)
	if err != nil {
		return err
	}
	m.Height = r.Uint64()
	return finish(&r, MsgAskDecision)
}

// AppendBinary implements the binary wire codec.
func (m *AskDecisionResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idAskDecisionResp)
	buf = binenc.AppendUint64(buf, m.Tip)
	return appendBlockPtr(buf, m.Block)
}

// UnmarshalBinary implements the binary wire codec.
func (m *AskDecisionResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idAskDecisionResp)
	if err != nil {
		return err
	}
	m.Tip = r.Uint64()
	if m.Block, err = decodeBlockPtr(&r); err != nil {
		return err
	}
	return finish(&r, MsgAskDecision+" resp")
}

// AppendBinary implements the binary wire codec.
func (m *FetchBlocksReq) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idFetchBlocksReq)
	buf = binenc.AppendUint64(buf, m.From)
	return binenc.AppendUint32(buf, m.Max)
}

// UnmarshalBinary implements the binary wire codec.
func (m *FetchBlocksReq) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idFetchBlocksReq)
	if err != nil {
		return err
	}
	m.From = r.Uint64()
	m.Max = r.Uint32()
	return finish(&r, MsgFetchBlocks)
}

// AppendBinary implements the binary wire codec.
func (m *FetchBlocksResp) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idFetchBlocksResp)
	buf = binenc.AppendUint64(buf, m.Tip)
	buf = binenc.AppendUvarint(buf, uint64(len(m.Blocks)))
	for _, b := range m.Blocks {
		buf = appendBlockPtr(buf, b)
	}
	return buf
}

// UnmarshalBinary implements the binary wire codec.
func (m *FetchBlocksResp) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idFetchBlocksResp)
	if err != nil {
		return err
	}
	m.Tip = r.Uint64()
	m.Blocks = nil
	if n := r.Count(1); n > 0 {
		m.Blocks = make([]*ledger.Block, n)
		for i := range m.Blocks {
			if m.Blocks[i], err = decodeBlockPtr(&r); err != nil {
				return err
			}
			// A log suffix never legitimately contains a hole; rejecting nil
			// keeps a byzantine peer from wedging the verifier downstream.
			if m.Blocks[i] == nil {
				return fmt.Errorf("wire: decode %s resp: nil block at index %d", MsgFetchBlocks, i)
			}
		}
	}
	return finish(&r, MsgFetchBlocks+" resp")
}

// --- watchtower ---

func appendHeaderPtr(buf []byte, h *ledger.Header) []byte {
	if h == nil {
		return binenc.AppendBool(buf, false)
	}
	buf = binenc.AppendBool(buf, true)
	return h.AppendBinary(buf)
}

func decodeHeaderPtr(r *binenc.Reader) (*ledger.Header, error) {
	if !r.Bool() {
		return nil, r.Err()
	}
	h := new(ledger.Header)
	if err := ledger.DecodeHeader(r, h); err != nil {
		return nil, err
	}
	return h, nil
}

func appendItemIDs(buf []byte, ids []txn.ItemID) []byte {
	buf = binenc.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binenc.AppendString(buf, string(id))
	}
	return buf
}

func decodeItemIDs(r *binenc.Reader) []txn.ItemID {
	n := r.Count(1)
	if n == 0 {
		return nil
	}
	ids := make([]txn.ItemID, n)
	for i := range ids {
		ids[i] = txn.ItemID(r.String())
	}
	return ids
}

// appendNested frames an inner message as a length-prefixed byte field, so
// optional embedded messages (a served VerifiedReadResp, a served VO) reuse
// their own codec verbatim, header included.
func appendNested(buf []byte, m binaryMessage) []byte {
	if m == nil {
		return binenc.AppendBool(buf, false)
	}
	buf = binenc.AppendBool(buf, true)
	return binenc.AppendBytes(buf, m.AppendBinary(nil))
}

func decodeNested(r *binenc.Reader, m binaryMessage) (bool, error) {
	if !r.Bool() {
		return false, r.Err()
	}
	raw := r.Bytes()
	if err := r.Err(); err != nil {
		return false, err
	}
	if err := m.UnmarshalBinary(raw); err != nil {
		return false, err
	}
	return true, nil
}

// AppendBinary implements the binary wire codec.
func (m *EvidenceBundle) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idEvidenceBundle)
	buf = binenc.AppendString(buf, m.Kind)
	buf = binenc.AppendUvarint(buf, uint64(len(m.Accused)))
	for _, id := range m.Accused {
		buf = binenc.AppendString(buf, string(id))
	}
	buf = binenc.AppendUint64(buf, m.Height)
	buf = binenc.AppendString(buf, string(m.Item))
	buf = binenc.AppendString(buf, m.TxnID)
	buf = binenc.AppendString(buf, m.Detail)
	buf = binenc.AppendUvarint(buf, uint64(len(m.Blocks)))
	for _, b := range m.Blocks {
		buf = appendBlockPtr(buf, b)
	}
	buf = appendHeaderPtr(buf, m.Anchor)
	buf = appendHeaderPtr(buf, m.BadHeader)
	buf = appendItemIDs(buf, m.ReadIDs)
	if m.Read == nil {
		buf = appendNested(buf, nil)
	} else {
		buf = appendNested(buf, m.Read)
	}
	if m.Proof == nil {
		buf = appendNested(buf, nil)
	} else {
		buf = appendNested(buf, m.Proof)
	}
	return buf
}

// UnmarshalBinary implements the binary wire codec.
func (m *EvidenceBundle) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idEvidenceBundle)
	if err != nil {
		return err
	}
	m.Kind = r.String()
	m.Accused = nil
	if n := r.Count(1); n > 0 {
		m.Accused = make([]identity.NodeID, n)
		for i := range m.Accused {
			m.Accused[i] = identity.NodeID(r.String())
		}
	}
	m.Height = r.Uint64()
	m.Item = txn.ItemID(r.String())
	m.TxnID = r.String()
	m.Detail = r.String()
	m.Blocks = nil
	if n := r.Count(1); n > 0 {
		m.Blocks = make([]*ledger.Block, n)
		for i := range m.Blocks {
			if m.Blocks[i], err = decodeBlockPtr(&r); err != nil {
				return err
			}
			// Replay evidence never legitimately contains a hole.
			if m.Blocks[i] == nil {
				return fmt.Errorf("wire: decode %s: nil block at index %d", MsgEvidenceBundle, i)
			}
		}
	}
	if m.Anchor, err = decodeHeaderPtr(&r); err != nil {
		return err
	}
	if m.BadHeader, err = decodeHeaderPtr(&r); err != nil {
		return err
	}
	m.ReadIDs = decodeItemIDs(&r)
	m.Read = nil
	read := new(VerifiedReadResp)
	if ok, err := decodeNested(&r, read); err != nil {
		return err
	} else if ok {
		m.Read = read
	}
	m.Proof = nil
	proof := new(FetchProofResp)
	if ok, err := decodeNested(&r, proof); err != nil {
		return err
	} else if ok {
		m.Proof = proof
	}
	return finish(&r, MsgEvidenceBundle)
}

// AppendBinary implements the binary wire codec.
func (m *IntegrityStatus) AppendBinary(buf []byte) []byte {
	buf = appendHeader(buf, idIntegrityStatus)
	buf = binenc.AppendString(buf, string(m.Watcher))
	buf = binenc.AppendUint64(buf, m.Tip)
	buf = binenc.AppendUint64(buf, m.Verified)
	buf = binenc.AppendUint64(buf, m.Lag)
	buf = binenc.AppendUint64(buf, m.BlocksVerified)
	buf = binenc.AppendUint64(buf, m.SampledReads)
	buf = binenc.AppendUint64(buf, m.Findings)
	buf = binenc.AppendUvarint(buf, uint64(len(m.Alerts)))
	for i := range m.Alerts {
		buf = binenc.AppendString(buf, m.Alerts[i].Rule)
		buf = binenc.AppendString(buf, m.Alerts[i].Severity)
		buf = binenc.AppendString(buf, m.Alerts[i].Message)
	}
	return binenc.AppendBool(buf, m.Healthy)
}

// UnmarshalBinary implements the binary wire codec.
func (m *IntegrityStatus) UnmarshalBinary(data []byte) error {
	r, err := openHeader(data, idIntegrityStatus)
	if err != nil {
		return err
	}
	m.Watcher = identity.NodeID(r.String())
	m.Tip = r.Uint64()
	m.Verified = r.Uint64()
	m.Lag = r.Uint64()
	m.BlocksVerified = r.Uint64()
	m.SampledReads = r.Uint64()
	m.Findings = r.Uint64()
	m.Alerts = nil
	// Minimum alert encoding: three empty length prefixes.
	if n := r.Count(3); n > 0 {
		m.Alerts = make([]IntegrityAlert, n)
		for i := range m.Alerts {
			m.Alerts[i].Rule = r.String()
			m.Alerts[i].Severity = r.String()
			m.Alerts[i].Message = r.String()
		}
	}
	m.Healthy = r.Bool()
	return finish(&r, MsgIntegrityStatus)
}

// Decode decodes an arbitrary binary wire message from its self-describing
// header, returning the concrete message struct. It is the debugging and
// fuzzing entry point: any byte string either decodes into exactly one
// message type or fails with an error — never a panic.
func Decode(data []byte) (any, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("wire: message shorter than header (%d bytes)", len(data))
	}
	m := newMessage(data[1])
	if m == nil {
		return nil, fmt.Errorf("wire: unknown message id %d", data[1])
	}
	if err := m.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return m, nil
}

// binaryMessage is implemented by every wire message struct.
type binaryMessage interface {
	AppendBinary(buf []byte) []byte
	UnmarshalBinary(data []byte) error
}

// newMessage instantiates the message struct for a numeric id.
func newMessage(id byte) binaryMessage {
	switch id {
	case idBeginTxnReq:
		return new(BeginTxnReq)
	case idBeginTxnResp:
		return new(BeginTxnResp)
	case idReadReq:
		return new(ReadReq)
	case idReadResp:
		return new(ReadResp)
	case idWriteReq:
		return new(WriteReq)
	case idWriteResp:
		return new(WriteResp)
	case idEndTxnReq:
		return new(EndTxnReq)
	case idEndTxnResp:
		return new(EndTxnResp)
	case idGetVoteReq:
		return new(GetVoteReq)
	case idVoteResp:
		return new(VoteResp)
	case idChallengeReq:
		return new(ChallengeReq)
	case idChallengeResp:
		return new(ChallengeResp)
	case idDecisionReq:
		return new(DecisionReq)
	case idDecisionResp:
		return new(DecisionResp)
	case idPrepareReq:
		return new(PrepareReq)
	case idPrepareResp:
		return new(PrepareResp)
	case idTwoPCDecisionReq:
		return new(TwoPCDecisionReq)
	case idTwoPCDecisionResp:
		return new(TwoPCDecisionResp)
	case idFetchLogReq:
		return new(FetchLogReq)
	case idFetchLogResp:
		return new(FetchLogResp)
	case idFetchProofReq:
		return new(FetchProofReq)
	case idFetchProofResp:
		return new(FetchProofResp)
	case idFetchHeadersReq:
		return new(FetchHeadersReq)
	case idFetchHeadersResp:
		return new(FetchHeadersResp)
	case idVerifiedReadReq:
		return new(VerifiedReadReq)
	case idVerifiedReadResp:
		return new(VerifiedReadResp)
	case idAskDecisionReq:
		return new(AskDecisionReq)
	case idAskDecisionResp:
		return new(AskDecisionResp)
	case idFetchBlocksReq:
		return new(FetchBlocksReq)
	case idFetchBlocksResp:
		return new(FetchBlocksResp)
	case idEvidenceBundle:
		return new(EvidenceBundle)
	case idIntegrityStatus:
		return new(IntegrityStatus)
	default:
		return nil
	}
}
