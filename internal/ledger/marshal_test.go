package ledger

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/identity"
	"repro/internal/txn"
)

func marshalTestBlock() *Block {
	return &Block{
		Height: 9,
		Txns: []TxnRecord{
			{
				TxnID: "c1-t1",
				TS:    txn.Timestamp{Time: 11, ClientID: 1},
				Reads: []txn.ReadEntry{
					{ID: "a", Value: []byte("va"), RTS: txn.Timestamp{Time: 1, ClientID: 1}, WTS: txn.Timestamp{Time: 2, ClientID: 1}},
				},
				Writes: []txn.WriteEntry{
					{ID: "b", NewVal: bytes.Repeat([]byte("w"), 2048), OldVal: []byte("o"), Blind: true},
				},
			},
		},
		Roots: map[identity.NodeID][]byte{
			"s01": bytes.Repeat([]byte{1}, 32),
			"s00": bytes.Repeat([]byte{2}, 32),
		},
		Decision: DecisionCommit,
		PrevHash: bytes.Repeat([]byte{3}, 32),
		Signers:  []identity.NodeID{"s00", "s01"},
		CoSigC:   []byte{4, 4},
		CoSigS:   []byte{5, 5},
	}
}

func TestBlockBinaryRoundTrip(t *testing.T) {
	for _, in := range []*Block{
		{}, // zero block
		{Height: 1, Txns: []TxnRecord{{TxnID: "t", TS: txn.Timestamp{Time: 1, ClientID: 1}}}},
		marshalTestBlock(),
	} {
		data := in.AppendBinary(nil)
		var out Block
		if err := out.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, &out) {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, &out)
		}
	}
}

func TestBlockBinaryPreservesCanonicalBytes(t *testing.T) {
	in := marshalTestBlock()
	var out Block
	if err := out.UnmarshalBinary(in.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in.SigningBytes(), out.SigningBytes()) {
		t.Fatal("signing bytes differ after decode")
	}
	if !bytes.Equal(in.StrippedBytes(), out.StrippedBytes()) {
		t.Fatal("stripped bytes differ after decode")
	}
	if !bytes.Equal(in.Hash(), out.Hash()) {
		t.Fatal("hash differs after decode")
	}
}

func TestStrippedBytesEqualsClearedSigningBytes(t *testing.T) {
	// StrippedBytes avoids the deep clone of the original implementation;
	// it must still equal the signing bytes of a cleared clone.
	b := marshalTestBlock()
	c := b.Clone()
	c.Roots = nil
	c.Decision = 0
	c.CoSigC, c.CoSigS = nil, nil
	if !bytes.Equal(b.StrippedBytes(), c.SigningBytes()) {
		t.Fatal("stripped bytes diverge from cleared clone's signing bytes")
	}
}

func TestBlockBinaryRejectsGarbage(t *testing.T) {
	valid := marshalTestBlock().AppendBinary(nil)
	for i := 0; i < len(valid); i += 3 {
		var out Block
		if err := out.UnmarshalBinary(valid[:i]); err == nil {
			t.Fatalf("accepted truncation at %d bytes", i)
		}
	}
	var out Block
	if err := out.UnmarshalBinary(append(append([]byte(nil), valid...), 1)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}
