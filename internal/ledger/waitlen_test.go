package ledger

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestWaitLenReturnsImmediately: a satisfied wait never blocks.
func TestWaitLenReturnsImmediately(t *testing.T) {
	l := NewLog()
	if err := l.WaitLen(context.Background(), 0, time.Millisecond); err != nil {
		t.Fatalf("WaitLen(0) on empty log: %v", err)
	}
	if err := l.Append(sampleBlock(0, nil)); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitLen(context.Background(), 1, time.Millisecond); err != nil {
		t.Fatalf("WaitLen(1) on 1-block log: %v", err)
	}
}

// TestWaitLenWakesOnAppend: the out-of-order staging gate — a waiter for a
// future height unblocks exactly when the log grows to it.
func TestWaitLenWakesOnAppend(t *testing.T) {
	l := NewLog()
	genesis := sampleBlock(0, nil)

	done := make(chan error, 1)
	go func() {
		done <- l.WaitLen(context.Background(), 2, 5*time.Second)
	}()

	time.Sleep(2 * time.Millisecond) // let the waiter park
	if err := l.Append(genesis); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		t.Fatalf("waiter for height 2 woke after 1 append: %v", err)
	case <-time.After(5 * time.Millisecond):
	}
	if err := l.Append(sampleBlock(1, genesis.Hash())); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitLen after catch-up: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke after the log caught up")
	}
}

// TestWaitLenTimesOut: a wedged pipeline surfaces as ErrWaitTimeout rather
// than a hung handler.
func TestWaitLenTimesOut(t *testing.T) {
	l := NewLog()
	err := l.WaitLen(context.Background(), 3, 5*time.Millisecond)
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("err = %v, want ErrWaitTimeout", err)
	}
}

// TestWaitLenHonorsContext: cancellation beats the timeout.
func TestWaitLenHonorsContext(t *testing.T) {
	l := NewLog()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.WaitLen(ctx, 3, time.Minute) }()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitLen ignored context cancellation")
	}
}
