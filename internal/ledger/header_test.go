package ledger

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/identity"
)

// TestHeaderMatchesBlock pins the property the light client depends on:
// a header extracted from a block reproduces the block's signing bytes and
// chaining hash exactly, so the block's collective signature and the hash
// chain verify from headers alone.
func TestHeaderMatchesBlock(t *testing.T) {
	b := sampleBlock(3, []byte("prev"))
	reg, _ := signBlock(t, b, 4)

	h := b.Header()
	if !bytes.Equal(h.SigningBytes(), b.SigningBytes()) {
		t.Fatal("header signing bytes differ from block signing bytes")
	}
	if !bytes.Equal(h.Hash(), b.Hash()) {
		t.Fatal("header hash differs from block hash")
	}
	if !h.Matches(b) {
		t.Fatal("header does not match its originating block")
	}
	if err := VerifyHeaderSig(h, reg); err != nil {
		t.Fatalf("header co-sign failed to verify: %v", err)
	}
}

func TestHeaderVerifyDetectsTampering(t *testing.T) {
	b := sampleBlock(1, []byte("prev"))
	reg, signers := signBlock(t, b, 3)

	// Any mutation of a co-signed field must break verification.
	mutations := map[string]func(h *Header){
		"height":   func(h *Header) { h.Height++ },
		"txnshash": func(h *Header) { h.TxnsHash[0] ^= 1 },
		"root":     func(h *Header) { h.Roots[signers[0]] = []byte("forged") },
		"decision": func(h *Header) { h.Decision = DecisionAbort },
		"prevhash": func(h *Header) { h.PrevHash = []byte("other") },
		"cosig":    func(h *Header) { h.CoSigS[0] ^= 1 },
	}
	for name, mutate := range mutations {
		h := b.Header()
		if h.Roots == nil {
			h.Roots = map[identity.NodeID][]byte{}
		}
		mutate(h)
		if err := VerifyHeaderSig(h, reg); !errors.Is(err, ErrHeaderCoSig) {
			t.Fatalf("mutation %q: got %v, want ErrHeaderCoSig", name, err)
		}
	}

	// No signers at all is rejected too.
	h := b.Header()
	h.Signers = nil
	if err := VerifyHeaderSig(h, reg); !errors.Is(err, ErrHeaderCoSig) {
		t.Fatalf("no signers: got %v, want ErrHeaderCoSig", err)
	}
}

func TestHeaderBinaryRoundTrip(t *testing.T) {
	b := sampleBlock(7, []byte("prev"))
	signBlock(t, b, 3)
	h := b.Header()

	data := h.AppendBinary(nil)
	var out Header
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(*h, out) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", h, out)
	}

	// Zero-value header round-trips as well.
	var zero Header
	data = zero.AppendBinary(nil)
	var zout Header
	if err := zout.UnmarshalBinary(data); err != nil {
		t.Fatalf("decode zero: %v", err)
	}

	// Truncations fail cleanly.
	full := h.AppendBinary(nil)
	for i := 0; i < len(full); i += 5 {
		var tr Header
		if err := tr.UnmarshalBinary(full[:i]); err == nil {
			t.Fatalf("accepted truncation at %d/%d", i, len(full))
		}
	}
}

func TestHeaderCloneIsDeep(t *testing.T) {
	b := sampleBlock(2, []byte("prev"))
	signBlock(t, b, 3)
	h := b.Header()
	c := h.Clone()
	c.TxnsHash[0] ^= 1
	c.PrevHash[0] ^= 1
	c.CoSigC[0] ^= 1
	for id := range c.Roots {
		c.Roots[id][0] ^= 1
		break
	}
	if !bytes.Equal(h.SigningBytes(), b.Header().SigningBytes()) {
		t.Fatal("mutating a clone reached the original header")
	}
}
