package ledger

import (
	"bytes"
	"math/big"
	"testing"

	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/schnorr"
	"repro/internal/txn"
)

func sampleBlock(height uint64, prev []byte) *Block {
	return &Block{
		Height: height,
		Txns: []TxnRecord{{
			TxnID: "t1",
			TS:    txn.Timestamp{Time: 10, ClientID: 1},
			Reads: []txn.ReadEntry{{
				ID: "x", Value: []byte("1000"),
				RTS: txn.Timestamp{Time: 92, ClientID: 1},
				WTS: txn.Timestamp{Time: 88, ClientID: 1},
			}},
			Writes: []txn.WriteEntry{{
				ID: "x", NewVal: []byte("900"),
				RTS: txn.Timestamp{Time: 92, ClientID: 1},
				WTS: txn.Timestamp{Time: 88, ClientID: 1},
			}},
		}},
		Roots:    map[identity.NodeID][]byte{"s1": []byte("root-1"), "s0": []byte("root-0")},
		Decision: DecisionCommit,
		PrevHash: prev,
		Signers:  []identity.NodeID{"s0", "s1"},
	}
}

func TestSigningBytesDeterministic(t *testing.T) {
	b1 := sampleBlock(1, []byte("prev"))
	b2 := sampleBlock(1, []byte("prev"))
	if !bytes.Equal(b1.SigningBytes(), b2.SigningBytes()) {
		t.Fatal("identical blocks encode differently")
	}
	// Map iteration order must not leak into the encoding: build the roots
	// in reverse insertion order.
	b3 := sampleBlock(1, []byte("prev"))
	b3.Roots = map[identity.NodeID][]byte{}
	b3.Roots["s0"] = []byte("root-0")
	b3.Roots["s1"] = []byte("root-1")
	if !bytes.Equal(b1.SigningBytes(), b3.SigningBytes()) {
		t.Fatal("roots map order changes encoding")
	}
}

func TestSigningBytesSensitivity(t *testing.T) {
	base := sampleBlock(1, []byte("prev")).SigningBytes()
	mutations := map[string]func(*Block){
		"height":     func(b *Block) { b.Height = 2 },
		"txn id":     func(b *Block) { b.Txns[0].TxnID = "t2" },
		"ts":         func(b *Block) { b.Txns[0].TS.Time = 11 },
		"read value": func(b *Block) { b.Txns[0].Reads[0].Value = []byte("1001") },
		"read rts":   func(b *Block) { b.Txns[0].Reads[0].RTS.Time = 93 },
		"write val":  func(b *Block) { b.Txns[0].Writes[0].NewVal = []byte("901") },
		"blind flag": func(b *Block) { b.Txns[0].Writes[0].Blind = true },
		"roots":      func(b *Block) { b.Roots["s1"] = []byte("forged") },
		"root set":   func(b *Block) { delete(b.Roots, "s0") },
		"decision":   func(b *Block) { b.Decision = DecisionAbort },
		"prev hash":  func(b *Block) { b.PrevHash = []byte("other") },
		"signers":    func(b *Block) { b.Signers = b.Signers[:1] },
	}
	for name, mutate := range mutations {
		b := sampleBlock(1, []byte("prev"))
		mutate(b)
		if bytes.Equal(b.SigningBytes(), base) {
			t.Errorf("mutation %q does not change signing bytes", name)
		}
	}
}

func TestHashCoversCoSig(t *testing.T) {
	b := sampleBlock(0, nil)
	h1 := b.Hash()
	b.SetCoSig(schnorr.Signature{C: big.NewInt(1), S: big.NewInt(2)})
	if bytes.Equal(b.Hash(), h1) {
		t.Error("hash ignores the collective signature")
	}
}

func TestStrippedBytesIgnoresLateFields(t *testing.T) {
	b := sampleBlock(3, []byte("p"))
	partial := b.Clone()
	partial.Roots = nil
	partial.Decision = 0
	if !bytes.Equal(b.StrippedBytes(), partial.SigningBytes()) {
		t.Error("stripped bytes disagree with cleared block")
	}
	// But transaction mutations must still show.
	mutated := b.Clone()
	mutated.Txns[0].Writes[0].NewVal = []byte("evil")
	if bytes.Equal(b.StrippedBytes(), mutated.StrippedBytes()) {
		t.Error("stripped bytes ignore txn mutation")
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := sampleBlock(0, []byte("p"))
	b.SetCoSig(schnorr.Signature{C: big.NewInt(7), S: big.NewInt(8)})
	c := b.Clone()
	c.Txns[0].Writes[0].NewVal[0] = 'X'
	c.Roots["s1"][0] = 'X'
	c.PrevHash[0] = 'X'
	c.Signers[0] = "evil"
	c.CoSigC[0] ^= 0xff
	if !bytes.Equal(b.Txns[0].Writes[0].NewVal, []byte("900")) {
		t.Error("clone shares write values")
	}
	if !bytes.Equal(b.Roots["s1"], []byte("root-1")) {
		t.Error("clone shares roots")
	}
	if !bytes.Equal(b.PrevHash, []byte("p")) {
		t.Error("clone shares prev hash")
	}
	if b.Signers[0] != "s0" {
		t.Error("clone shares signers")
	}
}

func TestLogAppendChecksChain(t *testing.T) {
	l := NewLog()
	genesis := sampleBlock(0, nil)
	if err := l.Append(genesis); err != nil {
		t.Fatalf("genesis append: %v", err)
	}
	// Wrong height.
	if err := l.Append(sampleBlock(0, genesis.Hash())); err == nil {
		t.Error("duplicate height accepted")
	}
	// Wrong prev hash.
	bad := sampleBlock(1, []byte("bogus"))
	if err := l.Append(bad); err == nil {
		t.Error("broken prev hash accepted")
	}
	// Correct extension.
	b1 := sampleBlock(1, genesis.Hash())
	if err := l.Append(b1); err != nil {
		t.Fatalf("append: %v", err)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := l.Tip(); got.Height != 1 {
		t.Fatalf("Tip height = %d", got.Height)
	}
	if !bytes.Equal(l.TipHash(), b1.Hash()) {
		t.Fatal("TipHash mismatch")
	}
	if _, err := l.Get(5); err == nil {
		t.Error("Get past end accepted")
	}
	// Genesis with non-empty prev hash.
	l2 := NewLog()
	if err := l2.Append(sampleBlock(0, []byte("x"))); err == nil {
		t.Error("genesis with prev hash accepted")
	}
}

func TestMaxTS(t *testing.T) {
	b := sampleBlock(0, nil)
	b.Txns = append(b.Txns, TxnRecord{TxnID: "t2", TS: txn.Timestamp{Time: 99, ClientID: 2}})
	if got := b.MaxTS(); got != (txn.Timestamp{Time: 99, ClientID: 2}) {
		t.Errorf("MaxTS = %v", got)
	}
}

// signBlock produces a genuine collective signature over the block with
// fresh server identities registered in reg.
func signBlock(t *testing.T, b *Block, n int) (*identity.Registry, []identity.NodeID) {
	t.Helper()
	reg := identity.NewRegistry()
	ids := make([]identity.NodeID, n)
	privs := make([]*schnorr.PrivateKey, n)
	pubs := make([]schnorr.PublicKey, n)
	for i := 0; i < n; i++ {
		ids[i] = identity.NodeID(rune('a' + i))
		ident, err := identity.New(ids[i], identity.RoleServer, nil)
		if err != nil {
			t.Fatal(err)
		}
		reg.Register(ident.Public())
		privs[i] = ident.Schnorr
		pubs[i] = ident.Schnorr.Public
	}
	b.Signers = ids

	commitments := make([]cosi.Commitment, n)
	secrets := make([]cosi.Secret, n)
	for i := 0; i < n; i++ {
		c, s, err := cosi.Commit(nil)
		if err != nil {
			t.Fatal(err)
		}
		commitments[i] = c
		secrets[i] = s
	}
	aggV, err := cosi.AggregateCommitments(commitments)
	if err != nil {
		t.Fatal(err)
	}
	aggPub, err := cosi.AggregatePublicKeys(pubs)
	if err != nil {
		t.Fatal(err)
	}
	ch := cosi.Challenge(aggV, aggPub, b.SigningBytes())
	responses := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		r, err := cosi.Respond(privs[i], &secrets[i], ch)
		if err != nil {
			t.Fatal(err)
		}
		responses[i] = r
	}
	aggR, err := cosi.AggregateResponses(responses)
	if err != nil {
		t.Fatal(err)
	}
	b.SetCoSig(cosi.Finalize(ch, aggR))
	return reg, ids
}

func TestVerifyChain(t *testing.T) {
	b0 := sampleBlock(0, nil)
	reg, ids := signBlock(t, b0, 3)

	b1 := sampleBlock(1, b0.Hash())
	b1.Signers = ids
	// Sign b1 with the same identities: rebuild via helper on a fresh
	// registry is wrong here, so sign manually using the registered keys.
	// Easiest: reuse signBlock on a copy and transplant — instead just
	// re-sign using identities is not accessible; so create chain of one
	// block and verify errors on the second.
	if at, err := VerifyChain([]*Block{b0}, reg); err != nil || at != -1 {
		t.Fatalf("valid single-block chain rejected: at=%d err=%v", at, err)
	}

	// Tampered content breaks the co-sign.
	tampered := b0.Clone()
	tampered.Txns[0].Writes[0].NewVal = []byte("evil")
	if at, err := VerifyChain([]*Block{tampered}, reg); err == nil {
		t.Error("tampered block verified")
	} else if at != 0 {
		t.Errorf("tamper flagged at %d, want 0", at)
	}

	// Unsigned follow-up block: prev-hash OK but no co-sign.
	if at, err := VerifyChain([]*Block{b0, b1}, reg); err == nil {
		t.Error("unsigned block verified")
	} else if at != 1 {
		t.Errorf("unsigned block flagged at %d, want 1", at)
	}

	// Broken prev-hash.
	b1bad := sampleBlock(1, []byte("wrong"))
	b1bad.Signers = ids
	if at, err := VerifyChain([]*Block{b0, b1bad}, reg); err == nil || at != 1 {
		t.Errorf("broken prev-hash not flagged at 1: at=%d err=%v", at, err)
	}

	// Wrong height numbering.
	b2 := b0.Clone()
	b2.Height = 5
	if at, err := VerifyChain([]*Block{b2}, reg); err == nil || at != 0 {
		t.Errorf("bad height not flagged: at=%d err=%v", at, err)
	}

	// Unknown signer set.
	ghost := sampleBlock(0, nil)
	ghost.Signers = []identity.NodeID{"ghost"}
	ghost.SetCoSig(schnorr.Signature{C: big.NewInt(1), S: big.NewInt(1)})
	if _, err := VerifyChain([]*Block{ghost}, reg); err == nil {
		t.Error("unknown signers verified")
	}
}

func TestCanonicalBytesMatchesRecord(t *testing.T) {
	tr := &txn.Transaction{
		ID: "t9", TS: txn.Timestamp{Time: 4, ClientID: 2},
		Reads:  []txn.ReadEntry{{ID: "a", Value: []byte("v")}},
		Writes: []txn.WriteEntry{{ID: "b", NewVal: []byte("w"), Blind: true, OldVal: []byte("o")}},
	}
	recBytes := RecordFromTransaction(tr).CanonicalBytes()
	if !bytes.Equal(recBytes, RecordFromTransaction(tr).CanonicalBytes()) {
		t.Fatal("canonical bytes not deterministic")
	}
	tr.Writes[0].NewVal = []byte("W")
	if bytes.Equal(recBytes, RecordFromTransaction(tr).CanonicalBytes()) {
		t.Fatal("canonical bytes ignore write value")
	}
}

func TestDecisionString(t *testing.T) {
	if DecisionCommit.String() != "commit" || DecisionAbort.String() != "abort" {
		t.Error("decision strings wrong")
	}
	if Decision(9).String() == "" {
		t.Error("unknown decision string empty")
	}
}
