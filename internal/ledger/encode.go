package ledger

import (
	"fmt"
	"sort"

	"repro/internal/binenc"
	"repro/internal/identity"
	"repro/internal/txn"
)

// This file holds the canonical deterministic byte encoding blocks are
// hashed and collectively signed over, plus the full binary marshal and
// unmarshal used by the wire codec. The encoding is length-prefixed
// throughout (uvarint lengths, big-endian fixed-width integers) so that no
// two distinct logical blocks share an encoding and every server derives
// the identical byte string for the same block — a prerequisite for the
// challenge ch = h(X_sch ‖ b_i) of TFCommit to be well defined across
// servers.
//
// The signing encoding (appendSigning) covers everything except the
// collective signature; the wire encoding (AppendBinary) is the signing
// encoding plus a version byte and the co-sign, so a decoded block's
// SigningBytes are byte-identical to the sender's.

// blockBinaryVersion versions the block wire encoding (not the signing
// encoding, which is frozen by the hash chain).
const blockBinaryVersion = 1

func appendTxnRecord(buf []byte, t *TxnRecord) []byte {
	buf = binenc.AppendString(buf, t.TxnID)
	buf = t.TS.AppendBinary(buf)
	buf = binenc.AppendUvarint(buf, uint64(len(t.Reads)))
	for i := range t.Reads {
		buf = t.Reads[i].AppendBinary(buf)
	}
	buf = binenc.AppendUvarint(buf, uint64(len(t.Writes)))
	for i := range t.Writes {
		buf = t.Writes[i].AppendBinary(buf)
	}
	return buf
}

// txnRecordMinEnc is the minimum encoded size of a TxnRecord: id length +
// timestamp + two element counts.
const txnRecordMinEnc = 1 + txn.TimestampEncSize + 1 + 1

func decodeTxnRecord(r *binenc.Reader, t *TxnRecord) {
	t.TxnID = r.String()
	t.TS = txn.DecodeTimestamp(r)
	t.Reads = nil
	if n := r.Count(txn.ReadEntryMinEnc); n > 0 {
		t.Reads = make([]txn.ReadEntry, n)
		for i := range t.Reads {
			txn.DecodeReadEntry(r, &t.Reads[i])
		}
	}
	t.Writes = nil
	if n := r.Count(txn.WriteEntryMinEnc); n > 0 {
		t.Writes = make([]txn.WriteEntry, n)
		for i := range t.Writes {
			txn.DecodeWriteEntry(r, &t.Writes[i])
		}
	}
}

// appendSigning appends the canonical signing encoding of the block with
// the given roots and decision substituted — the stripped form cohorts
// compare across phases is simply the same encoding with those fields
// cleared, which avoids the deep Clone the old StrippedBytes paid per
// phase per block.
func (b *Block) appendSigning(buf []byte, roots map[identity.NodeID][]byte, decision Decision) []byte {
	buf = binenc.AppendUint64(buf, b.Height)
	buf = binenc.AppendUvarint(buf, uint64(len(b.Txns)))
	for i := range b.Txns {
		buf = appendTxnRecord(buf, &b.Txns[i])
	}
	// Roots in deterministic (sorted) key order.
	ids := make([]identity.NodeID, 0, len(roots))
	for id := range roots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binenc.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binenc.AppendString(buf, string(id))
		buf = binenc.AppendBytes(buf, roots[id])
	}
	buf = binenc.AppendByte(buf, byte(decision))
	buf = binenc.AppendBytes(buf, b.PrevHash)
	buf = binenc.AppendUvarint(buf, uint64(len(b.Signers)))
	for _, id := range b.Signers {
		buf = binenc.AppendString(buf, string(id))
	}
	return buf
}

// AppendBinary appends the block's full wire encoding: a version byte, the
// signing encoding, and the collective signature.
func (b *Block) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendByte(buf, blockBinaryVersion)
	buf = b.appendSigning(buf, b.Roots, b.Decision)
	buf = binenc.AppendBytes(buf, b.CoSigC)
	return binenc.AppendBytes(buf, b.CoSigS)
}

// MarshalBinary returns the block's full wire encoding.
func (b *Block) MarshalBinary() ([]byte, error) {
	return b.AppendBinary(nil), nil
}

// DecodeBlock reads an embedded block from r (the self-delimiting form
// wire messages use). The decoded block aliases nothing.
func DecodeBlock(r *binenc.Reader, b *Block) error {
	if v := r.Byte(); v != blockBinaryVersion && r.Err() == nil {
		return fmt.Errorf("ledger: unsupported block version %d", v)
	}
	b.Height = r.Uint64()
	b.Txns = nil
	if n := r.Count(txnRecordMinEnc); n > 0 {
		b.Txns = make([]TxnRecord, n)
		for i := range b.Txns {
			decodeTxnRecord(r, &b.Txns[i])
		}
	}
	b.Roots = nil
	if n := r.Count(2); n > 0 {
		b.Roots = make(map[identity.NodeID][]byte, n)
		for i := 0; i < n; i++ {
			id := identity.NodeID(r.String())
			b.Roots[id] = r.Bytes()
		}
	}
	b.Decision = Decision(r.Byte())
	b.PrevHash = r.Bytes()
	b.Signers = nil
	if n := r.Count(1); n > 0 {
		b.Signers = make([]identity.NodeID, n)
		for i := range b.Signers {
			b.Signers[i] = identity.NodeID(r.String())
		}
	}
	b.CoSigC = r.Bytes()
	b.CoSigS = r.Bytes()
	return r.Err()
}

// UnmarshalBinary decodes a block from its full wire encoding.
func (b *Block) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := DecodeBlock(&r, b); err != nil {
		return fmt.Errorf("ledger: decode block: %w", err)
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("ledger: decode block: %w", err)
	}
	return nil
}
