package ledger

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"repro/internal/binenc"
	"repro/internal/identity"
	"repro/internal/txn"
)

// This file holds the canonical deterministic byte encoding blocks are
// hashed and collectively signed over, plus the full binary marshal and
// unmarshal used by the wire codec. The encoding is length-prefixed
// throughout (uvarint lengths, big-endian fixed-width integers) so that no
// two distinct logical blocks share an encoding and every server derives
// the identical byte string for the same block — a prerequisite for the
// challenge ch = h(X_sch ‖ b_i) of TFCommit to be well defined across
// servers.
//
// The signing encoding (appendSigning) is the block's *header*: every
// field except the collective signature, with the transaction list
// replaced by its hash (TxnsHash). Committing to the transactions by hash
// keeps the co-signed, hash-chained portion of a block constant-size, so
// a light client can verify the whole chain — CoSi and hash pointers —
// from headers alone, without downloading transaction bodies (see
// header.go and internal/lightclient). The wire encoding (AppendBinary)
// carries the full transaction list plus the co-sign; a decoded block's
// SigningBytes are byte-identical to the sender's because TxnsHash is
// recomputed from the same canonical transaction encoding.

// blockBinaryVersion versions the block wire encoding (not the signing
// encoding, which is frozen by the hash chain).
const blockBinaryVersion = 1

func appendTxnRecord(buf []byte, t *TxnRecord) []byte {
	buf = binenc.AppendString(buf, t.TxnID)
	buf = t.TS.AppendBinary(buf)
	buf = binenc.AppendUvarint(buf, uint64(len(t.Reads)))
	for i := range t.Reads {
		buf = t.Reads[i].AppendBinary(buf)
	}
	buf = binenc.AppendUvarint(buf, uint64(len(t.Writes)))
	for i := range t.Writes {
		buf = t.Writes[i].AppendBinary(buf)
	}
	return buf
}

// txnRecordMinEnc is the minimum encoded size of a TxnRecord: id length +
// timestamp + two element counts.
const txnRecordMinEnc = 1 + txn.TimestampEncSize + 1 + 1

func decodeTxnRecord(r *binenc.Reader, t *TxnRecord) {
	t.TxnID = r.String()
	t.TS = txn.DecodeTimestamp(r)
	t.Reads = nil
	if n := r.Count(txn.ReadEntryMinEnc); n > 0 {
		t.Reads = make([]txn.ReadEntry, n)
		for i := range t.Reads {
			txn.DecodeReadEntry(r, &t.Reads[i])
		}
	}
	t.Writes = nil
	if n := r.Count(txn.WriteEntryMinEnc); n > 0 {
		t.Writes = make([]txn.WriteEntry, n)
		for i := range t.Writes {
			txn.DecodeWriteEntry(r, &t.Writes[i])
		}
	}
}

// TxnsHash returns the canonical commitment to the block's transaction
// list: SHA-256 over a domain-separation tag, the transaction count, and
// each record's canonical encoding. The signing encoding embeds this hash
// instead of the inline list, so tampering with any transaction breaks the
// collective signature exactly as before, while headers stay constant-size.
func (b *Block) TxnsHash() []byte {
	h := sha256.New()
	h.Write([]byte("fides/txns/v1"))
	var scratch [10]byte
	n := scratch[:0]
	n = binenc.AppendUvarint(n, uint64(len(b.Txns)))
	h.Write(n)
	var buf []byte
	for i := range b.Txns {
		buf = appendTxnRecord(buf[:0], &b.Txns[i])
		h.Write(buf)
	}
	return h.Sum(nil)
}

// appendHeaderSigning is the shared canonical signing encoding of a block
// header: height, transaction-list hash, roots (sorted key order),
// decision, prev-hash and signer set. Both Block.SigningBytes (which
// derives txnsHash from its transaction list) and Header.SigningBytes
// (which stores the hash directly) produce these exact bytes.
func appendHeaderSigning(buf []byte, height uint64, txnsHash []byte, roots map[identity.NodeID][]byte, decision Decision, prevHash []byte, signers []identity.NodeID) []byte {
	buf = binenc.AppendUint64(buf, height)
	buf = binenc.AppendBytes(buf, txnsHash)
	// Roots in deterministic (sorted) key order.
	ids := make([]identity.NodeID, 0, len(roots))
	for id := range roots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binenc.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binenc.AppendString(buf, string(id))
		buf = binenc.AppendBytes(buf, roots[id])
	}
	buf = binenc.AppendByte(buf, byte(decision))
	buf = binenc.AppendBytes(buf, prevHash)
	buf = binenc.AppendUvarint(buf, uint64(len(signers)))
	for _, id := range signers {
		buf = binenc.AppendString(buf, string(id))
	}
	return buf
}

// appendSigning appends the canonical signing encoding of the block with
// the given roots and decision substituted — the stripped form cohorts
// compare across phases is simply the same encoding with those fields
// cleared, which avoids the deep Clone the old StrippedBytes paid per
// phase per block.
func (b *Block) appendSigning(buf []byte, roots map[identity.NodeID][]byte, decision Decision) []byte {
	return appendHeaderSigning(buf, b.Height, b.TxnsHash(), roots, decision, b.PrevHash, b.Signers)
}

// AppendBinary appends the block's full wire encoding: a version byte, the
// block fields with the full transaction list inline, and the collective
// signature.
func (b *Block) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendByte(buf, blockBinaryVersion)
	buf = binenc.AppendUint64(buf, b.Height)
	buf = binenc.AppendUvarint(buf, uint64(len(b.Txns)))
	for i := range b.Txns {
		buf = appendTxnRecord(buf, &b.Txns[i])
	}
	ids := make([]identity.NodeID, 0, len(b.Roots))
	for id := range b.Roots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binenc.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binenc.AppendString(buf, string(id))
		buf = binenc.AppendBytes(buf, b.Roots[id])
	}
	buf = binenc.AppendByte(buf, byte(b.Decision))
	buf = binenc.AppendBytes(buf, b.PrevHash)
	buf = binenc.AppendUvarint(buf, uint64(len(b.Signers)))
	for _, id := range b.Signers {
		buf = binenc.AppendString(buf, string(id))
	}
	buf = binenc.AppendBytes(buf, b.CoSigC)
	return binenc.AppendBytes(buf, b.CoSigS)
}

// MarshalBinary returns the block's full wire encoding.
func (b *Block) MarshalBinary() ([]byte, error) {
	return b.AppendBinary(nil), nil
}

// DecodeBlock reads an embedded block from r (the self-delimiting form
// wire messages use). The decoded block aliases nothing.
func DecodeBlock(r *binenc.Reader, b *Block) error {
	if v := r.Byte(); v != blockBinaryVersion && r.Err() == nil {
		return fmt.Errorf("ledger: unsupported block version %d", v)
	}
	b.Height = r.Uint64()
	b.Txns = nil
	if n := r.Count(txnRecordMinEnc); n > 0 {
		b.Txns = make([]TxnRecord, n)
		for i := range b.Txns {
			decodeTxnRecord(r, &b.Txns[i])
		}
	}
	b.Roots = nil
	if n := r.Count(2); n > 0 {
		b.Roots = make(map[identity.NodeID][]byte, n)
		for i := 0; i < n; i++ {
			id := identity.NodeID(r.String())
			b.Roots[id] = r.Bytes()
		}
	}
	b.Decision = Decision(r.Byte())
	b.PrevHash = r.Bytes()
	b.Signers = nil
	if n := r.Count(1); n > 0 {
		b.Signers = make([]identity.NodeID, n)
		for i := range b.Signers {
			b.Signers[i] = identity.NodeID(r.String())
		}
	}
	b.CoSigC = r.Bytes()
	b.CoSigS = r.Bytes()
	return r.Err()
}

// UnmarshalBinary decodes a block from its full wire encoding.
func (b *Block) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := DecodeBlock(&r, b); err != nil {
		return fmt.Errorf("ledger: decode block: %w", err)
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("ledger: decode block: %w", err)
	}
	return nil
}
