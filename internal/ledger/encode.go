package ledger

import (
	"encoding/binary"

	"repro/internal/txn"
)

// encoder builds the canonical deterministic byte encoding blocks are hashed
// and collectively signed over. The encoding is length-prefixed throughout
// (uvarint lengths, big-endian fixed-width integers) so that no two distinct
// logical blocks share an encoding and every server derives the identical
// byte string for the same block — a prerequisite for the challenge
// ch = h(X_sch ‖ b_i) of TFCommit to be well defined across servers.
type encoder struct {
	buf []byte
}

func (e *encoder) byte(b byte) {
	e.buf = append(e.buf, b)
}

func (e *encoder) uint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) uint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) timestamp(ts txn.Timestamp) {
	e.uint64(ts.Time)
	e.uint32(ts.ClientID)
}
