package ledger

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/cosi"
	"repro/internal/identity"
)

// Verification errors. Each wraps enough position information for an
// auditor to report the precise first block at which a log is invalid
// (paper Lemmas 6 and 7).
var (
	ErrChainHeight   = errors.New("ledger: non-contiguous block heights")
	ErrChainPrevHash = errors.New("ledger: broken hash pointer")
	ErrChainCoSig    = errors.New("ledger: invalid collective signature")
	ErrChainSigners  = errors.New("ledger: unresolvable signer set")
)

// VerifyChain checks a sequence of blocks as shipped by one server: heights
// must be contiguous from 0, every PrevHash must equal the previous block's
// hash, and every block must carry a valid collective signature from its
// declared signer set. It returns the height of the first invalid block and
// a describing error, or (-1, nil) if the chain is fully valid.
//
// This is the auditor's first step (paper §3.3, Lemma 6): "the signature is
// tied specifically to one block and if the contents of the block are
// manipulated, the signature verification will fail"; and because each entry
// carries the hash of the previous block, reordering breaks the chain.
func VerifyChain(blocks []*Block, keys *identity.Registry) (int, error) {
	var prevHash []byte
	for i, b := range blocks {
		// A nil entry can only come from a malformed or malicious log
		// transfer; fail the chain rather than dereference it.
		if b == nil {
			return i, fmt.Errorf("%w: block %d is missing", ErrChainHeight, i)
		}
		if b.Height != uint64(i) {
			return i, fmt.Errorf("%w: block %d declares height %d", ErrChainHeight, i, b.Height)
		}
		if i == 0 {
			if len(b.PrevHash) != 0 {
				return i, fmt.Errorf("%w: genesis block has non-empty prev-hash", ErrChainPrevHash)
			}
		} else if !bytes.Equal(b.PrevHash, prevHash) {
			return i, fmt.Errorf("%w: block %d prev-hash does not match block %d", ErrChainPrevHash, i, i-1)
		}
		if err := VerifyBlockSig(b, keys); err != nil {
			return i, err
		}
		prevHash = b.Hash()
	}
	return -1, nil
}

// VerifyChainWith is VerifyChain through an injected verification backend
// — the auditor's form when one process re-verifies many logs over the
// same chain: identical co-signed blocks across servers become verdict
// cache hits instead of repeated aggregate checks.
func VerifyChainWith(v CoSigVerifier, blocks []*Block) (int, error) {
	var prevHash []byte
	for i, b := range blocks {
		if b == nil {
			return i, fmt.Errorf("%w: block %d is missing", ErrChainHeight, i)
		}
		if b.Height != uint64(i) {
			return i, fmt.Errorf("%w: block %d declares height %d", ErrChainHeight, i, b.Height)
		}
		if i == 0 {
			if len(b.PrevHash) != 0 {
				return i, fmt.Errorf("%w: genesis block has non-empty prev-hash", ErrChainPrevHash)
			}
		} else if !bytes.Equal(b.PrevHash, prevHash) {
			return i, fmt.Errorf("%w: block %d prev-hash does not match block %d", ErrChainPrevHash, i, i-1)
		}
		if err := VerifyBlockSigWith(v, b); err != nil {
			return i, err
		}
		prevHash = b.Hash()
	}
	return -1, nil
}

// CoSigVerifier abstracts collective-signature verification so block and
// header checks can route through an injected verification backend
// (internal/crypto's serial or batched Verifier) instead of hand-rolling
// the aggregate check at every call site. Implementations return an
// error describing why the signature is unacceptable (unresolvable
// signer, invalid signature); nil means the co-sign verifies.
type CoSigVerifier interface {
	VerifyCoSig(signers []identity.NodeID, record []byte, sig cosi.Signature) error
}

// VerifyBlockSig checks the collective signature of a single block against
// the aggregate Schnorr public key of its declared signers.
func VerifyBlockSig(b *Block, keys *identity.Registry) error {
	return VerifyBlockSigBytes(b, b.SigningBytes(), keys)
}

// VerifyBlockSigWith is VerifyBlockSig through an injected verification
// backend — the commit hot path's form (cohort Decide, catch-up,
// watchtower tail), where the backend may batch, parallelize or replay a
// cached verdict for these exact bytes.
func VerifyBlockSigWith(v CoSigVerifier, b *Block) error {
	return VerifyBlockSigBytesWith(v, b, b.SigningBytes())
}

// VerifyBlockSigBytesWith is VerifyBlockSigWith for callers that already
// hold the block's canonical signing bytes.
func VerifyBlockSigBytesWith(v CoSigVerifier, b *Block, signingBytes []byte) error {
	if len(b.Signers) == 0 {
		return fmt.Errorf("%w: block %d has no signers", ErrChainSigners, b.Height)
	}
	sig := b.CoSig()
	if sig.IsZero() {
		return fmt.Errorf("%w: block %d has no co-sign", ErrChainCoSig, b.Height)
	}
	if err := v.VerifyCoSig(b.Signers, signingBytes, sig); err != nil {
		return fmt.Errorf("%w: block %d: %v", ErrChainCoSig, b.Height, err)
	}
	return nil
}

// VerifyBlockSigBytes is VerifyBlockSig for callers that already hold the
// block's canonical signing bytes — commitment-layer handlers compute them
// once per phase and reuse them for the equality check and the signature
// verification instead of re-encoding the block.
func VerifyBlockSigBytes(b *Block, signingBytes []byte, keys *identity.Registry) error {
	if len(b.Signers) == 0 {
		return fmt.Errorf("%w: block %d has no signers", ErrChainSigners, b.Height)
	}
	pubs, err := keys.SchnorrKeys(b.Signers)
	if err != nil {
		return fmt.Errorf("%w: block %d: %v", ErrChainSigners, b.Height, err)
	}
	sig := b.CoSig()
	if sig.IsZero() {
		return fmt.Errorf("%w: block %d has no co-sign", ErrChainCoSig, b.Height)
	}
	if !cosi.VerifyParticipants(pubs, signingBytes, sig) {
		return fmt.Errorf("%w: block %d", ErrChainCoSig, b.Height)
	}
	return nil
}
