// Package ledger implements the tamper-proof, globally replicated
// transaction log of Fides (paper §3.1, §4.4): a linked list of transaction
// blocks chained by cryptographic hash pointers, each block carrying the
// fields of Table 1 — transaction id(s) and read/write sets, the Merkle
// roots of the shards involved, the commit/abort decision, the hash of the
// previous block, and the collective signature of all participants.
//
// Blocks are hashed and collectively signed over a canonical, deterministic
// binary encoding (encode.go), so every server derives the identical byte
// string for the same logical block regardless of process or platform.
package ledger

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/schnorr"
	"repro/internal/txn"
)

// Decision is a block's termination decision (Table 1). A block with many
// transactions (paper §4.6) commits or aborts as a unit: a commit requires
// the MHT roots of all involved servers; an abort leaves at least one root
// missing (paper §4.3.2).
type Decision uint8

// Block decisions.
const (
	DecisionCommit Decision = iota + 1
	DecisionAbort
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case DecisionCommit:
		return "commit"
	case DecisionAbort:
		return "abort"
	default:
		return fmt.Sprintf("decision(%d)", uint8(d))
	}
}

// TxnRecord is one transaction's entry inside a block: its id, commit
// timestamp, and read/write sets (Table 1 rows TxnId, R_set, W_set).
type TxnRecord struct {
	TxnID  string           `json:"txn_id"`
	TS     txn.Timestamp    `json:"ts"`
	Reads  []txn.ReadEntry  `json:"reads"`
	Writes []txn.WriteEntry `json:"writes"`
}

// RecordFromTransaction copies a client transaction into its block record.
func RecordFromTransaction(t *txn.Transaction) TxnRecord {
	return TxnRecord{TxnID: t.ID, TS: t.TS, Reads: t.Reads, Writes: t.Writes}
}

// CanonicalBytes returns the record's deterministic encoding, used by
// cohorts to check that a block's transaction entries exactly match the
// client-signed requests the coordinator encapsulated (paper §4.3.1
// phase 2).
func (t TxnRecord) CanonicalBytes() []byte {
	return appendTxnRecord(nil, &t)
}

// StrippedBytes returns the canonical encoding of the block with the fields
// the coordinator fills in later phases (roots, decision, co-sign) cleared.
// Cohorts compare these bytes across TFCommit phases to detect a
// coordinator that mutates the transaction contents mid-protocol.
func (b *Block) StrippedBytes() []byte {
	return b.appendSigning(nil, nil, 0)
}

// Block is one entry of the tamper-proof log, mirroring Table 1 of the
// paper. The simplifying single-transaction exposition of §4 corresponds to
// len(Txns) == 1; the evaluation (§6) stores up to ~100 transactions per
// block, which Txns supports directly.
type Block struct {
	// Height is the block's position in the log (block 0 is the genesis).
	Height uint64 `json:"height"`
	// Txns are the transactions terminated by this block, ordered by the
	// coordinator at the start of TFCommit (paper §4.6).
	Txns []TxnRecord `json:"txns"`
	// Roots holds the Merkle Hash Tree root of every shard involved in the
	// block's transactions (Table 1 row Σroots), keyed by server. For an
	// aborted block at least one root is missing.
	Roots map[identity.NodeID][]byte `json:"roots"`
	// Decision is the collective commit/abort decision.
	Decision Decision `json:"decision"`
	// PrevHash is the hash of the previous block (Table 1 row h), forming
	// the chain of blocks linked by their hashes.
	PrevHash []byte `json:"prev_hash"`
	// Signers lists the servers that participated in the collective
	// signature, in the canonical order used for key aggregation.
	Signers []identity.NodeID `json:"signers"`
	// CoSigC and CoSigS are the collective signature ⟨ch, R_sch⟩ over the
	// block's signing bytes (Table 1 row co-sign).
	CoSigC []byte `json:"cosig_c"`
	// CoSigS is the aggregate Schnorr response of the collective signature.
	CoSigS []byte `json:"cosig_s"`
}

// CoSig returns the block's collective signature.
func (b *Block) CoSig() cosi.Signature {
	if len(b.CoSigC) == 0 || len(b.CoSigS) == 0 {
		return cosi.Signature{}
	}
	return schnorr.SignatureFromBytes(b.CoSigC, b.CoSigS)
}

// SetCoSig stores the collective signature on the block.
func (b *Block) SetCoSig(sig cosi.Signature) {
	b.CoSigC, b.CoSigS = sig.Bytes()
}

// SigningBytes returns the canonical encoding of the block contents that
// the collective signature covers: the block *header* — every field except
// the signature itself, with the transaction list committed by TxnsHash
// (see encode.go). The challenge ch = h(X_sch ‖ b_i) of TFCommit phase 3
// is computed over exactly these bytes, and Header.SigningBytes reproduces
// them without the transaction bodies.
func (b *Block) SigningBytes() []byte {
	return b.appendSigning(nil, b.Roots, b.Decision)
}

// Hash returns the block's chaining hash: SHA-256 over the signing bytes
// followed by the collective signature, so tampering with either the
// contents or the signature of block i breaks block i+1's PrevHash.
// Header.Hash produces the identical value, so hash-pointer verification
// works over headers alone.
func (b *Block) Hash() []byte {
	return chainHash(b.SigningBytes(), b.CoSigC, b.CoSigS)
}

// Clone returns a deep copy of the block. Servers hand out clones so a
// caller cannot mutate the stored log through aliasing.
func (b *Block) Clone() *Block {
	nb := &Block{
		Height:   b.Height,
		Decision: b.Decision,
		PrevHash: append([]byte(nil), b.PrevHash...),
		Signers:  append([]identity.NodeID(nil), b.Signers...),
		CoSigC:   append([]byte(nil), b.CoSigC...),
		CoSigS:   append([]byte(nil), b.CoSigS...),
	}
	nb.Txns = make([]TxnRecord, len(b.Txns))
	for i, t := range b.Txns {
		nt := TxnRecord{TxnID: t.TxnID, TS: t.TS}
		nt.Reads = make([]txn.ReadEntry, len(t.Reads))
		for j, r := range t.Reads {
			r.Value = append([]byte(nil), r.Value...)
			nt.Reads[j] = r
		}
		nt.Writes = make([]txn.WriteEntry, len(t.Writes))
		for j, w := range t.Writes {
			w.NewVal = append([]byte(nil), w.NewVal...)
			w.OldVal = append([]byte(nil), w.OldVal...)
			nt.Writes[j] = w
		}
		nb.Txns[i] = nt
	}
	if b.Roots != nil {
		nb.Roots = make(map[identity.NodeID][]byte, len(b.Roots))
		for id, r := range b.Roots {
			nb.Roots[id] = append([]byte(nil), r...)
		}
	}
	return nb
}

// MaxTS returns the largest commit timestamp among the block's transactions.
func (b *Block) MaxTS() txn.Timestamp {
	var max txn.Timestamp
	for i := range b.Txns {
		max = max.Max(b.Txns[i].TS)
	}
	return max
}

// Persister makes a block durable before the in-memory log accepts it —
// the write-ahead hook internal/durable implements. Persist is called with
// the log lock held, so blocks persist in exactly log order.
type Persister interface {
	Persist(b *Block) error
}

// Log is a server's local copy of the globally replicated tamper-proof log:
// an append-only sequence of committed blocks. It is safe for concurrent
// use.
//
// The log is also the cohort-side sequencing point of the pipelined commit
// path: announcements for future heights may arrive before the decision
// that extends the chain to them (the coordinator of block h+1 starts its
// round as soon as block h's co-sign is finalized, while block h's
// decision broadcast and apply are still in flight). WaitLen lets such an
// out-of-order arrival park until the log has grown to the height it
// extends, so validation, OCC checks and appends still happen in strict
// height order.
type Log struct {
	mu      sync.RWMutex
	blocks  []*Block
	persist Persister
	grown   chan struct{} // closed and replaced on every Append
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// NewLogFromBlocks rebuilds a log from a recovered block sequence,
// re-checking the chain structure as Append would. No persister is invoked
// (the blocks came from the persistent store); attach one afterwards with
// SetPersister.
func NewLogFromBlocks(blocks []*Block) (*Log, error) {
	l := NewLog()
	for _, b := range blocks {
		if err := l.Append(b); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// SetPersister installs the write-ahead hook invoked by every subsequent
// Append. Pass nil to detach.
func (l *Log) SetPersister(p Persister) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.persist = p
}

// Errors returned by log operations.
var (
	ErrBadHeight   = errors.New("ledger: block height does not extend the log")
	ErrBadPrevHash = errors.New("ledger: block prev-hash does not match log tip")
	ErrNoBlock     = errors.New("ledger: no block at requested height")
)

// Append adds a block to the tail of the log after checking that it extends
// the chain: its height must be Len() and its PrevHash must equal the hash
// of the current tip (or be empty for the genesis block).
func (l *Log) Append(b *Block) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b.Height != uint64(len(l.blocks)) {
		return fmt.Errorf("%w: got height %d, want %d", ErrBadHeight, b.Height, len(l.blocks))
	}
	if len(l.blocks) == 0 {
		if len(b.PrevHash) != 0 {
			return fmt.Errorf("%w: genesis block must have empty prev-hash", ErrBadPrevHash)
		}
	} else {
		tip := l.blocks[len(l.blocks)-1]
		if !bytes.Equal(b.PrevHash, tip.Hash()) {
			return fmt.Errorf("%w at height %d", ErrBadPrevHash, b.Height)
		}
	}
	// Write-ahead: the block must be durable before the in-memory log —
	// and therefore the server's externally visible state — accepts it.
	if l.persist != nil {
		if err := l.persist.Persist(b); err != nil {
			return fmt.Errorf("ledger: persist block %d: %w", b.Height, err)
		}
	}
	l.blocks = append(l.blocks, b)
	if l.grown != nil {
		close(l.grown)
		l.grown = nil
	}
	return nil
}

// ErrWaitTimeout reports that WaitLen gave up before the log reached the
// requested length — the sign of a wedged or abandoned pipeline round.
var ErrWaitTimeout = errors.New("ledger: timed out waiting for log growth")

// WaitLen blocks until the log holds at least n blocks, the context is
// done, or timeout elapses. It is the in-order staging gate for
// out-of-order pipeline arrivals: a cohort receiving the block
// announcement for height h while its log is still at height h' < h waits
// here for the in-flight decisions of heights h'..h-1 to apply, keeping
// hash-chain extension and OCC validation strictly height-ordered no
// matter how the overlapped protocol rounds interleave on the wire.
func (l *Log) WaitLen(ctx context.Context, n uint64, timeout time.Duration) error {
	var timer *time.Timer
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	for {
		l.mu.Lock()
		if uint64(len(l.blocks)) >= n {
			l.mu.Unlock()
			return nil
		}
		if l.grown == nil {
			l.grown = make(chan struct{})
		}
		grown := l.grown
		l.mu.Unlock()
		select {
		case <-grown:
		case <-ctx.Done():
			return ctx.Err()
		case <-timeoutC:
			return fmt.Errorf("%w: waited for height %d, log at %d", ErrWaitTimeout, n, l.Len())
		}
	}
}

// Len returns the number of blocks in the log.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.blocks)
}

// Get returns the block at the given height.
func (l *Log) Get(height uint64) (*Block, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if height >= uint64(len(l.blocks)) {
		return nil, fmt.Errorf("%w: height %d, log length %d", ErrNoBlock, height, len(l.blocks))
	}
	return l.blocks[height], nil
}

// Tip returns the last block, or nil for an empty log.
func (l *Log) Tip() *Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.blocks) == 0 {
		return nil
	}
	return l.blocks[len(l.blocks)-1]
}

// TipHash returns the hash of the last block, or nil for an empty log.
func (l *Log) TipHash() []byte {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.blocks) == 0 {
		return nil
	}
	return l.blocks[len(l.blocks)-1].Hash()
}

// Blocks returns a snapshot slice of the log's blocks (the blocks
// themselves are shared; callers must not mutate them — use Clone).
func (l *Log) Blocks() []*Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]*Block(nil), l.blocks...)
}

// CloneBlocks returns deep copies of all blocks — the form a server ships
// to an auditor, so post-hoc tampering by the server is captured and local
// mutation by the auditor is impossible.
func (l *Log) CloneBlocks() []*Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]*Block, len(l.blocks))
	for i, b := range l.blocks {
		out[i] = b.Clone()
	}
	return out
}
