package ledger

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/binenc"
	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/schnorr"
)

// Header is the constant-size, co-signed portion of a block: every Table 1
// field except the transaction bodies, which are committed by TxnsHash.
// Because the signing encoding and the chaining hash are computed over
// exactly these fields (see appendHeaderSigning), a header is
// self-authenticating: its collective signature and its position in the
// hash chain verify without the transaction list — the property
// internal/lightclient builds on. A header also carries the Merkle root of
// every shard involved in its block, which is what authenticates
// proof-carrying reads at that height.
type Header struct {
	// Height is the block's position in the log.
	Height uint64 `json:"height"`
	// TxnsHash commits to the block's transaction list (Block.TxnsHash).
	TxnsHash []byte `json:"txns_hash"`
	// Roots holds the Merkle root of every involved shard, keyed by server.
	Roots map[identity.NodeID][]byte `json:"roots"`
	// Decision is the collective commit/abort decision.
	Decision Decision `json:"decision"`
	// PrevHash chains this header to its predecessor.
	PrevHash []byte `json:"prev_hash"`
	// Signers lists the collective-signature participants.
	Signers []identity.NodeID `json:"signers"`
	// CoSigC and CoSigS are the collective signature over SigningBytes.
	CoSigC []byte `json:"cosig_c"`
	CoSigS []byte `json:"cosig_s"`
}

// Header extracts the block's header. The result shares no memory with the
// block, so callers may cache and serve it freely.
func (b *Block) Header() *Header {
	h := &Header{
		Height:   b.Height,
		TxnsHash: b.TxnsHash(),
		Decision: b.Decision,
		PrevHash: append([]byte(nil), b.PrevHash...),
		Signers:  append([]identity.NodeID(nil), b.Signers...),
		CoSigC:   append([]byte(nil), b.CoSigC...),
		CoSigS:   append([]byte(nil), b.CoSigS...),
	}
	if b.Roots != nil {
		h.Roots = make(map[identity.NodeID][]byte, len(b.Roots))
		for id, r := range b.Roots {
			h.Roots[id] = append([]byte(nil), r...)
		}
	}
	return h
}

// SigningBytes returns the canonical signing encoding — byte-identical to
// the SigningBytes of the block this header was extracted from, so the
// block's collective signature verifies against the header alone.
func (h *Header) SigningBytes() []byte {
	return appendHeaderSigning(nil, h.Height, h.TxnsHash, h.Roots, h.Decision, h.PrevHash, h.Signers)
}

// Hash returns the chaining hash — byte-identical to Block.Hash of the
// originating block, so PrevHash pointers verify over headers.
func (h *Header) Hash() []byte {
	return chainHash(h.SigningBytes(), h.CoSigC, h.CoSigS)
}

// chainHash is the shared block/header chaining hash: SHA-256 over the
// signing bytes followed by the collective signature, so tampering with
// either the contents or the signature of entry i breaks entry i+1's
// PrevHash.
func chainHash(signingBytes, cosigC, cosigS []byte) []byte {
	hh := sha256.New()
	hh.Write([]byte("fides/block/v1"))
	hh.Write(signingBytes)
	hh.Write(cosigC)
	hh.Write(cosigS)
	return hh.Sum(nil)
}

// CoSig returns the header's collective signature.
func (h *Header) CoSig() cosi.Signature {
	if len(h.CoSigC) == 0 || len(h.CoSigS) == 0 {
		return cosi.Signature{}
	}
	return schnorr.SignatureFromBytes(h.CoSigC, h.CoSigS)
}

// Clone returns a deep copy of the header.
func (h *Header) Clone() *Header {
	nh := &Header{
		Height:   h.Height,
		TxnsHash: append([]byte(nil), h.TxnsHash...),
		Decision: h.Decision,
		PrevHash: append([]byte(nil), h.PrevHash...),
		Signers:  append([]identity.NodeID(nil), h.Signers...),
		CoSigC:   append([]byte(nil), h.CoSigC...),
		CoSigS:   append([]byte(nil), h.CoSigS...),
	}
	if h.Roots != nil {
		nh.Roots = make(map[identity.NodeID][]byte, len(h.Roots))
		for id, r := range h.Roots {
			nh.Roots[id] = append([]byte(nil), r...)
		}
	}
	return nh
}

// ErrHeaderCoSig reports a header whose collective signature does not
// verify against the Schnorr keys of its declared signers.
var ErrHeaderCoSig = errors.New("ledger: invalid header collective signature")

// VerifyHeaderSig checks the header's collective signature against the
// aggregate Schnorr public key of its declared signers — the header-only
// form of VerifyBlockSig.
func VerifyHeaderSig(h *Header, keys *identity.Registry) error {
	if len(h.Signers) == 0 {
		return fmt.Errorf("%w: header %d has no signers", ErrHeaderCoSig, h.Height)
	}
	pubs, err := keys.SchnorrKeys(h.Signers)
	if err != nil {
		return fmt.Errorf("%w: header %d: %v", ErrHeaderCoSig, h.Height, err)
	}
	sig := h.CoSig()
	if sig.IsZero() || !cosi.VerifyParticipants(pubs, h.SigningBytes(), sig) {
		return fmt.Errorf("%w: header %d", ErrHeaderCoSig, h.Height)
	}
	return nil
}

// VerifyHeaderSigWith is VerifyHeaderSig through an injected verification
// backend — the light client's and watchtower's form, where the backend
// may replay a cached verdict for these exact header bytes.
func VerifyHeaderSigWith(v CoSigVerifier, h *Header) error {
	if len(h.Signers) == 0 {
		return fmt.Errorf("%w: header %d has no signers", ErrHeaderCoSig, h.Height)
	}
	sig := h.CoSig()
	if sig.IsZero() {
		return fmt.Errorf("%w: header %d has no co-sign", ErrHeaderCoSig, h.Height)
	}
	if err := v.VerifyCoSig(h.Signers, h.SigningBytes(), sig); err != nil {
		return fmt.Errorf("%w: header %d: %v", ErrHeaderCoSig, h.Height, err)
	}
	return nil
}

// Matches reports whether the header was extracted from a block with the
// same co-signed contents (signing bytes and signature equal).
func (h *Header) Matches(b *Block) bool {
	return bytes.Equal(h.SigningBytes(), b.SigningBytes()) &&
		bytes.Equal(h.CoSigC, b.CoSigC) && bytes.Equal(h.CoSigS, b.CoSigS)
}

// headerBinaryVersion versions the header wire encoding.
const headerBinaryVersion = 1

// AppendBinary appends the header's wire encoding: a version byte, the
// signing fields, and the collective signature.
func (h *Header) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendByte(buf, headerBinaryVersion)
	buf = appendHeaderSigning(buf, h.Height, h.TxnsHash, h.Roots, h.Decision, h.PrevHash, h.Signers)
	buf = binenc.AppendBytes(buf, h.CoSigC)
	return binenc.AppendBytes(buf, h.CoSigS)
}

// MarshalBinary returns the header's wire encoding.
func (h *Header) MarshalBinary() ([]byte, error) {
	return h.AppendBinary(nil), nil
}

// DecodeHeader reads an embedded header from r. The decoded header aliases
// nothing.
func DecodeHeader(r *binenc.Reader, h *Header) error {
	if v := r.Byte(); v != headerBinaryVersion && r.Err() == nil {
		return fmt.Errorf("ledger: unsupported header version %d", v)
	}
	h.Height = r.Uint64()
	h.TxnsHash = r.Bytes()
	h.Roots = nil
	if n := r.Count(2); n > 0 {
		h.Roots = make(map[identity.NodeID][]byte, n)
		for i := 0; i < n; i++ {
			id := identity.NodeID(r.String())
			h.Roots[id] = r.Bytes()
		}
	}
	h.Decision = Decision(r.Byte())
	h.PrevHash = r.Bytes()
	h.Signers = nil
	if n := r.Count(1); n > 0 {
		h.Signers = make([]identity.NodeID, n)
		for i := range h.Signers {
			h.Signers[i] = identity.NodeID(r.String())
		}
	}
	h.CoSigC = r.Bytes()
	h.CoSigS = r.Bytes()
	return r.Err()
}

// UnmarshalBinary decodes a header from its wire encoding.
func (h *Header) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := DecodeHeader(&r, h); err != nil {
		return fmt.Errorf("ledger: decode header: %w", err)
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("ledger: decode header: %w", err)
	}
	return nil
}
