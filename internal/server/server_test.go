package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"testing"

	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/schnorr"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wire"
)

// env is an in-memory set of servers sharing a registry and directory,
// driven directly (no transport) so each cohort phase can be corrupted
// independently.
type env struct {
	reg     *identity.Registry
	servers []*Server
	idents  []*identity.Identity
	client  *identity.Identity
	dir     mapDirectory
}

type mapDirectory map[txn.ItemID]identity.NodeID

func (d mapDirectory) Owner(id txn.ItemID) (identity.NodeID, bool) {
	owner, ok := d[id]
	return owner, ok
}

// item i of server s is named "s<idx>/i<idx>"; each server owns 4 items.
func testItem(s, i int) txn.ItemID { return txn.ItemID(fmt.Sprintf("s%d/i%d", s, i)) }

func newEnv(t *testing.T, n int) *env {
	t.Helper()
	e := &env{reg: identity.NewRegistry(), dir: mapDirectory{}}
	for s := 0; s < n; s++ {
		for i := 0; i < 4; i++ {
			e.dir[testItem(s, i)] = identity.NodeID(fmt.Sprintf("srv%d", s))
		}
	}
	for s := 0; s < n; s++ {
		ident, err := identity.New(identity.NodeID(fmt.Sprintf("srv%d", s)), identity.RoleServer, nil)
		if err != nil {
			t.Fatal(err)
		}
		e.reg.Register(ident.Public())
		e.idents = append(e.idents, ident)
		items := make([]txn.ItemID, 4)
		for i := range items {
			items[i] = testItem(s, i)
		}
		shard := store.NewShard(items, func(txn.ItemID) []byte { return []byte("0") }, store.Config{})
		srv, err := New(Config{Identity: ident, Registry: e.reg, Directory: e.dir, Shard: shard})
		if err != nil {
			t.Fatal(err)
		}
		e.servers = append(e.servers, srv)
	}
	cl, err := identity.New("client", identity.RoleClient, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.reg.Register(cl.Public())
	e.client = cl
	return e
}

// signTxn wraps a transaction in a client-signed envelope.
func (e *env) signTxn(t *testing.T, tr *txn.Transaction) identity.Envelope {
	t.Helper()
	payload, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return identity.Seal(e.client, payload)
}

// freshTxn builds a transaction reading and writing item (s,i) with the
// item's current timestamps (a valid OCC access).
func (e *env) freshTxn(t *testing.T, id string, ts uint64, s, i int) *txn.Transaction {
	t.Helper()
	item, err := e.servers[s].Shard().Get(testItem(s, i))
	if err != nil {
		t.Fatal(err)
	}
	return &txn.Transaction{
		ID: id, TS: txn.Timestamp{Time: ts, ClientID: 9},
		Reads: []txn.ReadEntry{{ID: item.ID, Value: item.Value, RTS: item.RTS, WTS: item.WTS}},
		Writes: []txn.WriteEntry{{
			ID: item.ID, NewVal: []byte("new-" + id), RTS: item.RTS, WTS: item.WTS,
		}},
	}
}

// partialBlock assembles the phase-1 block for the given transactions.
func (e *env) partialBlock(txns ...*txn.Transaction) *ledger.Block {
	b := &ledger.Block{
		Height:   uint64(e.servers[0].Log().Len()),
		PrevHash: e.servers[0].Log().TipHash(),
	}
	for _, tr := range txns {
		b.Txns = append(b.Txns, ledger.RecordFromTransaction(tr))
	}
	for _, ident := range e.idents {
		b.Signers = append(b.Signers, ident.ID)
	}
	return b
}

// round carries a scripted TFCommit round's intermediate state.
type round struct {
	block       *ledger.Block
	votes       []*wire.VoteResp
	commitments []cosi.Commitment
	aggV        schnorr.Point
	aggPub      schnorr.PublicKey
	challenge   *big.Int
}

// collectVotes runs phase 1→2 against every server.
func (e *env) collectVotes(t *testing.T, b *ledger.Block, envs []identity.Envelope) *round {
	t.Helper()
	r := &round{block: b}
	ctx := context.Background()
	for s, srv := range e.servers {
		v, err := srv.GetVote(ctx, e.idents[0].ID, &wire.GetVoteReq{Block: b, ClientReqs: envs})
		if err != nil {
			t.Fatalf("server %d vote: %v", s, err)
		}
		r.votes = append(r.votes, v)
		p, err := schnorr.UnmarshalPoint(v.Commitment)
		if err != nil {
			t.Fatal(err)
		}
		r.commitments = append(r.commitments, cosi.Commitment{V: p})
	}
	return r
}

// finalizeBlock fills decision and roots like a correct coordinator.
func (e *env) finalizeBlock(t *testing.T, r *round) {
	t.Helper()
	decision := ledger.DecisionCommit
	roots := map[identity.NodeID][]byte{}
	for s, v := range r.votes {
		if v.Involved {
			if v.Vote != ledger.DecisionCommit {
				decision = ledger.DecisionAbort
				continue
			}
			roots[e.idents[s].ID] = v.Root
		}
	}
	r.block.Decision = decision
	r.block.Roots = roots

	var err error
	r.aggV, err = cosi.AggregateCommitments(r.commitments)
	if err != nil {
		t.Fatal(err)
	}
	var pubs []schnorr.PublicKey
	for _, ident := range e.idents {
		pubs = append(pubs, ident.Schnorr.Public)
	}
	r.aggPub, err = cosi.AggregatePublicKeys(pubs)
	if err != nil {
		t.Fatal(err)
	}
	r.challenge = cosi.Challenge(r.aggV, r.aggPub, r.block.SigningBytes())
}

// challengeReq builds the phase-3 message for the round.
func (r *round) challengeReq() *wire.ChallengeReq {
	return &wire.ChallengeReq{
		Challenge:     r.challenge.Bytes(),
		AggCommitment: r.aggV.Marshal(),
		Block:         r.block,
	}
}

func TestGetVoteCommitsValidTxn(t *testing.T) {
	e := newEnv(t, 3)
	tr := e.freshTxn(t, "t1", 5, 1, 0)
	b := e.partialBlock(tr)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, tr)})

	for s, v := range r.votes {
		if v.Vote != ledger.DecisionCommit {
			t.Errorf("server %d voted %v", s, v.Vote)
		}
		wantInvolved := s == 1
		if v.Involved != wantInvolved {
			t.Errorf("server %d involved=%v, want %v", s, v.Involved, wantInvolved)
		}
		if wantInvolved && len(v.Root) == 0 {
			t.Errorf("involved server %d sent no root", s)
		}
		if !wantInvolved && len(v.Root) != 0 {
			t.Errorf("uninvolved server %d sent a root", s)
		}
	}
}

func TestGetVoteAbortsOnStaleRead(t *testing.T) {
	e := newEnv(t, 2)
	tr := e.freshTxn(t, "t1", 5, 1, 0)
	// The item moves on after the client's read: another write bumps wts.
	if err := e.servers[1].Shard().Apply([]store.Access{{
		Writes: []txn.WriteEntry{{ID: testItem(1, 0), NewVal: []byte("interloper")}},
		TS:     txn.Timestamp{Time: 3, ClientID: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	b := e.partialBlock(tr)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, tr)})
	if r.votes[1].Vote != ledger.DecisionAbort {
		t.Fatal("owner must vote abort for a stale read")
	}
	if r.votes[0].Vote != ledger.DecisionCommit {
		t.Fatal("uninvolved server should not veto")
	}
}

func TestGetVoteRejectsTamperedEnvelope(t *testing.T) {
	e := newEnv(t, 2)
	tr := e.freshTxn(t, "t1", 5, 0, 0)
	env := e.signTxn(t, tr)
	// The coordinator swaps the block's write value after the client signed.
	b := e.partialBlock(tr)
	b.Txns[0].Writes[0].NewVal = []byte("forged")
	if _, err := e.servers[0].GetVote(context.Background(), e.idents[0].ID,
		&wire.GetVoteReq{Block: b, ClientReqs: env2(env)}); err == nil {
		t.Fatal("mismatched block/client request accepted")
	}
	// And an unsigned/garbage envelope fails outright.
	bad := env
	bad.Sig = []byte("nope")
	b2 := e.partialBlock(tr)
	if _, err := e.servers[0].GetVote(context.Background(), e.idents[0].ID,
		&wire.GetVoteReq{Block: b2, ClientReqs: env2(bad)}); err == nil {
		t.Fatal("bad signature accepted")
	}
}

func env2(e identity.Envelope) []identity.Envelope { return []identity.Envelope{e} }

func TestGetVoteRejectsWrongHeight(t *testing.T) {
	e := newEnv(t, 2)
	tr := e.freshTxn(t, "t1", 5, 0, 0)
	b := e.partialBlock(tr)
	b.Height = 7
	_, err := e.servers[0].GetVote(context.Background(), e.idents[0].ID,
		&wire.GetVoteReq{Block: b, ClientReqs: env2(e.signTxn(t, tr))})
	if !errors.Is(err, ErrOutOfSequence) {
		t.Fatalf("err = %v, want ErrOutOfSequence", err)
	}
}

func TestGetVoteAbortsStaleTimestampAndIntraBlockConflict(t *testing.T) {
	e := newEnv(t, 2)
	// Commit a first block at ts 10 to advance lastCommitted.
	runFullRound(t, e, e.freshTxn(t, "warm", 10, 0, 0))

	// A txn with ts 7 (≤ 10) must be voted down.
	stale := e.freshTxn(t, "stale", 7, 0, 1)
	b := e.partialBlock(stale)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, stale)})
	if r.votes[0].Vote != ledger.DecisionAbort {
		t.Fatal("stale-timestamp txn not aborted")
	}

	// Two conflicting txns in one block must also be voted down.
	t1 := e.freshTxn(t, "c1", 20, 1, 0)
	t2 := e.freshTxn(t, "c2", 21, 1, 0) // same item as t1
	b2 := e.partialBlock(t1, t2)
	r2 := e.collectVotes(t, b2, []identity.Envelope{e.signTxn(t, t1), e.signTxn(t, t2)})
	if r2.votes[1].Vote != ledger.DecisionAbort {
		t.Fatal("intra-block conflicting batch not aborted by owner")
	}
}

// runFullRound drives one complete, honest TFCommit round to commit tr.
func runFullRound(t *testing.T, e *env, tr *txn.Transaction) *ledger.Block {
	t.Helper()
	ctx := context.Background()
	b := e.partialBlock(tr)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, tr)})
	e.finalizeBlock(t, r)

	responses := make([]*big.Int, len(e.servers))
	for s, srv := range e.servers {
		resp, err := srv.Challenge(ctx, e.idents[0].ID, r.challengeReq())
		if err != nil {
			t.Fatalf("server %d challenge: %v", s, err)
		}
		responses[s] = new(big.Int).SetBytes(resp.Response)
	}
	aggR, err := cosi.AggregateResponses(responses)
	if err != nil {
		t.Fatal(err)
	}
	sig := cosi.Finalize(r.challenge, aggR)
	if !cosi.Verify(r.aggPub, r.block.SigningBytes(), sig) {
		t.Fatal("scripted round produced invalid signature")
	}
	r.block.SetCoSig(sig)
	for s, srv := range e.servers {
		if _, err := srv.Decide(ctx, e.idents[0].ID, &wire.DecisionReq{Block: r.block}); err != nil {
			t.Fatalf("server %d decide: %v", s, err)
		}
	}
	return r.block
}

func TestFullRoundAppliesAndLogs(t *testing.T) {
	e := newEnv(t, 3)
	tr := e.freshTxn(t, "t1", 5, 2, 1)
	block := runFullRound(t, e, tr)

	for s, srv := range e.servers {
		if srv.Log().Len() != 1 {
			t.Errorf("server %d log length %d", s, srv.Log().Len())
		}
		if !bytes.Equal(srv.Log().TipHash(), block.Hash()) {
			t.Errorf("server %d logged different block", s)
		}
	}
	item, err := e.servers[2].Shard().Get(testItem(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(item.Value, []byte("new-t1")) {
		t.Errorf("value = %q", item.Value)
	}
	if item.WTS != tr.TS || item.RTS != tr.TS {
		t.Errorf("timestamps not advanced: %+v", item)
	}
	if e.servers[0].LastCommitted() != tr.TS {
		t.Errorf("lastCommitted = %v", e.servers[0].LastCommitted())
	}
}

func TestChallengeRejectsMutatedBlock(t *testing.T) {
	e := newEnv(t, 2)
	tr := e.freshTxn(t, "t1", 5, 1, 0)
	b := e.partialBlock(tr)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, tr)})
	e.finalizeBlock(t, r)

	mutated := r.block.Clone()
	mutated.Txns[0].Writes[0].NewVal = []byte("evil")
	req := &wire.ChallengeReq{
		Challenge:     r.challenge.Bytes(),
		AggCommitment: r.aggV.Marshal(),
		Block:         mutated,
	}
	_, err := e.servers[1].Challenge(context.Background(), e.idents[0].ID, req)
	if !errors.Is(err, ErrBlockMutated) {
		t.Fatalf("err = %v, want ErrBlockMutated", err)
	}
}

func TestChallengeRejectsRootSubstitution(t *testing.T) {
	e := newEnv(t, 2)
	tr := e.freshTxn(t, "t1", 5, 1, 0)
	b := e.partialBlock(tr)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, tr)})
	e.finalizeBlock(t, r)

	// Scenario 2: the coordinator replaces the involved cohort's root.
	r.block.Roots[e.idents[1].ID] = bytes.Repeat([]byte{0xab}, 32)
	r.challenge = cosi.Challenge(r.aggV, r.aggPub, r.block.SigningBytes())
	_, err := e.servers[1].Challenge(context.Background(), e.idents[0].ID, r.challengeReq())
	if !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("err = %v, want ErrRootMismatch", err)
	}
}

func TestChallengeRejectsMissingRoots(t *testing.T) {
	e := newEnv(t, 2)
	tr := e.freshTxn(t, "t1", 5, 1, 0)
	b := e.partialBlock(tr)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, tr)})
	e.finalizeBlock(t, r)

	// Commit decision but the involved root dropped.
	delete(r.block.Roots, e.idents[1].ID)
	r.challenge = cosi.Challenge(r.aggV, r.aggPub, r.block.SigningBytes())
	_, err := e.servers[0].Challenge(context.Background(), e.idents[0].ID, r.challengeReq())
	if !errors.Is(err, ErrMissingRoots) {
		t.Fatalf("err = %v, want ErrMissingRoots", err)
	}
}

func TestChallengeRejectsAbortWithAllRoots(t *testing.T) {
	e := newEnv(t, 2)
	tr := e.freshTxn(t, "t1", 5, 1, 0)
	b := e.partialBlock(tr)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, tr)})
	e.finalizeBlock(t, r)

	// "if the decision is abort, bi should have some missing roots".
	r.block.Decision = ledger.DecisionAbort
	r.challenge = cosi.Challenge(r.aggV, r.aggPub, r.block.SigningBytes())
	_, err := e.servers[1].Challenge(context.Background(), e.idents[0].ID, r.challengeReq())
	if !errors.Is(err, ErrAbortWithRoots) {
		t.Fatalf("err = %v, want ErrAbortWithRoots", err)
	}
}

func TestChallengeRejectsWrongChallenge(t *testing.T) {
	e := newEnv(t, 2)
	tr := e.freshTxn(t, "t1", 5, 1, 0)
	b := e.partialBlock(tr)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, tr)})
	e.finalizeBlock(t, r)

	// Lemma 5 case 1: the challenge does not match hash(X_sch ‖ b).
	bad := new(big.Int).Add(r.challenge, big.NewInt(1))
	req := &wire.ChallengeReq{
		Challenge:     bad.Bytes(),
		AggCommitment: r.aggV.Marshal(),
		Block:         r.block,
	}
	_, err := e.servers[0].Challenge(context.Background(), e.idents[0].ID, req)
	if !errors.Is(err, ErrBadChallenge) {
		t.Fatalf("err = %v, want ErrBadChallenge", err)
	}
}

func TestChallengeRejectsOverriddenAbortVote(t *testing.T) {
	e := newEnv(t, 2)
	tr := e.freshTxn(t, "t1", 5, 1, 0)
	// Make server 1's validation fail (stale read) so it votes abort.
	if err := e.servers[1].Shard().Apply([]store.Access{{
		Writes: []txn.WriteEntry{{ID: testItem(1, 0), NewVal: []byte("x")}},
		TS:     txn.Timestamp{Time: 2, ClientID: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	b := e.partialBlock(tr)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, tr)})
	if r.votes[1].Vote != ledger.DecisionAbort {
		t.Fatal("setup: expected abort vote")
	}
	// A malicious coordinator forces commit anyway, fabricating the root.
	r.block.Decision = ledger.DecisionCommit
	r.block.Roots = map[identity.NodeID][]byte{e.idents[1].ID: bytes.Repeat([]byte{1}, 32)}
	var pubs []schnorr.PublicKey
	for _, ident := range e.idents {
		pubs = append(pubs, ident.Schnorr.Public)
	}
	aggPub, _ := cosi.AggregatePublicKeys(pubs)
	aggV, _ := cosi.AggregateCommitments(r.commitments)
	r.aggPub, r.aggV = aggPub, aggV
	r.challenge = cosi.Challenge(aggV, aggPub, r.block.SigningBytes())
	_, err := e.servers[1].Challenge(context.Background(), e.idents[0].ID, r.challengeReq())
	if !errors.Is(err, ErrVoteOverridden) && !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("err = %v, want ErrVoteOverridden or ErrRootMismatch", err)
	}
}

func TestDecideRejectsInvalidCoSig(t *testing.T) {
	e := newEnv(t, 2)
	ctx := context.Background()
	tr := e.freshTxn(t, "t1", 5, 1, 0)
	b := e.partialBlock(tr)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, tr)})
	e.finalizeBlock(t, r)
	for s, srv := range e.servers {
		if _, err := srv.Challenge(ctx, e.idents[0].ID, r.challengeReq()); err != nil {
			t.Fatalf("server %d challenge: %v", s, err)
		}
	}
	// Attach a garbage signature.
	r.block.SetCoSig(cosi.Signature{C: big.NewInt(1), S: big.NewInt(2)})
	_, err := e.servers[0].Decide(ctx, e.idents[0].ID, &wire.DecisionReq{Block: r.block})
	if !errors.Is(err, ErrBadCoSig) {
		t.Fatalf("err = %v, want ErrBadCoSig", err)
	}
	if e.servers[0].Log().Len() != 0 {
		t.Fatal("unsigned block was logged")
	}
}

func TestExecutionLayerReadWrite(t *testing.T) {
	e := newEnv(t, 1)
	srv := e.servers[0]

	if _, err := srv.handleBegin(&wire.BeginTxnReq{TxnID: "t1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.handleBegin(&wire.BeginTxnReq{}); err == nil {
		t.Fatal("empty txn id accepted")
	}
	rr, err := srv.handleRead(&wire.ReadReq{TxnID: "t1", ID: testItem(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rr.Value, []byte("0")) {
		t.Fatalf("read = %q", rr.Value)
	}
	wr, err := srv.handleWrite(&wire.WriteReq{TxnID: "t1", ID: testItem(0, 1), Value: []byte("blind")})
	if err != nil {
		t.Fatal(err)
	}
	// Blind-write ack carries the old value (paper §4.2.1).
	if !bytes.Equal(wr.OldVal, []byte("0")) {
		t.Fatalf("ack old value = %q", wr.OldVal)
	}
	if _, err := srv.handleRead(&wire.ReadReq{TxnID: "t1", ID: "ghost"}); err == nil {
		t.Fatal("read of ghost item accepted")
	}
}

func TestTwoPCRound(t *testing.T) {
	e := newEnv(t, 2)
	ctx := context.Background()
	tr := e.freshTxn(t, "t1", 5, 1, 0)
	env := e.signTxn(t, tr)
	b := e.partialBlock(tr)
	b.Signers = nil // 2PC blocks are unsigned

	for s, srv := range e.servers {
		v, err := srv.Prepare(ctx, e.idents[0].ID, &wire.PrepareReq{Block: b, ClientReqs: env2(env)})
		if err != nil {
			t.Fatalf("server %d prepare: %v", s, err)
		}
		if v.Vote != ledger.DecisionCommit {
			t.Fatalf("server %d voted %v", s, v.Vote)
		}
	}
	b.Decision = ledger.DecisionCommit
	for s, srv := range e.servers {
		if _, err := srv.Decide2PC(ctx, e.idents[0].ID, &wire.TwoPCDecisionReq{Block: b}); err != nil {
			t.Fatalf("server %d decide: %v", s, err)
		}
		if srv.Log().Len() != 1 {
			t.Fatalf("server %d log length %d", s, srv.Log().Len())
		}
	}
	item, err := e.servers[1].Shard().Get(testItem(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(item.Value, []byte("new-t1")) {
		t.Fatalf("value = %q", item.Value)
	}
}

func TestServerConfigValidation(t *testing.T) {
	ident, _ := identity.New("x", identity.RoleClient, nil)
	if _, err := New(Config{Identity: ident}); err == nil {
		t.Error("client identity accepted for a server")
	}
	srvIdent, _ := identity.New("s", identity.RoleServer, nil)
	if _, err := New(Config{Identity: srvIdent}); err == nil {
		t.Error("missing registry/shard/directory accepted")
	}
}

func TestFaultsIsByzantine(t *testing.T) {
	if (Faults{}).IsByzantine() {
		t.Error("zero faults reported byzantine")
	}
	if !(Faults{StaleReads: true}).IsByzantine() {
		t.Error("stale reads not byzantine")
	}
	if !(Faults{DropTailBlocks: 1}).IsByzantine() {
		t.Error("drop tail not byzantine")
	}
}
