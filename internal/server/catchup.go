package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file implements decision recovery and cohort catch-up: the server
// side of the non-blocking phase 5 (see docs/protocol.md "Decision
// delivery, catch-up, and coordinator failover").
//
// The trust argument mirrors verified recovery (internal/durable): a block
// carrying a collective signature of the full server set is
// self-authenticating, so a server that missed a decision — a dropped
// phase-5 message, a coordinator that died mid-broadcast, or a crash that
// lost the WAL tail — can take the block from *any* peer, re-verify chain
// position, txns-hash and CoSi locally, and apply it through the normal
// commit path. No peer is trusted; the co-signed block is the decision.

// Paging bound for block transfer, in the spirit of the header-sync caps
// (readserve.go): one request must not pin a frame arbitrarily long.
const (
	// MaxBlocksPerFetch caps one block page; FetchBlocksReq.Max above it
	// is clamped, zero selects DefaultBlocksPerFetch.
	MaxBlocksPerFetch = 256
	// DefaultBlocksPerFetch is the page size when the request leaves Max
	// unset.
	DefaultBlocksPerFetch = 64
)

// Catch-up timing defaults.
const (
	// DefaultCatchupGrace is how long a stalled vote waits for the
	// in-flight decision to arrive on its own before asking peers. Under
	// pipelining a retried decision normally lands within milliseconds, so
	// the grace keeps the ask path off the wire unless delivery really
	// failed.
	DefaultCatchupGrace = 250 * time.Millisecond
	// DefaultCatchupBudget bounds one vote-path catch-up wait when the
	// server has no VoteLookahead configured (the serial commit path).
	DefaultCatchupBudget = 2 * time.Second
)

// CatchupConfig wires a server into the cluster's catch-up mesh. It is
// installed after construction (EnableCatchup) because the server's own
// transport endpoint — through which it reaches its peers — is created
// around the server itself.
type CatchupConfig struct {
	// Transport reaches the peer servers.
	Transport transport.Transport
	// Servers is the full server set, including this server.
	Servers []identity.NodeID
	// Grace overrides DefaultCatchupGrace when positive.
	Grace time.Duration
	// Budget overrides DefaultCatchupBudget when positive.
	Budget time.Duration
}

// catchupState is the installed form of CatchupConfig.
type catchupState struct {
	tr      transport.Transport
	servers []identity.NodeID // full set, sorted
	peers   []identity.NodeID // sorted, self excluded
	grace   time.Duration
	budget  time.Duration
}

// EnableCatchup installs the catch-up configuration. Until it is called
// the server behaves as before this subsystem existed: a vote announcement
// beyond the log either waits out the lookahead or is rejected.
func (s *Server) EnableCatchup(cfg CatchupConfig) error {
	if cfg.Transport == nil || len(cfg.Servers) == 0 {
		return errors.New("server: catch-up requires a transport and the server set")
	}
	servers := append([]identity.NodeID(nil), cfg.Servers...)
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	peers := make([]identity.NodeID, 0, len(servers)-1)
	for _, id := range servers {
		if id != s.ident.ID {
			peers = append(peers, id)
		}
	}
	cu := &catchupState{
		tr:      cfg.Transport,
		servers: servers,
		peers:   peers,
		grace:   cfg.Grace,
		budget:  cfg.Budget,
	}
	if cu.grace <= 0 {
		cu.grace = DefaultCatchupGrace
	}
	if cu.budget <= 0 {
		cu.budget = DefaultCatchupBudget
	}
	s.mu.Lock()
	s.cu = cu
	s.mu.Unlock()
	return nil
}

// catchupCfg returns the installed catch-up state, nil if disabled.
func (s *Server) catchupCfg() *catchupState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cu
}

// StartResolver launches a background goroutine that periodically runs
// ResolvePending, so a server that fell behind heals itself without
// waiting for the next vote announcement to stall. It returns a stop
// function. Real deployments run it; the deterministic simulator instead
// drives ResolvePending explicitly so traces stay reproducible.
func (s *Server) StartResolver(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				// Best-effort: peers may be down; the next tick retries.
				_, _ = s.ResolvePending(ctx)
				cancel()
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// --- serving side (any server answers; the block authenticates itself) ---

// handleAskDecision serves the co-signed block at one height, plus this
// server's log length so the asker learns how far behind it is.
func (s *Server) handleAskDecision(req *wire.AskDecisionReq) (*wire.AskDecisionResp, error) {
	resp := &wire.AskDecisionResp{Tip: uint64(s.log.Len())}
	// Logged blocks are immutable once appended; serving them shared is
	// safe because the transport encodes the response before returning.
	if b, err := s.log.Get(req.Height); err == nil {
		resp.Block = b
	}
	return resp, nil
}

// handleFetchBlocks serves a page of full committed blocks for cohort
// state transfer.
func (s *Server) handleFetchBlocks(req *wire.FetchBlocksReq) (*wire.FetchBlocksResp, error) {
	max := int(req.Max)
	if max <= 0 {
		max = DefaultBlocksPerFetch
	}
	if max > MaxBlocksPerFetch {
		max = MaxBlocksPerFetch
	}
	tip := uint64(s.log.Len())
	resp := &wire.FetchBlocksResp{Tip: tip}
	for h := req.From; h < tip && len(resp.Blocks) < max; h++ {
		b, err := s.log.Get(h)
		if err != nil {
			break
		}
		resp.Blocks = append(resp.Blocks, b)
	}
	return resp, nil
}

// --- asking side ---

// awaitHeight parks a vote announcement for height h until the log has
// grown to it. It first waits passively (the retried decision usually
// arrives on its own); once a grace slice times out it actively pulls the
// missing blocks from peers — ErrWaitTimeout triggers catch-up instead of
// bubbling a spurious out-of-sequence error to the client.
func (s *Server) awaitHeight(ctx context.Context, h uint64) error {
	cu := s.catchupCfg()
	if cu == nil {
		// Catch-up disabled: the original pipelined lookahead behavior.
		return s.log.WaitLen(ctx, h, s.lookahead)
	}
	budget := s.lookahead
	if budget <= 0 {
		budget = cu.budget
	}
	deadline := time.Now().Add(budget)
	recovered := false
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("%w: waited for height %d, log at %d", ledger.ErrWaitTimeout, h, s.log.Len())
		}
		slice := cu.grace
		if slice > remain {
			slice = remain
		}
		err := s.log.WaitLen(ctx, h, slice)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ledger.ErrWaitTimeout) {
			return err
		}
		// The decisions below h are overdue: lost in delivery, or their
		// coordinator died after co-sign. Any peer that holds them can
		// supply them — the blocks authenticate themselves.
		n, _ := s.catchUpTo(ctx, h)
		if n > 0 && !recovered {
			recovered = true
			s.mu.Lock()
			s.wedgeRecoveries.Inc()
			s.mu.Unlock()
		}
		// On no progress keep waiting: peers may be equally behind (the
		// round may still resolve as an abort, or the decision may simply
		// be slow) until the budget runs out.
	}
}

// catchUpTo pulls verified blocks from peers until the log reaches target.
// It returns the number of blocks applied.
func (s *Server) catchUpTo(ctx context.Context, target uint64) (int, error) {
	cu := s.catchupCfg()
	if cu == nil {
		return 0, errors.New("server: catch-up not configured")
	}
	applied := 0
	var lastErr error
	for _, peer := range cu.peers {
		if uint64(s.log.Len()) >= target {
			break
		}
		n, err := s.pullFromPeer(ctx, cu, peer, target)
		applied += n
		if err != nil {
			lastErr = err
		}
	}
	if uint64(s.log.Len()) >= target {
		return applied, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("server %s: no peer supplied blocks up to height %d", s.ident.ID, target)
	}
	return applied, lastErr
}

// ResolvePending makes one synchronous pass at resolving stalled state: it
// asks each peer for the block at this server's next height, applies
// whatever verified blocks come back, and pages the rest of the suffix
// from any peer whose tip is ahead. A stale inflight round below the new
// tip resolves as a side effect — the co-signed block at its height *is*
// the decision; a round that never reached co-sign left nothing to fetch
// and is superseded by the next announcement at that height (abort
// resolution). It returns the number of blocks applied.
func (s *Server) ResolvePending(ctx context.Context) (int, error) {
	cu := s.catchupCfg()
	if cu == nil {
		return 0, nil
	}
	applied := 0
	var lastErr error
	for _, peer := range cu.peers {
		resp, err := s.askDecision(ctx, cu, peer, uint64(s.log.Len()))
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Block != nil {
			fresh, err := s.applyFetched(resp.Block)
			if err != nil {
				lastErr = err
				continue
			}
			if fresh {
				applied++
			}
		}
		if tip := resp.Tip; tip > uint64(s.log.Len()) {
			n, err := s.pullFromPeer(ctx, cu, peer, tip)
			applied += n
			if err != nil {
				lastErr = err
			}
		}
	}
	return applied, lastErr
}

// pullFromPeer pages blocks [log.Len(), target) from one peer, verifying
// and applying each. The single-height gap — the common wedge after a lost
// decision — goes through ask_decision; larger gaps (a server that
// recovered behind the cluster tip) page through fetch_blocks.
func (s *Server) pullFromPeer(ctx context.Context, cu *catchupState, peer identity.NodeID, target uint64) (int, error) {
	applied := 0
	for {
		from := uint64(s.log.Len())
		if from >= target {
			return applied, nil
		}
		if target-from == 1 {
			resp, err := s.askDecision(ctx, cu, peer, from)
			if err != nil {
				return applied, err
			}
			if resp.Block == nil {
				return applied, nil // this peer is behind too
			}
			fresh, err := s.applyFetched(resp.Block)
			if err != nil {
				return applied, err
			}
			if fresh {
				applied++
			}
			continue
		}
		max := target - from
		if max > MaxBlocksPerFetch {
			max = MaxBlocksPerFetch
		}
		resp, err := s.fetchBlocks(ctx, cu, peer, from, uint32(max))
		if err != nil {
			return applied, err
		}
		if len(resp.Blocks) == 0 {
			return applied, nil // this peer has nothing for us
		}
		progressed := false
		for _, b := range resp.Blocks {
			fresh, err := s.applyFetched(b)
			if err != nil {
				return applied, err
			}
			if fresh {
				applied++
				progressed = true
			}
		}
		if !progressed && uint64(s.log.Len()) <= from {
			return applied, nil
		}
	}
}

func (s *Server) askDecision(ctx context.Context, cu *catchupState, peer identity.NodeID, height uint64) (*wire.AskDecisionResp, error) {
	msg, err := transport.NewMessage(wire.MsgAskDecision, &wire.AskDecisionReq{Height: height})
	if err != nil {
		return nil, err
	}
	raw, err := cu.tr.Call(ctx, peer, msg)
	if err != nil {
		return nil, err
	}
	var resp wire.AskDecisionResp
	if err := raw.Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (s *Server) fetchBlocks(ctx context.Context, cu *catchupState, peer identity.NodeID, from uint64, max uint32) (*wire.FetchBlocksResp, error) {
	msg, err := transport.NewMessage(wire.MsgFetchBlocks, &wire.FetchBlocksReq{From: from, Max: max})
	if err != nil {
		return nil, err
	}
	raw, err := cu.tr.Call(ctx, peer, msg)
	if err != nil {
		return nil, err
	}
	var resp wire.FetchBlocksResp
	if err := raw.Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// applyFetched verifies a block obtained from an untrusted peer and, if it
// extends the log, applies it through the normal commit path: datastore
// update, root cross-check, log append (which persists to the WAL),
// verified-read caches, watermark, snapshot and buffer cleanup — the same
// effects a direct phase-5 decision has, so catch-up and live commits
// converge on identical state. fresh is false when the block was already
// applied (a concurrent answer for the same height won the race).
func (s *Server) applyFetched(b *ledger.Block) (fresh bool, err error) {
	if b == nil {
		return false, errors.New("server: catch-up: nil block")
	}
	cu := s.catchupCfg()
	if cu == nil {
		return false, errors.New("server: catch-up not configured")
	}
	// Only commit decisions are ever logged; an "abort block" from a peer
	// is a fabrication however it is signed.
	if b.Decision != ledger.DecisionCommit {
		return false, fmt.Errorf("server %s: catch-up block %d is not a commit", s.ident.ID, b.Height)
	}
	// Completeness: the block must be signed by exactly the full server
	// set — the same all-signers property every directly received decision
	// has by construction.
	if !fullSignerSet(b.Signers, cu.servers) {
		return false, fmt.Errorf("server %s: catch-up block %d not signed by the full server set", s.ident.ID, b.Height)
	}
	// The collective signature covers the signing bytes, which commit to
	// the transactions through the txns-hash — verifying it outside the
	// server lock keeps the expensive check off the commit critical
	// section.
	if err := ledger.VerifyBlockSigBytesWith(s.verifier, b, b.SigningBytes()); err != nil {
		return false, fmt.Errorf("%w: catch-up block %d: %v", ErrBadCoSig, b.Height, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case b.Height < uint64(s.log.Len()):
		logged, err := s.log.Get(b.Height)
		if err != nil {
			return false, err
		}
		if !bytes.Equal(logged.Hash(), b.Hash()) {
			return false, fmt.Errorf("server %s: catch-up block %d conflicts with the logged block", s.ident.ID, b.Height)
		}
		return false, nil
	case b.Height > uint64(s.log.Len()):
		return false, fmt.Errorf("%w: catch-up block %d, log length %d", ErrOutOfSequence, b.Height, s.log.Len())
	}
	if !bytes.Equal(b.PrevHash, s.log.TipHash()) {
		return false, fmt.Errorf("%w: catch-up prev-hash mismatch at height %d", ErrOutOfSequence, b.Height)
	}

	if accesses := durable.ShardAccesses(b, s.shard); len(accesses) > 0 {
		// Remember overwritten values for StaleReads parity with the live
		// apply path.
		for _, a := range accesses {
			for _, w := range a.Writes {
				if cur, err := s.shard.Get(w.ID); err == nil {
					s.prevValues[w.ID] = cur.Value
				}
			}
		}
		if err := s.shard.Apply(accesses); err != nil {
			return false, fmt.Errorf("server %s: catch-up apply block %d: %w", s.ident.ID, b.Height, err)
		}
		// The root cross-check verified recovery performs on the WAL:
		// after applying, the shard must hash to the root this server
		// co-signed into the block.
		if want, ok := b.Roots[s.ident.ID]; ok {
			if got := s.shard.Root(); !bytes.Equal(got, want) {
				return false, fmt.Errorf("server %s: catch-up block %d: shard root diverges from the co-signed root", s.ident.ID, b.Height)
			}
		}
	}
	if err := s.log.Append(b.Clone()); err != nil {
		return false, fmt.Errorf("server %s: catch-up append block %d: %w", s.ident.ID, b.Height, err)
	}
	s.cacheBlockLocked(b)
	if s.snap != nil {
		if err := s.snap.MaybeSnapshot(s.shard, b.Height, b.Hash()); err != nil {
			return false, fmt.Errorf("server %s: snapshot at block %d: %w", s.ident.ID, b.Height, err)
		}
	}
	s.lastCommitted = s.lastCommitted.Max(b.MaxTS())
	for i := range b.Txns {
		delete(s.buffers, b.Txns[i].TxnID)
	}
	if s.inflight != nil && s.inflight.height <= b.Height {
		// The fetched block resolves (or supersedes) the stalled round.
		s.inflight = nil
	}
	s.catchupBlocks.Inc()
	return true, nil
}

// fullSignerSet reports whether signers is exactly the server set (order
// ignored; servers is sorted).
func fullSignerSet(signers, servers []identity.NodeID) bool {
	if len(signers) != len(servers) {
		return false
	}
	sorted := append([]identity.NodeID(nil), signers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := range sorted {
		if sorted[i] != servers[i] {
			return false
		}
	}
	return true
}
