package server

import (
	"strings"
	"testing"

	"repro/internal/wire"
)

// TestBeginContractUniform pins the uniform begin contract of the
// execution layer: an explicit begin_transaction, a first read, and a
// first write all open the transaction identically, and an empty
// transaction id is rejected on every path (previously writes auto-created
// a buffer, reads touched none, and only the explicit begin validated the
// id).
func TestBeginContractUniform(t *testing.T) {
	e := newEnv(t, 1)
	srv := e.servers[0]
	item := testItem(0, 1)

	// Empty txn id rejected uniformly.
	if _, err := srv.handleBegin(&wire.BeginTxnReq{}); err == nil || !strings.Contains(err.Error(), "empty txn id") {
		t.Fatalf("begin with empty id: %v", err)
	}
	if _, err := srv.handleRead(&wire.ReadReq{ID: item}); err == nil || !strings.Contains(err.Error(), "empty txn id") {
		t.Fatalf("read with empty id: %v", err)
	}
	if _, err := srv.handleWrite(&wire.WriteReq{ID: item, Value: []byte("v")}); err == nil || !strings.Contains(err.Error(), "empty txn id") {
		t.Fatalf("write with empty id: %v", err)
	}

	buffers := func() int {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.buffers)
	}

	// A first read opens the transaction (implicit begin), exactly like a
	// first write or an explicit begin.
	if _, err := srv.handleRead(&wire.ReadReq{TxnID: "t-read", ID: item}); err != nil {
		t.Fatalf("read: %v", err)
	}
	if _, err := srv.handleWrite(&wire.WriteReq{TxnID: "t-write", ID: item, Value: []byte("v")}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := srv.handleBegin(&wire.BeginTxnReq{TxnID: "t-begin"}); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if got := buffers(); got != 3 {
		t.Fatalf("buffers after read/write/begin: %d, want 3", got)
	}

	// Re-access is idempotent: no duplicate buffers.
	if _, err := srv.handleRead(&wire.ReadReq{TxnID: "t-read", ID: item}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.handleBegin(&wire.BeginTxnReq{TxnID: "t-write"}); err != nil {
		t.Fatal(err)
	}
	if got := buffers(); got != 3 {
		t.Fatalf("buffers after re-access: %d, want 3", got)
	}

	// A write after an explicit begin lands in the same buffer.
	if _, err := srv.handleWrite(&wire.WriteReq{TxnID: "t-begin", ID: item, Value: []byte("w")}); err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	buffered := srv.buffers["t-begin"][item]
	srv.mu.Unlock()
	if string(buffered) != "w" {
		t.Fatalf("buffered write %q, want %q", buffered, "w")
	}

	// Reads of unknown items still fail, and do not leave the buffer
	// behind confused — the transaction stays open (it begun on access).
	if _, err := srv.handleRead(&wire.ReadReq{TxnID: "t-read", ID: "nope"}); err == nil {
		t.Fatal("read of unknown item succeeded")
	}
}
