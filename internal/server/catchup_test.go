package server

import (
	"bytes"
	"context"
	"errors"
	"math/big"
	"sync"
	"testing"

	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// enableCatchupAll wires every env server into one catch-up mesh over a
// zero-latency in-process network, so the asking side can actually reach
// the serving side. It returns the network and the server-id set for
// tests that re-attach a replacement server.
func enableCatchupAll(t *testing.T, e *env) (*transport.LocalNetwork, []identity.NodeID) {
	t.Helper()
	net := transport.NewLocalNetwork(0)
	ids := make([]identity.NodeID, len(e.servers))
	for i, ident := range e.idents {
		ids[i] = ident.ID
	}
	for i, srv := range e.servers {
		ep := net.Endpoint(e.idents[i], e.reg, srv)
		if err := srv.EnableCatchup(CatchupConfig{Transport: ep, Servers: ids}); err != nil {
			t.Fatal(err)
		}
	}
	return net, ids
}

// cosignedRoundSkipping runs an honest round through co-sign and delivers
// the decision to every server except the skipped ones — the cohorts a
// lost phase-5 broadcast left behind. It returns the finalized block.
func cosignedRoundSkipping(t *testing.T, e *env, skip map[int]bool, trID string, ts uint64, sIdx, iIdx int) *ledger.Block {
	t.Helper()
	ctx := context.Background()
	tr := e.freshTxn(t, trID, ts, sIdx, iIdx)
	b := e.partialBlock(tr)
	r := e.collectVotes(t, b, []identity.Envelope{e.signTxn(t, tr)})
	e.finalizeBlock(t, r)

	responses := make([]*big.Int, len(e.servers))
	for s, srv := range e.servers {
		resp, err := srv.Challenge(ctx, e.idents[0].ID, r.challengeReq())
		if err != nil {
			t.Fatalf("server %d challenge: %v", s, err)
		}
		responses[s] = new(big.Int).SetBytes(resp.Response)
	}
	aggR, err := cosi.AggregateResponses(responses)
	if err != nil {
		t.Fatal(err)
	}
	r.block.SetCoSig(cosi.Finalize(r.challenge, aggR))
	for s, srv := range e.servers {
		if skip[s] {
			continue
		}
		if _, err := srv.Decide(ctx, e.idents[0].ID, &wire.DecisionReq{Block: r.block}); err != nil {
			t.Fatalf("server %d decide: %v", s, err)
		}
	}
	return r.block
}

// TestApplyFetchedConcurrentAnswers is the race-detector test for the
// ask-a-peer path: several peers answer the same missing height at once,
// exactly one answer must apply fresh, the rest must be recognized as
// duplicates, and the server must end up with the block applied once.
func TestApplyFetchedConcurrentAnswers(t *testing.T) {
	e := newEnv(t, 3)
	enableCatchupAll(t, e)
	block := cosignedRoundSkipping(t, e, map[int]bool{2: true}, "t1", 5, 2, 1)

	lagging := e.servers[2]
	if lagging.Log().Len() != 0 {
		t.Fatalf("lagging server already at %d", lagging.Log().Len())
	}

	const answers = 8
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		fresh int
		errs  []error
	)
	for i := 0; i < answers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each peer answer arrives as its own decoded copy.
			ok, err := lagging.applyFetched(block.Clone())
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			if ok {
				fresh++
			}
		}()
	}
	wg.Wait()

	if len(errs) > 0 {
		t.Fatalf("concurrent answers errored: %v", errs)
	}
	if fresh != 1 {
		t.Fatalf("fresh applies = %d, want exactly 1", fresh)
	}
	if lagging.Log().Len() != 1 || !bytes.Equal(lagging.Log().TipHash(), block.Hash()) {
		t.Fatalf("lagging server did not converge on the fetched block")
	}
	item, err := lagging.Shard().Get(testItem(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(item.Value, []byte("new-t1")) {
		t.Fatalf("catch-up did not apply the block's writes: %q", item.Value)
	}
	st := lagging.Stats()
	if st.CatchupBlocks != 1 {
		t.Fatalf("CatchupBlocks = %d, want 1", st.CatchupBlocks)
	}
}

// TestApplyFetchedRejectsForgeries: a block from an untrusted peer is only
// as good as its collective signature — mutations, abort fabrications and
// trimmed signer sets must all be rejected.
func TestApplyFetchedRejectsForgeries(t *testing.T) {
	e := newEnv(t, 3)
	enableCatchupAll(t, e)
	block := cosignedRoundSkipping(t, e, map[int]bool{2: true}, "t1", 5, 2, 1)
	lagging := e.servers[2]

	mutated := block.Clone()
	mutated.Txns[0].Writes[0].NewVal = []byte("evil")
	if _, err := lagging.applyFetched(mutated); !errors.Is(err, ErrBadCoSig) {
		t.Fatalf("mutated block: got %v, want ErrBadCoSig", err)
	}

	abortForged := block.Clone()
	abortForged.Decision = ledger.DecisionAbort
	if _, err := lagging.applyFetched(abortForged); err == nil {
		t.Fatal("abort-decision block accepted by catch-up")
	}

	trimmed := block.Clone()
	trimmed.Signers = trimmed.Signers[:len(trimmed.Signers)-1]
	if _, err := lagging.applyFetched(trimmed); err == nil {
		t.Fatal("block without the full signer set accepted by catch-up")
	}

	if lagging.Log().Len() != 0 {
		t.Fatalf("forgeries advanced the log to %d", lagging.Log().Len())
	}
}

// TestResolvePendingPullsMissingSuffix: a server that restarted behind the
// cluster tip (modeled as a fresh instance under the same identity, the
// state a crash-short recovery leaves) pulls the whole verified suffix
// from its peers and converges — log, datastore and watermark.
func TestResolvePendingPullsMissingSuffix(t *testing.T) {
	e := newEnv(t, 3)
	net, ids := enableCatchupAll(t, e)
	var blocks []*ledger.Block
	for i, id := range []string{"t1", "t2", "t3"} {
		blocks = append(blocks, runFullRound(t, e, e.freshTxn(t, id, uint64(5+i), 2, i)))
	}

	// Replace server 2 with a blank instance sharing its identity — the
	// same signer, none of the state. Its endpoint replaces the old one.
	items := make([]txn.ItemID, 4)
	for i := range items {
		items[i] = testItem(2, i)
	}
	shard := store.NewShard(items, func(txn.ItemID) []byte { return []byte("0") }, store.Config{})
	lagging, err := New(Config{Identity: e.idents[2], Registry: e.reg, Directory: e.dir, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	ep := net.Endpoint(e.idents[2], e.reg, lagging)
	if err := lagging.EnableCatchup(CatchupConfig{Transport: ep, Servers: ids}); err != nil {
		t.Fatal(err)
	}

	applied, err := lagging.ResolvePending(context.Background())
	if err != nil {
		t.Fatalf("ResolvePending: %v", err)
	}
	if applied != len(blocks) {
		t.Fatalf("applied %d blocks, want %d", applied, len(blocks))
	}
	if lagging.Log().Len() != len(blocks) || !bytes.Equal(lagging.Log().TipHash(), blocks[len(blocks)-1].Hash()) {
		t.Fatal("lagging server did not converge on the cluster log")
	}
	if lc := lagging.LastCommitted(); lc != blocks[len(blocks)-1].MaxTS() {
		t.Fatalf("watermark %v did not advance to the suffix tip", lc)
	}
	item, err := lagging.Shard().Get(testItem(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(item.Value, []byte("new-t3")) {
		t.Fatalf("suffix transfer did not rebuild the datastore: %q", item.Value)
	}
}

// TestAskDecisionServesLoggedBlock: the serving side returns the co-signed
// block at a logged height (and only a tip for heights it does not have).
func TestAskDecisionServesLoggedBlock(t *testing.T) {
	e := newEnv(t, 2)
	enableCatchupAll(t, e)
	block := cosignedRoundSkipping(t, e, nil, "t1", 5, 1, 0)

	resp, err := e.servers[0].handleAskDecision(&wire.AskDecisionReq{Height: 0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Block == nil || !bytes.Equal(resp.Block.Hash(), block.Hash()) || resp.Tip != 1 {
		t.Fatalf("ask_decision answer wrong: block=%v tip=%d", resp.Block, resp.Tip)
	}

	resp, err = e.servers[0].handleAskDecision(&wire.AskDecisionReq{Height: 7})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Block != nil || resp.Tip != 1 {
		t.Fatalf("ask_decision for unknown height: block=%v tip=%d", resp.Block, resp.Tip)
	}
}
