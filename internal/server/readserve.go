package server

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ledger"
	"repro/internal/merkle"
	"repro/internal/store"
	"repro/internal/wire"
)

// This file implements the server side of the verified-read subsystem
// (internal/lightclient): header-chain sync and proof-carrying reads. Both
// serve from caches maintained in lockstep with the log under the server
// lock (see cacheBlockLocked), so a response's height, root and proof are
// always mutually consistent even while blocks are being applied.

// Paging and batching bounds. Both exist to keep one request from pinning
// the server lock (or one frame) arbitrarily long; clients page.
const (
	// MaxHeadersPerFetch caps one header page; FetchHeadersReq.Max above
	// it is clamped, zero selects DefaultHeadersPerFetch.
	MaxHeadersPerFetch = 2048
	// DefaultHeadersPerFetch is the page size when the request leaves Max
	// unset.
	DefaultHeadersPerFetch = 512
	// MaxVerifiedReadBatch caps the items of one verified-read request.
	MaxVerifiedReadBatch = 256
)

// Errors surfaced by the verified-read path.
var (
	ErrNoCommittedRoot = errors.New("server: no committed shard root at or below the requested height")
	ErrBatchTooLarge   = errors.New("server: verified-read batch exceeds limit")
)

// handleFetchHeaders serves a page of the header chain. Headers are served
// from the cache (extracted once per committed block), so a sync costs no
// per-request hashing. The TamperHeaders fault serves corrupted headers —
// the forgery a light client must reject by collective-signature
// verification.
func (s *Server) handleFetchHeaders(req *wire.FetchHeadersReq) (*wire.FetchHeadersResp, error) {
	max := int(req.Max)
	if max <= 0 {
		max = DefaultHeadersPerFetch
	}
	if max > MaxHeadersPerFetch {
		max = MaxHeadersPerFetch
	}

	s.mu.Lock()
	tip := uint64(len(s.headers))
	from := req.From
	if from > tip {
		from = tip
	}
	end := from + uint64(max)
	if end > tip {
		end = tip
	}
	page := s.headers[from:end]
	faults := s.faults
	s.mu.Unlock()

	resp := &wire.FetchHeadersResp{Tip: tip}
	if len(page) == 0 {
		return resp, nil
	}
	if !faults.TamperHeaders {
		// Cached headers are immutable once appended; serving them shared
		// is safe because the transport encodes the response before the
		// handler returns.
		resp.Headers = page
		return resp, nil
	}
	// Fault: serve forged headers — flip a bit in a co-signed field of
	// every header of the page (a root when present, else the txns hash).
	resp.Headers = make([]*ledger.Header, 0, len(page))
	for _, h := range page {
		forged := h.Clone()
		tampered := false
		for id := range forged.Roots {
			forged.Roots[id][0] ^= 0x01
			tampered = true
			break
		}
		if !tampered && len(forged.TxnsHash) > 0 {
			forged.TxnsHash[0] ^= 0x01
		}
		resp.Headers = append(resp.Headers, forged)
	}
	return resp, nil
}

// handleVerifiedRead serves a proof-carrying read: the requested items of
// this server's shard plus one batched Merkle proof authenticating them
// against the newest committed (co-signed) shard root — or, for pinned
// requests, against the newest committed root at or below the pin
// (snapshot reads; historical states require a multi-versioned shard).
//
// The whole resolution runs under the server lock, which is what makes the
// triple ⟨height, shard state, proof⟩ atomic with respect to concurrent
// block applies.
func (s *Server) handleVerifiedRead(req *wire.VerifiedReadReq) (*wire.VerifiedReadResp, error) {
	if len(req.IDs) == 0 {
		return nil, errors.New("server: verified read: no items requested")
	}
	if len(req.IDs) > MaxVerifiedReadBatch {
		return nil, fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(req.IDs), MaxVerifiedReadBatch)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	if len(s.rootHeights) == 0 {
		return nil, fmt.Errorf("server %s: %w", s.ident.ID, ErrNoCommittedRoot)
	}
	latest := s.rootHeights[len(s.rootHeights)-1]
	target := latest
	if req.Pinned {
		// Newest committed root at or below the pin: the shard state a
		// reader at that height observed.
		i := sort.Search(len(s.rootHeights), func(i int) bool { return s.rootHeights[i] > req.AtHeight })
		if i == 0 {
			return nil, fmt.Errorf("server %s: height %d: %w", s.ident.ID, req.AtHeight, ErrNoCommittedRoot)
		}
		target = s.rootHeights[i-1]
	}

	var (
		items []store.Item
		mp    merkle.MultiProof
		err   error
	)
	if target == latest {
		// Fast path: the live tree is exactly the state the newest
		// committed root authenticates.
		items, mp, err = s.shard.MultiProof(req.IDs)
	} else {
		// Snapshot read: rebuild the tree at the version the pinned root
		// covers (the block's max commit timestamp — commit timestamps are
		// strictly increasing across blocks, so this selects exactly the
		// versions as of that block).
		b, gerr := s.log.Get(target)
		if gerr != nil {
			return nil, fmt.Errorf("server %s: verified read at %d: %w", s.ident.ID, target, gerr)
		}
		items, mp, err = s.shard.MultiProofAt(req.IDs, b.MaxTS())
	}
	if err != nil {
		if errors.Is(err, store.ErrSingleVersion) {
			return nil, fmt.Errorf("server %s: snapshot reads at a past height require a multi-versioned shard: %w", s.ident.ID, err)
		}
		return nil, fmt.Errorf("server %s: verified read: %w", s.ident.ID, err)
	}

	resp := &wire.VerifiedReadResp{Height: target, Proof: mp, Items: make([]wire.VerifiedItem, len(items))}
	for i, it := range items {
		resp.Items[i] = wire.VerifiedItem{ID: it.ID, Value: it.Value, RTS: it.RTS, WTS: it.WTS}
	}

	// Fault injection: the verified-read path exists to turn these lies
	// into immediate client-side rejections instead of audit-time
	// findings.
	if s.faults.StaleReads {
		// Scenario 1: previous value under current timestamps. The served
		// proof still authenticates the *actual* state, so the leaf
		// recomputed by the client no longer folds to the committed root.
		for i := range resp.Items {
			if prev, ok := s.prevValues[resp.Items[i].ID]; ok {
				resp.Items[i].Value = append([]byte(nil), prev...)
			}
		}
	}
	if s.faults.TamperVerifiedProof {
		// A forged proof: misdeclare the first leaf position. The client
		// cross-checks every proof index against the leaf index it derives
		// from the static shard layout, so the forged shape is rejected
		// (ErrBadProof) before any hashing.
		forged := append([]int(nil), resp.Proof.Indices...)
		forged[0]++
		resp.Proof.Indices = forged
	}
	return resp, nil
}
