// Package server implements a Fides database server: the four-component
// node of paper Figure 3 — a transaction execution layer, a commitment
// layer (TFCommit cohort, plus the 2PC baseline), a datastore, and the
// tamper-proof log.
//
// The server also hosts the fault-injection surface of the reproduction:
// every malicious behavior the paper's auditor must detect (§3.2, §5) can
// be switched on per server through the Faults configuration, while the
// default zero value is a correct server.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// Directory resolves which server stores a data item. Every node knows the
// full partitioning (paper §3.1: clients and servers "are aware of all the
// other servers in the system").
type Directory interface {
	// Owner returns the server storing id.
	Owner(id txn.ItemID) (identity.NodeID, bool)
}

// Terminator handles a client's end_transaction request. The coordinator
// server wires this to its batching commit service; cohort servers leave it
// nil and reject termination requests.
type Terminator interface {
	Terminate(ctx context.Context, env identity.Envelope) (*wire.EndTxnResp, error)
}

// Snapshotter is notified after every committed block so a durable store
// can periodically checkpoint the shard (internal/durable implements it).
// It is called with the server lock held, after the block is applied and
// appended; height and tipHash identify the block just committed.
type Snapshotter interface {
	MaybeSnapshot(shard *store.Shard, height uint64, tipHash []byte) error
}

// Config assembles a server.
type Config struct {
	Identity  *identity.Identity
	Registry  *identity.Registry
	Directory Directory
	Shard     *store.Shard
	Faults    Faults

	// Log, when non-nil, seeds the server with a recovered tamper-proof
	// log instead of an empty one (the open-with-recovery startup path).
	// The server's last-committed watermark is derived from its blocks.
	Log *ledger.Log
	// Snapshot, when non-nil, is invoked after every committed block.
	Snapshot Snapshotter
	// VoteLookahead enables the pipelined commit path on the cohort side:
	// a get_vote announcement for a height above the log tip waits up to
	// this long for the in-flight decisions below it to apply, instead of
	// being rejected outright. Zero keeps the strict serial behavior
	// (announcements must extend the log exactly when they arrive).
	VoteLookahead time.Duration
	// CrashHook, when non-nil, is invoked at named points of the commit
	// path — "post-cosign" (decision signature verified, nothing applied
	// yet) and "mid-apply" (datastore updated, block not yet appended to
	// the log) — with the height of the block in flight. Returning a
	// non-nil error makes the step fail at exactly that point, which is
	// how the simulation harness (internal/sim) crashes a server between
	// the effects a real crash can separate. Production servers leave it
	// nil.
	CrashHook func(point string, height uint64) error
	// Obs supplies metrics, tracing and logging for this server; nil runs
	// dark (detached instruments, no spans, discard logger).
	Obs *obs.Obs
	// Verifier is this server's verification plane: every client-envelope
	// and collective-signature check on the commit path goes through it,
	// so the backend (serial or batched/parallel, core.Config.Crypto)
	// decides how the work is scheduled. Nil defaults to the serial
	// backend over Registry — today's behavior byte-for-byte.
	Verifier crypto.Verifier
}

// Server is one Fides database server.
type Server struct {
	ident    *identity.Identity
	reg      *identity.Registry
	dir      Directory
	shard    *store.Shard
	log      *ledger.Log
	verifier crypto.Verifier

	faults Faults

	snap      Snapshotter
	lookahead time.Duration // max get_vote wait for pipelined arrivals
	crash     func(point string, height uint64) error
	o         *obs.Obs

	// Registry-backed instruments (detached when no registry is wired).
	// They are also the storage for Stats(): the snapshot is a thin view
	// over these, never a second hand-rolled counter set.
	mhtHist         *obs.Histogram
	catchupBlocks   *obs.Counter
	wedgeRecoveries *obs.Counter
	dupDecisions    *obs.Counter
	occAborts       [4]*obs.Counter // indexed by occCause
	heightGauge     *obs.Gauge

	mu            sync.Mutex
	buffers       map[string]map[txn.ItemID][]byte // txnID → buffered writes (execution layer)
	lastCommitted txn.Timestamp
	inflight      *cohortState // at most one TFCommit/2PC block in flight (sequential blocks)
	prevValues    map[txn.ItemID][]byte
	terminator    Terminator

	// Catch-up state (catchup.go): the peer mesh for pulling missed
	// decisions, and the hashes of recently decided abort blocks so a
	// retried abort decision whose ack was lost re-acknowledges
	// idempotently (commit blocks need no such memory — the log itself is
	// it).
	cu           *catchupState
	recentAborts map[uint64][]byte

	// Verified-read serving state (readserve.go): the header cache is the
	// log's headers, index == height; the committed-root cache records at
	// which heights this server's shard root was co-signed into a block,
	// so the serving path resolves "latest root ≤ pin" without scanning
	// the log. Both are maintained under mu by applyCommitLocked and
	// seeded from a recovered log.
	headers     []*ledger.Header
	rootHeights []uint64          // ascending
	rootAt      map[uint64][]byte // height → this server's committed root
}

// Stats aggregates the server-side costs the paper's evaluation reports;
// Figure 14 plots the Merkle-tree update time per block alongside latency
// and throughput.
type Stats struct {
	// MHTTime is the cumulative wall time spent computing in-memory Merkle
	// roots during Vote phases (overlay updates + reverts).
	MHTTime time.Duration
	// MHTBlocks counts the blocks those computations served.
	MHTBlocks int

	// CatchupBlocks counts blocks applied from peers through the catch-up
	// path (catchup.go) rather than a directly delivered phase-5 decision.
	CatchupBlocks int
	// WedgeRecoveries counts vote announcements that stalled past their
	// grace slice and were un-wedged by pulling the missing decisions from
	// peers — each one is a would-be liveness failure that healed.
	WedgeRecoveries int
	// DupDecisions counts re-delivered decisions acknowledged
	// idempotently: a coordinator retry after a lost ack, or a decision
	// arriving after catch-up already supplied the block.
	DupDecisions int
}

// occCause indexes Server.occAborts: the reason an OCC timestamp
// validation voted a transaction (or the whole block) abort.
type occCause int

const (
	occStaleTS       occCause = iota // txn timestamp ≤ last committed watermark
	occReadConflict                  // a read item's WTS moved since the read
	occWriteConflict                 // a written item's WTS moved since the write
	occBlockConflict                 // intra-block conflicting access set (§4.6)
)

// Stats returns a snapshot of the server's accumulated statistics. It is
// a thin view over the registry-backed instruments that also feed
// /metrics (fides_server_mht_seconds, fides_server_catchup_blocks_total,
// fides_server_wedge_recoveries_total, fides_server_dup_decisions_total).
func (s *Server) Stats() Stats {
	return Stats{
		MHTTime:         time.Duration(s.mhtHist.Sum() * float64(time.Second)),
		MHTBlocks:       int(s.mhtHist.Count()),
		CatchupBlocks:   int(s.catchupBlocks.Value()),
		WedgeRecoveries: int(s.wedgeRecoveries.Value()),
		DupDecisions:    int(s.dupDecisions.Value()),
	}
}

// New builds a server from its configuration.
func New(cfg Config) (*Server, error) {
	if cfg.Identity == nil || cfg.Identity.Role != identity.RoleServer {
		return nil, errors.New("server: config requires a server identity")
	}
	if cfg.Identity.Schnorr == nil {
		return nil, errors.New("server: identity lacks a schnorr key")
	}
	if cfg.Registry == nil || cfg.Shard == nil || cfg.Directory == nil {
		return nil, errors.New("server: config requires registry, shard and directory")
	}
	log := cfg.Log
	if log == nil {
		log = ledger.NewLog()
	}
	verifier := cfg.Verifier
	if verifier == nil {
		verifier = crypto.NewSerial(cfg.Registry)
	}
	o := cfg.Obs
	s := &Server{
		ident:     cfg.Identity,
		reg:       cfg.Registry,
		verifier:  verifier,
		dir:       cfg.Directory,
		shard:     cfg.Shard,
		log:       log,
		snap:      cfg.Snapshot,
		lookahead: cfg.VoteLookahead,
		crash:     cfg.CrashHook,
		o:         o,
		faults:    cfg.Faults,

		mhtHist:         o.Histogram("fides_server_mht_seconds", "In-memory Merkle root computation latency during Vote phases (overlay updates + reverts).", nil),
		catchupBlocks:   o.Counter("fides_server_catchup_blocks_total", "Blocks applied via the peer catch-up path instead of a directly delivered decision."),
		wedgeRecoveries: o.Counter("fides_server_wedge_recoveries_total", "Vote announcements un-wedged by pulling overdue decisions from peers."),
		dupDecisions:    o.Counter("fides_server_dup_decisions_total", "Re-delivered decisions acknowledged idempotently."),
		heightGauge:     o.Gauge("fides_server_log_height", "Tamper-proof log length (blocks committed)."),

		buffers:      make(map[string]map[txn.ItemID][]byte),
		prevValues:   make(map[txn.ItemID][]byte),
		rootAt:       make(map[uint64][]byte),
		recentAborts: make(map[uint64][]byte),
	}
	const occHelp = "Transactions voted abort by OCC timestamp validation, by cause."
	s.occAborts = [4]*obs.Counter{
		occStaleTS:       o.Counter("fides_server_occ_aborts_total", occHelp, obs.L("cause", "stale_ts")),
		occReadConflict:  o.Counter("fides_server_occ_aborts_total", occHelp, obs.L("cause", "read_conflict")),
		occWriteConflict: o.Counter("fides_server_occ_aborts_total", occHelp, obs.L("cause", "write_conflict")),
		occBlockConflict: o.Counter("fides_server_occ_aborts_total", occHelp, obs.L("cause", "block_conflict")),
	}
	// A recovered log restores the OCC watermark: "the servers ignore any
	// end transaction request with a timestamp lower than the latest
	// committed timestamp" must hold across restarts too — and re-seeds
	// the header and committed-root caches the verified-read path serves
	// from.
	for _, b := range log.Blocks() {
		s.lastCommitted = s.lastCommitted.Max(b.MaxTS())
		s.cacheBlockLocked(b)
	}
	s.heightGauge.Set(int64(log.Len()))
	return s, nil
}

// cacheBlockLocked records a committed block's header and, when this
// server's shard was involved, its co-signed root in the verified-read
// caches. Log heights are dense, so the header cache index equals the
// block height.
func (s *Server) cacheBlockLocked(b *ledger.Block) {
	s.headers = append(s.headers, b.Header())
	if root, ok := b.Roots[s.ident.ID]; ok {
		s.rootHeights = append(s.rootHeights, b.Height)
		s.rootAt[b.Height] = append([]byte(nil), root...)
	}
}

// ID returns the server's node id.
func (s *Server) ID() identity.NodeID { return s.ident.ID }

// Shard exposes the server's datastore (read-only use by tests/benches).
func (s *Server) Shard() *store.Shard { return s.shard }

// Log exposes the server's tamper-proof log.
func (s *Server) Log() *ledger.Log { return s.log }

// SetTerminator installs the termination service (the coordinator's commit
// batcher) that serves client end_transaction requests.
func (s *Server) SetTerminator(t Terminator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.terminator = t
}

// SetFaults replaces the server's fault configuration (tests flip faults on
// and off mid-run).
func (s *Server) SetFaults(f Faults) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = f
}

// Faults returns the current fault configuration.
func (s *Server) Faults() Faults {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// LastCommitted returns the largest commit timestamp the server has applied.
func (s *Server) LastCommitted() txn.Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCommitted
}

var _ transport.Handler = (*Server)(nil)

// Handle dispatches an authenticated transport message to the appropriate
// layer.
func (s *Server) Handle(ctx context.Context, from identity.NodeID, msg transport.Message) (transport.Message, error) {
	switch msg.Type {
	case wire.MsgBeginTxn:
		return dispatch(msg, func(req *wire.BeginTxnReq) (*wire.BeginTxnResp, error) {
			return s.handleBegin(req)
		})
	case wire.MsgRead:
		return dispatch(msg, func(req *wire.ReadReq) (*wire.ReadResp, error) {
			return s.handleRead(req)
		})
	case wire.MsgWrite:
		return dispatch(msg, func(req *wire.WriteReq) (*wire.WriteResp, error) {
			return s.handleWrite(req)
		})
	case wire.MsgEndTxn:
		return dispatch(msg, func(req *wire.EndTxnReq) (*wire.EndTxnResp, error) {
			return s.handleEndTxn(ctx, req)
		})
	case wire.MsgGetVote:
		return dispatch(msg, func(req *wire.GetVoteReq) (*wire.VoteResp, error) {
			return s.GetVote(ctx, from, req)
		})
	case wire.MsgChallenge:
		return dispatch(msg, func(req *wire.ChallengeReq) (*wire.ChallengeResp, error) {
			return s.Challenge(ctx, from, req)
		})
	case wire.MsgDecision:
		return dispatch(msg, func(req *wire.DecisionReq) (*wire.DecisionResp, error) {
			return s.Decide(ctx, from, req)
		})
	case wire.MsgPrepare:
		return dispatch(msg, func(req *wire.PrepareReq) (*wire.PrepareResp, error) {
			return s.Prepare(ctx, from, req)
		})
	case wire.Msg2PCDecision:
		return dispatch(msg, func(req *wire.TwoPCDecisionReq) (*wire.TwoPCDecisionResp, error) {
			return s.Decide2PC(ctx, from, req)
		})
	case wire.MsgFetchLog:
		return dispatch(msg, func(req *wire.FetchLogReq) (*wire.FetchLogResp, error) {
			return s.handleFetchLog(req)
		})
	case wire.MsgFetchProof:
		return dispatch(msg, func(req *wire.FetchProofReq) (*wire.FetchProofResp, error) {
			return s.handleFetchProof(req)
		})
	case wire.MsgFetchHeaders:
		return dispatch(msg, func(req *wire.FetchHeadersReq) (*wire.FetchHeadersResp, error) {
			return s.handleFetchHeaders(req)
		})
	case wire.MsgVerifiedRead:
		return dispatch(msg, func(req *wire.VerifiedReadReq) (*wire.VerifiedReadResp, error) {
			return s.handleVerifiedRead(req)
		})
	case wire.MsgAskDecision:
		return dispatch(msg, func(req *wire.AskDecisionReq) (*wire.AskDecisionResp, error) {
			return s.handleAskDecision(req)
		})
	case wire.MsgFetchBlocks:
		return dispatch(msg, func(req *wire.FetchBlocksReq) (*wire.FetchBlocksResp, error) {
			return s.handleFetchBlocks(req)
		})
	default:
		return transport.Message{}, fmt.Errorf("server %s: unknown message type %q", s.ident.ID, msg.Type)
	}
}

// dispatch decodes the request, invokes fn, and encodes the response.
func dispatch[Req any, Resp any](msg transport.Message, fn func(*Req) (*Resp, error)) (transport.Message, error) {
	var req Req
	if err := msg.Decode(&req); err != nil {
		return transport.Message{}, err
	}
	resp, err := fn(&req)
	if err != nil {
		return transport.Message{}, err
	}
	return transport.NewMessage(msg.Type, resp)
}

// --- Execution layer (paper §4.2.1) ---

func (s *Server) handleBegin(req *wire.BeginTxnReq) (*wire.BeginTxnResp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.ensureTxnLocked(req.TxnID); err != nil {
		return nil, fmt.Errorf("server: begin: %w", err)
	}
	return &wire.BeginTxnResp{OK: true}, nil
}

// ensureTxnLocked opens the transaction's execution-layer buffer when the
// begin was implicit. The begin contract is uniform across the execution
// layer: an explicit begin_transaction, a first read, or a first write all
// open the transaction identically, and an empty transaction id is
// rejected on every path (it used to be rejected only on the explicit
// begin, with writes auto-creating a buffer and reads touching none).
func (s *Server) ensureTxnLocked(txnID string) (map[txn.ItemID][]byte, error) {
	if txnID == "" {
		return nil, errors.New("empty txn id")
	}
	buf, ok := s.buffers[txnID]
	if !ok {
		buf = make(map[txn.ItemID][]byte)
		s.buffers[txnID] = buf
	}
	return buf, nil
}

func (s *Server) handleRead(req *wire.ReadReq) (*wire.ReadResp, error) {
	// The server lock guards only the transaction table and the fault
	// state; the shard read runs under the shard's own RLock so
	// concurrent plain reads never serialize behind block applies.
	s.mu.Lock()
	_, err := s.ensureTxnLocked(req.TxnID)
	s.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("server: read: %w", err)
	}
	item, err := s.shard.Get(req.ID)
	if err != nil {
		return nil, err
	}
	resp := &wire.ReadResp{Value: item.Value, RTS: item.RTS, WTS: item.WTS}
	s.mu.Lock()
	if s.faults.StaleReads {
		// Scenario 1 (paper §5): return an incorrect (previous) value while
		// keeping the up-to-date timestamps, so the lie is only catchable by
		// the auditor's read-value chain check (Lemma 1) — or, online, by a
		// proof-carrying read (readserve.go).
		if prev, ok := s.prevValues[req.ID]; ok {
			resp.Value = append([]byte(nil), prev...)
		}
	}
	s.mu.Unlock()
	return resp, nil
}

func (s *Server) handleWrite(req *wire.WriteReq) (*wire.WriteResp, error) {
	item, err := s.shard.Get(req.ID)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, err := s.ensureTxnLocked(req.TxnID)
	if err != nil {
		return nil, fmt.Errorf("server: write: %w", err)
	}
	buf[req.ID] = append([]byte(nil), req.Value...)
	return &wire.WriteResp{OldVal: item.Value, RTS: item.RTS, WTS: item.WTS}, nil
}

func (s *Server) handleEndTxn(ctx context.Context, req *wire.EndTxnReq) (*wire.EndTxnResp, error) {
	s.mu.Lock()
	t := s.terminator
	s.mu.Unlock()
	if t == nil {
		return nil, fmt.Errorf("server %s: not the designated coordinator", s.ident.ID)
	}
	return t.Terminate(ctx, req.TxnEnvelope)
}

// DecodeTxnEnvelope verifies a client-signed transaction envelope against
// the registry and returns the transaction. Both the coordinator (on
// end_transaction) and every cohort (on get_vote, paper §4.3.1 phase 2)
// perform this check.
func DecodeTxnEnvelope(reg *identity.Registry, env identity.Envelope) (*txn.Transaction, error) {
	payload, err := reg.Open(env)
	if err != nil {
		return nil, fmt.Errorf("server: client request: %w", err)
	}
	return decodeTxnPayload(payload)
}

// DecodeTxnEnvelopeTrusted parses a transaction envelope without verifying
// its signature. It exists solely for the coordinator's local participant
// path: the coordinator already verified the very same envelope on
// end_transaction (Terminate), so its own cohort need not pay a second
// Ed25519 verification per transaction. Remote cohorts always use
// DecodeTxnEnvelope.
func DecodeTxnEnvelopeTrusted(env identity.Envelope) (*txn.Transaction, error) {
	return decodeTxnPayload(env.Payload)
}

// decodeTxnPayload parses a signed transaction payload: the canonical
// binary encoding by default, with the legacy JSON form (first byte '{')
// still accepted for compatibility.
func decodeTxnPayload(payload []byte) (*txn.Transaction, error) {
	var t txn.Transaction
	if len(payload) > 0 && payload[0] == '{' {
		if err := json.Unmarshal(payload, &t); err != nil {
			return nil, fmt.Errorf("server: client request: %w", err)
		}
	} else if err := t.UnmarshalBinary(payload); err != nil {
		return nil, fmt.Errorf("server: client request: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("server: client request: %w", err)
	}
	return &t, nil
}
