package server

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/wire"
)

// Prepare implements the cohort side of the trusted Two-Phase Commit
// baseline (paper §4.3.1, §6.1): the same block validation and OCC
// timestamp check as TFCommit's Vote phase, but with no cryptographic
// commitments, roots, or collective signing — 2PC "is sufficient to ensure
// atomicity if servers are trustworthy".
func (s *Server) Prepare(ctx context.Context, from identity.NodeID, req *wire.PrepareReq) (*wire.PrepareResp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	vote, involved, accesses, _, err := s.validateBlockLocked(req.Block, req.ClientReqs, from == s.ident.ID)
	if err != nil {
		return nil, err
	}
	s.inflight = &cohortState{
		height:   req.Block.Height,
		stripped: req.Block.StrippedBytes(),
		vote:     vote,
		involved: involved,
		accesses: accesses,
	}
	return &wire.PrepareResp{Vote: vote}, nil
}

// Decide2PC implements the 2PC decision round: on commit, apply the
// buffered writes and append the (unsigned) block to the log.
func (s *Server) Decide2PC(ctx context.Context, from identity.NodeID, req *wire.TwoPCDecisionReq) (*wire.TwoPCDecisionResp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	st := s.inflight
	if st == nil || req.Block == nil || req.Block.Height != st.height {
		return nil, ErrNoInflight
	}
	b := req.Block
	if !bytes.Equal(b.StrippedBytes(), st.stripped) {
		return nil, fmt.Errorf("%w (height %d)", ErrBlockMutated, b.Height)
	}
	if b.Decision == ledger.DecisionCommit {
		if err := s.applyCommitLocked(ctx, st, b); err != nil {
			return nil, err
		}
	}
	s.inflight = nil
	return &wire.TwoPCDecisionResp{OK: true}, nil
}
