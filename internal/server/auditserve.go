package server

import (
	"fmt"

	"repro/internal/ledger"
	"repro/internal/wire"
)

// handleFetchLog serves the server's tamper-proof log to an auditor
// (paper §3.3 step i). Log-layer faults are applied here: a malicious
// server cannot rewrite history that other servers replicate, but it can
// lie about its own copy — which is exactly what Lemmas 6 and 7 detect.
func (s *Server) handleFetchLog(_ *wire.FetchLogReq) (*wire.FetchLogResp, error) {
	blocks := s.log.CloneBlocks()

	s.mu.Lock()
	faults := s.faults
	s.mu.Unlock()

	if t := faults.TamperBlock; t != nil && t.Height < uint64(len(blocks)) {
		tampered := blocks[t.Height]
		for i := range tampered.Txns {
			for j := range tampered.Txns[i].Writes {
				if tampered.Txns[i].Writes[j].ID == t.Item {
					tampered.Txns[i].Writes[j].NewVal = append([]byte(nil), t.NewVal...)
				}
			}
		}
	}
	if faults.ReorderLog && len(blocks) >= 2 {
		last := len(blocks) - 1
		blocks[last], blocks[last-1] = blocks[last-1], blocks[last]
		// Disguise the swap superficially by fixing up the height fields;
		// the hash pointers and co-signs still betray it (Lemma 6).
		blocks[last].Height, blocks[last-1].Height = uint64(last), uint64(last-1)
	}
	if k := faults.DropTailBlocks; k > 0 {
		if k > len(blocks) {
			k = len(blocks)
		}
		blocks = blocks[:len(blocks)-k]
	}
	return &wire.FetchLogResp{Blocks: blocks}, nil
}

// handleFetchProof serves a Verification Object for one item, against the
// current state (single-versioned audit) or at a historical version
// (multi-versioned audit), per paper §4.2.2. The VO is generated from what
// the server actually stores: a corrupted datastore yields a VO that fails
// the auditor's root recomputation (Lemma 2).
func (s *Server) handleFetchProof(req *wire.FetchProofReq) (*wire.FetchProofResp, error) {
	if req.AtVersion {
		leaf, proof, err := s.shard.ProofAt(req.ID, req.TS)
		if err != nil {
			return nil, fmt.Errorf("server %s: proof at %s: %w", s.ident.ID, req.TS, err)
		}
		return &wire.FetchProofResp{LeafContent: leaf, Proof: proof}, nil
	}
	leaf, proof, err := s.shard.Proof(req.ID)
	if err != nil {
		return nil, fmt.Errorf("server %s: proof: %w", s.ident.ID, err)
	}
	return &wire.FetchProofResp{LeafContent: leaf, Proof: proof}, nil
}

// TamperStoredBlock mutates the server's own stored copy of a block —
// simulating post-hoc log tampering in place (as opposed to lying only when
// serving audits). Used by fault-injection tests for Lemma 6.
func (s *Server) TamperStoredBlock(height uint64, mutate func(*ledger.Block)) error {
	b, err := s.log.Get(height)
	if err != nil {
		return err
	}
	mutate(b)
	return nil
}
