package server

import (
	"repro/internal/txn"
)

// Faults configures malicious behavior for one server. The zero value is a
// correct server. Each field corresponds to a failure class of paper §3.2
// and §5; the auditor (package audit) must detect every one of them and
// attribute it to this server (or, for collusion flags, to the server whose
// misbehavior the collusion conceals).
type Faults struct {
	// --- Execution layer (§4.2.2) ---

	// StaleReads makes the execution layer return the previous value of an
	// item (with up-to-date timestamps) on reads — Scenario 1, detected by
	// the auditor's read-value chain check (Lemma 1).
	StaleReads bool

	// --- Commitment layer (§4.3.2) ---

	// VoteCommitAlways skips the OCC timestamp validation and votes commit
	// unconditionally, letting non-serializable transactions into the log —
	// detected by the serializability audit (Lemma 3).
	VoteCommitAlways bool

	// AlwaysAbortVote votes abort unconditionally. This is "tolerable"
	// behavior per the paper (a server can always force an abort), included
	// to exercise the abort path.
	AlwaysAbortVote bool

	// AcceptStaleTS skips the "ignore end_transaction requests with a
	// timestamp lower than the latest committed timestamp" rule (§4.3.1),
	// enabling timestamp-order violations.
	AcceptStaleTS bool

	// BadCommitment sends a Schnorr commitment unrelated to the secret
	// nonce, invalidating the collective signature — identified per
	// participant via partial-signature checks (Lemma 4).
	BadCommitment bool

	// BadResponse sends a corrupted Schnorr response — identified via
	// partial-signature checks (Lemma 4).
	BadResponse bool

	// FakeRootInVote makes an involved cohort report a Merkle root that does
	// not correspond to its shard state (the colluding variant of
	// Scenario 2) — detected later by the datastore audit (Lemma 2).
	FakeRootInVote bool

	// SkipChallengeChecks makes the cohort skip all validation in the
	// SchResponse phase (root presence/ownership, decision consistency,
	// challenge recomputation) — the "colluding group" of Lemma 5 that does
	// not expose a coordinator's equivocation.
	SkipChallengeChecks bool

	// SkipCoSigCheck makes the cohort append a decision block without
	// verifying its collective signature — required for an equivocating
	// coordinator's invalid branch to reach a log at all.
	SkipCoSigCheck bool

	// --- Datastore layer (§4.2.2, Scenario 3) ---

	// SkipApply silently drops the datastore update of committed writes, so
	// the stored data diverges from the authenticated roots — detected by
	// the VO/MHT audit (Lemma 2).
	SkipApply bool

	// CorruptApplyValue, when non-nil, is written instead of every committed
	// new value — also detected by Lemma 2.
	CorruptApplyValue []byte

	// --- Log layer (§4.4) ---

	// TamperBlock mutates one block when serving the log to an auditor —
	// detected by co-sign verification (Lemma 6).
	TamperBlock *TamperSpec

	// ReorderLog swaps the last two blocks when serving the log — detected
	// by hash-pointer verification (Lemma 6).
	ReorderLog bool

	// DropTailBlocks omits the last k blocks when serving the log — detected
	// by cross-server comparison with the longest valid log (Lemma 7).
	DropTailBlocks int

	// --- Verified-read path (internal/lightclient) ---

	// TamperHeaders serves forged headers on lc_fetch_headers (a co-signed
	// field flipped per header) — a light client must reject them by
	// collective-signature verification (lightclient.ErrBadHeader).
	TamperHeaders bool

	// TamperVerifiedProof forges the Merkle multiproof in verified-read
	// responses (misdeclared leaf position) — rejected client-side by
	// proof-shape validation against the static shard layout
	// (lightclient.ErrBadProof).
	TamperVerifiedProof bool
}

// TamperSpec describes a post-hoc block mutation applied when the log is
// served: the write entry for Item in the block at Height gets NewVal.
type TamperSpec struct {
	Height uint64
	Item   txn.ItemID
	NewVal []byte
}

// IsByzantine reports whether any fault is enabled.
func (f Faults) IsByzantine() bool {
	return f.StaleReads || f.VoteCommitAlways || f.AlwaysAbortVote ||
		f.AcceptStaleTS || f.BadCommitment || f.BadResponse ||
		f.FakeRootInVote || f.SkipChallengeChecks || f.SkipCoSigCheck ||
		f.SkipApply || f.CorruptApplyValue != nil || f.TamperBlock != nil ||
		f.ReorderLog || f.DropTailBlocks != 0 ||
		f.TamperHeaders || f.TamperVerifiedProof
}
