package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"time"

	"repro/internal/cosi"
	"repro/internal/crypto"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/schnorr"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wire"
)

// cohortState is the per-block state a cohort carries across the TFCommit
// phases (or across a 2PC prepare/decide pair). Blocks are produced
// sequentially (paper §4.3.1), so at most one is in flight.
type cohortState struct {
	height   uint64
	stripped []byte // canonical partial-block bytes fixed at GetVote/Prepare

	vote     ledger.Decision
	involved bool
	root     []byte
	accesses []store.Access

	// CoSi state (TFCommit only).
	secret          cosi.Secret
	challengedBytes []byte // signing bytes of the block approved at Challenge
	responded       bool
}

// Errors surfaced by the commitment layer. A correct cohort answers a
// malformed or inconsistent protocol message with an error instead of a
// response; without the cohort's response the coordinator cannot assemble a
// valid collective signature (paper §4.3.2).
var (
	ErrOutOfSequence  = errors.New("server: block does not extend this server's log")
	ErrNoInflight     = errors.New("server: no block in flight at this height")
	ErrBlockMutated   = errors.New("server: block transactions differ from the announced block")
	ErrRootMismatch   = errors.New("server: block carries a different root than this server sent")
	ErrMissingRoots   = errors.New("server: commit decision with missing involved-server roots")
	ErrAbortWithRoots = errors.New("server: abort decision but all involved roots present")
	ErrBadChallenge   = errors.New("server: challenge does not match hash(aggregate commitment ‖ block)")
	ErrVoteOverridden = errors.New("server: commit decision overrides this server's abort vote")
	ErrBadCoSig       = errors.New("server: decision block carries an invalid collective signature")
)

// GetVote implements TFCommit phase 2 ⟨Vote, SchCommitment⟩ (paper §4.3.1):
// verify the get_vote message and the encapsulated client requests, decide
// commit/abort locally via OCC timestamp validation, compute the in-memory
// Merkle root if involved and committing, and produce the Schnorr
// commitment for CoSi.
func (s *Server) GetVote(ctx context.Context, from identity.NodeID, req *wire.GetVoteReq) (*wire.VoteResp, error) {
	ctx, span := s.o.Start(ctx, "cohort.vote", "server", string(s.ident.ID))
	defer span.End()
	// Pipelined lookahead (per-height sequencing): the announcement for
	// block h+1 is sent as soon as block h's co-sign is finalized, so it
	// can overtake block h's decision on the wire. Park until the log has
	// grown to the announced height — everything below is then applied
	// (Decide runs apply, watermark and cleanup under one critical section
	// ending after the append) — so the OCC validation, Merkle root and
	// chain checks below see exactly the serial-order state. When the wait
	// stalls past its grace and catch-up is enabled, awaitHeight pulls the
	// overdue decisions from peers instead of erroring (catchup.go): a
	// lost decision or a dead coordinator must not wedge this cohort.
	if req.Block != nil {
		if h := req.Block.Height; h > uint64(s.log.Len()) && (s.lookahead > 0 || s.catchupCfg() != nil) {
			if err := s.awaitHeight(ctx, h); err != nil {
				return nil, fmt.Errorf("server %s: %w: %v", s.ident.ID, ErrOutOfSequence, err)
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	vote, involved, accesses, txnAborts, err := s.validateBlockLocked(req.Block, req.ClientReqs, from == s.ident.ID)
	if err != nil {
		return nil, err
	}

	st := &cohortState{
		height:   req.Block.Height,
		stripped: req.Block.StrippedBytes(),
		vote:     vote,
		involved: involved,
		accesses: accesses,
	}

	if involved && vote == ledger.DecisionCommit {
		start := time.Now()
		root, err := s.shard.OverlayRoot(accesses)
		if err != nil {
			return nil, fmt.Errorf("server %s: overlay root: %w", s.ident.ID, err)
		}
		s.mhtHist.ObserveSince(start)
		if s.faults.FakeRootInVote {
			root = randomBytes(32)
		}
		st.root = root
	}

	commitment, secret, err := cosi.Commit(nil)
	if err != nil {
		return nil, fmt.Errorf("server %s: %w", s.ident.ID, err)
	}
	st.secret = secret
	if s.faults.BadCommitment {
		// Publish a commitment unrelated to the retained secret nonce; the
		// final aggregate signature cannot verify, and partial-signature
		// checks pin the blame on this server (Lemma 4).
		k, err := schnorr.RandomScalar(nil)
		if err != nil {
			return nil, err
		}
		commitment = cosi.Commitment{V: schnorr.BaseMult(k)}
	}

	s.inflight = st
	return &wire.VoteResp{
		Vote:       st.vote,
		Involved:   st.involved,
		Root:       st.root,
		Commitment: commitment.V.Marshal(),
		TxnAborts:  txnAborts,
	}, nil
}

// Challenge implements TFCommit phase 4 ⟨null, SchResponse⟩ (paper §4.3.1):
// validate the now-filled block (decision/roots consistency, own root
// unchanged, challenge correctly computed) and answer with the Schnorr
// response.
func (s *Server) Challenge(ctx context.Context, from identity.NodeID, req *wire.ChallengeReq) (*wire.ChallengeResp, error) {
	_, span := s.o.Start(ctx, "cohort.challenge", "server", string(s.ident.ID))
	defer span.End()
	s.mu.Lock()
	defer s.mu.Unlock()

	st := s.inflight
	if st == nil || req.Block == nil || req.Block.Height != st.height {
		return nil, ErrNoInflight
	}
	b := req.Block

	// The canonical signing bytes are computed once per phase and shared
	// between the challenge validation and the cross-phase consistency
	// record.
	signingBytes := b.SigningBytes()
	if !s.faults.SkipChallengeChecks {
		if err := s.checkChallengeLocked(st, req, signingBytes); err != nil {
			return nil, err
		}
	}

	ch := new(big.Int).SetBytes(req.Challenge)
	resp, err := cosi.Respond(s.ident.Schnorr, &st.secret, ch)
	if err != nil {
		return nil, fmt.Errorf("server %s: %w", s.ident.ID, err)
	}
	if s.faults.BadResponse {
		resp.Add(resp, big.NewInt(1))
		resp.Mod(resp, schnorr.N())
	}
	st.challengedBytes = signingBytes
	st.responded = true
	return &wire.ChallengeResp{Response: resp.Bytes()}, nil
}

// checkChallengeLocked performs the phase-4 validations of §4.3.1:
//   - the block's transactions are the ones announced at GetVote;
//   - a commit decision carries the roots of all involved servers and this
//     server's root equals the one it sent (Scenario 2 detection);
//   - an abort decision has at least one involved root missing;
//   - the challenge equals hash(aggregate commitment ‖ block), which is how
//     a correct cohort exposes an equivocating coordinator (Lemma 5 case 1).
func (s *Server) checkChallengeLocked(st *cohortState, req *wire.ChallengeReq, signingBytes []byte) error {
	b := req.Block
	if !bytes.Equal(b.StrippedBytes(), st.stripped) {
		return fmt.Errorf("%w (height %d)", ErrBlockMutated, b.Height)
	}
	involvedSet := s.involvedServers(b)
	switch b.Decision {
	case ledger.DecisionCommit:
		if st.involved && st.vote != ledger.DecisionCommit {
			return fmt.Errorf("%w (height %d)", ErrVoteOverridden, b.Height)
		}
		for id := range involvedSet {
			if _, ok := b.Roots[id]; !ok {
				return fmt.Errorf("%w: no root for %s (height %d)", ErrMissingRoots, id, b.Height)
			}
		}
		if st.involved && !bytes.Equal(b.Roots[s.ident.ID], st.root) {
			return fmt.Errorf("%w (height %d)", ErrRootMismatch, b.Height)
		}
	case ledger.DecisionAbort:
		missing := false
		for id := range involvedSet {
			if _, ok := b.Roots[id]; !ok {
				missing = true
				break
			}
		}
		if !missing && len(involvedSet) > 0 {
			return fmt.Errorf("%w (height %d)", ErrAbortWithRoots, b.Height)
		}
	default:
		return fmt.Errorf("server %s: block %d has no decision", s.ident.ID, b.Height)
	}

	aggV, err := schnorr.UnmarshalPoint(req.AggCommitment)
	if err != nil {
		return fmt.Errorf("server %s: aggregate commitment: %w", s.ident.ID, err)
	}
	pubs, err := s.reg.SchnorrKeys(b.Signers)
	if err != nil {
		return fmt.Errorf("server %s: %w", s.ident.ID, err)
	}
	aggPub, err := cosi.AggregatePublicKeys(pubs)
	if err != nil {
		return fmt.Errorf("server %s: %w", s.ident.ID, err)
	}
	expected := cosi.Challenge(aggV, aggPub, signingBytes)
	if expected.Cmp(new(big.Int).SetBytes(req.Challenge)) != 0 {
		return fmt.Errorf("%w (height %d)", ErrBadChallenge, b.Height)
	}
	return nil
}

// Decide implements TFCommit phase 5 ⟨Decision, null⟩: verify the collective
// signature on the finalized block and, on commit, append the block to the
// tamper-proof log and update the datastore from the buffered writes
// (paper §4.1 steps 6–7).
func (s *Server) Decide(ctx context.Context, from identity.NodeID, req *wire.DecisionReq) (*wire.DecisionResp, error) {
	ctx, span := s.o.Start(ctx, "cohort.decide", "server", string(s.ident.ID))
	defer span.End()
	s.mu.Lock()
	defer s.mu.Unlock()

	b := req.Block
	if b == nil {
		return nil, ErrNoInflight
	}
	// Idempotent re-delivery: the coordinator retries decisions whose ack
	// was lost, and a cohort may have pulled the block from a peer before
	// the retry lands. A block already in the log at its height (same
	// hash) — or an abort already resolved at its height — is simply
	// re-acknowledged.
	if b.Height < uint64(s.log.Len()) {
		if logged, err := s.log.Get(b.Height); err == nil && bytes.Equal(logged.Hash(), b.Hash()) {
			if s.inflight != nil && s.inflight.height <= b.Height {
				s.inflight = nil
			}
			s.dupDecisions.Inc()
			return &wire.DecisionResp{OK: true}, nil
		}
	}
	if b.Decision == ledger.DecisionAbort {
		if hash, ok := s.recentAborts[b.Height]; ok && bytes.Equal(hash, b.Hash()) &&
			(s.inflight == nil || s.inflight.height != b.Height) {
			s.dupDecisions.Inc()
			return &wire.DecisionResp{OK: true}, nil
		}
	}

	st := s.inflight
	if st == nil || b.Height != st.height {
		return nil, ErrNoInflight
	}

	if !s.faults.SkipCoSigCheck {
		signingBytes := b.SigningBytes()
		if st.challengedBytes != nil && !bytes.Equal(signingBytes, st.challengedBytes) {
			return nil, fmt.Errorf("%w (height %d)", ErrBlockMutated, b.Height)
		}
		if err := ledger.VerifyBlockSigBytesWith(s.verifier, b, signingBytes); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCoSig, err)
		}
	}
	// Crash point "post-cosign": the decision's collective signature
	// checked out, but neither the datastore nor the log has seen the
	// block. A crash here loses the block on this server only.
	if s.crash != nil {
		if err := s.crash("post-cosign", b.Height); err != nil {
			return nil, fmt.Errorf("server %s: %w", s.ident.ID, err)
		}
	}

	if b.Decision == ledger.DecisionCommit {
		if err := s.applyCommitLocked(ctx, st, b); err != nil {
			return nil, err
		}
	} else {
		// Aborted blocks are not logged (paper §4.1 step 6), but the
		// execution-layer buffers of their transactions are released.
		for i := range b.Txns {
			delete(s.buffers, b.Txns[i].TxnID)
		}
		// Remember the abort so a retried delivery (lost ack) still
		// re-acknowledges after the inflight state is gone. Entries below
		// the log tip are stale — the height got committed eventually.
		for h := range s.recentAborts {
			if h < uint64(s.log.Len()) {
				delete(s.recentAborts, h)
			}
		}
		s.recentAborts[b.Height] = b.Hash()
	}
	s.inflight = nil
	return &wire.DecisionResp{OK: true}, nil
}

// applyCommitLocked installs a committed block: datastore update (possibly
// perverted by datastore faults), log append, last-committed watermark, and
// execution-buffer cleanup.
func (s *Server) applyCommitLocked(ctx context.Context, st *cohortState, b *ledger.Block) error {
	_, span := s.o.Start(ctx, "cohort.apply", "server", string(s.ident.ID))
	defer span.End()
	if st.involved {
		accesses := st.accesses
		// Remember the values being overwritten so the StaleReads fault can
		// serve them later (Scenario 1).
		for _, a := range accesses {
			for _, w := range a.Writes {
				if cur, err := s.shard.Get(w.ID); err == nil {
					s.prevValues[w.ID] = cur.Value
				}
			}
		}
		switch {
		case s.faults.SkipApply:
			// Drop the writes entirely: the datastore silently diverges from
			// the authenticated state (Scenario 3).
			stripped := make([]store.Access, len(accesses))
			for i, a := range accesses {
				stripped[i] = store.Access{ReadIDs: a.ReadIDs, TS: a.TS}
			}
			accesses = stripped
		case s.faults.CorruptApplyValue != nil:
			corrupted := make([]store.Access, len(accesses))
			for i, a := range accesses {
				ws := make([]txn.WriteEntry, len(a.Writes))
				for j, w := range a.Writes {
					w.NewVal = append([]byte(nil), s.faults.CorruptApplyValue...)
					ws[j] = w
				}
				corrupted[i] = store.Access{ReadIDs: a.ReadIDs, Writes: ws, TS: a.TS}
			}
			accesses = corrupted
		}
		if err := s.shard.Apply(accesses); err != nil {
			return fmt.Errorf("server %s: apply block %d: %w", s.ident.ID, b.Height, err)
		}
	}
	// Crash point "mid-apply": the in-memory datastore holds the block's
	// writes but the tamper-proof log (and with it the WAL) does not. A
	// crash here is the divergence verified recovery must heal by replay.
	if s.crash != nil {
		if err := s.crash("mid-apply", b.Height); err != nil {
			return fmt.Errorf("server %s: %w", s.ident.ID, err)
		}
	}
	if err := s.log.Append(b.Clone()); err != nil {
		return fmt.Errorf("server %s: append block %d: %w", s.ident.ID, b.Height, err)
	}
	// Keep the verified-read caches (header chain + committed-root index)
	// in lockstep with the log, inside the same critical section, so a
	// proof generated at a height is always generated from the shard state
	// that height's root authenticates.
	s.cacheBlockLocked(b)
	s.heightGauge.Set(int64(s.log.Len()))
	if s.snap != nil {
		// The snapshot is a recovery cache, but a failure to write it means
		// the disk is unhealthy — surface it rather than degrade silently.
		if err := s.snap.MaybeSnapshot(s.shard, b.Height, b.Hash()); err != nil {
			return fmt.Errorf("server %s: snapshot at block %d: %w", s.ident.ID, b.Height, err)
		}
	}
	s.lastCommitted = s.lastCommitted.Max(b.MaxTS())
	for i := range b.Txns {
		delete(s.buffers, b.Txns[i].TxnID)
	}
	return nil
}

// validateBlockLocked verifies a proposed block against this server's log
// position and the encapsulated signed client requests, then runs the OCC
// timestamp validation of §4.3.1 for the items this shard stores. It
// returns the server's local vote, whether the server's shard is involved,
// and the datastore accesses to apply should the block commit.
//
// trustedLocal is true only when the request came from this very server
// acting as coordinator (from == own id, unforgeable through the
// authenticated transport): the coordinator verified every client
// envelope's signature on end_transaction, so its own cohort skips the
// redundant per-transaction Ed25519 verification and only re-parses and
// cross-checks the contents.
func (s *Server) validateBlockLocked(b *ledger.Block, reqs []identity.Envelope, trustedLocal bool) (ledger.Decision, bool, []store.Access, []int, error) {
	if b == nil || len(b.Txns) == 0 {
		return 0, false, nil, nil, errors.New("server: nil or empty block")
	}
	if b.Height != uint64(s.log.Len()) {
		return 0, false, nil, nil, fmt.Errorf("%w: block height %d, log length %d", ErrOutOfSequence, b.Height, s.log.Len())
	}
	if !bytes.Equal(b.PrevHash, s.log.TipHash()) {
		return 0, false, nil, nil, fmt.Errorf("%w: prev-hash mismatch at height %d", ErrOutOfSequence, b.Height)
	}
	if len(reqs) != len(b.Txns) {
		return 0, false, nil, nil, fmt.Errorf("server: %d client requests for %d transactions", len(reqs), len(b.Txns))
	}
	// Envelope signatures go through the verification plane in one batch —
	// the batched backend fans the Ed25519 checks across its worker pool —
	// then the payloads decode serially against the already-verified bytes.
	// The coordinator's own cohort skips the batch: the very same envelopes
	// were verified on end_transaction (from == own id, unforgeable through
	// the authenticated transport).
	if !trustedLocal {
		if i, err := crypto.FirstError(s.verifier.VerifyBatch(reqs)); err != nil {
			return 0, false, nil, nil, fmt.Errorf("server: client request (block txn %d): %w", i, err)
		}
	}
	for i, env := range reqs {
		t, err := DecodeTxnEnvelopeTrusted(env)
		if err != nil {
			return 0, false, nil, nil, err
		}
		if !bytes.Equal(ledger.RecordFromTransaction(t).CanonicalBytes(), b.Txns[i].CanonicalBytes()) {
			return 0, false, nil, nil, fmt.Errorf("server: block txn %d does not match the client-signed request", i)
		}
	}

	vote := ledger.DecisionCommit
	if s.faults.AlwaysAbortVote {
		vote = ledger.DecisionAbort
	}
	// The coordinator must pack only non-conflicting transactions into a
	// block (paper §4.6); a block that violates this would commit
	// unserializable effects, so a correct cohort votes abort.
	blockReads := make(map[txn.ItemID]struct{})
	blockWrites := make(map[txn.ItemID]struct{})
	conflictFree := true
	for i := range b.Txns {
		rec := &b.Txns[i]
		for _, r := range rec.Reads {
			if _, ok := blockWrites[r.ID]; ok {
				conflictFree = false
			}
		}
		for _, w := range rec.Writes {
			if _, ok := blockWrites[w.ID]; ok {
				conflictFree = false
			}
			if _, ok := blockReads[w.ID]; ok {
				conflictFree = false
			}
		}
		for _, r := range rec.Reads {
			blockReads[r.ID] = struct{}{}
		}
		for _, w := range rec.Writes {
			blockWrites[w.ID] = struct{}{}
		}
	}
	if !conflictFree && !s.faults.VoteCommitAlways {
		vote = ledger.DecisionAbort
		s.occAborts[occBlockConflict].Inc()
	}

	involved := false
	var accesses []store.Access
	var txnAborts []int
	for i := range b.Txns {
		rec := &b.Txns[i]
		a := store.Access{TS: rec.TS}
		txnOK := true
		if !s.lastCommitted.Less(rec.TS) && !s.faults.AcceptStaleTS {
			// "The servers ignore any end transaction request with a
			// timestamp lower than the latest committed timestamp" (§4.3.1).
			txnOK = false
			s.occAborts[occStaleTS].Inc()
		}
		for _, r := range rec.Reads {
			if !s.shard.Has(r.ID) {
				continue
			}
			a.ReadIDs = append(a.ReadIDs, r.ID)
			cur, err := s.shard.Get(r.ID)
			if err != nil {
				return 0, false, nil, nil, err
			}
			if cur.WTS != r.WTS {
				// The item was updated after this transaction read it:
				// timestamp-ordered OCC aborts (§4.3.1).
				if txnOK {
					s.occAborts[occReadConflict].Inc()
				}
				txnOK = false
			}
		}
		for _, w := range rec.Writes {
			if !s.shard.Has(w.ID) {
				continue
			}
			a.Writes = append(a.Writes, w)
			cur, err := s.shard.Get(w.ID)
			if err != nil {
				return 0, false, nil, nil, err
			}
			if cur.WTS != w.WTS {
				if txnOK {
					s.occAborts[occWriteConflict].Inc()
				}
				txnOK = false
			}
		}
		if len(a.ReadIDs) > 0 || len(a.Writes) > 0 {
			involved = true
			accesses = append(accesses, a)
		}
		if !txnOK && !s.faults.VoteCommitAlways {
			vote = ledger.DecisionAbort
			txnAborts = append(txnAborts, i)
		}
	}
	return vote, involved, accesses, txnAborts, nil
}

// involvedServers returns the set of servers owning any item accessed by
// the block's transactions.
func (s *Server) involvedServers(b *ledger.Block) map[identity.NodeID]struct{} {
	set := make(map[identity.NodeID]struct{})
	for i := range b.Txns {
		rec := &b.Txns[i]
		for _, r := range rec.Reads {
			if owner, ok := s.dir.Owner(r.ID); ok {
				set[owner] = struct{}{}
			}
		}
		for _, w := range rec.Writes {
			if owner, ok := s.dir.Owner(w.ID); ok {
				set[owner] = struct{}{}
			}
		}
	}
	return set
}

func randomBytes(n int) []byte {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; a zero slice only
		// weakens a *fault injection*, so degrade instead of panicking.
		return b
	}
	return b
}
