package crypto

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/identity"
)

// TestPoolMapCoversAllIndices: every index runs exactly once, results
// land positionally.
func TestPoolMapCoversAllIndices(t *testing.T) {
	p := NewPool(4, nil)
	defer p.Close()
	const n = 1000
	var counts [n]atomic.Int32
	p.Map(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

// TestPoolConcurrentMaps: many concurrent Map calls (the pipelined commit
// shape: several blocks in flight, each fanning out OCC + signature work)
// each see a complete, dispatch-order-independent result.
func TestPoolConcurrentMaps(t *testing.T) {
	p := NewPool(4, nil)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				n := 1 + (g+round)%64
				out := make([]int, n)
				p.Map(n, func(i int) { out[i] = i*2 + g })
				for i := range out {
					if out[i] != i*2+g {
						t.Errorf("goroutine %d round %d: out[%d]=%d", g, round, i, out[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolCloseDuringMaps: closing the pool while Maps are in flight
// neither loses work nor deadlocks — racing and subsequent Maps degrade
// to inline execution.
func TestPoolCloseDuringMaps(t *testing.T) {
	p := NewPool(2, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var done atomic.Int32
				p.Map(32, func(int) { done.Add(1) })
				if got := done.Load(); got != 32 {
					t.Errorf("map completed %d/32 elements", got)
					return
				}
			}
		}()
	}
	p.Close()
	close(stop)
	wg.Wait()
	// A Map after Close still runs every element (inline).
	var done atomic.Int32
	p.Map(10, func(int) { done.Add(1) })
	if done.Load() != 10 {
		t.Fatalf("post-close map completed %d/10", done.Load())
	}
}

// TestBatchedConcurrentCommitShape drives the batched backend the way
// pipelined commits do — concurrent VerifyBatch + Submit + VerifyCoSig
// from many goroutines — and checks sticky per-element error surfacing:
// the bad element's verdict is stable no matter which worker, batch or
// cache path served it.
func TestBatchedConcurrentCommitShape(t *testing.T) {
	f := newFixture(t, 3, 4)
	b := NewBatched(Options{Registry: f.reg, Workers: 4, MaxBatch: 8})
	defer b.Close()
	envs := f.envelopes(t, 40, 5)
	record := []byte("block")
	_, _, _, _, sig := f.cosign(t, record)
	ids := f.serverIDs()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				errs := b.VerifyBatch(envs)
				for i := range errs {
					if (errs[i] != nil) != (i == 5) {
						t.Errorf("round %d element %d: %v", round, i, errs[i])
						return
					}
				}
				tk := b.Submit(envs[round%len(envs)])
				if _, err := tk.Wait(context.Background()); (err != nil) != (round%len(envs) == 5) {
					t.Errorf("submit round %d: %v", round, err)
					return
				}
				if err := b.VerifyCoSig(ids, record, sig); err != nil {
					t.Errorf("cosig round %d: %v", round, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if !errors.Is(b.VerifyBatch(envs)[5], identity.ErrBadSignature) {
		t.Fatal("bad element verdict not sticky after concurrent rounds")
	}
}
