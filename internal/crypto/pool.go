package crypto

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool is a fixed-size worker pool for the data-parallel stages of the
// commit path: batch signature verification, OCC validation, Merkle leaf
// hashing and datastore apply all fan independent per-element work across
// it. Map calls are safe from any number of goroutines concurrently (the
// pipelined commit path overlaps blocks), results are written by index so
// dispatch order never shows in the output, and a closed pool degrades to
// inline execution instead of failing — shutdown can race a late commit
// without either losing work or deadlocking.
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
	mu      sync.RWMutex
	closed  atomic.Bool
	busy    atomic.Int64
	busyG   *obs.Gauge
}

// NewPool starts a pool of the given size (≤0 defaults to GOMAXPROCS).
// The obs bundle may be nil.
func NewPool(workers int, o *obs.Obs) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		// Buffer one full fan-out per worker so Map never blocks on its
		// own submissions when every worker is busy with another block.
		tasks: make(chan func(), 4*workers),
		busyG: o.Gauge("fides_crypto_pool_busy_workers", "Verification-plane worker-pool tasks currently executing."),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.work()
	}
	return p
}

func (p *Pool) work() {
	defer p.wg.Done()
	for task := range p.tasks {
		p.busyG.Set(p.busy.Add(1))
		task()
		p.busyG.Set(p.busy.Add(-1))
	}
}

// Workers returns the pool size (0 for a nil pool, meaning "run inline").
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Map runs f(i) for every i in [0, n) and returns when all calls have
// finished. Work is claimed index-by-index from a shared counter, so the
// division of labor adapts to element cost; callers communicate results
// positionally (errs[i], hashes[i], …), which makes the outcome
// independent of dispatch order by construction. A nil or closed pool —
// and the caller's own goroutine, which always participates instead of
// idling — run elements inline, so Map never deadlocks during shutdown.
func (p *Pool) Map(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.closed.Load() || n == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			f(i)
		}
	}
	helpers := p.workers
	if helpers > n-1 {
		helpers = n - 1
	}
	var wg sync.WaitGroup
	// The read lock pairs with Close's write lock so a helper is never
	// sent on a closed channel; submission is non-blocking, so the lock is
	// held only for the fan-out instant.
	p.mu.RLock()
	if !p.closed.Load() {
		for i := 0; i < helpers; i++ {
			wg.Add(1)
			task := func() { defer wg.Done(); run() }
			select {
			case p.tasks <- task:
			default:
				// Pool saturated: don't queue behind other blocks'
				// fan-outs, just do the work here.
				wg.Done()
			}
		}
	}
	p.mu.RUnlock()
	run() // the caller is always one of the workers
	wg.Wait()
}

// Close stops the workers after in-flight tasks finish. Map calls racing
// or following Close complete inline. Close is idempotent.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed.CompareAndSwap(false, true) {
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
