package crypto

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"math/big"
	"sync"
	"time"

	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/obs"
	"repro/internal/schnorr"
)

// Options configures the batched backend.
type Options struct {
	// Registry resolves sender and signer public keys.
	Registry *identity.Registry
	// Workers sizes the worker pool (≤0 defaults to GOMAXPROCS).
	Workers int
	// MaxBatch bounds how many queued Submit envelopes one collector
	// drain verifies together (default 128).
	MaxBatch int
	// CacheSize bounds each verified-result cache generation (default
	// 4096 entries; the cache keeps at most two generations).
	CacheSize int
	// Obs supplies the fides_crypto_* instruments; nil runs dark.
	Obs *obs.Obs
}

// Batched is the parallel backend: a worker pool spreads per-element
// Ed25519 envelope checks across cores, an async collector groups
// concurrent Submit calls into batches, verified-result caches elide
// re-verification of byte-identical inputs (prune-and-retry resubmits
// the same envelopes; every in-process client re-checks the same block
// co-sign), and partial co-sign shares are checked with one
// random-linear-combination equation that fails closed to the serial
// per-element check. Acceptance is exactly Serial's — see the package
// comment for the trust argument.
type Batched struct {
	reg  *identity.Registry
	pool *Pool

	maxBatch int

	mu       sync.Mutex
	closed   bool
	submitCh chan submitReq
	drained  chan struct{}

	envCache   *verdictCache
	cosigCache *verdictCache

	verifyEnvelopeHist *obs.Histogram
	verifyCoSigHist    *obs.Histogram
	verifyPartialHist  *obs.Histogram
	batchHist          *obs.Histogram
	queueDepth         *obs.Gauge
	okEnvelope         *obs.Counter
	badEnvelope        *obs.Counter
	okCoSig            *obs.Counter
	badCoSig           *obs.Counter
	cacheHitsEnvelope  *obs.Counter
	cacheHitsCoSig     *obs.Counter
	fallbacks          *obs.Counter
}

type submitReq struct {
	env identity.Envelope
	t   *Ticket
}

// NewBatched creates a batched backend and starts its worker pool and
// async collector.
func NewBatched(opts Options) *Batched {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 128
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = 4096
	}
	o := opts.Obs
	const verifyHelp = "Verification-plane check latency, by kind (one envelope, one collective signature, one partial-share set)."
	const totalHelp = "Verification-plane checks by kind and outcome."
	const hitHelp = "Verified-result cache hits by kind (byte-identical input already verified)."
	b := &Batched{
		reg:        opts.Registry,
		pool:       NewPool(opts.Workers, o),
		maxBatch:   opts.MaxBatch,
		submitCh:   make(chan submitReq, 32*opts.MaxBatch),
		drained:    make(chan struct{}),
		envCache:   newVerdictCache(opts.CacheSize),
		cosigCache: newVerdictCache(opts.CacheSize),

		verifyEnvelopeHist: o.Histogram("fides_crypto_verify_seconds", verifyHelp, nil, obs.L("kind", "envelope")),
		verifyCoSigHist:    o.Histogram("fides_crypto_verify_seconds", verifyHelp, nil, obs.L("kind", "cosig")),
		verifyPartialHist:  o.Histogram("fides_crypto_verify_seconds", verifyHelp, nil, obs.L("kind", "partial")),
		batchHist:          o.Histogram("fides_crypto_batch_txns", "Envelopes verified per drained async batch.", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		queueDepth:         o.Gauge("fides_crypto_queue_depth", "Envelopes waiting in the async verification queue."),
		okEnvelope:         o.Counter("fides_crypto_verifies_total", totalHelp, obs.L("kind", "envelope"), obs.L("outcome", "ok")),
		badEnvelope:        o.Counter("fides_crypto_verifies_total", totalHelp, obs.L("kind", "envelope"), obs.L("outcome", "bad")),
		okCoSig:            o.Counter("fides_crypto_verifies_total", totalHelp, obs.L("kind", "cosig"), obs.L("outcome", "ok")),
		badCoSig:           o.Counter("fides_crypto_verifies_total", totalHelp, obs.L("kind", "cosig"), obs.L("outcome", "bad")),
		cacheHitsEnvelope:  o.Counter("fides_crypto_cache_hits_total", hitHelp, obs.L("kind", "envelope")),
		cacheHitsCoSig:     o.Counter("fides_crypto_cache_hits_total", hitHelp, obs.L("kind", "cosig")),
		fallbacks:          o.Counter("fides_crypto_batch_fallbacks_total", "Batch share checks that failed closed to the serial per-element re-check."),
	}
	go b.collect()
	return b
}

var _ Verifier = (*Batched)(nil)

// envKey is the cache identity of an envelope: every byte the serial
// check consumes. Two envelopes with equal keys verify identically
// against an append-only registry.
func envKey(env identity.Envelope) [sha256.Size]byte {
	h := sha256.New()
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(env.From)))
	h.Write(n[:])
	h.Write([]byte(env.From))
	binary.BigEndian.PutUint64(n[:], uint64(len(env.Payload)))
	h.Write(n[:])
	h.Write(env.Payload)
	h.Write(env.Sig)
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// verifyEnvelopeCached is the per-element check behind every envelope
// path: cache hit replays a prior success, miss runs the serial primitive
// and caches only successes (failures always re-verify, so an attacker
// cannot park a verdict).
func (b *Batched) verifyEnvelopeCached(env identity.Envelope) ([]byte, error) {
	key := envKey(env)
	if b.envCache.hit(key) {
		b.cacheHitsEnvelope.Inc()
		return env.Payload, nil
	}
	start := time.Now()
	payload, err := b.reg.Open(env)
	b.verifyEnvelopeHist.ObserveSince(start)
	if err != nil {
		b.badEnvelope.Inc()
		return nil, err
	}
	b.okEnvelope.Inc()
	b.envCache.add(key)
	return payload, nil
}

// VerifyEnvelope checks one envelope (cached).
func (b *Batched) VerifyEnvelope(env identity.Envelope) ([]byte, error) {
	return b.verifyEnvelopeCached(env)
}

// VerifyBatch fans the per-element checks across the worker pool.
// Verdicts are written by index, so the result is identical no matter
// which worker checks which element.
func (b *Batched) VerifyBatch(envs []identity.Envelope) []error {
	errs := make([]error, len(envs))
	b.pool.Map(len(envs), func(i int) {
		_, errs[i] = b.verifyEnvelopeCached(envs[i])
	})
	return errs
}

// Submit enqueues an envelope for the collector. When the queue is full
// or the backend is closing the check runs inline — the ticket always
// resolves.
func (b *Batched) Submit(env identity.Envelope) *Ticket {
	t := newTicket()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		t.complete(nil, ErrVerifierClosed)
		return t
	}
	select {
	case b.submitCh <- submitReq{env: env, t: t}:
		b.queueDepth.Set(int64(len(b.submitCh)))
		b.mu.Unlock()
	default:
		b.mu.Unlock()
		t.complete(b.verifyEnvelopeCached(env))
	}
	return t
}

// collect drains the submission queue into batches and verifies each
// batch across the pool. Independent Terminate handlers get batching
// without coordinating: whatever is queued when a drain starts shares
// one fan-out.
func (b *Batched) collect() {
	defer close(b.drained)
	for {
		first, ok := <-b.submitCh
		if !ok {
			return
		}
		batch := []submitReq{first}
	drain:
		for len(batch) < b.maxBatch {
			select {
			case r, ok := <-b.submitCh:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		b.queueDepth.Set(int64(len(b.submitCh)))
		b.batchHist.Observe(float64(len(batch)))
		b.pool.Map(len(batch), func(i int) {
			batch[i].t.complete(b.verifyEnvelopeCached(batch[i].env))
		})
	}
}

// cosigKey is the cache identity of a collective-signature check: signer
// set, record and signature bytes.
func cosigKey(signers []identity.NodeID, record []byte, sig cosi.Signature) [sha256.Size]byte {
	h := sha256.New()
	var n [8]byte
	for _, id := range signers {
		binary.BigEndian.PutUint64(n[:], uint64(len(id)))
		h.Write(n[:])
		h.Write([]byte(id))
	}
	binary.BigEndian.PutUint64(n[:], uint64(len(record)))
	h.Write(n[:])
	h.Write(record)
	cb, sb := sig.Bytes()
	binary.BigEndian.PutUint64(n[:], uint64(len(cb)))
	h.Write(n[:])
	h.Write(cb)
	h.Write(sb)
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// VerifyCoSig checks a collective signature, replaying a cached verdict
// when these exact bytes already verified — the commit path checks every
// block's co-sign once per cohort plus once per in-process client, and
// all of them share this cache through the injected backend.
func (b *Batched) VerifyCoSig(signers []identity.NodeID, record []byte, sig cosi.Signature) error {
	if sig.IsZero() {
		b.badCoSig.Inc()
		return ErrBadCoSig
	}
	key := cosigKey(signers, record, sig)
	if b.cosigCache.hit(key) {
		b.cacheHitsCoSig.Inc()
		return nil
	}
	start := time.Now()
	err := verifyCoSig(b.reg, signers, record, sig)
	b.verifyCoSigHist.ObserveSince(start)
	if err != nil {
		b.badCoSig.Inc()
		return err
	}
	b.okCoSig.Inc()
	b.cosigCache.add(key)
	return nil
}

// VerifyPartials batch-checks the witnesses' responses with one random
// linear combination: for random nonzero coefficients z_i,
//
//	(Σ z_i·r_i)·G  ==  Σ z_i·V_i + Σ (z_i·c)·X_i
//
// holds whenever every per-element equation r_i·G == V_i + c·X_i holds,
// and fails with overwhelming probability when any element is wrong —
// without the random z_i, two errors could cancel and a naive batch
// would accept shares that don't verify individually. Any batch-equation
// miss (and any malformed input) fails closed to the serial per-element
// check, which alone decides attribution.
func (b *Batched) VerifyPartials(pubs []schnorr.PublicKey, commitments []cosi.Commitment, challenge *big.Int, responses []*big.Int) ([]int, error) {
	if len(pubs) != len(commitments) || len(pubs) != len(responses) {
		// Same contract as cosi.IdentifyFaulty.
		return cosi.IdentifyFaulty(pubs, commitments, challenge, responses)
	}
	start := time.Now()
	defer func() { b.verifyPartialHist.ObserveSince(start) }()
	n := len(pubs)
	if n == 0 || challenge == nil {
		return cosi.IdentifyFaulty(pubs, commitments, challenge, responses)
	}
	for i := 0; i < n; i++ {
		if responses[i] == nil || !pubs[i].OnCurve() || !commitments[i].V.OnCurve() {
			// A malformed element can't enter the group equation; let the
			// serial check attribute it.
			b.fallbacks.Inc()
			return cosi.IdentifyFaulty(pubs, commitments, challenge, responses)
		}
	}
	order := schnorr.N()
	zs := make([]*big.Int, n)
	for i := range zs {
		z, err := randomCoefficient()
		if err != nil {
			b.fallbacks.Inc()
			return cosi.IdentifyFaulty(pubs, commitments, challenge, responses)
		}
		zs[i] = z
	}
	// Scalar side: Σ z_i·r_i mod N costs one base mult total instead of
	// one per element. Point side: the per-element terms z_i·V_i and
	// (z_i·c)·X_i are independent, so they fan across the pool.
	sum := new(big.Int)
	for i := 0; i < n; i++ {
		sum.Add(sum, new(big.Int).Mul(zs[i], responses[i]))
	}
	sum.Mod(sum, order)
	lhs := schnorr.BaseMult(sum)

	terms := make([]schnorr.Point, n)
	b.pool.Map(n, func(i int) {
		zc := new(big.Int).Mul(zs[i], challenge)
		zc.Mod(zc, order)
		terms[i] = commitments[i].V.ScalarMult(zs[i]).Add(pubs[i].Point.ScalarMult(zc))
	})
	rhs := schnorr.Infinity()
	for i := 0; i < n; i++ {
		rhs = rhs.Add(terms[i])
	}
	if lhs.Equal(rhs) {
		return nil, nil
	}
	// Fail closed: something in the set is wrong; only the per-element
	// serial check may attribute it.
	b.fallbacks.Inc()
	return cosi.IdentifyFaulty(pubs, commitments, challenge, responses)
}

// randomCoefficient draws a uniform nonzero 128-bit batching coefficient.
// 128 bits keep the cancellation probability below 2^-128 while halving
// the scalar width of the extra multiplications.
func randomCoefficient() (*big.Int, error) {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return nil, err
	}
	z := new(big.Int).SetBytes(buf[:])
	if z.Sign() == 0 {
		z.SetInt64(1)
	}
	return z, nil
}

// Pool exposes the worker pool for the commit path's data-parallel
// stages (OCC validation, Merkle leaf hashing, datastore apply).
func (b *Batched) Pool() *Pool { return b.pool }

// Close stops the collector (completing queued tickets) and then the
// worker pool. Idempotent.
func (b *Batched) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.drained
		b.pool.Close()
		return
	}
	b.closed = true
	close(b.submitCh)
	b.mu.Unlock()
	<-b.drained
	b.pool.Close()
}

// verdictCache remembers successful verifications by input digest. Two
// bounded generations rotate FIFO-style: inserts go to the current
// generation, lookups check both, and filling the current generation
// discards the previous one — O(1) operations, at most 2×limit entries,
// no per-entry bookkeeping. Only successes are stored, so a failing
// input is re-verified every time it appears.
type verdictCache struct {
	mu    sync.Mutex
	limit int
	cur   map[[sha256.Size]byte]struct{}
	prev  map[[sha256.Size]byte]struct{}
}

func newVerdictCache(limit int) *verdictCache {
	return &verdictCache{limit: limit, cur: make(map[[sha256.Size]byte]struct{}, limit)}
}

func (c *verdictCache) hit(key [sha256.Size]byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.cur[key]; ok {
		return true
	}
	if c.prev != nil {
		if _, ok := c.prev[key]; ok {
			// Promote so hot entries survive rotation.
			c.cur[key] = struct{}{}
			return true
		}
	}
	return false
}

func (c *verdictCache) add(key [sha256.Size]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.cur) >= c.limit {
		c.prev = c.cur
		c.cur = make(map[[sha256.Size]byte]struct{}, c.limit)
	}
	c.cur[key] = struct{}{}
}
