// Package crypto is the commit plane's verification layer: one pluggable
// Verifier API that every signature check on the commit hot path goes
// through, with a serial backend (byte-for-byte today's behavior) and a
// batched/parallel backend that amortizes and parallelizes the dominant
// CPU cost of the CPU-bound intra-DC regime — Ed25519 client-envelope
// verification at Terminate and GetVote, and CoSi share verification at
// challenge/response (paper §4.3.1).
//
// The trust argument for why batching adds nothing to the trust model:
// every backend accepts an input if and only if the serial primitive
// accepts it. The parallel envelope path runs the exact per-element
// ed25519 check, just on more cores; the verified-result caches key on
// the complete byte content of the verified object (sender, payload,
// signature — or signer set, record, co-sign), so a hit replays a verdict
// the serial check already produced for those exact bytes against an
// append-only registry; and the random-linear-combination share check
// (VerifyPartials) fails *closed*: any batch-equation miss falls back to
// the per-element serial check, which alone decides acceptance and
// attribution. A batch shortcut can therefore reject spuriously (and pay
// a re-check) but never accept anything serial verification would refuse.
//
// Backends are safe for concurrent use by any number of goroutines; a
// cluster shares one instance per trust domain (each server injects its
// own, clients may share one — sharing the verified co-sign cache across
// in-process clients is the same deployment choice as sharing a light
// client's header cache).
package crypto

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/schnorr"
)

// Verifier is the injected verification plane. All methods are safe for
// concurrent use.
type Verifier interface {
	// VerifyEnvelope checks one client-signed envelope against the
	// registry and returns the authenticated payload (identity.Registry
	// .Open semantics: identity.ErrUnknownSender / identity.ErrBadSignature
	// on failure).
	VerifyEnvelope(env identity.Envelope) ([]byte, error)

	// VerifyBatch checks a batch of envelopes and returns a slice of
	// per-element verdicts, always len(envs) long: errs[i] is nil iff
	// envs[i] verifies. Attribution is per element — a bad envelope never
	// taints its batch mates.
	VerifyBatch(envs []identity.Envelope) []error

	// Submit enqueues one envelope for asynchronous verification and
	// returns immediately; the Ticket's Wait delivers the verdict. The
	// batched backend groups concurrent submissions into batches for its
	// worker pool — this is how independent Terminate handlers share
	// batching without knowing about each other.
	Submit(env identity.Envelope) *Ticket

	// VerifyCoSig checks a collective signature over record against the
	// aggregate Schnorr public key of the named signers. It returns
	// ErrUnknownSigner if a signer is not in the registry and ErrBadCoSig
	// if the signature does not verify.
	VerifyCoSig(signers []identity.NodeID, record []byte, sig cosi.Signature) error

	// VerifyPartials checks the witnesses' partial responses
	// r_i·G == V_i + c·X_i (paper Lemma 4) and returns the indices of the
	// faulty ones. The three slices must be parallel. The batched backend
	// first tries one random-linear-combination equation over the whole
	// set and falls back to the serial per-element check on any mismatch,
	// so attribution is always per element.
	VerifyPartials(pubs []schnorr.PublicKey, commitments []cosi.Commitment, challenge *big.Int, responses []*big.Int) ([]int, error)

	// Pool returns the backend's worker pool for data-parallel commit
	// work beyond signatures (OCC validation, Merkle leaf hashing,
	// datastore apply), or nil when the backend is serial — callers fall
	// back to inline loops on nil.
	Pool() *Pool

	// Close releases backend resources (worker pool, async collector).
	// In-flight work completes; later Submits fail with ErrVerifierClosed.
	Close()
}

// Sentinel errors shared by all backends.
var (
	// ErrUnknownSigner reports a co-sign signer set containing an identity
	// the registry cannot resolve.
	ErrUnknownSigner = errors.New("crypto: unresolvable signer")
	// ErrBadCoSig reports a collective signature that does not verify
	// against the aggregate key of its signer set.
	ErrBadCoSig = errors.New("crypto: invalid collective signature")
	// ErrVerifierClosed reports a Submit after Close.
	ErrVerifierClosed = errors.New("crypto: verifier closed")
)

// Ticket is the handle for one asynchronously submitted envelope
// verification.
type Ticket struct {
	done    chan struct{}
	payload []byte
	err     error
}

func newTicket() *Ticket { return &Ticket{done: make(chan struct{})} }

// doneTicket returns an already-completed ticket (the serial backend and
// error paths resolve synchronously).
func doneTicket(payload []byte, err error) *Ticket {
	t := newTicket()
	t.complete(payload, err)
	return t
}

// complete resolves the ticket exactly once.
func (t *Ticket) complete(payload []byte, err error) {
	t.payload, t.err = payload, err
	close(t.done)
}

// Wait blocks until the verification completes or ctx is done, and
// returns the authenticated payload (VerifyEnvelope semantics).
func (t *Ticket) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-t.done:
		return t.payload, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// FirstError returns the index and value of the first non-nil verdict in
// a VerifyBatch result, or (-1, nil) when every element verified. Cohorts
// use it to attribute a bad block to its first offending envelope
// deterministically, independent of which worker found it.
func FirstError(errs []error) (int, error) {
	for i, err := range errs {
		if err != nil {
			return i, err
		}
	}
	return -1, nil
}

// verifyCoSig is the one shared implementation of the VerifyCoSig
// contract: resolve the signer set, aggregate, check. Both backends call
// it (the batched backend behind its cache), so acceptance is identical
// by construction.
func verifyCoSig(reg *identity.Registry, signers []identity.NodeID, record []byte, sig cosi.Signature) error {
	pubs, err := reg.SchnorrKeys(signers)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnknownSigner, err)
	}
	if sig.IsZero() || !cosi.VerifyParticipants(pubs, record, sig) {
		return ErrBadCoSig
	}
	return nil
}
