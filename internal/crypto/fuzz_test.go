package crypto

import (
	"sync"
	"testing"

	"repro/internal/identity"
)

// fuzzEnv is a process-wide fixture: building identities is the expensive
// part of each fuzz iteration, and the property under test only needs a
// stable registry.
var fuzzEnv struct {
	once    sync.Once
	fix     *fixture
	serial  *Serial
	batched *Batched
}

// FuzzVerifyBatchMatchesSerial is the batch-falsifiability property: for
// an arbitrary corruption (byte position, mask, which element, which
// field) of an otherwise valid envelope batch, the batched backend's
// per-element verdicts equal serial verification's — the batch path can
// never accept an element the serial check refuses, nor refuse one it
// accepts.
func FuzzVerifyBatchMatchesSerial(f *testing.F) {
	fuzzEnv.once.Do(func() {
		fix := newFixture(f, 2, 3)
		fuzzEnv.fix = fix
		fuzzEnv.serial = NewSerial(fix.reg)
		fuzzEnv.batched = NewBatched(Options{Registry: fix.reg, Workers: 4, CacheSize: 8})
	})
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint8(3), uint8(0xff), uint8(7), uint8(1))
	f.Add(uint8(6), uint8(0x01), uint8(31), uint8(2))
	f.Fuzz(func(t *testing.T, which, mask, pos, field uint8) {
		fix := fuzzEnv.fix
		envs := fix.envelopes(t, 8)
		// Corrupt element `which` at byte `pos` of the chosen field (0 =
		// leave valid, 1 = payload, 2 = signature, 3 = sender id).
		i := int(which) % len(envs)
		switch field % 4 {
		case 1:
			buf := append([]byte(nil), envs[i].Payload...)
			buf[int(pos)%len(buf)] ^= mask
			envs[i].Payload = buf
		case 2:
			buf := append([]byte(nil), envs[i].Sig...)
			buf[int(pos)%len(buf)] ^= mask
			envs[i].Sig = buf
		case 3:
			buf := []byte(envs[i].From)
			buf = append([]byte(nil), buf...)
			buf[int(pos)%len(buf)] ^= mask
			envs[i].From = identity.NodeID(buf)
		}
		got := fuzzEnv.batched.VerifyBatch(envs)
		for j := range envs {
			_, want := fuzzEnv.serial.VerifyEnvelope(envs[j])
			if (got[j] == nil) != (want == nil) {
				t.Fatalf("element %d (corrupted %d field %d mask %02x pos %d): batched=%v serial=%v",
					j, i, field%4, mask, pos, got[j], want)
			}
		}
	})
}
