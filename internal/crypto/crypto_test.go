package crypto

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/schnorr"
)

// fixture builds a registry with nServers server identities and nClients
// client identities.
type fixture struct {
	reg     *identity.Registry
	servers []*identity.Identity
	clients []*identity.Identity
}

func newFixture(t testing.TB, nServers, nClients int) *fixture {
	t.Helper()
	f := &fixture{reg: identity.NewRegistry()}
	for i := 0; i < nServers; i++ {
		ident, err := identity.New(identity.NodeID(string(rune('a'+i))+"srv"), identity.RoleServer, nil)
		if err != nil {
			t.Fatal(err)
		}
		f.reg.Register(ident.Public())
		f.servers = append(f.servers, ident)
	}
	for i := 0; i < nClients; i++ {
		ident, err := identity.New(identity.NodeID(string(rune('a'+i))+"cli"), identity.RoleClient, nil)
		if err != nil {
			t.Fatal(err)
		}
		f.reg.Register(ident.Public())
		f.clients = append(f.clients, ident)
	}
	return f
}

func (f *fixture) serverIDs() []identity.NodeID {
	ids := make([]identity.NodeID, len(f.servers))
	for i, s := range f.servers {
		ids[i] = s.ID
	}
	return ids
}

// envelopes returns n sealed envelopes round-robining over the clients,
// with the indices in bad carrying corrupted signatures.
func (f *fixture) envelopes(t testing.TB, n int, bad ...int) []identity.Envelope {
	t.Helper()
	badSet := make(map[int]bool, len(bad))
	for _, i := range bad {
		badSet[i] = true
	}
	envs := make([]identity.Envelope, n)
	for i := range envs {
		ident := f.clients[i%len(f.clients)]
		envs[i] = identity.Seal(ident, []byte{byte(i), byte(i >> 8), 'p'})
		if badSet[i] {
			envs[i].Sig = append([]byte(nil), envs[i].Sig...)
			envs[i].Sig[0] ^= 0x40
		}
	}
	return envs
}

// cosign produces a full collective signature over record, optionally
// corrupting the partial responses at the given indices. It returns
// everything the coordinator holds at the response phase.
func (f *fixture) cosign(t testing.TB, record []byte, badShares ...int) (pubs []schnorr.PublicKey, commitments []cosi.Commitment, challenge *big.Int, responses []*big.Int, sig cosi.Signature) {
	t.Helper()
	n := len(f.servers)
	pubs = make([]schnorr.PublicKey, n)
	commitments = make([]cosi.Commitment, n)
	secrets := make([]cosi.Secret, n)
	for i, s := range f.servers {
		pubs[i] = s.Schnorr.Public
		c, sec, err := cosi.Commit(nil)
		if err != nil {
			t.Fatal(err)
		}
		commitments[i], secrets[i] = c, sec
	}
	aggV, err := cosi.AggregateCommitments(commitments)
	if err != nil {
		t.Fatal(err)
	}
	aggPub, err := cosi.AggregatePublicKeys(pubs)
	if err != nil {
		t.Fatal(err)
	}
	challenge = cosi.Challenge(aggV, aggPub, record)
	responses = make([]*big.Int, n)
	for i, s := range f.servers {
		r, err := cosi.Respond(s.Schnorr, &secrets[i], challenge)
		if err != nil {
			t.Fatal(err)
		}
		responses[i] = r
	}
	for _, i := range badShares {
		responses[i] = new(big.Int).Add(responses[i], big.NewInt(7))
	}
	aggR, err := cosi.AggregateResponses(responses)
	if err != nil {
		t.Fatal(err)
	}
	sig = cosi.Finalize(challenge, aggR)
	return
}

func backends(t testing.TB, reg *identity.Registry) map[string]Verifier {
	t.Helper()
	b := NewBatched(Options{Registry: reg, Workers: 4})
	t.Cleanup(b.Close)
	return map[string]Verifier{"serial": NewSerial(reg), "batched": b}
}

// TestVerifyBatchMatchesSerial: the batched backend accepts exactly the
// elements serial verification accepts, with per-element attribution.
func TestVerifyBatchMatchesSerial(t *testing.T) {
	f := newFixture(t, 3, 4)
	serial := NewSerial(f.reg)
	for name, v := range backends(t, f.reg) {
		t.Run(name, func(t *testing.T) {
			envs := f.envelopes(t, 50, 3, 17, 49)
			errs := v.VerifyBatch(envs)
			if len(errs) != len(envs) {
				t.Fatalf("got %d verdicts for %d envelopes", len(errs), len(envs))
			}
			for i := range envs {
				_, want := serial.VerifyEnvelope(envs[i])
				if (errs[i] == nil) != (want == nil) {
					t.Errorf("element %d: batched verdict %v, serial %v", i, errs[i], want)
				}
			}
			for _, i := range []int{3, 17, 49} {
				if !errors.Is(errs[i], identity.ErrBadSignature) {
					t.Errorf("element %d: want ErrBadSignature, got %v", i, errs[i])
				}
			}
			if i, _ := FirstError(errs); i != 3 {
				t.Errorf("FirstError = %d, want 3", i)
			}
		})
	}
}

// TestVerifyEnvelopeUnknownSender: both backends refuse an unregistered
// sender identically.
func TestVerifyEnvelopeUnknownSender(t *testing.T) {
	f := newFixture(t, 1, 1)
	stranger, err := identity.New("stranger", identity.RoleClient, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := identity.Seal(stranger, []byte("hi"))
	for name, v := range backends(t, f.reg) {
		if _, err := v.VerifyEnvelope(env); !errors.Is(err, identity.ErrUnknownSender) {
			t.Errorf("%s: want ErrUnknownSender, got %v", name, err)
		}
	}
}

// TestSubmitWait: async submissions resolve to the same verdicts as the
// serial check, regardless of submission order.
func TestSubmitWait(t *testing.T) {
	f := newFixture(t, 1, 4)
	envs := f.envelopes(t, 200, 11, 99, 100)
	for name, v := range backends(t, f.reg) {
		t.Run(name, func(t *testing.T) {
			tickets := make([]*Ticket, len(envs))
			for i := range envs {
				tickets[i] = v.Submit(envs[i])
			}
			ctx := context.Background()
			for i, tk := range tickets {
				_, err := tk.Wait(ctx)
				if bad := i == 11 || i == 99 || i == 100; (err != nil) != bad {
					t.Errorf("submit %d: err=%v, want bad=%v", i, err, bad)
				}
			}
		})
	}
}

// TestVerifyCoSig: both backends accept a valid collective signature and
// refuse a tampered record, a zero signature and an unknown signer.
func TestVerifyCoSig(t *testing.T) {
	f := newFixture(t, 4, 1)
	record := []byte("block 7 signing bytes")
	_, _, _, _, sig := f.cosign(t, record)
	ids := f.serverIDs()
	for name, v := range backends(t, f.reg) {
		t.Run(name, func(t *testing.T) {
			if err := v.VerifyCoSig(ids, record, sig); err != nil {
				t.Fatalf("valid co-sign refused: %v", err)
			}
			// Second call exercises the batched backend's cache; the
			// verdict must not change.
			if err := v.VerifyCoSig(ids, record, sig); err != nil {
				t.Fatalf("valid co-sign refused on re-check: %v", err)
			}
			if err := v.VerifyCoSig(ids, []byte("tampered"), sig); !errors.Is(err, ErrBadCoSig) {
				t.Errorf("tampered record: want ErrBadCoSig, got %v", err)
			}
			if err := v.VerifyCoSig(ids, record, cosi.Signature{}); !errors.Is(err, ErrBadCoSig) {
				t.Errorf("zero sig: want ErrBadCoSig, got %v", err)
			}
			if err := v.VerifyCoSig(append(ids, "ghost"), record, sig); !errors.Is(err, ErrUnknownSigner) {
				t.Errorf("unknown signer: want ErrUnknownSigner, got %v", err)
			}
		})
	}
}

// TestVerifyPartialsAttribution: with corrupted shares, both backends
// attribute exactly the corrupted indices (Lemma 4).
func TestVerifyPartialsAttribution(t *testing.T) {
	f := newFixture(t, 5, 1)
	for name, v := range backends(t, f.reg) {
		t.Run(name, func(t *testing.T) {
			pubs, commitments, challenge, responses, _ := f.cosign(t, []byte("r"), 1, 3)
			faulty, err := v.VerifyPartials(pubs, commitments, challenge, responses)
			if err != nil {
				t.Fatal(err)
			}
			if len(faulty) != 2 || faulty[0] != 1 || faulty[1] != 3 {
				t.Fatalf("faulty = %v, want [1 3]", faulty)
			}
			// And a clean set attributes nobody.
			pubs, commitments, challenge, responses, _ = f.cosign(t, []byte("r2"))
			faulty, err = v.VerifyPartials(pubs, commitments, challenge, responses)
			if err != nil || len(faulty) != 0 {
				t.Fatalf("clean set: faulty=%v err=%v", faulty, err)
			}
		})
	}
}

// TestVerifyPartialsCancellation is the falsifiability hole the batch
// equation must not have: two share errors crafted to cancel in a plain
// (unweighted) sum. A naive batch check Σr_i·G == ΣV_i + c·ΣX_i accepts
// this set even though two members fail individually; the random linear
// combination must reject it and the fail-closed re-check must attribute
// both corrupted indices.
func TestVerifyPartialsCancellation(t *testing.T) {
	f := newFixture(t, 4, 1)
	pubs, commitments, challenge, responses, _ := f.cosign(t, []byte("cancel"))
	// Perturb shares 0 and 2 by +d and −d: the plain sum is unchanged.
	d := big.NewInt(424242)
	order := schnorr.N()
	responses[0] = new(big.Int).Mod(new(big.Int).Add(responses[0], d), order)
	responses[2] = new(big.Int).Mod(new(big.Int).Sub(responses[2], d), order)

	// Sanity: the unweighted batch equation really is blind to this.
	sum := new(big.Int)
	for _, r := range responses {
		sum.Add(sum, r)
	}
	lhs := schnorr.BaseMult(sum)
	rhs := schnorr.Infinity()
	for i := range pubs {
		rhs = rhs.Add(commitments[i].V).Add(pubs[i].Point.ScalarMult(challenge))
	}
	if !lhs.Equal(rhs) {
		t.Fatal("test construction broken: cancellation should fool the unweighted sum")
	}

	for name, v := range backends(t, f.reg) {
		t.Run(name, func(t *testing.T) {
			faulty, err := v.VerifyPartials(pubs, commitments, challenge, responses)
			if err != nil {
				t.Fatal(err)
			}
			if len(faulty) != 2 || faulty[0] != 0 || faulty[1] != 2 {
				t.Fatalf("faulty = %v, want [0 2]", faulty)
			}
		})
	}
}

// TestVerifyPartialsProperty cross-checks the batched verdict against the
// serial one over randomized corruption patterns: batch accepts iff
// serial accepts every element, and on rejection the attributions match
// exactly.
func TestVerifyPartialsProperty(t *testing.T) {
	f := newFixture(t, 4, 1)
	serial := NewSerial(f.reg)
	batched := NewBatched(Options{Registry: f.reg, Workers: 2})
	defer batched.Close()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		var bad []int
		for i := 0; i < 4; i++ {
			if rng.Intn(3) == 0 {
				bad = append(bad, i)
			}
		}
		pubs, commitments, challenge, responses, _ := f.cosign(t, []byte{byte(trial)}, bad...)
		want, err := serial.VerifyPartials(pubs, commitments, challenge, responses)
		if err != nil {
			t.Fatal(err)
		}
		got, err := batched.VerifyPartials(pubs, commitments, challenge, responses)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (bad=%v): batched=%v serial=%v", trial, bad, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (bad=%v): batched=%v serial=%v", trial, bad, got, want)
			}
		}
	}
}

// TestCacheNeverCachesFailure: a bad envelope is re-verified (and
// re-refused) every time; a later valid envelope with the same payload
// is unaffected.
func TestCacheNeverCachesFailure(t *testing.T) {
	f := newFixture(t, 1, 1)
	b := NewBatched(Options{Registry: f.reg, Workers: 2})
	defer b.Close()
	env := identity.Seal(f.clients[0], []byte("payload"))
	badEnv := env
	badEnv.Sig = append([]byte(nil), env.Sig...)
	badEnv.Sig[0] ^= 1
	for i := 0; i < 3; i++ {
		if _, err := b.VerifyEnvelope(badEnv); !errors.Is(err, identity.ErrBadSignature) {
			t.Fatalf("round %d: corrupted envelope accepted (err=%v)", i, err)
		}
	}
	if _, err := b.VerifyEnvelope(env); err != nil {
		t.Fatalf("valid envelope refused: %v", err)
	}
}

// TestSubmitAfterClose: Submit on a closed backend resolves immediately
// with ErrVerifierClosed, and Close is idempotent.
func TestSubmitAfterClose(t *testing.T) {
	f := newFixture(t, 1, 1)
	b := NewBatched(Options{Registry: f.reg})
	env := identity.Seal(f.clients[0], []byte("x"))
	b.Close()
	b.Close()
	if _, err := b.Submit(env).Wait(context.Background()); !errors.Is(err, ErrVerifierClosed) {
		t.Fatalf("want ErrVerifierClosed, got %v", err)
	}
}
