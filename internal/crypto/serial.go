package crypto

import (
	"math/big"

	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/schnorr"
)

// Serial is the reference backend: every check is the unbatched,
// uncached, inline primitive the call sites hand-rolled before the
// verification plane existed — byte-for-byte today's behavior. It is the
// default, the fallback the batched backend fails closed to, and the
// acceptance oracle the falsifiability tests compare against.
type Serial struct {
	reg *identity.Registry
}

// NewSerial creates a serial backend over the registry.
func NewSerial(reg *identity.Registry) *Serial {
	return &Serial{reg: reg}
}

var _ Verifier = (*Serial)(nil)

// VerifyEnvelope checks one envelope via identity.Registry.Open.
func (s *Serial) VerifyEnvelope(env identity.Envelope) ([]byte, error) {
	return s.reg.Open(env)
}

// VerifyBatch checks each envelope in order on the calling goroutine.
func (s *Serial) VerifyBatch(envs []identity.Envelope) []error {
	errs := make([]error, len(envs))
	for i, env := range envs {
		_, errs[i] = s.reg.Open(env)
	}
	return errs
}

// Submit verifies inline and returns an already-resolved ticket.
func (s *Serial) Submit(env identity.Envelope) *Ticket {
	return doneTicket(s.reg.Open(env))
}

// VerifyCoSig resolves the signer set and verifies the aggregate.
func (s *Serial) VerifyCoSig(signers []identity.NodeID, record []byte, sig cosi.Signature) error {
	return verifyCoSig(s.reg, signers, record, sig)
}

// VerifyPartials is cosi.IdentifyFaulty: the per-element Lemma 4 check.
func (s *Serial) VerifyPartials(pubs []schnorr.PublicKey, commitments []cosi.Commitment, challenge *big.Int, responses []*big.Int) ([]int, error) {
	return cosi.IdentifyFaulty(pubs, commitments, challenge, responses)
}

// Pool returns nil: serial callers run data-parallel stages inline.
func (s *Serial) Pool() *Pool { return nil }

// Close is a no-op; the serial backend holds no resources.
func (s *Serial) Close() {}
