package watch_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/server"
	"repro/internal/watch"
	"repro/internal/wire"
)

// newCluster builds a small in-process cluster for watchtower tests.
func newCluster(t *testing.T, faults map[int]server.Faults) *core.Cluster {
	t.Helper()
	cluster, err := core.NewCluster(core.Config{
		NumServers:     3,
		ItemsPerShard:  8,
		BatchSize:      1,
		NetworkLatency: 50 * time.Microsecond,
		ServerFaults:   faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster
}

// rmw commits one read-modify-write transaction over the given items.
func rmw(t *testing.T, ctx context.Context, cl *client.Client, val string, items ...int) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		s := cl.Begin()
		ok := true
		for _, i := range items {
			id := core.ItemName(i%3, i/3)
			if _, err := s.Read(ctx, id); err != nil {
				t.Fatalf("read %s: %v", id, err)
			}
			if err := s.Write(ctx, id, []byte(val)); err != nil {
				t.Fatalf("write %s: %v", id, err)
			}
		}
		res, err := s.Commit(ctx)
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		if ok && res.Committed {
			return
		}
		if attempt > 10 {
			t.Fatal("could not commit after retries")
		}
	}
}

// verifyBundle runs the offline re-verification a third party would.
func verifyBundle(cluster *core.Cluster, b *wire.EvidenceBundle) error {
	return watch.VerifyBundle(b, cluster.Registry(), cluster.Servers(), cluster.Directory(), cluster.Coordinator())
}

// roundTripBundle ships a bundle through its portable wire encoding.
func roundTripBundle(t *testing.T, b *wire.EvidenceBundle) *wire.EvidenceBundle {
	t.Helper()
	msg, err := wire.Decode(b.AppendBinary(nil))
	if err != nil {
		t.Fatalf("decode shipped bundle: %v", err)
	}
	out, ok := msg.(*wire.EvidenceBundle)
	if !ok {
		t.Fatalf("shipped bundle decodes to %T", msg)
	}
	return out
}

// TestWatchCleanRun: on an honest cluster the watchtower converges to the
// tip, reports no findings, stays healthy — and its checkpoint lets a full
// offline audit resume without replaying from genesis.
func TestWatchCleanRun(t *testing.T) {
	cluster := newCluster(t, nil)
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	wt, err := cluster.NewWatchtower()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for i := 0; i < 6; i++ {
		rmw(t, ctx, cl, fmt.Sprintf("v%d", i), 0, 1, 2)
		if err := wt.Poll(ctx); err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
	}

	st := wt.Status()
	if st.Lag != 0 || st.Verified == 0 || st.Verified != st.Tip {
		t.Fatalf("did not converge: %+v", st)
	}
	if !st.Healthy || st.Findings != 0 {
		t.Fatalf("honest cluster unhealthy: %+v, findings %v", st, wt.Findings())
	}
	if st.SampledReads == 0 {
		t.Fatal("sampling never ran")
	}

	// Checkpoint reuse: a full audit resumed from the watchtower's verified
	// checkpoint must agree with a from-genesis audit.
	cp := wt.Checkpoint()
	if cp.Height != st.Verified {
		t.Fatalf("checkpoint height %d, verified %d", cp.Height, st.Verified)
	}
	resumed, err := cluster.Audit(ctx, audit.Options{Resume: cp})
	if err != nil {
		t.Fatalf("resumed audit: %v", err)
	}
	full, err := cluster.Audit(ctx, audit.Options{})
	if err != nil {
		t.Fatalf("full audit: %v", err)
	}
	if !resumed.Clean() || !full.Clean() {
		t.Fatalf("audits disagree: resumed %v, full %v", resumed.Findings, full.Findings)
	}
}

// findFirst returns the first finding of the given type.
func findFirst(fs []watch.Finding, ft watch.FindingType) (watch.Finding, bool) {
	for _, f := range fs {
		if f.Type == ft {
			return f, true
		}
	}
	return watch.Finding{}, false
}

// accuses reports whether the finding implicates the given server index.
func accuses(f watch.Finding, idx int) bool {
	for _, s := range f.Servers {
		if s == core.ServerName(idx) {
			return true
		}
	}
	return false
}

// TestWatchDetectsStaleReads: scenario 1 of paper §5 — a server serving
// previous values — is caught online by the streaming replay, and the
// evidence bundle survives shipping and re-verifies offline; a tampered
// bundle is rejected.
func TestWatchDetectsStaleReads(t *testing.T) {
	cluster := newCluster(t, map[int]server.Faults{1: {StaleReads: true}})
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	wt, err := cluster.NewWatchtower()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// The fault surfaces through two independent paths: the sampled
	// verified read (bundle anchored on a header + failing proof) and the
	// streaming replay of the committed block that recorded the stale read
	// (bundle carrying the co-signed block range). Drive until both exist.
	var hit, replayHit watch.Finding
	found, replayFound := false, false
	for i := 0; i < 12 && !(found && replayFound); i++ {
		// Repeated read-modify-writes of shard 1's items: once an item has
		// been overwritten, the faulty server serves its previous value.
		rmw(t, ctx, cl, fmt.Sprintf("v%d", i), 1, 4)
		if err := wt.Poll(ctx); err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
		for _, f := range wt.Findings() {
			if f.Type != watch.FindingIncorrectRead || f.Bundle == nil {
				continue
			}
			if !found {
				hit, found = f, true
			}
			if len(f.Bundle.Blocks) > 0 && !replayFound {
				replayHit, replayFound = f, true
			}
		}
	}
	if !found {
		t.Fatalf("stale reads never detected; findings: %v", wt.Findings())
	}
	if !replayFound {
		t.Fatalf("streaming replay never flagged the stale read; findings: %v", wt.Findings())
	}
	if !accuses(hit, 1) {
		t.Fatalf("incorrect-read accuses %v, want s01", hit.Servers)
	}
	if hit.DetectPolls != 0 {
		t.Fatalf("detection lagged %d polls behind the evidence", hit.DetectPolls)
	}

	// Both bundles survive shipping and re-verify offline.
	for _, b := range []*wire.EvidenceBundle{hit.Bundle, replayHit.Bundle} {
		shipped := roundTripBundle(t, b)
		if err := verifyBundle(cluster, shipped); err != nil {
			t.Fatalf("offline re-verification failed: %v", err)
		}
	}

	// Tampering with the bundle must break it: naming an item the evidence
	// does not cover...
	tampered := roundTripBundle(t, hit.Bundle)
	tampered.Item = core.ItemName(0, 0)
	if err := verifyBundle(cluster, tampered); err == nil {
		t.Fatal("bundle with swapped item accepted")
	}
	tampered = roundTripBundle(t, replayHit.Bundle)
	tampered.Item = core.ItemName(0, 0)
	if err := verifyBundle(cluster, tampered); err == nil {
		t.Fatal("replay bundle with swapped item accepted")
	}
	// ...and a mutated co-signed block both fail.
	tampered = roundTripBundle(t, replayHit.Bundle)
	last := tampered.Blocks[len(tampered.Blocks)-1]
	if len(last.Txns) > 0 && len(last.Txns[0].Writes) > 0 {
		last.Txns[0].Writes[0].NewVal = []byte("forged")
	} else {
		last.PrevHash = append([]byte(nil), bytes.Repeat([]byte{0xff}, len(last.PrevHash))...)
	}
	if err := verifyBundle(cluster, tampered); err == nil {
		t.Fatal("bundle with mutated co-signed block accepted")
	}

	status := wt.Status()
	if status.Healthy {
		t.Fatal("status healthy despite findings")
	}
}

// TestWatchDetectsTamperedHeader: a server forging header pages for light
// clients is caught by the per-poll header probe even though its block
// stream is honest.
func TestWatchDetectsTamperedHeader(t *testing.T) {
	cluster := newCluster(t, map[int]server.Faults{0: {TamperHeaders: true}})
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	wt, err := cluster.NewWatchtower()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rmw(t, ctx, cl, "v0", 0, 1, 2)
	rmw(t, ctx, cl, "v1", 0, 1, 2)
	if err := wt.Poll(ctx); err != nil {
		t.Fatalf("poll: %v", err)
	}

	hit, found := findFirst(wt.Findings(), watch.FindingTamperedHeader)
	if !found {
		t.Fatalf("forged headers never detected; findings: %v", wt.Findings())
	}
	if !accuses(hit, 0) {
		t.Fatalf("tampered-header accuses %v, want s00", hit.Servers)
	}
	shipped := roundTripBundle(t, hit.Bundle)
	if err := verifyBundle(cluster, shipped); err != nil {
		t.Fatalf("offline re-verification failed: %v", err)
	}
	// A bundle whose served header equals the anchor accuses nobody.
	tampered := roundTripBundle(t, hit.Bundle)
	tampered.BadHeader = tampered.Anchor
	if err := verifyBundle(cluster, tampered); err == nil {
		t.Fatal("bundle with honest header accepted")
	}
}

// TestWatchDetectsTamperedProof: a forged verified-read proof is caught by
// the sampled read and classified as bad-proof.
func TestWatchDetectsTamperedProof(t *testing.T) {
	cluster := newCluster(t, map[int]server.Faults{1: {TamperVerifiedProof: true}})
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	wt, err := cluster.NewWatchtower()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rmw(t, ctx, cl, "v0", 1)
	if err := wt.Poll(ctx); err != nil {
		t.Fatalf("poll: %v", err)
	}

	hit, found := findFirst(wt.Findings(), watch.FindingBadProof)
	if !found {
		t.Fatalf("forged proof never detected; findings: %v", wt.Findings())
	}
	if !accuses(hit, 1) {
		t.Fatalf("bad-proof accuses %v, want s01", hit.Servers)
	}
	shipped := roundTripBundle(t, hit.Bundle)
	if err := verifyBundle(cluster, shipped); err != nil {
		t.Fatalf("offline re-verification failed: %v", err)
	}
}

// TestWatchDetectsDatastoreCorruption: a corrupted apply is caught by the
// sampled read and classified as datastore corruption via the follow-up
// VO, which demonstrably fails to fold to the co-signed root.
func TestWatchDetectsDatastoreCorruption(t *testing.T) {
	cluster := newCluster(t, map[int]server.Faults{2: {CorruptApplyValue: []byte("evil")}})
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	wt, err := cluster.NewWatchtower()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var hit watch.Finding
	found := false
	for i := 0; i < 4 && !found; i++ {
		rmw(t, ctx, cl, fmt.Sprintf("v%d", i), 2)
		if err := wt.Poll(ctx); err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
		hit, found = findFirst(wt.Findings(), watch.FindingDatastoreCorruption)
	}
	if !found {
		t.Fatalf("datastore corruption never detected; findings: %v", wt.Findings())
	}
	if !accuses(hit, 2) {
		t.Fatalf("datastore-corruption accuses %v, want s02", hit.Servers)
	}
	shipped := roundTripBundle(t, hit.Bundle)
	if err := verifyBundle(cluster, shipped); err != nil {
		t.Fatalf("offline re-verification failed: %v", err)
	}
	// The corruption VO is the damning piece: without it the bundle cannot
	// substantiate the accusation.
	tampered := roundTripBundle(t, hit.Bundle)
	tampered.Proof = nil
	if err := verifyBundle(cluster, tampered); err == nil {
		t.Fatal("datastore-corruption bundle without VO accepted")
	}
}

// TestWatchResumeFromCheckpoint: a watchtower restarted from a persisted
// checkpoint continues where the first left off instead of re-verifying
// from genesis.
func TestWatchResumeFromCheckpoint(t *testing.T) {
	cluster := newCluster(t, nil)
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	wt, err := cluster.NewWatchtower()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rmw(t, ctx, cl, "v0", 0, 1, 2)
	rmw(t, ctx, cl, "v1", 0, 1, 2)
	if err := wt.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	cp := wt.Checkpoint()
	if cp.Height == 0 {
		t.Fatal("empty checkpoint")
	}

	ident, err := cluster.NewClientIdentity()
	if err != nil {
		t.Fatal(err)
	}
	ep, err := cluster.Endpoint(ident)
	if err != nil {
		t.Fatal(err)
	}
	wt2, err := watch.New(watch.Config{
		PeerConfig: peer.PeerConfig{
			Registry:    cluster.Registry(),
			Transport:   ep,
			Servers:     cluster.Servers(),
			Coordinator: cluster.Coordinator(),
			Obs:         cluster.Obs(),
		},
		Layout:     cluster.Directory(),
		SampleRate: 1,
		Resume:     cp,
	})
	if err != nil {
		t.Fatal(err)
	}

	rmw(t, ctx, cl, "v2", 0, 1, 2)
	if err := wt2.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	st := wt2.Status()
	if st.Lag != 0 || !st.Healthy {
		t.Fatalf("resumed watchtower did not converge cleanly: %+v, findings %v", st, wt2.Findings())
	}
	// It verified only the suffix above the checkpoint.
	if st.BlocksVerified >= st.Verified {
		t.Fatalf("resumed watchtower re-verified from genesis: %d blocks for height %d", st.BlocksVerified, st.Verified)
	}
}
