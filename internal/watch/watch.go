// Package watch implements the continuous integrity watchtower: a daemon
// that turns the paper's *offline* audit (§4.2.2) into a streaming,
// always-on property.
//
// The offline auditor (internal/audit) fetches every server's full log,
// replays it from genesis and interrogates datastores after the fact; its
// findings arrive whenever someone bothers to run it. The watchtower
// closes the window between fault and detection:
//
//   - Tail + re-verify. It pages full committed blocks from a server
//     (wire.FetchBlocksReq — blocks are self-authenticating, so the source
//     needs no trust), re-verifies each block's chain position, collective
//     signature of the full server set, and txns-hash, and feeds it to a
//     streaming audit.Replayer: the incremental analogue of the
//     from-genesis replay, maintaining a verified shadow state and
//     emitting Lemma 1/3 findings the moment the offending block is
//     tailed. The replayer's checkpoint is exposed (Checkpoint) so a full
//     offline audit can resume from it instead of genesis.
//
//   - Probe headers. Each poll it re-fetches the newest header from every
//     server and compares it against the hash of the block it already
//     verified — a server serving forged headers to light clients
//     (TamperHeaders) is caught even though its block stream is honest.
//
//   - Sample reads. With probability SampleRate per server per poll it
//     issues a proof-carrying verified read for a random item of the
//     server's shard (preferring items whose authoritative value the
//     shadow state knows) and verifies the response against its own
//     verified chain. A failed fold is classified with a follow-up
//     Verification Object fetch: a VO that no longer folds to the
//     co-signed root is datastore corruption (Lemma 2); a VO that still
//     folds means the read itself lied (Lemma 1).
//
// Every finding carries a portable wire.EvidenceBundle that a third party
// re-verifies offline with zero trust in the watchtower (VerifyBundle,
// surfaced as `fides-client -verify-bundle`). Progress and findings are
// reported as fides_watch_* metric families through internal/obs, with
// threshold alert rules evaluated in-process and served as an integrity
// SLO document on /integrity (Handler).
package watch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/lightclient"
	"repro/internal/merkle"
	"repro/internal/obs"
	"repro/internal/peer"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// FindingType classifies watchtower findings. Replay-derived findings pass
// through the audit package's type strings unchanged (incorrect-read,
// stale-timestamp, serializability-violation, tampered-log, ...); the
// serving-path types below are the watchtower's own.
type FindingType string

const (
	// FindingTamperedChain: a block served on the tail stream failed
	// re-verification (chain position, signer set, or collective
	// signature) — the tail source is lying or corrupted.
	FindingTamperedChain FindingType = "tampered-chain"
	// FindingTamperedHeader: a server served a header that differs from
	// the co-signed block the watchtower already verified at that height.
	FindingTamperedHeader FindingType = "tampered-header"
	// FindingBadProof: a sampled verified read carried a proof that does
	// not fit the shard layout (forged indices, wrong depth, wrong items).
	FindingBadProof FindingType = "bad-proof"
	// FindingIncorrectRead: a sampled verified read returned values that
	// fail to reproduce the committed shard root, while the server's own
	// VO still folds — the serving path lied about the value (Lemma 1,
	// online). The same string also arrives via log replay.
	FindingIncorrectRead FindingType = "incorrect-read"
	// FindingDatastoreCorruption: the follow-up VO no longer folds to the
	// co-signed root — the server's datastore diverged from the committed
	// state (Lemma 2, online).
	FindingDatastoreCorruption FindingType = "datastore-corruption"
)

// Finding is one detected integrity violation, with the evidence bundle
// that lets anyone re-verify it offline.
type Finding struct {
	Type FindingType
	// Servers are the accused server(s).
	Servers []identity.NodeID
	// Height anchors the finding in the chain.
	Height uint64
	// TxnID and Item locate the finding, when applicable.
	TxnID string
	Item  txn.ItemID
	// Detail is a human-readable explanation.
	Detail string
	// Poll is the poll index (from 0) at which the finding fired;
	// DetectPolls is the number of polls between the evidence becoming
	// observable to the watchtower and the finding firing (the
	// time-to-detection bound the sim asserts).
	Poll        uint64
	DetectPolls uint64
	// Bundle is the portable evidence (nil only if bundling failed).
	Bundle *wire.EvidenceBundle
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("%s at height %d accusing %v: %s", f.Type, f.Height, f.Servers, f.Detail)
}

// Config assembles a watchtower.
type Config struct {
	// PeerConfig is the shared peer wiring: registry, transport, server
	// set, tail source (rotates automatically when it serves a bad
	// block), coordinator (implicated alongside owners in replay
	// findings), tail page size (default 256) and the verification plane.
	peer.PeerConfig

	// Layout is the item→server directory and shard layout (also the
	// audit directory for the streaming replay).
	Layout lightclient.Layout
	// SampleRate is the per-server, per-poll probability of a sampled
	// verified read (0 disables sampling; 1 samples every server every
	// poll).
	SampleRate float64
	// SampleSeed seeds the sampling RNG (deterministic sims pin it).
	SampleSeed int64
	// MaxLag is the verified-height lag (tip − verified) above which the
	// verified_lag alert fires (default 16).
	MaxLag uint64
	// Resume restarts the streaming replay from a previously persisted
	// checkpoint instead of genesis.
	Resume *audit.Checkpoint
	// Now supplies the clock (default time.Now).
	Now func() time.Time
}

// Watchtower is the continuous auditor. All methods are safe for
// concurrent use; Poll cycles are serialized.
type Watchtower struct {
	reg        *identity.Registry
	tr         transport.Transport
	layout     lightclient.Layout
	servers    []identity.NodeID
	signerSet  map[identity.NodeID]struct{}
	coord      identity.NodeID
	pageSize   uint32
	verifier   ledger.CoSigVerifier
	sampleRate float64
	maxLag     uint64
	now        func() time.Time
	o          *obs.Obs

	mu       sync.Mutex
	rng      *rand.Rand
	source   int // index into servers of the current tail source
	rp       *audit.Replayer
	base     uint64          // height of blocks[0]
	blocks   []*ledger.Block // verified blocks since start (replay evidence)
	poll     []uint64        // poll index at which blocks[i] was verified
	prevHash []byte
	tip      uint64 // highest tip any server reported
	// rootHeights holds the ascending heights carrying a root, per server,
	// over the verified chain (the sampled-read freshness reference).
	rootHeights map[identity.NodeID][]uint64
	pollStarts  []time.Time
	findings    []Finding
	seen        map[string]struct{} // serving-path finding dedup
	sampled     uint64

	verifiedHeightG *obs.Gauge
	tipHeightG      *obs.Gauge
	lagG            *obs.Gauge
	alertsFiringG   *obs.Gauge
	blocksVerifiedC *obs.Counter
	pollsC          *obs.Counter
	pollSecondsH    *obs.Histogram
	detectionH      *obs.Histogram
	sampleOutcomes  map[string]*obs.Counter
}

// New creates a watchtower. It performs no I/O; the first Poll does.
func New(cfg Config) (*Watchtower, error) {
	if cfg.Layout == nil {
		return nil, errors.New("watch: config requires registry, transport and layout")
	}
	if err := cfg.Validate("watch"); err != nil {
		return nil, err
	}
	cfg.ApplyDefaults(256)
	maxLag := cfg.MaxLag
	if maxLag == 0 {
		maxLag = 16
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	o := cfg.Obs
	w := &Watchtower{
		reg:         cfg.Registry,
		tr:          cfg.Transport,
		layout:      cfg.Layout,
		servers:     append([]identity.NodeID(nil), cfg.Servers...),
		signerSet:   make(map[identity.NodeID]struct{}, len(cfg.Servers)),
		coord:       cfg.Coordinator,
		pageSize:    cfg.PageSize,
		verifier:    cfg.Verifier,
		sampleRate:  cfg.SampleRate,
		maxLag:      maxLag,
		now:         now,
		o:           o,
		rng:         rand.New(rand.NewSource(cfg.SampleSeed)),
		rootHeights: make(map[identity.NodeID][]uint64),
		seen:        make(map[string]struct{}),

		verifiedHeightG: o.Gauge("fides_watch_verified_height", "Height up to which the watchtower has re-verified and replayed the chain."),
		tipHeightG:      o.Gauge("fides_watch_tip_height", "Highest chain height any server reports."),
		lagG:            o.Gauge("fides_watch_lag_blocks", "Verified-height lag behind the reported tip (the freshness SLO)."),
		alertsFiringG:   o.Gauge("fides_watch_alerts_firing", "Alert rules currently firing."),
		blocksVerifiedC: o.Counter("fides_watch_blocks_verified_total", "Blocks re-verified (chain position, co-sign, txns-hash) and replayed."),
		pollsC:          o.Counter("fides_watch_polls_total", "Completed watchtower poll cycles."),
		pollSecondsH:    o.Histogram("fides_watch_poll_seconds", "Wall time of one poll cycle (tail, probes, samples, alerts).", nil),
		detectionH:      o.Histogram("fides_watch_detection_seconds", "Time from evidence first observable to finding fired.", nil),
		sampleOutcomes:  make(map[string]*obs.Counter, 4),
	}
	for _, outcome := range []string{"ok", "stale", "unverifiable", "finding", "error"} {
		w.sampleOutcomes[outcome] = o.Counter("fides_watch_sampled_reads_total", "Sampled proof-carrying verified reads by outcome.", obs.L("outcome", outcome))
	}
	for _, id := range cfg.Servers {
		w.signerSet[id] = struct{}{}
	}
	if src := cfg.Source; src != "" {
		for i, id := range w.servers {
			if id == src {
				w.source = i
			}
		}
	}
	if cp := cfg.Resume; cp != nil {
		w.rp = audit.ResumeReplayer(cfg.Layout, cfg.Coordinator, cp)
		w.base = cp.Height
		w.prevHash = append([]byte(nil), cp.Hash...)
	} else {
		w.rp = audit.NewReplayer(cfg.Layout, cfg.Coordinator)
	}
	return w, nil
}

// VerifiedHeight is the exclusive upper bound of the verified chain.
func (w *Watchtower) VerifiedHeight() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base + uint64(len(w.blocks))
}

// Tip is the highest chain height any server has reported.
func (w *Watchtower) Tip() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tip
}

// Findings returns a copy of all findings so far.
func (w *Watchtower) Findings() []Finding {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Finding(nil), w.findings...)
}

// Checkpoint returns the streaming replay's verified checkpoint: the resume
// point for both a restarted watchtower (Config.Resume) and a full offline
// audit (audit.Options.Resume).
func (w *Watchtower) Checkpoint() *audit.Checkpoint {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rp.Checkpoint()
}

// Run polls at the given interval until the context is done.
func (w *Watchtower) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if err := w.Poll(ctx); err != nil {
			w.o.Log().Warn("watch: poll failed", "err", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Poll runs one watch cycle: tail and re-verify new blocks through the
// streaming replay, probe every server's served headers against the
// verified chain, issue sampled verified reads, and re-evaluate alert
// rules. Findings are recorded (see Findings), not returned as errors; the
// returned error reports transport-level failures only.
func (w *Watchtower) Poll(ctx context.Context) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	start := w.now()
	w.pollStarts = append(w.pollStarts, start)

	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	keep(w.tailLocked(ctx))
	keep(w.probeHeadersLocked(ctx))
	keep(w.sampleReadsLocked(ctx))
	w.updateSLOLocked()
	w.pollsC.Inc()
	w.pollSecondsH.Observe(w.now().Sub(start).Seconds())
	return firstErr
}

// curPoll is the index of the poll in flight.
func (w *Watchtower) curPoll() uint64 { return uint64(len(w.pollStarts) - 1) }

// --- tail + streaming replay ---

// tailLocked pages new blocks from the current source up to its tip,
// re-verifying and replaying each.
func (w *Watchtower) tailLocked(ctx context.Context) error {
	for {
		src := w.servers[w.source]
		from := w.base + uint64(len(w.blocks))
		req := &wire.FetchBlocksReq{From: from, Max: w.pageSize}
		msg, err := transport.NewMessage(wire.MsgFetchBlocks, req)
		if err != nil {
			return err
		}
		resp, err := w.tr.Call(ctx, src, msg)
		if err != nil {
			// Rotate so a crashed source does not stall the tail forever.
			w.source = (w.source + 1) % len(w.servers)
			return fmt.Errorf("watch: fetch blocks from %s: %w", src, err)
		}
		var br wire.FetchBlocksResp
		if err := resp.Decode(&br); err != nil {
			return err
		}
		if br.Tip > w.tip {
			w.tip = br.Tip
		}
		if len(br.Blocks) == 0 {
			return nil
		}
		for i, b := range br.Blocks {
			want := from + uint64(i)
			if err := w.verifyBlockLocked(b, want); err != nil {
				w.emitChainFindingLocked(src, b, want, err)
				w.source = (w.source + 1) % len(w.servers)
				return nil
			}
			w.acceptBlockLocked(b)
		}
		if w.base+uint64(len(w.blocks)) >= br.Tip {
			return nil
		}
	}
}

// verifyBlockLocked re-runs the acceptance checks on one tailed block:
// chain position (height + prev-hash), signer-set completeness, and the
// collective signature (which covers the txns-hash, so a manipulated
// transaction list fails here too).
func (w *Watchtower) verifyBlockLocked(b *ledger.Block, want uint64) error {
	if b == nil {
		return fmt.Errorf("watch: nil block at height %d", want)
	}
	if b.Height != want {
		return fmt.Errorf("watch: block height %d, want %d", b.Height, want)
	}
	if w.prevHash == nil {
		if b.Height != 0 || len(b.PrevHash) != 0 {
			return fmt.Errorf("watch: genesis block %d has a prev-hash", b.Height)
		}
	} else if !bytes.Equal(b.PrevHash, w.prevHash) {
		return fmt.Errorf("watch: broken hash chain at height %d", b.Height)
	}
	if len(b.Signers) != len(w.signerSet) {
		return fmt.Errorf("watch: block %d signed by %d of %d servers", b.Height, len(b.Signers), len(w.signerSet))
	}
	seen := make(map[identity.NodeID]struct{}, len(b.Signers))
	for _, id := range b.Signers {
		if _, ok := w.signerSet[id]; !ok {
			return fmt.Errorf("watch: block %d signed by unknown server %s", b.Height, id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("watch: block %d lists signer %s twice", b.Height, id)
		}
		seen[id] = struct{}{}
	}
	return ledger.VerifyBlockSigWith(w.verifier, b)
}

// acceptBlockLocked appends a verified block and replays it, converting
// replay findings.
func (w *Watchtower) acceptBlockLocked(b *ledger.Block) {
	w.blocks = append(w.blocks, b)
	w.poll = append(w.poll, w.curPoll())
	w.prevHash = b.Hash()
	for srv := range b.Roots {
		w.rootHeights[srv] = append(w.rootHeights[srv], b.Height)
	}
	w.blocksVerifiedC.Inc()
	for _, af := range w.rp.Step(b) {
		h := uint64(0)
		if af.Height >= 0 {
			h = uint64(af.Height)
		}
		f := Finding{
			Type:    FindingType(af.Type),
			Servers: af.Servers,
			Height:  h,
			TxnID:   af.TxnID,
			Item:    af.Item,
			Detail:  af.Detail,
		}
		f.Bundle = w.replayBundleLocked(f)
		w.emitLocked(f, w.curPoll())
	}
}

// --- header probes ---

// probeHeadersLocked fetches the newest header from every server and
// cross-checks it against the block already verified at that height.
func (w *Watchtower) probeHeadersLocked(ctx context.Context) error {
	if len(w.blocks) == 0 {
		return nil
	}
	last := w.blocks[len(w.blocks)-1]
	var firstErr error
	for _, srv := range w.servers {
		req := &wire.FetchHeadersReq{From: last.Height, Max: 1}
		msg, err := transport.NewMessage(wire.MsgFetchHeaders, req)
		if err != nil {
			return err
		}
		resp, err := w.tr.Call(ctx, srv, msg)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("watch: probe headers at %s: %w", srv, err)
			}
			continue
		}
		var hr wire.FetchHeadersResp
		if err := resp.Decode(&hr); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if len(hr.Headers) == 0 || hr.Headers[0] == nil {
			continue // the server is simply behind; the lag SLO covers it
		}
		served := hr.Headers[0]
		anchor := last.Header()
		if served.Height == anchor.Height && bytes.Equal(served.Hash(), anchor.Hash()) {
			continue
		}
		w.emitLocked(Finding{
			Type:    FindingTamperedHeader,
			Servers: []identity.NodeID{srv},
			Height:  anchor.Height,
			Detail: fmt.Sprintf("header served by %s at height %d does not match the co-signed block the watchtower verified",
				srv, anchor.Height),
			Bundle: &wire.EvidenceBundle{
				Kind:      string(FindingTamperedHeader),
				Accused:   []identity.NodeID{srv},
				Height:    anchor.Height,
				Anchor:    anchor,
				BadHeader: served,
			},
		}, w.poll[len(w.poll)-1])
	}
	return firstErr
}

// --- sampled verified reads ---

// sampleReadsLocked issues a proof-carrying read against each server with
// probability sampleRate and verifies the response against the verified
// chain, classifying failures with a follow-up VO fetch.
func (w *Watchtower) sampleReadsLocked(ctx context.Context) error {
	if w.sampleRate <= 0 || len(w.blocks) == 0 {
		return nil
	}
	var firstErr error
	for _, srv := range w.servers {
		if w.rng.Float64() >= w.sampleRate {
			continue
		}
		if len(w.rootHeights[srv]) == 0 {
			continue // nothing committed for this shard yet
		}
		id, ok := w.sampleItemLocked(srv)
		if !ok {
			continue
		}
		if err := w.sampleOneLocked(ctx, srv, id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// sampleItemLocked picks a random item of srv's shard, preferring items
// whose authoritative value the replay shadow state knows (those are the
// ones a lying server has something to lie about).
func (w *Watchtower) sampleItemLocked(srv identity.NodeID) (txn.ItemID, bool) {
	var pool []txn.ItemID
	for _, id := range w.rp.KnownItems() {
		if owner, ok := w.layout.Owner(id); ok && owner == srv {
			pool = append(pool, id)
		}
	}
	if len(pool) == 0 {
		pool = w.layout.ShardItems(srv)
	}
	if len(pool) == 0 {
		return "", false
	}
	return pool[w.rng.Intn(len(pool))], true
}

func (w *Watchtower) sampleOneLocked(ctx context.Context, srv identity.NodeID, id txn.ItemID) error {
	w.sampled++
	ids := []txn.ItemID{id}
	req := &wire.VerifiedReadReq{IDs: ids}
	msg, err := transport.NewMessage(wire.MsgVerifiedRead, req)
	if err != nil {
		return err
	}
	resp, err := w.tr.Call(ctx, srv, msg)
	if err != nil {
		w.sampleOutcomes["error"].Inc()
		return fmt.Errorf("watch: sampled read at %s: %w", srv, err)
	}
	var vr wire.VerifiedReadResp
	if err := resp.Decode(&vr); err != nil {
		w.sampleOutcomes["error"].Inc()
		return err
	}

	// Freshness against the verified chain. A response above the verified
	// tip is re-tailed once (the server may legitimately be ahead by a
	// block it applied moments ago).
	if vr.Height >= w.base+uint64(len(w.blocks)) {
		if err := w.tailLocked(ctx); err != nil {
			w.sampleOutcomes["error"].Inc()
			return err
		}
	}
	hs := w.rootHeights[srv]
	if len(hs) == 0 {
		w.sampleOutcomes["unverifiable"].Inc()
		return nil
	}
	latest := hs[len(hs)-1]
	if vr.Height != latest {
		// Superseded root: benign under write load (the sample raced a
		// commit); a persistent liar is caught by the log replay instead.
		w.sampleOutcomes["stale"].Inc()
		return nil
	}
	anchor := w.blocks[latest-w.base].Header()
	root, ok := anchor.Roots[srv]
	if !ok {
		w.sampleOutcomes["unverifiable"].Inc()
		return nil
	}

	verr := lightclient.CheckReadProof(w.layout, srv, ids, &vr, root)
	if verr == nil {
		w.sampleOutcomes["ok"].Inc()
		return nil
	}
	w.sampleOutcomes["finding"].Inc()

	f := Finding{
		Servers: []identity.NodeID{srv},
		Height:  latest,
		Item:    id,
	}
	bundle := &wire.EvidenceBundle{
		Accused: []identity.NodeID{srv},
		Height:  latest,
		Item:    id,
		Anchor:  anchor,
		ReadIDs: ids,
		Read:    &vr,
	}
	if errors.Is(verr, lightclient.ErrBadProof) {
		f.Type = FindingBadProof
		f.Detail = fmt.Sprintf("sampled read of %s at %s: %v", id, srv, verr)
	} else {
		// The values do not reproduce the committed root. Classify with a
		// follow-up VO: a VO that no longer folds to the co-signed root
		// convicts the datastore (Lemma 2); a VO that still folds proves
		// correct state exists, so the read itself lied (Lemma 1).
		f.Type = FindingIncorrectRead
		f.Detail = fmt.Sprintf("sampled read of %s at %s: %v", id, srv, verr)
		if pr, perr := w.fetchProofLocked(ctx, srv, id); perr == nil {
			bundle.Proof = pr
			folded := merkle.RootFromProof(merkle.LeafHash(pr.LeafContent), pr.Proof)
			if !bytes.Equal(folded, root) {
				f.Type = FindingDatastoreCorruption
				f.Detail = fmt.Sprintf("VO for %s at %s folds to a root that is not the co-signed root at height %d",
					id, srv, latest)
			}
		}
	}
	bundle.Kind = string(f.Type)
	bundle.Detail = f.Detail
	f.Bundle = bundle
	w.emitLocked(f, w.poll[latest-w.base])
	return nil
}

func (w *Watchtower) fetchProofLocked(ctx context.Context, srv identity.NodeID, id txn.ItemID) (*wire.FetchProofResp, error) {
	msg, err := transport.NewMessage(wire.MsgFetchProof, &wire.FetchProofReq{ID: id})
	if err != nil {
		return nil, err
	}
	resp, err := w.tr.Call(ctx, srv, msg)
	if err != nil {
		return nil, err
	}
	pr := new(wire.FetchProofResp)
	if err := resp.Decode(pr); err != nil {
		return nil, err
	}
	return pr, nil
}

// --- findings, bundles, alerts ---

// replayBundleLocked builds the evidence bundle for a replay finding: the
// contiguous co-signed block range from the watchtower's start through the
// offending height. Replaying it reproduces the finding (the range
// baselines the item state before exhibiting the violation). A watchtower
// resumed from a checkpoint bundles only blocks since the checkpoint.
func (w *Watchtower) replayBundleLocked(f Finding) *wire.EvidenceBundle {
	if f.Height < w.base || f.Height >= w.base+uint64(len(w.blocks)) {
		return nil
	}
	return &wire.EvidenceBundle{
		Kind:    string(f.Type),
		Accused: f.Servers,
		Height:  f.Height,
		Item:    f.Item,
		TxnID:   f.TxnID,
		Detail:  f.Detail,
		Blocks:  append([]*ledger.Block(nil), w.blocks[:f.Height-w.base+1]...),
	}
}

// emitChainFindingLocked records a bad block on the tail stream.
func (w *Watchtower) emitChainFindingLocked(src identity.NodeID, b *ledger.Block, want uint64, verr error) {
	f := Finding{
		Type:    FindingTamperedChain,
		Servers: []identity.NodeID{src},
		Height:  want,
		Detail:  fmt.Sprintf("block served by %s failed re-verification: %v", src, verr),
	}
	bundle := &wire.EvidenceBundle{
		Kind:    string(FindingTamperedChain),
		Accused: []identity.NodeID{src},
		Height:  want,
		Detail:  f.Detail,
	}
	if b != nil {
		bundle.BadHeader = b.Header()
	}
	if len(w.blocks) > 0 {
		bundle.Anchor = w.blocks[len(w.blocks)-1].Header()
	}
	f.Bundle = bundle
	w.emitLocked(f, w.curPoll())
}

// emitLocked records a finding. Serving-path findings are deduplicated by
// (type, servers, item) — a server that keeps serving the same forgery is
// one ongoing violation, not one per poll. evPoll is the poll at which the
// evidence first became observable; the gap to the current poll is the
// detection latency.
func (w *Watchtower) emitLocked(f Finding, evPoll uint64) {
	switch f.Type {
	case FindingTamperedChain, FindingTamperedHeader, FindingBadProof, FindingIncorrectRead, FindingDatastoreCorruption:
		key := fmt.Sprintf("%s|%v|%s|%s", f.Type, f.Servers, f.Item, f.TxnID)
		if _, dup := w.seen[key]; dup {
			return
		}
		w.seen[key] = struct{}{}
	}
	f.Poll = w.curPoll()
	if evPoll <= f.Poll {
		f.DetectPolls = f.Poll - evPoll
	}
	w.findings = append(w.findings, f)
	if int(evPoll) < len(w.pollStarts) {
		w.detectionH.Observe(w.now().Sub(w.pollStarts[evPoll]).Seconds())
	}
	for _, srv := range f.Servers {
		w.o.Counter("fides_watch_findings_total", "Integrity findings by type and accused server.",
			obs.L("type", string(f.Type)), obs.L("server", string(srv))).Inc()
	}
	w.o.Log().Error("watch: integrity finding",
		"type", string(f.Type), "height", f.Height, "servers", fmt.Sprintf("%v", f.Servers), "detail", f.Detail)
}

// alertsLocked evaluates the in-process alert rules.
func (w *Watchtower) alertsLocked() []wire.IntegrityAlert {
	var out []wire.IntegrityAlert
	verified := w.base + uint64(len(w.blocks))
	if w.tip > verified && w.tip-verified > w.maxLag {
		out = append(out, wire.IntegrityAlert{
			Rule:     "verified_lag",
			Severity: "warning",
			Message:  fmt.Sprintf("verified height %d lags tip %d by more than %d blocks", verified, w.tip, w.maxLag),
		})
	}
	if n := len(w.findings); n > 0 {
		out = append(out, wire.IntegrityAlert{
			Rule:     "findings",
			Severity: "critical",
			Message:  fmt.Sprintf("%d integrity finding(s); newest: %s", n, w.findings[n-1].String()),
		})
	}
	return out
}

// updateSLOLocked refreshes the gauges after a poll.
func (w *Watchtower) updateSLOLocked() {
	verified := w.base + uint64(len(w.blocks))
	w.verifiedHeightG.Set(int64(verified))
	w.tipHeightG.Set(int64(w.tip))
	lag := uint64(0)
	if w.tip > verified {
		lag = w.tip - verified
	}
	w.lagG.Set(int64(lag))
	w.alertsFiringG.Set(int64(len(w.alertsLocked())))
}

// Status assembles the integrity SLO document served on /integrity.
func (w *Watchtower) Status() wire.IntegrityStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	verified := w.base + uint64(len(w.blocks))
	lag := uint64(0)
	if w.tip > verified {
		lag = w.tip - verified
	}
	alerts := w.alertsLocked()
	return wire.IntegrityStatus{
		Watcher:        w.tr.Self(),
		Tip:            w.tip,
		Verified:       verified,
		Lag:            lag,
		BlocksVerified: uint64(len(w.blocks)),
		SampledReads:   w.sampled,
		Findings:       uint64(len(w.findings)),
		Alerts:         alerts,
		Healthy:        len(alerts) == 0,
	}
}

// Handler serves Status as JSON (mounted on /integrity).
func (w *Watchtower) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		st := w.Status()
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}
