package watch

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/audit"
	"repro/internal/crypto"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/lightclient"
	"repro/internal/merkle"
	"repro/internal/wire"
)

// BundleVerifier re-verifies evidence bundles offline, trusting nothing
// but the servers' registered public keys and the static shard layout. It
// is what `fides-client -verify-bundle` runs: a third party that receives
// a bundle needs no connection to the cluster and no trust in the
// watchtower that produced it — the co-signed material authenticates
// itself, and the offending material must demonstrably fail the protocol
// check the bundle's Kind names.
//
// What re-verification proves is *that* the protocol was violated. Which
// server *served* the offending material rests on the watchtower's
// transcript (Accused), exactly as log-fetch attribution does in the
// offline audit.
type BundleVerifier struct {
	// Registry supplies the public keys co-signs are verified against.
	Registry *identity.Registry
	// Servers is the full server set every co-signed artifact must carry.
	Servers []identity.NodeID
	// Layout is the item→server directory and shard layout.
	Layout lightclient.Layout
	// Coordinator is implicated alongside owners when replaying bundles.
	Coordinator identity.NodeID
	// Verifier optionally routes the per-header collective-signature
	// checks through an injected verification plane (useful when one
	// process re-verifies many bundles over the same chain — the verdict
	// cache collapses repeated headers). Nil verifies serially against
	// Registry.
	Verifier ledger.CoSigVerifier
}

// cosigVerifier returns the injected verification plane or the serial
// fallback over the registry.
func (v *BundleVerifier) cosigVerifier() ledger.CoSigVerifier {
	if v.Verifier != nil {
		return v.Verifier
	}
	return crypto.NewSerial(v.Registry)
}

// ErrBadBundle reports a malformed or unsubstantiated bundle: the evidence
// does not demonstrate the violation its Kind claims.
var ErrBadBundle = errors.New("watch: evidence bundle does not substantiate its finding")

// Verify re-runs the protocol check the bundle claims was violated.
// It returns nil exactly when the bundle substantiates its finding: all
// co-signed anchors authenticate AND the offending material fails the
// named check.
func (v *BundleVerifier) Verify(b *wire.EvidenceBundle) error {
	if b == nil {
		return fmt.Errorf("%w: nil bundle", ErrBadBundle)
	}
	if b.Kind == "" {
		return fmt.Errorf("%w: no kind", ErrBadBundle)
	}
	if len(b.Accused) == 0 {
		return fmt.Errorf("%w: no accused server", ErrBadBundle)
	}
	switch FindingType(b.Kind) {
	case FindingTamperedChain:
		return v.verifyTamperedChain(b)
	case FindingTamperedHeader:
		return v.verifyTamperedHeader(b)
	case FindingBadProof:
		return v.verifyReadBundle(b, lightclient.ErrBadProof)
	case FindingIncorrectRead:
		if len(b.Blocks) > 0 {
			return v.verifyReplay(b)
		}
		return v.verifyReadBundle(b, lightclient.ErrIncorrectRead)
	case FindingDatastoreCorruption:
		if len(b.Blocks) > 0 {
			return v.verifyReplay(b)
		}
		return v.verifyCorruptVO(b)
	default:
		// Replay-derived kinds (stale-timestamp, serializability-violation,
		// tampered-log, ...) all verify by replaying the co-signed range.
		return v.verifyReplay(b)
	}
}

// verifyHeader runs the standalone acceptance checks on a co-signed
// header: full signer set, no duplicates, valid collective signature.
func (v *BundleVerifier) verifyHeader(h *ledger.Header) error {
	if h == nil {
		return errors.New("nil header")
	}
	if len(h.Signers) != len(v.Servers) {
		return fmt.Errorf("header %d signed by %d of %d servers", h.Height, len(h.Signers), len(v.Servers))
	}
	known := make(map[identity.NodeID]struct{}, len(v.Servers))
	for _, id := range v.Servers {
		known[id] = struct{}{}
	}
	seen := make(map[identity.NodeID]struct{}, len(h.Signers))
	for _, id := range h.Signers {
		if _, ok := known[id]; !ok {
			return fmt.Errorf("header %d signed by unknown server %s", h.Height, id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("header %d lists signer %s twice", h.Height, id)
		}
		seen[id] = struct{}{}
	}
	return ledger.VerifyHeaderSigWith(v.cosigVerifier(), h)
}

// verifyBlocks checks the bundle's co-signed block range: contiguous
// heights, an intact internal hash chain, and a full-set collective
// signature on every block.
func (v *BundleVerifier) verifyBlocks(blocks []*ledger.Block) error {
	var prevHash []byte
	for i, b := range blocks {
		if b == nil {
			return fmt.Errorf("nil block at index %d", i)
		}
		if i > 0 {
			if b.Height != blocks[i-1].Height+1 {
				return fmt.Errorf("non-contiguous heights %d, %d", blocks[i-1].Height, b.Height)
			}
			if !bytes.Equal(b.PrevHash, prevHash) {
				return fmt.Errorf("broken hash chain at height %d", b.Height)
			}
		} else if b.Height == 0 && len(b.PrevHash) != 0 {
			return errors.New("genesis block has non-empty prev-hash")
		}
		if err := v.verifyHeader(b.Header()); err != nil {
			return err
		}
		prevHash = b.Hash()
	}
	return nil
}

// verifyReplay re-verifies a replay finding: the co-signed range must
// authenticate, and replaying it must reproduce a finding of the bundle's
// kind for the bundle's item at the bundle's height.
func (v *BundleVerifier) verifyReplay(b *wire.EvidenceBundle) error {
	if len(b.Blocks) == 0 {
		return fmt.Errorf("%w: %s bundle carries no blocks", ErrBadBundle, b.Kind)
	}
	if err := v.verifyBlocks(b.Blocks); err != nil {
		return fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	rp := audit.NewReplayer(v.Layout, v.Coordinator)
	var findings []audit.Finding
	for _, blk := range b.Blocks {
		findings = append(findings, rp.Step(blk)...)
	}
	for _, f := range findings {
		if string(f.Type) != b.Kind {
			continue
		}
		if f.Item != b.Item {
			continue
		}
		if b.TxnID != "" && f.TxnID != b.TxnID {
			continue
		}
		if f.Height >= 0 && uint64(f.Height) != b.Height {
			continue
		}
		return nil
	}
	return fmt.Errorf("%w: replaying %d co-signed blocks does not reproduce a %s finding for item %q at height %d",
		ErrBadBundle, len(b.Blocks), b.Kind, b.Item, b.Height)
}

// verifyTamperedChain re-verifies a bad tail block: the served block's
// header must fail the acceptance checks, either on its own (bad co-sign
// or signer set) or against the anchor (broken chain).
func (v *BundleVerifier) verifyTamperedChain(b *wire.EvidenceBundle) error {
	if b.BadHeader == nil {
		return fmt.Errorf("%w: tampered-chain bundle carries no served header", ErrBadBundle)
	}
	if b.Anchor != nil {
		if err := v.verifyHeader(b.Anchor); err != nil {
			return fmt.Errorf("%w: anchor: %v", ErrBadBundle, err)
		}
	}
	if err := v.verifyHeader(b.BadHeader); err != nil {
		return nil // the served block is self-evidently invalid
	}
	if b.Anchor != nil && b.BadHeader.Height == b.Anchor.Height+1 && !bytes.Equal(b.BadHeader.PrevHash, b.Anchor.Hash()) {
		return nil // valid co-sign but chained to a different history
	}
	return fmt.Errorf("%w: served block verifies against the anchor", ErrBadBundle)
}

// verifyTamperedHeader re-verifies a header-probe finding: the anchor must
// authenticate, and the served header must differ from it at the same
// height. A served header that itself carries a valid full-set co-sign is
// equivocation evidence (two co-signed histories at one height) — still a
// violation.
func (v *BundleVerifier) verifyTamperedHeader(b *wire.EvidenceBundle) error {
	if b.Anchor == nil || b.BadHeader == nil {
		return fmt.Errorf("%w: tampered-header bundle needs anchor and served header", ErrBadBundle)
	}
	if err := v.verifyHeader(b.Anchor); err != nil {
		return fmt.Errorf("%w: anchor: %v", ErrBadBundle, err)
	}
	if b.BadHeader.Height != b.Anchor.Height {
		return fmt.Errorf("%w: served header is for height %d, anchor for %d", ErrBadBundle, b.BadHeader.Height, b.Anchor.Height)
	}
	if bytes.Equal(b.BadHeader.Hash(), b.Anchor.Hash()) {
		return fmt.Errorf("%w: served header is identical to the co-signed anchor", ErrBadBundle)
	}
	return nil
}

// verifyReadBundle re-verifies a sampled-read finding: the anchor must
// authenticate and carry a root for the accused shard, and the served
// response must fail the proof check with the named error class.
func (v *BundleVerifier) verifyReadBundle(b *wire.EvidenceBundle, wantErr error) error {
	anchor, root, err := v.anchorRoot(b)
	if err != nil {
		return err
	}
	if b.Read == nil {
		return fmt.Errorf("%w: %s bundle carries no read response", ErrBadBundle, b.Kind)
	}
	if b.Read.Height != anchor.Height {
		return fmt.Errorf("%w: read answered at height %d, anchor at %d", ErrBadBundle, b.Read.Height, anchor.Height)
	}
	if b.Item != "" {
		inReq := false
		for _, id := range b.ReadIDs {
			if id == b.Item {
				inReq = true
				break
			}
		}
		if !inReq {
			return fmt.Errorf("%w: named item %q is not part of the sampled read", ErrBadBundle, b.Item)
		}
	}
	verr := lightclient.CheckReadProof(v.Layout, b.Accused[0], b.ReadIDs, b.Read, root)
	if verr == nil {
		return fmt.Errorf("%w: served read verifies against the co-signed root", ErrBadBundle)
	}
	if !errors.Is(verr, wantErr) {
		return fmt.Errorf("%w: served read fails with %v, but the bundle claims %s", ErrBadBundle, verr, b.Kind)
	}
	return nil
}

// verifyCorruptVO re-verifies a datastore-corruption finding: the anchor
// must authenticate, and the server's own Verification Object must fold to
// a root that is not the co-signed one — the datastore cannot authenticate
// the committed state (Lemma 2).
func (v *BundleVerifier) verifyCorruptVO(b *wire.EvidenceBundle) error {
	_, root, err := v.anchorRoot(b)
	if err != nil {
		return err
	}
	if b.Proof == nil {
		return fmt.Errorf("%w: datastore-corruption bundle carries no VO", ErrBadBundle)
	}
	folded := merkle.RootFromProof(merkle.LeafHash(b.Proof.LeafContent), b.Proof.Proof)
	if bytes.Equal(folded, root) {
		return fmt.Errorf("%w: the VO folds to the co-signed root", ErrBadBundle)
	}
	return nil
}

// anchorRoot authenticates the bundle's anchor and extracts the co-signed
// root of the accused server's shard.
func (v *BundleVerifier) anchorRoot(b *wire.EvidenceBundle) (*ledger.Header, []byte, error) {
	if b.Anchor == nil {
		return nil, nil, fmt.Errorf("%w: %s bundle carries no anchor header", ErrBadBundle, b.Kind)
	}
	if err := v.verifyHeader(b.Anchor); err != nil {
		return nil, nil, fmt.Errorf("%w: anchor: %v", ErrBadBundle, err)
	}
	root, ok := b.Anchor.Roots[b.Accused[0]]
	if !ok {
		return nil, nil, fmt.Errorf("%w: anchor at height %d carries no root for %s", ErrBadBundle, b.Anchor.Height, b.Accused[0])
	}
	return b.Anchor, root, nil
}

// VerifyBundle re-verifies one evidence bundle offline. It is the
// function-shaped form of BundleVerifier for callers that already hold the
// deployment's registry and layout.
func VerifyBundle(b *wire.EvidenceBundle, reg *identity.Registry, servers []identity.NodeID, layout lightclient.Layout, coord identity.NodeID) error {
	v := &BundleVerifier{Registry: reg, Servers: servers, Layout: layout, Coordinator: coord}
	return v.Verify(b)
}
