package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/binenc"
	"repro/internal/store"
	"repro/internal/txn"
)

// Snapshot on-disk format (see docs/protocol.md):
//
//	snapshot := magic(8)="FIDESNAP" | version(1)=1 | height(8 BE)
//	            | tip_hash(lp) | root(lp) | item_count(uvarint) | item*
//	            | crc32c(4 BE, over everything before it)
//	item     := id(lp) | value(lp) | rts | wts
//
// Files are named snap-<height:016x>.snap and written via temp + rename.
// The CRC only screens out crash artifacts and bit rot; trust comes from
// recovery matching the recomputed Merkle root of the items against a root
// recorded in a collectively signed block of the WAL.
const (
	snapMagic   = "FIDESNAP"
	snapVersion = 1
)

// ErrSnapshotInvalid marks a snapshot file recovery cannot use. Snapshots
// are caches: the caller falls back to verified WAL replay.
var ErrSnapshotInvalid = errors.New("durable: invalid snapshot")

// snapshot is the decoded form of a snapshot file.
type snapshot struct {
	Height  uint64
	TipHash []byte
	Root    []byte
	Items   []store.Item
}

func snapshotName(height uint64) string {
	return fmt.Sprintf("snap-%016x.snap", height)
}

func encodeSnapshot(s *snapshot) []byte {
	buf := make([]byte, 0, 64+len(s.Items)*32)
	buf = append(buf, snapMagic...)
	buf = append(buf, snapVersion)
	buf = binary.BigEndian.AppendUint64(buf, s.Height)
	buf = binenc.AppendBytes(buf, s.TipHash)
	buf = binenc.AppendBytes(buf, s.Root)
	buf = binenc.AppendUvarint(buf, uint64(len(s.Items)))
	for i := range s.Items {
		it := &s.Items[i]
		buf = binenc.AppendString(buf, string(it.ID))
		buf = binenc.AppendBytes(buf, it.Value)
		buf = it.RTS.AppendBinary(buf)
		buf = it.WTS.AppendBinary(buf)
	}
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

func decodeSnapshot(data []byte) (*snapshot, error) {
	if len(data) < len(snapMagic)+1+8+4 {
		return nil, fmt.Errorf("%w: file too short", ErrSnapshotInvalid)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrSnapshotInvalid)
	}
	if string(body[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotInvalid)
	}
	if body[8] != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSnapshotInvalid, body[8])
	}
	s := &snapshot{Height: binary.BigEndian.Uint64(body[9:])}
	r := binenc.NewReader(body[17:])
	s.TipHash = r.Bytes()
	s.Root = r.Bytes()
	n := r.Count(4)
	s.Items = make([]store.Item, 0, n)
	for i := 0; i < n; i++ {
		it := store.Item{
			ID:    txn.ItemID(r.String()),
			Value: r.Bytes(),
			RTS:   txn.DecodeTimestamp(&r),
			WTS:   txn.DecodeTimestamp(&r),
		}
		s.Items = append(s.Items, it)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotInvalid, err)
	}
	return s, nil
}

// writeSnapshot persists a snapshot atomically (temp file + rename + dir
// sync) and prunes old snapshots beyond keep.
func writeSnapshot(dir string, s *snapshot, keep int) error {
	data := encodeSnapshot(s)
	final := filepath.Join(dir, snapshotName(s.Height))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: snapshot rename: %w", err)
	}
	syncDir(dir)
	pruneSnapshots(dir, keep)
	return nil
}

// pruneSnapshots removes all but the newest keep snapshot files (best
// effort — a leftover snapshot is harmless).
func pruneSnapshots(dir string, keep int) {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(names) <= keep {
		return
	}
	sort.Strings(names) // height-ordered by the fixed-width hex name
	for _, name := range names[:len(names)-keep] {
		_ = os.Remove(name)
	}
}

// loadLatestSnapshot returns the newest decodable snapshot, or nil if none
// exists. Undecodable files produce warnings, not errors: the WAL holds
// the authoritative history.
func loadLatestSnapshot(dir string) (*snapshot, []string) {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var warnings []string
	for i := len(names) - 1; i >= 0; i-- {
		data, err := os.ReadFile(names[i])
		if err != nil {
			warnings = append(warnings, fmt.Sprintf("snapshot %s unreadable: %v", filepath.Base(names[i]), err))
			continue
		}
		s, err := decodeSnapshot(data)
		if err != nil {
			warnings = append(warnings, fmt.Sprintf("snapshot %s ignored: %v", filepath.Base(names[i]), err))
			continue
		}
		return s, warnings
	}
	return nil, warnings
}
