package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/store"
	"repro/internal/txn"
)

// ErrTampered marks a WAL whose records are structurally intact (CRC
// passes, so this is not a crash artifact) but fail cryptographic
// verification: an undecodable payload, a broken hash chain, an invalid
// collective signature, or a replayed Merkle root that contradicts the
// signed one. Startup must refuse such a disk rather than serve from it.
var ErrTampered = errors.New("durable: WAL failed verification — refusing tampered disk state")

// RecoveryConfig supplies everything recovery needs to re-verify the disk
// as an auditor would and to rebuild this server's shard.
type RecoveryConfig struct {
	// Registry resolves the Schnorr keys of the block signers.
	Registry *identity.Registry
	// Self is this server's node id (selects which Merkle roots to check).
	Self identity.NodeID
	// ShardIDs is the full item set of this server's shard.
	ShardIDs []txn.ItemID
	// InitialValue supplies each item's genesis value (nil → empty), and
	// must match the value the shard was originally created with: replay
	// starts from the genesis state.
	InitialValue func(txn.ItemID) []byte
	// MultiVersion mirrors the shard's store.Config. Multi-versioned
	// shards are always rebuilt by full replay (their history is exactly
	// the block log), so snapshots are neither written nor consumed.
	MultiVersion bool
}

// Recovered is the verified outcome of crash recovery.
type Recovered struct {
	// Blocks is the verified block log, ready for ledger.NewLogFromBlocks.
	Blocks []*ledger.Block
	// Shard is the rebuilt datastore, its root checked against the last
	// signed root in the log.
	Shard *store.Shard
	// SnapshotHeight is the block height of the snapshot recovery started
	// from (SnapshotUsed reports whether one was used at all).
	SnapshotHeight uint64
	SnapshotUsed   bool
	// Scan reports what the WAL scan found (torn tails, segment count).
	Scan ScanReport
	// Warnings lists non-fatal anomalies (ignored snapshots etc.).
	Warnings []string
}

// Store is a server's durable ledger + datastore: the WAL the tamper-proof
// log appends flow through (ledger.Persister) and the snapshotter the
// server triggers after commits (server.Snapshotter).
type Store struct {
	opts Options
	wal  *WAL
	lock *os.File // exclusive flock on the data directory

	mu              sync.Mutex
	payloads        [][]byte // raw records scanned at Open, consumed by Recover
	scan            ScanReport
	recovered       bool
	lastSnapHeight  uint64
	haveSnapshotted bool
	snapErr         error // sticky failure of the async snapshot writer

	snapWG sync.WaitGroup
}

// Open locks and scans the data directory, truncates any torn WAL tail,
// and prepares the store for Recover (mandatory before the first Persist)
// and appends. The directory is held under an exclusive flock for the
// store's lifetime: two processes appending to one WAL would interleave
// records and destroy acknowledged blocks, so the second opener fails
// fast instead.
func Open(opts Options) (*Store, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	wal, payloads, scan, err := openWAL(opts)
	if err != nil {
		_ = lock.Close()
		return nil, err
	}
	return &Store{opts: opts, wal: wal, lock: lock, payloads: payloads, scan: scan}, nil
}

// lockDir takes an exclusive, non-blocking flock on <dir>/LOCK.
func lockDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("durable: %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// Recover verifies the scanned WAL exactly as an auditor verifies a
// fetched log — contiguous heights, hash chain, collective signature per
// block — rebuilds the shard (from the newest usable snapshot plus the WAL
// tail, or by full replay), and cross-checks every recomputed Merkle root
// against the root this server co-signed into the corresponding block.
func (s *Store) Recover(rc RecoveryConfig) (*Recovered, error) {
	s.mu.Lock()
	payloads := s.payloads
	s.payloads = nil
	s.recovered = true
	s.mu.Unlock()

	res := &Recovered{Scan: s.scan}

	// Decode. A CRC-valid but undecodable record cannot be a torn write;
	// someone rewrote the record and recomputed the CRC.
	blocks := make([]*ledger.Block, len(payloads))
	for i, p := range payloads {
		b := new(ledger.Block)
		if err := b.UnmarshalBinary(p); err != nil {
			return nil, fmt.Errorf("%w: record %d undecodable: %v", ErrTampered, i, err)
		}
		blocks[i] = b
	}

	// Verify the chain: heights from 0, prev-hash links, co-signs.
	if at, err := ledger.VerifyChain(blocks, rc.Registry); err != nil {
		return nil, fmt.Errorf("%w: block %d: %v", ErrTampered, at, err)
	}
	res.Blocks = blocks

	// Choose the starting state: a snapshot is usable only if it is not
	// multi-versioned, parses, points into this chain (its recorded tip
	// hash matches the block at its height), and its recomputed Merkle
	// root equals a root recorded in a signed block. Anything less falls
	// back to full replay — the snapshot carries no authority of its own.
	start := 0
	var shard *store.Shard
	if !rc.MultiVersion {
		snap, warns := loadLatestSnapshot(s.opts.Dir)
		res.Warnings = append(res.Warnings, warns...)
		if snap != nil {
			cand := store.NewShardFromItems(snap.Items, store.Config{MultiVersion: false})
			if why := s.vetSnapshot(snap, cand, blocks, rc.Self); why != "" {
				res.Warnings = append(res.Warnings, fmt.Sprintf("snapshot at height %d ignored: %s", snap.Height, why))
			} else {
				shard = cand
				start = int(snap.Height) + 1
				res.SnapshotUsed = true
				res.SnapshotHeight = snap.Height
				s.mu.Lock()
				s.lastSnapHeight, s.haveSnapshotted = snap.Height, true
				s.mu.Unlock()
			}
		}
	}
	if shard == nil {
		shard = store.NewShard(rc.ShardIDs, rc.InitialValue, store.Config{MultiVersion: rc.MultiVersion})
	}

	// Replay the tail, verifying each recomputed root against the signed
	// one. The roots inside blocks are covered by the collective
	// signature, so a mismatch means the replayed state — not the log — is
	// wrong: tampered snapshot contents would have been caught above, a
	// wrong InitialValue or item set is a configuration error; both must
	// stop recovery.
	for _, b := range blocks[start:] {
		if b.Decision != ledger.DecisionCommit {
			continue // aborted blocks are never logged, but stay safe
		}
		accesses := ShardAccesses(b, shard)
		if len(accesses) > 0 {
			if err := shard.Apply(accesses); err != nil {
				return nil, fmt.Errorf("durable: replay block %d: %w", b.Height, err)
			}
		}
		if want, ok := b.Roots[rc.Self]; ok {
			if got := shard.Root(); !bytes.Equal(got, want) {
				return nil, fmt.Errorf("%w: replayed shard root at height %d diverges from the co-signed root (initial state mismatch or tampered datastore inputs)",
					ErrTampered, b.Height)
			}
		}
	}
	res.Shard = shard
	return res, nil
}

// vetSnapshot explains why a snapshot cannot be used ("" = usable).
func (s *Store) vetSnapshot(snap *snapshot, cand *store.Shard, blocks []*ledger.Block, self identity.NodeID) string {
	if snap.Height >= uint64(len(blocks)) {
		return fmt.Sprintf("claims height %d beyond the recovered WAL tip %d", snap.Height, len(blocks)-1)
	}
	if !bytes.Equal(snap.TipHash, blocks[snap.Height].Hash()) {
		return "recorded tip hash does not match the chain"
	}
	root := cand.Root()
	if !bytes.Equal(root, snap.Root) {
		return "item states do not hash to the recorded root"
	}
	// Authenticate the root against the chain: the last block at or below
	// the snapshot height in which this server was involved carries the
	// co-signed root the shard must have had ever since.
	for h := int(snap.Height); h >= 0; h-- {
		if want, ok := blocks[h].Roots[self]; ok {
			if !bytes.Equal(root, want) {
				return fmt.Sprintf("root contradicts the co-signed root at height %d", h)
			}
			return ""
		}
	}
	// No signed root to authenticate against (the server was never
	// involved up to this height): replay from genesis is just as cheap.
	return "no co-signed root at or below its height to authenticate against"
}

// ShardAccesses reconstructs the datastore accesses a committed block
// implies for one shard — the same per-transaction split the live commit
// path uses, derived from the block's read/write sets. Recovery uses it to
// replay the verified WAL; the server catch-up path uses it to apply a
// verified log suffix fetched from untrusted peers, so both paths converge
// on identical shard state for identical blocks.
func ShardAccesses(b *ledger.Block, shard *store.Shard) []store.Access {
	var accesses []store.Access
	for i := range b.Txns {
		rec := &b.Txns[i]
		a := store.Access{TS: rec.TS}
		for _, r := range rec.Reads {
			if shard.Has(r.ID) {
				a.ReadIDs = append(a.ReadIDs, r.ID)
			}
		}
		for _, w := range rec.Writes {
			if shard.Has(w.ID) {
				a.Writes = append(a.Writes, w)
			}
		}
		if len(a.ReadIDs) > 0 || len(a.Writes) > 0 {
			accesses = append(accesses, a)
		}
	}
	return accesses
}

// Persist implements ledger.Persister: the WAL write (and, under
// fsync=always, the flush) a block must survive before the in-memory log
// accepts it.
func (s *Store) Persist(b *ledger.Block) error {
	s.mu.Lock()
	recovered := s.recovered
	s.mu.Unlock()
	if !recovered {
		return errors.New("durable: Persist before Recover")
	}
	return s.wal.Append(b)
}

// MaybeSnapshot implements server.Snapshotter: called after every committed
// block, it captures a snapshot every SnapshotEvery blocks. Multi-versioned
// shards never snapshot (recovery replays their full history anyway).
//
// Only the state capture runs on the caller's (the server commit path's)
// clock — it must, to pin the shard exactly at height. The fsyncs, file
// write, and rename happen on a background goroutine; a writer failure is
// sticky and surfaces on the next call, so the disk going bad still fails
// commits loudly rather than degrading silently.
func (s *Store) MaybeSnapshot(shard *store.Shard, height uint64, tipHash []byte) error {
	if s.opts.SnapshotEvery <= 0 || shard.MultiVersion() {
		return nil
	}
	s.mu.Lock()
	if s.snapErr != nil {
		err := s.snapErr
		s.mu.Unlock()
		return fmt.Errorf("durable: snapshot writer failed: %w", err)
	}
	due := !s.haveSnapshotted && height+1 >= uint64(s.opts.SnapshotEvery) ||
		s.haveSnapshotted && height >= s.lastSnapHeight+uint64(s.opts.SnapshotEvery)
	if due {
		s.lastSnapHeight, s.haveSnapshotted = height, true
	}
	s.mu.Unlock()
	if !due {
		return nil
	}
	snap := &snapshot{
		Height:  height,
		TipHash: append([]byte(nil), tipHash...),
		Root:    shard.Root(),
		Items:   shard.Snapshot(),
	}
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		// The WAL record for this block must be durable before a snapshot
		// claims its height: otherwise a crash could leave a snapshot
		// pointing past the recovered chain (it would be ignored, but
		// never write an artifact that is stale the moment it lands).
		err := s.wal.Sync()
		if err == nil {
			err = writeSnapshot(s.opts.Dir, snap, s.opts.SnapshotKeep)
		}
		if err != nil {
			s.mu.Lock()
			if s.snapErr == nil {
				s.snapErr = err
			}
			s.mu.Unlock()
		}
	}()
	return nil
}

// Sync forces the WAL to stable storage.
func (s *Store) Sync() error { return s.wal.Sync() }

// Fail freezes the store as a simulated crash would: every subsequent WAL
// append, fsync, or snapshot attempt returns err (sticky), while the bytes
// already on disk stay exactly as the crash left them for recovery to
// judge. The simulation harness (internal/sim) calls this from its
// server-layer crash hooks; it must NOT be called from inside the
// PreFsyncHook, which already holds the WAL lock (that hook freezes by
// returning an error instead).
func (s *Store) Fail(err error) {
	s.wal.Fail(err)
	s.mu.Lock()
	if s.snapErr == nil {
		s.snapErr = err
	}
	s.mu.Unlock()
}

// NextHeight returns the height the next persisted block must carry.
func (s *Store) NextHeight() uint64 { return s.wal.NextHeight() }

// Close drains in-flight snapshot writes, flushes and closes the WAL, and
// releases the directory lock.
func (s *Store) Close() error {
	s.snapWG.Wait()
	err := s.wal.Close()
	if s.lock != nil {
		if cerr := s.lock.Close(); err == nil {
			err = cerr
		}
		s.lock = nil
	}
	return err
}
