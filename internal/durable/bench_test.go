package durable

import (
	"fmt"
	"testing"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/txn"
)

// benchBlock builds a realistic unsigned block (~100 single-write txns,
// like the paper's evaluation blocks). WAL appends do not verify
// signatures — recovery does — so signing would only add noise here.
func benchBlock(height uint64, prev []byte) *ledger.Block {
	b := &ledger.Block{
		Height:   height,
		Decision: ledger.DecisionCommit,
		PrevHash: prev,
		Signers:  []identity.NodeID{"s00", "s01", "s02", "s03", "s04"},
		Roots:    map[identity.NodeID][]byte{"s00": make([]byte, 32)},
		CoSigC:   make([]byte, 32),
		CoSigS:   make([]byte, 32),
	}
	for i := 0; i < 100; i++ {
		b.Txns = append(b.Txns, ledger.TxnRecord{
			TxnID: fmt.Sprintf("t%d-%d", height, i),
			TS:    txn.Timestamp{Time: height*100 + uint64(i), ClientID: 1},
			Writes: []txn.WriteEntry{{
				ID:     txn.ItemID(fmt.Sprintf("server0-item%04d", i)),
				NewVal: []byte("benchmark-value-00000000"),
			}},
		})
	}
	return b
}

// BenchmarkWALAppend measures the per-block WAL append cost under each
// fsync discipline (the TFCommit hot path pays exactly this inside
// applyCommitLocked). Run with -benchtime to taste; group and off are
// dominated by the write, always by the fsync.
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []FsyncMode{FsyncOff, FsyncGroup, FsyncAlways} {
		b.Run("fsync="+mode.String(), func(b *testing.B) {
			s, err := Open(Options{Dir: b.TempDir(), Fsync: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = s.Close() }()
			if _, err := s.Recover(RecoveryConfig{Registry: identity.NewRegistry(), Self: "s00"}); err != nil {
				b.Fatal(err)
			}
			blk := benchBlock(0, nil)
			enc, _ := blk.MarshalBinary()
			b.SetBytes(int64(len(enc) + recHeaderLen))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk.Height = uint64(i)
				if err := s.Persist(blk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
