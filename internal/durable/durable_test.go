package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/schnorr"
	"repro/internal/store"
	"repro/internal/txn"
)

// harness drives a miniature single-shard Fides history: persistent server
// identities, a live shard mirroring what the commits do, and a block
// builder that produces genuinely co-signed blocks whose recorded Merkle
// root matches the shard state — exactly what recovery re-verifies.
type harness struct {
	t      *testing.T
	self   identity.NodeID
	ids    []identity.NodeID
	privs  []*schnorr.PrivateKey
	reg    *identity.Registry
	itemID []txn.ItemID
	shard  *store.Shard
	chain  []*ledger.Block
}

func newHarness(t *testing.T, servers, items int) *harness {
	t.Helper()
	h := &harness{t: t, self: "s00"}
	h.reg = identity.NewRegistry()
	for i := 0; i < servers; i++ {
		id := identity.NodeID(fmt.Sprintf("s%02d", i))
		ident, err := identity.New(id, identity.RoleServer, nil)
		if err != nil {
			t.Fatal(err)
		}
		h.reg.Register(ident.Public())
		h.ids = append(h.ids, id)
		h.privs = append(h.privs, ident.Schnorr)
	}
	for j := 0; j < items; j++ {
		h.itemID = append(h.itemID, txn.ItemID(fmt.Sprintf("x%03d", j)))
	}
	h.shard = store.NewShard(h.itemID, h.initial, store.Config{})
	return h
}

func (h *harness) initial(txn.ItemID) []byte { return []byte("0") }

func (h *harness) recoveryConfig() RecoveryConfig {
	return RecoveryConfig{
		Registry:     h.reg,
		Self:         h.self,
		ShardIDs:     h.itemID,
		InitialValue: h.initial,
	}
}

// nextBlock commits one write to item j, producing a co-signed block
// chained onto the harness history and applying it to the live shard.
func (h *harness) nextBlock(j int) *ledger.Block {
	h.t.Helper()
	height := uint64(len(h.chain))
	ts := txn.Timestamp{Time: 10 + height, ClientID: 1}
	cur, err := h.shard.Get(h.itemID[j])
	if err != nil {
		h.t.Fatal(err)
	}
	rec := ledger.TxnRecord{
		TxnID: fmt.Sprintf("t%d", height),
		TS:    ts,
		Writes: []txn.WriteEntry{{
			ID:     h.itemID[j],
			NewVal: []byte(fmt.Sprintf("v%d", height)),
			OldVal: cur.Value,
			Blind:  true,
			RTS:    cur.RTS,
			WTS:    cur.WTS,
		}},
	}
	access := store.Access{Writes: rec.Writes, TS: ts}
	root, err := h.shard.OverlayRoot([]store.Access{access})
	if err != nil {
		h.t.Fatal(err)
	}
	b := &ledger.Block{
		Height:   height,
		Txns:     []ledger.TxnRecord{rec},
		Roots:    map[identity.NodeID][]byte{h.self: root},
		Decision: ledger.DecisionCommit,
	}
	if height > 0 {
		b.PrevHash = h.chain[height-1].Hash()
	}
	h.coSign(b)
	if err := h.shard.Apply([]store.Access{access}); err != nil {
		h.t.Fatal(err)
	}
	if !bytes.Equal(h.shard.Root(), root) {
		h.t.Fatal("harness shard root diverged from overlay root")
	}
	h.chain = append(h.chain, b)
	return b
}

// coSign collectively signs the block with every harness identity.
func (h *harness) coSign(b *ledger.Block) {
	h.t.Helper()
	b.Signers = append([]identity.NodeID(nil), h.ids...)
	n := len(h.ids)
	commitments := make([]cosi.Commitment, n)
	secrets := make([]cosi.Secret, n)
	pubs := make([]schnorr.PublicKey, n)
	for i := 0; i < n; i++ {
		c, s, err := cosi.Commit(nil)
		if err != nil {
			h.t.Fatal(err)
		}
		commitments[i], secrets[i] = c, s
		pubs[i] = h.privs[i].Public
	}
	aggV, err := cosi.AggregateCommitments(commitments)
	if err != nil {
		h.t.Fatal(err)
	}
	aggPub, err := cosi.AggregatePublicKeys(pubs)
	if err != nil {
		h.t.Fatal(err)
	}
	ch := cosi.Challenge(aggV, aggPub, b.SigningBytes())
	responses := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		r, err := cosi.Respond(h.privs[i], &secrets[i], ch)
		if err != nil {
			h.t.Fatal(err)
		}
		responses[i] = r
	}
	aggR, err := cosi.AggregateResponses(responses)
	if err != nil {
		h.t.Fatal(err)
	}
	b.SetCoSig(cosi.Finalize(ch, aggR))
}

// persistChain writes n harness blocks through a fresh store at dir.
func (h *harness) persistChain(dir string, n int, opts Options) {
	h.t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		h.t.Fatal(err)
	}
	if _, err := s.Recover(h.recoveryConfig()); err != nil {
		h.t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b := h.nextBlock(i % len(h.itemID))
		if err := s.Persist(b); err != nil {
			h.t.Fatal(err)
		}
		if err := s.MaybeSnapshot(h.shard, b.Height, b.Hash()); err != nil {
			h.t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		h.t.Fatal(err)
	}
}

func reopen(t *testing.T, dir string, rc RecoveryConfig, opts Options) (*Recovered, error) {
	t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		return nil, err
	}
	defer func() { _ = s.Close() }()
	return s.Recover(rc)
}

// lastSegment returns the path of the newest WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no WAL segments in %s (err=%v)", dir, err)
	}
	return names[len(names)-1]
}

// recordOffsets parses a segment's record boundaries: offs[i] is the byte
// offset of record i's header.
func recordOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	off := segHeaderLen
	for off+recHeaderLen <= len(data) {
		offs = append(offs, off)
		l := binary.BigEndian.Uint32(data[off:])
		off += recHeaderLen + int(l)
	}
	return offs
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	h.persistChain(dir, 5, Options{})

	rec, err := reopen(t, dir, h.recoveryConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Blocks) != 5 {
		t.Fatalf("recovered %d blocks, want 5", len(rec.Blocks))
	}
	if rec.Scan.TornTail {
		t.Fatal("clean WAL reported a torn tail")
	}
	for i, b := range rec.Blocks {
		if !bytes.Equal(b.Hash(), h.chain[i].Hash()) {
			t.Fatalf("block %d hash mismatch after recovery", i)
		}
	}
	if !bytes.Equal(rec.Shard.Root(), h.shard.Root()) {
		t.Fatal("recovered shard root differs from live shard root")
	}
	if rec.SnapshotUsed {
		t.Fatal("snapshot used though snapshots were disabled")
	}
}

func TestWALSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	// Tiny segments: every block rolls to a new segment.
	h.persistChain(dir, 6, Options{SegmentBytes: 1})

	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(names) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(names))
	}
	rec, err := reopen(t, dir, h.recoveryConfig(), Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Blocks) != 6 {
		t.Fatalf("recovered %d blocks, want 6", len(rec.Blocks))
	}
	if !bytes.Equal(rec.Shard.Root(), h.shard.Root()) {
		t.Fatal("recovered shard root differs after segment rolling")
	}
}

func TestRecoverTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	h.persistChain(dir, 3, Options{})

	// Simulate a torn write: a record header + partial body at the tail.
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	partial := make([]byte, recHeaderLen+10)
	binary.BigEndian.PutUint32(partial, 512) // claims 512 bytes, has 10
	if _, err := f.Write(partial); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	rec, err := reopen(t, dir, h.recoveryConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Scan.TornTail || rec.Scan.TornBytes != int64(len(partial)) {
		t.Fatalf("scan = %+v, want torn tail of %d bytes", rec.Scan, len(partial))
	}
	if len(rec.Blocks) != 3 {
		t.Fatalf("recovered %d blocks, want 3 (torn record dropped)", len(rec.Blocks))
	}
	// The truncation must be physical: a second reopen sees a clean WAL.
	rec2, err := reopen(t, dir, h.recoveryConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Scan.TornTail {
		t.Fatal("torn tail reported again after truncation")
	}
}

func TestRecoverBitFlippedFinalRecordTruncates(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	h.persistChain(dir, 3, Options{})

	// Flip one byte inside the FINAL record's body: CRC fails, nothing
	// valid follows → indistinguishable from a torn write → truncated.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, data)
	last := offs[len(offs)-1]
	data[last+recHeaderLen+5] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := reopen(t, dir, h.recoveryConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Blocks) != 2 {
		t.Fatalf("recovered %d blocks, want 2 (bit-flipped tail truncated)", len(rec.Blocks))
	}
	if !rec.Scan.TornTail {
		t.Fatal("truncation not reported")
	}
	// The recovered state must match the shorter chain.
	if !bytes.Equal(rec.Shard.Root(), rec.Blocks[1].Roots[h.self]) {
		t.Fatal("recovered shard root does not match the surviving tip's co-signed root")
	}
}

func TestRecoverBitFlippedInteriorRecordRejected(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	h.persistChain(dir, 3, Options{})

	// Flip a byte in the FIRST record: valid records follow, so this is
	// interior corruption, not a torn suffix — recovery must refuse.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, data)
	data[offs[0]+recHeaderLen+5] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = reopen(t, dir, h.recoveryConfig(), Options{})
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("err = %v, want ErrWALCorrupt", err)
	}
}

func TestRecoverCorruptedLengthFieldRejected(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	h.persistChain(dir, 3, Options{})

	// Corrupt the FIRST record's length field. The bad length makes the
	// following records unreachable by sequential scan, but they are still
	// intact on disk — truncating here would roll back committed blocks,
	// so recovery must refuse instead.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, data)
	binary.BigEndian.PutUint32(data[offs[0]:], 1<<30)
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = reopen(t, dir, h.recoveryConfig(), Options{})
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("err = %v, want ErrWALCorrupt for corrupted length with intact records after", err)
	}
}

func TestOpenLocksDataDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("second Open on a locked data dir succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	_ = s2.Close()
}

func TestRecoverTamperedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	h.persistChain(dir, 3, Options{})

	// An adversary with disk access rewrites a committed value AND fixes
	// the CRC. The record is structurally perfect; only the collective
	// signature can expose it — recovery must refuse, not truncate.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, data)
	last := offs[len(offs)-1]
	l := binary.BigEndian.Uint32(data[last:])
	payload := data[last+recHeaderLen : last+recHeaderLen+int(l)]
	// Flip a byte well inside the encoded transaction contents.
	payload[len(payload)/2] ^= 0x01
	binary.BigEndian.PutUint32(data[last+4:], crc32.Checksum(payload, crcTable))
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = reopen(t, dir, h.recoveryConfig(), Options{})
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
}

func TestRecoverEmptyDirAndEmptySegment(t *testing.T) {
	// Fresh directory: no blocks, usable store.
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	rec, err := reopen(t, dir, h.recoveryConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Blocks) != 0 {
		t.Fatalf("fresh dir recovered %d blocks", len(rec.Blocks))
	}

	// A zero-length final segment (crash during creation) is rewritten,
	// not fatal.
	h2 := newHarness(t, 3, 4)
	dir2 := t.TempDir()
	h2.persistChain(dir2, 2, Options{})
	empty := filepath.Join(dir2, segmentName(2))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rec2, err := reopen(t, dir2, h2.recoveryConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Blocks) != 2 {
		t.Fatalf("recovered %d blocks, want 2", len(rec2.Blocks))
	}
}

func TestRecoverMissingSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	h.persistChain(dir, 4, Options{SegmentBytes: 1}) // one block per segment

	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(names) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(names))
	}
	if err := os.Remove(names[1]); err != nil {
		t.Fatal(err)
	}
	_, err := reopen(t, dir, h.recoveryConfig(), Options{SegmentBytes: 1})
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("err = %v, want ErrWALCorrupt for a missing segment", err)
	}
}

func TestSnapshotFastPathAndWALTailReplay(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	// Snapshots every 2 blocks; 5 blocks → last snapshot at height 3,
	// leaving a WAL tail (block 4) newer than the snapshot to replay.
	h.persistChain(dir, 5, Options{SnapshotEvery: 2})

	rec, err := reopen(t, dir, h.recoveryConfig(), Options{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.SnapshotUsed {
		t.Fatalf("snapshot not used (warnings: %v)", rec.Warnings)
	}
	if rec.SnapshotHeight != 3 {
		t.Fatalf("snapshot height = %d, want 3", rec.SnapshotHeight)
	}
	if len(rec.Blocks) != 5 {
		t.Fatalf("recovered %d blocks, want 5", len(rec.Blocks))
	}
	if !bytes.Equal(rec.Shard.Root(), h.shard.Root()) {
		t.Fatal("snapshot + tail replay does not reproduce the live root")
	}
}

func TestTamperedSnapshotFallsBackToReplay(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	h.persistChain(dir, 4, Options{SnapshotEvery: 2})

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) == 0 {
		t.Fatal("no snapshots written")
	}
	// Tamper an item value inside the newest snapshot and fix the CRC so
	// only the Merkle-root check can catch it.
	name := snaps[len(snaps)-1]
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.LastIndex(data, []byte("v"))
	if idx < 0 {
		t.Fatal("no value byte found in snapshot")
	}
	data[idx] ^= 0x01
	body := data[:len(data)-4]
	binary.BigEndian.PutUint32(data[len(data)-4:], crc32.Checksum(body, crcTable))
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := reopen(t, dir, h.recoveryConfig(), Options{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotUsed {
		t.Fatal("tampered snapshot was accepted")
	}
	found := false
	for _, w := range rec.Warnings {
		if strings.Contains(w, "ignored") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no warning about the ignored snapshot: %v", rec.Warnings)
	}
	if !bytes.Equal(rec.Shard.Root(), h.shard.Root()) {
		t.Fatal("fallback replay does not reproduce the live root")
	}
}

func TestSnapshotNewerThanWALIgnored(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	h.persistChain(dir, 4, Options{SnapshotEvery: 4}) // snapshot at height 3

	// Chop the WAL back below the snapshot height: the snapshot now claims
	// a state the signed chain cannot vouch for.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, data)
	if err := os.WriteFile(seg, data[:offs[2]], 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := reopen(t, dir, h.recoveryConfig(), Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotUsed {
		t.Fatal("snapshot beyond the WAL tip was accepted")
	}
	if len(rec.Blocks) != 2 {
		t.Fatalf("recovered %d blocks, want 2", len(rec.Blocks))
	}
	if !bytes.Equal(rec.Shard.Root(), rec.Blocks[1].Roots[h.self]) {
		t.Fatal("replayed root does not match the surviving tip's co-signed root")
	}
}

func TestFsyncModesAppendAndRecover(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncGroup, FsyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			h := newHarness(t, 3, 4)
			h.persistChain(dir, 3, Options{Fsync: mode})
			rec, err := reopen(t, dir, h.recoveryConfig(), Options{Fsync: mode})
			if err != nil {
				t.Fatal(err)
			}
			if len(rec.Blocks) != 3 {
				t.Fatalf("recovered %d blocks, want 3", len(rec.Blocks))
			}
		})
	}
}

func TestPersistEnforcesOrder(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, 4)
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	b := h.nextBlock(0)
	if err := s.Persist(b); err == nil {
		t.Fatal("Persist before Recover accepted")
	}
	if _, err := s.Recover(h.recoveryConfig()); err != nil {
		t.Fatal(err)
	}
	if err := s.Persist(b); err != nil {
		t.Fatal(err)
	}
	wrong := h.nextBlock(1)
	wrong = wrong.Clone()
	wrong.Height = 7
	if err := s.Persist(wrong); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
}

func TestParseFsyncMode(t *testing.T) {
	cases := map[string]FsyncMode{"always": FsyncAlways, "group": FsyncGroup, "": FsyncGroup, "off": FsyncOff}
	for in, want := range cases {
		got, err := ParseFsyncMode(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncMode("nope"); err == nil {
		t.Error("bad mode accepted")
	}
}
