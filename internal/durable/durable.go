// Package durable persists a Fides server's tamper-proof log and datastore
// on local disk and recovers them after a crash — treating the disk itself
// as part of the *untrusted infrastructure* (paper §3.1: servers, and
// therefore their storage, are untrusted).
//
// Two artifacts live under a server's data directory:
//
//   - a segmented append-only write-ahead log of binary-encoded blocks
//     (wal-*.seg), the durable form of the tamper-proof log. Every record
//     carries a CRC32C so crash artifacts (torn or bit-rotted tails) are
//     distinguishable from tampering, but the CRC is *not* a trust anchor:
//     recovery re-verifies the hash chain and every block's collective
//     signature, exactly as an auditor would (§3.3, Lemma 6).
//   - periodic shard snapshots (snap-*.snap) recording the item states, the
//     Merkle root, and the block height, so recovery can skip replaying the
//     full history. A snapshot is a pure cache: it is only used after its
//     recomputed Merkle root has been matched against a root recorded in a
//     collectively *signed* block, and any invalid or tampered snapshot is
//     discarded in favor of verified replay from the WAL.
//
// The trust rules (see docs/operations.md):
//
//   - torn tail (short or CRC-failing final records): truncated — a crash
//     artifact, the committed prefix is recovered;
//   - structurally valid but cryptographically invalid WAL records
//     (undecodable payload, broken hash chain, bad co-sign, Merkle root
//     mismatch on replay): the server REFUSES to start — the disk has been
//     tampered with and silently accepting it would launder the tampering
//     into an authenticated state;
//   - invalid snapshots: ignored with a warning, recovery falls back to
//     replaying the WAL (the snapshot adds no authority; the WAL holds the
//     full signed history).
package durable

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// FsyncMode selects when WAL appends are flushed to stable storage.
type FsyncMode uint8

// Fsync modes. The zero value is FsyncGroup, the production default.
const (
	// FsyncGroup acknowledges appends after the OS write and lets a
	// dedicated group-commit goroutine fsync, coalescing all appends that
	// land while a sync is in flight into the next one. The durability
	// window is bounded by one fsync latency.
	FsyncGroup FsyncMode = iota
	// FsyncAlways fsyncs before every append returns: a block is never
	// acknowledged until it is on stable storage.
	FsyncAlways
	// FsyncOff never fsyncs explicitly (page cache only). For tests and
	// benchmarks; a machine crash can lose arbitrary tails (which recovery
	// then truncates).
	FsyncOff
)

// String names the fsync mode as accepted by ParseFsyncMode.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncGroup:
		return "group"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("fsync(%d)", uint8(m))
	}
}

// ParseFsyncMode parses "always", "group" or "off" ("" → group).
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "group", "":
		return FsyncGroup, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("durable: unknown fsync mode %q (want always|group|off)", s)
	}
}

// Options configures a durable store.
type Options struct {
	// Dir is the server's data directory (created if missing).
	Dir string
	// Fsync selects the WAL flush discipline (default FsyncGroup).
	Fsync FsyncMode
	// SegmentBytes rolls the WAL to a new segment once the current one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// SnapshotEvery writes a shard snapshot every N committed blocks
	// (0 disables automatic snapshots).
	SnapshotEvery int
	// SnapshotKeep retains this many snapshots, pruning older ones
	// (default 2).
	SnapshotKeep int
	// GroupTimeout bounds how long the group-commit goroutine may sit idle
	// between a buffered append and its fsync (default 2ms). Only a
	// backstop: the syncer is also woken by every append.
	GroupTimeout time.Duration
	// PreFsyncHook, when non-nil, runs immediately before every fsync of
	// the WAL file, with the height the next appended block would carry
	// (i.e. the number of records written so far). Returning a non-nil
	// error aborts the sync and fails the WAL with that error, sticky —
	// the simulation harness (internal/sim) uses this as its "pre-fsync"
	// crash point: everything written before the hook stays on disk for
	// recovery to judge, nothing after it lands. The hook may be invoked
	// from the group-commit goroutine and must be safe for concurrent
	// use. It runs with the WAL lock held: it must not call back into the
	// store (Fail/Sync/Append) — returning an error IS the freeze.
	PreFsyncHook func(nextHeight uint64) error
	// Obs supplies the observability bundle; nil disables exposition (the
	// WAL still works, its instruments are just detached). The WAL
	// registers fides_wal_append_seconds and fides_wal_fsync_seconds.
	Obs *obs.Obs
}

func (o *Options) applyDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotKeep <= 0 {
		o.SnapshotKeep = 2
	}
	if o.GroupTimeout <= 0 {
		o.GroupTimeout = 2 * time.Millisecond
	}
}
