package durable

import (
	"fmt"
	"sync"

	"repro/internal/ledger"
)

// OrderedPersister enforces strict height ordering on the persist queue in
// front of an underlying ledger.Persister (typically a *Store, whose WAL
// also refuses any append that does not extend it).
//
// The pipelined commit path keeps several blocks in flight, and although
// the cohort state machine already applies decisions — and therefore
// persists blocks — in strict height order, this gate makes the ordering a
// checked local invariant of the durability layer rather than a property
// inherited from the caller's scheduling.
//
// A block above the expected height is REFUSED, not staged: Persist is the
// write-ahead hook called under ledger.Log's lock, so its return is the
// durability acknowledgment — buffering the block and returning nil would
// acknowledge a write the WAL does not hold (lost on crash), and blocking
// until the hole fills would deadlock, because the hole-filling append
// needs the same log lock the waiter holds. An out-of-order arrival here
// is by construction a commit-layer scheduling bug, and the only sound
// response is a loud error that fails that commit.
type OrderedPersister struct {
	next ledger.Persister

	mu     sync.Mutex
	height uint64 // next height to hand to the underlying persister
	sticky error  // first underlying failure; all later appends refuse
}

// NewOrderedPersister wraps next so blocks persist in strictly increasing,
// dense height order starting at nextHeight (the length of the recovered
// WAL).
func NewOrderedPersister(next ledger.Persister, nextHeight uint64) *OrderedPersister {
	return &OrderedPersister{next: next, height: nextHeight}
}

// Persist hands the block to the underlying persister iff it is exactly
// the next height; anything else is refused with ErrOutOfOrder. An
// underlying failure is sticky, matching the WAL's own failed-fsync
// discipline.
func (o *OrderedPersister) Persist(b *ledger.Block) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.sticky != nil {
		return o.sticky
	}
	if b.Height != o.height {
		return fmt.Errorf("%w: block %d, next unpersisted height %d", ErrOutOfOrder, b.Height, o.height)
	}
	if err := o.next.Persist(b); err != nil {
		o.sticky = err
		return err
	}
	o.height++
	return nil
}

// NextHeight reports the next height the gate will accept.
func (o *OrderedPersister) NextHeight() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.height
}
