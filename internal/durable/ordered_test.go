package durable

import (
	"errors"
	"testing"

	"repro/internal/ledger"
)

// recordingPersister captures the height order in which blocks reach it.
type recordingPersister struct {
	heights []uint64
	fail    error
}

func (r *recordingPersister) Persist(b *ledger.Block) error {
	if r.fail != nil {
		return r.fail
	}
	r.heights = append(r.heights, b.Height)
	return nil
}

func blockAt(h uint64) *ledger.Block { return &ledger.Block{Height: h} }

// TestOrderedPersisterPassesDenseSequence: in-order appends flow through
// and advance the gate.
func TestOrderedPersisterPassesDenseSequence(t *testing.T) {
	rec := &recordingPersister{}
	o := NewOrderedPersister(rec, 0)
	for h := uint64(0); h < 3; h++ {
		if err := o.Persist(blockAt(h)); err != nil {
			t.Fatalf("persist height %d: %v", h, err)
		}
	}
	if len(rec.heights) != 3 {
		t.Fatalf("wrote %v, want 0,1,2", rec.heights)
	}
	for i, h := range []uint64{0, 1, 2} {
		if rec.heights[i] != h {
			t.Fatalf("wrote %v, want 0,1,2", rec.heights)
		}
	}
	if got := o.NextHeight(); got != 3 {
		t.Fatalf("NextHeight = %d, want 3", got)
	}
}

// TestOrderedPersisterRefusesGaps: a block above the expected height must
// be refused, never acknowledged — Persist's return IS the write-ahead
// durability acknowledgment, so "staged but not written" has no sound
// answer.
func TestOrderedPersisterRefusesGaps(t *testing.T) {
	rec := &recordingPersister{}
	o := NewOrderedPersister(rec, 0)
	if err := o.Persist(blockAt(2)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("gap accepted: %v, want ErrOutOfOrder", err)
	}
	if len(rec.heights) != 0 {
		t.Fatalf("gap reached the underlying persister: %v", rec.heights)
	}
	// The gate did not advance: the correct next block still flows.
	if err := o.Persist(blockAt(0)); err != nil {
		t.Fatalf("persist after refused gap: %v", err)
	}
}

// TestOrderedPersisterRejectsBelowWatermark: already-persisted heights are
// refused as out-of-order.
func TestOrderedPersisterRejectsBelowWatermark(t *testing.T) {
	o := NewOrderedPersister(&recordingPersister{}, 5)
	if err := o.Persist(blockAt(3)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("height below watermark: %v, want ErrOutOfOrder", err)
	}
	if err := o.Persist(blockAt(5)); err != nil {
		t.Fatalf("exact next height: %v", err)
	}
}

// TestOrderedPersisterStickyError: an underlying failure poisons all later
// appends (matching the WAL's sticky sync-error discipline).
func TestOrderedPersisterStickyError(t *testing.T) {
	boom := errors.New("disk gone")
	rec := &recordingPersister{fail: boom}
	o := NewOrderedPersister(rec, 0)
	if err := o.Persist(blockAt(0)); !errors.Is(err, boom) {
		t.Fatalf("first persist: %v, want %v", err, boom)
	}
	rec.fail = nil // the disk "recovers" — the sticky error must not
	if err := o.Persist(blockAt(0)); !errors.Is(err, boom) {
		t.Fatalf("after sticky error: %v, want %v", err, boom)
	}
}
