package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/ledger"
	"repro/internal/obs"
)

// WAL on-disk format (see docs/protocol.md):
//
//	segment := header record*
//	header  := magic(8)="FIDESWAL" | version(1)=1 | first_height(8 BE)
//	record  := payload_len(4 BE) | crc32c(4 BE, over payload) | payload
//	payload := ledger.Block wire encoding (internal/ledger AppendBinary)
//
// Segments are named wal-<first_height:016x>.seg so lexical order is height
// order. The log is never trimmed: it is the durable form of the
// tamper-proof log, and audits need the full history.
const (
	walMagic   = "FIDESWAL"
	walVersion = 1

	segHeaderLen   = 8 + 1 + 8
	recHeaderLen   = 4 + 4
	maxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors surfaced by the WAL.
var (
	// ErrWALCorrupt marks structural damage that cannot be a torn tail: a
	// bad record in the *interior* of the log, a malformed segment header,
	// or a gap in the segment sequence. Recovery refuses to proceed.
	ErrWALCorrupt = errors.New("durable: WAL corrupt")
	// ErrWALClosed is returned for appends after Close.
	ErrWALClosed = errors.New("durable: WAL closed")
	// ErrOutOfOrder is returned when an appended block does not carry the
	// next expected height.
	ErrOutOfOrder = errors.New("durable: block height does not extend the WAL")
)

func segmentName(firstHeight uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstHeight)
}

// ScanReport describes what opening the WAL found on disk.
type ScanReport struct {
	// Segments is the number of WAL segment files.
	Segments int
	// Records is the number of structurally valid records recovered.
	Records int
	// TornTail reports that a torn tail (short or CRC-failing final
	// records — a crash artifact) was detected and truncated.
	TornTail bool
	// TornBytes is the number of bytes the truncation dropped.
	TornBytes int64
}

// WAL is the segmented append-only write-ahead log of committed blocks. It
// is safe for concurrent use, though Fides appends blocks sequentially.
type WAL struct {
	opts Options

	// Commit-path durability instruments (detached when Options.Obs is
	// nil, so Observe is always safe).
	appendHist *obs.Histogram
	fsyncHist  *obs.Histogram

	mu         sync.Mutex
	f          *os.File
	size       int64
	nextHeight uint64
	encBuf     []byte
	dirty      bool
	syncErr    error
	closed     bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// openWAL scans dir, truncates any torn tail, positions the append cursor,
// and returns the structurally valid record payloads in height order.
// Cryptographic verification of the payloads is the recovery layer's job.
func openWAL(opts Options) (*WAL, [][]byte, ScanReport, error) {
	var report ScanReport
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, report, fmt.Errorf("durable: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(opts.Dir, "wal-*.seg"))
	if err != nil {
		return nil, nil, report, fmt.Errorf("durable: %w", err)
	}
	sort.Strings(names)
	report.Segments = len(names)

	w := &WAL{
		opts:       opts,
		appendHist: opts.Obs.Histogram("fides_wal_append_seconds", "WAL block append latency, including the inline fsync under fsync=always.", nil),
		fsyncHist:  opts.Obs.Histogram("fides_wal_fsync_seconds", "WAL file fsync latency (inline, group-commit and forced syncs).", nil),
		wake:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}

	var payloads [][]byte
	for i, name := range names {
		isLast := i == len(names)-1
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, nil, report, fmt.Errorf("durable: read %s: %w", name, err)
		}
		segPayloads, validLen, err := parseSegment(name, data, uint64(len(payloads)), isLast)
		if err != nil {
			return nil, nil, report, err
		}
		payloads = append(payloads, segPayloads...)
		if int64(validLen) != int64(len(data)) {
			// Torn tail: truncate the crash artifact so appends resume
			// directly after the last intact record.
			report.TornTail = true
			report.TornBytes += int64(len(data) - validLen)
			if err := os.Truncate(name, int64(validLen)); err != nil {
				return nil, nil, report, fmt.Errorf("durable: truncate torn tail of %s: %w", name, err)
			}
			if validLen == 0 {
				// Even the header was torn; rewrite it so the segment stays
				// well formed.
				if err := writeSegmentHeader(name, uint64(len(payloads))); err != nil {
					return nil, nil, report, err
				}
			}
		}
	}
	report.Records = len(payloads)
	w.nextHeight = uint64(len(payloads))

	if len(names) == 0 {
		if err := w.createSegmentLocked(0); err != nil {
			return nil, nil, report, err
		}
	} else {
		last := names[len(names)-1]
		f, err := os.OpenFile(last, os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, report, fmt.Errorf("durable: open %s: %w", last, err)
		}
		size, err := f.Seek(0, 2)
		if err != nil {
			_ = f.Close()
			return nil, nil, report, fmt.Errorf("durable: seek %s: %w", last, err)
		}
		w.f, w.size = f, size
	}

	if w.opts.Fsync == FsyncGroup {
		go w.syncLoop()
	} else {
		close(w.done)
	}
	return w, payloads, report, nil
}

// parseSegment validates one segment's structure and returns its record
// payloads plus the byte length of the valid prefix. A structural failure
// (short header, short record, CRC mismatch) in the last segment is a torn
// tail — the valid prefix is kept and the rest will be truncated; anywhere
// else the same failure is interior corruption and the scan refuses.
func parseSegment(name string, data []byte, expectFirst uint64, isLast bool) ([][]byte, int, error) {
	corrupt := func(off int, what string) error {
		return fmt.Errorf("%w: %s at %s offset %d in non-final segment",
			ErrWALCorrupt, what, filepath.Base(name), off)
	}

	if len(data) < segHeaderLen {
		if isLast {
			return nil, 0, nil // torn segment creation
		}
		return nil, 0, corrupt(0, "short header")
	}
	if string(data[:8]) != walMagic {
		return nil, 0, fmt.Errorf("%w: %s has bad magic", ErrWALCorrupt, filepath.Base(name))
	}
	if data[8] != walVersion {
		return nil, 0, fmt.Errorf("%w: %s has unsupported format version %d", ErrWALCorrupt, filepath.Base(name), data[8])
	}
	first := binary.BigEndian.Uint64(data[9:])
	if first != expectFirst {
		return nil, 0, fmt.Errorf("%w: %s declares first height %d, want %d (missing or reordered segment)",
			ErrWALCorrupt, filepath.Base(name), first, expectFirst)
	}

	var payloads [][]byte
	off := segHeaderLen
	for off < len(data) {
		rem := len(data) - off
		bad := ""
		var l uint32
		switch {
		case rem < recHeaderLen:
			bad = "short record header"
		default:
			l = binary.BigEndian.Uint32(data[off:])
			switch {
			case l == 0 || l > maxRecordBytes:
				bad = fmt.Sprintf("implausible record length %d", l)
			case uint64(l) > uint64(rem-recHeaderLen):
				bad = "short record body"
			case crc32.Checksum(data[off+recHeaderLen:off+recHeaderLen+int(l)], crcTable) != binary.BigEndian.Uint32(data[off+4:]):
				bad = "record CRC mismatch"
			}
		}
		if bad != "" {
			// A torn tail is always a *suffix*. Whatever field the damage
			// hit (length, body, CRC), an intact record anywhere behind the
			// failure point proves the damage is interior — corruption of
			// committed data, never a crash artifact — and truncating would
			// silently roll back acknowledged blocks.
			if isLast && !anyValidRecordAfter(data, off+1) {
				return payloads, off, nil // torn tail: keep the valid prefix
			}
			if isLast {
				return nil, 0, fmt.Errorf("%w: %s at %s offset %d with intact records after it",
					ErrWALCorrupt, bad, filepath.Base(name), off)
			}
			return nil, 0, corrupt(off, bad)
		}
		payloads = append(payloads, data[off+recHeaderLen:off+recHeaderLen+int(l)])
		off += recHeaderLen + int(l)
	}
	return payloads, off, nil
}

// anyValidRecordAfter reports whether a structurally valid record starts at
// any offset ≥ from. It runs only on a segment's failure path, so the
// byte-by-byte scan costs nothing in healthy operation; a 2⁻³² accidental
// CRC match in torn garbage merely fails safe (startup refuses and the
// operator inspects, instead of data being truncated).
func anyValidRecordAfter(data []byte, from int) bool {
	if from < 0 {
		return false
	}
	for off := from; off <= len(data)-recHeaderLen; off++ {
		l := binary.BigEndian.Uint32(data[off:])
		if l == 0 || l > maxRecordBytes || uint64(l) > uint64(len(data)-off-recHeaderLen) {
			continue
		}
		if crc32.Checksum(data[off+recHeaderLen:off+recHeaderLen+int(l)], crcTable) == binary.BigEndian.Uint32(data[off+4:]) {
			return true
		}
	}
	return false
}

func writeSegmentHeader(name string, firstHeight uint64) error {
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, walMagic...)
	hdr = append(hdr, walVersion)
	hdr = binary.BigEndian.AppendUint64(hdr, firstHeight)
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		return fmt.Errorf("durable: write header %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// createSegmentLocked starts a fresh segment for blocks from firstHeight.
func (w *WAL) createSegmentLocked(firstHeight uint64) error {
	name := filepath.Join(w.opts.Dir, segmentName(firstHeight))
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create segment: %w", err)
	}
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, walMagic...)
	hdr = append(hdr, walVersion)
	hdr = binary.BigEndian.AppendUint64(hdr, firstHeight)
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		return fmt.Errorf("durable: write segment header: %w", err)
	}
	if w.opts.Fsync != FsyncOff {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("durable: sync segment header: %w", err)
		}
		syncDir(w.opts.Dir)
	}
	w.f, w.size = f, segHeaderLen
	return nil
}

// syncDir makes a directory entry durable (best effort: some filesystems
// reject fsync on directories, which is not worth failing a commit over).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// fsyncFileLocked is the single timed fsync path: every WAL fsync (inline,
// group-commit, forced) goes through it so fides_wal_fsync_seconds covers
// them all.
func (w *WAL) fsyncFileLocked() error {
	start := time.Now()
	err := w.f.Sync()
	w.fsyncHist.ObserveSince(start)
	return err
}

// Append writes one block to the WAL under the configured fsync discipline.
// The block must extend the log (height == NextHeight).
func (w *WAL) Append(b *ledger.Block) error {
	start := time.Now()
	defer func() { w.appendHist.ObserveSince(start) }()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	if w.syncErr != nil {
		return fmt.Errorf("durable: WAL is failed: %w", w.syncErr)
	}
	if b.Height != w.nextHeight {
		return fmt.Errorf("%w: got height %d, want %d", ErrOutOfOrder, b.Height, w.nextHeight)
	}

	// Roll to a fresh segment before the record that would overflow — but
	// never roll a segment that holds no records yet (its name would
	// collide with the next one, and an all-header chain helps nobody).
	if w.size >= w.opts.SegmentBytes && w.size > segHeaderLen {
		if err := w.rollLocked(); err != nil {
			return err
		}
	}

	// record := len | crc | payload, built in one reused buffer.
	buf := append(w.encBuf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	buf = b.AppendBinary(buf)
	payload := buf[recHeaderLen:]
	binary.BigEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	w.encBuf = buf

	if _, err := w.f.Write(buf); err != nil {
		w.syncErr = err
		return fmt.Errorf("durable: append block %d: %w", b.Height, err)
	}
	w.size += int64(len(buf))
	w.nextHeight++

	switch w.opts.Fsync {
	case FsyncAlways:
		if err := w.preFsyncLocked(); err != nil {
			return fmt.Errorf("durable: fsync block %d: %w", b.Height, err)
		}
		if err := w.fsyncFileLocked(); err != nil {
			w.syncErr = err
			return fmt.Errorf("durable: fsync block %d: %w", b.Height, err)
		}
	case FsyncGroup:
		w.dirty = true
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// rollLocked finishes the current segment and starts the next one.
func (w *WAL) rollLocked() error {
	if w.opts.Fsync != FsyncOff {
		if err := w.preFsyncLocked(); err != nil {
			return fmt.Errorf("durable: sync on roll: %w", err)
		}
		if err := w.fsyncFileLocked(); err != nil {
			w.syncErr = err
			return fmt.Errorf("durable: sync on roll: %w", err)
		}
		w.dirty = false
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durable: close segment: %w", err)
	}
	return w.createSegmentLocked(w.nextHeight)
}

// syncLoop is the group-commit goroutine: every append wakes it, and every
// pass flushes all appends buffered so far, so concurrent appends share one
// fsync. GroupTimeout is only a backstop against a lost wakeup.
func (w *WAL) syncLoop() {
	defer close(w.done)
	ticker := time.NewTicker(w.opts.GroupTimeout)
	defer ticker.Stop()
	for {
		select {
		case <-w.wake:
		case <-ticker.C:
		case <-w.stop:
			return
		}
		w.mu.Lock()
		if w.dirty && w.syncErr == nil && !w.closed {
			if err := w.preFsyncLocked(); err == nil {
				if err := w.fsyncFileLocked(); err != nil {
					w.syncErr = err
				}
				w.dirty = false
			}
		}
		w.mu.Unlock()
	}
}

// NextHeight returns the height the next appended block must carry.
func (w *WAL) NextHeight() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextHeight
}

// Sync forces an fsync of the current segment (used by tests and Close).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncNowLocked()
}

func (w *WAL) syncNowLocked() error {
	if w.closed || w.f == nil {
		return ErrWALClosed
	}
	if w.syncErr != nil {
		return w.syncErr
	}
	if err := w.preFsyncLocked(); err != nil {
		return err
	}
	if err := w.fsyncFileLocked(); err != nil {
		w.syncErr = err
		return err
	}
	w.dirty = false
	return nil
}

// preFsyncLocked runs the pre-fsync hook; a hook error fails the WAL
// (sticky) without touching the file — the crash-point semantics.
func (w *WAL) preFsyncLocked() error {
	hook := w.opts.PreFsyncHook
	if hook == nil {
		return nil
	}
	if err := hook(w.nextHeight); err != nil {
		if w.syncErr == nil {
			w.syncErr = err
		}
		return err
	}
	return nil
}

// Fail marks the WAL as failed with err: every subsequent append or fsync
// returns it, while the bytes already written stay on disk. The first
// failure wins (matching the sticky sync-error discipline).
func (w *WAL) Fail(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.syncErr == nil {
		w.syncErr = err
	}
}

// Close stops the group-commit goroutine, flushes, and closes the segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()

	close(w.stop)
	<-w.done

	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	if w.f == nil {
		return nil
	}
	var err error
	if w.syncErr == nil {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
