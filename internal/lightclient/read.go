package lightclient

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/identity"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// Value is one verified read result: the item state plus the block height
// whose committed shard root authenticated it.
type Value struct {
	ID     txn.ItemID
	Value  []byte
	RTS    txn.Timestamp
	WTS    txn.Timestamp
	Height uint64
}

// staleRetries bounds the re-issues of a read whose response was verified
// against a root that newer headers (learned during the same verification)
// superseded. With concurrent writers this is a benign race — the server
// answered honestly at its then-tip — so the read is retried rather than
// failed; a server that *keeps* serving superseded roots still fails with
// ErrStaleRead.
const staleRetries = 3

// ReadVerified performs proof-carrying reads of the items' current values.
// Items may span shards; one batched request is issued per owning server
// and each response is verified against the header cache before any value
// is returned. Results are in request order.
//
// Freshness is relative to the client's sync horizon: a response is
// accepted only if it authenticates against the newest root the client
// knows for that shard, and the client extends its horizon whenever a
// response references a newer height than its cache. A server replaying
// old-but-once-committed state is detected the moment the client has seen
// any newer header — at the latest, after its next Sync.
func (c *Client) ReadVerified(ctx context.Context, ids ...txn.ItemID) ([]Value, error) {
	return c.read(ctx, ids, false, 0)
}

// ReadPinned performs proof-carrying snapshot reads at a pinned block
// height: values are authenticated against the newest shard root committed
// at or below the pin (multi-versioned shards when the pin predates the
// newest root). The staleness check is disabled — a pinned read asks for
// history on purpose.
func (c *Client) ReadPinned(ctx context.Context, height uint64, ids ...txn.ItemID) ([]Value, error) {
	return c.read(ctx, ids, true, height)
}

func (c *Client) read(ctx context.Context, ids []txn.ItemID, pinned bool, pin uint64) ([]Value, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	// Group by owning server (deduplicated — the batched proof rejects
	// duplicate leaves), preserving request order for the result.
	byOwner := make(map[identity.NodeID][]txn.ItemID)
	owners := make([]identity.NodeID, 0, 1)
	queued := make(map[txn.ItemID]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := queued[id]; dup {
			continue
		}
		queued[id] = struct{}{}
		owner, ok := c.layout.Owner(id)
		if !ok {
			return nil, fmt.Errorf("lightclient: no owner for item %s", id)
		}
		if _, seen := byOwner[owner]; !seen {
			owners = append(owners, owner)
		}
		byOwner[owner] = append(byOwner[owner], id)
	}

	got := make(map[txn.ItemID]Value, len(ids))
	for _, owner := range owners {
		vals, err := c.readShard(ctx, owner, byOwner[owner], pinned, pin)
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			got[v.ID] = v
		}
	}
	out := make([]Value, len(ids))
	for i, id := range ids {
		out[i] = got[id]
	}
	return out, nil
}

// readShard reads one batch from one shard, retrying benign staleness
// races (see staleRetries).
func (c *Client) readShard(ctx context.Context, owner identity.NodeID, ids []txn.ItemID, pinned bool, pin uint64) ([]Value, error) {
	var lastErr error
	for attempt := 0; attempt <= staleRetries; attempt++ {
		if attempt > 0 {
			c.staleRetries.Inc()
		}
		vals, err := c.readShardOnce(ctx, owner, ids, pinned, pin)
		if err == nil || !errors.Is(err, ErrStaleRead) || pinned {
			return vals, err
		}
		lastErr = err
	}
	return nil, lastErr
}

func (c *Client) readShardOnce(ctx context.Context, owner identity.NodeID, ids []txn.ItemID, pinned bool, pin uint64) ([]Value, error) {
	req := &wire.VerifiedReadReq{IDs: ids, Pinned: pinned, AtHeight: pin}
	msg, err := transport.NewMessage(wire.MsgVerifiedRead, req)
	if err != nil {
		return nil, err
	}
	resp, err := c.tr.Call(ctx, owner, msg)
	if err != nil {
		return nil, fmt.Errorf("lightclient: verified read at %s: %w", owner, err)
	}
	var vr wire.VerifiedReadResp
	if err := resp.Decode(&vr); err != nil {
		return nil, err
	}
	c.proofBytes.Observe(float64(len(vr.Proof.AppendBinary(nil))))
	return c.VerifyRead(ctx, owner, ids, &vr, pinned, pin)
}

// VerifyRead authenticates a verified-read response against the header
// cache and the shard layout, returning the accepted values. It is
// exported so custom read paths (sessions, replicated readers) can verify
// responses they fetched themselves. The checks, in order, and the errors
// they fail with:
//
//  1. The claimed height is covered by the (possibly just extended)
//     header cache and carries a root for the owning server — else
//     ErrUnverifiable / ErrBadProof.
//  2. Freshness (unpinned reads): the claimed height is the newest root
//     height the client knows for this shard — else ErrStaleRead. For
//     pinned reads: the claimed height is the newest root height at or
//     below the pin — else ErrBadProof.
//  3. Proof shape: items in canonical leaf order matching the request
//     set, leaf indices matching the layout, tree depth matching the
//     shard size — else ErrBadProof.
//  4. Content: leaves recomputed from the returned values fold through
//     the proof to the committed root — else ErrIncorrectRead.
func (c *Client) VerifyRead(ctx context.Context, owner identity.NodeID, ids []txn.ItemID, vr *wire.VerifiedReadResp, pinned bool, pin uint64) ([]Value, error) {
	// 1. Cover the claimed height. A response may reference blocks newer
	// than the cache; extend the horizon before judging it. If the
	// configured header source is itself behind the claimed height (a
	// benign race — the owner can apply a block before the source does),
	// sync from the owner: it claimed the height, so it must be able to
	// prove it, and everything it serves is verified like any other
	// header.
	if c.SyncedHeight() <= vr.Height {
		if _, err := c.Sync(ctx); err != nil {
			return nil, err
		}
		if c.SyncedHeight() <= vr.Height {
			if _, err := c.SyncFrom(ctx, owner); err != nil {
				return nil, err
			}
		}
	}
	c.mu.RLock()
	h := c.headerLocked(vr.Height)
	latest, haveRoot := c.latestRootLocked(owner, ^uint64(0))
	c.mu.RUnlock()
	if !haveRoot {
		return nil, fmt.Errorf("%w: owner %s", ErrUnverifiable, owner)
	}
	if h == nil {
		return nil, fmt.Errorf("%w: height %d outside cached chain", ErrUnverifiable, vr.Height)
	}
	root, ok := h.Roots[owner]
	if !ok {
		return nil, fmt.Errorf("%w: height %d carries no root for %s", ErrBadProof, vr.Height, owner)
	}

	// 2. Freshness.
	if pinned {
		c.mu.RLock()
		want, okPin := c.latestRootLocked(owner, pin)
		c.mu.RUnlock()
		if !okPin {
			return nil, fmt.Errorf("%w: no root for %s at or below height %d", ErrUnverifiable, owner, pin)
		}
		if vr.Height != want {
			return nil, fmt.Errorf("%w: pinned read answered at height %d, want %d", ErrBadProof, vr.Height, want)
		}
	} else if vr.Height != latest {
		return nil, fmt.Errorf("%w: answered at height %d, newest known root at %d", ErrStaleRead, vr.Height, latest)
	}

	// 3+4. Proof shape against the layout, then fold to the committed
	// root (the pure core shared with CheckReadProof).
	sl, err := c.shardFor(owner)
	if err != nil {
		return nil, err
	}
	if err := sl.checkProof(owner, ids, vr, root); err != nil {
		return nil, err
	}

	out := make([]Value, len(vr.Items))
	for i := range vr.Items {
		it := &vr.Items[i]
		out[i] = Value{
			ID:     it.ID,
			Value:  append([]byte(nil), it.Value...),
			RTS:    it.RTS,
			WTS:    it.WTS,
			Height: vr.Height,
		}
	}
	c.readsVerified.Add(uint64(len(out)))
	return out, nil
}
