// Package lightclient implements a client-side verifier that makes read
// integrity an *online* property of Fides instead of an audit-time one.
//
// The paper's trust model (§3.3, Lemma 1) detects an incorrect read only
// when an auditor later replays the logs; a client serving live traffic
// gets no integrity guarantee at read time, even though every shard root
// is already committed in a co-signed block. The light client closes that
// gap with two pieces:
//
//  1. Header sync. Every block's collectively signed portion is its
//     header (ledger.Header): constant-size, hash-chained, and carrying
//     the Merkle roots of all involved shards. The light client pages
//     headers from any server (wire.FetchHeadersReq), verifies the CoSi
//     signature of the full server set and the hash chain on each, and
//     caches them. Sync is resumable from any trusted height, so a
//     restarting client needs only a checkpoint ⟨height, hash⟩, not the
//     transaction history.
//
//  2. Proof-carrying reads. A verified read (wire.VerifiedReadReq)
//     returns value + timestamps + a batched Merkle proof + the block
//     height whose committed shard root authenticates them. The client
//     recomputes the leaf from the returned value and folds the proof up
//     to the root recorded in its header cache. A stale value, a forged
//     proof, or a forged header each fail a distinct check — the
//     StaleReads fault of paper §5 Scenario 1 is caught at read time,
//     not at the next audit.
//
// Because verification needs only headers and the static shard layout,
// untrusting readers scale independently of the commit path: any number
// of light clients can verify reads against any server without adding a
// byte to TFCommit's critical path.
package lightclient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/peer"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// Layout resolves the static shard layout: which server stores an item and
// which items a server stores (in unspecified order; the light client
// derives the canonical Merkle leaf order itself). core.Directory and
// deploy descriptors implement it.
type Layout interface {
	Owner(id txn.ItemID) (identity.NodeID, bool)
	ShardItems(srv identity.NodeID) []txn.ItemID
}

// Config assembles a light client. The shared peer wiring — registry,
// transport, server set, header-sync source, page size (default 512) and
// the collective-signature verification plane — is the embedded
// peer.PeerConfig.
type Config struct {
	peer.PeerConfig

	// Layout is the item→server directory and shard layout.
	Layout Layout

	// CheckpointHeight/CheckpointHash resume the header chain from a
	// trusted checkpoint: the hash of the block at CheckpointHeight,
	// obtained out of band (e.g. from a previous run of this client).
	// Headers are then synced from CheckpointHeight+1 and roots committed
	// at or below the checkpoint are unknown to the client. A nil hash
	// means a cold sync from height 0.
	CheckpointHeight uint64
	CheckpointHash   []byte
}

// Verification errors. Each names the check that failed, so a caller (or
// test) can tell a stale value from a forged proof from a forged header.
var (
	// ErrBadHeader: a synced header failed verification — broken hash
	// chain, wrong or incomplete signer set, or an invalid collective
	// signature. The header source is lying or corrupted.
	ErrBadHeader = errors.New("lightclient: header failed verification")
	// ErrStaleRead: the response authenticates against a superseded shard
	// root — the server served old state as if it were current.
	ErrStaleRead = errors.New("lightclient: read served against a superseded shard root")
	// ErrBadProof: the proof does not fit the shard layout — wrong leaf
	// indices, wrong tree depth, wrong item set, or a height that carries
	// no root for the shard's owner.
	ErrBadProof = errors.New("lightclient: proof does not match the shard layout")
	// ErrIncorrectRead: the returned values fail to reproduce the
	// committed root — the online form of the auditor's
	// FindingIncorrectRead (Lemma 1).
	ErrIncorrectRead = errors.New("lightclient: value and proof do not reproduce the committed shard root")
	// ErrUnverifiable: the client's header cache holds no committed root
	// for the shard (nothing committed yet, or the root predates the
	// checkpoint).
	ErrUnverifiable = errors.New("lightclient: no committed root known for shard")
)

// shardLayout is the derived per-shard verification context: the canonical
// leaf index of every item and the Merkle tree depth, both computable from
// the static layout alone.
type shardLayout struct {
	idx   map[txn.ItemID]int
	depth int
}

// Client is a light client: a header-chain cache plus read verification.
// It is safe for concurrent use; many sessions may share one Client (and
// should, to share the header cache).
type Client struct {
	reg       *identity.Registry
	tr        transport.Transport
	layout    Layout
	servers   []identity.NodeID
	signerSet map[identity.NodeID]struct{}
	source    identity.NodeID
	pageSize  uint32
	verifier  ledger.CoSigVerifier

	mu          sync.RWMutex
	base        uint64 // height of headers[0]
	headers     []*ledger.Header
	prevHash    []byte                       // hash of the last cached header (checkpoint hash before first sync)
	rootHeights map[identity.NodeID][]uint64 // ascending heights carrying a root, per server
	shards      map[identity.NodeID]*shardLayout

	// Registry-backed counters; Stats() is a thin view over these.
	headersVerified *obs.Counter
	syncPages       *obs.Counter
	readsVerified   *obs.Counter
	staleRetries    *obs.Counter
	proofBytes      *obs.Histogram
}

// Stats counts the light client's work (read by fides-client -verify and
// the bench harness).
type Stats struct {
	// HeadersVerified counts headers accepted into the cache.
	HeadersVerified int
	// SyncPages counts FetchHeaders round trips.
	SyncPages int
	// ReadsVerified counts successfully verified items.
	ReadsVerified int
	// StaleRetries counts reads re-issued because the first response was
	// superseded while the client synced (a benign race under write load).
	StaleRetries int
}

// New creates a light client. With a checkpoint configured, the chain
// resumes from it; otherwise the first Sync cold-starts at height 0.
func New(cfg Config) (*Client, error) {
	if cfg.Layout == nil {
		return nil, errors.New("lightclient: config requires registry, transport and layout")
	}
	if err := cfg.Validate("lightclient"); err != nil {
		return nil, err
	}
	cfg.ApplyDefaults(512)
	o := cfg.Obs
	c := &Client{
		reg:         cfg.Registry,
		tr:          cfg.Transport,
		layout:      cfg.Layout,
		servers:     append([]identity.NodeID(nil), cfg.Servers...),
		signerSet:   make(map[identity.NodeID]struct{}, len(cfg.Servers)),
		source:      cfg.Source,
		pageSize:    cfg.PageSize,
		verifier:    cfg.Verifier,
		rootHeights: make(map[identity.NodeID][]uint64),
		shards:      make(map[identity.NodeID]*shardLayout),

		headersVerified: o.Counter("fides_lightclient_headers_verified_total", "Headers accepted into the light-client cache after co-sign and chain checks."),
		syncPages:       o.Counter("fides_lightclient_sync_pages_total", "FetchHeaders round trips."),
		readsVerified:   o.Counter("fides_lightclient_reads_verified_total", "Items whose values reproduced a committed shard root."),
		staleRetries:    o.Counter("fides_lightclient_stale_retries_total", "Verified reads re-issued because the first response was superseded mid-sync."),
		proofBytes:      o.Histogram("fides_lightclient_proof_bytes", "Verified-read Merkle proof size in bytes.", obs.SizeBuckets),
	}
	for _, id := range cfg.Servers {
		c.signerSet[id] = struct{}{}
	}
	if cfg.CheckpointHash != nil {
		c.base = cfg.CheckpointHeight + 1
		c.prevHash = append([]byte(nil), cfg.CheckpointHash...)
	}
	return c, nil
}

// Stats returns a snapshot of the client's counters. It is a thin view
// over the registry-backed instruments that also feed /metrics
// (fides_lightclient_*).
func (c *Client) Stats() Stats {
	return Stats{
		HeadersVerified: int(c.headersVerified.Value()),
		SyncPages:       int(c.syncPages.Value()),
		ReadsVerified:   int(c.readsVerified.Value()),
		StaleRetries:    int(c.staleRetries.Value()),
	}
}

// SyncedHeight returns the exclusive upper bound of the cached chain (the
// height the next header would have); 0 before any sync on a cold start.
func (c *Client) SyncedHeight() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.base + uint64(len(c.headers))
}

// Checkpoint returns the trusted resume point of the current cache: the
// height and hash of the newest verified header. A future client
// constructed with this checkpoint continues the chain without re-syncing
// history. ok is false before anything was verified.
func (c *Client) Checkpoint() (height uint64, hash []byte, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.headers) == 0 {
		return 0, nil, false
	}
	last := c.headers[len(c.headers)-1]
	return last.Height, append([]byte(nil), c.prevHash...), true
}

// Header returns the cached header at a height (nil when outside the
// cache).
func (c *Client) Header(height uint64) *ledger.Header {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.headerLocked(height)
}

func (c *Client) headerLocked(height uint64) *ledger.Header {
	if height < c.base || height >= c.base+uint64(len(c.headers)) {
		return nil
	}
	return c.headers[height-c.base]
}

// LatestRootHeight returns the newest cached height at which srv committed
// a shard root (ok false when none is known).
func (c *Client) LatestRootHeight(srv identity.NodeID) (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.latestRootLocked(srv, ^uint64(0))
}

// latestRootLocked returns the newest root height for srv at or below max.
func (c *Client) latestRootLocked(srv identity.NodeID, max uint64) (uint64, bool) {
	hs := c.rootHeights[srv]
	i := sort.Search(len(hs), func(i int) bool { return hs[i] > max })
	if i == 0 {
		return 0, false
	}
	return hs[i-1], true
}

// Sync pages headers from the configured source until the cache reaches
// the source's tip, verifying each header's chain position, signer set and
// collective signature before accepting it. It returns the synced height.
// Sync never partially accepts a page: the first bad header aborts with
// ErrBadHeader and leaves the cache at the last verified height, so a
// retry against an honest source resumes exactly there.
func (c *Client) Sync(ctx context.Context) (uint64, error) {
	return c.SyncFrom(ctx, c.source)
}

// SyncFrom is Sync against an explicit header source.
func (c *Client) SyncFrom(ctx context.Context, src identity.NodeID) (uint64, error) {
	for {
		c.mu.RLock()
		from := c.base + uint64(len(c.headers))
		c.mu.RUnlock()

		req := &wire.FetchHeadersReq{From: from, Max: c.pageSize}
		msg, err := transport.NewMessage(wire.MsgFetchHeaders, req)
		if err != nil {
			return 0, err
		}
		resp, err := c.tr.Call(ctx, src, msg)
		if err != nil {
			return 0, fmt.Errorf("lightclient: fetch headers from %s: %w", src, err)
		}
		var hr wire.FetchHeadersResp
		if err := resp.Decode(&hr); err != nil {
			return 0, err
		}
		if len(hr.Headers) > 0 {
			if err := c.appendVerified(hr.Headers, from); err != nil {
				return 0, err
			}
		}
		synced := c.SyncedHeight()
		if len(hr.Headers) == 0 || synced >= hr.Tip {
			return synced, nil
		}
	}
}

// appendVerified verifies a page of headers starting at height from and
// appends them to the cache.
func (c *Client) appendVerified(page []*ledger.Header, from uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if got := c.base + uint64(len(c.headers)); got != from {
		// A concurrent sync advanced the cache; only the overlap needs
		// verification.
		if from > got {
			return fmt.Errorf("%w: page starts at %d, cache at %d", ErrBadHeader, from, got)
		}
		skip := got - from
		if skip >= uint64(len(page)) {
			return nil
		}
		page = page[skip:]
		from = got
	}
	for i, h := range page {
		if h == nil {
			return fmt.Errorf("%w: nil header at height %d", ErrBadHeader, from+uint64(i))
		}
		if err := c.verifyHeaderLocked(h, from+uint64(i)); err != nil {
			return err
		}
		c.headers = append(c.headers, h)
		c.prevHash = h.Hash()
		for srv := range h.Roots {
			c.rootHeights[srv] = append(c.rootHeights[srv], h.Height)
		}
		c.headersVerified.Inc()
	}
	c.syncPages.Inc()
	return nil
}

// verifyHeaderLocked runs the three acceptance checks on one header: chain
// position (height + prev-hash), signer-set completeness, and the
// collective signature.
func (c *Client) verifyHeaderLocked(h *ledger.Header, want uint64) error {
	if h.Height != want {
		return fmt.Errorf("%w: height %d, want %d", ErrBadHeader, h.Height, want)
	}
	if c.prevHash == nil {
		// Cold start: the genesis block carries no prev-hash.
		if h.Height != 0 || len(h.PrevHash) != 0 {
			return fmt.Errorf("%w: genesis header %d has a prev-hash", ErrBadHeader, h.Height)
		}
	} else if !bytes.Equal(h.PrevHash, c.prevHash) {
		return fmt.Errorf("%w: broken hash chain at height %d", ErrBadHeader, h.Height)
	}
	if len(h.Signers) != len(c.signerSet) {
		return fmt.Errorf("%w: header %d signed by %d of %d servers", ErrBadHeader, h.Height, len(h.Signers), len(c.signerSet))
	}
	seen := make(map[identity.NodeID]struct{}, len(h.Signers))
	for _, id := range h.Signers {
		if _, ok := c.signerSet[id]; !ok {
			return fmt.Errorf("%w: header %d signed by unknown server %s", ErrBadHeader, h.Height, id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%w: header %d lists signer %s twice", ErrBadHeader, h.Height, id)
		}
		seen[id] = struct{}{}
	}
	if err := ledger.VerifyHeaderSigWith(c.verifier, h); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	return nil
}

// shardFor returns (building on first use) the verification context of a
// server's shard.
func (c *Client) shardFor(srv identity.NodeID) (*shardLayout, error) {
	c.mu.RLock()
	sl := c.shards[srv]
	c.mu.RUnlock()
	if sl != nil {
		return sl, nil
	}
	sl, err := buildShardLayout(c.layout, srv)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.shards[srv] = sl
	c.mu.Unlock()
	return sl, nil
}
