package lightclient

import (
	"fmt"
	"sort"

	"repro/internal/identity"
	"repro/internal/merkle"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wire"
)

// buildShardLayout derives the verification context of a server's shard
// from the static layout alone: the canonical leaf index of every item
// (sorted unique ids, exactly as store.NewShard fixes it) and the Merkle
// tree depth.
func buildShardLayout(layout Layout, srv identity.NodeID) (*shardLayout, error) {
	items := layout.ShardItems(srv)
	if len(items) == 0 {
		return nil, fmt.Errorf("lightclient: no layout for shard of %s", srv)
	}
	sorted := append([]txn.ItemID(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sl := &shardLayout{idx: make(map[txn.ItemID]int, len(sorted))}
	n := 0
	for i, id := range sorted {
		if i > 0 && id == sorted[i-1] {
			continue
		}
		sl.idx[id] = n
		n++
	}
	for capacity := 1; capacity < n; capacity *= 2 {
		sl.depth++
	}
	return sl, nil
}

// checkProof runs the layout-relative checks on a verified-read response
// against an explicitly supplied committed shard root: proof shape (item
// set, leaf indices, tree depth — ErrBadProof) and content (leaves
// recomputed from the returned values fold through the proof to the root —
// ErrIncorrectRead). It is pure: no header cache, no network, no
// freshness judgement — the caller chose the root and thereby the height.
func (sl *shardLayout) checkProof(owner identity.NodeID, ids []txn.ItemID, vr *wire.VerifiedReadResp, root []byte) error {
	if len(vr.Items) != len(vr.Proof.Indices) {
		return fmt.Errorf("%w: %d items for %d proof indices", ErrBadProof, len(vr.Items), len(vr.Proof.Indices))
	}
	want := make(map[txn.ItemID]struct{}, len(ids))
	for _, id := range ids {
		want[id] = struct{}{}
	}
	if len(vr.Items) != len(want) {
		return fmt.Errorf("%w: %d items answered for %d requested", ErrBadProof, len(vr.Items), len(want))
	}
	if vr.Proof.Depth != sl.depth {
		return fmt.Errorf("%w: proof depth %d, shard depth %d", ErrBadProof, vr.Proof.Depth, sl.depth)
	}
	leaves := make([][]byte, len(vr.Items))
	for i := range vr.Items {
		it := &vr.Items[i]
		if _, requested := want[it.ID]; !requested {
			return fmt.Errorf("%w: unrequested item %s in response", ErrBadProof, it.ID)
		}
		delete(want, it.ID)
		idx, known := sl.idx[it.ID]
		if !known {
			return fmt.Errorf("%w: item %s not in shard layout of %s", ErrBadProof, it.ID, owner)
		}
		if idx != vr.Proof.Indices[i] {
			return fmt.Errorf("%w: item %s at proof index %d, layout index %d", ErrBadProof, it.ID, vr.Proof.Indices[i], idx)
		}
		leaves[i] = merkle.LeafHash(store.LeafContent(it.ID, it.Value, it.RTS, it.WTS))
	}
	if !merkle.VerifyMultiProof(root, leaves, vr.Proof) {
		return fmt.Errorf("%w: height %d, owner %s", ErrIncorrectRead, vr.Height, owner)
	}
	return nil
}

// CheckReadProof verifies a verified-read response against an explicitly
// supplied committed shard root, with no client state: the shard layout is
// derived from the static layout and the proof is checked for shape
// (ErrBadProof) and content (ErrIncorrectRead). Callers that maintain
// their own verified header chain — the integrity watchtower, offline
// evidence-bundle verification — use this to judge a response without
// owning a Client; Client.VerifyRead adds height coverage and freshness on
// top of the same checks.
func CheckReadProof(layout Layout, owner identity.NodeID, ids []txn.ItemID, vr *wire.VerifiedReadResp, root []byte) error {
	sl, err := buildShardLayout(layout, owner)
	if err != nil {
		return err
	}
	return sl.checkProof(owner, ids, vr, root)
}
