package lightclient

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"testing"

	"repro/internal/cosi"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/schnorr"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// The cluster-level behavior (cold sync, verified reads, fault injection,
// TCP) is covered by internal/core's light-client tests; this file unit
// tests the verifier against hand-crafted chains — including forgeries a
// well-behaved cluster cannot produce, like headers signed by a subset of
// the servers.

// fakeNet dispatches Calls to per-destination handler funcs.
type fakeNet struct {
	handlers map[identity.NodeID]func(msg transport.Message) (transport.Message, error)
}

func (f *fakeNet) Call(_ context.Context, to identity.NodeID, msg transport.Message) (transport.Message, error) {
	h, ok := f.handlers[to]
	if !ok {
		return transport.Message{}, transport.ErrUnknownPeer
	}
	return h(msg)
}
func (f *fakeNet) Self() identity.NodeID { return "test-client" }
func (f *fakeNet) Close() error          { return nil }

// testChain is a fabricated single-shard deployment with real Schnorr
// keys: blocks are co-signed by all (or, for forgeries, some) servers and
// the shard state evolves alongside so proofs are genuine.
type testChain struct {
	t       *testing.T
	reg     *identity.Registry
	privs   map[identity.NodeID]*schnorr.PrivateKey
	servers []identity.NodeID
	items   []txn.ItemID
	shard   *store.Shard
	blocks  []*ledger.Block
	net     *fakeNet
}

func (tc *testChain) Owner(txn.ItemID) (identity.NodeID, bool) { return tc.servers[0], true }
func (tc *testChain) ShardItems(identity.NodeID) []txn.ItemID  { return tc.items }

func newTestChain(t *testing.T, nServers, nItems int) *testChain {
	t.Helper()
	tc := &testChain{
		t:     t,
		reg:   identity.NewRegistry(),
		privs: make(map[identity.NodeID]*schnorr.PrivateKey),
		net:   &fakeNet{handlers: make(map[identity.NodeID]func(transport.Message) (transport.Message, error))},
	}
	for i := 0; i < nServers; i++ {
		id := identity.NodeID(fmt.Sprintf("s%02d", i))
		ident, err := identity.New(id, identity.RoleServer, nil)
		if err != nil {
			t.Fatal(err)
		}
		tc.reg.Register(ident.Public())
		tc.privs[id] = ident.Schnorr
		tc.servers = append(tc.servers, id)
	}
	for i := 0; i < nItems; i++ {
		tc.items = append(tc.items, txn.ItemID(fmt.Sprintf("i%04d", i)))
	}
	tc.shard = store.NewShard(tc.items, func(txn.ItemID) []byte { return []byte("0") }, store.Config{})
	return tc
}

// commit applies a write to the shard and appends a co-signed block whose
// root is the shard's post-apply root. signers defaults to all servers.
func (tc *testChain) commit(item txn.ItemID, val string, ts txn.Timestamp, signers []identity.NodeID) *ledger.Block {
	tc.t.Helper()
	if signers == nil {
		signers = tc.servers
	}
	if err := tc.shard.Apply([]store.Access{{Writes: []txn.WriteEntry{{ID: item, NewVal: []byte(val)}}, TS: ts}}); err != nil {
		tc.t.Fatal(err)
	}
	var prev []byte
	if len(tc.blocks) > 0 {
		prev = tc.blocks[len(tc.blocks)-1].Hash()
	}
	b := &ledger.Block{
		Height:   uint64(len(tc.blocks)),
		Txns:     []ledger.TxnRecord{{TxnID: fmt.Sprintf("t%d", len(tc.blocks)), TS: ts, Writes: []txn.WriteEntry{{ID: item, NewVal: []byte(val)}}}},
		Roots:    map[identity.NodeID][]byte{tc.servers[0]: tc.shard.Root()},
		Decision: ledger.DecisionCommit,
		PrevHash: prev,
		Signers:  append([]identity.NodeID(nil), signers...),
	}
	tc.coSign(b, signers)
	tc.blocks = append(tc.blocks, b)
	return b
}

func (tc *testChain) coSign(b *ledger.Block, signers []identity.NodeID) {
	tc.t.Helper()
	n := len(signers)
	commitments := make([]cosi.Commitment, n)
	secrets := make([]cosi.Secret, n)
	for i := 0; i < n; i++ {
		c, s, err := cosi.Commit(nil)
		if err != nil {
			tc.t.Fatal(err)
		}
		commitments[i], secrets[i] = c, s
	}
	aggV, err := cosi.AggregateCommitments(commitments)
	if err != nil {
		tc.t.Fatal(err)
	}
	keys, err := tc.reg.SchnorrKeys(signers)
	if err != nil {
		tc.t.Fatal(err)
	}
	aggPub, err := cosi.AggregatePublicKeys(keys)
	if err != nil {
		tc.t.Fatal(err)
	}
	ch := cosi.Challenge(aggV, aggPub, b.SigningBytes())
	responses := make([]*big.Int, n)
	for i, id := range signers {
		r, err := cosi.Respond(tc.privs[id], &secrets[i], ch)
		if err != nil {
			tc.t.Fatal(err)
		}
		responses[i] = r
	}
	aggR, err := cosi.AggregateResponses(responses)
	if err != nil {
		tc.t.Fatal(err)
	}
	b.SetCoSig(cosi.Finalize(ch, aggR))
}

// serveHeaders installs an honest FetchHeaders handler on a server,
// optionally transforming the served page.
func (tc *testChain) serveHeaders(srv identity.NodeID, mutate func([]*ledger.Header) []*ledger.Header) {
	tc.net.handlers[srv] = func(msg transport.Message) (transport.Message, error) {
		var req wire.FetchHeadersReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		resp := &wire.FetchHeadersResp{Tip: uint64(len(tc.blocks))}
		max := int(req.Max)
		if max <= 0 {
			max = 512
		}
		for h := req.From; h < uint64(len(tc.blocks)) && len(resp.Headers) < max; h++ {
			resp.Headers = append(resp.Headers, tc.blocks[h].Header())
		}
		if mutate != nil {
			resp.Headers = mutate(resp.Headers)
		}
		return transport.NewMessage(wire.MsgFetchHeaders, resp)
	}
}

// serveReads installs an honest VerifiedRead handler answering from the
// live shard at the newest root height.
func (tc *testChain) serveReads(srv identity.NodeID, mutate func(*wire.VerifiedReadResp)) {
	tc.net.handlers[srv] = func(msg transport.Message) (transport.Message, error) {
		var req wire.VerifiedReadReq
		if err := msg.Decode(&req); err != nil {
			// Not a read: serve headers instead.
			return tc.headersOrError(msg)
		}
		items, mp, err := tc.shard.MultiProof(req.IDs)
		if err != nil {
			return transport.Message{}, err
		}
		resp := &wire.VerifiedReadResp{Height: uint64(len(tc.blocks) - 1), Proof: mp}
		for _, it := range items {
			resp.Items = append(resp.Items, wire.VerifiedItem{ID: it.ID, Value: it.Value, RTS: it.RTS, WTS: it.WTS})
		}
		if mutate != nil {
			mutate(resp)
		}
		return transport.NewMessage(wire.MsgVerifiedRead, resp)
	}
}

func (tc *testChain) headersOrError(msg transport.Message) (transport.Message, error) {
	var req wire.FetchHeadersReq
	if err := msg.Decode(&req); err != nil {
		return transport.Message{}, err
	}
	resp := &wire.FetchHeadersResp{Tip: uint64(len(tc.blocks))}
	for h := req.From; h < uint64(len(tc.blocks)); h++ {
		resp.Headers = append(resp.Headers, tc.blocks[h].Header())
	}
	return transport.NewMessage(wire.MsgFetchHeaders, resp)
}

// newClient builds a light client over the fake network.
func (tc *testChain) newClient(pageSize uint32) *Client {
	tc.t.Helper()
	c, err := New(Config{
		PeerConfig: peer.PeerConfig{
			Registry:  tc.reg,
			Transport: tc.net,
			Servers:   tc.servers,
			PageSize:  pageSize,
		},
		Layout: tc,
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	return c
}

func ts(n uint64) txn.Timestamp { return txn.Timestamp{Time: n, ClientID: 1} }

func TestSyncPagesAndVerifies(t *testing.T) {
	tc := newTestChain(t, 3, 16)
	for i := 0; i < 10; i++ {
		tc.commit(tc.items[i%4], fmt.Sprintf("v%d", i), ts(uint64(i+1)), nil)
	}
	tc.serveHeaders(tc.servers[0], nil)

	lc := tc.newClient(3) // force paging: 10 headers in pages of 3
	tip, err := lc.Sync(context.Background())
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if tip != 10 {
		t.Fatalf("tip %d, want 10", tip)
	}
	st := lc.Stats()
	if st.HeadersVerified != 10 {
		t.Fatalf("verified %d headers, want 10", st.HeadersVerified)
	}
	if st.SyncPages < 4 {
		t.Fatalf("sync used %d pages, want >= 4", st.SyncPages)
	}
	// Sync again: nothing new, no re-verification.
	if _, err := lc.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if lc.Stats().HeadersVerified != 10 {
		t.Fatal("re-sync re-verified headers")
	}
}

// TestSyncRejectsSubsetSigners is the forgery a real cluster never emits:
// a header correctly co-signed, but by fewer than all servers. Accepting
// it would let any single server manufacture "committed" state.
func TestSyncRejectsSubsetSigners(t *testing.T) {
	tc := newTestChain(t, 3, 8)
	tc.commit(tc.items[0], "honest", ts(1), nil)
	tc.commit(tc.items[1], "forged", ts(2), tc.servers[:1]) // signed by s00 alone
	tc.serveHeaders(tc.servers[0], nil)

	lc := tc.newClient(0)
	_, err := lc.Sync(context.Background())
	if !errors.Is(err, ErrBadHeader) {
		t.Fatalf("subset-signed header: got %v, want ErrBadHeader", err)
	}
	if lc.SyncedHeight() != 1 {
		t.Fatalf("cache at %d, want 1 (the honest prefix)", lc.SyncedHeight())
	}
}

func TestSyncRejectsBrokenChain(t *testing.T) {
	tc := newTestChain(t, 3, 8)
	tc.commit(tc.items[0], "a", ts(1), nil)
	tc.commit(tc.items[1], "b", ts(2), nil)
	tc.commit(tc.items[2], "c", ts(3), nil)

	// Serve with block 1 replaced by a re-signed fork (valid co-sign,
	// wrong prev-hash linkage to block 2).
	tc.serveHeaders(tc.servers[0], func(page []*ledger.Header) []*ledger.Header {
		if len(page) >= 2 {
			fork := &ledger.Block{
				Height:   1,
				Txns:     []ledger.TxnRecord{{TxnID: "fork", TS: ts(2)}},
				Decision: ledger.DecisionCommit,
				PrevHash: tc.blocks[0].Hash(),
				Signers:  tc.servers,
			}
			tc.coSign(fork, tc.servers)
			page[1] = fork.Header()
		}
		return page
	})

	lc := tc.newClient(0)
	_, err := lc.Sync(context.Background())
	if !errors.Is(err, ErrBadHeader) {
		t.Fatalf("forked chain: got %v, want ErrBadHeader", err)
	}
	// The fork itself verified (height 1 accepted — it is validly signed
	// and chains from block 0); block 2 then fails against it.
	if lc.SyncedHeight() != 2 {
		t.Fatalf("cache at %d, want 2", lc.SyncedHeight())
	}
}

func TestVerifyReadChecks(t *testing.T) {
	tc := newTestChain(t, 3, 16)
	tc.commit(tc.items[3], "target", ts(1), nil)
	tc.commit(tc.items[5], "other", ts(2), nil)

	srv := tc.servers[0]
	ctx := context.Background()

	// Honest serve verifies.
	tc.serveReads(srv, nil)
	lc := tc.newClient(0)
	vals, err := lc.ReadVerified(ctx, tc.items[3], tc.items[5])
	if err != nil {
		t.Fatalf("honest read: %v", err)
	}
	if string(vals[0].Value) != "target" || string(vals[1].Value) != "other" {
		t.Fatalf("values %q/%q", vals[0].Value, vals[1].Value)
	}

	cases := []struct {
		name   string
		mutate func(*wire.VerifiedReadResp)
		want   error
	}{
		{"forged value", func(r *wire.VerifiedReadResp) {
			r.Items[0].Value = []byte("lie")
		}, ErrIncorrectRead},
		{"forged timestamps", func(r *wire.VerifiedReadResp) {
			r.Items[0].WTS = ts(99)
		}, ErrIncorrectRead},
		{"forged sibling", func(r *wire.VerifiedReadResp) {
			r.Proof.Siblings[0][0] ^= 1
		}, ErrIncorrectRead},
		{"shifted index", func(r *wire.VerifiedReadResp) {
			r.Proof.Indices[0]++
		}, ErrBadProof},
		{"wrong depth", func(r *wire.VerifiedReadResp) {
			r.Proof.Depth++
		}, ErrBadProof},
		{"substituted item", func(r *wire.VerifiedReadResp) {
			r.Items[0].ID = tc.items[9]
		}, ErrBadProof},
		{"stale height", func(r *wire.VerifiedReadResp) {
			r.Height = 0 // a root exists at 0, but 1 is newer
		}, ErrStaleRead},
		{"fabricated future height", func(r *wire.VerifiedReadResp) {
			r.Height = 7
		}, ErrUnverifiable},
	}
	for _, c := range cases {
		tc.serveReads(srv, c.mutate)
		lc := tc.newClient(0)
		if _, err := lc.ReadVerified(ctx, tc.items[3], tc.items[5]); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

// TestReadSyncsFromOwnerWhenSourceLags: the owning server can answer a
// read at a height the configured header source has not served yet (it
// applies its own Decide before the source does). The client must fall
// back to syncing from the owner — which provably holds the header it
// claimed — instead of failing the read as unverifiable.
func TestReadSyncsFromOwnerWhenSourceLags(t *testing.T) {
	tc := newTestChain(t, 3, 16)
	tc.commit(tc.items[0], "old", ts(1), nil)
	tc.commit(tc.items[0], "new", ts(2), nil)

	// The lagging source (s01) serves only the first block; the owner
	// (s00) serves full headers and current reads.
	lagging := tc.servers[1]
	tc.net.handlers[lagging] = func(msg transport.Message) (transport.Message, error) {
		var req wire.FetchHeadersReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		resp := &wire.FetchHeadersResp{Tip: 1}
		if req.From == 0 {
			resp.Headers = []*ledger.Header{tc.blocks[0].Header()}
		}
		return transport.NewMessage(wire.MsgFetchHeaders, resp)
	}
	tc.serveReads(tc.servers[0], nil)

	c, err := New(Config{
		PeerConfig: peer.PeerConfig{
			Registry:  tc.reg,
			Transport: tc.net,
			Servers:   tc.servers,
			Source:    lagging,
		},
		Layout: tc,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := c.ReadVerified(context.Background(), tc.items[0])
	if err != nil {
		t.Fatalf("read with lagging source: %v", err)
	}
	if string(vals[0].Value) != "new" {
		t.Fatalf("got %q, want %q", vals[0].Value, "new")
	}
	if c.SyncedHeight() != 2 {
		t.Fatalf("owner fallback synced to %d, want 2", c.SyncedHeight())
	}
}

// TestVerifyReadUnverifiableBeforeAnyCommit: with no committed roots there
// is nothing to authenticate against.
func TestVerifyReadUnverifiableBeforeAnyCommit(t *testing.T) {
	tc := newTestChain(t, 3, 8)
	tc.serveReads(tc.servers[0], func(r *wire.VerifiedReadResp) {})
	lc := tc.newClient(0)
	_, err := lc.ReadVerified(context.Background(), tc.items[0])
	if err == nil {
		t.Fatal("verified read succeeded with no committed roots")
	}
}
