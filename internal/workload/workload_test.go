package workload

import (
	"fmt"
	"testing"

	"repro/internal/txn"
)

func pool(n int) []txn.ItemID {
	out := make([]txn.ItemID, n)
	for i := range out {
		out[i] = txn.ItemID(fmt.Sprintf("k%05d", i))
	}
	return out
}

func TestGeneratorDefaults(t *testing.T) {
	g, err := New(Config{Items: pool(100), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Next()
	if len(p.Ops) != 5 {
		t.Fatalf("ops = %d, want paper default 5", len(p.Ops))
	}
}

func TestGeneratorDistinctItems(t *testing.T) {
	g, err := New(Config{Items: pool(10), OpsPerTxn: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p := g.Next()
		seen := make(map[txn.ItemID]struct{})
		for _, op := range p.Ops {
			if _, dup := seen[op.Item]; dup {
				t.Fatalf("txn %d repeats item %s", i, op.Item)
			}
			seen[op.Item] = struct{}{}
			if op.Kind == OpWrite && len(op.Value) == 0 {
				t.Fatalf("write without value")
			}
			if op.Kind == OpRead && op.Value != nil {
				t.Fatalf("read with value")
			}
		}
	}
}

func TestGeneratorDeterministicBySeed(t *testing.T) {
	mk := func() []Op {
		g, err := New(Config{Items: pool(50), OpsPerTxn: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var ops []Op
		for i := 0; i < 20; i++ {
			ops = append(ops, g.Next().Ops...)
		}
		return ops
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Item != b[i].Item || string(a[i].Value) != string(b[i].Value) {
			t.Fatalf("op %d differs across identical seeds", i)
		}
	}
}

func TestGeneratorWriteRatio(t *testing.T) {
	g, err := New(Config{Items: pool(1000), OpsPerTxn: 5, WriteRatio: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	writes, total := 0, 0
	for i := 0; i < 500; i++ {
		for _, op := range g.Next().Ops {
			total++
			if op.Kind == OpWrite {
				writes++
			}
		}
	}
	ratio := float64(writes) / float64(total)
	if ratio < 0.25 || ratio > 0.35 {
		t.Fatalf("write ratio = %.3f, want ~0.3", ratio)
	}
}

func TestGeneratorZipfianSkew(t *testing.T) {
	g, err := New(Config{Items: pool(1000), OpsPerTxn: 1, Distribution: Zipfian, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[txn.ItemID]int)
	for i := 0; i < 5000; i++ {
		counts[g.Next().Ops[0].Item]++
	}
	// The hottest item must be disproportionately popular versus uniform
	// expectation (5 hits per item on average).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50 {
		t.Fatalf("zipfian max frequency %d, want skewed (>50)", max)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := New(Config{Items: pool(3), OpsPerTxn: 5}); err == nil {
		t.Error("ops > pool accepted")
	}
	if _, err := New(Config{Items: pool(10), WriteRatio: 1.5}); err == nil {
		t.Error("ratio > 1 accepted")
	}
}

func TestPlanItems(t *testing.T) {
	g, err := New(Config{Items: pool(20), OpsPerTxn: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Next()
	items := p.Items()
	if len(items) != 3 {
		t.Fatalf("Items = %d", len(items))
	}
}
