// Package workload generates the Transactional-YCSB-like benchmark of
// paper §6: multi-record transactions of a fixed number of operations
// (5 in the paper), each operation targeting a data item "picked at random
// from a pool of all the data partitions combined", with a configurable
// read/write mix and either uniform or Zipfian item popularity.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/txn"
)

// OpKind distinguishes reads from writes.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota + 1
	OpWrite
)

// Op is one operation of a transaction plan.
type Op struct {
	Kind OpKind
	Item txn.ItemID
	// Value is the payload for writes.
	Value []byte
}

// Plan is a generated transaction: an ordered list of operations over
// distinct items.
type Plan struct {
	Ops []Op
}

// Items returns the distinct items the plan touches.
func (p *Plan) Items() []txn.ItemID {
	out := make([]txn.ItemID, len(p.Ops))
	for i, op := range p.Ops {
		out[i] = op.Item
	}
	return out
}

// Distribution selects how items are drawn from the pool.
type Distribution int

// Supported item distributions.
const (
	// Uniform draws every item with equal probability (the paper's
	// "picked at random").
	Uniform Distribution = iota + 1
	// Zipfian draws items with a Zipf(1.01) popularity skew, the standard
	// YCSB hot-spot distribution.
	Zipfian
)

// Config tunes a Generator.
type Config struct {
	// Items is the combined pool of all data partitions.
	Items []txn.ItemID
	// OpsPerTxn is the number of operations per transaction (default 5,
	// §6: "each transaction consisted of 5 operations on different data
	// items").
	OpsPerTxn int
	// WriteRatio is the fraction of operations that are writes (default
	// 0.5, a YCSB update-heavy mix).
	WriteRatio float64
	// Distribution selects Uniform (default) or Zipfian item choice.
	Distribution Distribution
	// ValueSize is the size of written values in bytes (default 16).
	ValueSize int
	// Seed makes generation deterministic.
	Seed int64
}

// Generator produces transaction plans. It is not safe for concurrent use;
// create one per driving goroutine (with distinct seeds).
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  uint64
}

// New creates a Generator.
func New(cfg Config) (*Generator, error) {
	if len(cfg.Items) == 0 {
		return nil, fmt.Errorf("workload: empty item pool")
	}
	if cfg.OpsPerTxn <= 0 {
		cfg.OpsPerTxn = 5
	}
	if cfg.OpsPerTxn > len(cfg.Items) {
		return nil, fmt.Errorf("workload: %d ops per txn exceeds pool of %d items", cfg.OpsPerTxn, len(cfg.Items))
	}
	if cfg.WriteRatio < 0 || cfg.WriteRatio > 1 {
		return nil, fmt.Errorf("workload: write ratio %v out of [0,1]", cfg.WriteRatio)
	}
	if cfg.WriteRatio == 0 {
		cfg.WriteRatio = 0.5
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 16
	}
	if cfg.Distribution == 0 {
		cfg.Distribution = Uniform
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Distribution == Zipfian {
		g.zipf = rand.NewZipf(g.rng, 1.01, 1, uint64(len(cfg.Items)-1))
	}
	return g, nil
}

// Next generates the next transaction plan: OpsPerTxn operations on
// distinct items.
func (g *Generator) Next() *Plan {
	g.seq++
	chosen := make(map[int]struct{}, g.cfg.OpsPerTxn)
	ops := make([]Op, 0, g.cfg.OpsPerTxn)
	for len(ops) < g.cfg.OpsPerTxn {
		idx := g.pick()
		if _, dup := chosen[idx]; dup {
			continue
		}
		chosen[idx] = struct{}{}
		op := Op{Item: g.cfg.Items[idx]}
		if g.rng.Float64() < g.cfg.WriteRatio {
			op.Kind = OpWrite
			op.Value = g.value()
		} else {
			op.Kind = OpRead
		}
		ops = append(ops, op)
	}
	return &Plan{Ops: ops}
}

func (g *Generator) pick() int {
	if g.zipf != nil {
		return int(g.zipf.Uint64())
	}
	return g.rng.Intn(len(g.cfg.Items))
}

func (g *Generator) value() []byte {
	v := make([]byte, g.cfg.ValueSize)
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	for i := range v {
		v[i] = alphabet[g.rng.Intn(len(alphabet))]
	}
	return v
}
