// Package client implements the Fides client library: the transaction
// life-cycle of paper §4.1 / Figure 5. Clients interact with the relevant
// database partition servers directly — Fides intentionally has no
// front-end transaction managers (§4.1) — then hand the read/write sets to
// the designated coordinator for termination, and finally verify the
// collective signature on the resulting block before accepting the
// decision.
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/lightclient"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// Directory resolves which server stores a data item (the paper's "lookup
// and directory service for the database partitions", §4.1).
type Directory interface {
	Owner(id txn.ItemID) (identity.NodeID, bool)
}

// Config assembles a Client.
type Config struct {
	Identity    *identity.Identity
	Registry    *identity.Registry
	Transport   transport.Transport
	Directory   Directory
	Coordinator identity.NodeID
	// ClientID seeds the Lamport clock; must be unique per client.
	ClientID uint32
	// TrustedMode skips collective-signature verification on decisions.
	// It exists for the trusted 2PC baseline (paper §6.1), whose blocks are
	// not collectively signed; Fides clients leave it false.
	TrustedMode bool
	// TSSource optionally supplies commit timestamps; when nil the client
	// owns a private Lamport clock. Several clients may share one source
	// (paper §4.1: clients need only use the same timestamp mechanism).
	TSSource txn.TSSource
	// Verifier enables Session.ReadVerified: reads carry Merkle proofs
	// that are checked against the light client's synced header chain
	// before the value is accepted. Many clients may (and should) share
	// one Verifier — the header cache is shared state. Nil leaves only
	// the plain audit-time-checked Read available.
	Verifier *lightclient.Client
	// Obs supplies metrics and tracing. A configured tracer makes every
	// Commit mint a root span whose context rides the authenticated frames
	// to the coordinator and cohorts, so the whole commit path of one
	// transaction reconstructs as a single trace. Nil runs dark.
	Obs *obs.Obs
	// Crypto is the client's verification plane for decision-block
	// collective signatures (VerifyBlock). Nil defaults to the serial
	// backend over Registry. Clients of one deployment should share one
	// batched instance — they all verify the same co-signed blocks, so one
	// verdict cache serves them all (core.Cluster.ClientVerifier does
	// this).
	Crypto crypto.Verifier
}

// Client executes transactions against a Fides deployment. A Client may
// run many sequential sessions; concurrent sessions should use separate
// Clients (each owns a timestamp clock).
type Client struct {
	ident    *identity.Identity
	reg      *identity.Registry
	tr       transport.Transport
	dir      Directory
	coord    identity.NodeID
	trusted  bool
	verifier *lightclient.Client
	crypto   crypto.Verifier
	o        *obs.Obs

	commitHist *obs.Histogram

	mu     sync.Mutex
	clock  txn.TSSource
	txnSeq uint64
}

// New creates a Client.
func New(cfg Config) (*Client, error) {
	if cfg.Identity == nil || cfg.Registry == nil || cfg.Transport == nil || cfg.Directory == nil {
		return nil, errors.New("client: config requires identity, registry, transport and directory")
	}
	if cfg.Coordinator == "" {
		return nil, errors.New("client: config requires a coordinator")
	}
	clock := cfg.TSSource
	if clock == nil {
		clock = txn.NewClock(cfg.ClientID)
	}
	cv := cfg.Crypto
	if cv == nil {
		cv = crypto.NewSerial(cfg.Registry)
	}
	return &Client{
		ident:      cfg.Identity,
		reg:        cfg.Registry,
		tr:         cfg.Transport,
		dir:        cfg.Directory,
		coord:      cfg.Coordinator,
		trusted:    cfg.TrustedMode,
		verifier:   cfg.Verifier,
		crypto:     cv,
		o:          cfg.Obs,
		commitHist: cfg.Obs.Histogram("fides_client_commit_seconds", "End-to-end Commit latency at the client: end_transaction sent to decision verified.", nil),
		clock:      clock,
	}, nil
}

// Verifier returns the light client backing ReadVerified (nil when the
// client was built without one).
func (c *Client) Verifier() *lightclient.Client { return c.verifier }

// ID returns the client's node id.
func (c *Client) ID() identity.NodeID { return c.ident.ID }

// observe merges an observed timestamp into the client's Lamport clock so
// its next commit timestamp orders after everything it has seen.
func (c *Client) observe(ts txn.Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock.Observe(ts)
}

func (c *Client) nextTS() txn.Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock.Next()
}

func (c *Client) nextTxnID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.txnSeq++
	return fmt.Sprintf("%s-t%d", c.ident.ID, c.txnSeq)
}

// Session is one in-flight transaction: Begin → Read/Write → Commit
// (paper Figure 5).
type Session struct {
	client *Client
	id     string

	reads   []txn.ReadEntry
	writes  []txn.WriteEntry
	readIdx map[txn.ItemID]int
	written map[txn.ItemID]int
	began   map[identity.NodeID]bool
	done    bool
}

// Begin starts a new transaction session.
func (c *Client) Begin() *Session {
	return &Session{
		client:  c,
		id:      c.nextTxnID(),
		readIdx: make(map[txn.ItemID]int),
		written: make(map[txn.ItemID]int),
		began:   make(map[identity.NodeID]bool),
	}
}

// ID returns the session's transaction id.
func (s *Session) ID() string { return s.id }

// ErrSessionDone is returned for operations on a terminated session.
var ErrSessionDone = errors.New("client: session already terminated")

// ensureBegin marks the transaction as begun at a server the first time
// the session touches it (paper §4.1 step 1). The begin is piggybacked on
// the first read/write rather than sent as its own round trip: the
// execution layer opens the transaction's write buffer implicitly on first
// access, so a separate announcement would only add a message per server
// per transaction. (wire.MsgBeginTxn remains available for clients that
// want the explicit handshake.)
func (s *Session) ensureBegin(_ context.Context, owner identity.NodeID) error {
	s.began[owner] = true
	return nil
}

// ReadOption configures one Session.Read call.
type ReadOption func(*readOpts)

type readOpts struct {
	verified bool
	pinned   bool
	height   uint64
}

// Verified makes the read proof-carrying: the value arrives with a Merkle
// proof and the block height whose committed, co-signed shard root
// authenticates it, checked against the client's light client
// (Config.Verifier) before the value is accepted. A stale or forged value
// fails at read time instead of at the next audit (paper §5 Scenario 1 /
// Lemma 1).
func Verified() ReadOption {
	return func(o *readOpts) { o.verified = true }
}

// AtHeight pins the read to the shard state authenticated by the co-signed
// root committed at or below block height h — a point-in-time verified
// lookup (it implies Verified). Unlike plain and Verified reads, a pinned
// read does not enter the session's read set: OCC validates reads against
// current state, and a historical snapshot read is a query, not a commit
// dependency.
func AtHeight(h uint64) ReadOption {
	return func(o *readOpts) { o.verified, o.pinned, o.height = true, true, h }
}

// Read fetches an item's value from its owning server and records the read
// entry (value, rts, wts) for the commit request. Options select the
// integrity mode: no options is the plain audit-time-checked read,
// Verified() checks a Merkle proof against the synced header chain before
// accepting, AtHeight(h) additionally pins the lookup to a historical
// co-signed root. Reads are cached: re-reading an item (or reading an item
// the session wrote) is served locally, regardless of mode.
func (s *Session) Read(ctx context.Context, id txn.ItemID, opts ...ReadOption) ([]byte, error) {
	var o readOpts
	for _, opt := range opts {
		opt(&o)
	}
	if s.done {
		return nil, ErrSessionDone
	}
	if wi, ok := s.written[id]; ok {
		return append([]byte(nil), s.writes[wi].NewVal...), nil
	}
	if o.pinned {
		return s.readPinned(ctx, id, o.height)
	}
	if ri, ok := s.readIdx[id]; ok {
		return append([]byte(nil), s.reads[ri].Value...), nil
	}
	if o.verified && s.client.verifier == nil {
		return nil, ErrNoVerifier
	}
	owner, ok := s.client.dir.Owner(id)
	if !ok {
		return nil, fmt.Errorf("client: no owner for item %s", id)
	}
	if err := s.ensureBegin(ctx, owner); err != nil {
		return nil, err
	}
	if o.verified {
		vals, err := s.client.verifier.ReadVerified(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("client: verified read %s from %s: %w", id, owner, err)
		}
		v := vals[0]
		s.client.observe(v.RTS)
		s.client.observe(v.WTS)
		s.readIdx[id] = len(s.reads)
		s.reads = append(s.reads, txn.ReadEntry{ID: id, Value: v.Value, RTS: v.RTS, WTS: v.WTS})
		return append([]byte(nil), v.Value...), nil
	}
	msg, err := transport.NewMessage(wire.MsgRead, &wire.ReadReq{TxnID: s.id, ID: id})
	if err != nil {
		return nil, err
	}
	resp, err := s.client.tr.Call(ctx, owner, msg)
	if err != nil {
		return nil, fmt.Errorf("client: read %s from %s: %w", id, owner, err)
	}
	var rr wire.ReadResp
	if err := resp.Decode(&rr); err != nil {
		return nil, err
	}
	s.client.observe(rr.RTS)
	s.client.observe(rr.WTS)
	s.readIdx[id] = len(s.reads)
	s.reads = append(s.reads, txn.ReadEntry{ID: id, Value: rr.Value, RTS: rr.RTS, WTS: rr.WTS})
	return append([]byte(nil), rr.Value...), nil
}

// readPinned serves an AtHeight read: a verified lookup against the
// co-signed shard root at the pinned height. Values the session itself
// wrote are still served from the write buffer (handled by Read); nothing
// here touches the read set.
func (s *Session) readPinned(ctx context.Context, id txn.ItemID, height uint64) ([]byte, error) {
	if s.client.verifier == nil {
		return nil, ErrNoVerifier
	}
	vals, err := s.client.verifier.ReadPinned(ctx, height, id)
	if err != nil {
		return nil, fmt.Errorf("client: pinned read %s at height %d: %w", id, height, err)
	}
	return append([]byte(nil), vals[0].Value...), nil
}

// ErrNoVerifier is returned by ReadVerified on a client built without a
// light client (Config.Verifier).
var ErrNoVerifier = errors.New("client: no verifier configured for verified reads")

// ReadVerified is Read with the Verified() option.
//
// Deprecated: use Read(ctx, id, Verified()).
func (s *Session) ReadVerified(ctx context.Context, id txn.ItemID) ([]byte, error) {
	return s.Read(ctx, id, Verified())
}

// Write buffers a new value for an item at its owning server and records
// the write entry. For blind writes (items not read first), the server's
// acknowledgement supplies the old value and timestamps (paper §4.2.1).
func (s *Session) Write(ctx context.Context, id txn.ItemID, value []byte) error {
	if s.done {
		return ErrSessionDone
	}
	owner, ok := s.client.dir.Owner(id)
	if !ok {
		return fmt.Errorf("client: no owner for item %s", id)
	}
	if err := s.ensureBegin(ctx, owner); err != nil {
		return err
	}
	msg, err := transport.NewMessage(wire.MsgWrite, &wire.WriteReq{TxnID: s.id, ID: id, Value: value})
	if err != nil {
		return err
	}
	resp, err := s.client.tr.Call(ctx, owner, msg)
	if err != nil {
		return fmt.Errorf("client: write %s at %s: %w", id, owner, err)
	}
	var wr wire.WriteResp
	if err := resp.Decode(&wr); err != nil {
		return err
	}
	s.client.observe(wr.RTS)
	s.client.observe(wr.WTS)

	if wi, ok := s.written[id]; ok {
		s.writes[wi].NewVal = append([]byte(nil), value...)
		return nil
	}
	entry := txn.WriteEntry{ID: id, NewVal: append([]byte(nil), value...)}
	if ri, ok := s.readIdx[id]; ok {
		// Read-then-write: timestamps come from the read observation.
		entry.RTS = s.reads[ri].RTS
		entry.WTS = s.reads[ri].WTS
	} else {
		// Blind write: old value and timestamps from the acknowledgement
		// (Table 1: old_val is populated only for blind writes).
		entry.Blind = true
		entry.OldVal = append([]byte(nil), wr.OldVal...)
		entry.RTS = wr.RTS
		entry.WTS = wr.WTS
	}
	s.written[id] = len(s.writes)
	s.writes = append(s.writes, entry)
	return nil
}

// CommitResult is the outcome of a termination request.
type CommitResult struct {
	// Committed reports the collective decision.
	Committed bool
	// Rejected reports that the coordinator ignored the request because its
	// timestamp was not above the latest committed timestamp (paper §4.3.1);
	// the client's clock has been fast-forwarded, so a fresh attempt will
	// carry a valid timestamp.
	Rejected bool
	// Block is the collectively signed block terminating the transaction
	// (nil when Rejected).
	Block *ledger.Block
	// TS is the commit timestamp the client assigned.
	TS txn.Timestamp
}

// ErrInvalidCoSig is returned when the block accompanying a decision fails
// collective-signature verification — the paper's cue for the client to
// "detect an anomaly and trigger an audit" (§4.3.1 phase 5).
var ErrInvalidCoSig = errors.New("client: decision block carries an invalid collective signature")

// Commit assigns the commit timestamp, sends the signed end_transaction
// request µ = ⟨end_transaction(Tid, ts, Rset-Wset)⟩_σA to the coordinator
// (paper §4.3.1), and verifies the collective signature on the returned
// block before accepting the decision.
func (s *Session) Commit(ctx context.Context) (*CommitResult, error) {
	if s.done {
		return nil, ErrSessionDone
	}
	s.done = true
	start := time.Now()
	ctx, span := s.client.o.StartRoot(ctx, "client.commit", "txn", s.id)
	res, err := s.commit(ctx)
	s.client.commitHist.ObserveSince(start)
	if err != nil {
		span.EndErr(err)
		return res, err
	}
	switch {
	case res.Rejected:
		span.SetAttr("outcome", "rejected")
	case res.Committed:
		span.SetAttr("outcome", "commit")
	default:
		span.SetAttr("outcome", "abort")
	}
	span.End()
	return res, nil
}

// commit is the body of Commit, running inside the root span.
func (s *Session) commit(ctx context.Context) (*CommitResult, error) {
	t := &txn.Transaction{ID: s.id, TS: s.client.nextTS(), Reads: s.reads, Writes: s.writes}
	// The client signs the canonical binary encoding of the transaction;
	// servers store this envelope in the block, so the auditor can later
	// re-verify exactly what the client authorized (paper §3.2).
	env := identity.Seal(s.client.ident, t.AppendBinary(nil))
	msg, err := transport.NewMessage(wire.MsgEndTxn, &wire.EndTxnReq{TxnEnvelope: env})
	if err != nil {
		return nil, err
	}
	resp, err := s.client.tr.Call(ctx, s.client.coord, msg)
	if err != nil {
		return nil, fmt.Errorf("client: end_transaction: %w", err)
	}
	var er wire.EndTxnResp
	if err := resp.Decode(&er); err != nil {
		return nil, err
	}
	if er.Rejected {
		// Only the timestamp was stale; the read/write sets remain valid.
		// Reopen the session so the caller can re-commit immediately with a
		// fresh (fast-forwarded) timestamp instead of re-executing.
		s.client.observe(er.LatestTS)
		s.done = false
		return &CommitResult{Rejected: true, TS: t.TS}, nil
	}
	if er.Block == nil {
		return nil, errors.New("client: coordinator returned no block")
	}
	if !s.client.trusted {
		if err := s.client.VerifyBlock(er.Block); err != nil {
			return &CommitResult{Committed: false, Block: er.Block, TS: t.TS}, err
		}
	}
	if !blockContains(er.Block, s.id) {
		return nil, fmt.Errorf("client: decision block %d does not contain txn %s", er.Block.Height, s.id)
	}
	s.client.observe(er.Block.MaxTS())
	return &CommitResult{Committed: er.Committed, Block: er.Block, TS: t.TS}, nil
}

// Transaction materializes the session's current read/write sets without
// terminating it (used by tests and by custom termination paths).
func (s *Session) Transaction(ts txn.Timestamp) *txn.Transaction {
	return &txn.Transaction{ID: s.id, TS: ts, Reads: s.reads, Writes: s.writes}
}

// VerifyBlock checks a block's collective signature against the Schnorr
// keys of its declared signers — "the client, with the public keys of all
// the servers, verifies the co-sign before accepting the decision; even an
// aborted transaction must be signed by all the servers" (paper §4.3.1).
func (c *Client) VerifyBlock(b *ledger.Block) error {
	if len(b.Signers) == 0 {
		return fmt.Errorf("%w: no signers", ErrInvalidCoSig)
	}
	sig := b.CoSig()
	if sig.IsZero() {
		return ErrInvalidCoSig
	}
	if err := c.crypto.VerifyCoSig(b.Signers, b.SigningBytes(), sig); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidCoSig, err)
	}
	return nil
}

func blockContains(b *ledger.Block, txnID string) bool {
	for i := range b.Txns {
		if b.Txns[i].TxnID == txnID {
			return true
		}
	}
	return false
}
