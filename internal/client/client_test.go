package client_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tfcommit"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// immediateTerminator commits every end_transaction request as its own
// block through a TFCommit coordinator — a minimal stand-in for the
// production batching service.
type immediateTerminator struct {
	reg   *identity.Registry
	coord *tfcommit.Coordinator
}

func (t *immediateTerminator) Terminate(ctx context.Context, env identity.Envelope) (*wire.EndTxnResp, error) {
	tr, err := server.DecodeTxnEnvelope(t.reg, env)
	if err != nil {
		return nil, err
	}
	res, err := t.coord.CommitBlock(ctx, []*txn.Transaction{tr}, []identity.Envelope{env})
	if err != nil {
		return nil, err
	}
	return &wire.EndTxnResp{Committed: res.Committed, Block: res.Block}, nil
}

type mapDirectory map[txn.ItemID]identity.NodeID

func (d mapDirectory) Owner(id txn.ItemID) (identity.NodeID, bool) {
	o, ok := d[id]
	return o, ok
}

func item(s, i int) txn.ItemID { return txn.ItemID(fmt.Sprintf("s%d/i%d", s, i)) }

// newClientStack assembles n servers, an immediate TFCommit terminator on
// server 0, and a client.
func newClientStack(t *testing.T, n int) (*client.Client, []*server.Server) {
	t.Helper()
	reg := identity.NewRegistry()
	net := transport.NewLocalNetwork(0)
	dir := mapDirectory{}
	var ids []identity.NodeID
	for s := 0; s < n; s++ {
		id := identity.NodeID(fmt.Sprintf("srv%d", s))
		ids = append(ids, id)
		for i := 0; i < 8; i++ {
			dir[item(s, i)] = id
		}
	}
	var servers []*server.Server
	var idents []*identity.Identity
	var endpoints []transport.Transport
	for s := 0; s < n; s++ {
		ident, err := identity.New(ids[s], identity.RoleServer, nil)
		if err != nil {
			t.Fatal(err)
		}
		reg.Register(ident.Public())
		idents = append(idents, ident)
		items := make([]txn.ItemID, 8)
		for i := range items {
			items[i] = item(s, i)
		}
		shard := store.NewShard(items, func(txn.ItemID) []byte { return []byte("init") }, store.Config{})
		srv, err := server.New(server.Config{Identity: ident, Registry: reg, Directory: dir, Shard: shard})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		endpoints = append(endpoints, net.Endpoint(ident, reg, srv))
	}
	coord, err := tfcommit.New(tfcommit.Config{
		Identity: idents[0], Registry: reg, Transport: endpoints[0],
		Servers: ids, Local: servers[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	servers[0].SetTerminator(&immediateTerminator{reg: reg, coord: coord})

	clIdent, err := identity.New("c1", identity.RoleClient, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg.Register(clIdent.Public())
	cl, err := client.New(client.Config{
		Identity:    clIdent,
		Registry:    reg,
		Transport:   net.Endpoint(clIdent, reg, nil),
		Directory:   dir,
		Coordinator: ids[0],
		ClientID:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, servers
}

func TestSessionLifecycle(t *testing.T) {
	cl, servers := newClientStack(t, 2)
	ctx := context.Background()

	s := cl.Begin()
	v, err := s.Read(ctx, item(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("init")) {
		t.Fatalf("read = %q", v)
	}
	if err := s.Write(ctx, item(0, 0), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, item(1, 3), []byte("blind")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("aborted: %+v", res)
	}
	got, err := servers[1].Shard().Get(item(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Value, []byte("blind")) {
		t.Fatalf("blind write not applied: %q", got.Value)
	}

	// The session is single-use.
	if _, err := s.Commit(ctx); !errors.Is(err, client.ErrSessionDone) {
		t.Fatalf("second commit: %v", err)
	}
	if _, err := s.Read(ctx, item(0, 0)); !errors.Is(err, client.ErrSessionDone) {
		t.Fatalf("read after commit: %v", err)
	}
}

func TestSessionReadYourWrites(t *testing.T) {
	cl, _ := newClientStack(t, 1)
	ctx := context.Background()
	s := cl.Begin()
	if err := s.Write(ctx, item(0, 1), []byte("mine")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(ctx, item(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("mine")) {
		t.Fatalf("read-your-write = %q", v)
	}
	// The write stays a single (blind) entry; the local read must not have
	// added a read entry for it.
	tr := s.Transaction(txn.Timestamp{Time: 1, ClientID: 1})
	if len(tr.Reads) != 0 || len(tr.Writes) != 1 {
		t.Fatalf("sets = %d reads / %d writes", len(tr.Reads), len(tr.Writes))
	}
	if !tr.Writes[0].Blind {
		t.Fatal("write should be blind")
	}
	if !bytes.Equal(tr.Writes[0].OldVal, []byte("init")) {
		t.Fatalf("blind write old value = %q", tr.Writes[0].OldVal)
	}
}

func TestSessionReadCaching(t *testing.T) {
	cl, servers := newClientStack(t, 1)
	ctx := context.Background()
	s := cl.Begin()
	v1, err := s.Read(ctx, item(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the store behind the session's back; a cached re-read must
	// return the first observation (repeatable reads within the txn).
	if err := servers[0].Shard().Apply([]store.Access{{
		Writes: []txn.WriteEntry{{ID: item(0, 2), NewVal: []byte("changed")}},
		TS:     txn.Timestamp{Time: 99, ClientID: 9},
	}}); err != nil {
		t.Fatal(err)
	}
	v2, err := s.Read(ctx, item(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1, v2) {
		t.Fatalf("re-read changed: %q vs %q", v1, v2)
	}
	tr := s.Transaction(txn.Timestamp{Time: 1, ClientID: 1})
	if len(tr.Reads) != 1 {
		t.Fatalf("reads = %d, want 1 (cached)", len(tr.Reads))
	}
}

func TestReadWriteThenCommitRecordsEntries(t *testing.T) {
	cl, _ := newClientStack(t, 2)
	ctx := context.Background()
	s := cl.Begin()
	if _, err := s.Read(ctx, item(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, item(1, 0), []byte("rmw")); err != nil {
		t.Fatal(err)
	}
	tr := s.Transaction(txn.Timestamp{Time: 1, ClientID: 1})
	if len(tr.Reads) != 1 || len(tr.Writes) != 1 {
		t.Fatalf("sets = %d/%d", len(tr.Reads), len(tr.Writes))
	}
	if tr.Writes[0].Blind {
		t.Fatal("read-then-write must not be blind")
	}
	res, err := s.Commit(ctx)
	if err != nil || !res.Committed {
		t.Fatalf("commit: %v %+v", err, res)
	}
	if res.Block == nil || len(res.Block.Txns) != 1 {
		t.Fatalf("block = %+v", res.Block)
	}
}

func TestClientRejectsUnknownItem(t *testing.T) {
	cl, _ := newClientStack(t, 1)
	ctx := context.Background()
	s := cl.Begin()
	if _, err := s.Read(ctx, "ghost"); err == nil {
		t.Error("read of unknown item accepted")
	}
	if err := s.Write(ctx, "ghost", []byte("x")); err == nil {
		t.Error("write of unknown item accepted")
	}
}

func TestVerifyBlockRejectsForgery(t *testing.T) {
	cl, _ := newClientStack(t, 2)
	ctx := context.Background()
	s := cl.Begin()
	if err := s.Write(ctx, item(0, 0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Commit(ctx)
	if err != nil || !res.Committed {
		t.Fatalf("commit: %v", err)
	}
	// A genuine block verifies.
	if err := cl.VerifyBlock(res.Block); err != nil {
		t.Fatalf("genuine block rejected: %v", err)
	}
	// A mutated block must not.
	forged := res.Block.Clone()
	forged.Txns[0].Writes[0].NewVal = []byte("forged")
	if err := cl.VerifyBlock(forged); !errors.Is(err, client.ErrInvalidCoSig) {
		t.Fatalf("forged block: %v", err)
	}
	noSigners := res.Block.Clone()
	noSigners.Signers = nil
	if err := cl.VerifyBlock(noSigners); !errors.Is(err, client.ErrInvalidCoSig) {
		t.Fatalf("signerless block: %v", err)
	}
	var _ *ledger.Block = forged
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := client.New(client.Config{}); err == nil {
		t.Error("empty config accepted")
	}
	ident, _ := identity.New("c", identity.RoleClient, nil)
	reg := identity.NewRegistry()
	net := transport.NewLocalNetwork(0)
	if _, err := client.New(client.Config{
		Identity: ident, Registry: reg,
		Transport: net.Endpoint(ident, reg, nil),
		Directory: mapDirectory{},
	}); err == nil {
		t.Error("config without coordinator accepted")
	}
}
