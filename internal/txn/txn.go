// Package txn defines the transaction model of Fides: Lamport-style commit
// timestamps, read/write set entries exactly as stored in log blocks
// (Table 1 of the paper), and the client-side transaction record.
//
// Every data item carries a read timestamp (rts) and a write timestamp (wts),
// the timestamps of the last committed transaction that read and wrote the
// item respectively (paper §3.1). Transactions are identified and totally
// ordered by their client-assigned commit timestamp ⟨client_id : client_time⟩
// (paper §4.1).
package txn

import (
	"fmt"
	"strconv"
	"sync"
)

// ItemID uniquely identifies a data item within the database (paper §3.1).
type ItemID string

// Timestamp is a Lamport-style commit timestamp ⟨client_id : client_time⟩.
// Timestamps are totally ordered: first by Time, with ClientID breaking ties.
// The zero Timestamp orders before every timestamp assigned by a client and
// denotes "never accessed".
type Timestamp struct {
	// Time is the client-local logical clock value.
	Time uint64
	// ClientID identifies the client that assigned the timestamp; it breaks
	// ties between equal Time values so that the order is total.
	ClientID uint32
}

// Less reports whether t orders strictly before o.
func (t Timestamp) Less(o Timestamp) bool {
	if t.Time != o.Time {
		return t.Time < o.Time
	}
	return t.ClientID < o.ClientID
}

// Compare returns -1, 0, or +1 depending on whether t orders before, equal
// to, or after o.
func (t Timestamp) Compare(o Timestamp) int {
	switch {
	case t.Less(o):
		return -1
	case o.Less(t):
		return 1
	default:
		return 0
	}
}

// IsZero reports whether t is the zero timestamp ("never accessed").
func (t Timestamp) IsZero() bool { return t.Time == 0 && t.ClientID == 0 }

// String renders the timestamp in the paper's "ts-<time>.<client>" style.
func (t Timestamp) String() string {
	return "ts-" + strconv.FormatUint(t.Time, 10) + "." + strconv.FormatUint(uint64(t.ClientID), 10)
}

// Max returns the later of t and o.
func (t Timestamp) Max(o Timestamp) Timestamp {
	if t.Less(o) {
		return o
	}
	return t
}

// ReadEntry is one element of a transaction's read set: the item id, the
// value observed, and the rts/wts of the item at the time of access
// (Table 1: R_set is a list of ⟨id : value, rts, wts⟩).
type ReadEntry struct {
	ID    ItemID    `json:"id"`
	Value []byte    `json:"value"`
	RTS   Timestamp `json:"rts"`
	WTS   Timestamp `json:"wts"`
}

// WriteEntry is one element of a transaction's write set: the item id, the
// new value written, the old value (populated only for blind writes, i.e.
// writes of items the transaction did not read), and the rts/wts of the item
// at the time of access (Table 1: W_set is a list of
// ⟨id : new_val, old_val, rts, wts⟩).
type WriteEntry struct {
	ID     ItemID    `json:"id"`
	NewVal []byte    `json:"new_val"`
	OldVal []byte    `json:"old_val,omitempty"`
	Blind  bool      `json:"blind,omitempty"`
	RTS    Timestamp `json:"rts"`
	WTS    Timestamp `json:"wts"`
}

// Transaction is the unit of work a client submits for termination: the
// client-assigned commit timestamp plus the read and write sets gathered
// during execution (paper §4.1 step 4, end_transaction(Tid, ts, Rset-Wset)).
type Transaction struct {
	// ID is a globally unique transaction identifier assigned by the client.
	ID string `json:"id"`
	// TS is the client-assigned commit timestamp.
	TS Timestamp `json:"ts"`
	// Reads is the transaction's read set.
	Reads []ReadEntry `json:"reads"`
	// Writes is the transaction's write set.
	Writes []WriteEntry `json:"writes"`
}

// Items returns the ids of all data items the transaction accessed, reads
// first, writes after, without deduplication across the two sets.
func (t *Transaction) Items() []ItemID {
	ids := make([]ItemID, 0, len(t.Reads)+len(t.Writes))
	for _, r := range t.Reads {
		ids = append(ids, r.ID)
	}
	for _, w := range t.Writes {
		ids = append(ids, w.ID)
	}
	return ids
}

// ItemSet returns the set of distinct data items the transaction accessed.
func (t *Transaction) ItemSet() map[ItemID]struct{} {
	set := make(map[ItemID]struct{}, len(t.Reads)+len(t.Writes))
	for _, r := range t.Reads {
		set[r.ID] = struct{}{}
	}
	for _, w := range t.Writes {
		set[w.ID] = struct{}{}
	}
	return set
}

// ReadsItem reports whether the transaction's read set contains id.
func (t *Transaction) ReadsItem(id ItemID) bool {
	for _, r := range t.Reads {
		if r.ID == id {
			return true
		}
	}
	return false
}

// WritesItem reports whether the transaction's write set contains id.
func (t *Transaction) WritesItem(id ItemID) bool {
	for _, w := range t.Writes {
		if w.ID == id {
			return true
		}
	}
	return false
}

// Conflicts reports whether t and o access any common data item with at
// least one of the two accesses being a write. Two read-only accesses of the
// same item do not conflict. Batch formation (paper §4.6, §6) uses this to
// pack only non-conflicting transactions into a block.
func (t *Transaction) Conflicts(o *Transaction) bool {
	tw := make(map[ItemID]struct{}, len(t.Writes))
	for _, w := range t.Writes {
		tw[w.ID] = struct{}{}
	}
	for _, w := range o.Writes {
		if _, ok := tw[w.ID]; ok {
			return true
		}
	}
	for _, r := range o.Reads {
		if _, ok := tw[r.ID]; ok {
			return true
		}
	}
	ow := make(map[ItemID]struct{}, len(o.Writes))
	for _, w := range o.Writes {
		ow[w.ID] = struct{}{}
	}
	for _, r := range t.Reads {
		if _, ok := ow[r.ID]; ok {
			return true
		}
	}
	return false
}

// Validate performs basic structural sanity checks on the transaction:
// non-empty id, non-zero timestamp, no duplicate ids within either set.
func (t *Transaction) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("txn: empty transaction id")
	}
	if t.TS.IsZero() {
		return fmt.Errorf("txn %s: zero commit timestamp", t.ID)
	}
	seen := make(map[ItemID]struct{}, len(t.Reads))
	for _, r := range t.Reads {
		if _, dup := seen[r.ID]; dup {
			return fmt.Errorf("txn %s: duplicate read of item %s", t.ID, r.ID)
		}
		seen[r.ID] = struct{}{}
	}
	seen = make(map[ItemID]struct{}, len(t.Writes))
	for _, w := range t.Writes {
		if _, dup := seen[w.ID]; dup {
			return fmt.Errorf("txn %s: duplicate write of item %s", t.ID, w.ID)
		}
		seen[w.ID] = struct{}{}
	}
	return nil
}

// Clock generates monotonically increasing timestamps for a single client.
// It is not safe for concurrent use; each client session owns its own Clock.
type Clock struct {
	clientID uint32
	time     uint64
}

// NewClock returns a Clock for the given client id starting at time 0.
func NewClock(clientID uint32) *Clock {
	return &Clock{clientID: clientID}
}

// Next returns the next timestamp, strictly greater than all previously
// returned ones.
func (c *Clock) Next() Timestamp {
	c.time++
	return Timestamp{Time: c.time, ClientID: c.clientID}
}

// Observe advances the clock past ts so that subsequently generated
// timestamps order after ts (Lamport clock merge rule).
func (c *Clock) Observe(ts Timestamp) {
	if c.time < ts.Time {
		c.time = ts.Time
	}
}

// ClientID returns the id of the client owning this clock.
func (c *Clock) ClientID() uint32 { return c.clientID }

// TSSource issues commit timestamps. Each client normally owns a private
// Clock, but several clients may share one source — the paper requires
// only that "all clients use the same timestamp generating mechanism"
// (§4.1), and a shared source guarantees that every newly drawn timestamp
// exceeds every previously committed one, eliminating stale-timestamp
// retries under high client concurrency.
type TSSource interface {
	// Next returns a timestamp strictly greater than all previously
	// returned ones.
	Next() Timestamp
	// Observe advances the source past ts.
	Observe(ts Timestamp)
}

var _ TSSource = (*Clock)(nil)

// SharedClock is a thread-safe TSSource for use by many clients at once.
type SharedClock struct {
	mu    sync.Mutex
	clock Clock
}

// NewSharedClock returns a SharedClock stamping the given client id.
func NewSharedClock(clientID uint32) *SharedClock {
	return &SharedClock{clock: Clock{clientID: clientID}}
}

// Next returns the next timestamp.
func (s *SharedClock) Next() Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock.Next()
}

// Observe advances the clock past ts.
func (s *SharedClock) Observe(ts Timestamp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock.Observe(ts)
}
