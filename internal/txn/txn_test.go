package txn

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTimestampOrdering(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		less bool
	}{
		{Timestamp{}, Timestamp{}, false},
		{Timestamp{}, Timestamp{Time: 1}, true},
		{Timestamp{Time: 1}, Timestamp{}, false},
		{Timestamp{Time: 1, ClientID: 1}, Timestamp{Time: 1, ClientID: 2}, true},
		{Timestamp{Time: 2, ClientID: 1}, Timestamp{Time: 1, ClientID: 9}, false},
		{Timestamp{Time: 1, ClientID: 9}, Timestamp{Time: 2, ClientID: 1}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestTimestampCompareConsistentWithLess(t *testing.T) {
	f := func(at, bt uint64, ac, bc uint32) bool {
		a := Timestamp{Time: at, ClientID: ac}
		b := Timestamp{Time: bt, ClientID: bc}
		switch a.Compare(b) {
		case -1:
			return a.Less(b) && !b.Less(a)
		case 1:
			return b.Less(a) && !a.Less(b)
		default:
			return a == b
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampTotalOrder(t *testing.T) {
	// Antisymmetry and transitivity over random triples.
	f := func(x, y, z Timestamp) bool {
		if x.Less(y) && y.Less(x) {
			return false
		}
		if x.Less(y) && y.Less(z) && !x.Less(z) {
			return false
		}
		return true
	}
	cfg := &quick.Config{Values: func(vals []reflect.Value, r *rand.Rand) {
		for i := range vals {
			vals[i] = reflect.ValueOf(Timestamp{Time: uint64(r.Intn(5)), ClientID: uint32(r.Intn(5))})
		}
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampMaxAndZero(t *testing.T) {
	a := Timestamp{Time: 3, ClientID: 1}
	b := Timestamp{Time: 3, ClientID: 2}
	if got := a.Max(b); got != b {
		t.Errorf("Max = %v, want %v", got, b)
	}
	if got := b.Max(a); got != b {
		t.Errorf("Max = %v, want %v", got, b)
	}
	if !(Timestamp{}).IsZero() {
		t.Error("zero timestamp should be zero")
	}
	if a.IsZero() {
		t.Error("non-zero timestamp misreported as zero")
	}
	if (Timestamp{}).String() != "ts-0.0" {
		t.Errorf("String = %q", (Timestamp{}).String())
	}
}

func TestClockMonotonic(t *testing.T) {
	c := NewClock(7)
	prev := Timestamp{}
	for i := 0; i < 100; i++ {
		ts := c.Next()
		if !prev.Less(ts) {
			t.Fatalf("clock went backwards: %v then %v", prev, ts)
		}
		if ts.ClientID != 7 {
			t.Fatalf("clock emitted wrong client id %d", ts.ClientID)
		}
		prev = ts
	}
}

func TestClockObserve(t *testing.T) {
	c := NewClock(1)
	c.Observe(Timestamp{Time: 500, ClientID: 9})
	ts := c.Next()
	if ts.Time != 501 {
		t.Errorf("after observing t=500, Next().Time = %d, want 501", ts.Time)
	}
	// Observing the past must not rewind.
	c.Observe(Timestamp{Time: 3})
	if got := c.Next(); got.Time != 502 {
		t.Errorf("clock rewound to %v", got)
	}
	if c.ClientID() != 1 {
		t.Errorf("ClientID = %d", c.ClientID())
	}
}

func mkTxn(id string, ts uint64, reads, writes []ItemID) *Transaction {
	t := &Transaction{ID: id, TS: Timestamp{Time: ts, ClientID: 1}}
	for _, r := range reads {
		t.Reads = append(t.Reads, ReadEntry{ID: r})
	}
	for _, w := range writes {
		t.Writes = append(t.Writes, WriteEntry{ID: w})
	}
	return t
}

func TestConflicts(t *testing.T) {
	cases := []struct {
		name string
		a, b *Transaction
		want bool
	}{
		{"disjoint", mkTxn("a", 1, []ItemID{"x"}, []ItemID{"y"}), mkTxn("b", 2, []ItemID{"u"}, []ItemID{"v"}), false},
		{"read-read", mkTxn("a", 1, []ItemID{"x"}, nil), mkTxn("b", 2, []ItemID{"x"}, nil), false},
		{"write-write", mkTxn("a", 1, nil, []ItemID{"x"}), mkTxn("b", 2, nil, []ItemID{"x"}), true},
		{"read-write", mkTxn("a", 1, []ItemID{"x"}, nil), mkTxn("b", 2, nil, []ItemID{"x"}), true},
		{"write-read", mkTxn("a", 1, nil, []ItemID{"x"}), mkTxn("b", 2, []ItemID{"x"}, nil), true},
	}
	for _, c := range cases {
		if got := c.a.Conflicts(c.b); got != c.want {
			t.Errorf("%s: Conflicts = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.Conflicts(c.a); got != c.want {
			t.Errorf("%s (sym): Conflicts = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestConflictsSymmetricProperty(t *testing.T) {
	items := []ItemID{"a", "b", "c", "d"}
	gen := func(r *rand.Rand) *Transaction {
		tr := &Transaction{ID: "t", TS: Timestamp{Time: 1}}
		for _, it := range items {
			switch r.Intn(3) {
			case 1:
				tr.Reads = append(tr.Reads, ReadEntry{ID: it})
			case 2:
				tr.Writes = append(tr.Writes, WriteEntry{ID: it})
			}
		}
		return tr
	}
	f := func(a, b *Transaction) bool { return a.Conflicts(b) == b.Conflicts(a) }
	cfg := &quick.Config{Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(gen(r))
		vals[1] = reflect.ValueOf(gen(r))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestItemsAndSets(t *testing.T) {
	tr := mkTxn("t", 1, []ItemID{"x", "y"}, []ItemID{"y", "z"})
	if got := tr.Items(); len(got) != 4 {
		t.Errorf("Items length = %d, want 4", len(got))
	}
	set := tr.ItemSet()
	if len(set) != 3 {
		t.Errorf("ItemSet size = %d, want 3", len(set))
	}
	if !tr.ReadsItem("x") || tr.ReadsItem("z") {
		t.Error("ReadsItem wrong")
	}
	if !tr.WritesItem("z") || tr.WritesItem("x") {
		t.Error("WritesItem wrong")
	}
}

func TestValidate(t *testing.T) {
	good := mkTxn("t", 1, []ItemID{"x"}, []ItemID{"y"})
	if err := good.Validate(); err != nil {
		t.Errorf("valid txn rejected: %v", err)
	}
	if err := mkTxn("", 1, nil, nil).Validate(); err == nil {
		t.Error("empty id accepted")
	}
	noTS := &Transaction{ID: "t"}
	if err := noTS.Validate(); err == nil {
		t.Error("zero timestamp accepted")
	}
	dupRead := mkTxn("t", 1, []ItemID{"x", "x"}, nil)
	if err := dupRead.Validate(); err == nil {
		t.Error("duplicate read accepted")
	}
	dupWrite := mkTxn("t", 1, nil, []ItemID{"x", "x"})
	if err := dupWrite.Validate(); err == nil {
		t.Error("duplicate write accepted")
	}
}
