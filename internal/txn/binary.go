package txn

import (
	"fmt"

	"repro/internal/binenc"
)

// Binary encoding of the transaction model. The client signs exactly these
// bytes in its end_transaction envelope (paper §4.3.1), replacing the JSON
// payload of earlier revisions: the encoding is canonical (no map ordering,
// no optional whitespace), several times smaller, and decodes without
// reflection on the per-cohort hot path.
//
// Layout (all lengths uvarint, integers big-endian, see internal/binenc):
//
//	Transaction: ver(1) | id | ts | nReads | ReadEntry... | nWrites | WriteEntry...
//	ReadEntry:   id | value | rts | wts
//	WriteEntry:  id | new_val | old_val | blind(1) | rts | wts
//	Timestamp:   time(8) | client_id(4)
const txnBinaryVersion = 1

// Minimum encoded sizes. Decoders use these to bound hostile element
// counts before allocating (binenc.Reader.Count); the ledger block codec
// shares them for its embedded read/write entries.
const (
	// TimestampEncSize is the fixed encoding size of a Timestamp.
	TimestampEncSize = 8 + 4
	// ReadEntryMinEnc: id length + value length + rts + wts.
	ReadEntryMinEnc = 1 + 1 + 2*TimestampEncSize
	// WriteEntryMinEnc: id length + new_val length + old_val length +
	// blind + rts + wts.
	WriteEntryMinEnc = 1 + 1 + 1 + 1 + 2*TimestampEncSize
)

// AppendBinary appends the timestamp's fixed 12-byte encoding.
func (t Timestamp) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendUint64(buf, t.Time)
	return binenc.AppendUint32(buf, t.ClientID)
}

// DecodeTimestamp reads a timestamp's fixed 12-byte encoding from r.
func DecodeTimestamp(r *binenc.Reader) Timestamp {
	return Timestamp{Time: r.Uint64(), ClientID: r.Uint32()}
}

// AppendBinary appends the read entry's encoding.
func (e *ReadEntry) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendString(buf, string(e.ID))
	buf = binenc.AppendBytes(buf, e.Value)
	buf = e.RTS.AppendBinary(buf)
	return e.WTS.AppendBinary(buf)
}

// DecodeReadEntry reads a read entry from r (embeddable form, used by the
// ledger block codec as well as Transaction.UnmarshalBinary).
func DecodeReadEntry(r *binenc.Reader, e *ReadEntry) {
	e.ID = ItemID(r.String())
	e.Value = r.Bytes()
	e.RTS = DecodeTimestamp(r)
	e.WTS = DecodeTimestamp(r)
}

// AppendBinary appends the write entry's encoding.
func (e *WriteEntry) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendString(buf, string(e.ID))
	buf = binenc.AppendBytes(buf, e.NewVal)
	buf = binenc.AppendBytes(buf, e.OldVal)
	buf = binenc.AppendBool(buf, e.Blind)
	buf = e.RTS.AppendBinary(buf)
	return e.WTS.AppendBinary(buf)
}

// DecodeWriteEntry reads a write entry from r (embeddable form).
func DecodeWriteEntry(r *binenc.Reader, e *WriteEntry) {
	e.ID = ItemID(r.String())
	e.NewVal = r.Bytes()
	e.OldVal = r.Bytes()
	e.Blind = r.Bool()
	e.RTS = DecodeTimestamp(r)
	e.WTS = DecodeTimestamp(r)
}

// AppendBinary appends the transaction's versioned canonical encoding —
// the payload format of the client-signed end_transaction envelope.
func (t *Transaction) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendByte(buf, txnBinaryVersion)
	buf = binenc.AppendString(buf, t.ID)
	buf = t.TS.AppendBinary(buf)
	buf = binenc.AppendUvarint(buf, uint64(len(t.Reads)))
	for i := range t.Reads {
		buf = t.Reads[i].AppendBinary(buf)
	}
	buf = binenc.AppendUvarint(buf, uint64(len(t.Writes)))
	for i := range t.Writes {
		buf = t.Writes[i].AppendBinary(buf)
	}
	return buf
}

// MarshalBinary returns the transaction's canonical encoding.
func (t *Transaction) MarshalBinary() ([]byte, error) {
	return t.AppendBinary(nil), nil
}

// UnmarshalBinary decodes a transaction from its canonical encoding. The
// decoded transaction never aliases data, so the input buffer may be
// recycled afterwards.
func (t *Transaction) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if v := r.Byte(); v != txnBinaryVersion && r.Err() == nil {
		return fmt.Errorf("txn: unsupported binary version %d", v)
	}
	t.ID = r.String()
	t.TS = DecodeTimestamp(&r)
	t.Reads = nil
	if n := r.Count(ReadEntryMinEnc); n > 0 {
		t.Reads = make([]ReadEntry, n)
		for i := range t.Reads {
			DecodeReadEntry(&r, &t.Reads[i])
		}
	}
	t.Writes = nil
	if n := r.Count(WriteEntryMinEnc); n > 0 {
		t.Writes = make([]WriteEntry, n)
		for i := range t.Writes {
			DecodeWriteEntry(&r, &t.Writes[i])
		}
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("txn: decode transaction: %w", err)
	}
	return nil
}
