package txn

import (
	"bytes"
	"reflect"
	"testing"
)

func TestTransactionBinaryRoundTrip(t *testing.T) {
	big := bytes.Repeat([]byte("v"), 4<<10)
	txns := []*Transaction{
		{ID: "c1-t1", TS: Timestamp{Time: 7, ClientID: 2}},
		{
			ID: "c1-t2", TS: Timestamp{Time: 8, ClientID: 2},
			Reads: []ReadEntry{
				{ID: "a", Value: []byte("x"), RTS: Timestamp{Time: 1, ClientID: 1}, WTS: Timestamp{Time: 2, ClientID: 2}},
				{ID: "b", Value: big},
			},
			Writes: []WriteEntry{
				{ID: "a", NewVal: []byte("y"), RTS: Timestamp{Time: 1, ClientID: 1}},
				{ID: "c", NewVal: big, OldVal: []byte("o"), Blind: true, WTS: Timestamp{Time: 3, ClientID: 3}},
			},
		},
	}
	for _, in := range txns {
		data := in.AppendBinary(nil)
		var out Transaction
		if err := out.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: %v", in.ID, err)
		}
		if !reflect.DeepEqual(in, &out) {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, &out)
		}
	}
}

func TestTransactionBinaryRejectsGarbage(t *testing.T) {
	valid := (&Transaction{ID: "t", TS: Timestamp{Time: 1, ClientID: 1}}).AppendBinary(nil)
	for i := 0; i < len(valid); i++ {
		var out Transaction
		if err := out.UnmarshalBinary(valid[:i]); err == nil {
			t.Fatalf("accepted truncation at %d bytes", i)
		}
	}
	var out Transaction
	if err := out.UnmarshalBinary(append(append([]byte(nil), valid...), 9)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	if err := out.UnmarshalBinary([]byte{99}); err == nil {
		t.Fatal("accepted unknown version")
	}
}
