package transport

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/identity"
)

// testBinaryBody implements the binary codec contract.
type testBinaryBody struct {
	N uint8  `json:"n"`
	S string `json:"s"`
}

func (b *testBinaryBody) AppendBinary(buf []byte) []byte {
	buf = append(buf, b.N)
	return append(buf, b.S...)
}

func (b *testBinaryBody) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return errors.New("short")
	}
	b.N = data[0]
	b.S = string(data[1:])
	return nil
}

func TestBinaryCodecFastPathAndFallback(t *testing.T) {
	c := BinaryCodec{}

	// Types implementing the contract use it.
	in := &testBinaryBody{N: 7, S: "hello"}
	data, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 7 || string(data[1:]) != "hello" {
		t.Fatalf("binary fast path not used: %q", data)
	}
	var out testBinaryBody
	if err := c.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != *in {
		t.Fatalf("round trip: %+v", out)
	}

	// Plain types fall back to JSON, deterministically on both sides.
	jdata, err := c.Marshal("an error string")
	if err != nil {
		t.Fatal(err)
	}
	var s string
	if err := c.Unmarshal(jdata, &s); err != nil {
		t.Fatal(err)
	}
	if s != "an error string" {
		t.Fatalf("fallback round trip: %q", s)
	}
}

// withCodec runs fn with the process codec temporarily replaced.
func withCodec(t *testing.T, c Codec, fn func()) {
	t.Helper()
	prev := DefaultCodec()
	SetDefaultCodec(c)
	defer SetDefaultCodec(prev)
	fn()
}

// withFrameAuth runs fn with the frame-auth mode temporarily replaced.
func withFrameAuth(t *testing.T, a FrameAuth, fn func()) {
	t.Helper()
	prev := DefaultFrameAuth()
	SetDefaultFrameAuth(a)
	defer SetDefaultFrameAuth(prev)
	fn()
}

func TestLocalCallJSONCodec(t *testing.T) {
	withCodec(t, JSONCodec{}, func() {
		net, reg, idents := setupLocal(t, 0)
		net.Endpoint(idents["b"], reg, &echoHandler{})
		a := net.Endpoint(idents["a"], reg, nil)
		msg, err := NewMessage("echo", "json-mode")
		if err != nil {
			t.Fatal(err)
		}
		resp, err := a.Call(context.Background(), "b", msg)
		if err != nil {
			t.Fatal(err)
		}
		var body string
		if err := resp.Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body != "a:json-mode" {
			t.Fatalf("body = %q", body)
		}
	})
}

func TestLocalCallEnvelopeFrameAuth(t *testing.T) {
	withFrameAuth(t, FrameAuthEnvelope, func() {
		net, reg, idents := setupLocal(t, 0)
		net.Endpoint(idents["b"], reg, &echoHandler{})
		a := net.Endpoint(idents["a"], reg, nil)
		msg, _ := NewMessage("echo", "signed")
		resp, err := a.Call(context.Background(), "b", msg)
		if err != nil {
			t.Fatal(err)
		}
		var body string
		if err := resp.Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body != "a:signed" {
			t.Fatalf("body = %q", body)
		}

		// Unregistered senders are rejected by per-message verification.
		mallory, err := identity.New("mallory", identity.RoleClient, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := net.Endpoint(mallory, reg, nil)
		if _, err := m.Call(context.Background(), "b", msg); err == nil {
			t.Fatal("unregistered sender accepted in envelope mode")
		}
	})
}

func TestTCPEnvelopeFrameAuth(t *testing.T) {
	withFrameAuth(t, FrameAuthEnvelope, func() {
		reg := identity.NewRegistry()
		identA, _ := identity.New("a", identity.RoleClient, nil)
		identB, _ := identity.New("b", identity.RoleServer, nil)
		reg.Register(identA.Public())
		reg.Register(identB.Public())

		b, err := NewTCPNode(identB, reg, "127.0.0.1:0", &echoHandler{})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = b.Close() }()
		a, err := NewTCPNode(identA, reg, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = a.Close() }()
		a.SetAddress("b", b.Addr())

		msg, _ := NewMessage("echo", "tcp-signed")
		resp, err := a.Call(context.Background(), "b", msg)
		if err != nil {
			t.Fatal(err)
		}
		var body string
		if err := resp.Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body != "a:tcp-signed" {
			t.Fatalf("body = %q", body)
		}
	})
}

func TestTCPSessionRejectsUnregistered(t *testing.T) {
	reg := identity.NewRegistry()
	identB, _ := identity.New("b", identity.RoleServer, nil)
	reg.Register(identB.Public())
	// Mallory knows the registry but is not in it.
	mallory, _ := identity.New("mallory", identity.RoleClient, nil)

	b, err := NewTCPNode(identB, reg, "127.0.0.1:0", &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	m, err := NewTCPNode(mallory, reg, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	m.SetAddress("b", b.Addr())

	msg, _ := NewMessage("echo", "hi")
	_, err = m.Call(context.Background(), "b", msg)
	if err == nil {
		t.Fatal("unregistered sender completed a session handshake")
	}
	// The responder's signed rejection must reach the initiator verbatim,
	// not collapse into a framing error.
	if !errors.Is(err, identity.ErrUnknownSender) && !containsUnknownSender(err) {
		t.Fatalf("handshake rejection lost its diagnostic: %v", err)
	}
}

func containsUnknownSender(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "unknown sender")
}

func TestSessionMACRejectsTamperAndWrongKey(t *testing.T) {
	var s1, s2 session
	s1.key[0] = 1
	s2.key[0] = 2
	payload := []byte("frame bytes")
	tag := s1.mac(payload)
	if !s1.verify(payload, tag) {
		t.Fatal("valid MAC rejected")
	}
	tampered := append([]byte(nil), payload...)
	tampered[0] ^= 0xff
	if s1.verify(tampered, tag) {
		t.Fatal("tampered payload accepted")
	}
	if s2.verify(payload, tag) {
		t.Fatal("MAC accepted under a different session key")
	}
	if s1.verify(payload, tag[:16]) {
		t.Fatal("truncated MAC accepted")
	}
}

func TestSessionHandshakeDerivesSharedKey(t *testing.T) {
	reg := identity.NewRegistry()
	a, _ := identity.New("a", identity.RoleClient, nil)
	b, _ := identity.New("b", identity.RoleServer, nil)
	reg.Register(a.Public())
	reg.Register(b.Public())

	// Initiator side.
	ephA, err := newEphemeral()
	if err != nil {
		t.Fatal(err)
	}
	offer := sealHello(a, "b", ephA.PublicKey().Bytes())

	// Responder side.
	gotEphA, err := openHello(reg, "b", offer)
	if err != nil {
		t.Fatal(err)
	}
	ephB, err := newEphemeral()
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := completeHandshake(ephB, gotEphA, "a", "b", gotEphA, ephB.PublicKey().Bytes())
	if err != nil {
		t.Fatal(err)
	}

	// Initiator completes with the responder's reply.
	reply := sealHello(b, "a", ephB.PublicKey().Bytes())
	gotEphB, err := openHello(reg, "a", reply)
	if err != nil {
		t.Fatal(err)
	}
	sessA, err := completeHandshake(ephA, gotEphB, "a", "b", ephA.PublicKey().Bytes(), gotEphB)
	if err != nil {
		t.Fatal(err)
	}

	if sessA.key != sessB.key {
		t.Fatal("handshake derived different keys on the two sides")
	}

	// Cross-checks: wrong addressee and tampered offer fail.
	if _, err := openHello(reg, "c", offer); err == nil {
		t.Fatal("hello accepted by wrong addressee")
	}
	bad := offer
	bad.Payload = append([]byte(nil), offer.Payload...)
	bad.Payload[len(bad.Payload)-1] ^= 1
	if _, err := openHello(reg, "b", bad); err == nil {
		t.Fatal("tampered hello accepted")
	}
}
