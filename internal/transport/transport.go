// Package transport provides the authenticated request/response messaging
// substrate of Fides. Per paper §3.1, all message exchanges (client↔server
// and server↔server) are digitally signed by the sender and verified by the
// receiver; transport enforces this at the framing layer: every request and
// every response travels inside an identity.Envelope.
//
// Two implementations are provided:
//
//   - LocalNetwork: in-process delivery with a configurable simulated
//     one-way latency. This is the reproduction substitute for the paper's
//     single-datacenter EC2 testbed (§6): protocol round counts and
//     cryptographic work are real, the wire is simulated.
//   - TCP (tcp.go): length-prefixed JSON frames over real sockets, for
//     multi-process deployments.
package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/identity"
)

// Message is a typed RPC payload. Type selects the handler action; Body is
// the JSON encoding of the protocol-specific request or response struct.
type Message struct {
	Type string          `json:"type"`
	Body json.RawMessage `json:"body"`
}

// NewMessage marshals body into a Message of the given type.
func NewMessage(msgType string, body any) (Message, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return Message{}, fmt.Errorf("transport: marshal %s: %w", msgType, err)
	}
	return Message{Type: msgType, Body: raw}, nil
}

// Decode unmarshals the message body into out.
func (m Message) Decode(out any) error {
	if err := json.Unmarshal(m.Body, out); err != nil {
		return fmt.Errorf("transport: decode %s: %w", m.Type, err)
	}
	return nil
}

// Handler processes one authenticated request and returns the response.
// from is the verified sender identity.
type Handler interface {
	Handle(ctx context.Context, from identity.NodeID, msg Message) (Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, from identity.NodeID, msg Message) (Message, error)

// Handle calls f.
func (f HandlerFunc) Handle(ctx context.Context, from identity.NodeID, msg Message) (Message, error) {
	return f(ctx, from, msg)
}

// Transport sends authenticated requests to named peers.
type Transport interface {
	// Call sends msg to the peer and waits for its response. Both directions
	// are signed and verified.
	Call(ctx context.Context, to identity.NodeID, msg Message) (Message, error)
	// Self returns the local node id.
	Self() identity.NodeID
	// Close releases transport resources.
	Close() error
}

// Errors returned by transports.
var (
	ErrUnknownPeer = errors.New("transport: unknown peer")
	ErrClosed      = errors.New("transport: closed")
)

// RemoteError is a handler-side failure relayed back to the caller.
type RemoteError struct {
	Node identity.NodeID
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote error from %s: %s", e.Node, e.Msg)
}

// frame is the signed unit that crosses the wire: the destination, a
// monotonically increasing per-sender sequence number (replay
// discrimination), and the message. The sender signs the canonical JSON of
// this struct; the receiver verifies before dispatching.
type frame struct {
	To  identity.NodeID `json:"to"`
	Seq uint64          `json:"seq"`
	Msg Message         `json:"msg"`
}

func sealFrame(ident *identity.Identity, to identity.NodeID, seq uint64, msg Message) (identity.Envelope, error) {
	payload, err := json.Marshal(frame{To: to, Seq: seq, Msg: msg})
	if err != nil {
		return identity.Envelope{}, fmt.Errorf("transport: seal: %w", err)
	}
	return identity.Seal(ident, payload), nil
}

func openFrame(reg *identity.Registry, self identity.NodeID, env identity.Envelope) (identity.NodeID, Message, error) {
	payload, err := reg.Open(env)
	if err != nil {
		return "", Message{}, err
	}
	var f frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return "", Message{}, fmt.Errorf("transport: open: %w", err)
	}
	if f.To != self {
		return "", Message{}, fmt.Errorf("transport: frame addressed to %q delivered to %q", f.To, self)
	}
	return env.From, f.Msg, nil
}

// LocalNetwork is an in-process network of endpoints with simulated one-way
// latency. Every Call still performs full envelope signing and
// verification, so the cryptographic cost profile matches a real
// deployment.
type LocalNetwork struct {
	mu      sync.RWMutex
	latency time.Duration
	nodes   map[identity.NodeID]*localEndpoint
}

// NewLocalNetwork creates a network whose messages each take oneWayLatency
// to deliver (a request/response Call therefore costs two one-way
// latencies, one simulated RTT).
func NewLocalNetwork(oneWayLatency time.Duration) *LocalNetwork {
	return &LocalNetwork{
		latency: oneWayLatency,
		nodes:   make(map[identity.NodeID]*localEndpoint),
	}
}

// Endpoint attaches a node to the network and returns its transport.
// handler may be nil for pure clients that never receive calls.
func (n *LocalNetwork) Endpoint(ident *identity.Identity, reg *identity.Registry, handler Handler) Transport {
	ep := &localEndpoint{net: n, ident: ident, reg: reg, handler: handler}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[ident.ID] = ep
	return ep
}

// Remove detaches a node, simulating a crashed or unreachable server.
func (n *LocalNetwork) Remove(id identity.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, id)
}

func (n *LocalNetwork) lookup(id identity.NodeID) (*localEndpoint, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ep, ok := n.nodes[id]
	return ep, ok
}

func (n *LocalNetwork) delay(ctx context.Context) error {
	if n.latency <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(n.latency)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

type localEndpoint struct {
	net     *LocalNetwork
	ident   *identity.Identity
	reg     *identity.Registry
	handler Handler

	mu     sync.Mutex
	seq    uint64
	closed bool
}

var _ Transport = (*localEndpoint)(nil)

func (e *localEndpoint) Self() identity.NodeID { return e.ident.ID }

func (e *localEndpoint) Call(ctx context.Context, to identity.NodeID, msg Message) (Message, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Message{}, ErrClosed
	}
	e.seq++
	seq := e.seq
	e.mu.Unlock()

	peer, ok := e.net.lookup(to)
	if !ok {
		return Message{}, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	env, err := sealFrame(e.ident, to, seq, msg)
	if err != nil {
		return Message{}, err
	}
	// Request direction.
	if err := e.net.delay(ctx); err != nil {
		return Message{}, err
	}
	from, req, err := openFrame(peer.reg, peer.ident.ID, env)
	if err != nil {
		return Message{}, err
	}
	if peer.handler == nil {
		return Message{}, fmt.Errorf("transport: node %q has no handler", to)
	}
	resp, handleErr := peer.handler.Handle(ctx, from, req)
	// Response direction: the peer signs its response (or error).
	if handleErr != nil {
		resp = Message{Type: "error", Body: mustJSON(handleErr.Error())}
	}
	peer.mu.Lock()
	peer.seq++
	respSeq := peer.seq
	peer.mu.Unlock()
	respEnv, err := sealFrame(peer.ident, e.ident.ID, respSeq, resp)
	if err != nil {
		return Message{}, err
	}
	if err := e.net.delay(ctx); err != nil {
		return Message{}, err
	}
	_, out, err := openFrame(e.reg, e.ident.ID, respEnv)
	if err != nil {
		return Message{}, err
	}
	if out.Type == "error" {
		var msg string
		_ = json.Unmarshal(out.Body, &msg)
		return Message{}, &RemoteError{Node: to, Msg: msg}
	}
	return out, nil
}

func (e *localEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

func mustJSON(v any) json.RawMessage {
	raw, err := json.Marshal(v)
	if err != nil {
		// Only called with plain strings; cannot fail.
		return json.RawMessage(`""`)
	}
	return raw
}

// CallAll sends msg to every target in parallel and collects the responses.
// It returns a map of responses for the targets that answered and a map of
// errors for those that did not. The call is all-informative rather than
// fail-fast: commit protocols need to know exactly who voted what.
func CallAll(ctx context.Context, t Transport, targets []identity.NodeID, msg Message) (map[identity.NodeID]Message, map[identity.NodeID]error) {
	type result struct {
		id   identity.NodeID
		resp Message
		err  error
	}
	results := make(chan result, len(targets))
	var wg sync.WaitGroup
	for _, id := range targets {
		wg.Add(1)
		go func(id identity.NodeID) {
			defer wg.Done()
			resp, err := t.Call(ctx, id, msg)
			results <- result{id: id, resp: resp, err: err}
		}(id)
	}
	wg.Wait()
	close(results)
	resps := make(map[identity.NodeID]Message, len(targets))
	errs := make(map[identity.NodeID]error)
	for r := range results {
		if r.err != nil {
			errs[r.id] = r.err
			continue
		}
		resps[r.id] = r.resp
	}
	if len(errs) == 0 {
		errs = nil
	}
	return resps, errs
}
