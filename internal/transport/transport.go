// Package transport provides the authenticated request/response messaging
// substrate of Fides. Per paper §3.1, all message exchanges (client↔server
// and server↔server) are digitally signed by the sender and verified by the
// receiver; transport enforces this at the framing layer: every request and
// every response travels inside an identity.Envelope.
//
// Two implementations are provided:
//
//   - LocalNetwork: in-process delivery with a configurable simulated
//     one-way latency. This is the reproduction substitute for the paper's
//     single-datacenter EC2 testbed (§6): protocol round counts and
//     cryptographic work are real, the wire is simulated.
//   - TCP (tcp.go): length-prefixed JSON frames over real sockets, for
//     multi-process deployments.
package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/identity"
	"repro/internal/obs"
)

// Message is a typed RPC payload. Type selects the handler action; Body is
// the codec encoding (binary by default, see Codec) of the
// protocol-specific request or response struct.
type Message struct {
	Type string          `json:"type"`
	Body json.RawMessage `json:"body"`
	// Trace is the commit-path span context riding in the authenticated
	// frame header (zero = untraced). Transports populate it from the
	// caller's context on send and re-inject it into the handler context
	// on receive; it is frame metadata, not body, and is excluded from
	// the JSON form so codec output is unchanged.
	Trace obs.SpanContext `json:"-"`
}

// NewMessage marshals body into a Message of the given type using the
// process-wide codec.
func NewMessage(msgType string, body any) (Message, error) {
	raw, err := DefaultCodec().Marshal(body)
	if err != nil {
		return Message{}, fmt.Errorf("transport: marshal %s: %w", msgType, err)
	}
	return Message{Type: msgType, Body: raw}, nil
}

// Decode unmarshals the message body into out. Decoded values never alias
// m.Body, so transports may recycle the underlying buffer afterwards.
func (m Message) Decode(out any) error {
	if err := DefaultCodec().Unmarshal(m.Body, out); err != nil {
		return fmt.Errorf("transport: decode %s: %w", m.Type, err)
	}
	return nil
}

// Handler processes one authenticated request and returns the response.
// from is the verified sender identity.
type Handler interface {
	Handle(ctx context.Context, from identity.NodeID, msg Message) (Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, from identity.NodeID, msg Message) (Message, error)

// Handle calls f.
func (f HandlerFunc) Handle(ctx context.Context, from identity.NodeID, msg Message) (Message, error) {
	return f(ctx, from, msg)
}

// Transport sends authenticated requests to named peers.
type Transport interface {
	// Call sends msg to the peer and waits for its response. Both directions
	// are signed and verified.
	Call(ctx context.Context, to identity.NodeID, msg Message) (Message, error)
	// Self returns the local node id.
	Self() identity.NodeID
	// Close releases transport resources.
	Close() error
}

// Errors returned by transports.
var (
	ErrUnknownPeer = errors.New("transport: unknown peer")
	ErrClosed      = errors.New("transport: closed")
)

// RemoteError is a handler-side failure relayed back to the caller.
type RemoteError struct {
	Node identity.NodeID
	Msg  string
}

// Error formats the remote failure with the node that reported it.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote error from %s: %s", e.Node, e.Msg)
}

func openFrame(reg *identity.Registry, self identity.NodeID, env identity.Envelope) (identity.NodeID, uint64, Message, error) {
	payload, err := reg.Open(env)
	if err != nil {
		return "", 0, Message{}, err
	}
	to, seq, msg, err := parseFrame(payload)
	if err != nil {
		return "", 0, Message{}, err
	}
	if to != self {
		return "", 0, Message{}, fmt.Errorf("transport: frame addressed to %q delivered to %q", to, self)
	}
	return env.From, seq, msg, nil
}

// LocalNetwork is an in-process network of endpoints with simulated one-way
// latency. Every Call still performs the full authentication work of the
// configured frame-auth mode — session-MAC by default, per-message Ed25519
// in FrameAuthEnvelope mode, including the real signed handshake on first
// contact — so the cryptographic cost profile matches a real deployment.
//
// Delivery timing and fate are delegated to a Scheduler: by default a
// real-time sleeper for the configured latency, replaceable (SetScheduler)
// with the seeded virtual-time scheduler of internal/sim, which accounts
// latency without sleeping and injects faults deterministically.
type LocalNetwork struct {
	mu    sync.RWMutex
	sched Scheduler
	nodes map[identity.NodeID]*localEndpoint
}

// NewLocalNetwork creates a network whose messages each take oneWayLatency
// to deliver (a request/response Call therefore costs two one-way
// latencies, one simulated RTT). Delivery uses plain timer sleeps; callers
// that need microsecond-accurate latencies (the benchmark harness) opt
// into SetPreciseDelay.
func NewLocalNetwork(oneWayLatency time.Duration) *LocalNetwork {
	return &LocalNetwork{
		sched: &realScheduler{latency: oneWayLatency},
		nodes: make(map[identity.NodeID]*localEndpoint),
	}
}

// SetScheduler replaces the network's delivery scheduler. Install before
// traffic starts; the simulation harness does this right after building a
// cluster.
func (n *LocalNetwork) SetScheduler(s Scheduler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s != nil {
		n.sched = s
	}
}

// SetPreciseDelay toggles microsecond-accurate delivery delays on the
// default real-time scheduler (a coarse timer sleep followed by a
// yield-spin for the final stretch). The spin occupies a processor per
// in-flight delivery, so it is reserved for latency measurements; it has
// no effect after SetScheduler installed a custom scheduler.
func (n *LocalNetwork) SetPreciseDelay(precise bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if rs, ok := n.sched.(*realScheduler); ok {
		rs.precise = precise
	}
}

func (n *LocalNetwork) scheduler() Scheduler {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.sched
}

// deliver routes one one-way delivery through the scheduler.
func (n *LocalNetwork) deliver(ctx context.Context, from, to identity.NodeID, msgType string, response bool) (Verdict, error) {
	return n.scheduler().Deliver(ctx, from, to, msgType, response)
}

// Endpoint attaches a node to the network and returns its transport.
// handler may be nil for pure clients that never receive calls.
func (n *LocalNetwork) Endpoint(ident *identity.Identity, reg *identity.Registry, handler Handler) Transport {
	ep := &localEndpoint{
		net: n, ident: ident, reg: reg, handler: handler,
		outSess: make(map[identity.NodeID]*session),
		inSess:  make(map[identity.NodeID]*session),
		replay:  make(map[identity.NodeID]*replayGuard),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[ident.ID] = ep
	return ep
}

// Remove detaches a node, simulating a crashed or unreachable server.
func (n *LocalNetwork) Remove(id identity.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, id)
}

func (n *LocalNetwork) lookup(id identity.NodeID) (*localEndpoint, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ep, ok := n.nodes[id]
	return ep, ok
}

type localEndpoint struct {
	net     *LocalNetwork
	ident   *identity.Identity
	reg     *identity.Registry
	handler Handler

	mu     sync.Mutex
	seq    uint64
	closed bool

	// hsMu serializes handshakes this endpoint initiates; sessMu guards
	// the session maps (never held across a handshake, so two endpoints
	// hand-shaking with each other concurrently cannot deadlock).
	hsMu    sync.Mutex
	sessMu  sync.RWMutex
	outSess map[identity.NodeID]*session // sessions this endpoint initiated
	inSess  map[identity.NodeID]*session // sessions peers initiated with us

	// replayMu guards per-author anti-replay windows over session-mode
	// frame sequence numbers. Frames an author sends (requests it makes and
	// responses it returns) draw from one strictly-increasing counter, so a
	// single window per author catches duplicates in both directions.
	replayMu sync.Mutex
	replay   map[identity.NodeID]*replayGuard
}

// acceptSeq records a session-frame sequence number from the given author
// and reports whether it is fresh (never accepted before).
func (e *localEndpoint) acceptSeq(author identity.NodeID, seq uint64) bool {
	e.replayMu.Lock()
	defer e.replayMu.Unlock()
	g := e.replay[author]
	if g == nil {
		g = &replayGuard{}
		e.replay[author] = g
	}
	return g.accept(seq)
}

// sessionFor returns the authenticated session from e to peer, running the
// signed handshake on first use.
func (e *localEndpoint) sessionFor(peer *localEndpoint) (*session, error) {
	peerID := peer.ident.ID
	e.sessMu.RLock()
	s := e.outSess[peerID]
	e.sessMu.RUnlock()
	if s != nil {
		return s, nil
	}
	e.hsMu.Lock()
	defer e.hsMu.Unlock()
	e.sessMu.RLock()
	s = e.outSess[peerID]
	e.sessMu.RUnlock()
	if s != nil {
		return s, nil
	}
	h, offer, err := beginHandshake(e.ident, peerID)
	if err != nil {
		return nil, err
	}
	reply, err := peer.acceptHello(offer)
	if err != nil {
		return nil, err
	}
	s, err = h.finish(e.reg, reply)
	if err != nil {
		return nil, err
	}
	e.sessMu.Lock()
	e.outSess[peerID] = s
	e.sessMu.Unlock()
	return s, nil
}

// acceptHello is the responder half of the handshake: run the shared
// responder role and record the inbound session.
func (e *localEndpoint) acceptHello(offer identity.Envelope) (identity.Envelope, error) {
	reply, s, err := respondHandshake(e.ident, e.reg, offer)
	if err != nil {
		return identity.Envelope{}, err
	}
	e.sessMu.Lock()
	e.inSess[offer.From] = s
	e.sessMu.Unlock()
	return reply, nil
}

// sessionWith returns the established inbound session from a peer.
func (e *localEndpoint) sessionWith(from identity.NodeID) (*session, error) {
	e.sessMu.RLock()
	s := e.inSess[from]
	e.sessMu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSession, from)
	}
	return s, nil
}

var _ Transport = (*localEndpoint)(nil)

func (e *localEndpoint) Self() identity.NodeID { return e.ident.ID }

func (e *localEndpoint) Call(ctx context.Context, to identity.NodeID, msg Message) (Message, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Message{}, ErrClosed
	}
	e.seq++
	seq := e.seq
	e.mu.Unlock()

	peer, ok := e.net.lookup(to)
	if !ok {
		return Message{}, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}

	// Propagate the caller's span context in the authenticated frame
	// header, so the receiver's spans parent under the span that caused
	// this call.
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		msg.Trace = sc
	}

	// In session mode the pairwise channel is established (signed
	// handshake) before the first frame; per-frame authentication is then
	// an HMAC over the same frame bytes the envelope mode would sign.
	mode := DefaultFrameAuth()
	var sess *session
	if mode == FrameAuthSession {
		var err error
		if sess, err = e.sessionFor(peer); err != nil {
			return Message{}, err
		}
	}

	// Request direction. The frame is encoded into a pooled buffer: the
	// handler decodes (copying) before returning, so the buffer is free for
	// reuse once the response has been sealed.
	reqBuf := getBuf()
	defer putBuf(reqBuf)
	reqBuf.b = appendFrame(reqBuf.b[:0], to, seq, msg)

	var env identity.Envelope
	var reqTag []byte
	if sess != nil {
		reqTag = sess.mac(reqBuf.b)
	} else {
		env = identity.Seal(e.ident, reqBuf.b)
	}
	verdict, err := e.net.deliver(ctx, e.ident.ID, to, msg.Type, false)
	if err != nil {
		return Message{}, err
	}

	var from identity.NodeID
	var req Message
	var peerSess *session
	if sess != nil {
		// The receiver authenticates against its own record of the
		// session, exactly as a remote peer would.
		if peerSess, err = peer.sessionWith(e.ident.ID); err != nil {
			return Message{}, err
		}
		if !peerSess.verify(reqBuf.b, reqTag) {
			return Message{}, fmt.Errorf("%w: from %q", ErrBadMAC, e.ident.ID)
		}
		var reqTo identity.NodeID
		var reqSeq uint64
		if reqTo, reqSeq, req, err = parseFrame(reqBuf.b); err != nil {
			return Message{}, err
		}
		if reqTo != peer.ident.ID {
			return Message{}, fmt.Errorf("transport: frame addressed to %q delivered to %q", reqTo, peer.ident.ID)
		}
		if !peer.acceptSeq(e.ident.ID, reqSeq) {
			return Message{}, fmt.Errorf("%w: request seq %d from %q", ErrReplayedFrame, reqSeq, e.ident.ID)
		}
		if verdict.Duplicate {
			// The network duplicated the frame: the copy passes the MAC
			// (same bytes) but must die at the anti-replay window. A copy
			// that survived would be a transport hole, so fail loudly.
			rejected := !peerSess.verify(reqBuf.b, reqTag) || !peer.acceptSeq(e.ident.ID, reqSeq)
			if ob, ok := e.net.scheduler().(DupObserver); ok {
				ob.DupOutcome(e.ident.ID, to, msg.Type, false, rejected)
			}
			if !rejected {
				return Message{}, fmt.Errorf("transport: duplicated request frame accepted twice (seq %d from %q)", reqSeq, e.ident.ID)
			}
		}
		from = e.ident.ID
	} else {
		// seq is not checked on the in-process path: delivery is direct
		// function application of the just-encoded frame, so there is no
		// wire on which an old frame could be replayed. The TCP transport
		// enforces per-connection monotonicity.
		if from, _, req, err = openFrame(peer.reg, peer.ident.ID, env); err != nil {
			return Message{}, err
		}
	}
	if peer.handler == nil {
		return Message{}, fmt.Errorf("transport: node %q has no handler", to)
	}
	// Handlers see the frame's trace context (not the caller's context
	// values), mirroring what a remote process would observe.
	resp, handleErr := peer.handler.Handle(obs.ContextWithSpanContext(ctx, req.Trace), from, req)
	// Response direction: the peer authenticates its response (or error).
	// The response payload escapes to the caller (out.Body), so it is not
	// pooled.
	if handleErr != nil {
		resp = Message{Type: msgTypeError, Body: mustJSON(handleErr.Error())}
	}
	peer.mu.Lock()
	peer.seq++
	respSeq := peer.seq
	peer.mu.Unlock()

	respPayload := appendFrame(nil, e.ident.ID, respSeq, resp)
	var respEnv identity.Envelope
	var respTag []byte
	if peerSess != nil {
		respTag = peerSess.mac(respPayload)
	} else {
		respEnv = identity.Seal(peer.ident, respPayload)
	}
	respVerdict, err := e.net.deliver(ctx, to, e.ident.ID, resp.Type, true)
	if err != nil {
		return Message{}, err
	}

	var out Message
	if sess != nil {
		if !sess.verify(respPayload, respTag) {
			return Message{}, fmt.Errorf("%w: from %q", ErrBadMAC, to)
		}
		var respTo identity.NodeID
		var parsedSeq uint64
		if respTo, parsedSeq, out, err = parseFrame(respPayload); err != nil {
			return Message{}, err
		}
		if respTo != e.ident.ID {
			return Message{}, fmt.Errorf("transport: frame addressed to %q delivered to %q", respTo, e.ident.ID)
		}
		if !e.acceptSeq(to, parsedSeq) {
			return Message{}, fmt.Errorf("%w: response seq %d from %q", ErrReplayedFrame, parsedSeq, to)
		}
		if respVerdict.Duplicate {
			rejected := !sess.verify(respPayload, respTag) || !e.acceptSeq(to, parsedSeq)
			if ob, ok := e.net.scheduler().(DupObserver); ok {
				ob.DupOutcome(to, e.ident.ID, resp.Type, true, rejected)
			}
			if !rejected {
				return Message{}, fmt.Errorf("transport: duplicated response frame accepted twice (seq %d from %q)", parsedSeq, to)
			}
		}
	} else {
		if _, _, out, err = openFrame(e.reg, e.ident.ID, respEnv); err != nil {
			return Message{}, err
		}
	}
	if out.Type == msgTypeError {
		return Message{}, decodeErrorReply(to, out.Body)
	}
	return out, nil
}

// msgTypeError marks a handler-side failure relayed as a response.
const msgTypeError = "error"

// decodeErrorReply turns an error-typed reply body into a RemoteError. A
// body that fails to decode is reported verbatim rather than silently
// flattened to an empty message.
func decodeErrorReply(node identity.NodeID, body []byte) error {
	var emsg string
	if err := json.Unmarshal(body, &emsg); err != nil {
		return &RemoteError{Node: node, Msg: fmt.Sprintf("undecodable error reply %q (%v)", body, err)}
	}
	return &RemoteError{Node: node, Msg: emsg}
}

func (e *localEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

func mustJSON(v any) json.RawMessage {
	raw, err := json.Marshal(v)
	if err != nil {
		// Only called with plain strings; cannot fail.
		return json.RawMessage(`""`)
	}
	return raw
}

// CallAll sends msg to every target in parallel and collects the responses.
// It returns a map of responses for the targets that answered and a map of
// errors for those that did not. The call is all-informative rather than
// fail-fast: commit protocols need to know exactly who voted what.
func CallAll(ctx context.Context, t Transport, targets []identity.NodeID, msg Message) (map[identity.NodeID]Message, map[identity.NodeID]error) {
	type result struct {
		id   identity.NodeID
		resp Message
		err  error
	}
	results := make(chan result, len(targets))
	var wg sync.WaitGroup
	for _, id := range targets {
		wg.Add(1)
		go func(id identity.NodeID) {
			defer wg.Done()
			resp, err := t.Call(ctx, id, msg)
			results <- result{id: id, resp: resp, err: err}
		}(id)
	}
	wg.Wait()
	close(results)
	resps := make(map[identity.NodeID]Message, len(targets))
	errs := make(map[identity.NodeID]error)
	for r := range results {
		if r.err != nil {
			errs[r.id] = r.err
			continue
		}
		resps[r.id] = r.resp
	}
	if len(errs) == 0 {
		errs = nil
	}
	return resps, errs
}
