package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/identity"
)

// echoHandler answers every message with its own body, tagging the sender.
type echoHandler struct {
	mu    sync.Mutex
	calls []identity.NodeID
}

func (h *echoHandler) Handle(_ context.Context, from identity.NodeID, msg Message) (Message, error) {
	h.mu.Lock()
	h.calls = append(h.calls, from)
	h.mu.Unlock()
	var body string
	if err := msg.Decode(&body); err != nil {
		return Message{}, err
	}
	return NewMessage("echo", fmt.Sprintf("%s:%s", from, body))
}

type failHandler struct{}

func (failHandler) Handle(context.Context, identity.NodeID, Message) (Message, error) {
	return Message{}, errors.New("boom")
}

func setupLocal(t *testing.T, latency time.Duration) (*LocalNetwork, *identity.Registry, map[identity.NodeID]*identity.Identity) {
	t.Helper()
	net := NewLocalNetwork(latency)
	reg := identity.NewRegistry()
	idents := make(map[identity.NodeID]*identity.Identity)
	for _, id := range []identity.NodeID{"a", "b", "c"} {
		ident, err := identity.New(id, identity.RoleServer, nil)
		if err != nil {
			t.Fatal(err)
		}
		reg.Register(ident.Public())
		idents[id] = ident
	}
	return net, reg, idents
}

func TestLocalCallRoundTrip(t *testing.T) {
	net, reg, idents := setupLocal(t, 0)
	h := &echoHandler{}
	net.Endpoint(idents["b"], reg, h)
	a := net.Endpoint(idents["a"], reg, nil)

	msg, err := NewMessage("echo", "hello")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := a.Call(context.Background(), "b", msg)
	if err != nil {
		t.Fatal(err)
	}
	var body string
	if err := resp.Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body != "a:hello" {
		t.Fatalf("body = %q", body)
	}
	if a.Self() != "a" {
		t.Fatalf("Self = %s", a.Self())
	}
}

func TestLocalCallUnknownPeer(t *testing.T) {
	net, reg, idents := setupLocal(t, 0)
	a := net.Endpoint(idents["a"], reg, nil)
	msg, _ := NewMessage("echo", "x")
	if _, err := a.Call(context.Background(), "ghost", msg); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestLocalCallRemoteError(t *testing.T) {
	net, reg, idents := setupLocal(t, 0)
	net.Endpoint(idents["b"], reg, failHandler{})
	a := net.Endpoint(idents["a"], reg, nil)
	msg, _ := NewMessage("echo", "x")
	_, err := a.Call(context.Background(), "b", msg)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Node != "b" || re.Msg != "boom" {
		t.Fatalf("remote error = %+v", re)
	}
}

func TestLocalCallRejectsUnregisteredSender(t *testing.T) {
	net, reg, idents := setupLocal(t, 0)
	net.Endpoint(idents["b"], reg, &echoHandler{})

	// "mallory" is attached to the network but never registered, so the
	// receiver cannot verify her signature.
	mallory, err := identity.New("mallory", identity.RoleClient, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := net.Endpoint(mallory, reg, nil)
	msg, _ := NewMessage("echo", "hi")
	if _, err := m.Call(context.Background(), "b", msg); err == nil {
		t.Fatal("unregistered sender accepted")
	}
}

func TestLocalLatencySimulation(t *testing.T) {
	net, reg, idents := setupLocal(t, 5*time.Millisecond)
	net.Endpoint(idents["b"], reg, &echoHandler{})
	a := net.Endpoint(idents["a"], reg, nil)
	msg, _ := NewMessage("echo", "x")

	start := time.Now()
	if _, err := a.Call(context.Background(), "b", msg); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("call took %v, want >= 10ms (two one-way delays)", elapsed)
	}

	// Context cancellation interrupts the delay.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := a.Call(ctx, "b", msg); err == nil {
		t.Fatal("cancelled call succeeded")
	}
}

func TestLocalClosedEndpoint(t *testing.T) {
	net, reg, idents := setupLocal(t, 0)
	net.Endpoint(idents["b"], reg, &echoHandler{})
	a := net.Endpoint(idents["a"], reg, nil)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	msg, _ := NewMessage("echo", "x")
	if _, err := a.Call(context.Background(), "b", msg); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestLocalRemoveSimulatesCrash(t *testing.T) {
	net, reg, idents := setupLocal(t, 0)
	net.Endpoint(idents["b"], reg, &echoHandler{})
	a := net.Endpoint(idents["a"], reg, nil)
	net.Remove("b")
	msg, _ := NewMessage("echo", "x")
	if _, err := a.Call(context.Background(), "b", msg); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer after removal", err)
	}
}

func TestCallAll(t *testing.T) {
	net, reg, idents := setupLocal(t, 0)
	net.Endpoint(idents["b"], reg, &echoHandler{})
	net.Endpoint(idents["c"], reg, failHandler{})
	a := net.Endpoint(idents["a"], reg, nil)

	msg, _ := NewMessage("echo", "x")
	resps, errs := CallAll(context.Background(), a, []identity.NodeID{"b", "c", "ghost"}, msg)
	if len(resps) != 1 {
		t.Fatalf("resps = %d, want 1", len(resps))
	}
	if _, ok := resps["b"]; !ok {
		t.Fatal("b missing from responses")
	}
	if len(errs) != 2 {
		t.Fatalf("errs = %v, want 2 entries", errs)
	}
	if _, ok := errs["c"]; !ok {
		t.Fatal("c missing from errors")
	}
	if _, ok := errs["ghost"]; !ok {
		t.Fatal("ghost missing from errors")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	reg := identity.NewRegistry()
	identA, _ := identity.New("a", identity.RoleClient, nil)
	identB, _ := identity.New("b", identity.RoleServer, nil)
	reg.Register(identA.Public())
	reg.Register(identB.Public())

	b, err := NewTCPNode(identB, reg, "127.0.0.1:0", &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	a, err := NewTCPNode(identA, reg, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	a.SetAddress("b", b.Addr())

	msg, _ := NewMessage("echo", "over-tcp")
	resp, err := a.Call(context.Background(), "b", msg)
	if err != nil {
		t.Fatal(err)
	}
	var body string
	if err := resp.Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body != "a:over-tcp" {
		t.Fatalf("body = %q", body)
	}

	// Sequential reuse exercises the connection pool.
	for i := 0; i < 10; i++ {
		if _, err := a.Call(context.Background(), "b", msg); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	reg := identity.NewRegistry()
	identA, _ := identity.New("a", identity.RoleClient, nil)
	identB, _ := identity.New("b", identity.RoleServer, nil)
	reg.Register(identA.Public())
	reg.Register(identB.Public())

	b, err := NewTCPNode(identB, reg, "127.0.0.1:0", &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	a, err := NewTCPNode(identA, reg, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	a.SetAddress("b", b.Addr())

	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg, _ := NewMessage("echo", fmt.Sprintf("m%d", i))
			if _, err := a.Call(context.Background(), "b", msg); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestTCPRemoteErrorAndUnknownPeer(t *testing.T) {
	reg := identity.NewRegistry()
	identA, _ := identity.New("a", identity.RoleClient, nil)
	identB, _ := identity.New("b", identity.RoleServer, nil)
	reg.Register(identA.Public())
	reg.Register(identB.Public())

	b, err := NewTCPNode(identB, reg, "127.0.0.1:0", failHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	a, err := NewTCPNode(identA, reg, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	a.SetAddress("b", b.Addr())

	msg, _ := NewMessage("echo", "x")
	var re *RemoteError
	if _, err := a.Call(context.Background(), "b", msg); !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if _, err := a.Call(context.Background(), "ghost", msg); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(context.Background(), "b", msg); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed after Close", err)
	}
}

func TestMessageDecodeError(t *testing.T) {
	msg := Message{Type: "x", Body: []byte("{not json")}
	var out string
	if err := msg.Decode(&out); err == nil {
		t.Fatal("garbage body decoded")
	}
	if _, err := NewMessage("x", func() {}); err == nil {
		t.Fatal("unmarshalable body accepted")
	}
}
