package transport

import (
	"context"
	"testing"

	"repro/internal/identity"
)

func TestReplayGuardRejectsDuplicates(t *testing.T) {
	var g replayGuard
	for seq := uint64(1); seq <= 10; seq++ {
		if !g.accept(seq) {
			t.Fatalf("fresh seq %d rejected", seq)
		}
		if g.accept(seq) {
			t.Fatalf("duplicate seq %d accepted", seq)
		}
	}
}

func TestReplayGuardAcceptsOutOfOrderWithinWindow(t *testing.T) {
	var g replayGuard
	// Concurrent callers deliver an author's seqs slightly out of order.
	order := []uint64{3, 1, 2, 7, 5, 6, 4, 10, 8, 9}
	for _, seq := range order {
		if !g.accept(seq) {
			t.Fatalf("out-of-order but fresh seq %d rejected", seq)
		}
	}
	for _, seq := range order {
		if g.accept(seq) {
			t.Fatalf("replayed seq %d accepted", seq)
		}
	}
}

func TestReplayGuardWindowBounds(t *testing.T) {
	var g replayGuard
	if g.accept(0) {
		t.Fatal("seq 0 accepted")
	}
	if !g.accept(replayWindow + 50) {
		t.Fatal("large first seq rejected")
	}
	// Within the window behind max: fresh accepted once.
	if !g.accept(51) {
		t.Fatal("in-window older seq rejected")
	}
	if g.accept(51) {
		t.Fatal("in-window duplicate accepted")
	}
	// At or beyond the window edge: fail safe.
	if g.accept(50) {
		t.Fatal("beyond-window seq accepted")
	}
	// A huge jump clears history; the old numbers stay rejected.
	if !g.accept(10 * replayWindow) {
		t.Fatal("post-jump seq rejected")
	}
	if g.accept(replayWindow + 50) {
		t.Fatal("stale seq accepted after jump")
	}
}

// dupScheduler duplicates every request frame and records the outcomes
// the transport reports back.
type dupScheduler struct {
	injected, rejected, accepted int
}

func (d *dupScheduler) Deliver(_ context.Context, _, _ identity.NodeID, _ string, response bool) (Verdict, error) {
	if response {
		return Verdict{}, nil
	}
	d.injected++
	return Verdict{Duplicate: true}, nil
}

func (d *dupScheduler) DupOutcome(_, _ identity.NodeID, _ string, _, rejected bool) {
	if rejected {
		d.rejected++
	} else {
		d.accepted++
	}
}

// TestLocalNetworkRejectsDuplicatedFrames: a network that duplicates
// every request frame must see every copy die at the receiver's
// anti-replay window while the original traffic flows normally.
func TestLocalNetworkRejectsDuplicatedFrames(t *testing.T) {
	n := NewLocalNetwork(0)
	sched := &dupScheduler{}
	n.SetScheduler(sched)

	reg := identity.NewRegistry()
	srvID, err := identity.New("srv", identity.RoleServer, nil)
	if err != nil {
		t.Fatal(err)
	}
	cliID, err := identity.New("cli", identity.RoleClient, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg.Register(srvID.Public())
	reg.Register(cliID.Public())

	echo := HandlerFunc(func(_ context.Context, _ identity.NodeID, msg Message) (Message, error) {
		return msg, nil
	})
	n.Endpoint(srvID, reg, echo)
	cli := n.Endpoint(cliID, reg, nil)

	msg, err := NewMessage("ping", "x")
	if err != nil {
		t.Fatal(err)
	}
	const calls = 20
	for i := 0; i < calls; i++ {
		if _, err := cli.Call(context.Background(), "srv", msg); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if sched.injected != calls {
		t.Fatalf("injected %d duplicates, want %d", sched.injected, calls)
	}
	if sched.rejected != calls || sched.accepted != 0 {
		t.Fatalf("dup outcomes: rejected %d accepted %d, want %d/0", sched.rejected, sched.accepted, calls)
	}
}
