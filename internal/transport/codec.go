package transport

import (
	"encoding"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/binenc"
	"repro/internal/identity"
)

// Codec encodes and decodes message bodies. The deployment-wide default is
// the binary wire codec (BinaryCodec); JSONCodec remains available for
// debugging and for inspecting captured traffic with standard tools. Both
// ends of a deployment must use the same codec — the choice is part of the
// deployment configuration, like the registry.
type Codec interface {
	// Name identifies the codec ("binary", "json").
	Name() string
	// Marshal encodes a message body.
	Marshal(body any) ([]byte, error)
	// Unmarshal decodes data into the message body struct.
	Unmarshal(data []byte, body any) error
}

// BinaryAppender is the encode half of the binary codec contract; message
// types that implement it (all of internal/wire, ledger.Block,
// identity.Envelope) encode without reflection, appending into a
// caller-supplied buffer.
type BinaryAppender interface {
	AppendBinary(buf []byte) []byte
}

// BinaryCodec encodes bodies with their AppendBinary/UnmarshalBinary fast
// path and falls back to JSON for types without one (error strings, test
// payloads). The fast path is taken only for types implementing BOTH
// halves of the contract (checked against the pointer type when a value
// is passed), so encode and decode always pick the same scheme for the
// same logical type — an asymmetric type cannot marshal binary on one
// side and fall back to JSON on the other.
type BinaryCodec struct{}

// Name implements Codec.
func (BinaryCodec) Name() string { return "binary" }

var (
	appenderType    = reflect.TypeOf((*BinaryAppender)(nil)).Elem()
	unmarshalerType = reflect.TypeOf((*encoding.BinaryUnmarshaler)(nil)).Elem()
)

// asBinaryBody returns the body's encoder when its type participates in
// the binary fast path: both interface halves implemented, directly or
// via the pointer type. Wire messages (always passed as pointers) hit the
// first branch without reflection.
func asBinaryBody(body any) (BinaryAppender, bool) {
	if m, ok := body.(BinaryAppender); ok {
		if _, ok := body.(encoding.BinaryUnmarshaler); ok {
			return m, true
		}
	}
	rv := reflect.ValueOf(body)
	if !rv.IsValid() || rv.Kind() == reflect.Pointer {
		return nil, false
	}
	pt := reflect.PointerTo(rv.Type())
	if pt.Implements(appenderType) && pt.Implements(unmarshalerType) {
		pv := reflect.New(rv.Type())
		pv.Elem().Set(rv)
		return pv.Interface().(BinaryAppender), true
	}
	return nil, false
}

// Marshal implements Codec.
func (BinaryCodec) Marshal(body any) ([]byte, error) {
	if m, ok := asBinaryBody(body); ok {
		return m.AppendBinary(nil), nil
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("transport: marshal %T: %w", body, err)
	}
	return raw, nil
}

// Unmarshal implements Codec.
func (BinaryCodec) Unmarshal(data []byte, body any) error {
	if m, ok := body.(encoding.BinaryUnmarshaler); ok {
		if _, ok := body.(BinaryAppender); ok {
			return m.UnmarshalBinary(data)
		}
	}
	if err := json.Unmarshal(data, body); err != nil {
		return fmt.Errorf("transport: unmarshal %T: %w", body, err)
	}
	return nil
}

// JSONCodec encodes every body as JSON — the debugging/compat codec.
type JSONCodec struct{}

// Name implements Codec.
func (JSONCodec) Name() string { return "json" }

// Marshal implements Codec.
func (JSONCodec) Marshal(body any) ([]byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("transport: marshal %T: %w", body, err)
	}
	return raw, nil
}

// Unmarshal implements Codec.
func (JSONCodec) Unmarshal(data []byte, body any) error {
	if err := json.Unmarshal(data, body); err != nil {
		return fmt.Errorf("transport: unmarshal %T: %w", body, err)
	}
	return nil
}

// defaultCodec holds the process-wide codec used by NewMessage and
// Message.Decode. Binary unless overridden (SetDefaultCodec).
var defaultCodec atomic.Value

// codecHolder gives atomic.Value the single concrete type it requires.
type codecHolder struct{ c Codec }

func init() { defaultCodec.Store(codecHolder{c: BinaryCodec{}}) }

// SetDefaultCodec replaces the process-wide codec. Intended for debugging
// sessions and codec tests; call before any traffic flows.
func SetDefaultCodec(c Codec) { defaultCodec.Store(codecHolder{c: c}) }

// DefaultCodec returns the process-wide codec.
func DefaultCodec() Codec { return defaultCodec.Load().(codecHolder).c }

// --- signed frame encoding ---

// frameVersion versions the binary frame layout below. It doubles as the
// frame payload's domain marker: every byte string a node authenticates
// with its identity key (Ed25519 seal or session MAC) starts with a byte
// that is unique to its payload class, so a signature or MAC over one
// class can never be replayed as another:
//
//	0x01  canonical transaction encoding (txn binary version; §3.2 client
//	      end_transaction envelopes)
//	0x03  transport frame (this file; 0x02 was the frame layout without
//	      the trace-context field and is no longer accepted)
//	0x18  handshake hello (the uvarint length prefix of helloContext)
//	'{'   legacy JSON transaction payloads
const frameVersion = 3

// traceContextLen is the encoded size of a propagated span context:
// 16-byte trace ID followed by an 8-byte parent span ID.
const traceContextLen = 16 + 8

// appendFrame appends the authenticated frame encoding: the destination,
// a per-sender sequence number (checked strictly increasing per TCP
// connection; combined with per-connection session keys this prevents
// replay in session mode — see tcpConn.lastRespSeq for the envelope-mode
// caveat), the commit-path trace context (empty for untraced traffic),
// the message type and the codec-encoded body. The sender authenticates
// exactly these bytes; no intermediate re-serialization or base64
// inflation occurs between the body encoding and the signature or MAC.
// Authenticating the trace context matters: a forged parent span would
// let an attacker stitch fake causality into an audit trail.
//
// Layout: ver(1) | to | seq uvarint | trace bytes(0 or 24) | type | body(rest).
func appendFrame(buf []byte, to identity.NodeID, seq uint64, msg Message) []byte {
	buf = binenc.AppendByte(buf, frameVersion)
	buf = binenc.AppendString(buf, string(to))
	buf = binenc.AppendUvarint(buf, seq)
	if msg.Trace.Valid() {
		var tc [traceContextLen]byte
		copy(tc[:16], msg.Trace.TraceID[:])
		copy(tc[16:], msg.Trace.SpanID[:])
		buf = binenc.AppendBytes(buf, tc[:])
	} else {
		buf = binenc.AppendBytes(buf, nil)
	}
	buf = binenc.AppendString(buf, msg.Type)
	return append(buf, msg.Body...)
}

// parseFrame decodes a signed frame payload. The returned message body
// aliases payload; callers that recycle payload buffers must do so only
// after the body has been decoded (Message.Decode copies).
func parseFrame(payload []byte) (to identity.NodeID, seq uint64, msg Message, err error) {
	r := binenc.NewReader(payload)
	if v := r.Byte(); v != frameVersion && r.Err() == nil {
		return "", 0, Message{}, fmt.Errorf("transport: unsupported frame version %d", v)
	}
	to = identity.NodeID(r.String())
	seq = r.Uvarint()
	tc := r.Bytes()
	msg.Type = r.String()
	if err := r.Err(); err != nil {
		return "", 0, Message{}, fmt.Errorf("transport: parse frame: %w", err)
	}
	switch len(tc) {
	case 0:
	case traceContextLen:
		copy(msg.Trace.TraceID[:], tc[:16])
		copy(msg.Trace.SpanID[:], tc[16:])
	default:
		return "", 0, Message{}, fmt.Errorf("transport: parse frame: trace context is %d bytes (want 0 or %d)", len(tc), traceContextLen)
	}
	msg.Body = payload[len(payload)-r.Len():]
	return to, seq, msg, nil
}

// --- pooled encode buffers ---

// maxPooledBuf bounds the capacity of buffers returned to the pool so one
// outsized block broadcast does not pin megabytes per P forever.
const maxPooledBuf = 1 << 20

type encodeBuf struct{ b []byte }

var bufPool = sync.Pool{New: func() any { return &encodeBuf{b: make([]byte, 0, 1024)} }}

func getBuf() *encodeBuf { return bufPool.Get().(*encodeBuf) }

func putBuf(buf *encodeBuf) {
	if cap(buf.b) > maxPooledBuf {
		return
	}
	buf.b = buf.b[:0]
	bufPool.Put(buf)
}
