package transport

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/binenc"
	"repro/internal/obs"
)

func testSpanContext() obs.SpanContext {
	var sc obs.SpanContext
	for i := range sc.TraceID {
		sc.TraceID[i] = byte(i + 1)
	}
	for i := range sc.SpanID {
		sc.SpanID[i] = byte(0xa0 + i)
	}
	return sc
}

func TestFrameRoundTripWithTraceContext(t *testing.T) {
	msg := Message{Type: "echo", Body: []byte("payload"), Trace: testSpanContext()}
	buf := appendFrame(nil, "srv-1", 42, msg)

	to, seq, got, err := parseFrame(buf)
	if err != nil {
		t.Fatalf("parseFrame: %v", err)
	}
	if to != "srv-1" || seq != 42 || got.Type != "echo" || !bytes.Equal(got.Body, []byte("payload")) {
		t.Fatalf("round trip: to=%q seq=%d type=%q body=%q", to, seq, got.Type, got.Body)
	}
	if got.Trace != msg.Trace {
		t.Fatalf("trace context changed: got %+v want %+v", got.Trace, msg.Trace)
	}
}

func TestFrameRoundTripWithoutTraceContext(t *testing.T) {
	msg := Message{Type: "echo", Body: []byte("untraced")}
	buf := appendFrame(nil, "srv-2", 7, msg)

	_, _, got, err := parseFrame(buf)
	if err != nil {
		t.Fatalf("parseFrame: %v", err)
	}
	if got.Trace.Valid() {
		t.Fatalf("untraced frame decoded a span context: %+v", got.Trace)
	}
}

func TestFrameRejectsRetiredVersion(t *testing.T) {
	// The pre-trace layout (0x02) is no longer accepted: a mixed-version
	// deployment must fail loudly, not mis-slice the frame.
	buf := appendFrame(nil, "srv", 1, Message{Type: "echo", Body: []byte("x")})
	buf[0] = 0x02
	if _, _, _, err := parseFrame(buf); err == nil || !strings.Contains(err.Error(), "unsupported frame version") {
		t.Fatalf("retired frame version accepted: %v", err)
	}
}

func TestFrameRejectsBadTraceLength(t *testing.T) {
	// Hand-build a frame whose trace field is neither empty nor 24 bytes.
	buf := binenc.AppendByte(nil, frameVersion)
	buf = binenc.AppendString(buf, "srv")
	buf = binenc.AppendUvarint(buf, 1)
	buf = binenc.AppendBytes(buf, []byte{1, 2, 3})
	buf = binenc.AppendString(buf, "echo")
	buf = append(buf, "body"...)
	if _, _, _, err := parseFrame(buf); err == nil || !strings.Contains(err.Error(), "trace context") {
		t.Fatalf("truncated trace context accepted: %v", err)
	}
}

func FuzzParseFrame(f *testing.F) {
	f.Add(appendFrame(nil, "srv-1", 1, Message{Type: "echo", Body: []byte("plain")}))
	f.Add(appendFrame(nil, "srv-2", 99, Message{Type: "get_vote", Body: []byte("traced"), Trace: testSpanContext()}))
	f.Add(appendFrame(nil, "", 0, Message{Type: "", Body: nil}))
	f.Add([]byte{})
	f.Add([]byte{frameVersion})
	f.Add([]byte{0x02, 3, 's', 'r', 'v'})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Parsing must never panic, and anything that parses must survive a
		// re-encode/re-parse round trip unchanged. (Byte-exact canonicality
		// is not required: uvarints tolerate non-minimal encodings, which is
		// harmless because the MAC/signature covers the exact bytes received
		// — an attacker cannot swap encodings under an existing tag.)
		to, seq, msg, err := parseFrame(data)
		if err != nil {
			return
		}
		re := appendFrame(nil, to, seq, msg)
		to2, seq2, msg2, err := parseFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to parse: %v", err)
		}
		if to2 != to || seq2 != seq || msg2.Type != msg.Type ||
			msg2.Trace != msg.Trace || !bytes.Equal(msg2.Body, msg.Body) {
			t.Fatalf("round trip changed the frame:\n first: %q %d %+v\nsecond: %q %d %+v",
				to, seq, msg, to2, seq2, msg2)
		}
	})
}
