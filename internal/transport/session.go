package transport

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/binenc"
	"repro/internal/identity"
)

// Frame authentication. Paper §3.1 requires every message exchange to be
// authenticated so a receiver can verify the sender; the original
// implementation satisfied this by Ed25519-signing every individual frame,
// which put two signatures and two verifications (~200µs of edwards25519
// field arithmetic) on every RPC. The default is now an authenticated
// session channel in the style production signed-ledger systems use (CCF's
// session model, see PAPERS.md): a pairwise session key is agreed once per
// peer via an Ed25519-signed X25519 handshake, and every subsequent frame
// carries an HMAC-SHA256 tag under that key — the same pairwise
// authenticity and integrity guarantee at around a microsecond per frame.
//
// The asymmetric signatures that the paper's auditability actually rests
// on are untouched: client end_transaction envelopes remain Ed25519-signed
// and are stored in blocks for non-repudiable blame assignment (§3.2), and
// blocks remain collectively signed by CoSi. Only the transport framing —
// which no audit ever re-examines — uses the amortized channel.

// FrameAuth selects how transport frames are authenticated.
type FrameAuth int

// Frame authentication modes.
const (
	// FrameAuthSession authenticates frames with per-peer session HMACs
	// bootstrapped by a signed handshake (the default).
	FrameAuthSession FrameAuth = iota
	// FrameAuthEnvelope signs every frame individually with the sender's
	// Ed25519 key — the paper-literal mode, retained for debugging and for
	// measuring the per-message signature cost it trades away.
	FrameAuthEnvelope
)

// String names the frame-authentication mode.
func (a FrameAuth) String() string {
	switch a {
	case FrameAuthSession:
		return "session"
	case FrameAuthEnvelope:
		return "envelope"
	default:
		return fmt.Sprintf("frameauth(%d)", int(a))
	}
}

var defaultFrameAuth atomic.Int32

// SetDefaultFrameAuth replaces the process-wide frame authentication mode.
// Like SetDefaultCodec it is part of deployment configuration: set it
// before any traffic flows, identically on every node.
func SetDefaultFrameAuth(a FrameAuth) { defaultFrameAuth.Store(int32(a)) }

// DefaultFrameAuth returns the process-wide frame authentication mode.
func DefaultFrameAuth() FrameAuth { return FrameAuth(defaultFrameAuth.Load()) }

// Handshake and MAC domain-separation contexts.
const (
	helloContext   = "fides/transport/hello/v1"
	sessionContext = "fides/transport/session/v1"
)

// macSize is the per-frame authenticator length (HMAC-SHA256).
const macSize = sha256.Size

// session is one established pairwise authenticated channel.
type session struct {
	key [sha256.Size]byte
}

// mac computes the frame authenticator for payload.
func (s *session) mac(payload []byte) []byte {
	h := hmac.New(sha256.New, s.key[:])
	h.Write(payload)
	return h.Sum(nil)
}

// verify checks a frame authenticator in constant time.
func (s *session) verify(payload, tag []byte) bool {
	if len(tag) != macSize {
		return false
	}
	want := s.mac(payload)
	return subtle.ConstantTimeCompare(want, tag) == 1
}

// ErrNoSession reports a MAC frame from a peer with no established
// session, or a MAC that does not verify.
var ErrNoSession = errors.New("transport: no authenticated session with peer")

// ErrBadMAC reports a frame whose session authenticator does not verify.
var ErrBadMAC = errors.New("transport: invalid frame MAC")

// sealHello builds the signed handshake offer ⟨ctx, from, to, ephemeral
// X25519 public key⟩. Both sides sign their offer with their Ed25519
// identity key, so the handshake inherits the registry's trust: an
// unregistered or impersonating peer cannot complete it.
func sealHello(ident *identity.Identity, to identity.NodeID, ephPub []byte) identity.Envelope {
	payload := make([]byte, 0, len(helloContext)+len(ident.ID)+len(to)+len(ephPub)+8)
	payload = binenc.AppendString(payload, helloContext)
	payload = binenc.AppendString(payload, string(ident.ID))
	payload = binenc.AppendString(payload, string(to))
	payload = binenc.AppendBytes(payload, ephPub)
	return identity.Seal(ident, payload)
}

// openHello verifies a handshake offer against the registry and returns
// the sender's ephemeral public key.
func openHello(reg *identity.Registry, self identity.NodeID, env identity.Envelope) ([]byte, error) {
	payload, err := reg.Open(env)
	if err != nil {
		return nil, err
	}
	r := binenc.NewReader(payload)
	if ctx := r.String(); ctx != helloContext && r.Err() == nil {
		return nil, fmt.Errorf("transport: handshake context %q", ctx)
	}
	from := identity.NodeID(r.String())
	to := identity.NodeID(r.String())
	ephPub := r.Bytes()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("transport: handshake payload: %w", err)
	}
	if from != env.From {
		return nil, fmt.Errorf("transport: handshake sender %q inside envelope from %q", from, env.From)
	}
	if to != self {
		return nil, fmt.Errorf("transport: handshake addressed to %q delivered to %q", to, self)
	}
	return ephPub, nil
}

// deriveSession computes the pairwise session key from the X25519 shared
// secret and the full handshake transcript (initiator, responder, both
// ephemerals), so neither side can be confused about who agreed with whom.
func deriveSession(shared []byte, initiator, responder identity.NodeID, ephInit, ephResp []byte) *session {
	transcript := make([]byte, 0, len(sessionContext)+len(initiator)+len(responder)+len(ephInit)+len(ephResp)+16)
	transcript = binenc.AppendString(transcript, sessionContext)
	transcript = binenc.AppendString(transcript, string(initiator))
	transcript = binenc.AppendString(transcript, string(responder))
	transcript = binenc.AppendBytes(transcript, ephInit)
	transcript = binenc.AppendBytes(transcript, ephResp)
	h := hmac.New(sha256.New, shared)
	h.Write(transcript)
	s := &session{}
	copy(s.key[:], h.Sum(nil))
	return s
}

// newEphemeral generates one side's ephemeral X25519 key.
func newEphemeral() (*ecdh.PrivateKey, error) {
	key, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("transport: handshake ephemeral: %w", err)
	}
	return key, nil
}

// completeHandshake is the shared second half of both handshake roles:
// combine the local ephemeral with the peer's offered public key and
// derive the session.
func completeHandshake(local *ecdh.PrivateKey, peerEphPub []byte, initiator, responder identity.NodeID, ephInit, ephResp []byte) (*session, error) {
	peerKey, err := ecdh.X25519().NewPublicKey(peerEphPub)
	if err != nil {
		return nil, fmt.Errorf("transport: handshake peer key: %w", err)
	}
	shared, err := local.ECDH(peerKey)
	if err != nil {
		return nil, fmt.Errorf("transport: handshake ecdh: %w", err)
	}
	return deriveSession(shared, initiator, responder, ephInit, ephResp), nil
}

// hsInitiator carries the initiator's ephemeral key across the two halves
// of the handshake. Both transports (in-process and TCP) run exactly this
// logic; only the byte shuttling between the halves differs.
type hsInitiator struct {
	ident *identity.Identity
	peer  identity.NodeID
	local *ecdh.PrivateKey
}

// beginHandshake starts the initiator role: generate the ephemeral and
// produce the signed offer to send to peer.
func beginHandshake(ident *identity.Identity, peer identity.NodeID) (*hsInitiator, identity.Envelope, error) {
	local, err := newEphemeral()
	if err != nil {
		return nil, identity.Envelope{}, err
	}
	offer := sealHello(ident, peer, local.PublicKey().Bytes())
	return &hsInitiator{ident: ident, peer: peer, local: local}, offer, nil
}

// finish completes the initiator role from the responder's signed reply.
func (h *hsInitiator) finish(reg *identity.Registry, reply identity.Envelope) (*session, error) {
	if reply.From != h.peer {
		return nil, fmt.Errorf("transport: handshake answered by %q, want %q", reply.From, h.peer)
	}
	ephResp, err := openHello(reg, h.ident.ID, reply)
	if err != nil {
		return nil, err
	}
	return completeHandshake(h.local, ephResp, h.ident.ID, h.peer, h.local.PublicKey().Bytes(), ephResp)
}

// respondHandshake runs the full responder role: verify the signed offer
// against the registry (unregistered or impersonating initiators fail
// here), derive the session, and produce the signed reply.
func respondHandshake(ident *identity.Identity, reg *identity.Registry, offer identity.Envelope) (identity.Envelope, *session, error) {
	ephInit, err := openHello(reg, ident.ID, offer)
	if err != nil {
		return identity.Envelope{}, nil, err
	}
	local, err := newEphemeral()
	if err != nil {
		return identity.Envelope{}, nil, err
	}
	ephResp := local.PublicKey().Bytes()
	s, err := completeHandshake(local, ephInit, offer.From, ident.ID, ephInit, ephResp)
	if err != nil {
		return identity.Envelope{}, nil, err
	}
	return sealHello(ident, offer.From, ephResp), s, nil
}
