package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/binenc"
	"repro/internal/identity"
	"repro/internal/obs"
)

// zeroTime clears a connection deadline.
var zeroTime time.Time

// maxFrameSize bounds a single wire frame; larger frames are rejected
// rather than buffered (defensive against a malicious peer streaming
// garbage lengths).
const maxFrameSize = 64 << 20 // 64 MiB

// TCPNode is a Transport over real TCP sockets: every request and response
// is a length-prefixed blob whose first byte selects the authentication
// form — a session-MAC frame (default; the session is agreed per
// connection by a signed handshake) or a binary signed identity.Envelope
// (FrameAuthEnvelope mode). One connection is opened per (caller, callee)
// pair per in-flight call, drawn from a small free pool, so concurrent
// broadcasts do not head-of-line block each other and handshakes amortize
// across pooled reuse.
type TCPNode struct {
	ident   *identity.Identity
	reg     *identity.Registry
	handler Handler
	ln      net.Listener

	mu       sync.Mutex
	seq      uint64
	addrs    map[identity.NodeID]string
	pools    map[identity.NodeID][]*tcpConn
	accepted map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

var _ Transport = (*TCPNode)(nil)

type tcpConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	// scratch is the reusable raw-frame read buffer. Decoded values are
	// copied out of it before the connection returns to the pool, so it is
	// safe to reuse across calls on the same connection.
	scratch []byte
	// sess is the connection's authenticated session (session mode only),
	// bound to the peer that completed the handshake.
	sess *session
	// lastRespSeq is the highest response sequence number seen on this
	// connection; responses must arrive strictly increasing. This is
	// per-connection replay discrimination only: in session mode the MAC
	// key is also per connection, so cross-connection replay is impossible
	// outright, while in FrameAuthEnvelope mode a signed frame could still
	// be replayed on a fresh connection (as in the original per-message
	// signature implementation, which had no freshness binding either).
	lastRespSeq uint64
}

// Blob kind bytes. Kind 1 is identity's binary envelope version byte, so
// signed envelopes decode directly; the MAC and handshake kinds are
// transport-local.
const (
	blobKindMACFrame  = 2
	blobKindHandshake = 3
)

// appendMACFrame appends a session-authenticated frame blob:
// kind(1) | from | mac | payload.
func appendMACFrame(buf []byte, from identity.NodeID, mac, payload []byte) []byte {
	buf = binenc.AppendByte(buf, blobKindMACFrame)
	buf = binenc.AppendString(buf, string(from))
	buf = binenc.AppendBytes(buf, mac)
	return binenc.AppendBytes(buf, payload)
}

// parseMACFrame decodes a session-authenticated frame blob. The returned
// payload aliases raw.
func parseMACFrame(raw []byte) (from identity.NodeID, mac, payload []byte, err error) {
	r := binenc.NewReader(raw)
	if kind := r.Byte(); kind != blobKindMACFrame && r.Err() == nil {
		return "", nil, nil, fmt.Errorf("transport: blob kind %d, want MAC frame", kind)
	}
	from = identity.NodeID(r.String())
	mac = r.Bytes()
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return "", nil, nil, fmt.Errorf("transport: parse MAC frame: %w", err)
	}
	if n != r.Len() {
		return "", nil, nil, fmt.Errorf("transport: MAC frame payload length %d, have %d", n, r.Len())
	}
	payload = raw[len(raw)-n:]
	return from, mac, payload, nil
}

// parseEnvelopeBlob decodes a signed-envelope blob. The decoded envelope
// copies out of raw.
func parseEnvelopeBlob(raw []byte) (identity.Envelope, error) {
	var env identity.Envelope
	if err := env.UnmarshalBinary(raw); err != nil {
		return identity.Envelope{}, err
	}
	return env, nil
}

// NewTCPNode starts listening on listenAddr ("host:port"; port 0 picks a
// free port) and serves incoming calls through handler (nil for pure
// clients). Use Addr to learn the bound address and SetAddress to teach the
// node where its peers listen.
func NewTCPNode(ident *identity.Identity, reg *identity.Registry, listenAddr string, handler Handler) (*TCPNode, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	n := &TCPNode{
		ident:    ident,
		reg:      reg,
		handler:  handler,
		ln:       ln,
		addrs:    make(map[identity.NodeID]string),
		pools:    make(map[identity.NodeID][]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// Self returns the local node id.
func (n *TCPNode) Self() identity.NodeID { return n.ident.ID }

// SetAddress records the listen address of a peer.
func (n *TCPNode) SetAddress(id identity.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
}

// Call implements Transport.
func (n *TCPNode) Call(ctx context.Context, to identity.NodeID, msg Message) (Message, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return Message{}, ErrClosed
	}
	addr, ok := n.addrs[to]
	n.mu.Unlock()
	if !ok {
		return Message{}, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}

	conn, err := n.acquireConn(ctx, to, addr)
	if err != nil {
		return Message{}, err
	}
	ok = false
	defer func() {
		if ok {
			n.releaseConn(to, conn)
		} else {
			_ = conn.c.Close()
		}
	}()

	if deadline, has := ctx.Deadline(); has {
		_ = conn.c.SetDeadline(deadline)
	} else {
		_ = conn.c.SetDeadline(zeroTime)
	}

	mode := DefaultFrameAuth()
	if mode == FrameAuthSession && conn.sess == nil {
		if err := n.handshakeConn(conn, to); err != nil {
			return Message{}, fmt.Errorf("transport: handshake with %s: %w", to, err)
		}
	}

	// The sequence number is drawn only after the connection is exclusively
	// held: the receiver enforces strictly increasing seqs per connection,
	// and assigning earlier would let two concurrent Calls deliver
	// out-of-order seqs on one pooled connection.
	n.mu.Lock()
	n.seq++
	seq := n.seq
	n.mu.Unlock()

	// Propagate the caller's span context in the authenticated frame
	// header (same rule as the in-process transport).
	if sc, scok := obs.SpanContextFrom(ctx); scok {
		msg.Trace = sc
	}

	// The request frame (and its authenticated blob) is encoded into
	// pooled buffers that are fully flushed to the socket before the call
	// returns, so they are recycled on exit.
	frameBuf := getBuf()
	defer putBuf(frameBuf)
	frameBuf.b = appendFrame(frameBuf.b[:0], to, seq, msg)

	if conn.sess != nil && mode == FrameAuthSession {
		blob := getBuf()
		blob.b = appendMACFrame(blob.b[:0], n.ident.ID, conn.sess.mac(frameBuf.b), frameBuf.b)
		err = writeBlob(conn.bw, blob.b)
		putBuf(blob)
	} else {
		env := identity.Seal(n.ident, frameBuf.b)
		blob := getBuf()
		blob.b = env.AppendBinary(blob.b[:0])
		err = writeBlob(conn.bw, blob.b)
		putBuf(blob)
	}
	if err != nil {
		return Message{}, fmt.Errorf("transport: send to %s: %w", to, err)
	}

	raw, err := readBlob(conn.br, &conn.scratch)
	if err != nil {
		return Message{}, fmt.Errorf("transport: receive from %s: %w", to, err)
	}
	var from identity.NodeID
	var respSeq uint64
	var out Message
	if raw[0] == blobKindMACFrame {
		if conn.sess == nil {
			return Message{}, fmt.Errorf("%w: unsolicited MAC frame from %s", ErrNoSession, to)
		}
		mfrom, mac, payload, err := parseMACFrame(raw)
		if err != nil {
			return Message{}, err
		}
		if !conn.sess.verify(payload, mac) {
			return Message{}, fmt.Errorf("%w: from %q", ErrBadMAC, to)
		}
		respTo, rseq, respMsg, err := parseFrame(payload)
		if err != nil {
			return Message{}, err
		}
		if respTo != n.ident.ID {
			return Message{}, fmt.Errorf("transport: frame addressed to %q delivered to %q", respTo, n.ident.ID)
		}
		// The body aliases the connection's scratch buffer; copy before the
		// connection returns to the pool.
		respMsg.Body = append([]byte(nil), respMsg.Body...)
		from, respSeq, out = mfrom, rseq, respMsg
	} else {
		respEnv, err := parseEnvelopeBlob(raw)
		if err != nil {
			return Message{}, err
		}
		if from, respSeq, out, err = openFrame(n.reg, n.ident.ID, respEnv); err != nil {
			return Message{}, err
		}
	}
	if from != to {
		return Message{}, fmt.Errorf("transport: response impersonation: asked %q, answered %q", to, from)
	}
	// Per-connection replay discrimination: a response replayed from
	// earlier traffic on this connection carries a stale sequence number.
	if respSeq <= conn.lastRespSeq {
		return Message{}, fmt.Errorf("transport: replayed response from %s (seq %d ≤ %d)", to, respSeq, conn.lastRespSeq)
	}
	conn.lastRespSeq = respSeq
	ok = true
	if out.Type == msgTypeError {
		return Message{}, decodeErrorReply(to, out.Body)
	}
	return out, nil
}

// handshakeConn runs the initiator half of the signed session handshake on
// a fresh connection.
func (n *TCPNode) handshakeConn(conn *tcpConn, to identity.NodeID) error {
	h, offer, err := beginHandshake(n.ident, to)
	if err != nil {
		return err
	}
	blob := getBuf()
	blob.b = append(blob.b[:0], blobKindHandshake)
	blob.b = offer.AppendBinary(blob.b)
	err = writeBlob(conn.bw, blob.b)
	putBuf(blob)
	if err != nil {
		return err
	}
	raw, err := readBlob(conn.br, &conn.scratch)
	if err != nil {
		return err
	}
	if raw[0] != blobKindHandshake {
		// A responder that rejects the handshake answers with a signed
		// error reply; surface its diagnostic instead of a bare kind
		// mismatch.
		if env, perr := parseEnvelopeBlob(raw); perr == nil {
			if _, _, out, oerr := openFrame(n.reg, n.ident.ID, env); oerr == nil && out.Type == msgTypeError {
				return decodeErrorReply(to, out.Body)
			}
		}
		return fmt.Errorf("transport: expected handshake reply, got blob kind %d", raw[0])
	}
	var reply identity.Envelope
	if err := reply.UnmarshalBinary(raw[1:]); err != nil {
		return err
	}
	sess, err := h.finish(n.reg, reply)
	if err != nil {
		return err
	}
	conn.sess = sess
	return nil
}

func (n *TCPNode) acquireConn(ctx context.Context, to identity.NodeID, addr string) (*tcpConn, error) {
	n.mu.Lock()
	pool := n.pools[to]
	if len(pool) > 0 {
		conn := pool[len(pool)-1]
		n.pools[to] = pool[:len(pool)-1]
		n.mu.Unlock()
		return conn, nil
	}
	n.mu.Unlock()
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
	}
	return &tcpConn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}, nil
}

func (n *TCPNode) releaseConn(to identity.NodeID, conn *tcpConn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || len(n.pools[to]) >= 8 {
		_ = conn.c.Close()
		return
	}
	n.pools[to] = append(n.pools[to], conn)
}

// Close stops the listener, closes pooled connections, and waits for all
// serving goroutines to drain.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	pools := n.pools
	n.pools = map[identity.NodeID][]*tcpConn{}
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	n.mu.Unlock()

	err := n.ln.Close()
	for _, pool := range pools {
		for _, conn := range pool {
			_ = conn.c.Close()
		}
	}
	// Force-close accepted connections so serving goroutines unblock even
	// while peers keep their (now useless) pooled connections open.
	for _, c := range accepted {
		_ = c.Close()
	}
	n.wg.Wait()
	return err
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = c.Close()
			return
		}
		n.accepted[c] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(c)
	}
}

// serveConnQueue bounds the blobs a connection's reader may run ahead of
// its processor: enough to keep frame authentication pipelined with socket
// reads, small enough that a slow handler exerts TCP backpressure instead
// of buffering a peer's whole backlog in memory.
const serveConnQueue = 16

// serveConn is the receive half of an accepted connection: it only reads
// length-prefixed blobs off the socket and hands each to the processor
// goroutine through a bounded channel. Frame parsing, MAC verification and
// request handling all happen on the processor (processConn), so
// authenticating frame i never delays reading frame i+1 off the wire —
// the transport leg of the verification-plane refactor.
func (n *TCPNode) serveConn(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = c.Close()
		n.mu.Lock()
		delete(n.accepted, c)
		n.mu.Unlock()
	}()
	blobs := make(chan *encodeBuf, serveConnQueue)
	done := make(chan struct{})
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer close(done)
		n.processConn(c, blobs)
	}()
	br := bufio.NewReader(c)
	var scratch []byte
	for {
		raw, err := readBlob(br, &scratch)
		if err != nil {
			break // peer closed or garbage framing
		}
		// The blob is copied out of scratch into a pooled buffer the
		// processor owns (and returns to the pool) so the next read can
		// start immediately.
		buf := getBuf()
		buf.b = append(buf.b[:0], raw...)
		select {
		case blobs <- buf:
		case <-done: // processor dropped the connection
			putBuf(buf)
			close(blobs)
			return
		}
	}
	close(blobs)
	<-done
}

// processConn owns a connection's protocol state — the authenticated
// session, peer identity, replay sequence and write side — and processes
// blobs in arrival order, preserving the per-connection ordering the
// replay check depends on.
func (n *TCPNode) processConn(c net.Conn, blobs <-chan *encodeBuf) {
	// Closing the socket on exit unblocks the reader goroutine's readBlob
	// when the processor drops the connection mid-stream.
	defer func() { _ = c.Close() }()
	// Drain and recycle whatever the reader buffered past the failure.
	defer func() {
		for buf := range blobs {
			putBuf(buf)
		}
	}()
	bw := bufio.NewWriter(c)
	// sess and peer are this connection's authenticated session, set by a
	// handshake blob; MAC frames are only accepted from that peer. lastSeq
	// enforces strictly increasing request sequence numbers per connection
	// (see tcpConn.lastRespSeq for the exact replay guarantees per auth
	// mode).
	var sess *session
	var peer identity.NodeID
	var lastSeq uint64
	for buf := range blobs {
		ok := n.processBlob(bw, buf.b, &sess, &peer, &lastSeq)
		putBuf(buf)
		if !ok {
			return
		}
	}
}

// processBlob handles one inbound blob; a false return drops the
// connection.
func (n *TCPNode) processBlob(bw *bufio.Writer, raw []byte, sessp **session, peerp *identity.NodeID, lastSeq *uint64) bool {
	sess, peer := *sessp, *peerp
	switch raw[0] {
	case blobKindHandshake:
		var offer identity.Envelope
		if err := offer.UnmarshalBinary(raw[1:]); err != nil {
			return false
		}
		reply, s, err := n.acceptHello(offer)
		if err != nil {
			// Answer with a signed error so the initiator learns why
			// (e.g. it is not in the registry), then drop the conn.
			n.writeErrorReply(bw, offer.From, err)
			return false
		}
		*sessp, *peerp = s, offer.From
		blob := getBuf()
		blob.b = append(blob.b[:0], blobKindHandshake)
		blob.b = reply.AppendBinary(blob.b)
		err = writeBlob(bw, blob.b)
		putBuf(blob)
		if err != nil {
			return false
		}
	case blobKindMACFrame:
		if sess == nil {
			return false // MAC frame before handshake
		}
		mfrom, mac, payload, err := parseMACFrame(raw)
		if err != nil || mfrom != peer || !sess.verify(payload, mac) {
			return false // unauthenticated traffic: drop the connection
		}
		reqTo, rseq, msg, perr := parseFrame(payload)
		var resp Message
		switch {
		case perr != nil:
			resp = Message{Type: msgTypeError, Body: mustJSON(perr.Error())}
		case reqTo != n.ident.ID:
			resp = Message{Type: msgTypeError, Body: mustJSON(fmt.Sprintf("frame addressed to %q delivered to %q", reqTo, n.ident.ID))}
		case rseq <= *lastSeq:
			return false // replayed request on this connection: drop it
		default:
			*lastSeq = rseq
			resp = n.handle(peer, msg)
		}
		if err := n.writeResponse(bw, sess, peer, resp); err != nil {
			return false
		}
	default: // individually signed envelope (FrameAuthEnvelope peers)
		env, err := parseEnvelopeBlob(raw)
		if err != nil {
			return false
		}
		from, rseq, msg, err := openFrame(n.reg, n.ident.ID, env)
		var resp Message
		switch {
		case err != nil:
			resp = Message{Type: msgTypeError, Body: mustJSON(err.Error())}
		case rseq <= *lastSeq:
			return false // replayed request on this connection: drop it
		default:
			*lastSeq = rseq
			resp = n.handle(from, msg)
		}
		if err := n.writeResponse(bw, nil, from, resp); err != nil {
			return false
		}
	}
	return true
}

// writeResponse frames, authenticates (session MAC when sess is non-nil,
// Ed25519 envelope otherwise) and writes one response. All pooled buffers
// are flushed to the socket before returning, so they are immediately
// recyclable.
func (n *TCPNode) writeResponse(bw *bufio.Writer, sess *session, to identity.NodeID, resp Message) error {
	n.mu.Lock()
	n.seq++
	seq := n.seq
	n.mu.Unlock()
	frameBuf := getBuf()
	frameBuf.b = appendFrame(frameBuf.b[:0], to, seq, resp)
	blob := getBuf()
	if sess != nil {
		blob.b = appendMACFrame(blob.b[:0], n.ident.ID, sess.mac(frameBuf.b), frameBuf.b)
	} else {
		respEnv := identity.Seal(n.ident, frameBuf.b)
		blob.b = respEnv.AppendBinary(blob.b[:0])
	}
	err := writeBlob(bw, blob.b)
	putBuf(blob)
	putBuf(frameBuf)
	return err
}

// handle invokes the node's handler, converting failures to error replies.
func (n *TCPNode) handle(from identity.NodeID, msg Message) Message {
	if n.handler == nil {
		return Message{Type: msgTypeError, Body: mustJSON("node has no handler")}
	}
	// The handler context carries the frame's trace context so spans the
	// handler opens parent under the remote caller's span.
	out, handleErr := n.handler.Handle(obs.ContextWithSpanContext(context.Background(), msg.Trace), from, msg)
	if handleErr != nil {
		return Message{Type: msgTypeError, Body: mustJSON(handleErr.Error())}
	}
	return out
}

// writeErrorReply sends a signed error-typed response (used for handshake
// failures, where no session exists to MAC under).
func (n *TCPNode) writeErrorReply(bw *bufio.Writer, to identity.NodeID, cause error) {
	_ = n.writeResponse(bw, nil, to, Message{Type: msgTypeError, Body: mustJSON(cause.Error())})
}

// acceptHello is the responder half of the session handshake.
func (n *TCPNode) acceptHello(offer identity.Envelope) (identity.Envelope, *session, error) {
	return respondHandshake(n.ident, n.reg, offer)
}

// writeBlob writes one length-prefixed blob and flushes.
func writeBlob(bw *bufio.Writer, b []byte) error {
	if len(b) > maxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(b))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
	if _, err := bw.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := bw.Write(b); err != nil {
		return err
	}
	return bw.Flush()
}

// readBlob reads one length-prefixed blob into *scratch (grown as needed
// and reused across calls) and returns the raw bytes, which alias
// *scratch: callers must copy anything that outlives the next read.
func readBlob(br *bufio.Reader, scratch *[]byte) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size == 0 || size > maxFrameSize {
		return nil, errors.New("transport: invalid frame size")
	}
	raw := *scratch
	if cap(raw) < int(size) {
		raw = make([]byte, size)
		// Retain only reasonably sized buffers across reads so one huge
		// frame (a multi-MB log transfer) does not pin its capacity for
		// the connection's whole pooled lifetime.
		if size <= maxPooledBuf {
			*scratch = raw
		}
	}
	raw = raw[:size]
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, err
	}
	return raw, nil
}
