package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/identity"
)

// zeroTime clears a connection deadline.
var zeroTime time.Time

// maxFrameSize bounds a single wire frame; larger frames are rejected
// rather than buffered (defensive against a malicious peer streaming
// garbage lengths).
const maxFrameSize = 64 << 20 // 64 MiB

// TCPNode is a Transport over real TCP sockets: every request and response
// is a length-prefixed JSON identity.Envelope. One connection is opened per
// (caller, callee) pair per in-flight call, drawn from a small free pool,
// so concurrent broadcasts do not head-of-line block each other.
type TCPNode struct {
	ident   *identity.Identity
	reg     *identity.Registry
	handler Handler
	ln      net.Listener

	mu       sync.Mutex
	seq      uint64
	addrs    map[identity.NodeID]string
	pools    map[identity.NodeID][]*tcpConn
	accepted map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

var _ Transport = (*TCPNode)(nil)

type tcpConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// NewTCPNode starts listening on listenAddr ("host:port"; port 0 picks a
// free port) and serves incoming calls through handler (nil for pure
// clients). Use Addr to learn the bound address and SetAddress to teach the
// node where its peers listen.
func NewTCPNode(ident *identity.Identity, reg *identity.Registry, listenAddr string, handler Handler) (*TCPNode, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	n := &TCPNode{
		ident:    ident,
		reg:      reg,
		handler:  handler,
		ln:       ln,
		addrs:    make(map[identity.NodeID]string),
		pools:    make(map[identity.NodeID][]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// Self returns the local node id.
func (n *TCPNode) Self() identity.NodeID { return n.ident.ID }

// SetAddress records the listen address of a peer.
func (n *TCPNode) SetAddress(id identity.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
}

// Call implements Transport.
func (n *TCPNode) Call(ctx context.Context, to identity.NodeID, msg Message) (Message, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return Message{}, ErrClosed
	}
	addr, ok := n.addrs[to]
	n.seq++
	seq := n.seq
	n.mu.Unlock()
	if !ok {
		return Message{}, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}

	env, err := sealFrame(n.ident, to, seq, msg)
	if err != nil {
		return Message{}, err
	}

	conn, err := n.acquireConn(ctx, to, addr)
	if err != nil {
		return Message{}, err
	}
	ok = false
	defer func() {
		if ok {
			n.releaseConn(to, conn)
		} else {
			_ = conn.c.Close()
		}
	}()

	if deadline, has := ctx.Deadline(); has {
		_ = conn.c.SetDeadline(deadline)
	} else {
		_ = conn.c.SetDeadline(zeroTime)
	}
	if err := writeFrame(conn.bw, env); err != nil {
		return Message{}, fmt.Errorf("transport: send to %s: %w", to, err)
	}
	respEnv, err := readFrame(conn.br)
	if err != nil {
		return Message{}, fmt.Errorf("transport: receive from %s: %w", to, err)
	}
	from, out, err := openFrame(n.reg, n.ident.ID, respEnv)
	if err != nil {
		return Message{}, err
	}
	if from != to {
		return Message{}, fmt.Errorf("transport: response impersonation: asked %q, answered %q", to, from)
	}
	ok = true
	if out.Type == "error" {
		var emsg string
		_ = json.Unmarshal(out.Body, &emsg)
		return Message{}, &RemoteError{Node: to, Msg: emsg}
	}
	return out, nil
}

func (n *TCPNode) acquireConn(ctx context.Context, to identity.NodeID, addr string) (*tcpConn, error) {
	n.mu.Lock()
	pool := n.pools[to]
	if len(pool) > 0 {
		conn := pool[len(pool)-1]
		n.pools[to] = pool[:len(pool)-1]
		n.mu.Unlock()
		return conn, nil
	}
	n.mu.Unlock()
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
	}
	return &tcpConn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}, nil
}

func (n *TCPNode) releaseConn(to identity.NodeID, conn *tcpConn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || len(n.pools[to]) >= 8 {
		_ = conn.c.Close()
		return
	}
	n.pools[to] = append(n.pools[to], conn)
}

// Close stops the listener, closes pooled connections, and waits for all
// serving goroutines to drain.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	pools := n.pools
	n.pools = map[identity.NodeID][]*tcpConn{}
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	n.mu.Unlock()

	err := n.ln.Close()
	for _, pool := range pools {
		for _, conn := range pool {
			_ = conn.c.Close()
		}
	}
	// Force-close accepted connections so serving goroutines unblock even
	// while peers keep their (now useless) pooled connections open.
	for _, c := range accepted {
		_ = c.Close()
	}
	n.wg.Wait()
	return err
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = c.Close()
			return
		}
		n.accepted[c] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(c)
	}
}

func (n *TCPNode) serveConn(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = c.Close()
		n.mu.Lock()
		delete(n.accepted, c)
		n.mu.Unlock()
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		env, err := readFrame(br)
		if err != nil {
			return // peer closed or garbage framing
		}
		from, msg, err := openFrame(n.reg, n.ident.ID, env)
		var resp Message
		if err != nil {
			resp = Message{Type: "error", Body: mustJSON(err.Error())}
		} else if n.handler == nil {
			resp = Message{Type: "error", Body: mustJSON("node has no handler")}
		} else {
			out, handleErr := n.handler.Handle(context.Background(), from, msg)
			if handleErr != nil {
				resp = Message{Type: "error", Body: mustJSON(handleErr.Error())}
			} else {
				resp = out
			}
		}
		n.mu.Lock()
		n.seq++
		seq := n.seq
		n.mu.Unlock()
		respEnv, err := sealFrame(n.ident, from, seq, resp)
		if err != nil {
			return
		}
		if err := writeFrame(bw, respEnv); err != nil {
			return
		}
	}
}

func writeFrame(bw *bufio.Writer, env identity.Envelope) error {
	raw, err := json.Marshal(env)
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(raw)))
	if _, err := bw.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := bw.Write(raw); err != nil {
		return err
	}
	return bw.Flush()
}

func readFrame(br *bufio.Reader) (identity.Envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return identity.Envelope{}, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size == 0 || size > maxFrameSize {
		return identity.Envelope{}, errors.New("transport: invalid frame size")
	}
	raw := make([]byte, size)
	if _, err := io.ReadFull(br, raw); err != nil {
		return identity.Envelope{}, err
	}
	var env identity.Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return identity.Envelope{}, err
	}
	return env, nil
}
