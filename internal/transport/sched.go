package transport

import (
	"context"
	"errors"
	"runtime"
	"time"

	"repro/internal/identity"
)

// Verdict tells LocalNetwork how the (possibly simulated) network treated
// one one-way message delivery.
type Verdict struct {
	// Duplicate makes the transport present the authenticated frame to the
	// receiver a second time after the real delivery, modeling a network
	// that duplicated the frame in flight. The receiver's anti-replay check
	// must reject the copy; the outcome is reported through DupObserver.
	Duplicate bool
}

// Scheduler decides the fate and timing of every one-way message delivery
// on a LocalNetwork link. The default scheduler sleeps the configured
// latency in real time; internal/sim substitutes a seeded virtual-time
// scheduler that accounts latency without sleeping and injects
// drops/duplicates/partitions from a deterministic RNG.
//
// Deliver is called once per direction of a Call (request: response=false,
// response: response=true). Returning a non-nil error loses the message:
// the Call fails with that error, exactly as if the link were down.
type Scheduler interface {
	Deliver(ctx context.Context, from, to identity.NodeID, msgType string, response bool) (Verdict, error)
}

// DupObserver is implemented by schedulers that inject duplicates and want
// to learn whether the receiver's replay protection rejected the copy.
type DupObserver interface {
	DupOutcome(from, to identity.NodeID, msgType string, response, rejected bool)
}

// realScheduler is the default: it delays each delivery by the configured
// one-way latency in real time and never drops or duplicates.
//
// Two sleep disciplines are offered. The default is a plain timer sleep:
// cheap, but Go runtime timers on an idle machine fire with ~1ms
// granularity, so sub-millisecond latencies are silently stretched. The
// precise mode recovers microsecond accuracy by sleeping the bulk on a
// timer and yield-spinning the final stretch — that spin burns a CPU per
// parked delivery, which is exactly what latency-sensitive benchmarks want
// and exactly what dozens of concurrently parked test timers do not, so
// precision is opt-in (core.Config.PreciseNetDelay; the bench harness sets
// it) instead of the former always-on behavior.
type realScheduler struct {
	latency time.Duration
	precise bool
}

// ErrDelivery wraps scheduler-reported losses so callers can detect a
// simulated network failure distinctly from protocol errors.
var ErrDelivery = errors.New("transport: message lost in delivery")

func (s *realScheduler) Deliver(ctx context.Context, _, _ identity.NodeID, _ string, _ bool) (Verdict, error) {
	return Verdict{}, s.delay(ctx)
}

func (s *realScheduler) delay(ctx context.Context) error {
	if s.latency <= 0 {
		return ctx.Err()
	}
	if !s.precise {
		t := time.NewTimer(s.latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// Precise mode: coarse-sleep all but the final millisecond, then
	// cooperatively yield-spin to the deadline.
	deadline := time.Now().Add(s.latency)
	if coarse := s.latency - time.Millisecond; coarse > time.Millisecond {
		t := time.NewTimer(coarse)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		t.Stop()
	}
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		runtime.Gosched()
	}
	return nil
}

// replayWindow is the size (in frames) of the sliding anti-replay window
// each endpoint keeps per frame author. Concurrent calls deliver an
// author's strictly-increasing sequence numbers slightly out of order, so
// a strict monotonicity check (what the per-connection TCP transport uses)
// would reject legitimate traffic; a windowed bitmap accepts any fresh
// sequence number within the window and rejects every duplicate.
const replayWindow = 1024

// replayGuard is a sliding-window duplicate detector over an author's
// frame sequence numbers (DTLS/IPsec style): a bitmap of the replayWindow
// most recent numbers relative to the highest seen.
type replayGuard struct {
	max  uint64 // highest accepted sequence number
	bits [replayWindow / 64]uint64
}

// bit i (0-based) represents sequence number (max - i); bit 0 is max
// itself.
func (g *replayGuard) accept(seq uint64) bool {
	if seq == 0 {
		return false // sequence numbers start at 1
	}
	if seq > g.max {
		g.shift(seq - g.max)
		g.max = seq
		g.bits[0] |= 1
		return true
	}
	off := g.max - seq
	if off >= replayWindow {
		return false // too old to tell: fail safe, treat as replay
	}
	w, b := off/64, off%64
	if g.bits[w]&(1<<b) != 0 {
		return false
	}
	g.bits[w] |= 1 << b
	return true
}

// shift slides the window forward by n positions (toward higher sequence
// numbers), dropping history that falls off the far end.
func (g *replayGuard) shift(n uint64) {
	if n >= replayWindow {
		g.bits = [replayWindow / 64]uint64{}
		return
	}
	words, bits := n/64, n%64
	if words > 0 {
		copy(g.bits[words:], g.bits[:uint64(len(g.bits))-words])
		for i := uint64(0); i < words; i++ {
			g.bits[i] = 0
		}
	}
	if bits > 0 {
		for i := len(g.bits) - 1; i >= 0; i-- {
			g.bits[i] <<= bits
			if i > 0 {
				g.bits[i] |= g.bits[i-1] >> (64 - bits)
			}
		}
	}
}

// ErrReplayedFrame is returned when a session-mode frame arrives with a
// sequence number the receiver has already accepted from that author — a
// duplicated or replayed frame.
var ErrReplayedFrame = errors.New("transport: replayed or duplicated frame")
