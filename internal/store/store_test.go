package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/merkle"
	"repro/internal/txn"
)

func ids(n int) []txn.ItemID {
	out := make([]txn.ItemID, n)
	for i := range out {
		out[i] = txn.ItemID(fmt.Sprintf("item-%03d", i))
	}
	return out
}

func initVal(id txn.ItemID) []byte { return []byte("init") }

func ts(t uint64) txn.Timestamp { return txn.Timestamp{Time: t, ClientID: 1} }

func TestShardBasics(t *testing.T) {
	s := NewShard(ids(8), initVal, Config{})
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has("item-003") || s.Has("ghost") {
		t.Fatal("Has wrong")
	}
	it, err := s.Get("item-000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(it.Value, []byte("init")) || !it.RTS.IsZero() || !it.WTS.IsZero() {
		t.Fatalf("initial item wrong: %+v", it)
	}
	if _, err := s.Get("ghost"); err == nil {
		t.Fatal("ghost item found")
	}
	// Duplicate ids are deduplicated.
	s2 := NewShard([]txn.ItemID{"a", "a", "b"}, nil, Config{})
	if s2.Len() != 2 {
		t.Fatalf("dedup failed: %d", s2.Len())
	}
	if s.MultiVersion() {
		t.Fatal("default shard should be single-versioned")
	}
}

func TestApplyUpdatesValuesAndTimestamps(t *testing.T) {
	s := NewShard(ids(8), initVal, Config{})
	err := s.Apply([]Access{{
		ReadIDs: []txn.ItemID{"item-001"},
		Writes:  []txn.WriteEntry{{ID: "item-002", NewVal: []byte("v2")}},
		TS:      ts(10),
	}})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := s.Get("item-001")
	if r.RTS != ts(10) || !r.WTS.IsZero() {
		t.Errorf("read item timestamps wrong: %+v", r)
	}
	w, _ := s.Get("item-002")
	if !bytes.Equal(w.Value, []byte("v2")) || w.WTS != ts(10) || !w.RTS.IsZero() {
		t.Errorf("written item wrong: %+v", w)
	}
	// Unknown items error.
	if err := s.Apply([]Access{{ReadIDs: []txn.ItemID{"ghost"}, TS: ts(11)}}); err == nil {
		t.Error("apply of unknown read accepted")
	}
	if err := s.Apply([]Access{{Writes: []txn.WriteEntry{{ID: "ghost"}}, TS: ts(11)}}); err == nil {
		t.Error("apply of unknown write accepted")
	}
}

func TestRootChangesOnApply(t *testing.T) {
	s := NewShard(ids(8), initVal, Config{})
	r0 := s.Root()
	if err := s.Apply([]Access{{Writes: []txn.WriteEntry{{ID: "item-000", NewVal: []byte("x")}}, TS: ts(1)}}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s.Root(), r0) {
		t.Fatal("root unchanged after write")
	}
	// Reads change the root too (rts is part of the leaf).
	r1 := s.Root()
	if err := s.Apply([]Access{{ReadIDs: []txn.ItemID{"item-001"}, TS: ts(2)}}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s.Root(), r1) {
		t.Fatal("root unchanged after read timestamp bump")
	}
}

func TestOverlayRootMatchesApply(t *testing.T) {
	mk := func() []Access {
		return []Access{
			{ReadIDs: []txn.ItemID{"item-001", "item-004"},
				Writes: []txn.WriteEntry{{ID: "item-002", NewVal: []byte("a")}}, TS: ts(5)},
			{Writes: []txn.WriteEntry{{ID: "item-007", NewVal: []byte("b")}}, TS: ts(6)},
		}
	}
	s1 := NewShard(ids(8), initVal, Config{})
	s2 := NewShard(ids(8), initVal, Config{})

	before := s1.Root()
	overlay, err := s1.OverlayRoot(mk())
	if err != nil {
		t.Fatal(err)
	}
	// The overlay must not mutate the shard.
	if !bytes.Equal(s1.Root(), before) {
		t.Fatal("overlay mutated the shard")
	}
	if err := s2.Apply(mk()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(overlay, s2.Root()) {
		t.Fatal("overlay root differs from applied root")
	}
	// And applying to s1 afterwards reaches the same root.
	if err := s1.Apply(mk()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Root(), overlay) {
		t.Fatal("apply after overlay differs")
	}
}

// Property: for random access batches, OverlayRoot always equals the root
// after Apply on a twin shard, and never disturbs the original.
func TestOverlayRootQuick(t *testing.T) {
	type batchSpec struct {
		Seed int64
	}
	f := func(spec batchSpec) bool {
		rng := rand.New(rand.NewSource(spec.Seed))
		n := 16
		all := ids(n)
		var accesses []Access
		tsv := uint64(1)
		for b := 0; b < rng.Intn(4)+1; b++ {
			a := Access{TS: ts(tsv)}
			tsv++
			for i := 0; i < rng.Intn(4); i++ {
				a.ReadIDs = append(a.ReadIDs, all[rng.Intn(n)])
			}
			for i := 0; i < rng.Intn(4); i++ {
				a.Writes = append(a.Writes, txn.WriteEntry{
					ID:     all[rng.Intn(n)],
					NewVal: []byte(fmt.Sprintf("v%d", rng.Int())),
				})
			}
			accesses = append(accesses, a)
		}
		s1 := NewShard(all, initVal, Config{})
		s2 := NewShard(all, initVal, Config{})
		before := s1.Root()
		overlay, err := s1.OverlayRoot(accesses)
		if err != nil {
			return false
		}
		if !bytes.Equal(s1.Root(), before) {
			return false
		}
		if err := s2.Apply(accesses); err != nil {
			return false
		}
		return bytes.Equal(overlay, s2.Root())
	}
	cfg := &quick.Config{MaxCount: 100, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(batchSpec{Seed: r.Int63()})
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestProofAuthenticatesCurrentState(t *testing.T) {
	s := NewShard(ids(8), initVal, Config{})
	if err := s.Apply([]Access{{Writes: []txn.WriteEntry{{ID: "item-003", NewVal: []byte("900")}}, TS: ts(100)}}); err != nil {
		t.Fatal(err)
	}
	leaf, proof, err := s.Proof("item-003")
	if err != nil {
		t.Fatal(err)
	}
	expected := LeafContent("item-003", []byte("900"), txn.Timestamp{}, ts(100))
	if !bytes.Equal(leaf, expected) {
		t.Fatalf("leaf content %x, want %x", leaf, expected)
	}
	if !merkle.VerifyProof(s.Root(), merkle.LeafHash(leaf), proof) {
		t.Fatal("proof does not verify against root")
	}
	if _, _, err := s.Proof("ghost"); err == nil {
		t.Fatal("proof for ghost item")
	}
}

func TestMultiVersioning(t *testing.T) {
	s := NewShard(ids(4), initVal, Config{MultiVersion: true})
	if !s.MultiVersion() {
		t.Fatal("not multi-versioned")
	}
	// Three versions of item-000: init, ts10, ts20.
	for _, v := range []struct {
		t   uint64
		val string
	}{{10, "ten"}, {20, "twenty"}} {
		if err := s.Apply([]Access{{Writes: []txn.WriteEntry{{ID: "item-000", NewVal: []byte(v.val)}}, TS: ts(v.t)}}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		at   uint64
		want string
	}{{5, "init"}, {10, "ten"}, {15, "ten"}, {20, "twenty"}, {99, "twenty"}}
	for _, c := range cases {
		v, err := s.VersionAt("item-000", ts(c.at))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v.Value, []byte(c.want)) {
			t.Errorf("version at %d = %q, want %q", c.at, v.Value, c.want)
		}
	}
	if _, err := s.VersionAt("ghost", ts(1)); err == nil {
		t.Error("version of ghost item")
	}
}

func TestProofAtHistoricalVersion(t *testing.T) {
	s := NewShard(ids(4), initVal, Config{MultiVersion: true})
	if err := s.Apply([]Access{{Writes: []txn.WriteEntry{{ID: "item-001", NewVal: []byte("v1")}}, TS: ts(10)}}); err != nil {
		t.Fatal(err)
	}
	root10, err := s.RootAt(ts(10))
	if err != nil {
		t.Fatal(err)
	}
	// A later write must not disturb the historical audit.
	if err := s.Apply([]Access{{Writes: []txn.WriteEntry{{ID: "item-001", NewVal: []byte("v2")}}, TS: ts(20)}}); err != nil {
		t.Fatal(err)
	}
	leaf, proof, err := s.ProofAt("item-001", ts(10))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(leaf, LeafContent("item-001", []byte("v1"), txn.Timestamp{}, ts(10))) {
		t.Fatalf("historical leaf wrong: %x", leaf)
	}
	if !merkle.VerifyProof(root10, merkle.LeafHash(leaf), proof) {
		t.Fatal("historical proof does not verify")
	}
	// RootAt(10) differs from the current root.
	if bytes.Equal(root10, s.Root()) {
		t.Fatal("historical root equals current root despite later write")
	}
}

func TestVersionedOpsRejectSingleVersionShard(t *testing.T) {
	s := NewShard(ids(4), initVal, Config{})
	if _, err := s.RootAt(ts(1)); err == nil {
		t.Error("RootAt on single-versioned shard accepted")
	}
	if _, _, err := s.ProofAt("item-000", ts(1)); err == nil {
		t.Error("ProofAt on single-versioned shard accepted")
	}
	if _, err := s.VersionAt("item-000", ts(1)); err == nil {
		t.Error("VersionAt on single-versioned shard accepted")
	}
}

func TestCorruptDivergesFromLoggedRoot(t *testing.T) {
	s := NewShard(ids(4), initVal, Config{})
	if err := s.Apply([]Access{{Writes: []txn.WriteEntry{{ID: "item-002", NewVal: []byte("good")}}, TS: ts(5)}}); err != nil {
		t.Fatal(err)
	}
	honest := s.Root()
	if err := s.Corrupt("item-002", []byte("evil")); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s.Root(), honest) {
		t.Fatal("corruption did not change served root")
	}
	it, _ := s.Get("item-002")
	if !bytes.Equal(it.Value, []byte("evil")) {
		t.Fatal("corrupt value not stored")
	}
	if err := s.Corrupt("ghost", nil); err == nil {
		t.Fatal("corrupting ghost item accepted")
	}
}

func TestLeafContentInjective(t *testing.T) {
	// Distinct (id, value) pairs with ambiguous concatenations must encode
	// differently.
	a := LeafContent("ab", []byte("c"), ts(1), ts(2))
	b := LeafContent("a", []byte("bc"), ts(1), ts(2))
	if bytes.Equal(a, b) {
		t.Fatal("leaf content framing ambiguous")
	}
	c := LeafContent("ab", []byte("c"), ts(1), ts(3))
	if bytes.Equal(a, c) {
		t.Fatal("leaf content ignores wts")
	}
	d := LeafContent("ab", []byte("c"), ts(9), ts(2))
	if bytes.Equal(a, d) {
		t.Fatal("leaf content ignores rts")
	}
}

func TestIDsSortedAndStable(t *testing.T) {
	s := NewShard([]txn.ItemID{"c", "a", "b"}, nil, Config{})
	got := s.IDs()
	want := []txn.ItemID{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}
