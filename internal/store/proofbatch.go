package store

import (
	"fmt"

	"repro/internal/merkle"
	"repro/internal/txn"
)

// This file holds the batched proof-serving surface of the shard: the
// verified-read path (internal/lightclient, server.handleVerifiedRead)
// fetches several items and one merkle.MultiProof per request, amortizing
// sibling hashes across the batch instead of paying k·log₂(n) hashes for
// k items.

// IndexOf returns the Merkle leaf index of an item. The leaf order is the
// sorted item order fixed at shard construction, so clients that know the
// shard layout can compute the same index independently and reject proofs
// claiming a different position.
func (s *Shard) IndexOf(id txn.ItemID) (int, bool) {
	i, ok := s.idx[id]
	return i, ok
}

// TreeDepth returns the number of levels of the shard's Merkle tree
// (log₂ of the leaf capacity) — the Depth a valid MultiProof must carry.
func (s *Shard) TreeDepth() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Depth()
}

// MultiProof returns the current state of the requested items together
// with one batched Verification Object authenticating all of them against
// the shard's current root. Items are returned in Merkle leaf order
// (matching the proof's Indices), regardless of request order.
func (s *Shard) MultiProof(ids []txn.ItemID) ([]Item, merkle.MultiProof, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	indices, err := s.leafIndices(ids)
	if err != nil {
		return nil, merkle.MultiProof{}, err
	}
	mp, err := s.tree.MultiProof(indices)
	if err != nil {
		return nil, merkle.MultiProof{}, err
	}
	items := make([]Item, len(mp.Indices))
	for i, idx := range mp.Indices {
		it := s.items[idx]
		it.Value = append([]byte(nil), it.Value...)
		items[i] = it
	}
	return items, mp, nil
}

// MultiProofAt is MultiProof against the shard state at version ts
// (multi-versioned shards only): the tree is reconstructed with every
// item's latest version at or before ts as the leaves, serving snapshot
// reads pinned at a historical block height.
func (s *Shard) MultiProofAt(ids []txn.ItemID, ts txn.Timestamp) ([]Item, merkle.MultiProof, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.multiVersion {
		return nil, merkle.MultiProof{}, ErrSingleVersion
	}
	indices, err := s.leafIndices(ids)
	if err != nil {
		return nil, merkle.MultiProof{}, err
	}
	tree, err := s.treeAtLocked(ts)
	if err != nil {
		return nil, merkle.MultiProof{}, err
	}
	mp, err := tree.MultiProof(indices)
	if err != nil {
		return nil, merkle.MultiProof{}, err
	}
	items := make([]Item, len(mp.Indices))
	for i, idx := range mp.Indices {
		v := versionAt(s.history[idx], ts)
		items[i] = Item{
			ID:    s.ids[idx],
			Value: append([]byte(nil), v.Value...),
			RTS:   v.RTS,
			WTS:   v.WTS,
		}
	}
	return items, mp, nil
}

// leafIndices resolves ids to leaf indices (caller holds the lock).
func (s *Shard) leafIndices(ids []txn.ItemID) ([]int, error) {
	indices := make([]int, len(ids))
	for i, id := range ids {
		idx, ok := s.idx[id]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoItem, id)
		}
		indices[i] = idx
	}
	return indices, nil
}
