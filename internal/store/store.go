// Package store implements the datastore layer of a Fides database server
// (paper §3.1, §4.2): a shard of data items, each carrying a value and the
// read/write timestamps rts and wts of the last transactions that accessed
// it, backed by a Merkle hash tree whose root authenticates the shard's
// entire state.
//
// The shard supports the paper's two data models (§4.2.1): single-versioned
// (only the latest state is authenticated) and multi-versioned (each commit
// creates a new version of the accessed items while older versions are
// retained, enabling audits of any historical version and recoverability).
//
// The Merkle leaf for an item commits to the item's id, value, rts and wts,
// so the auditor can reconstruct the expected leaf for any item from the
// information stored in a log block alone (paper §4.2.2).
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/merkle"
	"repro/internal/txn"
)

// Item is one data item: a unique identifier, a value, and the associated
// read and write timestamps (paper §3.1).
type Item struct {
	ID    txn.ItemID
	Value []byte
	RTS   txn.Timestamp
	WTS   txn.Timestamp
}

// LeafContent returns the canonical byte string a Merkle leaf commits to
// for an item. Both servers and auditors derive leaves through this
// function, so an auditor can recompute a leaf from a block's read/write
// sets without talking to the server.
func LeafContent(id txn.ItemID, value []byte, rts, wts txn.Timestamp) []byte {
	buf := make([]byte, 0, len(id)+len(value)+1+2*12)
	buf = appendUvarint(buf, uint64(len(id)))
	buf = append(buf, id...)
	buf = appendUvarint(buf, uint64(len(value)))
	buf = append(buf, value...)
	buf = appendTimestamp(buf, rts)
	buf = appendTimestamp(buf, wts)
	return buf
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func appendTimestamp(buf []byte, ts txn.Timestamp) []byte {
	buf = appendUvarint(buf, ts.Time)
	return appendUvarint(buf, uint64(ts.ClientID))
}

// Version is one historical version of an item in a multi-versioned shard:
// the state of the item immediately after the transaction that committed at
// CommitTS touched it.
type Version struct {
	CommitTS txn.Timestamp
	Value    []byte
	RTS      txn.Timestamp
	WTS      txn.Timestamp
}

// Errors returned by shard operations.
var (
	ErrNoItem        = errors.New("store: no such item")
	ErrSingleVersion = errors.New("store: shard is single-versioned")
)

// Shard is one data partition held by a database server. All exported
// methods are safe for concurrent use.
type Shard struct {
	mu           sync.RWMutex
	multiVersion bool
	ids          []txn.ItemID
	idx          map[txn.ItemID]int
	items        []Item
	history      [][]Version // per item; nil unless multiVersion
	tree         *merkle.Tree
	hasher       Hasher
}

// Config configures a shard.
type Config struct {
	// MultiVersion retains every version of every item (paper §4.2.1).
	MultiVersion bool
	// Hasher optionally parallelizes independent Merkle leaf-hash
	// computations across a worker pool (crypto.Pool satisfies it). Nil
	// hashes serially. Only the leaf hashes fan out; the incremental tree
	// updates stay sequential under the shard lock.
	Hasher Hasher
}

// Hasher runs n independent computations, possibly concurrently, and
// returns when all are done.
type Hasher interface {
	Map(n int, f func(i int))
}

// parallelLeafHashing is the touched-leaf count below which dispatching to
// the worker pool costs more than hashing inline.
const parallelLeafHashing = 8

// hashLeaves runs f(0..n-1) through the configured hasher when the batch
// is large enough to amortize dispatch, inline otherwise.
func (s *Shard) hashLeaves(n int, f func(i int)) {
	if s.hasher != nil && n >= parallelLeafHashing {
		s.hasher.Map(n, f)
		return
	}
	for i := 0; i < n; i++ {
		f(i)
	}
}

// NewShard creates a shard holding the given items (ids are deduplicated
// and sorted to fix the Merkle leaf order). initial supplies each item's
// starting value; nil values are stored as empty.
func NewShard(ids []txn.ItemID, initial func(txn.ItemID) []byte, cfg Config) *Shard {
	uniq := make(map[txn.ItemID]struct{}, len(ids))
	sorted := make([]txn.ItemID, 0, len(ids))
	for _, id := range ids {
		if _, dup := uniq[id]; !dup {
			uniq[id] = struct{}{}
			sorted = append(sorted, id)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	s := &Shard{
		multiVersion: cfg.MultiVersion,
		ids:          sorted,
		idx:          make(map[txn.ItemID]int, len(sorted)),
		items:        make([]Item, len(sorted)),
		hasher:       cfg.Hasher,
	}
	for i, id := range sorted {
		s.idx[id] = i
		var val []byte
		if initial != nil {
			val = append([]byte(nil), initial(id)...)
		}
		s.items[i] = Item{ID: id, Value: val}
	}
	leaves := make([][]byte, len(sorted))
	s.hashLeaves(len(sorted), func(i int) {
		it := s.items[i]
		leaves[i] = merkle.LeafHash(LeafContent(it.ID, it.Value, txn.Timestamp{}, txn.Timestamp{}))
	})
	s.tree = merkle.New(leaves)
	if cfg.MultiVersion {
		s.history = make([][]Version, len(sorted))
		for i := range s.history {
			s.history[i] = []Version{{Value: append([]byte(nil), s.items[i].Value...)}}
		}
	}
	return s
}

// NewShardFromItems rebuilds a shard from previously snapshotted item
// states (id, value, rts, wts) — the recovery path of internal/durable.
// Items are deduplicated and sorted exactly as NewShard sorts fresh ids, so
// the Merkle leaf order (and therefore the root) is reproducible. For a
// multi-versioned shard the history restarts at the snapshot: older
// versions live only in the block log, which recovery replays instead of
// using snapshots (see internal/durable).
func NewShardFromItems(items []Item, cfg Config) *Shard {
	sorted := make([]Item, 0, len(items))
	uniq := make(map[txn.ItemID]struct{}, len(items))
	for _, it := range items {
		if _, dup := uniq[it.ID]; !dup {
			uniq[it.ID] = struct{}{}
			sorted = append(sorted, it)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	s := &Shard{
		multiVersion: cfg.MultiVersion,
		ids:          make([]txn.ItemID, len(sorted)),
		idx:          make(map[txn.ItemID]int, len(sorted)),
		items:        make([]Item, len(sorted)),
		hasher:       cfg.Hasher,
	}
	for i, it := range sorted {
		s.ids[i] = it.ID
		s.idx[it.ID] = i
		it.Value = append([]byte(nil), it.Value...)
		s.items[i] = it
	}
	leaves := make([][]byte, len(sorted))
	s.hashLeaves(len(sorted), func(i int) {
		it := s.items[i]
		leaves[i] = merkle.LeafHash(LeafContent(it.ID, it.Value, it.RTS, it.WTS))
	})
	s.tree = merkle.New(leaves)
	if cfg.MultiVersion {
		s.history = make([][]Version, len(sorted))
		for i := range s.history {
			it := s.items[i]
			s.history[i] = []Version{{
				CommitTS: it.WTS,
				Value:    append([]byte(nil), it.Value...),
				RTS:      it.RTS,
				WTS:      it.WTS,
			}}
		}
	}
	return s
}

// Snapshot returns a deep copy of every item's current state in Merkle leaf
// order — the payload internal/durable writes to snapshot files.
func (s *Shard) Snapshot() []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Item, len(s.items))
	for i, it := range s.items {
		it.Value = append([]byte(nil), it.Value...)
		out[i] = it
	}
	return out
}

// Len returns the number of items in the shard.
func (s *Shard) Len() int { return len(s.ids) }

// IDs returns the shard's item ids in Merkle leaf order.
func (s *Shard) IDs() []txn.ItemID {
	return append([]txn.ItemID(nil), s.ids...)
}

// Has reports whether the shard stores the item.
func (s *Shard) Has(id txn.ItemID) bool {
	_, ok := s.idx[id]
	return ok
}

// MultiVersion reports whether the shard retains historical versions.
func (s *Shard) MultiVersion() bool { return s.multiVersion }

// Get returns a copy of the item's current state.
func (s *Shard) Get(id txn.ItemID) (Item, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.idx[id]
	if !ok {
		return Item{}, fmt.Errorf("%w: %s", ErrNoItem, id)
	}
	it := s.items[i]
	it.Value = append([]byte(nil), it.Value...)
	return it, nil
}

// Access describes how a committing transaction touched the shard's items:
// which items it read and what it wrote. Apply and OverlayRoot use it to
// update values and timestamps per paper §4.1 step 7: written items get the
// new value and wts = commit ts; read items get rts = commit ts.
type Access struct {
	// ReadIDs are the items the block's transactions read from this shard.
	ReadIDs []txn.ItemID
	// Writes are the write entries targeting this shard.
	Writes []txn.WriteEntry
	// TS is the commit timestamp to stamp onto the accessed items.
	TS txn.Timestamp
}

// Apply updates the datastore for a committed transaction (or batch of
// non-conflicting transactions sharing a block): buffered writes are
// installed and the rts/wts of accessed items advance to the commit
// timestamp. For multi-versioned shards a new version of every touched item
// is recorded.
func (s *Shard) Apply(accesses []Access) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range accesses {
		if err := s.applyLocked(a); err != nil {
			return err
		}
	}
	return nil
}

func (s *Shard) applyLocked(a Access) error {
	touched := make(map[int]struct{}, len(a.ReadIDs)+len(a.Writes))
	for _, id := range a.ReadIDs {
		i, ok := s.idx[id]
		if !ok {
			return fmt.Errorf("%w: read %s", ErrNoItem, id)
		}
		if s.items[i].RTS.Less(a.TS) {
			s.items[i].RTS = a.TS
		}
		touched[i] = struct{}{}
	}
	for _, w := range a.Writes {
		i, ok := s.idx[w.ID]
		if !ok {
			return fmt.Errorf("%w: write %s", ErrNoItem, w.ID)
		}
		s.items[i].Value = append([]byte(nil), w.NewVal...)
		if s.items[i].WTS.Less(a.TS) {
			s.items[i].WTS = a.TS
		}
		touched[i] = struct{}{}
	}
	// Leaf hashes are independent of one another, so they fan out across
	// the hasher; only the incremental tree updates are ordered.
	idxs := make([]int, 0, len(touched))
	for i := range touched {
		idxs = append(idxs, i)
	}
	leaves := make([][]byte, len(idxs))
	s.hashLeaves(len(idxs), func(k int) {
		it := s.items[idxs[k]]
		leaves[k] = merkle.LeafHash(LeafContent(it.ID, it.Value, it.RTS, it.WTS))
	})
	for k, i := range idxs {
		if _, err := s.tree.Update(i, leaves[k]); err != nil {
			return fmt.Errorf("store: update leaf %d: %w", i, err)
		}
		if s.multiVersion {
			it := s.items[i]
			s.history[i] = append(s.history[i], Version{
				CommitTS: a.TS,
				Value:    append([]byte(nil), it.Value...),
				RTS:      it.RTS,
				WTS:      it.WTS,
			})
		}
	}
	return nil
}

// Root returns the current Merkle root of the shard.
func (s *Shard) Root() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Root()
}

// OverlayRoot computes the Merkle root the shard would have after applying
// the given accesses, without mutating the datastore. Cohorts call this in
// the Vote phase of TFCommit: "the MHT reflects all the updates in Ti
// assuming that Ti be committed; since MHT computation is done in memory,
// the datastore is unaffected if Ti eventually aborts" (paper §4.3.1).
//
// The computation performs O(k log n) incremental updates for k touched
// items and then reverts them, which is the "MHT update" cost measured in
// Figure 14.
func (s *Shard) OverlayRoot(accesses []Access) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Compute the would-be item states in a scratch map.
	type pending struct {
		value []byte
		rts   txn.Timestamp
		wts   txn.Timestamp
	}
	scratch := make(map[int]pending)
	load := func(i int) pending {
		if p, ok := scratch[i]; ok {
			return p
		}
		it := s.items[i]
		return pending{value: it.Value, rts: it.RTS, wts: it.WTS}
	}
	for _, a := range accesses {
		for _, id := range a.ReadIDs {
			i, ok := s.idx[id]
			if !ok {
				return nil, fmt.Errorf("%w: read %s", ErrNoItem, id)
			}
			p := load(i)
			if p.rts.Less(a.TS) {
				p.rts = a.TS
			}
			scratch[i] = p
		}
		for _, w := range a.Writes {
			i, ok := s.idx[w.ID]
			if !ok {
				return nil, fmt.Errorf("%w: write %s", ErrNoItem, w.ID)
			}
			p := load(i)
			p.value = w.NewVal
			if p.wts.Less(a.TS) {
				p.wts = a.TS
			}
			scratch[i] = p
		}
	}

	// Apply the scratch leaves, capture the root, then revert. The leaf
	// hashes fan out across the hasher first; the tree updates stay
	// sequential.
	idxs := make([]int, 0, len(scratch))
	for i := range scratch {
		idxs = append(idxs, i)
	}
	leaves := make([][]byte, len(idxs))
	s.hashLeaves(len(idxs), func(k int) {
		p := scratch[idxs[k]]
		leaves[k] = merkle.LeafHash(LeafContent(s.ids[idxs[k]], p.value, p.rts, p.wts))
	})
	reverts := make(map[int][]byte, len(scratch))
	for k, i := range idxs {
		old, err := s.tree.Update(i, leaves[k])
		if err != nil {
			return nil, fmt.Errorf("store: overlay leaf %d: %w", i, err)
		}
		if _, seen := reverts[i]; !seen {
			reverts[i] = old
		}
	}
	root := s.tree.Root()
	for i, old := range reverts {
		if _, err := s.tree.Update(i, old); err != nil {
			return nil, fmt.Errorf("store: revert leaf %d: %w", i, err)
		}
	}
	return root, nil
}

// Proof returns the item's current leaf content and the Verification Object
// (VO) authenticating it against the shard's current root. This serves
// single-versioned audits (paper §4.2.2: "the auditor fetches the VO based
// on the latest state").
func (s *Shard) Proof(id txn.ItemID) ([]byte, merkle.Proof, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.idx[id]
	if !ok {
		return nil, merkle.Proof{}, fmt.Errorf("%w: %s", ErrNoItem, id)
	}
	p, err := s.tree.Proof(i)
	if err != nil {
		return nil, merkle.Proof{}, err
	}
	it := s.items[i]
	return LeafContent(it.ID, it.Value, it.RTS, it.WTS), p, nil
}

// VersionAt returns the item's state at version ts in a multi-versioned
// shard: the latest version with CommitTS ≤ ts.
func (s *Shard) VersionAt(id txn.ItemID, ts txn.Timestamp) (Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.multiVersion {
		return Version{}, ErrSingleVersion
	}
	i, ok := s.idx[id]
	if !ok {
		return Version{}, fmt.Errorf("%w: %s", ErrNoItem, id)
	}
	return versionAt(s.history[i], ts), nil
}

// ProofAt reconstructs the shard's Merkle tree at version ts and returns
// the VO for the item at that version. This serves multi-versioned audits
// (paper §4.2.2: "the server constructs the Merkle Hash Tree with the data
// at version ts as the leaves; it then shares the Verification Object").
func (s *Shard) ProofAt(id txn.ItemID, ts txn.Timestamp) ([]byte, merkle.Proof, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.multiVersion {
		return nil, merkle.Proof{}, ErrSingleVersion
	}
	i, ok := s.idx[id]
	if !ok {
		return nil, merkle.Proof{}, fmt.Errorf("%w: %s", ErrNoItem, id)
	}
	tree, err := s.treeAtLocked(ts)
	if err != nil {
		return nil, merkle.Proof{}, err
	}
	p, err := tree.Proof(i)
	if err != nil {
		return nil, merkle.Proof{}, err
	}
	v := versionAt(s.history[i], ts)
	return LeafContent(id, v.Value, v.RTS, v.WTS), p, nil
}

// RootAt returns the shard's Merkle root at version ts (multi-versioned
// shards only).
func (s *Shard) RootAt(ts txn.Timestamp) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.multiVersion {
		return nil, ErrSingleVersion
	}
	tree, err := s.treeAtLocked(ts)
	if err != nil {
		return nil, err
	}
	return tree.Root(), nil
}

func (s *Shard) treeAtLocked(ts txn.Timestamp) (*merkle.Tree, error) {
	leaves := make([][]byte, len(s.ids))
	for i, id := range s.ids {
		v := versionAt(s.history[i], ts)
		leaves[i] = merkle.LeafHash(LeafContent(id, v.Value, v.RTS, v.WTS))
	}
	return merkle.New(leaves), nil
}

func versionAt(versions []Version, ts txn.Timestamp) Version {
	// Versions are appended in commit order, so scan from the tail for the
	// newest version at or before ts.
	for i := len(versions) - 1; i >= 0; i-- {
		v := versions[i]
		if !ts.Less(v.CommitTS) { // v.CommitTS <= ts
			return v
		}
	}
	return versions[0]
}

// Corrupt force-overwrites an item's stored value without touching the
// Merkle tree, timestamps, or history — simulating a malicious or buggy
// datastore whose contents silently diverge from the authenticated state
// (paper §5 Scenario 3). It is exercised only by fault injection.
func (s *Shard) Corrupt(id txn.ItemID, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoItem, id)
	}
	s.items[i].Value = append([]byte(nil), value...)
	// Rebuild the tree from the corrupted state so the VOs the server later
	// serves reflect what it actually stores (and therefore fail to match
	// the roots recorded in the log).
	leaf := merkle.LeafHash(LeafContent(s.items[i].ID, s.items[i].Value, s.items[i].RTS, s.items[i].WTS))
	if _, err := s.tree.Update(i, leaf); err != nil {
		return err
	}
	if s.multiVersion && len(s.history[i]) > 0 {
		last := &s.history[i][len(s.history[i])-1]
		last.Value = append([]byte(nil), value...)
	}
	return nil
}
