package identity

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/schnorr"
)

// KeyFile is the JSON-serializable form of an Identity, used by the
// multi-process deployment tools (cmd/fides-keygen, cmd/fides-server).
//
// A KeyFile contains private key material. The bundled tools ship one file
// holding every node's keys purely as a demonstration convenience; a real
// deployment distributes each server's KeyFile to that server only and
// publishes just the public halves.
type KeyFile struct {
	ID   NodeID `json:"id"`
	Role Role   `json:"role"`
	// Ed25519Seed is the 32-byte Ed25519 private seed.
	Ed25519Seed []byte `json:"ed25519_seed"`
	// SchnorrD is the big-endian Schnorr secret scalar (servers only).
	SchnorrD []byte `json:"schnorr_d,omitempty"`
}

// Export serializes the identity's key material.
func (i *Identity) Export() KeyFile {
	kf := KeyFile{
		ID:          i.ID,
		Role:        i.Role,
		Ed25519Seed: append([]byte(nil), i.SignKey.Seed()...),
	}
	if i.Schnorr != nil {
		kf.SchnorrD = i.Schnorr.D.Bytes()
	}
	return kf
}

// Import reconstructs an Identity from its serialized key material.
func Import(kf KeyFile) (*Identity, error) {
	if kf.ID == "" {
		return nil, errors.New("identity: key file has empty id")
	}
	if len(kf.Ed25519Seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("identity %s: ed25519 seed must be %d bytes, got %d",
			kf.ID, ed25519.SeedSize, len(kf.Ed25519Seed))
	}
	ident := &Identity{
		ID:      kf.ID,
		Role:    kf.Role,
		SignKey: ed25519.NewKeyFromSeed(kf.Ed25519Seed),
	}
	if kf.Role == RoleServer {
		if len(kf.SchnorrD) == 0 {
			return nil, fmt.Errorf("identity %s: server key file lacks schnorr scalar", kf.ID)
		}
		d := new(big.Int).SetBytes(kf.SchnorrD)
		if d.Sign() <= 0 || d.Cmp(schnorr.N()) >= 0 {
			return nil, fmt.Errorf("identity %s: schnorr scalar out of range", kf.ID)
		}
		ident.Schnorr = &schnorr.PrivateKey{D: d, Public: schnorr.PublicKey{Point: schnorr.BaseMult(d)}}
	}
	return ident, nil
}
