package identity

import (
	"testing"
)

func TestNewServerIdentity(t *testing.T) {
	ident, err := New("s1", RoleServer, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ident.Schnorr == nil {
		t.Fatal("server identity lacks schnorr key")
	}
	pub := ident.Public()
	if !pub.HasSchnorr() {
		t.Fatal("server public record lacks schnorr key")
	}
	if pub.ID != "s1" || pub.Role != RoleServer {
		t.Fatalf("public record wrong: %+v", pub)
	}
}

func TestNewClientIdentity(t *testing.T) {
	ident, err := New("c1", RoleClient, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ident.Schnorr != nil {
		t.Fatal("client identity should not hold a schnorr key")
	}
	if ident.Public().HasSchnorr() {
		t.Fatal("client public record claims a schnorr key")
	}
}

func TestRegistryLookupAndServers(t *testing.T) {
	reg := NewRegistry()
	for _, id := range []NodeID{"s2", "s1"} {
		ident, err := New(id, RoleServer, nil)
		if err != nil {
			t.Fatal(err)
		}
		reg.Register(ident.Public())
	}
	cl, _ := New("c1", RoleClient, nil)
	reg.Register(cl.Public())

	if reg.Len() != 3 {
		t.Fatalf("Len = %d", reg.Len())
	}
	if _, ok := reg.Lookup("s1"); !ok {
		t.Fatal("s1 missing")
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Fatal("phantom node found")
	}
	servers := reg.Servers()
	if len(servers) != 2 || servers[0] != "s1" || servers[1] != "s2" {
		t.Fatalf("Servers = %v", servers)
	}
}

func TestSchnorrKeys(t *testing.T) {
	reg := NewRegistry()
	s1, _ := New("s1", RoleServer, nil)
	c1, _ := New("c1", RoleClient, nil)
	reg.Register(s1.Public())
	reg.Register(c1.Public())

	keys, err := reg.SchnorrKeys([]NodeID{"s1"})
	if err != nil || len(keys) != 1 {
		t.Fatalf("SchnorrKeys: %v", err)
	}
	if _, err := reg.SchnorrKeys([]NodeID{"c1"}); err == nil {
		t.Fatal("client schnorr key lookup should fail")
	}
	if _, err := reg.SchnorrKeys([]NodeID{"ghost"}); err == nil {
		t.Fatal("unknown node lookup should fail")
	}
	if _, err := reg.SchnorrKey("s1"); err != nil {
		t.Fatalf("single key lookup: %v", err)
	}
}

func TestSealOpen(t *testing.T) {
	reg := NewRegistry()
	alice, _ := New("alice", RoleClient, nil)
	reg.Register(alice.Public())

	payload := []byte("hello world")
	env := Seal(alice, payload)
	got, err := reg.Open(env)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if string(got) != "hello world" {
		t.Fatalf("payload = %q", got)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	reg := NewRegistry()
	alice, _ := New("alice", RoleClient, nil)
	mallory, _ := New("mallory", RoleClient, nil)
	reg.Register(alice.Public())
	reg.Register(mallory.Public())

	env := Seal(alice, []byte("pay alice $10"))

	tampered := env
	tampered.Payload = []byte("pay mallory $10")
	if _, err := reg.Open(tampered); err == nil {
		t.Error("tampered payload accepted")
	}

	impersonated := env
	impersonated.From = "mallory"
	if _, err := reg.Open(impersonated); err == nil {
		t.Error("sender impersonation accepted")
	}

	unknown := Seal(alice, []byte("x"))
	unknown.From = "ghost"
	if _, err := reg.Open(unknown); err == nil {
		t.Error("unknown sender accepted")
	}
}

func TestRoleString(t *testing.T) {
	if RoleServer.String() != "server" || RoleClient.String() != "client" {
		t.Error("role strings wrong")
	}
	if Role(99).String() == "" {
		t.Error("unknown role string empty")
	}
}
