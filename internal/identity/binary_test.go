package identity

import (
	"bytes"
	"reflect"
	"testing"
)

func TestEnvelopeBinaryRoundTrip(t *testing.T) {
	envs := []Envelope{
		{},
		{From: "c01", Payload: []byte("payload"), Sig: bytes.Repeat([]byte{7}, 64)},
		{From: "s00", Payload: bytes.Repeat([]byte("x"), 4<<10)},
	}
	for _, in := range envs {
		data := in.AppendBinary(nil)
		var out Envelope
		if err := out.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
		}
	}
}

func TestEnvelopeBinarySealOpen(t *testing.T) {
	// A sealed envelope must survive the binary codec and still open: the
	// signature covers the payload bytes, which the codec carries verbatim
	// (no re-serialization, no base64).
	reg := NewRegistry()
	ident, err := New("s00", RoleServer, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg.Register(ident.Public())
	env := Seal(ident, []byte("the signed bytes"))
	data := env.AppendBinary(nil)
	var out Envelope
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	payload, err := reg.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, []byte("the signed bytes")) {
		t.Fatalf("payload = %q", payload)
	}
}

func TestEnvelopeBinaryRejectsGarbage(t *testing.T) {
	env := Envelope{From: "a", Payload: []byte("p"), Sig: []byte("s")}
	valid := env.AppendBinary(nil)
	for i := 0; i < len(valid); i++ {
		var out Envelope
		if err := out.UnmarshalBinary(valid[:i]); err == nil {
			t.Fatalf("accepted truncation at %d bytes", i)
		}
	}
	var out Envelope
	if err := out.UnmarshalBinary([]byte{42}); err == nil {
		t.Fatal("accepted unknown version")
	}
}
