// Package identity provides the node identities and message authentication
// of paper §3.1: servers and clients are uniquely identifiable by their
// public keys, are aware of all other servers, and every message exchanged
// (client↔server or server↔server) is digitally signed by the sender and
// verified by the receiver.
//
// Each node holds an Ed25519 key pair for message signing; servers
// additionally hold a Schnorr (P-256) key pair used by CoSi during
// TFCommit. A Registry maps node ids to public keys and is distributed to
// every participant out of band (the paper's "aware of all the other
// servers in the system").
package identity

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/schnorr"
)

// NodeID names a server or client. IDs are unique within a deployment.
type NodeID string

// Role distinguishes servers (which participate in commitment and hold
// Schnorr keys) from clients.
type Role int

// Roles of nodes in a Fides deployment.
const (
	RoleServer Role = iota + 1
	RoleClient
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleServer:
		return "server"
	case RoleClient:
		return "client"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Identity is a node's private identity: its id, role, Ed25519 signing key,
// and (for servers) the Schnorr key used in collective signing.
type Identity struct {
	ID      NodeID
	Role    Role
	SignKey ed25519.PrivateKey
	// Schnorr is nil for clients.
	Schnorr *schnorr.PrivateKey
}

// New generates a fresh identity. rnd may be nil to use crypto/rand.
func New(id NodeID, role Role, rnd io.Reader) (*Identity, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	_, priv, err := ed25519.GenerateKey(rnd)
	if err != nil {
		return nil, fmt.Errorf("identity %s: generate ed25519 key: %w", id, err)
	}
	ident := &Identity{ID: id, Role: role, SignKey: priv}
	if role == RoleServer {
		sk, err := schnorr.GenerateKey(rnd)
		if err != nil {
			return nil, fmt.Errorf("identity %s: generate schnorr key: %w", id, err)
		}
		ident.Schnorr = sk
	}
	return ident, nil
}

// Public returns the node's public record for registry distribution.
func (i *Identity) Public() Public {
	p := Public{
		ID:      i.ID,
		Role:    i.Role,
		SignPub: i.SignKey.Public().(ed25519.PublicKey),
	}
	if i.Schnorr != nil {
		p.SchnorrPub = i.Schnorr.Public
		p.hasSchnorr = true
	}
	return p
}

// Public is the publicly known part of an identity.
type Public struct {
	ID         NodeID
	Role       Role
	SignPub    ed25519.PublicKey
	SchnorrPub schnorr.PublicKey
	hasSchnorr bool
}

// HasSchnorr reports whether the node published a Schnorr key (servers do).
func (p Public) HasSchnorr() bool { return p.hasSchnorr }

// Registry is the shared directory of public keys. It is safe for
// concurrent use.
type Registry struct {
	mu    sync.RWMutex
	nodes map[NodeID]Public
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{nodes: make(map[NodeID]Public)}
}

// Register adds or replaces a node's public record.
func (r *Registry) Register(p Public) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes[p.ID] = p
}

// Lookup returns the public record for id.
func (r *Registry) Lookup(id NodeID) (Public, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.nodes[id]
	return p, ok
}

// SchnorrKey returns the Schnorr public key of a server.
func (r *Registry) SchnorrKey(id NodeID) (schnorr.PublicKey, error) {
	p, ok := r.Lookup(id)
	if !ok {
		return schnorr.PublicKey{}, fmt.Errorf("identity: unknown node %q", id)
	}
	if !p.hasSchnorr {
		return schnorr.PublicKey{}, fmt.Errorf("identity: node %q has no schnorr key", id)
	}
	return p.SchnorrPub, nil
}

// SchnorrKeys returns the Schnorr public keys of the given servers, in
// order. Auditors and clients use this to verify collective signatures.
func (r *Registry) SchnorrKeys(ids []NodeID) ([]schnorr.PublicKey, error) {
	keys := make([]schnorr.PublicKey, 0, len(ids))
	for _, id := range ids {
		k, err := r.SchnorrKey(id)
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// Servers returns the ids of all registered servers in lexical order.
func (r *Registry) Servers() []NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]NodeID, 0, len(r.nodes))
	for id, p := range r.nodes {
		if p.Role == RoleServer {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len returns the number of registered nodes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Envelope is a digitally signed message wrapper (paper §3.1): the payload,
// the sender, and the sender's Ed25519 signature over the payload. Servers
// store the signed client requests they act on, so a client can neither
// forge a blame nor deny a request it sent (paper §3.2).
type Envelope struct {
	From    NodeID `json:"from"`
	Payload []byte `json:"payload"`
	Sig     []byte `json:"sig"`
}

// Errors returned by Open.
var (
	ErrUnknownSender = errors.New("identity: unknown sender")
	ErrBadSignature  = errors.New("identity: invalid envelope signature")
)

// Seal signs payload with the node's Ed25519 key and wraps it in an
// Envelope. The payload is not copied.
func Seal(ident *Identity, payload []byte) Envelope {
	return Envelope{
		From:    ident.ID,
		Payload: payload,
		Sig:     ed25519.Sign(ident.SignKey, payload),
	}
}

// Open verifies the envelope signature against the registry and returns the
// payload. It fails for unknown senders or invalid signatures; the receiver
// drops such messages (paper §3.1).
func (r *Registry) Open(env Envelope) ([]byte, error) {
	pub, ok := r.Lookup(env.From)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSender, env.From)
	}
	if !ed25519.Verify(pub.SignPub, env.Payload, env.Sig) {
		return nil, fmt.Errorf("%w: from %q", ErrBadSignature, env.From)
	}
	return env.Payload, nil
}
