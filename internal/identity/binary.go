package identity

import (
	"fmt"

	"repro/internal/binenc"
)

// Binary encoding of the signed Envelope: the transport-level framing and
// the encapsulated client requests of GetVote/Prepare messages both carry
// envelopes in this form. Unlike the JSON form (which base64-inflates
// Payload and Sig by a third and re-parses them on every hop), the binary
// form wraps the signed payload bytes untouched, so sealing and opening an
// envelope costs exactly one Ed25519 operation plus a few length prefixes.
//
// Layout: ver(1) | from | sig | payload   (lengths uvarint-prefixed).
const envelopeBinaryVersion = 1

// AppendBinary appends the envelope's binary encoding.
func (e *Envelope) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendByte(buf, envelopeBinaryVersion)
	buf = binenc.AppendString(buf, string(e.From))
	buf = binenc.AppendBytes(buf, e.Sig)
	return binenc.AppendBytes(buf, e.Payload)
}

// MarshalBinary returns the envelope's binary encoding.
func (e *Envelope) MarshalBinary() ([]byte, error) {
	return e.AppendBinary(nil), nil
}

// UnmarshalBinary decodes an envelope. The decoded fields do not alias
// data, so pooled input buffers may be recycled afterwards.
func (e *Envelope) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := e.decodeFrom(&r); err != nil {
		return err
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("identity: decode envelope: %w", err)
	}
	return nil
}

// decodeFrom is the embeddable decoder used when an envelope is a field of
// a larger message (wire.EndTxnReq, wire.GetVoteReq); envelope fields are
// individually length-prefixed, so the encoding is self-delimiting.
func (e *Envelope) decodeFrom(r *binenc.Reader) error {
	if v := r.Byte(); v != envelopeBinaryVersion && r.Err() == nil {
		return fmt.Errorf("identity: unsupported envelope version %d", v)
	}
	e.From = NodeID(r.String())
	e.Sig = r.Bytes()
	e.Payload = r.Bytes()
	return r.Err()
}

// AppendEnvelope appends env's binary encoding to buf; it exists so other
// packages can embed envelopes in their own encodings without reslicing.
func AppendEnvelope(buf []byte, env *Envelope) []byte { return env.AppendBinary(buf) }

// DecodeEnvelope decodes an embedded envelope from r.
func DecodeEnvelope(r *binenc.Reader, env *Envelope) error { return env.decodeFrom(r) }
